// Package netstack implements the simulated networking subsystem: sockets
// with zero-copy send (Section 2.3), MTU segmentation, software TCP
// checksums vs checksum offload, a TCP-like send window whose
// acknowledgments control when mbuf chains — and therefore ephemeral
// mappings — are released, and a zero-copy receive path with page
// flipping.
//
// Transport is loopback: the netperf experiment runs client and server on
// the same machine exactly as the paper's Section 6.5.1 does.  For the web
// server experiment the peer is an external client (a different machine),
// modeled as a sink endpoint that consumes packets without charging this
// machine's CPUs.
package netstack

import (
	"errors"
	"fmt"
	"sync"

	"sfbuf/internal/cycles"
	"sfbuf/internal/kcopy"
	"sfbuf/internal/kernel"
	"sfbuf/internal/mbuf"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

const (
	// DefaultWindow is the socket buffer / send window: "TCP socket send
	// and receive buffer sizes are set to 64 KB" (Section 6.5.1).
	DefaultWindow = 64 * 1024
	// HeaderSize is the modeled TCP/IP header per packet; it reduces the
	// payload per MTU-sized frame.
	HeaderSize = 40
	// MTUSmall is the default Ethernet MTU of the evaluation.
	MTUSmall = 1500
	// MTULarge is the evaluation's large MTU: "a large MTU size of 16K
	// bytes".
	MTULarge = 16 * 1024
)

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("netstack: connection closed")

// Stack is the machine's network stack configuration.
type Stack struct {
	K *kernel.Kernel
	// MTU is the link maximum transmission unit.
	MTU int
	// ChecksumOffload moves TCP checksumming to the NIC; when false the
	// CPU computes checksums in software, touching every payload byte
	// through its ephemeral mapping (this is the knob of Figures 19-20).
	ChecksumOffload bool
	// contig is the zero-copy send path's contiguity-policy handle,
	// resolved once at stack creation so the per-syscall send path pays
	// no registry lookup.
	contig *kernel.MapConsumer
}

// NewStack returns a stack with the given MTU on kernel k.
func NewStack(k *kernel.Kernel, mtu int) *Stack {
	if mtu <= HeaderSize {
		panic(fmt.Sprintf("netstack: mtu %d too small", mtu))
	}
	return &Stack{K: k, MTU: mtu, contig: k.Consumer("netstack")}
}

// MSS returns the payload bytes per packet.
func (st *Stack) MSS() int { return st.MTU - HeaderSize }

// Stats counts connection activity.
type Stats struct {
	PacketsSent   uint64
	BytesSent     uint64
	PacketsRecved uint64
	BytesRecved   uint64
	PageFlips     uint64
	RxCopies      uint64
}

// rxPage is a driver-owned receive page awaiting zero-copy receive.
type rxPage struct {
	page *vm.Page
	buf  *sfbuf.Buf
	n    int
}

// Conn is one simplex connection: a sender on this machine and a receiver
// that is either another socket on this machine (loopback) or an external
// sink.
type Conn struct {
	st *Stack

	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	// rcvq holds transmitted, unacknowledged packets.  For loopback the
	// receiver consumes them (acknowledging as it goes); for a sink the
	// sender drains them past the window.  A packet's external storage —
	// its sf_bufs and page wirings — is released when the packet is
	// acknowledged.
	rcvq      []*mbuf.Chain
	rcvqBytes int
	headOff   int // consumed bytes of rcvq[0]

	window int
	sink   bool
	zcRx   bool

	// rxq holds driver receive pages for the zero-copy receive path.
	rxq []rxPage

	// sw sizes the connection's windowed-send mapping windows from the
	// observed ACK cadence (see kernel.SendWindow); inert — the
	// historical fixed size — on non-adaptive kernels.
	sw *kernel.SendWindow

	closed bool
	stats  Stats
}

// NewConn creates a loopback connection.
func (st *Stack) NewConn() *Conn { return st.newConn(false, false) }

// NewSinkConn creates a connection whose receiver is an external client:
// packets are acknowledged as the window slides, with no receive-side CPU
// charge on this machine.
func (st *Stack) NewSinkConn() *Conn { return st.newConn(true, false) }

// NewZeroCopyRxConn creates a loopback connection whose receive path uses
// driver-injected pages and page flipping.  The stack's MSS must fit one
// driver page (the NIC DMAs each frame into one page); larger MTUs panic,
// since they would silently truncate.
func (st *Stack) NewZeroCopyRxConn() *Conn {
	if st.MSS() > vm.PageSize {
		panic(fmt.Sprintf("netstack: zero-copy receive needs MSS <= %d, MTU %d gives %d",
			vm.PageSize, st.MTU, st.MSS()))
	}
	return st.newConn(false, true)
}

func (st *Stack) newConn(sink, zcRx bool) *Conn {
	c := &Conn{st: st, window: DefaultWindow, sink: sink, zcRx: zcRx,
		sw: st.contig.SendWindow()}
	c.notFull = sync.NewCond(&c.mu)
	c.notEmpty = sync.NewCond(&c.mu)
	return c
}

// SendWindow exposes the connection's mapping-window policy handle; the
// windowed sendfile path sizes its per-window page runs through it.
func (c *Conn) SendWindow() *kernel.SendWindow { return c.sw }

// SendWindowPages is the pages the connection's next mapping window
// should cover.
func (c *Conn) SendWindowPages() int { return c.sw.WindowPages() }

// SetWindow adjusts the send window (tests).
func (c *Conn) SetWindow(n int) {
	c.mu.Lock()
	c.window = n
	c.mu.Unlock()
}

// Stats returns a copy of the connection counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close releases all pending packets and wakes waiters.
func (c *Conn) Close(ctx *smp.Context) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	q := c.rcvq
	rx := c.rxq
	c.rcvq, c.rcvqBytes, c.rxq = nil, 0, nil
	c.notFull.Broadcast()
	c.notEmpty.Broadcast()
	c.mu.Unlock()
	for _, pkt := range q {
		pkt.Free(ctx)
	}
	for _, r := range rx {
		c.st.K.Map.Free(ctx, r.buf)
		c.st.K.M.Phys.Free(r.page)
	}
}

// SendZeroCopy transmits n bytes at off from the caller's user buffer
// without copying: each page is wired and attached to an mbuf under a
// shared ephemeral mapping (any CPU may retransmit it), segmented to the
// MTU, checksummed in software unless offload is enabled, and released
// only on acknowledgment.
//
// Pages are wired and mapped as packets are built rather than all
// upfront, so the number of simultaneously live ephemeral mappings is
// bounded by the send window plus one packet — large sends cannot
// deadlock a small mapping cache.  A page straddling a packet boundary is
// wired and mapped once per packet referencing it; the mapping cache
// coalesces the two allocations onto one sf_buf.
func (c *Conn) SendZeroCopy(ctx *smp.Context, um *vm.UserMem, off, n int) error {
	if n < 0 || off < 0 || off+n > um.Len() {
		return vm.ErrBounds
	}
	ctx.Charge(ctx.Cost().Syscall)
	if c.st.K.UseRunsSend() || c.st.K.UseVectoredSend() {
		return c.sendZeroCopyWindowed(ctx, um, off, n, c.st.contig.MapSendExtent)
	}
	k := c.st.K
	mss := c.st.MSS()

	pkt := &mbuf.Chain{}
	flush := func() error {
		if pkt.PktLen == 0 {
			return nil
		}
		ctx.Charge(ctx.Cost().PacketFixed)
		if !c.st.ChecksumOffload {
			if err := c.checksumPacket(ctx, pkt); err != nil {
				pkt.Free(ctx)
				return err
			}
		}
		if err := c.transmit(ctx, pkt); err != nil {
			pkt.Free(ctx)
			return err
		}
		pkt = &mbuf.Chain{}
		return nil
	}

	cur, remaining := off, n
	for remaining > 0 {
		pg, po, err := um.PageAt(cur)
		if err != nil {
			pkt.Free(ctx)
			return err
		}
		take := min(vm.PageSize-po, remaining)
		take = min(take, mss-pkt.PktLen)
		pg.Wire()
		ctx.Charge(ctx.Cost().PageWire)
		b, err := k.Map.Alloc(ctx, pg, 0) // shared: no Private flag
		if err != nil {
			pg.Unwire()
			pkt.Free(ctx)
			return fmt.Errorf("netstack: mapping send page: %w", err)
		}
		page := pg
		ext := mbuf.NewExt(b, pg, func(fctx *smp.Context) {
			k.Map.Free(fctx, b)
			page.Unwire()
		})
		pkt.Append(mbuf.NewExtMbuf(ext, po, take))
		cur += take
		remaining -= take
		if pkt.PktLen >= mss {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// packetMapper maps one packet's wired page run, returning the per-page
// buffers to attach and the shared release state (one reference per
// page; the last acknowledgment unmaps the whole run).  It returns
// sfbuf.ErrBatchTooLarge unwrapped when the run exceeds the mapping
// cache, which routes the packet through the per-page fallback.
type packetMapper func(ctx *smp.Context, pages []*vm.Page) ([]*sfbuf.Buf, *mbuf.RunRelease, error)

// sendZeroCopyWindowed is the shared packetize/wire/map/transmit loop
// behind the vectored and contiguous-run send paths.  Packet boundaries,
// wire counts and checksum behaviour are identical across all send
// variants; only the mapping step (mapRun) differs.
func (c *Conn) sendZeroCopyWindowed(ctx *smp.Context, um *vm.UserMem, off, n int, mapRun packetMapper) error {
	k := c.st.K
	mss := c.st.MSS()
	cur, remaining := off, n
	for remaining > 0 {
		pktBytes := min(mss, remaining)
		// Resolve and wire the run of pages carrying this packet.
		var (
			pages []*vm.Page
			pos   []int
			lens  []int
		)
		for b := 0; b < pktBytes; {
			pg, po, err := um.PageAt(cur + b)
			if err != nil {
				for _, p := range pages {
					p.Unwire()
				}
				return err
			}
			take := min(vm.PageSize-po, pktBytes-b)
			pg.Wire()
			ctx.Charge(ctx.Cost().PageWire)
			pages = append(pages, pg)
			pos = append(pos, po)
			lens = append(lens, take)
			b += take
		}
		pkt := &mbuf.Chain{}
		bufs, rel, err := mapRun(ctx, pages)
		if errors.Is(err, sfbuf.ErrBatchTooLarge) {
			// Packet run exceeds the whole mapping cache (pathologically
			// tiny cache): map its pages one at a time instead.
			for j, pg := range pages {
				b, err := k.Map.Alloc(ctx, pg, 0)
				if err != nil {
					for _, rest := range pages[j:] {
						rest.Unwire()
					}
					pkt.Free(ctx)
					return fmt.Errorf("netstack: mapping send page: %w", err)
				}
				buf, page := b, pg
				ext := mbuf.NewExt(b, pg, func(fctx *smp.Context) {
					k.Map.Free(fctx, buf)
					page.Unwire()
				})
				pkt.Append(mbuf.NewExtMbuf(ext, pos[j], lens[j]))
			}
		} else if err != nil {
			for _, p := range pages {
				p.Unwire()
			}
			return fmt.Errorf("netstack: window-mapping send run: %w", err)
		} else {
			for j := range bufs {
				pkt.Append(mbuf.NewExtMbuf(mbuf.NewExt(bufs[j], pages[j], rel.Unref), pos[j], lens[j]))
			}
		}
		ctx.Charge(ctx.Cost().PacketFixed)
		if !c.st.ChecksumOffload {
			if err := c.checksumPacket(ctx, pkt); err != nil {
				pkt.Free(ctx)
				return err
			}
		}
		if err := c.transmit(ctx, pkt); err != nil {
			pkt.Free(ctx)
			return err
		}
		cur += pktBytes
		remaining -= pktBytes
	}
	return nil
}

// SendChain transmits a prepared chain (the sendfile path).  Ownership of
// the chain and its references passes to the connection.
func (c *Conn) SendChain(ctx *smp.Context, chain *mbuf.Chain) error {
	return c.sendChain(ctx, chain)
}

// sendChain segments, checksums and enqueues; it blocks while the window
// is full (loopback) or self-acks past the window (sink).
func (c *Conn) sendChain(ctx *smp.Context, chain *mbuf.Chain) error {
	mss := c.st.MSS()
	for chain.PktLen > 0 {
		pkt := chain.Split(min(mss, chain.PktLen))
		if pkt == nil {
			break
		}
		ctx.Charge(ctx.Cost().PacketFixed)
		if !c.st.ChecksumOffload {
			if err := c.checksumPacket(ctx, pkt); err != nil {
				pkt.Free(ctx)
				chain.Free(ctx)
				return err
			}
		}
		if err := c.transmit(ctx, pkt); err != nil {
			pkt.Free(ctx)
			chain.Free(ctx)
			return err
		}
	}
	return nil
}

// checksumPacket runs the software TCP checksum over a packet's payload,
// reading every byte through its ephemeral mapping and thereby setting the
// mappings' PTE accessed bits — the effect Figures 19-20 isolate.
//
// On kernels whose send path maps packets into contiguous run windows
// (UseRunsSend), consecutive mbufs over one window are virtually adjacent;
// the checksum sweeps each such span with kcopy.ChecksumRun — ONE ranged
// translate per span instead of one walk per page, the same economy the
// run path already gives the copies.  The figure-reproduction kernels
// never take the run send path, so they keep the historical per-mbuf
// Checksum loop byte-for-byte (a single-page span goes through Checksum
// unchanged either way).
func (c *Conn) checksumPacket(ctx *smp.Context, pkt *mbuf.Chain) error {
	return c.st.checksumChain(ctx, pkt)
}

// checksumChain is the shared software-checksum sweep, used by both the
// socket paths above and the virtual-internet serving path (vserve.go).
func (st *Stack) checksumChain(ctx *smp.Context, pkt *mbuf.Chain) error {
	if !st.K.UseRunsSend() {
		for m := pkt.Head; m != nil; m = m.Next {
			if m.Ext != nil {
				if _, err := kcopy.Checksum(ctx, st.K.Pmap, m.KVA(), m.Len); err != nil {
					return err
				}
			} else {
				ctx.ChargeBytes(ctx.Cost().ChecksumPerByte, m.Len)
			}
		}
		return nil
	}
	var spanKVA uint64
	spanLen := 0
	flush := func() error {
		if spanLen == 0 {
			return nil
		}
		var err error
		if pmap.PageOffset(spanKVA)+spanLen > vm.PageSize {
			_, err = kcopy.ChecksumRun(ctx, st.K.Pmap, spanKVA, spanLen)
		} else {
			// A span inside one page gains nothing from a ranged walk;
			// keep the single-page path and its exact cost shape.
			_, err = kcopy.Checksum(ctx, st.K.Pmap, spanKVA, spanLen)
		}
		spanLen = 0
		return err
	}
	for m := pkt.Head; m != nil; m = m.Next {
		if m.Ext == nil {
			if err := flush(); err != nil {
				return err
			}
			ctx.ChargeBytes(ctx.Cost().ChecksumPerByte, m.Len)
			continue
		}
		if spanLen > 0 && m.KVA() == spanKVA+uint64(spanLen) {
			spanLen += m.Len
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		spanKVA, spanLen = m.KVA(), m.Len
	}
	return flush()
}

// transmit places a packet on the receive queue, enforcing the window.
func (c *Conn) transmit(ctx *smp.Context, pkt *mbuf.Chain) error {
	c.mu.Lock()
	if c.sink {
		// External receiver: slide the window from the sender's side,
		// acknowledging (and releasing) the oldest packets.
		c.rcvq = append(c.rcvq, pkt)
		c.rcvqBytes += pkt.PktLen
		var acked []*mbuf.Chain
		for c.rcvqBytes > c.window && len(c.rcvq) > 1 {
			old := c.rcvq[0]
			c.rcvq = c.rcvq[1:]
			c.rcvqBytes -= old.PktLen
			acked = append(acked, old)
		}
		c.stats.PacketsSent++
		c.stats.BytesSent += uint64(pkt.PktLen)
		inflight := c.rcvqBytes
		c.mu.Unlock()
		// Returning acknowledgments are processed on the sending CPU:
		// ack parsing plus the release of the covered mbufs and their
		// ephemeral mappings.
		ctx.Charge(ctx.Cost().AckProcess * cycles.Cycles(len(acked)))
		ackedBytes := 0
		for _, a := range acked {
			ackedBytes += a.PktLen
			a.Free(ctx)
		}
		c.sw.ObserveAck(ackedBytes, inflight)
		return nil
	}
	for c.rcvqBytes+pkt.PktLen > c.window && !c.closed && c.rcvqBytes > 0 {
		c.notFull.Wait()
	}
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.zcRx {
		c.stats.PacketsSent++
		c.stats.BytesSent += uint64(pkt.PktLen)
		c.mu.Unlock()
		return c.driverInject(ctx, pkt)
	}
	c.rcvq = append(c.rcvq, pkt)
	c.rcvqBytes += pkt.PktLen
	c.stats.PacketsSent++
	c.stats.BytesSent += uint64(pkt.PktLen)
	c.notEmpty.Signal()
	c.mu.Unlock()
	return nil
}

// Recv copies received payload into dst, blocking for at least one packet.
// Consumed packets are acknowledged: their chains are freed, releasing
// ephemeral mappings and page wirings, and the sender window reopens.
func (c *Conn) Recv(ctx *smp.Context, dst []byte) (int, error) {
	ctx.Charge(ctx.Cost().Syscall)
	c.mu.Lock()
	for len(c.rcvq) == 0 && !c.closed {
		c.notEmpty.Wait()
	}
	if len(c.rcvq) == 0 && c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}

	read := 0
	var done []*mbuf.Chain
	for read < len(dst) && len(c.rcvq) > 0 {
		pkt := c.rcvq[0]
		// Walk to the current offset within the packet.
		skip := c.headOff
		m := pkt.Head
		for m != nil && skip >= m.Len {
			skip -= m.Len
			m = m.Next
		}
		if m == nil {
			// Packet exhausted.
			c.rcvq = c.rcvq[1:]
			c.rcvqBytes -= pkt.PktLen
			c.headOff = 0
			done = append(done, pkt)
			continue
		}
		take := min(m.Len-skip, len(dst)-read)
		c.mu.Unlock()
		var err error
		if m.Ext != nil {
			err = kcopy.CopyOut(ctx, c.st.K.Pmap, dst[read:read+take], m.KVA()+uint64(skip))
		} else {
			copy(dst[read:read+take], m.InlineBytes()[skip:skip+take])
			ctx.ChargeBytes(ctx.Cost().CopyPerByte, take)
		}
		c.mu.Lock()
		if err != nil {
			c.mu.Unlock()
			return read, err
		}
		read += take
		c.headOff += take
		if c.headOff >= pkt.PktLen {
			c.rcvq = c.rcvq[1:]
			c.rcvqBytes -= pkt.PktLen
			c.headOff = 0
			done = append(done, pkt)
		}
	}
	c.stats.PacketsRecved += uint64(len(done))
	c.stats.BytesRecved += uint64(read)
	inflight := c.rcvqBytes
	c.notFull.Broadcast()
	c.mu.Unlock()
	// Each fully consumed packet pays tcp_input-side processing, then is
	// acknowledged: freed outside the lock (sf_buf frees take the mapper
	// lock), releasing its ephemeral mappings and page wirings.
	ctx.Charge(ctx.Cost().PacketRecv * cycles.Cycles(len(done)))
	ackedBytes := 0
	for _, pkt := range done {
		ackedBytes += pkt.PktLen
		pkt.Free(ctx)
	}
	c.sw.ObserveAck(ackedBytes, inflight)
	return read, nil
}

// driverInject implements the zero-copy receive driver step: "the kernel
// allocates a physical page, creates an ephemeral mapping to it, and
// injects the physical page and its ephemeral mapping into the network
// stack at the device driver".  The loopback "DMA" copies the packet
// payload into the driver page, after which the packet is acknowledged.
func (c *Conn) driverInject(ctx *smp.Context, pkt *mbuf.Chain) error {
	k := c.st.K
	pg, err := k.M.Phys.Alloc()
	if err != nil {
		return fmt.Errorf("netstack: rx page: %w", err)
	}
	b, err := k.Map.Alloc(ctx, pg, 0) // shared, like all network mappings
	if err != nil {
		k.M.Phys.Free(pg)
		return err
	}
	off := 0
	for m := pkt.Head; m != nil; m = m.Next {
		if off+m.Len > vm.PageSize {
			break // driver pages are page-sized; netperf MSS <= page in zcRx tests
		}
		if m.Ext != nil {
			// Model DMA as a mapped copy charged to the driver CPU.
			buf := make([]byte, m.Len)
			if err := kcopy.CopyOut(ctx, k.Pmap, buf, m.KVA()); err != nil {
				k.Map.Free(ctx, b)
				k.M.Phys.Free(pg)
				return err
			}
			if err := kcopy.CopyIn(ctx, k.Pmap, b.KVA()+uint64(off), buf); err != nil {
				k.Map.Free(ctx, b)
				k.M.Phys.Free(pg)
				return err
			}
		} else {
			if err := kcopy.CopyIn(ctx, k.Pmap, b.KVA()+uint64(off), m.InlineBytes()); err != nil {
				k.Map.Free(ctx, b)
				k.M.Phys.Free(pg)
				return err
			}
		}
		off += m.Len
	}
	pkt.Free(ctx) // loopback: the sender side is acknowledged immediately
	c.mu.Lock()
	c.rxq = append(c.rxq, rxPage{page: pg, buf: b, n: off})
	c.notEmpty.Signal()
	c.mu.Unlock()
	return nil
}

// RecvZeroCopy receives one driver page into the user buffer at off.  When
// the destination is page-aligned and the payload fills the page, the
// kernel's page replaces the application's (a page flip) and the mapping
// is destroyed without any copy; otherwise the data is copied through the
// mapping.  Returns the payload length.
func (c *Conn) RecvZeroCopy(ctx *smp.Context, um *vm.UserMem, off int) (int, error) {
	ctx.Charge(ctx.Cost().Syscall)
	c.mu.Lock()
	for len(c.rxq) == 0 && !c.closed {
		c.notEmpty.Wait()
	}
	if len(c.rxq) == 0 && c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	r := c.rxq[0]
	c.rxq = c.rxq[1:]
	aligned := off%vm.PageSize == 0 && r.n == vm.PageSize && off+vm.PageSize <= um.Len()
	if aligned {
		c.stats.PageFlips++
	} else {
		c.stats.RxCopies++
	}
	c.mu.Unlock()

	k := c.st.K
	if aligned {
		// "the application's current physical page is freed, the
		// kernel's physical page replaces it in the application's
		// address space, and the ephemeral mapping is destroyed."
		old, err := um.ReplacePage(off/vm.PageSize, r.page)
		if err != nil {
			return 0, err
		}
		k.M.Phys.Free(old)
		k.Map.Free(ctx, r.buf)
		return r.n, nil
	}
	// "Otherwise, the ephemeral mapping is used by the kernel to copy the
	// data from its physical page to the application's."
	buf := make([]byte, r.n)
	if err := kcopy.CopyOut(ctx, k.Pmap, buf, r.buf.KVA()); err != nil {
		return 0, err
	}
	if err := um.WriteAt(off, buf); err != nil {
		return 0, err
	}
	k.Map.Free(ctx, r.buf)
	k.M.Phys.Free(r.page)
	return r.n, nil
}
