package netstack

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/vm"
)

func bootNetKernel(t *testing.T, mk kernel.MapperKind, plat arch.Platform) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    1024,
		Backed:       true,
		CacheEntries: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sendRecv(t *testing.T, k *kernel.Kernel, mtu, size int) ([]byte, []byte, *Conn) {
	t.Helper()
	st := NewStack(k, mtu)
	c := st.NewConn()
	um, err := vm.AllocUserMem(k.M.Phys, size)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(want)
	if err := um.WriteAt(0, want); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, 0, size)
	done := make(chan error, 1)
	go func() {
		rctx := k.Ctx(k.M.NumCPUs() - 1)
		buf := make([]byte, 32*1024)
		for len(got) < size {
			n, err := c.Recv(rctx, buf)
			if err != nil {
				done <- err
				return
			}
			got = append(got, buf[:n]...)
		}
		done <- nil
	}()
	if err := c.SendZeroCopy(k.Ctx(0), um, 0, size); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// All acknowledged: every page unwired.
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("page %d still wired after acks", i)
		}
	}
	return got, want, c
}

func TestZeroCopySendRoundTrip(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootNetKernel(t, mk, arch.XeonMP())
		got, want, _ := sendRecv(t, k, MTUSmall, 200*1024)
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: zero-copy send corrupted data", mk)
		}
	}
}

func TestLargeMTUFewerPackets(t *testing.T) {
	k1 := bootNetKernel(t, kernel.SFBuf, arch.XeonMP())
	_, _, cSmall := sendRecv(t, k1, MTUSmall, 128*1024)
	k2 := bootNetKernel(t, kernel.SFBuf, arch.XeonMP())
	_, _, cLarge := sendRecv(t, k2, MTULarge, 128*1024)
	if cLarge.Stats().PacketsSent >= cSmall.Stats().PacketsSent {
		t.Fatalf("large MTU sent %d packets, small %d — want fewer",
			cLarge.Stats().PacketsSent, cSmall.Stats().PacketsSent)
	}
}

func TestChecksumOffloadSkipsTouching(t *testing.T) {
	// The Figure 19/20 effect, pinned on the paper's global-lock cache
	// (the engine those figures measure).  A mapping cache of 16 entries
	// with two alternating 16-page send buffers forces a miss on every
	// mapping.  With checksum offload (and an external sink that never
	// copies), nothing ever touches the payload through the mappings: the
	// PTE accessed bits stay clear and the accessed-bit optimization
	// elides every invalidation.  With software checksums, the CPU
	// touches each page, so every miss-reuse pays an invalidation.
	//
	// The sink's window is kept below one send so acknowledgments free
	// each send's mappings before the next send needs the cache.
	//
	// (The sharded default no longer shows the software-checksum cost on
	// this workload at all: the alternating extents revive their parked
	// run windows like hash hits, so no mapping is ever torn down — see
	// TestZeroCopyRevivesAlternatingBuffers.)
	run := func(offload bool) uint64 {
		k, err := kernel.Boot(kernel.Config{
			Platform: arch.XeonMP(), Mapper: kernel.SFBuf,
			Cache:     kernel.CacheGlobal,
			PhysPages: 1024, Backed: true, CacheEntries: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := NewStack(k, MTULarge)
		st.ChecksumOffload = offload
		c := st.NewSinkConn()
		c.SetWindow(8 * 1024)
		ctx := k.Ctx(0)
		umA, _ := vm.AllocUserMem(k.M.Phys, 64*1024)
		umB, _ := vm.AllocUserMem(k.M.Phys, 64*1024)
		for i := 0; i < 6; i++ {
			if i == 1 {
				// One warmup round populates the cache's cold
				// buffers (first use of a fresh sf_buf purges the
				// CPU's TLB once); measure steady state after it.
				k.Reset()
			}
			for _, um := range []*vm.UserMem{umA, umB} {
				if err := c.SendZeroCopy(ctx, um, 0, 64*1024); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.Close(ctx)
		return k.M.Counters().LocalInv.Load()
	}
	if got := run(true); got != 0 {
		t.Fatalf("offload run issued %d local invalidations, want 0", got)
	}
	if got := run(false); got == 0 {
		t.Fatal("software checksum run must issue invalidations under cache pressure")
	}
}

// TestZeroCopyRevivesAlternatingBuffers pins the page-set window cache
// at subsystem level: the same alternating-buffer workload that costs
// the paper's cache one invalidation per touched miss-reuse costs the
// sharded default NOTHING — each send's packet extents revive their
// parked run windows (no PTE writes, no teardown, no invalidations),
// even with software checksums touching every page.
func TestZeroCopyRevivesAlternatingBuffers(t *testing.T) {
	k, err := kernel.Boot(kernel.Config{
		Platform: arch.XeonMP(), Mapper: kernel.SFBuf,
		PhysPages: 1024, Backed: true, CacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStack(k, MTULarge)
	st.ChecksumOffload = false
	c := st.NewSinkConn()
	c.SetWindow(8 * 1024)
	ctx := k.Ctx(0)
	umA, _ := vm.AllocUserMem(k.M.Phys, 64*1024)
	umB, _ := vm.AllocUserMem(k.M.Phys, 64*1024)
	for i := 0; i < 6; i++ {
		if i == 1 {
			k.Reset()
		}
		for _, um := range []*vm.UserMem{umA, umB} {
			if err := c.SendZeroCopy(ctx, um, 0, 64*1024); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Close(ctx)
	st2 := k.Map.Stats()
	if st2.RunRevives == 0 {
		t.Fatal("alternating send buffers never revived a parked window")
	}
	if got := k.M.Counters().LocalInv.Load(); got != 0 {
		t.Fatalf("revive-served sends issued %d local invalidations, want 0", got)
	}
	if got := k.M.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("revive-served sends issued %d remote rounds, want 0", got)
	}
}

func TestSinkConnNeverBlocksAndReleases(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.XeonMP())
	st := NewStack(k, MTUSmall)
	c := st.NewSinkConn()
	ctx := k.Ctx(0)
	um, _ := vm.AllocUserMem(k.M.Phys, 256*1024)
	// Far more than one window: the sink must self-ack.
	for i := 0; i < 8; i++ {
		if err := c.SendZeroCopy(ctx, um, 0, 256*1024); err != nil {
			t.Fatal(err)
		}
	}
	c.Close(ctx)
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("page %d still wired after close", i)
		}
	}
}

func TestWindowBlocksSender(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.XeonMP())
	st := NewStack(k, MTUSmall)
	c := st.NewConn()
	c.SetWindow(8 * 1024)
	um, _ := vm.AllocUserMem(k.M.Phys, 64*1024)

	sent := make(chan error, 1)
	go func() {
		sent <- c.SendZeroCopy(k.Ctx(0), um, 0, 64*1024)
	}()
	// Drain slowly; the sender must complete only after drains.
	rctx := k.Ctx(1)
	total := 0
	buf := make([]byte, 4096)
	for total < 64*1024 {
		n, err := c.Recv(rctx, buf)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
}

func TestMappingsPersistUntilAck(t *testing.T) {
	// While packets sit unacknowledged in the window, their pages remain
	// wired and mapped; Recv (the ack) releases them.
	k := bootNetKernel(t, kernel.SFBuf, arch.XeonMP())
	st := NewStack(k, MTUSmall)
	c := st.NewConn()
	ctx := k.Ctx(0)
	um, _ := vm.AllocUserMem(k.M.Phys, 16*1024)

	if err := c.SendZeroCopy(ctx, um, 0, 16*1024); err != nil {
		t.Fatal(err)
	}
	wired := 0
	for _, pg := range um.Pages() {
		if pg.Wired() {
			wired++
		}
	}
	if wired != 4 {
		t.Fatalf("wired pages = %d, want 4 while unacked", wired)
	}
	buf := make([]byte, 16*1024)
	total := 0
	for total < 16*1024 {
		n, err := c.Recv(k.Ctx(1), buf)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("page %d still wired after ack", i)
		}
	}
}

func TestRecvAfterCloseDrainsThenEOF(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.XeonMP())
	st := NewStack(k, MTUSmall)
	c := st.NewConn()
	ctx := k.Ctx(0)
	c.Close(ctx)
	if _, err := c.Recv(ctx, make([]byte, 10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := c.SendZeroCopy(ctx, mustUM(t, k, 8192), 0, 8192); !errors.Is(err, ErrClosed) {
		t.Fatalf("send err = %v, want ErrClosed", err)
	}
}

func mustUM(t *testing.T, k *kernel.Kernel, n int) *vm.UserMem {
	t.Helper()
	um, err := vm.AllocUserMem(k.M.Phys, n)
	if err != nil {
		t.Fatal(err)
	}
	return um
}

func TestSendBounds(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.XeonUP())
	st := NewStack(k, MTUSmall)
	c := st.NewConn()
	um := mustUM(t, k, 4096)
	if err := c.SendZeroCopy(k.Ctx(0), um, 0, 8192); !errors.Is(err, vm.ErrBounds) {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
}

// --- zero-copy receive ---

func TestZeroCopyReceivePageFlip(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.OpteronMP())
	st := NewStack(k, vm.PageSize+HeaderSize) // MSS = exactly one page
	c := st.NewZeroCopyRxConn()
	ctx := k.Ctx(0)

	src := mustUM(t, k, vm.PageSize)
	want := make([]byte, vm.PageSize)
	rand.New(rand.NewSource(9)).Read(want)
	src.WriteAt(0, want)

	if err := c.SendZeroCopy(ctx, src, 0, vm.PageSize); err != nil {
		t.Fatal(err)
	}
	dst := mustUM(t, k, vm.PageSize)
	rctx := k.Ctx(1)
	n, err := c.RecvZeroCopy(rctx, dst, 0)
	if err != nil || n != vm.PageSize {
		t.Fatalf("recv = (%d, %v)", n, err)
	}
	got := make([]byte, vm.PageSize)
	dst.ReadAt(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("page flip delivered wrong data")
	}
	if c.Stats().PageFlips != 1 || c.Stats().RxCopies != 0 {
		t.Fatalf("stats = %+v: aligned full-page receive must flip", c.Stats())
	}
}

func TestZeroCopyReceiveFallbackCopy(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.OpteronMP())
	st := NewStack(k, MTUSmall) // MSS < page: cannot flip
	c := st.NewZeroCopyRxConn()
	ctx := k.Ctx(0)

	src := mustUM(t, k, 2048)
	want := make([]byte, 1400)
	rand.New(rand.NewSource(10)).Read(want)
	src.WriteAt(0, want)

	if err := c.SendZeroCopy(ctx, src, 0, 1400); err != nil {
		t.Fatal(err)
	}
	dst := mustUM(t, k, vm.PageSize)
	n, err := c.RecvZeroCopy(k.Ctx(1), dst, 0)
	if err != nil || n != 1400 {
		t.Fatalf("recv = (%d, %v)", n, err)
	}
	got := make([]byte, 1400)
	dst.ReadAt(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("fallback copy delivered wrong data")
	}
	if c.Stats().PageFlips != 0 || c.Stats().RxCopies != 1 {
		t.Fatalf("stats = %+v: sub-page receive must copy", c.Stats())
	}
}

func TestZeroCopyRxNoPageLeaks(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.OpteronMP())
	st := NewStack(k, vm.PageSize+HeaderSize)
	c := st.NewZeroCopyRxConn()
	ctx := k.Ctx(0)
	free := k.M.Phys.FreeFrames()

	src := mustUM(t, k, 4*vm.PageSize)
	dst := mustUM(t, k, 4*vm.PageSize)
	afterAlloc := k.M.Phys.FreeFrames()
	if err := c.SendZeroCopy(ctx, src, 0, 4*vm.PageSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.RecvZeroCopy(k.Ctx(1), dst, i*vm.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.M.Phys.FreeFrames(); got != afterAlloc {
		t.Fatalf("frames leaked: %d -> %d", afterAlloc, got)
	}
	c.Close(ctx)
	src.Release()
	dst.Release()
	if got := k.M.Phys.FreeFrames(); got != free {
		t.Fatalf("frames leaked after release: %d -> %d", free, got)
	}
}

func TestZeroCopyRxRejectsOversizedMSS(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.OpteronMP())
	st := NewStack(k, MTULarge) // MSS far beyond one page
	defer func() {
		if recover() == nil {
			t.Fatal("zero-copy rx with MSS > page must panic")
		}
	}()
	st.NewZeroCopyRxConn()
}

func TestMSSValidation(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.XeonUP())
	defer func() {
		if recover() == nil {
			t.Fatal("tiny MTU must panic")
		}
	}()
	NewStack(k, HeaderSize)
}

// TestSoftwareChecksumOverRunsUsesRangedTranslate pins the checksum-over-
// runs satellite: with offload disabled on a run-mapped send path
// (sharded engine, large MTU so one packet spans several pages), the
// software checksum sweeps each packet's window with one ranged translate
// instead of one walk per page — so the walk bill stays near one per
// PACKET, not one per page.  A sink connection isolates the send side.
func TestSoftwareChecksumOverRunsUsesRangedTranslate(t *testing.T) {
	k := bootNetKernel(t, kernel.SFBuf, arch.XeonMP())
	if !k.UseRunsSend() {
		t.Fatal("sharded sf_buf kernel should take the run send path")
	}
	st := NewStack(k, MTULarge) // MSS crosses ~4 pages per packet
	st.ChecksumOffload = false
	c := st.NewSinkConn()
	defer c.Close(k.Ctx(0))
	const size = 256 * 1024
	um, err := vm.AllocUserMem(k.M.Phys, size)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	before := k.M.SnapshotCounters()
	if err := c.SendZeroCopy(ctx, um, 0, size); err != nil {
		t.Fatal(err)
	}
	d := k.M.SnapshotCounters().Sub(before)
	sent := c.Stats().PacketsSent
	pages := uint64(size / vm.PageSize)
	t.Logf("packets=%d pages=%d walks=%d", sent, pages, d.PTWalks)
	if d.PTWalks >= pages {
		t.Errorf("walks = %d for %d checksummed pages: the per-page translate is back", d.PTWalks, pages)
	}
	// One ranged walk per packet checksum plus map-side noise; 2x packet
	// count is a comfortable deterministic bound far below the page count.
	if d.PTWalks > 2*sent {
		t.Errorf("walks = %d, want <= 2x packet count %d", d.PTWalks, sent)
	}
}
