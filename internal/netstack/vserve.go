package netstack

// Virtual-internet serving: a TCP-ish server endpoint (VConn) and client
// endpoint (VClient) exchanging metadata packets through internal/vnet's
// lossy, reordering, delaying links.  This is the macro-benchmark's
// protocol layer — the machinery that turns the kernel's ephemeral
// mapping economy into end-to-end serving behaviour:
//
//   - Send windows are ACK-clocked: a VConn transmits only what the
//     client's advertised window admits, so slow readers (small drains,
//     shrinking windows) keep few pages in flight while fast clients
//     stream a full bandwidth-delay product.
//
//   - Mapping windows are sized per connection by kernel.SendWindow:
//     each ACK feeds the connection's observed burst and backlog into
//     the policy, and the next window of file or user pages is mapped
//     AllocRun/AllocBatch-sized to the connection's measured appetite.
//
//   - Mappings are mapped with sfbuf.NoWait: the event loop is single
//     threaded (see the vnet package comment), so a sleeping allocation
//     would deadlock it.  Cache pressure surfaces as ErrWouldBlock, a
//     deterministic backoff timer, and a latency hit the percentile
//     metrics must see — exactly how an overcommitted mapping cache
//     hurts a real server.
//
//   - Retransmission reuses the retained mappings: a lost packet is
//     re-checksummed through the same ephemeral mapping and re-sent,
//     the paper's reason send-side mappings are shared rather than
//     CPU-private.  Releases stay ACK-driven: the cumulative ACK
//     covering a segment frees its chain, unrefs its pages, and the
//     window's last reference fires one FreeRun/FreeBatch.
//
//   - Teardown is exactly-once: aborting a connection mid-send (churn)
//     frees the transmitted-unacknowledged queue and the staged-but-
//     unsent queue once, and late ACKs or timers arriving after the
//     abort are ignored rather than double-freeing.
//
// Latency accounting: a request's mapping latency is the simulated CPU
// cycles spent in its map and release calls (including failed NoWait
// attempts) plus the virtual time spent backing off on mapping stalls.
// Network propagation time is deliberately excluded — the metric
// isolates what mapping management adds to a request, which is the
// quantity the paper's design is trying to drive to zero.

import (
	"fmt"

	"sfbuf/internal/cycles"
	"sfbuf/internal/kcopy"
	"sfbuf/internal/kernel"
	"sfbuf/internal/mbuf"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
	"sfbuf/internal/vnet"
)

// VRequest is one request a VConn serves: Size bytes resolved page by
// page through PageAt (a file via fs.FilePage, a user buffer via
// vm.UserMem — the conn does not care which).  After completion the
// accounting fields report the request's mapping economy.
type VRequest struct {
	// Size is the response length in bytes.
	Size int64
	// PageAt resolves the request's pi-th page.
	PageAt func(ctx *smp.Context, pi int) (*vm.Page, error)

	// MapCycles accumulates CPU cycles spent mapping and releasing the
	// request's pages, including failed NoWait attempts.
	MapCycles cycles.Cycles
	// StallWait accumulates virtual time spent backing off on mapping
	// stalls; Stalls counts them.
	StallWait int64
	Stalls    int

	startSeq  int64
	endSeq    int64
	completed bool
}

// MapLatency is the request's headline metric: mapping CPU cycles plus
// stall backoff, in simulated cycles.
func (r *VRequest) MapLatency() int64 { return int64(r.MapCycles) + r.StallWait }

// VServeStats aggregates server-side serving activity.
type VServeStats struct {
	PacketsSent uint64
	BytesSent   uint64
	Retransmits uint64
	FastRetrans uint64
	Probes      uint64
	AcksRecved  uint64
	// Stalls counts mapping windows that hit ErrWouldBlock and backed
	// off; Fallbacks counts windows routed through the per-page path.
	Stalls    uint64
	Fallbacks uint64
	// Completed counts fully acknowledged requests; Aborted counts
	// connections torn down mid-send.
	Completed uint64
	Aborted   uint64
}

// VServer is the shared serving state: one per simulated server stack.
type VServer struct {
	St  *Stack
	Net *vnet.Net
	// RTO is the retransmission timeout, RetryDelay the mapping-stall
	// backoff, ProbeDelay the zero-window probe interval (virtual
	// cycles).
	RTO        int64
	RetryDelay int64
	ProbeDelay int64
	// OnComplete, when set, observes every completed request.
	OnComplete func(c *VConn, r *VRequest)

	stats VServeStats
}

// NewVServer wires a serving endpoint over the stack and network with
// conventional timer defaults (callers may tune the fields before
// traffic flows).
func NewVServer(st *Stack, net *vnet.Net) *VServer {
	return &VServer{
		St:         st,
		Net:        net,
		RTO:        8_000_000, // ~a few RTTs at the default link delays
		RetryDelay: 50_000,
		ProbeDelay: 2_000_000,
	}
}

// Stats returns a copy of the aggregated serving counters.
func (srv *VServer) Stats() VServeStats { return srv.stats }

// vseg is one staged or transmitted-unacknowledged segment.
type vseg struct {
	seq    int64
	length int
	chain  *mbuf.Chain
	req    *VRequest
	// summed marks a segment whose software checksum was computed at
	// staging time, over the whole mapped window; its first transmission
	// skips the per-segment sweep.  Retransmissions always re-checksum.
	summed bool
}

// VConn is the server side of one connection: a byte stream of queued
// requests, ACK-clocked against the peer's advertised window, with its
// own adaptive mapping-window handle.
type VConn struct {
	srv  *VServer
	id   int
	ctx  *smp.Context
	link *vnet.Link
	sw   *kernel.SendWindow

	sndUna   int64
	sndNxt   int64
	stageSeq int64 // next staged byte (sndNxt + staged backlog)
	rwnd     int

	queue   []*VRequest // not yet staged
	cur     *VRequest   // request currently being staged
	curOff  int64
	pending []*vm.Page // resolved+wired window awaiting a stalled mapping
	staged  []*vseg    // mapped, packetized, awaiting window
	rtq     []*vseg    // transmitted, unacknowledged, seq order

	dupAcks    int
	rtoArmed   bool
	probeArmed bool
	retryArmed bool
	closed     bool

	// err records the first hard serving failure (anything but a stall).
	err error
}

// NewVConn creates the server side of connection id, pinned to ctx's
// CPU, transmitting on link, with mapping windows sized by sw.
func (srv *VServer) NewVConn(id int, ctx *smp.Context, link *vnet.Link, sw *kernel.SendWindow) *VConn {
	return &VConn{srv: srv, id: id, ctx: ctx, link: link, sw: sw, rwnd: DefaultWindow}
}

// Err returns the connection's first hard failure, if any.
func (c *VConn) Err() error { return c.err }

// Closed reports whether the connection was aborted.
func (c *VConn) Closed() bool { return c.closed }

// Enqueue queues a request and starts serving it as the window allows.
func (c *VConn) Enqueue(r *VRequest) {
	if c.closed {
		return
	}
	c.queue = append(c.queue, r)
	c.pump()
}

// effWindow is the peer-advertised send budget in bytes.
func (c *VConn) effWindow() int { return c.rwnd }

// pump transmits staged segments while the window admits them, staging
// (mapping) more as needed.  It is the connection's one state-machine
// entry point: called on enqueue, on every ACK, and from backoff/probe
// timers.
func (c *VConn) pump() {
	if c.closed || c.err != nil {
		return
	}
	for {
		inflight := int(c.sndNxt - c.sndUna)
		if len(c.staged) == 0 {
			if inflight > 0 && inflight >= c.effWindow() {
				return // window full: ACKs will re-pump
			}
			if !c.stageWindow() {
				return // nothing to stage, or stalled on a mapping
			}
		}
		s := c.staged[0]
		if inflight > 0 && inflight+s.length > c.effWindow() {
			return
		}
		if inflight == 0 && c.effWindow() == 0 {
			c.armProbe()
			return
		}
		c.staged = c.staged[1:]
		c.transmit(s, false)
	}
}

// stageWindow maps the current request's next window of pages and cuts
// it into MSS segments.  Returns false when there is nothing to stage or
// the mapping stalled (a retry timer is then armed).
func (c *VConn) stageWindow() bool {
	if c.cur == nil {
		if len(c.queue) == 0 {
			return false
		}
		c.cur = c.queue[0]
		c.queue = c.queue[1:]
		c.curOff = 0
		c.cur.startSeq = c.stageSeq
		c.cur.endSeq = c.stageSeq + c.cur.Size
		// Accept/parse/log/socket work outside data movement.
		c.ctx.Charge(c.ctx.Cost().HTTPRequestFixed)
	}
	req := c.cur
	remaining := req.Size - c.curOff
	// A window stalled on a mapping stays resolved and wired on the
	// connection across retries — like a sleeping sendfile, and the only
	// affordable shape: re-resolving dozens of pages per backoff tick
	// across a thousand starved connections is a livelock.
	pages := c.pending
	if pages != nil {
		// The policy may have shrunk the window since the stall (its
		// multiplicative decrease); retry the smaller window and give the
		// tail's wiring back rather than keep demanding a grant the cache
		// already refused.
		if w := c.sw.WindowPages(); len(pages) > w {
			for _, pg := range pages[w:] {
				pg.Unwire()
			}
			pages = pages[:w]
			c.pending = pages
		}
	}
	if pages == nil {
		npages := int((remaining + vm.PageSize - 1) / vm.PageSize)
		if w := c.sw.WindowPages(); npages > w {
			npages = w
		}
		basePi := int(c.curOff / vm.PageSize)
		pages = make([]*vm.Page, 0, npages)
		for j := 0; j < npages; j++ {
			pg, err := req.PageAt(c.ctx, basePi+j)
			if err != nil {
				for _, p := range pages {
					p.Unwire()
				}
				c.fail(fmt.Errorf("vserve conn %d: resolving page %d: %w", c.id, basePi+j, err))
				return false
			}
			pg.Wire()
			c.ctx.Charge(c.ctx.Cost().PageWire)
			pages = append(pages, pg)
		}
	}

	// Map the window under the connection's policy.  NoWait: stalls back
	// off on a timer instead of sleeping the event loop.  mapWindow never
	// leaves partial mappings behind on failure; the pages' wiring stays
	// ours until the mappings exist (their release hooks then own it).
	before := c.ctx.CPU().Cycles()
	exts, err := c.mapWindow(pages)
	req.MapCycles += c.ctx.CPU().Cycles() - before
	if err != nil {
		if err == sfbuf.ErrWouldBlock {
			c.pending = pages
			c.sw.ObserveStall()
			req.Stalls++
			req.StallWait += c.srv.RetryDelay
			c.srv.stats.Stalls++
			c.armRetry()
			return false
		}
		for _, p := range pages {
			p.Unwire()
		}
		c.fail(fmt.Errorf("vserve conn %d: mapping window: %w", c.id, err))
		return false
	}
	c.pending = nil

	// Cut the window into MSS segments.  Packets never span pages (the
	// historical sendfile packetization); a page spanning packets shares
	// one Ext, each extra segment taking a reference.
	mss := c.srv.St.MSS()
	for j, ext := range exts {
		po := 0
		pbytes := int(min(int64(vm.PageSize), remaining-int64(j)*vm.PageSize))
		for po < pbytes {
			take := pbytes - po
			if take > mss {
				take = mss
			}
			if po > 0 {
				ext.Ref()
			}
			chain := &mbuf.Chain{}
			chain.Append(mbuf.NewExtMbuf(ext, po, take))
			c.staged = append(c.staged, &vseg{seq: c.stageSeq, length: take, chain: chain,
				req: req, summed: !c.srv.St.ChecksumOffload})
			c.stageSeq += int64(take)
			po += take
		}
	}
	// Software checksums are computed once per staged window, while the
	// mapping is hot: a contiguous run window coalesces into one ranged
	// page-table walk (kcopy.ChecksumRun), a batching economy scattered
	// per-page mappings cannot express.  Retransmissions re-checksum per
	// segment through the same held mapping.
	if !c.srv.St.ChecksumOffload {
		if err := c.checksumWindow(exts, int(min(int64(len(pages))*vm.PageSize, remaining))); err != nil {
			c.fail(fmt.Errorf("vserve conn %d: window checksum: %w", c.id, err))
			return false
		}
	}
	c.curOff += min(int64(len(pages))*vm.PageSize, remaining)
	if c.curOff >= req.Size {
		c.cur = nil
	}
	return true
}

// checksumWindow sweeps one freshly mapped window's valid bytes.  Under
// the batched send path, adjacent pages mapped at consecutive kernel
// addresses form spans checksummed with one ranged walk; everywhere else
// (and for the per-page engines, whose addresses scatter) each page pays
// its own translation, the same cost shape as Stack.checksumChain.
func (c *VConn) checksumWindow(exts []*mbuf.Ext, winBytes int) error {
	pm := c.srv.St.K.Pmap
	ranged := c.srv.St.K.UseRunsSend()
	var spanKVA uint64
	spanLen := 0
	flush := func() error {
		if spanLen == 0 {
			return nil
		}
		var err error
		if spanLen > vm.PageSize {
			_, err = kcopy.ChecksumRun(c.ctx, pm, spanKVA, spanLen)
		} else {
			_, err = kcopy.Checksum(c.ctx, pm, spanKVA, spanLen)
		}
		spanLen = 0
		return err
	}
	for j, ext := range exts {
		pb := winBytes - j*vm.PageSize
		if pb <= 0 {
			break
		}
		if pb > vm.PageSize {
			pb = vm.PageSize
		}
		kva := ext.Buf.KVA()
		if ranged && spanLen > 0 && kva == spanKVA+uint64(spanLen) {
			spanLen += pb
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		spanKVA, spanLen = kva, pb
	}
	return flush()
}

// mapWindow maps one wired page window, returning one Ext per page whose
// release unrefs the shared window state (which unwires on the last
// reference).  The per-page fallback covers engines without a batched
// send path (and pathologically tiny caches), still under NoWait.  On
// error mapWindow has rolled back every mapping it made and made NONE of
// the exts, but the pages stay wired: the caller keeps the wiring across
// stall retries and unwires only on hard failure or abort.
func (c *VConn) mapWindow(pages []*vm.Page) ([]*mbuf.Ext, error) {
	k := c.srv.St.K
	bufs, rel, err := c.sw.MapExtent(c.ctx, pages, sfbuf.NoWait)
	if err == nil {
		exts := make([]*mbuf.Ext, len(bufs))
		for j := range bufs {
			exts[j] = mbuf.NewExt(bufs[j], pages[j], rel.Unref)
		}
		return exts, nil
	}
	if err != sfbuf.ErrBatchTooLarge {
		return nil, err
	}
	// Per-page path: each page is its own mapping with its own release
	// hook, which owns that page's unwire once every page mapped.
	c.srv.stats.Fallbacks++
	ppBufs := make([]*sfbuf.Buf, 0, len(pages))
	for _, pg := range pages {
		b, err := k.Map.Alloc(c.ctx, pg, sfbuf.NoWait)
		if err != nil {
			for _, prev := range ppBufs {
				k.Map.Free(c.ctx, prev)
			}
			return nil, err
		}
		ppBufs = append(ppBufs, b)
	}
	exts := make([]*mbuf.Ext, len(pages))
	for j := range pages {
		buf, page := ppBufs[j], pages[j]
		exts[j] = mbuf.NewExt(buf, page, func(fctx *smp.Context) {
			k.Map.Free(fctx, buf)
			page.Unwire()
		})
	}
	return exts, nil
}

// transmit checksums (software path) and sends one segment, arming the
// retransmission timer.
func (c *VConn) transmit(s *vseg, retrans bool) {
	c.ctx.Charge(c.ctx.Cost().PacketFixed)
	if !c.srv.St.ChecksumOffload && (retrans || !s.summed) {
		if err := c.srv.St.checksumChain(c.ctx, s.chain); err != nil {
			c.fail(fmt.Errorf("vserve conn %d: checksum: %w", c.id, err))
			return
		}
	}
	c.srv.stats.PacketsSent++
	c.srv.stats.BytesSent += uint64(s.length)
	if !retrans {
		c.rtq = append(c.rtq, s)
		if end := s.seq + int64(s.length); end > c.sndNxt {
			c.sndNxt = end
		}
	}
	c.link.Send(vnet.Packet{Flow: c.id, Seq: s.seq, Len: s.length})
	c.armRTO()
}

// HandleAck processes one client acknowledgment: advance the window,
// release covered segments (the ACK-driven mapping release), feed the
// send-window policy, detect duplicate-ACK retransmission, and pump.
func (c *VConn) HandleAck(p vnet.Packet) {
	if c.closed || c.err != nil {
		return // late ACK after abort: state is gone, ignore
	}
	c.ctx.Charge(c.ctx.Cost().AckProcess)
	c.srv.stats.AcksRecved++
	prevWnd := c.rwnd
	c.rwnd = p.Win
	switch {
	case p.Ack > c.sndUna:
		acked := int(p.Ack - c.sndUna)
		c.sndUna = p.Ack
		c.dupAcks = 0
		c.releaseCovered()
		c.sw.ObserveAck(acked, int(c.sndNxt-c.sndUna))
	case p.Ack == c.sndUna && p.Win == prevWnd && len(c.rtq) > 0 && p.Flags&vnet.FlagAck != 0:
		// A true duplicate — same ack, same window — signals a hole at
		// the receiver; a changed window is just a window update.
		c.dupAcks++
		if c.dupAcks == 3 {
			// Fast retransmit: resend the first unacknowledged segment
			// through its retained mapping.
			c.srv.stats.Retransmits++
			c.srv.stats.FastRetrans++
			c.transmit(c.rtq[0], true)
		}
	}
	c.pump()
}

// releaseCovered frees every fully acknowledged segment, attributing the
// release cycles to the owning request and completing requests whose
// last byte is covered.
func (c *VConn) releaseCovered() {
	for len(c.rtq) > 0 {
		s := c.rtq[0]
		if s.seq+int64(s.length) > c.sndUna {
			break
		}
		c.rtq = c.rtq[1:]
		before := c.ctx.CPU().Cycles()
		s.chain.Free(c.ctx)
		s.req.MapCycles += c.ctx.CPU().Cycles() - before
		if !s.req.completed && c.sndUna >= s.req.endSeq {
			s.req.completed = true
			c.srv.stats.Completed++
			if c.srv.OnComplete != nil {
				c.srv.OnComplete(c, s.req)
			}
		}
	}
}

// Abort tears the connection down mid-send: every transmitted-but-
// unacknowledged and staged-but-unsent segment is released exactly once,
// unwinding RunRelease references so the windows' FreeRun/FreeBatch fire
// and the ledger balances.  Idempotent; late ACKs and timers observe
// closed and do nothing.
func (c *VConn) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	c.srv.stats.Aborted++
	rtq, staged, pending := c.rtq, c.staged, c.pending
	c.rtq, c.staged, c.queue, c.cur, c.pending = nil, nil, nil, nil, nil
	for _, s := range rtq {
		s.chain.Free(c.ctx)
	}
	for _, s := range staged {
		s.chain.Free(c.ctx)
	}
	for _, pg := range pending {
		pg.Unwire()
	}
}

// fail records a hard error and releases everything, like Abort but
// preserving the error for the driver.
func (c *VConn) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	c.Abort()
}

func (c *VConn) armRTO() {
	if c.rtoArmed || c.closed || len(c.rtq) == 0 {
		return
	}
	c.rtoArmed = true
	una := c.sndUna
	c.srv.Net.After(c.srv.RTO, func() {
		c.rtoArmed = false
		if c.closed || c.err != nil || len(c.rtq) == 0 {
			return
		}
		if c.sndUna == una {
			// No progress for a full RTO: retransmit the first hole.
			c.srv.stats.Retransmits++
			c.transmit(c.rtq[0], true)
		}
		c.armRTO()
	})
}

func (c *VConn) armRetry() {
	if c.retryArmed || c.closed {
		return
	}
	c.retryArmed = true
	c.srv.Net.After(c.srv.RetryDelay, func() {
		c.retryArmed = false
		if c.closed {
			return
		}
		c.pump()
	})
}

func (c *VConn) armProbe() {
	if c.probeArmed || c.closed {
		return
	}
	c.probeArmed = true
	c.srv.Net.After(c.srv.ProbeDelay, func() {
		c.probeArmed = false
		if c.closed || c.err != nil {
			return
		}
		if c.effWindow() == 0 && c.sndNxt == c.sndUna && (len(c.staged) > 0 || c.cur != nil || len(c.queue) > 0) {
			// Zero window, nothing in flight, more to send: probe for a
			// fresh window advertisement (the update may have been lost).
			c.srv.stats.Probes++
			c.link.Send(vnet.Packet{Flow: c.id, Flags: vnet.FlagProbe})
			c.armProbe()
			return
		}
		c.pump()
	})
}

// VClientStats counts client-side observations.
type VClientStats struct {
	BytesRecved int64
	DupSegs     uint64
	OOOQueued   uint64
	AcksSent    uint64
}

// VClient is the receiving end of one connection on a different machine:
// it reassembles the byte stream, acknowledges cumulatively, and drains
// its receive buffer at a configurable rate — the slow-reader knob.  It
// charges nothing to the server machine's CPUs, like the sink endpoints.
type VClient struct {
	net  *vnet.Net
	id   int
	link *vnet.Link // acks toward the server

	rcvNxt   int64
	bufCap   int
	buffered int
	// drainBytes per drainEvery cycles models the application read rate.
	drainBytes int
	drainEvery int64
	ooo        []vnet.Packet // out-of-order segments, seq-sorted
	drainArmed bool
	closed     bool
	stats      VClientStats
}

// NewVClient creates the client side of connection id: acks flow back on
// link, the receive buffer holds bufCap bytes, and the application reads
// drainBytes every drainEvery cycles.
func NewVClient(net *vnet.Net, id int, link *vnet.Link, bufCap, drainBytes int, drainEvery int64) *VClient {
	return &VClient{net: net, id: id, link: link, bufCap: bufCap,
		drainBytes: drainBytes, drainEvery: drainEvery}
}

// Stats returns a copy of the client counters.
func (cl *VClient) Stats() VClientStats { return cl.stats }

// Close stops the client: further deliveries are ignored and no more
// ACKs flow, as when the remote application vanishes mid-transfer.
func (cl *VClient) Close() { cl.closed = true }

// window is the advertised receive window.
func (cl *VClient) window() int {
	w := cl.bufCap - cl.buffered
	if w < 0 {
		w = 0
	}
	return w
}

// HandleData processes one delivered data packet (or probe).
func (cl *VClient) HandleData(p vnet.Packet) {
	if cl.closed {
		return
	}
	if p.Flags&vnet.FlagProbe != 0 {
		cl.sendAck()
		return
	}
	end := p.Seq + int64(p.Len)
	switch {
	case end <= cl.rcvNxt:
		// Entirely old: a retransmission that crossed our ACK.
		cl.stats.DupSegs++
		cl.sendAck()
		return
	case p.Seq > cl.rcvNxt:
		// Hole before this segment: queue it, duplicate-ACK the hole.
		cl.insertOOO(p)
		cl.stats.OOOQueued++
		cl.sendAck()
		return
	}
	cl.advance(end)
	// Pull any queued segments the advance made contiguous.
	for len(cl.ooo) > 0 && cl.ooo[0].Seq <= cl.rcvNxt {
		oend := cl.ooo[0].Seq + int64(cl.ooo[0].Len)
		cl.ooo = cl.ooo[1:]
		if oend > cl.rcvNxt {
			cl.advance(oend)
		}
	}
	cl.sendAck()
	cl.armDrain()
}

func (cl *VClient) advance(end int64) {
	n := end - cl.rcvNxt
	cl.rcvNxt = end
	cl.buffered += int(n)
	cl.stats.BytesRecved += n
}

func (cl *VClient) insertOOO(p vnet.Packet) {
	i := len(cl.ooo)
	for i > 0 && cl.ooo[i-1].Seq > p.Seq {
		i--
	}
	if i < len(cl.ooo) && cl.ooo[i].Seq == p.Seq {
		return // duplicate of a queued segment
	}
	cl.ooo = append(cl.ooo, vnet.Packet{})
	copy(cl.ooo[i+1:], cl.ooo[i:])
	cl.ooo[i] = p
}

func (cl *VClient) sendAck() {
	cl.stats.AcksSent++
	cl.link.Send(vnet.Packet{Flow: cl.id, Ack: cl.rcvNxt, Win: cl.window(), Flags: vnet.FlagAck})
}

// armDrain schedules the application's next read while data is buffered.
// Every drain re-advertises the window, which is both the window-update
// path that reopens a stalled sender and the ACK clock for slow readers.
func (cl *VClient) armDrain() {
	if cl.drainArmed || cl.closed || cl.buffered == 0 {
		return
	}
	cl.drainArmed = true
	cl.net.After(cl.drainEvery, func() {
		cl.drainArmed = false
		if cl.closed {
			return
		}
		d := cl.drainBytes
		if d > cl.buffered {
			d = cl.buffered
		}
		if d > 0 {
			cl.buffered -= d
			cl.sendAck()
		}
		cl.armDrain()
	})
}
