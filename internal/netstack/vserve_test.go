package netstack

import (
	"fmt"
	"sync"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
	"sfbuf/internal/vnet"
)

// vservePair is one connection: the server-side VConn and the client
// endpoint it streams to, wired through a lossy pair of simplex links.
type vservePair struct {
	conn   *VConn
	client *VClient
}

// newVServePair wires connection id across the network with the given
// loss/reorder percentages on both directions.
func newVServePair(k *kernel.Kernel, srv *VServer, net *vnet.Net, id int, ctx *smp.Context,
	lossPct, reorderPct int, bufCap, drainBytes int, drainEvery int64) *vservePair {
	var conn *VConn
	var client *VClient
	// Server → client: data. Client → server: acks.
	s2c := net.NewLink(1000, 5000, func(p vnet.Packet) { client.HandleData(p) })
	s2c.LossPct, s2c.ReorderPct = lossPct, reorderPct
	c2s := net.NewLink(1000, 5000, func(p vnet.Packet) { conn.HandleAck(p) })
	c2s.LossPct, c2s.ReorderPct = lossPct, reorderPct
	sw := k.Consumer("vserve").SendWindow()
	conn = srv.NewVConn(id, ctx, s2c, sw)
	client = NewVClient(net, id, c2s, bufCap, drainBytes, drainEvery)
	return &vservePair{conn: conn, client: client}
}

// umRequest builds a VRequest of size bytes backed by user memory.
func umRequest(um *vm.UserMem, off int, size int64) *VRequest {
	return &VRequest{
		Size: size,
		PageAt: func(_ *smp.Context, pi int) (*vm.Page, error) {
			pg, _, err := um.PageAt(off + pi*vm.PageSize)
			return pg, err
		},
	}
}

func bootVServeKernel(t testing.TB, entries int) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		PhysPages:    2048,
		Backed:       true,
		CacheEntries: entries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestVServeLossyCompletes streams several requests per connection over a
// 10%-loss, 20%-reorder network and checks every request completes, every
// byte arrives, and the mapping ledger balances at drain.
func TestVServeLossyCompletes(t *testing.T) {
	k := bootVServeKernel(t, 256)
	st := NewStack(k, MTUSmall)
	net := vnet.New(42)
	srv := NewVServer(st, net)
	um, err := vm.AllocUserMem(k.M.Phys, 64*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}

	const conns, reqsPer = 8, 3
	sizes := []int64{1000, 3 * vm.PageSize, 17*vm.PageSize + 123}
	var want int64
	pairs := make([]*vservePair, conns)
	for i := 0; i < conns; i++ {
		p := newVServePair(k, srv, net, i, k.Ctx(i%k.M.NumCPUs()),
			10, 20, DefaultWindow, 16*1024, 20_000)
		pairs[i] = p
		for r := 0; r < reqsPer; r++ {
			sz := sizes[r%len(sizes)]
			want += sz
			p.conn.Enqueue(umRequest(um, 0, sz))
		}
	}
	if fired := net.RunLimit(5_000_000); net.Pending() != 0 {
		t.Fatalf("network did not quiesce after %d events", fired)
	}

	var got int64
	for i, p := range pairs {
		if err := p.conn.Err(); err != nil {
			t.Fatalf("conn %d failed: %v", i, err)
		}
		got += p.client.Stats().BytesRecved
	}
	if got != want {
		t.Fatalf("clients received %d bytes, want %d", got, want)
	}
	ss := srv.Stats()
	if ss.Completed != conns*reqsPer {
		t.Fatalf("completed %d requests, want %d", ss.Completed, conns*reqsPer)
	}
	if ss.Retransmits == 0 {
		t.Fatal("10%% loss produced zero retransmits — loss path untested")
	}
	if st2 := k.Map.Stats(); st2.Allocs != st2.Frees {
		t.Fatalf("leaked mappings: allocs %d != frees %d", st2.Allocs, st2.Frees)
	}
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("user page %d still wired after drain", i)
		}
	}
}

// TestVServeSlowReader pushes a large response at a client that drains a
// trickle: the advertised window must throttle the sender (bounded
// in-flight mappings) and the transfer must still complete, exercising
// window updates and — when an update is lost — zero-window probes.
func TestVServeSlowReader(t *testing.T) {
	k := bootVServeKernel(t, 256)
	st := NewStack(k, MTUSmall)
	net := vnet.New(7)
	srv := NewVServer(st, net)
	um, err := vm.AllocUserMem(k.M.Phys, 64*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny receive buffer, slow drain, lossy ack path (to lose window
	// updates and force probes).
	p := newVServePair(k, srv, net, 0, k.Ctx(0), 15, 0, 8*1024, 2*1024, 10_000)
	size := int64(40 * vm.PageSize)
	p.conn.Enqueue(umRequest(um, 0, size))
	if net.RunLimit(5_000_000); net.Pending() != 0 {
		t.Fatal("slow-reader transfer did not quiesce")
	}
	if err := p.conn.Err(); err != nil {
		t.Fatal(err)
	}
	if got := p.client.Stats().BytesRecved; got != size {
		t.Fatalf("received %d bytes, want %d", got, size)
	}
	if srv.Stats().Completed != 1 {
		t.Fatal("request did not complete")
	}
	if st2 := k.Map.Stats(); st2.Allocs != st2.Frees {
		t.Fatalf("leaked mappings: allocs %d != frees %d", st2.Allocs, st2.Frees)
	}
}

// TestVServeStallBackoff overcommits a tiny mapping cache with many
// concurrent transfers: NoWait mapping failures must surface as counted
// stalls with backoff (not deadlock, not failure), and every transfer
// must still finish with the ledger balanced.
func TestVServeStallBackoff(t *testing.T) {
	k := bootVServeKernel(t, 32) // far smaller than aggregate demand
	st := NewStack(k, MTUSmall)
	net := vnet.New(11)
	srv := NewVServer(st, net)
	um, err := vm.AllocUserMem(k.M.Phys, 64*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	const conns = 12
	pairs := make([]*vservePair, conns)
	for i := range pairs {
		pairs[i] = newVServePair(k, srv, net, i, k.Ctx(i%k.M.NumCPUs()),
			0, 0, DefaultWindow, 32*1024, 20_000)
		pairs[i].conn.Enqueue(umRequest(um, 0, 24*vm.PageSize))
	}
	if net.RunLimit(5_000_000); net.Pending() != 0 {
		t.Fatal("overcommitted serve did not quiesce")
	}
	for i, p := range pairs {
		if err := p.conn.Err(); err != nil {
			t.Fatalf("conn %d failed: %v", i, err)
		}
		if got := p.client.Stats().BytesRecved; got != 24*vm.PageSize {
			t.Fatalf("conn %d received %d bytes", i, got)
		}
	}
	if srv.Stats().Stalls == 0 {
		t.Fatal("32-entry cache under 12 concurrent transfers produced zero stalls")
	}
	if st2 := k.Map.Stats(); st2.Allocs != st2.Frees {
		t.Fatalf("leaked mappings: allocs %d != frees %d", st2.Allocs, st2.Frees)
	}
}

// TestVServeChurnTeardown is the slow-reader teardown regression test: a
// connection aborted with transmitted-but-unacknowledged zero-copy pages
// must release each window's run references exactly once.  Double frees
// panic in mbuf.Ext; leaks fail the ledger check.  Clients are closed
// alongside the abort so late ACKs also exercise the closed-conn path.
func TestVServeChurnTeardown(t *testing.T) {
	k := bootVServeKernel(t, 256)
	st := NewStack(k, MTUSmall)
	net := vnet.New(1234)
	srv := NewVServer(st, net)
	um, err := vm.AllocUserMem(k.M.Phys, 64*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	const conns = 16
	rng := vnet.NewRand(99)
	pairs := make([]*vservePair, conns)
	aborted := 0
	for i := range pairs {
		// Slow drains keep unacknowledged windows in flight at abort time.
		p := newVServePair(k, srv, net, i, k.Ctx(i%k.M.NumCPUs()),
			10, 10, 16*1024, 2*1024, 15_000)
		pairs[i] = p
		p.conn.Enqueue(umRequest(um, 0, 32*vm.PageSize))
		p.conn.Enqueue(umRequest(um, 0, 8*vm.PageSize))
		if i%2 == 0 {
			aborted++
			at := 5_000 + rng.Int63n(400_000) // mid-transfer, windows unacked
			conn, cl := p.conn, p.client
			net.After(at, func() {
				conn.Abort()
				cl.Close()
			})
		}
	}
	if net.RunLimit(10_000_000); net.Pending() != 0 {
		t.Fatal("churned serve did not quiesce")
	}
	for i, p := range pairs {
		if err := p.conn.Err(); err != nil {
			t.Fatalf("conn %d failed: %v", i, err)
		}
		if i%2 == 0 && !p.conn.Closed() {
			t.Fatalf("conn %d was scheduled for abort but is open", i)
		}
	}
	if got := srv.Stats().Aborted; got != uint64(aborted) {
		t.Fatalf("aborted %d conns, want %d", got, aborted)
	}
	// The regression claim: after churn plus drain, every mapping the
	// serve path allocated has been freed exactly once.
	if st2 := k.Map.Stats(); st2.Allocs != st2.Frees {
		t.Fatalf("churn leaked mappings: allocs %d != frees %d", st2.Allocs, st2.Frees)
	}
	for i, pg := range um.Pages() {
		if pg.Wired() {
			t.Fatalf("user page %d still wired after churned drain", i)
		}
	}
}

// TestVServeAbortIdempotent aborts twice and replays a late ACK and a
// stale probe timer into the closed connection: nothing may double-free.
func TestVServeAbortIdempotent(t *testing.T) {
	k := bootVServeKernel(t, 256)
	st := NewStack(k, MTUSmall)
	net := vnet.New(5)
	srv := NewVServer(st, net)
	um, err := vm.AllocUserMem(k.M.Phys, 64*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	p := newVServePair(k, srv, net, 0, k.Ctx(0), 0, 0, DefaultWindow, 32*1024, 20_000)
	p.conn.Enqueue(umRequest(um, 0, 16*vm.PageSize))
	// Let a few transmissions happen, then abort mid-flight.
	net.RunLimit(3)
	p.conn.Abort()
	p.conn.Abort() // idempotent
	// Late ACK into the closed connection.
	p.conn.HandleAck(vnet.Packet{Flow: 0, Ack: 1460, Win: DefaultWindow, Flags: vnet.FlagAck})
	net.Run() // drain stale timers
	if st2 := k.Map.Stats(); st2.Allocs != st2.Frees {
		t.Fatalf("abort leaked mappings: allocs %d != frees %d", st2.Allocs, st2.Frees)
	}
	if srv.Stats().Aborted != 1 {
		t.Fatalf("double abort counted twice: %d", srv.Stats().Aborted)
	}
}

// TestVServeDeterministicReplay runs the same churned, lossy serve twice
// against fresh kernels and requires byte-identical packet schedules and
// identical serving counters.
func TestVServeDeterministicReplay(t *testing.T) {
	run := func() (uint64, VServeStats, vnet.Stats, int64) {
		k := bootVServeKernel(t, 128)
		st := NewStack(k, MTUSmall)
		net := vnet.New(2026)
		srv := NewVServer(st, net)
		um, err := vm.AllocUserMem(k.M.Phys, 64*vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		var bytes int64
		const conns = 6
		for i := 0; i < conns; i++ {
			p := newVServePair(k, srv, net, i, k.Ctx(i%k.M.NumCPUs()),
				10, 20, 32*1024, 8*1024, 20_000)
			p.conn.Enqueue(umRequest(um, 0, int64(5+i)*vm.PageSize))
			if i == 2 {
				conn, cl := p.conn, p.client
				net.After(120_000, func() { conn.Abort(); cl.Close() })
			}
			defer func(p *vservePair) { bytes += p.client.Stats().BytesRecved }(p)
		}
		if net.RunLimit(5_000_000); net.Pending() != 0 {
			t.Fatal("replay run did not quiesce")
		}
		return net.TraceHash(), srv.Stats(), net.Stats(), bytes
	}
	h1, s1, n1, _ := run()
	h2, s2, n2, _ := run()
	if h1 != h2 {
		t.Fatalf("trace hash diverged: %#x != %#x", h1, h2)
	}
	if s1 != s2 {
		t.Fatalf("serve stats diverged:\n%+v\n%+v", s1, s2)
	}
	if n1 != n2 {
		t.Fatalf("net stats diverged:\n%+v\n%+v", n1, n2)
	}
}

// TestVServeConcurrentStress drives several independent virtual networks
// from separate goroutines against one shared kernel, with churn, for the
// race detector: the serving state is per-goroutine but every mapping
// operation contends on the shared engines.
func TestVServeConcurrentStress(t *testing.T) {
	k := bootVServeKernel(t, 256)
	st := NewStack(k, MTUSmall)
	const workers, conns = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			net := vnet.New(uint64(1000 + w))
			srv := NewVServer(st, net)
			um, err := vm.AllocUserMem(k.M.Phys, 32*vm.PageSize)
			if err != nil {
				errs <- err
				return
			}
			pairs := make([]*vservePair, conns)
			for i := range pairs {
				ctx := k.Ctx((w*conns + i) % k.M.NumCPUs())
				p := newVServePair(k, srv, net, i, ctx, 10, 10, 16*1024, 4*1024, 15_000)
				pairs[i] = p
				p.conn.Enqueue(umRequest(um, 0, 12*vm.PageSize))
				if i%3 == 0 {
					conn, cl := p.conn, p.client
					net.After(80_000, func() { conn.Abort(); cl.Close() })
				}
			}
			if net.RunLimit(5_000_000); net.Pending() != 0 {
				errs <- fmt.Errorf("worker %d did not quiesce", w)
				return
			}
			for i, p := range pairs {
				if err := p.conn.Err(); err != nil {
					errs <- fmt.Errorf("worker %d conn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st2 := k.Map.Stats(); st2.Allocs != st2.Frees {
		t.Fatalf("concurrent serve leaked mappings: allocs %d != frees %d", st2.Allocs, st2.Frees)
	}
}
