// Package cycles provides the cycle-denominated time arithmetic used by the
// simulated machine.
//
// Every cost in the simulator — a TLB invalidation, an interprocessor
// interrupt, a byte copied — is expressed in CPU cycles, mirroring how the
// paper reports its microbenchmark measurements (Section 3).  Converting
// cycles to wall-clock time requires a clock frequency, which is a property
// of the simulated platform.
package cycles

import "fmt"

// Cycles counts CPU clock cycles.  It is signed so that intermediate
// arithmetic (differences, calibration deltas) is convenient, but a
// negative cycle count is always a bug.
type Cycles int64

// GHz is a processor clock frequency in gigahertz.
type GHz float64

// Seconds converts a cycle count to seconds at the given clock frequency.
func (c Cycles) Seconds(f GHz) float64 {
	if f <= 0 {
		return 0
	}
	return float64(c) / (float64(f) * 1e9)
}

// PerByte scales a fractional per-byte cycle cost over n bytes, rounding to
// the nearest whole cycle.  Costs such as copy and checksum bandwidth are
// expressed as fractional cycles per byte.
func PerByte(costPerByte float64, n int) Cycles {
	return Cycles(costPerByte*float64(n) + 0.5)
}

// String formats the count with a thousands-group separator so large counts
// stay readable in reports.
func (c Cycles) String() string {
	n := int64(c)
	if n < 0 {
		return "-" + Cycles(-n).String()
	}
	if n < 1000 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%s,%03d", Cycles(n/1000).String(), n%1000)
}

// MBps computes bandwidth in megabytes per second (1 MB = 1e6 bytes) for
// bytes moved in c cycles at frequency f.  It returns 0 when c == 0.
func MBps(bytes int64, c Cycles, f GHz) float64 {
	s := c.Seconds(f)
	if s <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / s
}

// Mbps computes bandwidth in megabits per second (1 Mbit = 1e6 bits).
func Mbps(bytes int64, c Cycles, f GHz) float64 {
	return MBps(bytes, c, f) * 8
}

// PerSecond computes an event rate (e.g. PostMark transactions per second)
// for n events completed in c cycles at frequency f.
func PerSecond(n int64, c Cycles, f GHz) float64 {
	s := c.Seconds(f)
	if s <= 0 {
		return 0
	}
	return float64(n) / s
}
