package cycles

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*math.Max(1, math.Abs(a)+math.Abs(b))
}

func TestSeconds(t *testing.T) {
	if got := Cycles(2_400_000_000).Seconds(2.4); !almostEqual(got, 1.0) {
		t.Fatalf("2.4e9 cycles at 2.4 GHz = %v s, want 1", got)
	}
	if got := Cycles(100).Seconds(0); got != 0 {
		t.Fatalf("zero frequency should give 0, got %v", got)
	}
}

func TestPerByte(t *testing.T) {
	if got := PerByte(1.5, 1000); got != 1500 {
		t.Fatalf("PerByte = %v", got)
	}
	if got := PerByte(0.3, 10); got != 3 {
		t.Fatalf("PerByte = %v", got)
	}
	// Rounds to nearest.
	if got := PerByte(0.5, 1); got != 1 {
		t.Fatalf("PerByte(0.5,1) = %v, want 1", got)
	}
}

func TestBandwidthHelpers(t *testing.T) {
	// 100 MB moved in 1 simulated second at 1 GHz.
	c := Cycles(1_000_000_000)
	if got := MBps(100_000_000, c, 1); !almostEqual(got, 100) {
		t.Fatalf("MBps = %v, want 100", got)
	}
	if got := Mbps(100_000_000, c, 1); !almostEqual(got, 800) {
		t.Fatalf("Mbps = %v, want 800", got)
	}
	if got := PerSecond(500, c, 1); !almostEqual(got, 500) {
		t.Fatalf("PerSecond = %v, want 500", got)
	}
	if MBps(1, 0, 1) != 0 || PerSecond(1, 0, 1) != 0 {
		t.Fatal("zero cycles must yield zero rates")
	}
}

func TestString(t *testing.T) {
	cases := map[Cycles]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		1234567:    "1,234,567",
		-42:        "-42",
		-1234567:   "-1,234,567",
		1000000000: "1,000,000,000",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int64(c), got, want)
		}
	}
}

func TestQuickMbpsIsEightTimesMBps(t *testing.T) {
	f := func(bytes uint32, cyc uint32) bool {
		c := Cycles(cyc) + 1
		return almostEqual(Mbps(int64(bytes), c, 2.4), 8*MBps(int64(bytes), c, 2.4))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
