package sfbuf

import (
	"errors"
	"sync"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

type i386Rig struct {
	m     *smp.Machine
	pm    *pmap.Pmap
	arena *kva.Arena
	sf    *I386
}

func newI386Rig(t *testing.T, p arch.Platform, entries int) *i386Rig {
	t.Helper()
	m := smp.NewMachine(p, 256, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	sf, err := NewI386(m, pm, arena, entries)
	if err != nil {
		t.Fatal(err)
	}
	return &i386Rig{m: m, pm: pm, arena: arena, sf: sf}
}

func (r *i386Rig) page(t *testing.T) *vm.Page {
	t.Helper()
	pg, err := r.m.Phys.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestAllocFreeBasic(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 8)
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b, err := r.sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Page() != pg {
		t.Fatal("sf_buf_page wrong")
	}
	if b.KVA() == 0 {
		t.Fatal("sf_buf_kva zero")
	}
	// The mapping actually works.
	got, err := r.pm.Translate(ctx, b.KVA(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got != pg {
		t.Fatal("mapping resolves to wrong page")
	}
	r.sf.Free(ctx, b)
	if r.sf.InactiveLen() != 8 {
		t.Fatalf("inactive = %d, want 8 (buf returned)", r.sf.InactiveLen())
	}
}

func TestSharingSamePageSameBuf(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 8)
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b1, _ := r.sf.Alloc(ctx, pg, 0)
	b2, _ := r.sf.Alloc(ctx, pg, 0)
	if b1 != b2 {
		t.Fatal("same page must share one sf_buf")
	}
	ref, _, _ := r.sf.LookupRef(pg)
	if ref != 2 {
		t.Fatalf("ref = %d, want 2", ref)
	}
	r.sf.Free(ctx, b1)
	if r.sf.InactiveLen() != 7 {
		t.Fatal("buf must stay off the inactive list while referenced")
	}
	r.sf.Free(ctx, b2)
	if r.sf.InactiveLen() != 8 {
		t.Fatal("buf must return to inactive at ref 0")
	}
	s := r.sf.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", s)
	}
}

func TestInactiveBufStaysValidAndRevives(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 8)
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b1, _ := r.sf.Alloc(ctx, pg, 0)
	r.sf.Free(ctx, b1)
	// "An unused sf_buf may still represent a valid mapping."
	if r.sf.ValidMappings() != 1 {
		t.Fatal("valid mapping dropped on free")
	}
	b2, err := r.sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b1 {
		t.Fatal("revival must return the same sf_buf")
	}
	if r.sf.Stats().Hits != 1 {
		t.Fatal("revival must count as a cache hit")
	}
	r.sf.Free(ctx, b2)
}

func TestLRUVictimSelection(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 2)
	ctx := r.m.Ctx(0)
	pA, pB, pC := r.page(t), r.page(t), r.page(t)
	bA, _ := r.sf.Alloc(ctx, pA, 0)
	bB, _ := r.sf.Alloc(ctx, pB, 0)
	r.sf.Free(ctx, bA) // A becomes LRU
	r.sf.Free(ctx, bB)
	// Allocating C must evict A (the least recently freed), not B.
	bC, _ := r.sf.Alloc(ctx, pC, 0)
	if bC != bA {
		t.Fatal("victim should be the LRU buffer")
	}
	if _, _, ok := r.sf.LookupRef(pA); ok {
		t.Fatal("A's mapping must leave the hash")
	}
	if _, _, ok := r.sf.LookupRef(pB); !ok {
		t.Fatal("B's mapping must survive")
	}
	r.sf.Free(ctx, bC)
}

func TestNoWaitAndSleepWakeup(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx := r.m.Ctx(0)
	pg1, pg2 := r.page(t), r.page(t)
	b1, _ := r.sf.Alloc(ctx, pg1, 0)

	if _, err := r.sf.Alloc(ctx, pg2, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}

	// A second thread sleeps until the first frees.
	done := make(chan *Buf)
	go func() {
		ctx2 := r.m.Ctx(1)
		b, err := r.sf.Alloc(ctx2, pg2, 0)
		if err != nil {
			panic(err)
		}
		done <- b
	}()
	// Give the goroutine a chance to block, then release.
	for r.sf.Stats().Sleeps == 0 {
	}
	r.sf.Free(ctx, b1)
	b2 := <-done
	if b2.Page() != pg2 {
		t.Fatal("woken allocation mapped wrong page")
	}
	r.sf.Free(r.m.Ctx(1), b2)
}

func TestInterruptibleSleep(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx := r.m.Ctx(0)
	b, _ := r.sf.Alloc(ctx, r.page(t), 0)

	ctx2 := r.m.Ctx(1)
	done := make(chan error)
	go func() {
		_, err := r.sf.Alloc(ctx2, r.page(t), Catch)
		done <- err
	}()
	for r.sf.Stats().Sleeps == 0 {
	}
	ctx2.Interrupt()
	r.sf.InterruptWakeup()
	if err := <-done; !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	r.sf.Free(ctx, b)
}

func TestAccessedBitOptimizationSkipsInvalidation(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx := r.m.Ctx(0)
	pA, pB := r.page(t), r.page(t)

	// Map A but never touch it: its PTE accessed bit stays clear.
	bA, _ := r.sf.Alloc(ctx, pA, 0)
	r.sf.Free(ctx, bA)
	r.m.ResetCounters()

	// Reusing the buffer for B must not invalidate anything.
	bB, _ := r.sf.Alloc(ctx, pB, 0)
	if got := r.m.Counters().LocalInv.Load(); got != 0 {
		t.Fatalf("local invalidations = %d, want 0 (accessed bit clear)", got)
	}
	if got := r.m.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("remote invalidations = %d, want 0", got)
	}
	// And the cpumask must be all CPUs, since no TLB can hold the old
	// mapping.
	_, mask, _ := r.sf.LookupRef(pB)
	if mask != r.m.AllCPUs() {
		t.Fatalf("cpumask = %v, want all", mask)
	}
	r.sf.Free(ctx, bB)
}

func TestAccessedMappingRequiresInvalidation(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx := r.m.Ctx(0)
	pA, pB := r.page(t), r.page(t)

	bA, _ := r.sf.Alloc(ctx, pA, 0)
	// Touch the mapping so its PTE accessed bit is set.
	if _, err := r.pm.Translate(ctx, bA.KVA(), false); err != nil {
		t.Fatal(err)
	}
	r.sf.Free(ctx, bA)
	r.m.ResetCounters()

	// Shared reuse must perform a global invalidation.
	bB, _ := r.sf.Alloc(ctx, pB, 0)
	if got := r.m.Counters().LocalInv.Load(); got != 1 {
		t.Fatalf("local invalidations = %d, want 1", got)
	}
	if got := r.m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote invalidations = %d, want 1", got)
	}
	r.sf.Free(ctx, bB)
}

func TestPrivateReuseSkipsShootdown(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx := r.m.Ctx(0)
	pA, pB := r.page(t), r.page(t)

	bA, _ := r.sf.Alloc(ctx, pA, Private)
	r.pm.Translate(ctx, bA.KVA(), false)
	r.sf.Free(ctx, bA)
	r.m.ResetCounters()

	bB, _ := r.sf.Alloc(ctx, pB, Private)
	if got := r.m.Counters().LocalInv.Load(); got != 1 {
		t.Fatalf("local invalidations = %d, want 1", got)
	}
	if got := r.m.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("remote invalidations = %d, want 0 for private mapping", got)
	}
	_, mask, _ := r.sf.LookupRef(pB)
	if mask != smp.CPUSet(0).Set(0) {
		t.Fatalf("cpumask = %v, want {0}", mask)
	}
	r.sf.Free(ctx, bB)
}

// TestCrossCPUHitPurgesStaleEntry is the protocol's subtlest requirement:
// when a CPU not in the mapping's cpumask allocates it, the CPU's own TLB
// might hold a stale entry for that virtual address from an earlier life,
// and must be purged before use.  We verify both the purge and — by data
// inspection through the honest MMU — that skipping it would have read the
// wrong page's bytes.
func TestCrossCPUHitPurgesStaleEntry(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx0, ctx1 := r.m.Ctx(0), r.m.Ctx(1)
	pOld, pNew := r.page(t), r.page(t)
	pOld.Data()[0] = 0xAA
	pNew.Data()[0] = 0xBB

	// Epoch 1: CPU 1 uses the (only) buffer mapped to pOld.
	b, _ := r.sf.Alloc(ctx1, pOld, 0)
	va := b.KVA()
	if g, _ := r.pm.Translate(ctx1, va, false); g.Data()[0] != 0xAA {
		t.Fatal("epoch-1 read wrong")
	}
	r.sf.Free(ctx1, b)

	// Epoch 2: CPU 0 takes the buffer for pNew as a PRIVATE mapping, so
	// no shootdown reaches CPU 1, whose TLB still caches va -> pOld.
	b2, _ := r.sf.Alloc(ctx0, pNew, Private)
	if b2.KVA() != va {
		t.Fatal("test requires buffer reuse")
	}
	if got, ok := r.m.CPU(1).TLBFrameOf(pmap.VPN(va)); !ok || got != pOld.Frame() {
		t.Fatal("CPU 1 should still hold the stale translation")
	}

	// Epoch 3: CPU 1 allocates pNew.  The hash hit path must notice CPU 1
	// is missing from the cpumask and purge the stale entry.
	b3, _ := r.sf.Alloc(ctx1, pNew, 0)
	if b3 != b2 {
		t.Fatal("expected shared buffer")
	}
	g, err := r.pm.Translate(ctx1, va, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data()[0] != 0xBB {
		t.Fatalf("CPU 1 read %#x through a stale TLB entry: coherence protocol broken", g.Data()[0])
	}
	r.sf.Free(ctx0, b2)
	r.sf.Free(ctx1, b3)
}

// TestSharedAllocShootsMissingCPUs: allocating a private-to-other-CPU
// mapping *without* Private must make it globally visible.
func TestSharedAllocShootsMissingCPUs(t *testing.T) {
	r := newI386Rig(t, arch.XeonMPHTT(), 1)
	ctx0 := r.m.Ctx(0)
	pA, pB := r.page(t), r.page(t)

	// Establish an accessed mapping so the next reuse zeroes the mask,
	// then take the buffer CPU-private on CPU 0.
	bA, _ := r.sf.Alloc(ctx0, pA, 0)
	r.pm.Translate(ctx0, bA.KVA(), false)
	r.sf.Free(ctx0, bA)
	bB, _ := r.sf.Alloc(ctx0, pB, Private)
	r.pm.Translate(ctx0, bB.KVA(), false)
	_, mask, _ := r.sf.LookupRef(pB)
	if mask.Count() != 1 {
		t.Fatalf("mask = %v, want single CPU", mask)
	}
	r.sf.Free(ctx0, bB)
	r.m.ResetCounters()

	ctx2 := r.m.Ctx(2)
	b2, _ := r.sf.Alloc(ctx2, pB, 0) // shared: must repair everywhere
	if b2 != bB {
		t.Fatal("expected hash hit")
	}
	_, mask, _ = r.sf.LookupRef(pB)
	if mask != r.m.AllCPUs() {
		t.Fatalf("mask = %v, want all CPUs after shared alloc", mask)
	}
	// CPU 2 was missing from the mask: one local invalidation.  CPUs 1,3
	// were missing too: one shootdown issue covers them.
	if got := r.m.Counters().LocalInv.Load(); got != 1 {
		t.Fatalf("local = %d, want 1", got)
	}
	if got := r.m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote issued = %d, want 1", got)
	}
	r.sf.Free(ctx2, b2)
}

// TestProseMissPathIsUnsound reproduces the three-epoch scenario that
// makes the paper's *prose* miss path ("accessed bit clear -> cpumask =
// all processors") unsound, and verifies the shipped-code semantics this
// package implements (retain the mask; zero it only when the replaced
// mapping was accessed) keep the data correct:
//
//	epoch A: CPU 1 maps and reads page A (its TLB caches kva -> A);
//	epoch B: CPU 0 takes the buffer CPU-private for page B and never
//	         touches it — CPU 1 keeps its stale entry, mask = {0};
//	epoch C: the buffer is reused for page C with B's accessed bit
//	         clear.  Under the prose rule the mask would become "all"
//	         and CPU 1 could read page A's bytes as page C's.  Under
//	         the shipped rule the mask stays {0}, so CPU 1's first
//	         allocation purges its TLB before reading.
func TestProseMissPathIsUnsound(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx0, ctx1 := r.m.Ctx(0), r.m.Ctx(1)
	pA, pB, pC := r.page(t), r.page(t), r.page(t)
	pA.Data()[0] = 0xAA
	pC.Data()[0] = 0xCC

	// Epoch A.
	bA, _ := r.sf.Alloc(ctx1, pA, 0)
	va := bA.KVA()
	if g, _ := r.pm.Translate(ctx1, va, false); g.Data()[0] != 0xAA {
		t.Fatal("epoch A read wrong")
	}
	r.sf.Free(ctx1, bA)

	// Epoch B: CPU-private to CPU 0, never touched.
	bB, _ := r.sf.Alloc(ctx0, pB, Private)
	if bB.KVA() != va {
		t.Fatal("test requires single-buffer reuse")
	}
	r.sf.Free(ctx0, bB)

	// Epoch C: reuse with accessed bit clear.
	bC, _ := r.sf.Alloc(ctx0, pC, Private)
	if bC.KVA() != va {
		t.Fatal("test requires single-buffer reuse")
	}
	_, mask, _ := r.sf.LookupRef(pC)
	if mask.Has(1) {
		t.Fatalf("mask %v must exclude CPU 1: its TLB is stale", mask)
	}
	// CPU 1 still holds kva -> pA; prove it, then prove the protocol
	// repairs it on CPU 1's next allocation.
	if f, ok := r.m.CPU(1).TLBFrameOf(pmap.VPN(va)); !ok || f != pA.Frame() {
		t.Fatal("scenario setup failed: CPU 1 lost its stale entry")
	}
	bC1, _ := r.sf.Alloc(ctx1, pC, 0)
	g, err := r.pm.Translate(ctx1, va, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data()[0] != 0xCC {
		t.Fatalf("CPU 1 read %#x: the prose semantics corruption", g.Data()[0])
	}
	r.sf.Free(ctx0, bC)
	r.sf.Free(ctx1, bC1)
}

func TestFreeUnreferencedPanics(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 2)
	ctx := r.m.Ctx(0)
	b, _ := r.sf.Alloc(ctx, r.page(t), 0)
	r.sf.Free(ctx, b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	r.sf.Free(ctx, b)
}

func TestUPKernelNeverShootsDown(t *testing.T) {
	r := newI386Rig(t, arch.XeonUP(), 2)
	ctx := r.m.Ctx(0)
	for i := 0; i < 10; i++ {
		pg := r.page(t)
		b, _ := r.sf.Alloc(ctx, pg, 0)
		r.pm.Translate(ctx, b.KVA(), true)
		r.sf.Free(ctx, b)
	}
	if got := r.m.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("UP kernel issued %d remote invalidations", got)
	}
}

func TestConcurrentAllocFreeRace(t *testing.T) {
	r := newI386Rig(t, arch.XeonMPHTT(), 16)
	pages := make([]*vm.Page, 32)
	for i := range pages {
		pages[i] = r.page(t)
	}
	var wg sync.WaitGroup
	for cpu := 0; cpu < 4; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := r.m.Ctx(cpu)
			for i := 0; i < 500; i++ {
				pg := pages[(i*7+cpu*13)%len(pages)]
				b, err := r.sf.Alloc(ctx, pg, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if b.Page() != pg {
					t.Error("wrong page under concurrency")
					return
				}
				if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
					t.Error(err)
					return
				}
				r.sf.Free(ctx, b)
			}
		}(cpu)
	}
	wg.Wait()
	if r.sf.InactiveLen() != 16 {
		t.Fatalf("inactive = %d, want 16 after all frees", r.sf.InactiveLen())
	}
	s := r.sf.Stats()
	if s.Allocs != s.Frees || s.Allocs != 2000 {
		t.Fatalf("allocs/frees = %d/%d", s.Allocs, s.Frees)
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}
