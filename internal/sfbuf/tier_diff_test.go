package sfbuf

// Differential and concurrency tests for tier migration.  The contract
// under test is the tentpole's invisibility half: MoveToTier may shuffle
// an extent's frames between the fast and slow tiers of a buddy pool —
// under mapping traffic, parked windows, raw churn and defrag passes —
// but it may never change one observable byte, leave a stale translation
// dereferenceable, or unbalance a ledger.  Engines that cannot tier
// (the global-lock cache, the original kernel, any untiered build)
// replay the same trace with the tier ops as no-ops, and everyone must
// end byte-identical.

import (
	"math/rand"
	"sync"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
	"sfbuf/internal/vm/physcheck"
)

// diffTierFast is the per-socket fast-frame count of the tiered builds:
// an eighth of the pool, small enough that the traces' working set
// genuinely straddles the boundary.
const diffTierFast = diffBuddyFrames / 8

// newDiffEnginesTiered is newDiffEnginesBuddy with the physical pool
// split into tiers: same buddy frames, same reservation, same engines
// and Migrators, plus SetTierSplit before any page is carved.
func newDiffEnginesTiered(t *testing.T, plat arch.Platform) []*diffEngine {
	t.Helper()
	spanOrder := 0
	for 1<<spanOrder < diffMigSpan {
		spanOrder++
	}
	build := func(name string, mk func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error)) *diffEngine {
		m := smp.NewMachineWithPhys(plat, vm.NewBuddyPhysMem(diffBuddyFrames, true))
		m.Phys.SetReservation(spanOrder, 2)
		m.Phys.SetTierSplit(diffTierFast)
		pm := pmap.New(m)
		arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
		sf, err := mk(m, pm, arena)
		if err != nil {
			t.Fatal(err)
		}
		pages := make([]*vm.Page, diffPages)
		for i := range pages {
			pg, err := m.Phys.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			pg.Data()[0] = byte(i)
			pages[i] = pg
		}
		e := &diffEngine{name: name, m: m, pm: pm, sf: sf, pages: pages}
		e.mig = NewMigrator(sf, MigrateConfig{Span: diffMigSpan, MaxResident: diffMigSpan / 2})
		return e
	}
	shardCfg := ShardedConfig{ReclaimBatch: 8, PerCPUFree: 4}
	return []*diffEngine{
		build("sharded", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			return NewI386Sharded(m, pm, arena, diffEntries, shardCfg)
		}),
		build("global", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			return NewI386(m, pm, arena, diffEntries)
		}),
		build("original", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			return NewOriginal(m, pm, arena), nil
		}),
	}
}

// genTraceTier builds a revive-biased mapping trace interleaved with raw
// physical churn (kind 10), frequent tier moves over random page bands
// (kind 11, alternating destinations so frames cross the boundary both
// ways), and occasional defrag passes (kind 9) so tier moves and
// evacuations compose on the same pool.
func genTraceTier(seed int64, ncpu int) []diffOp {
	base := genTraceBias(seed, ncpu, 25)
	rng := rand.New(rand.NewSource(seed * 104729))
	var out []diffOp
	churnLive := 0
	const churnCap = 420
	for i, op := range base {
		out = append(out, op)
		if i%2 == 0 {
			if churnLive < churnCap && (churnLive == 0 || rng.Intn(5) < 3) {
				n := 1 + rng.Intn(6)
				out = append(out, diffOp{kind: 10, count: n})
				churnLive += n
			} else {
				out = append(out, diffOp{kind: 10, val: 1, pick: rng.Intn(1 << 16)})
				churnLive--
			}
		}
		if i%7 == 6 {
			n := 1 + rng.Intn(8)
			out = append(out, diffOp{kind: 11, page: rng.Intn(diffPages - n), count: n,
				cpu: rng.Intn(ncpu), val: byte(rng.Intn(2))})
		}
		if i%40 == 39 {
			out = append(out, diffOp{kind: 9, count: 2, cpu: rng.Intn(ncpu)})
		}
	}
	return out
}

// TestDifferentialTiered replays tier-move traces against all three
// engines on TIERED buddy pools and against the untiered buddy builds of
// the same engines, and requires byte-identical observables across all
// six — a tiered pool whose keeper-driven moves change any observable,
// or an untiered build perturbed by the tier split's mere existence,
// diverges immediately.  The sharded tiered engine must actually move
// pages across the boundary (asserted via TierMoves), and every pool
// passes the structural free-list audit afterwards.
func TestDifferentialTiered(t *testing.T) {
	plat := arch.XeonMPHTT()
	var tierMovesTotal uint64
	for seed := int64(71); seed <= 73; seed++ {
		ops := genTraceTier(seed, plat.NumCPUs)
		var ref [diffPages]byte
		for i, e := range newDiffEnginesTiered(t, plat) {
			got := replayTrace(t, e, ops)
			if err := physcheck.Audit(e.m.Phys); err != nil {
				t.Fatalf("seed %d: tiered %s after replay: %v", seed, e.name, err)
			}
			if i == 0 {
				ref = got
				tierMovesTotal += e.mig.Stats().TierMoves
				continue
			}
			if got != ref {
				t.Fatalf("seed %d: tiered engine %s final bytes diverge from sharded", seed, e.name)
			}
		}
		for _, e := range newDiffEnginesBuddy(t, plat, 1) {
			got := replayTrace(t, e, ops)
			if err := physcheck.Audit(e.m.Phys); err != nil {
				t.Fatalf("seed %d: untiered %s after replay: %v", seed, e.name, err)
			}
			if got != ref {
				t.Fatalf("seed %d: untiered %s diverges from the tiered replay", seed, e.name)
			}
		}
	}
	if tierMovesTotal == 0 {
		t.Fatal("the tier traces never moved a page across the boundary — the harness is not exercising MoveToTier")
	}
}

// TestTierConcurrentStress is the -race stressor for tier migration: one
// goroutine bounces a shared extent between the tiers as fast as it can
// while churner goroutines map, read-verify and unmap the same extent's
// pages through the honest TLB.  The per-page quiescence bar means the
// mover skips whatever the churners hold at that instant — and no
// interleaving may surface a stale byte, leak a frame or unbalance the
// ledger.
func TestTierConcurrentStress(t *testing.T) {
	r := newMigrateRig(t, 512, 64, ShardedConfig{ReclaimBatch: 8, PerCPUFree: 4})
	r.m.Phys.SetTierSplit(128)
	const extLen = 32
	pages, err := r.m.Phys.AllocN(extLen)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range pages {
		pg.Data()[0] = byte(i + 1)
	}
	const (
		moveRounds  = 300
		churnRounds = 600
		churners    = 2
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := r.m.Ctx(3)
		for i := 0; i < moveRounds; i++ {
			r.mig.MoveToTier(ctx, pages, i%2, 0)
		}
	}()
	errs := make([]error, churners)
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := r.m.Ctx(c)
			for i := 0; i < churnRounds; i++ {
				idx := (i*3 + c*7) % extLen
				pg := pages[idx]
				b, aerr := r.sf.Alloc(ctx, pg, NoWait)
				if aerr != nil {
					continue // cache momentarily full: the stress goes on
				}
				got, terr := r.pm.Translate(ctx, b.KVA(), false)
				if terr != nil {
					errs[c] = terr
					return
				}
				// The page is pinned between Alloc and Free, so the mover
				// skips it: reading its byte here is race-free, and it must
				// be the stamp no matter which tier the frame sits in.
				if got.Data()[0] != byte(idx+1) {
					t.Errorf("churner %d round %d: page %d reads %#x, want %#x — stale byte surfaced mid-move",
						c, i, idx, got.Data()[0], byte(idx+1))
				}
				r.sf.Free(ctx, b)
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("churner %d: %v", c, err)
		}
	}
	// Quiesced: every byte must have ridden its page through the moves.
	for i, pg := range pages {
		if pg.Data()[0] != byte(i+1) {
			t.Fatalf("page %d reads %#x after the stress, want %#x", i, pg.Data()[0], byte(i+1))
		}
	}
	if st := r.sf.Stats(); st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after the stress", st.Allocs, st.Frees)
	}
	if err := physcheck.Audit(r.m.Phys); err != nil {
		t.Fatal(err)
	}
	for _, pg := range pages {
		r.m.Phys.Free(pg)
	}
	if free := r.m.Phys.FreeFrames(); free != 512 {
		t.Fatalf("free frames = %d, want 512 — a tier move leaked or double-freed a frame", free)
	}
}
