// Package sfbuf implements the paper's contribution: the sf_buf ephemeral
// mapping interface (Table 1) and its machine-dependent implementations.
//
// The interface combines two actions that kernels historically performed
// through separate interfaces — allocating a temporary kernel virtual
// address and installing a virtual-to-physical translation — so that an
// implementation may reuse existing mappings and avoid TLB coherence
// traffic.  Four implementations are provided:
//
//   - I386 (Section 4.2): a mapping cache over a bounded kernel VA region —
//     a hash table of valid mappings indexed by physical page, an LRU
//     inactive list whose entries may still be valid, a per-mapping cpumask,
//     and the accessed-bit optimization.
//   - AMD64 (Section 4.3): the direct map makes every operation trivial;
//     an sf_buf is just a view of the vm_page and nothing ever invalidates.
//   - Sparc64 (Section 4.4): a hybrid that uses the direct map when cache
//     colors are compatible and a color-aware mapping cache otherwise.
//   - Original: the pre-sf_buf baseline — every mapping allocates a fresh
//     kernel virtual address and every unmapping performs a global TLB
//     invalidation.  Every evaluation figure compares against it.
package sfbuf

import (
	"errors"

	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Flags modify sf_buf_alloc behaviour (Section 4.1).
type Flags uint8

const (
	// Private marks the mapping as for the private use of the calling
	// thread: implementations may skip remote TLB invalidations because
	// no other CPU will ever dereference the returned address.
	Private Flags = 1 << iota
	// NoWait forbids sleeping: when no sf_buf is available Alloc
	// returns ErrWouldBlock instead of waiting.
	NoWait
	// Catch makes a sleeping Alloc interruptible by a signal, in which
	// case it returns ErrInterrupted.  It has no effect when NoWait is
	// also given, matching the paper's rule.
	Catch
)

// Errors returned by Alloc.
var (
	// ErrWouldBlock reports that no sf_buf was available and NoWait
	// forbade sleeping (the paper's NULL return).
	ErrWouldBlock = errors.New("sfbuf: no buffers available")
	// ErrInterrupted reports that an interruptible sleep was broken by
	// a signal (the paper's NULL return under "interruptible").
	ErrInterrupted = errors.New("sfbuf: sleep interrupted by signal")
	// ErrBatchTooLarge reports an AllocBatch request for more pages than
	// the mapping cache holds buffers: such a batch could never be
	// satisfied and sleeping for it would deadlock.
	ErrBatchTooLarge = errors.New("sfbuf: batch exceeds mapping-cache capacity")
)

// Buf is an ephemeral mapping object — the sf_buf.  The paper keeps it
// entirely opaque; here only the two accessor methods of Table 1 are
// exported.  The unexported fields mirror Figure 1's struct sf_buf: the
// mapped page, the immutable kernel virtual address, a reference count, a
// cpumask, and the inactive-list linkage.  The hash chain of Figure 1 is a
// Go map in this implementation.
type Buf struct {
	kva  uint64
	page *vm.Page

	// i386 / sparc64 mapping-cache state, owned by the cache's lock (for
	// the sharded cache: the lock of the shard the buf is currently
	// homed in, or exclusively by the holder while the buf is clean).
	ref     int
	cpumask smp.CPUSet
	// tlbmask is maintained only by the sharded cache: the CPUs that may
	// have pulled this mapping's translation into their TLBs during its
	// current life (the allocating CPU for Private mappings, every CPU
	// for shared ones).  It is the precise target set for the batched
	// teardown shootdown.
	tlbmask smp.CPUSet
	prev    *Buf // inactive list linkage (Figure 1's free_entry)
	next    *Buf
	inList  bool
	home    mapCore // owning cache, for sparc64's per-color dispatch
}

// KVA returns the kernel virtual address at which the mapping's page is
// addressable — sf_buf_kva().
func (b *Buf) KVA() uint64 { return b.kva }

// Page returns the physical page mapped by the buffer — sf_buf_page().
func (b *Buf) Page() *vm.Page { return b.page }

// Stats counts mapper events.  Hits and Misses describe the mapping cache
// (Section 6.5.2 reports cache hit rates); Sleeps counts blocked
// allocations; VAAllocs counts trips to the general-purpose kernel virtual
// address allocator, which only the original kernel takes per-mapping.
type Stats struct {
	Allocs      uint64
	Frees       uint64
	Hits        uint64
	Misses      uint64
	Sleeps      uint64
	Interrupted uint64
	WouldBlock  uint64
	VAAllocs    uint64

	// Sharded-cache events; zero for the paper's global-lock cache.
	// FreelistAllocs counts misses served by a clean buffer from the
	// allocating CPU's freelist or the overflow pool without touching
	// any shard's inactive list; Reclaims counts batched teardown rounds
	// and Reclaimed the buffers those rounds recycled.
	FreelistAllocs uint64
	Reclaims       uint64
	Reclaimed      uint64

	// Vectored-path events: BatchAllocs and BatchFrees count AllocBatch
	// and FreeBatch calls, BatchPages the pages those calls moved.  The
	// per-page Allocs/Frees above include batched pages, so the batch
	// fraction of a workload is BatchPages / Allocs.
	BatchAllocs uint64
	BatchFrees  uint64
	BatchPages  uint64
}

// HitRate returns the mapping-cache hit rate in [0, 1], or 0 when no
// allocations occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BatchMapper is the historical name for a mapper with the vectored
// calls.  The vectored API is now part of Mapper itself, so the alias is
// kept only for source compatibility.
type BatchMapper = Mapper

// Mapper is the machine-independent ephemeral mapping interface of
// Table 1, extended with the vectored calls AllocBatch and FreeBatch.
// Alloc is sf_buf_alloc, Free is sf_buf_free; the two remaining functions
// of the table are methods on Buf.
//
// The vectored calls map or unmap a run of pages as one request, the way
// the original kernel's pmap_qenter and pmap_qremove handle a multi-page
// buffer.  Their batching leverage is engine-specific: the original
// kernel performs one virtual-address allocation and one ranged TLB
// shootdown per run; the sharded cache takes one shard-lock round per
// shard per batch, restocks clean buffers with bulk freelist pops, and
// retires the whole batch's teardown debt in a single queued shootdown
// flush; the paper's global-lock cache runs a semantics-preserving loop,
// so figure reproduction on it stays byte-identical to the per-page path.
// NativeBatch reports which of these a mapper provides.
type Mapper interface {
	// Alloc returns an sf_buf mapping the given physical page.  An
	// implementation may return the same Buf to multiple callers mapping
	// the same page; the mapping remains valid until every caller has
	// called Free.
	Alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error)
	// Free releases one reference to the mapping.
	Free(ctx *smp.Context, b *Buf)
	// AllocBatch maps every page of the run, returning one Buf per page
	// in order.  The returned addresses need not be contiguous (only the
	// original kernel's 64-bit path guarantees a consecutive run), and
	// duplicate pages in one batch may share a Buf on engines that share
	// mappings.  On error no page of the batch remains mapped.
	AllocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error)
	// FreeBatch releases one reference to every mapping of the batch.
	// A batch obtained from AllocBatch must be released through
	// FreeBatch as a unit: the original kernel recycles the run's
	// address range whole.  Cache engines additionally accept any
	// combination of single and batched bufs.
	FreeBatch(ctx *smp.Context, bufs []*Buf)
	// Name identifies the implementation for reports.
	Name() string
	// Stats returns cumulative mapper statistics.
	Stats() Stats
	// ResetStats zeroes the statistics.
	ResetStats()
}

// nativeBatcher is implemented by mappers whose vectored path is a
// genuine fast path rather than a semantics-preserving loop.
type nativeBatcher interface {
	nativeBatch() bool
}

// NativeBatch reports whether m's AllocBatch/FreeBatch amortize work
// across the run — fewer lock round trips, bulk page-table passes, or
// coalesced shootdowns — rather than looping over the single-page calls.
// Subsystems use it to decide whether mapping a multi-page extent as a
// batch buys anything; the paper's global-lock cache reports false so the
// figure-reproduction experiments keep their exact per-page behaviour.
func NativeBatch(m Mapper) bool {
	nb, ok := m.(nativeBatcher)
	return ok && nb.nativeBatch()
}
