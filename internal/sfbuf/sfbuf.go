// Package sfbuf implements the paper's contribution: the sf_buf ephemeral
// mapping interface (Table 1) and its machine-dependent implementations.
//
// The interface combines two actions that kernels historically performed
// through separate interfaces — allocating a temporary kernel virtual
// address and installing a virtual-to-physical translation — so that an
// implementation may reuse existing mappings and avoid TLB coherence
// traffic.  Four implementations are provided:
//
//   - I386 (Section 4.2): a mapping cache over a bounded kernel VA region —
//     a hash table of valid mappings indexed by physical page, an LRU
//     inactive list whose entries may still be valid, a per-mapping cpumask,
//     and the accessed-bit optimization.
//   - AMD64 (Section 4.3): the direct map makes every operation trivial;
//     an sf_buf is just a view of the vm_page and nothing ever invalidates.
//   - Sparc64 (Section 4.4): a hybrid that uses the direct map when cache
//     colors are compatible and a color-aware mapping cache otherwise.
//   - Original: the pre-sf_buf baseline — every mapping allocates a fresh
//     kernel virtual address and every unmapping performs a global TLB
//     invalidation.  Every evaluation figure compares against it.
package sfbuf

import (
	"errors"

	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Flags modify sf_buf_alloc behaviour (Section 4.1).
type Flags uint8

const (
	// Private marks the mapping as for the private use of the calling
	// thread: implementations may skip remote TLB invalidations because
	// no other CPU will ever dereference the returned address.
	Private Flags = 1 << iota
	// NoWait forbids sleeping: when no sf_buf is available Alloc
	// returns ErrWouldBlock instead of waiting.
	NoWait
	// Catch makes a sleeping Alloc interruptible by a signal, in which
	// case it returns ErrInterrupted.  It has no effect when NoWait is
	// also given, matching the paper's rule.
	Catch
)

// Errors returned by Alloc.
var (
	// ErrWouldBlock reports that no sf_buf was available and NoWait
	// forbade sleeping (the paper's NULL return).
	ErrWouldBlock = errors.New("sfbuf: no buffers available")
	// ErrInterrupted reports that an interruptible sleep was broken by
	// a signal (the paper's NULL return under "interruptible").
	ErrInterrupted = errors.New("sfbuf: sleep interrupted by signal")
	// ErrBatchTooLarge reports an AllocBatch request for more pages than
	// the mapping cache holds buffers: such a batch could never be
	// satisfied and sleeping for it would deadlock.
	ErrBatchTooLarge = errors.New("sfbuf: batch exceeds mapping-cache capacity")
)

// Buf is an ephemeral mapping object — the sf_buf.  The paper keeps it
// entirely opaque; here only the two accessor methods of Table 1 are
// exported.  The unexported fields mirror Figure 1's struct sf_buf: the
// mapped page, the immutable kernel virtual address, a reference count, a
// cpumask, and the inactive-list linkage.  The hash chain of Figure 1 is a
// Go map in this implementation.
type Buf struct {
	kva  uint64
	page *vm.Page

	// i386 / sparc64 mapping-cache state, owned by the cache's lock (for
	// the sharded cache: the lock of the shard the buf is currently
	// homed in, or exclusively by the holder while the buf is clean).
	ref     int
	cpumask smp.CPUSet
	// tlbmask is maintained only by the sharded cache: the CPUs that may
	// have pulled this mapping's translation into their TLBs during its
	// current life (the allocating CPU for Private mappings, every CPU
	// for shared ones).  It is the precise target set for the batched
	// teardown shootdown.
	tlbmask smp.CPUSet
	prev    *Buf // inactive list linkage (Figure 1's free_entry)
	next    *Buf
	inList  bool
	home    mapCore // owning cache, for sparc64's per-color dispatch
}

// KVA returns the kernel virtual address at which the mapping's page is
// addressable — sf_buf_kva().
func (b *Buf) KVA() uint64 { return b.kva }

// Page returns the physical page mapped by the buffer — sf_buf_page().
func (b *Buf) Page() *vm.Page { return b.page }

// Run is a contiguous multi-page ephemeral mapping: one request whose
// pages are addressable through a single virtual window, so a copy can
// sweep across page boundaries and the ranged-translate cost model
// (pmap.TranslateRun) charges one page-table walk per contiguous PTE run
// instead of one per page.  Engines that cannot provide contiguity (the
// paper's global-lock cache, per-color splits on sparc64) return a
// degraded run over scattered per-page mappings; Contiguous reports
// which, and KVA(i) addresses page i correctly either way.
//
// A Run must be released as a unit through FreeRun on the mapper that
// allocated it.
type Run struct {
	pages  []*vm.Page
	base   uint64 // KVA of page 0 when contiguous
	contig bool
	bufs   []*Buf // per-page mappings, for engines that build runs from them
	views  []Buf  // lazily built per-page views of a window-backed run

	// Engine-private state.
	mask   smp.CPUSet // CPUs that may cache the window's translations
	tokens []*Buf     // sharded engine: clean buffers claimed as capacity
	win    *runWindow // window-backed runs: the reserved VA window
	home   mapCore    // owning cache core, when window-backed
}

// Len returns the run's length in pages.
func (r *Run) Len() int { return len(r.pages) }

// Pages returns the mapped pages in order.  Callers must not modify the
// slice.
func (r *Run) Pages() []*vm.Page { return r.pages }

// Contiguous reports whether the run occupies one consecutive virtual
// window (Base is then valid and ranged translation applies).
func (r *Run) Contiguous() bool { return r.contig }

// Base returns the kernel virtual address of the run's first page.  It
// panics on a non-contiguous run, where no single window exists; use
// KVA(i) or Bufs there.
func (r *Run) Base() uint64 {
	if !r.contig {
		panic("sfbuf: Base of a non-contiguous run")
	}
	return r.base
}

// KVA returns the kernel virtual address of the run's i'th page:
// base + i*PageSize on a contiguous run, the page's own mapping otherwise.
func (r *Run) KVA(i int) uint64 {
	if r.contig {
		return r.base + uint64(i)*vm.PageSize
	}
	return r.bufs[i].KVA()
}

// Bufs returns per-page Buf views of the run, for consumers that attach
// individual pages to longer-lived structures (mbuf externals).  On
// engines that build runs from per-page mappings they are the real Bufs;
// on window-backed runs they are synthetic views carrying each page's
// window address.  Either way they must NOT be passed to Free/FreeBatch —
// a run is released only through FreeRun.
func (r *Run) Bufs() []*Buf {
	if r.bufs != nil {
		return r.bufs
	}
	if r.views == nil {
		r.views = make([]Buf, len(r.pages))
		for i, pg := range r.pages {
			r.views[i] = Buf{kva: r.base + uint64(i)*vm.PageSize, page: pg}
		}
	}
	out := make([]*Buf, len(r.views))
	for i := range r.views {
		out[i] = &r.views[i]
	}
	return out
}

// Stats counts mapper events.  Hits and Misses describe the mapping cache
// (Section 6.5.2 reports cache hit rates); Sleeps counts blocked
// allocations; VAAllocs counts trips to the general-purpose kernel virtual
// address allocator, which only the original kernel takes per-mapping.
//
// Ledger semantics: Allocs counts pages successfully mapped — by Alloc,
// AllocBatch, or AllocRun — and Frees pages released, so Allocs == Frees
// after a drain.  A failed NoWait attempt counts only in WouldBlock,
// whether it was a single page, a batch, or a run.  (The seed counted
// failed single-page NoWait attempts in Allocs but failed batches not at
// all; FuzzBatchOps caught the asymmetry and this is the unified rule.)
type Stats struct {
	Allocs      uint64
	Frees       uint64
	Hits        uint64
	Misses      uint64
	Sleeps      uint64
	Interrupted uint64
	WouldBlock  uint64
	VAAllocs    uint64

	// Sharded-cache events; zero for the paper's global-lock cache.
	// FreelistAllocs counts misses served by a clean buffer from the
	// allocating CPU's freelist or the overflow pool without touching
	// any shard's inactive list; Reclaims counts batched teardown rounds
	// and Reclaimed the buffers those rounds recycled.
	FreelistAllocs uint64
	Reclaims       uint64
	Reclaimed      uint64

	// Vectored-path events: BatchAllocs and BatchFrees count AllocBatch
	// and FreeBatch calls, BatchPages the pages those calls moved.  The
	// per-page Allocs/Frees above include batched pages, so the batch
	// fraction of a workload is BatchPages / Allocs.
	BatchAllocs uint64
	BatchFrees  uint64
	BatchPages  uint64

	// Contiguous-run events: RunAllocs/RunFrees count AllocRun/FreeRun
	// calls and RunPages the pages they moved.  Run pages are included in
	// Allocs/Frees like batch pages.  On the original kernel a run IS a
	// pmap_qenter batch, so its batch counters increment alongside.
	RunAllocs uint64
	RunFrees  uint64
	RunPages  uint64

	// Page-set window cache events (sharded engine only): RunRevives
	// counts AllocRun calls served by reviving a parked dirty window
	// whose installed frame extent matched the request — no PTE writes,
	// no shootdown debt, the run-path analogue of a hash hit (revived
	// pages count in Hits); RunReviveMisses counts AllocRun calls that
	// installed a window cold (their pages count in Misses).
	RunRevives      uint64
	RunReviveMisses uint64
}

// HitRate returns the mapping-cache hit rate in [0, 1], or 0 when no
// allocations occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BatchMapper is the historical name for a mapper with the vectored
// calls.  The vectored API is now part of Mapper itself, so the alias is
// kept only for source compatibility.
type BatchMapper = Mapper

// Mapper is the machine-independent ephemeral mapping interface of
// Table 1, extended with the vectored calls AllocBatch and FreeBatch.
// Alloc is sf_buf_alloc, Free is sf_buf_free; the two remaining functions
// of the table are methods on Buf.
//
// The vectored calls map or unmap a run of pages as one request, the way
// the original kernel's pmap_qenter and pmap_qremove handle a multi-page
// buffer.  Their batching leverage is engine-specific: the original
// kernel performs one virtual-address allocation and one ranged TLB
// shootdown per run; the sharded cache takes one shard-lock round per
// shard per batch, restocks clean buffers with bulk freelist pops, and
// retires the whole batch's teardown debt in a single queued shootdown
// flush; the paper's global-lock cache runs a semantics-preserving loop,
// so figure reproduction on it stays byte-identical to the per-page path.
// NativeBatch reports which of these a mapper provides.
type Mapper interface {
	// Alloc returns an sf_buf mapping the given physical page.  An
	// implementation may return the same Buf to multiple callers mapping
	// the same page; the mapping remains valid until every caller has
	// called Free.
	Alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error)
	// Free releases one reference to the mapping.
	Free(ctx *smp.Context, b *Buf)
	// AllocBatch maps every page of the run, returning one Buf per page
	// in order.  The returned addresses need not be contiguous (only the
	// original kernel's 64-bit path guarantees a consecutive run), and
	// duplicate pages in one batch may share a Buf on engines that share
	// mappings.  On error no page of the batch remains mapped.
	AllocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error)
	// FreeBatch releases one reference to every mapping of the batch.
	// A batch obtained from AllocBatch must be released through
	// FreeBatch as a unit: the original kernel recycles the run's
	// address range whole.  Cache engines additionally accept any
	// combination of single and batched bufs.
	FreeBatch(ctx *smp.Context, bufs []*Buf)
	// AllocRun maps the pages at consecutive virtual addresses when the
	// engine can provide contiguity: the sharded cache installs the whole
	// run into a reserved VA window in one page-table pass, the amd64
	// direct map hands out the window physical contiguity already gives
	// it, the original kernel's 64-bit pmap_qenter path is contiguous by
	// construction.  Engines without a contiguous path (the paper's
	// global-lock cache; sparc64 color splits) return a degraded run over
	// scattered mappings — Run.Contiguous reports which.  Window-backed
	// runs give duplicate pages independent translations; fallback runs
	// may share mappings, as AllocBatch does.
	AllocRun(ctx *smp.Context, pages []*vm.Page, flags Flags) (*Run, error)
	// FreeRun releases a run as a unit: one bulk page-table teardown and
	// at most one queued shootdown flush for the whole window.
	FreeRun(ctx *smp.Context, r *Run)
	// Name identifies the implementation for reports.
	Name() string
	// Stats returns cumulative mapper statistics.
	Stats() Stats
	// ResetStats zeroes the statistics.
	ResetStats()
}

// nativeBatcher is implemented by mappers whose vectored path is a
// genuine fast path rather than a semantics-preserving loop.
type nativeBatcher interface {
	nativeBatch() bool
}

// NativeBatch reports whether m's AllocBatch/FreeBatch amortize work
// across the run — fewer lock round trips, bulk page-table passes, or
// coalesced shootdowns — rather than looping over the single-page calls.
// Subsystems use it to decide whether mapping a multi-page extent as a
// batch buys anything; the paper's global-lock cache reports false so the
// figure-reproduction experiments keep their exact per-page behaviour.
func NativeBatch(m Mapper) bool {
	nb, ok := m.(nativeBatcher)
	return ok && nb.nativeBatch()
}

// nativeRunner is implemented by mappers whose AllocRun returns a
// genuinely contiguous window rather than a scattered fallback.
type nativeRunner interface {
	nativeRun() bool
}

// NativeRun reports whether m's AllocRun provides contiguous windows —
// the sharded cache's reserved-window path, the amd64 direct map, the
// original kernel's 64-bit pmap_qenter range.  Subsystems use it (through
// the kernel's Contig policy) to decide whether mapping a multi-page
// extent as a run buys ranged translation; the paper's global-lock cache
// reports false, so figure reproduction keeps its exact historical paths.
func NativeRun(m Mapper) bool {
	nr, ok := m.(nativeRunner)
	return ok && nr.nativeRun()
}
