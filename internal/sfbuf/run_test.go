package sfbuf

// Unit and economy tests for the contiguous-run API: AllocRun/FreeRun on
// every engine, the run-window pool (recycling, laundering, guard), the
// ranged-translate economy the PR's acceptance criterion demands, the
// loop-identical fallback on the paper's cache, simulated superpage
// promotion, and the batch-fair exhaustion wakeups.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// kvaArenaFor builds a fresh arena over the platform's dynamic region.
func kvaArenaFor(p arch.Platform) *kva.Arena {
	if p.Arch == arch.I386 {
		return kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	}
	return kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
}

func TestShardedAllocRunBasic(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 8)

	run, err := r.sf.AllocRun(ctx, pages, Private)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("sharded engine must return a contiguous run")
	}
	if run.Len() != 8 {
		t.Fatalf("run length %d, want 8", run.Len())
	}
	for i := 0; i < run.Len(); i++ {
		if run.KVA(i) != run.Base()+uint64(i)*vm.PageSize {
			t.Fatalf("page %d KVA not consecutive", i)
		}
		got, err := r.pm.Translate(ctx, run.KVA(i), false)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data()[0] != byte(i) {
			t.Fatalf("page %d reads %#x, want %#x", i, got.Data()[0], byte(i))
		}
	}
	s := r.sf.Stats()
	if s.RunAllocs != 1 || s.RunPages != 8 || s.Allocs != 8 {
		t.Fatalf("stats after run = %+v", s)
	}
	// Runs consume the cache's buffer inventory as capacity tokens.
	if got := r.sf.InactiveLen(); got != 32-8 {
		t.Fatalf("inactive = %d, want 24 while the run is live", got)
	}
	r.sf.FreeRun(ctx, run)
	s = r.sf.Stats()
	if s.Allocs != s.Frees || s.RunFrees != 1 {
		t.Fatalf("drain stats = %+v", s)
	}
	if got := r.sf.InactiveLen(); got != 32 {
		t.Fatalf("inactive = %d, want 32 after FreeRun", got)
	}
}

func TestShardedAllocRunEmptyAndOversized(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	ctx := r.m.Ctx(0)
	if run, err := r.sf.AllocRun(ctx, nil, 0); err != nil || run != nil {
		t.Fatalf("empty run = %v, %v", run, err)
	}
	pages := allocPages(t, r.m, 9)
	if _, err := r.sf.AllocRun(ctx, pages, 0); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized run error = %v, want ErrBatchTooLarge", err)
	}
	if s := r.sf.Stats(); s.Allocs != 0 {
		t.Fatalf("failed run counted allocs: %+v", s)
	}
}

// TestRunWindowRecyclingAndLaunder drives enough run churn that windows
// recycle through the laundering path, and proves — through the honest
// TLB — that a recycled window never serves a stale translation: every
// round maps a different page set and every read must see that round's
// bytes.
func TestRunWindowRecyclingAndLaunder(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 64, ShardedConfig{})
	ctx := r.m.Ctx(0)
	setA := allocPages(t, r.m, 8)
	setB := allocPages(t, r.m, 8)
	for i := range setA {
		setA[i].Data()[0] = 0xA0 + byte(i)
		setB[i].Data()[0] = 0xB0 + byte(i)
	}
	const rounds = 40
	for i := 0; i < rounds; i++ {
		set, tag := setA, byte(0xA0)
		if i%2 == 1 {
			set, tag = setB, byte(0xB0)
		}
		run, err := r.sf.AllocRun(ctx, set, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < run.Len(); j++ {
			got, err := r.pm.Translate(ctx, run.KVA(j), false)
			if err != nil {
				t.Fatalf("round %d page %d: %v", i, j, err)
			}
			if got.Data()[0] != tag+byte(j) {
				t.Fatalf("round %d page %d reads %#x, want %#x — stale window translation",
					i, j, got.Data()[0], tag+byte(j))
			}
		}
		r.sf.FreeRun(ctx, run)
	}
	ws := r.sf.RunWindowStats()
	if ws.Reuses == 0 {
		t.Error("no window was ever recycled")
	}
	if ws.Launders == 0 || ws.Laundered == 0 {
		t.Errorf("laundering never ran: %+v", ws)
	}
	if ws.Reserved > runLaunderBatch+1 {
		t.Errorf("reserved %d fresh windows for %d same-size runs; recycling is broken", ws.Reserved, rounds)
	}
	if got, want := float64(ws.Laundered)/float64(ws.Launders), float64(runLaunderBatch); got < want {
		t.Errorf("launder coalescing = %.1f windows/flush, want >= %.1f", got, want)
	}
}

// TestRunGuardPageFaults proves the window guard: translating one page
// past the end of a run's window faults instead of landing in a
// neighboring mapping.
func TestRunGuardPageFaults(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 16, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)
	run, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.pm.Translate(ctx, run.Base()+4*vm.PageSize, false); !errors.Is(err, pmap.ErrFault) {
		t.Fatalf("access past the window = %v, want ErrFault", err)
	}
	if _, err := r.pm.TranslateRun(ctx, run.Base(), 5, false, nil); !errors.Is(err, pmap.ErrFault) {
		t.Fatalf("ranged access past the window = %v, want ErrFault", err)
	}
	r.sf.FreeRun(ctx, run)
}

// TestGlobalCacheRunIsLoopIdentical proves the figure-reproduction
// property for runs: on the paper's global-lock cache, a run request
// charges exactly the cycles, locks, walks and invalidations of the
// equivalent single-page sequence and leaves identical cache state, so
// every deterministic experiment is indifferent to the new API.
func TestGlobalCacheRunIsLoopIdentical(t *testing.T) {
	run := func(runs bool) (cyc int64, snap smp.Snapshot, st Stats) {
		r := newI386Rig(t, arch.XeonMPHTT(), 16)
		ctx := r.m.Ctx(0)
		pages := allocPages(t, r.m, 8)
		for round := 0; round < 6; round++ {
			if runs {
				rn, err := r.sf.AllocRun(ctx, pages, 0)
				if err != nil {
					t.Fatal(err)
				}
				if rn.Contiguous() {
					t.Fatal("global cache must not claim contiguity")
				}
				for j := 0; j < rn.Len(); j++ {
					if _, err := r.pm.Translate(ctx, rn.KVA(j), false); err != nil {
						t.Fatal(err)
					}
				}
				r.sf.FreeRun(ctx, rn)
			} else {
				bufs := make([]*Buf, 0, len(pages))
				for _, pg := range pages {
					b, err := r.sf.Alloc(ctx, pg, 0)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
					bufs = append(bufs, b)
				}
				for _, b := range bufs {
					r.sf.Free(ctx, b)
				}
			}
		}
		return int64(r.m.TotalCycles()), r.m.SnapshotCounters(), r.sf.Stats()
	}
	rc, rs, rst := run(true)
	lc, ls, lst := run(false)
	if rc != lc {
		t.Errorf("cycles: run %d != loop %d", rc, lc)
	}
	if rs != ls {
		t.Errorf("counters: run %+v != loop %+v", rs, ls)
	}
	rst.RunAllocs, rst.RunFrees, rst.RunPages = 0, 0, 0
	if rst != lst {
		t.Errorf("mapper stats: run %+v != loop %+v", rst, lst)
	}
}

// TestRunTranslateEconomy enforces the PR's acceptance criterion: on
// contended multi-page churn with run=16, the contiguous-run path pays
// at least 4x fewer page-table walks per page than the scattered
// AllocBatch + per-page translation path (the CopyOutVec cost shape), at
// equal or better shootdown rounds per page.
func TestRunTranslateEconomy(t *testing.T) {
	const (
		entries = 128
		runLen  = 16
		rounds  = 250
	)
	drive := func(runs bool) (walksPerPage, sdRoundsPerPage float64) {
		r := newShardedRig(t, arch.XeonMPHTT(), entries, ShardedConfig{})
		pages := allocPages(t, r.m, 4*entries)
		ncpu := r.m.NumCPUs()
		scratch := make([]*vm.Page, runLen)
		var got []*vm.Page
		for i := 0; i < rounds; i++ {
			ctx := r.m.Ctx(i % ncpu)
			for j := 0; j < runLen; j++ {
				scratch[j] = pages[(i*runLen*3+j*7)%len(pages)]
			}
			if runs {
				rn, err := r.sf.AllocRun(ctx, scratch, 0)
				if err != nil {
					t.Fatal(err)
				}
				var terr error
				got, terr = r.pm.TranslateRun(ctx, rn.Base(), rn.Len(), false, got[:0])
				if terr != nil {
					t.Fatal(terr)
				}
				r.sf.FreeRun(ctx, rn)
			} else {
				bufs, err := r.sf.AllocBatch(ctx, scratch, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range bufs {
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
				}
				r.sf.FreeBatch(ctx, bufs)
			}
		}
		snap := r.m.SnapshotCounters()
		pagesMoved := float64(rounds * runLen)
		return float64(snap.PTWalks) / pagesMoved, float64(snap.RemoteInvIssued) / pagesMoved
	}
	rWalks, rRounds := drive(true)
	bWalks, bRounds := drive(false)
	t.Logf("walks/page: run %.4f vs batch %.4f; shootdown rounds/page: run %.4f vs batch %.4f",
		rWalks, bWalks, rRounds, bRounds)
	if rWalks*4 > bWalks {
		t.Errorf("run path walks/page = %.4f, want <= 1/4 of batch path %.4f", rWalks, bWalks)
	}
	if rRounds > bRounds {
		t.Errorf("run path shootdown rounds/page = %.4f, want <= batch path %.4f", rRounds, bRounds)
	}
}

// TestSuperpagePromotion drives a run covering an aligned 2 MB-equivalent
// window of physically contiguous pages: the window must promote, a
// single walk must fill ONE large TLB entry covering all of it, and the
// teardown must demote it — with a recycled window never serving stale
// superpage translations.
func TestSuperpagePromotion(t *testing.T) {
	span := pmap.SuperpagePages
	r := newShardedRig(t, arch.XeonMPHTT(), span+64, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, span) // fresh machine: frames are contiguous
	for i := 1; i < span; i++ {
		if pages[i].Frame() != pages[0].Frame()+uint64(i) {
			t.Skip("physical allocator did not hand out contiguous frames")
		}
	}

	run, err := r.sf.AllocRun(ctx, pages, Private)
	if err != nil {
		t.Fatal(err)
	}
	if !r.pm.Promoted(run.Base()) {
		t.Fatal("aligned contiguous window did not promote")
	}
	if ss := r.pm.SuperStats(); ss.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", ss.Promotions)
	}

	// One ranged translate of the whole window: one walk, ONE large TLB
	// entry — not span base entries.
	before := r.m.SnapshotCounters()
	tlbBefore := r.m.CPU(0).TLBStats()
	if _, err := r.pm.TranslateRun(ctx, run.Base(), span, false, nil); err != nil {
		t.Fatal(err)
	}
	d := r.m.SnapshotCounters().Sub(before)
	ts := r.m.CPU(0).TLBStats()
	if d.PTWalks != 1 {
		t.Errorf("walks for the window = %d, want 1", d.PTWalks)
	}
	if li := ts.LargeInserts - tlbBefore.LargeInserts; li != 1 {
		t.Errorf("large inserts = %d, want 1", li)
	}
	if bi := ts.Inserts - tlbBefore.Inserts; bi != 0 {
		t.Errorf("base inserts = %d, want 0: the large entry must cover the window", bi)
	}
	// Every page of the window now hits through the one large entry.
	before = r.m.SnapshotCounters()
	for i := 0; i < span; i++ {
		got, err := r.pm.Translate(ctx, run.KVA(i), false)
		if err != nil {
			t.Fatal(err)
		}
		if got != pages[i] {
			t.Fatalf("page %d resolves to wrong frame through the superpage", i)
		}
	}
	if d := r.m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Errorf("walks on large-entry hits = %d, want 0", d.PTWalks)
	}

	r.sf.FreeRun(ctx, run)
	if ss := r.pm.SuperStats(); ss.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", ss.Demotions)
	}

	// Recycle the window (laundering included) with DIFFERENT, reversed
	// pages: reads through the recycled window must see the new frames,
	// proving the demotion invalidated the large entry everywhere.
	reversed := make([]*vm.Page, span)
	for i := range pages {
		reversed[i] = pages[span-1-i]
	}
	for round := 0; round < runLaunderBatch+1; round++ {
		again, err := r.sf.AllocRun(ctx, reversed, Private)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.pm.Translate(ctx, again.KVA(0), false)
		if err != nil {
			t.Fatal(err)
		}
		if got != reversed[0] {
			t.Fatal("recycled window served a stale superpage translation")
		}
		r.sf.FreeRun(ctx, again)
	}
}

// TestRunClaimWakeupFairness pins the batch-fair exhaustion wakeup: a
// run sleeping for 4 buffers under exhaustion registers a claim and is
// woken ONCE, after the 4th single free credits it — not per freed
// buffer.  Sleeps counts sleep entries, so a re-waking rescanner would
// show Sleeps > 1.
func TestRunClaimWakeupFairness(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 4, ShardedConfig{})
	ctx := r.m.Ctx(0)
	heldPages := allocPages(t, r.m, 4)
	var held []*Buf
	for _, pg := range heldPages {
		b, err := r.sf.Alloc(ctx, pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, b)
	}
	fresh := allocPages(t, r.m, 4)
	done := make(chan error, 1)
	go func() {
		sctx := r.m.Ctx(1 % r.m.NumCPUs())
		run, err := r.sf.AllocRun(sctx, fresh, 0) // blocks: cache exhausted
		if err == nil {
			r.sf.FreeRun(sctx, run)
		}
		done <- err
	}()
	for r.sf.Stats().Sleeps == 0 {
		time.Sleep(time.Millisecond)
	}
	// Free the held buffers one at a time: the claim absorbs the first
	// three credits without waking anyone.
	for _, b := range held {
		r.sf.Free(ctx, b)
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("claimer never woke after its shortfall was covered")
	}
	if s := r.sf.Stats(); s.Sleeps != 1 {
		t.Errorf("sleeps = %d, want 1: the claimer must wake once, not per free", s.Sleeps)
	}
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Errorf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestClaimWakesOnHashCoverage pins the liveness hole the claim could
// otherwise open: a batch's registered shortfall is exact when it goes
// to sleep, but it becomes an overestimate if another CPU then maps one
// of the batch's pages — that page now resolves by hash hit, needing no
// freed buffer — so waiting for the FULL shortfall in freed-buffer
// credits would sleep forever.  The sequence: a 2-page batch [A, X]
// registers need=2; one buffer is freed (credit 1, correctly no wake);
// another CPU consumes that buffer to map X and HOLDS it.  No further
// free can ever cover the stale need=2, but the hash-coverage wake lets
// the batch rescan, hit X, re-register need=1, and finish on the last
// free.
func TestClaimWakesOnHashCoverage(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 2, ShardedConfig{})
	ctx := r.m.Ctx(0)
	held := allocPages(t, r.m, 2) // W1, W2 fill the cache
	bw1, err := r.sf.Alloc(ctx, held[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	bw2, err := r.sf.Alloc(ctx, held[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	ax := allocPages(t, r.m, 2) // A, X — neither mapped yet
	done := make(chan error, 1)
	go func() {
		sctx := r.m.Ctx(1 % r.m.NumCPUs())
		bufs, err := r.sf.AllocBatch(sctx, ax, 0)
		if err == nil {
			r.sf.FreeBatch(sctx, bufs)
		}
		done <- err
	}()
	for r.sf.Stats().Sleeps == 0 {
		time.Sleep(time.Millisecond)
	}
	// Credit 1 of 2: must NOT wake the claimer.
	r.sf.Free(ctx, bw1)
	time.Sleep(2 * time.Millisecond)
	// Consume the freed buffer to map the batch's page X, and hold it:
	// the claim's registered need is now stale by one.
	bx, err := r.sf.Alloc(ctx, ax[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	// The hash-coverage wake must get the batch moving again; the final
	// free covers its re-registered shortfall for A.
	time.Sleep(2 * time.Millisecond)
	r.sf.Free(ctx, bw2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("batch slept forever on a shortfall that hash coverage had already shrunk")
	}
	r.sf.Free(ctx, bx)
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestMixedSingleBatchRunExhaustionStress mixes single, batch, and run
// allocators over a cache far too small for all of them, under -race:
// the exhaustion machinery (claims, starvation token, per-free wakeups)
// must neither deadlock nor corrupt the ledger.
func TestMixedSingleBatchRunExhaustionStress(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	pages := allocPages(t, r.m, 24)
	finished := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := r.m.Ctx(w % r.m.NumCPUs())
				for i := 0; i < 60; i++ {
					switch w % 3 {
					case 0: // singles
						pg := pages[(w*31+i)%len(pages)]
						b, err := r.sf.Alloc(ctx, pg, 0)
						if err != nil {
							t.Error(err)
							return
						}
						if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
							t.Error(err)
							return
						}
						r.sf.Free(ctx, b)
					case 1: // batches
						start := (w*5 + i) % (len(pages) - 3)
						bufs, err := r.sf.AllocBatch(ctx, pages[start:start+3], 0)
						if err != nil {
							t.Error(err)
							return
						}
						r.sf.FreeBatch(ctx, bufs)
					default: // runs
						start := (w*7 + i) % (len(pages) - 3)
						run, err := r.sf.AllocRun(ctx, pages[start:start+3], 0)
						if err != nil {
							t.Error(err)
							return
						}
						if _, err := r.pm.TranslateRun(ctx, run.Base(), run.Len(), false, nil); err != nil {
							t.Error(err)
							return
						}
						r.sf.FreeRun(ctx, run)
					}
				}
			}(w)
		}
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("mixed single/batch/run exhaustion stress deadlocked")
	}
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
	if got := r.sf.InactiveLen(); got != 8 {
		t.Fatalf("inactive = %d, want 8 after drain", got)
	}
}

// TestShardedRunChurnConcurrent is the -race churn stress for the run
// path: one goroutine per CPU allocating, sweeping (ranged translation
// through the honest MMU), and freeing overlapping runs, with byte
// verification so a stale window translation fails loudly.
func TestShardedRunChurnConcurrent(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 64, ShardedConfig{ReclaimBatch: 8, PerCPUFree: 4})
	pages := allocPages(t, r.m, 128)
	for i, pg := range pages {
		pg.Data()[0] = byte(i)
	}
	ncpu := r.m.NumCPUs()
	const rounds = 200
	var wg sync.WaitGroup
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := r.m.Ctx(cpu)
			var got []*vm.Page
			for i := 0; i < rounds; i++ {
				n := 2 + (i+cpu)%7
				start := (i*(2*cpu+1)*5 + cpu*13) % (len(pages) - n)
				run, err := r.sf.AllocRun(ctx, pages[start:start+n], 0)
				if err != nil {
					t.Error(err)
					return
				}
				var terr error
				got, terr = r.pm.TranslateRun(ctx, run.Base(), run.Len(), false, got[:0])
				if terr != nil {
					t.Error(terr)
					return
				}
				for j, pg := range got {
					if pg.Data()[0] != byte(start+j) {
						t.Errorf("cpu %d round %d: page %d reads %#x, want %#x — stale run window",
							cpu, i, j, pg.Data()[0], byte(start+j))
						return
					}
				}
				r.sf.FreeRun(ctx, run)
			}
		}(cpu)
	}
	wg.Wait()
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestNativeRunPredicate pins which engines claim contiguity.
func TestNativeRunPredicate(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	if !NativeRun(r.sf) {
		t.Error("sharded i386 must provide native runs")
	}
	g := newI386Rig(t, arch.XeonMPHTT(), 32)
	if NativeRun(g.sf) {
		t.Error("global-lock i386 must not claim native runs")
	}
	m, _, amd := newAMD64Rig(t)
	_ = m
	if !NativeRun(amd) {
		t.Error("amd64 direct map must provide native runs")
	}
}

// TestAMD64RunContiguity: physically contiguous frames get a free
// contiguous window (the direct map's arithmetic); scattered frames
// degrade to per-page casts, and neither ever invalidates.
func TestAMD64RunContiguity(t *testing.T) {
	m, pm, sf := newAMD64Rig(t)
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 6) // fresh machine: contiguous frames
	run, err := sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("contiguous frames must yield a contiguous direct-map run")
	}
	if run.Base() != pm.DirectVA(pages[0]) {
		t.Fatal("run base is not the direct-map address")
	}
	sf.FreeRun(ctx, run)

	scattered := []*vm.Page{pages[4], pages[1], pages[3]}
	run2, err := sf.AllocRun(ctx, scattered, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Contiguous() {
		t.Fatal("scattered frames cannot be contiguous on a pure-arithmetic map")
	}
	for i, pg := range scattered {
		if run2.KVA(i) != pm.DirectVA(pg) {
			t.Fatalf("page %d of the fallback run is not its direct-map view", i)
		}
	}
	sf.FreeRun(ctx, run2)
	if c := m.Counters(); c.LocalInv.Load() != 0 || c.RemoteInvIssued.Load() != 0 {
		t.Fatal("amd64 runs must never invalidate")
	}
	st := sf.Stats()
	if st.Allocs != st.Frees || st.RunAllocs != 2 || st.RunFrees != 2 || st.RunPages != 9 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSparc64RunColorSplit: a color-compatible physically contiguous run
// rides the direct map; a color-bound mix splits per color into a
// scattered run, byte-correct either way.
func TestSparc64RunColorSplit(t *testing.T) {
	m := smp.NewMachine(arch.Sparc64MP(), 4096, true)
	pm := pmap.New(m)
	arena := kvaArenaFor(arch.Sparc64MP())
	sf, err := NewSparc64Sharded(m, pm, arena, 2, 64, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 8)
	for _, pg := range pages {
		pg.UserColor = -1 // direct-map eligible
	}
	run, err := sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("color-compatible contiguous frames must ride the direct map")
	}
	sf.FreeRun(ctx, run)

	mixed := allocPages(t, m, 8)
	for i, pg := range mixed {
		pg.UserColor = i % 4
	}
	run2, err := sf.AllocRun(ctx, mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Contiguous() {
		t.Fatal("a color-bound mix cannot be one contiguous window")
	}
	for i := 0; i < run2.Len(); i++ {
		got, err := pm.Translate(ctx, run2.KVA(i), false)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if got.Data()[0] != byte(i) {
			t.Fatalf("page %d reads %#x, want %#x", i, got.Data()[0], byte(i))
		}
	}
	sf.FreeRun(ctx, run2)
	if st := sf.Stats(); st.Allocs != st.Frees || st.RunAllocs != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOriginalRunIsContiguousOn64Bit: the original kernel's 64-bit
// pmap_qenter range is a contiguous run; its i386 loop is not.
func TestOriginalRunBehavior(t *testing.T) {
	m := smp.NewMachine(arch.OpteronMP(), 128, true)
	pm := pmap.New(m)
	sf := NewOriginal(m, pm, kvaArenaFor(arch.OpteronMP()))
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 4)
	run, err := sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("64-bit original run must be contiguous (pmap_qenter range)")
	}
	for i := 1; i < run.Len(); i++ {
		if run.KVA(i) != run.KVA(0)+uint64(i)*vm.PageSize {
			t.Fatal("pmap_qenter range not consecutive")
		}
	}
	sf.FreeRun(ctx, run)

	m32 := smp.NewMachine(arch.XeonMP(), 128, true)
	pm32 := pmap.New(m32)
	sf32 := NewOriginal(m32, pm32, kvaArenaFor(arch.XeonMP()))
	run32, err := sf32.AllocRun(m32.Ctx(0), allocPages(t, m32, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if run32.Contiguous() {
		t.Fatal("i386 original loops per page; its run must be scattered")
	}
	sf32.FreeRun(m32.Ctx(0), run32)
}
