package sfbuf

// Unit and economy tests for the contiguous-run API: AllocRun/FreeRun on
// every engine, the run-window pool (recycling, laundering, guard), the
// ranged-translate economy the PR's acceptance criterion demands, the
// loop-identical fallback on the paper's cache, simulated superpage
// promotion, and the batch-fair exhaustion wakeups.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// kvaArenaFor builds a fresh arena over the platform's dynamic region.
func kvaArenaFor(p arch.Platform) *kva.Arena {
	if p.Arch == arch.I386 {
		return kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	}
	return kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
}

func TestShardedAllocRunBasic(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 8)

	run, err := r.sf.AllocRun(ctx, pages, Private)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("sharded engine must return a contiguous run")
	}
	if run.Len() != 8 {
		t.Fatalf("run length %d, want 8", run.Len())
	}
	for i := 0; i < run.Len(); i++ {
		if run.KVA(i) != run.Base()+uint64(i)*vm.PageSize {
			t.Fatalf("page %d KVA not consecutive", i)
		}
		got, err := r.pm.Translate(ctx, run.KVA(i), false)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data()[0] != byte(i) {
			t.Fatalf("page %d reads %#x, want %#x", i, got.Data()[0], byte(i))
		}
	}
	s := r.sf.Stats()
	if s.RunAllocs != 1 || s.RunPages != 8 || s.Allocs != 8 {
		t.Fatalf("stats after run = %+v", s)
	}
	// Runs consume the cache's buffer inventory as capacity tokens.
	if got := r.sf.InactiveLen(); got != 32-8 {
		t.Fatalf("inactive = %d, want 24 while the run is live", got)
	}
	r.sf.FreeRun(ctx, run)
	s = r.sf.Stats()
	if s.Allocs != s.Frees || s.RunFrees != 1 {
		t.Fatalf("drain stats = %+v", s)
	}
	if got := r.sf.InactiveLen(); got != 32 {
		t.Fatalf("inactive = %d, want 32 after FreeRun", got)
	}
}

func TestShardedAllocRunEmptyAndOversized(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	ctx := r.m.Ctx(0)
	if run, err := r.sf.AllocRun(ctx, nil, 0); err != nil || run != nil {
		t.Fatalf("empty run = %v, %v", run, err)
	}
	pages := allocPages(t, r.m, 9)
	if _, err := r.sf.AllocRun(ctx, pages, 0); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized run error = %v, want ErrBatchTooLarge", err)
	}
	if s := r.sf.Stats(); s.Allocs != 0 {
		t.Fatalf("failed run counted allocs: %+v", s)
	}
}

// TestRunWindowRecyclingAndLaunder drives run churn in two phases.  The
// first alternates two extents: both must be served by the page-set
// window cache (revives — parked windows resurrected with their
// translations intact) after their first installs.  The second churns a
// sliding sequence of DISTINCT extents, which can never revive, so
// windows must recycle through the laundering path — and the honest TLB
// proves a recycled window never serves a stale translation: every round
// maps a different page set and every read must see that round's bytes.
func TestRunWindowRecyclingAndLaunder(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 64, ShardedConfig{})
	ctx := r.m.Ctx(0)
	setA := allocPages(t, r.m, 8)
	setB := allocPages(t, r.m, 8)
	for i := range setA {
		setA[i].Data()[0] = 0xA0 + byte(i)
		setB[i].Data()[0] = 0xB0 + byte(i)
	}
	const rounds = 40
	for i := 0; i < rounds; i++ {
		set, tag := setA, byte(0xA0)
		if i%2 == 1 {
			set, tag = setB, byte(0xB0)
		}
		run, err := r.sf.AllocRun(ctx, set, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < run.Len(); j++ {
			got, err := r.pm.Translate(ctx, run.KVA(j), false)
			if err != nil {
				t.Fatalf("round %d page %d: %v", i, j, err)
			}
			if got.Data()[0] != tag+byte(j) {
				t.Fatalf("round %d page %d reads %#x, want %#x — stale window translation",
					i, j, got.Data()[0], tag+byte(j))
			}
		}
		r.sf.FreeRun(ctx, run)
	}
	ws := r.sf.RunWindowStats()
	if ws.Reserved != 2 {
		t.Errorf("reserved %d fresh windows for 2 alternating extents, want 2", ws.Reserved)
	}
	if ws.Revives != rounds-2 {
		t.Errorf("revives = %d, want %d: every repeat of a parked extent must revive", ws.Revives, rounds-2)
	}

	// Phase 2: a sliding sequence of distinct extents defeats the
	// page-set cache, so windows must launder and recycle.
	pool := allocPages(t, r.m, 48)
	for i, pg := range pool {
		pg.Data()[0] = 0x40 + byte(i)
	}
	for i := 0; i+8 <= len(pool); i++ {
		run, err := r.sf.AllocRun(ctx, pool[i:i+8], 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < run.Len(); j++ {
			got, err := r.pm.Translate(ctx, run.KVA(j), false)
			if err != nil {
				t.Fatalf("slide %d page %d: %v", i, j, err)
			}
			if got.Data()[0] != 0x40+byte(i+j) {
				t.Fatalf("slide %d page %d reads %#x, want %#x — stale window translation",
					i, j, got.Data()[0], 0x40+byte(i+j))
			}
		}
		r.sf.FreeRun(ctx, run)
	}
	ws = r.sf.RunWindowStats()
	if ws.Reuses == 0 {
		t.Error("no window was ever recycled from clean stock")
	}
	if ws.Launders == 0 || ws.Laundered == 0 {
		t.Errorf("laundering never ran: %+v", ws)
	}
	if ws.Reserved > runLaunderBatch+2 {
		t.Errorf("reserved %d fresh windows; recycling is broken", ws.Reserved)
	}
	if got, want := float64(ws.Laundered)/float64(ws.Launders), float64(runLaunderBatch); got < want {
		t.Errorf("launder coalescing = %.1f windows/flush, want >= %.1f", got, want)
	}
}

// TestRunReviveSameExtent pins the page-set window cache's core claim: a
// repeat AllocRun over a just-freed extent revives the parked window —
// same VA window, zero PTE writes, zero page-table walks (the TLB still
// holds the translations), zero invalidations — and its pages count as
// cache Hits, exactly like a hash hit.
func TestRunReviveSameExtent(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 8)

	run, err := r.sf.AllocRun(ctx, pages, Private)
	if err != nil {
		t.Fatal(err)
	}
	base := run.Base()
	if _, err := r.pm.TranslateRun(ctx, run.Base(), run.Len(), false, nil); err != nil {
		t.Fatal(err)
	}
	r.sf.FreeRun(ctx, run)

	before := r.m.SnapshotCounters()
	again, err := r.sf.AllocRun(ctx, pages, Private)
	if err != nil {
		t.Fatal(err)
	}
	if again.Base() != base {
		t.Fatalf("revived run base %#x, want the parked window %#x", again.Base(), base)
	}
	got, err := r.pm.TranslateRun(ctx, again.Base(), again.Len(), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range got {
		if pg != pages[i] {
			t.Fatalf("revived window page %d resolves to the wrong frame", i)
		}
	}
	d := r.m.SnapshotCounters().Sub(before)
	if d.PTWalks != 0 {
		t.Errorf("walks across revive+translate = %d, want 0: the TLB entries were never invalidated", d.PTWalks)
	}
	if d.LocalInv != 0 || d.RemoteInvIssued != 0 {
		t.Errorf("invalidations across revive = %d local, %d remote rounds, want 0/0", d.LocalInv, d.RemoteInvIssued)
	}
	st := r.sf.Stats()
	if st.RunRevives != 1 || st.RunReviveMisses != 1 {
		t.Errorf("RunRevives = %d, RunReviveMisses = %d, want 1/1", st.RunRevives, st.RunReviveMisses)
	}
	if st.Hits != 8 || st.Misses != 8 {
		t.Errorf("Hits = %d, Misses = %d, want 8/8: revived pages count as hits", st.Hits, st.Misses)
	}
	r.sf.FreeRun(ctx, again)
	if st := r.sf.Stats(); st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after drain", st.Allocs, st.Frees)
	}
}

// TestRunReviveRequiresExactExtent pins the cache key: a different page
// set, a permuted order of the same pages, or a different length must
// all miss — their installed translations would be wrong — while the
// exact sequence still revives afterwards.
func TestRunReviveRequiresExactExtent(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)
	run, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sf.FreeRun(ctx, run)

	// Permuted order: same frames, different sequence — must not revive.
	perm := []*vm.Page{pages[1], pages[0], pages[3], pages[2]}
	pr, err := r.sf.AllocRun(ctx, perm, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range perm {
		got, err := r.pm.Translate(ctx, pr.KVA(i), false)
		if err != nil {
			t.Fatal(err)
		}
		if got != pg {
			t.Fatalf("permuted run page %d resolves to the wrong frame — a stale revive", i)
		}
	}
	r.sf.FreeRun(ctx, pr)

	// Shorter prefix: same leading frames, different length — must not
	// revive either parked window.
	short, err := r.sf.AllocRun(ctx, pages[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sf.FreeRun(ctx, short)

	// The exact original sequence still revives its parked window.
	st0 := r.sf.Stats()
	again, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sf.FreeRun(ctx, again)
	st := r.sf.Stats()
	if st.RunRevives != st0.RunRevives+1 {
		t.Errorf("exact repeat did not revive: revives %d -> %d", st0.RunRevives, st.RunRevives)
	}
	if got := st.RunReviveMisses; got != 3 {
		t.Errorf("revive misses = %d, want 3 (cold, permuted, shortened)", got)
	}
}

// TestRunWindowCapacityGauges pins the fragmentation-counter fix: the
// pool's capacity gauges are recomputed from live state at snapshot
// time, a parked (revivable) window counts as dirty — never as free
// capacity — and moves to the clean gauge only after laundering, without
// its address space ever returning to the arena's free ranges.
func TestRunWindowCapacityGauges(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	idle := r.sf.RunWindowStats().LargestFreeRun
	if idle <= 0 {
		t.Fatalf("idle largest free run = %d, want > 0", idle)
	}

	pages := allocPages(t, r.m, 8)
	run, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws := r.sf.RunWindowStats()
	if ws.LargestFreeRun >= idle {
		t.Errorf("largest free run %d did not shrink below %d after reserving a window", ws.LargestFreeRun, idle)
	}
	reserved := ws.LargestFreeRun
	if ws.CleanPages != 0 || ws.DirtyPages != 0 {
		t.Errorf("gauges with a live run = clean %d / dirty %d, want 0/0", ws.CleanPages, ws.DirtyPages)
	}

	r.sf.FreeRun(ctx, run)
	ws = r.sf.RunWindowStats()
	if ws.DirtyPages != 8 || ws.CleanPages != 0 {
		t.Errorf("gauges after free = clean %d / dirty %d, want 0/8: a parked window is revivable, not free", ws.CleanPages, ws.DirtyPages)
	}
	if ws.LargestFreeRun != reserved {
		t.Errorf("largest free run %d changed at free, want %d: the parked window must not be double-counted as arena capacity", ws.LargestFreeRun, reserved)
	}

	r.sf.LaunderRunWindows(ctx)
	ws = r.sf.RunWindowStats()
	if ws.CleanPages != 8 || ws.DirtyPages != 0 {
		t.Errorf("gauges after laundering = clean %d / dirty %d, want 8/0", ws.CleanPages, ws.DirtyPages)
	}
	if ws.LargestFreeRun != reserved {
		t.Errorf("largest free run %d changed at laundering, want %d: clean stock stays cached, not returned to the arena", ws.LargestFreeRun, reserved)
	}
}

// TestRunGuardPageFaults proves the window guard: translating one page
// past the end of a run's window faults instead of landing in a
// neighboring mapping.
func TestRunGuardPageFaults(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 16, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)
	run, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.pm.Translate(ctx, run.Base()+4*vm.PageSize, false); !errors.Is(err, pmap.ErrFault) {
		t.Fatalf("access past the window = %v, want ErrFault", err)
	}
	if _, err := r.pm.TranslateRun(ctx, run.Base(), 5, false, nil); !errors.Is(err, pmap.ErrFault) {
		t.Fatalf("ranged access past the window = %v, want ErrFault", err)
	}
	r.sf.FreeRun(ctx, run)
}

// TestGlobalCacheRunIsLoopIdentical proves the figure-reproduction
// property for runs: on the paper's global-lock cache, a run request
// charges exactly the cycles, locks, walks and invalidations of the
// equivalent single-page sequence and leaves identical cache state, so
// every deterministic experiment is indifferent to the new API.
func TestGlobalCacheRunIsLoopIdentical(t *testing.T) {
	run := func(runs bool) (cyc int64, snap smp.Snapshot, st Stats) {
		r := newI386Rig(t, arch.XeonMPHTT(), 16)
		ctx := r.m.Ctx(0)
		pages := allocPages(t, r.m, 8)
		for round := 0; round < 6; round++ {
			if runs {
				rn, err := r.sf.AllocRun(ctx, pages, 0)
				if err != nil {
					t.Fatal(err)
				}
				if rn.Contiguous() {
					t.Fatal("global cache must not claim contiguity")
				}
				for j := 0; j < rn.Len(); j++ {
					if _, err := r.pm.Translate(ctx, rn.KVA(j), false); err != nil {
						t.Fatal(err)
					}
				}
				r.sf.FreeRun(ctx, rn)
			} else {
				bufs := make([]*Buf, 0, len(pages))
				for _, pg := range pages {
					b, err := r.sf.Alloc(ctx, pg, 0)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
					bufs = append(bufs, b)
				}
				for _, b := range bufs {
					r.sf.Free(ctx, b)
				}
			}
		}
		return int64(r.m.TotalCycles()), r.m.SnapshotCounters(), r.sf.Stats()
	}
	rc, rs, rst := run(true)
	lc, ls, lst := run(false)
	if rc != lc {
		t.Errorf("cycles: run %d != loop %d", rc, lc)
	}
	if rs != ls {
		t.Errorf("counters: run %+v != loop %+v", rs, ls)
	}
	rst.RunAllocs, rst.RunFrees, rst.RunPages = 0, 0, 0
	if rst != lst {
		t.Errorf("mapper stats: run %+v != loop %+v", rst, lst)
	}
}

// TestRunTranslateEconomy enforces the PR's acceptance criterion: on
// contended multi-page churn with run=16, the contiguous-run path pays
// at least 4x fewer page-table walks per page than the scattered
// AllocBatch + per-page translation path (the CopyOutVec cost shape), at
// equal or better shootdown rounds per page.
func TestRunTranslateEconomy(t *testing.T) {
	const (
		entries = 128
		runLen  = 16
		rounds  = 250
	)
	drive := func(runs bool) (walksPerPage, sdRoundsPerPage float64) {
		r := newShardedRig(t, arch.XeonMPHTT(), entries, ShardedConfig{})
		pages := allocPages(t, r.m, 4*entries)
		ncpu := r.m.NumCPUs()
		scratch := make([]*vm.Page, runLen)
		var got []*vm.Page
		for i := 0; i < rounds; i++ {
			ctx := r.m.Ctx(i % ncpu)
			for j := 0; j < runLen; j++ {
				scratch[j] = pages[(i*runLen*3+j*7)%len(pages)]
			}
			if runs {
				rn, err := r.sf.AllocRun(ctx, scratch, 0)
				if err != nil {
					t.Fatal(err)
				}
				var terr error
				got, terr = r.pm.TranslateRun(ctx, rn.Base(), rn.Len(), false, got[:0])
				if terr != nil {
					t.Fatal(terr)
				}
				r.sf.FreeRun(ctx, rn)
			} else {
				bufs, err := r.sf.AllocBatch(ctx, scratch, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range bufs {
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
				}
				r.sf.FreeBatch(ctx, bufs)
			}
		}
		snap := r.m.SnapshotCounters()
		pagesMoved := float64(rounds * runLen)
		return float64(snap.PTWalks) / pagesMoved, float64(snap.RemoteInvIssued) / pagesMoved
	}
	rWalks, rRounds := drive(true)
	bWalks, bRounds := drive(false)
	t.Logf("walks/page: run %.4f vs batch %.4f; shootdown rounds/page: run %.4f vs batch %.4f",
		rWalks, bWalks, rRounds, bRounds)
	if rWalks*4 > bWalks {
		t.Errorf("run path walks/page = %.4f, want <= 1/4 of batch path %.4f", rWalks, bWalks)
	}
	if rRounds > bRounds {
		t.Errorf("run path shootdown rounds/page = %.4f, want <= batch path %.4f", rRounds, bRounds)
	}
}

// TestSuperpagePromotion drives a run covering an aligned 2 MB-equivalent
// window of physically contiguous pages: the window must promote, a
// single walk must fill ONE large TLB entry covering all of it, and the
// teardown must demote it — with a recycled window never serving stale
// superpage translations.
func TestSuperpagePromotion(t *testing.T) {
	span := pmap.SuperpagePages
	r := newShardedRig(t, arch.XeonMPHTT(), span+64, ShardedConfig{})
	ctx := r.m.Ctx(0)
	// Promotion demands a SuperpagePages-ALIGNED first frame; a fresh
	// machine hands out frames 1, 2, 3, ..., so carve the aligned window
	// out of a double-span allocation.
	all := allocPages(t, r.m, 2*span)
	start := -1
	for i, pg := range all {
		if pg.Frame()%uint64(span) == 0 {
			start = i
			break
		}
	}
	if start < 0 || start+span > len(all) {
		t.Skip("no aligned window in the allocation")
	}
	pages := all[start : start+span]
	for i := 1; i < span; i++ {
		if pages[i].Frame() != pages[0].Frame()+uint64(i) {
			t.Skip("physical allocator did not hand out contiguous frames")
		}
	}

	run, err := r.sf.AllocRun(ctx, pages, Private)
	if err != nil {
		t.Fatal(err)
	}
	if !r.pm.Promoted(run.Base()) {
		t.Fatal("aligned contiguous window did not promote")
	}
	if ss := r.pm.SuperStats(); ss.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", ss.Promotions)
	}

	// One ranged translate of the whole window: one walk, ONE large TLB
	// entry — not span base entries.
	before := r.m.SnapshotCounters()
	tlbBefore := r.m.CPU(0).TLBStats()
	if _, err := r.pm.TranslateRun(ctx, run.Base(), span, false, nil); err != nil {
		t.Fatal(err)
	}
	d := r.m.SnapshotCounters().Sub(before)
	ts := r.m.CPU(0).TLBStats()
	if d.PTWalks != 1 {
		t.Errorf("walks for the window = %d, want 1", d.PTWalks)
	}
	if li := ts.LargeInserts - tlbBefore.LargeInserts; li != 1 {
		t.Errorf("large inserts = %d, want 1", li)
	}
	if bi := ts.Inserts - tlbBefore.Inserts; bi != 0 {
		t.Errorf("base inserts = %d, want 0: the large entry must cover the window", bi)
	}
	// Every page of the window now hits through the one large entry.
	before = r.m.SnapshotCounters()
	for i := 0; i < span; i++ {
		got, err := r.pm.Translate(ctx, run.KVA(i), false)
		if err != nil {
			t.Fatal(err)
		}
		if got != pages[i] {
			t.Fatalf("page %d resolves to wrong frame through the superpage", i)
		}
	}
	if d := r.m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Errorf("walks on large-entry hits = %d, want 0", d.PTWalks)
	}

	r.sf.FreeRun(ctx, run)
	// Teardown is lazy: the freed window parks with its promoted mapping
	// intact (revivable), so demotion happens at the laundering round,
	// not at FreeRun.
	if ss := r.pm.SuperStats(); ss.Demotions != 0 {
		t.Fatalf("demotions = %d, want 0 while the window is parked", ss.Demotions)
	}
	r.sf.LaunderRunWindows(ctx)
	if ss := r.pm.SuperStats(); ss.Demotions != 1 {
		t.Fatalf("demotions = %d after laundering, want 1", ss.Demotions)
	}

	// Recycle the window (laundering included) with DIFFERENT, reversed
	// pages: reads through the recycled window must see the new frames,
	// proving the demotion invalidated the large entry everywhere.
	reversed := make([]*vm.Page, span)
	for i := range pages {
		reversed[i] = pages[span-1-i]
	}
	for round := 0; round < runLaunderBatch+1; round++ {
		again, err := r.sf.AllocRun(ctx, reversed, Private)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.pm.Translate(ctx, again.KVA(0), false)
		if err != nil {
			t.Fatal(err)
		}
		if got != reversed[0] {
			t.Fatal("recycled window served a stale superpage translation")
		}
		r.sf.FreeRun(ctx, again)
	}
}

// TestRunClaimWakeupFairness pins the batch-fair exhaustion wakeup: a
// run sleeping for 4 buffers under exhaustion registers a claim and is
// woken ONCE, after the 4th single free credits it — not per freed
// buffer.  Sleeps counts sleep entries, so a re-waking rescanner would
// show Sleeps > 1.
func TestRunClaimWakeupFairness(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 4, ShardedConfig{})
	ctx := r.m.Ctx(0)
	heldPages := allocPages(t, r.m, 4)
	var held []*Buf
	for _, pg := range heldPages {
		b, err := r.sf.Alloc(ctx, pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, b)
	}
	fresh := allocPages(t, r.m, 4)
	done := make(chan error, 1)
	go func() {
		sctx := r.m.Ctx(1 % r.m.NumCPUs())
		run, err := r.sf.AllocRun(sctx, fresh, 0) // blocks: cache exhausted
		if err == nil {
			r.sf.FreeRun(sctx, run)
		}
		done <- err
	}()
	for r.sf.Stats().Sleeps == 0 {
		time.Sleep(time.Millisecond)
	}
	// Free the held buffers one at a time: the claim absorbs the first
	// three credits without waking anyone.
	for _, b := range held {
		r.sf.Free(ctx, b)
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("claimer never woke after its shortfall was covered")
	}
	if s := r.sf.Stats(); s.Sleeps != 1 {
		t.Errorf("sleeps = %d, want 1: the claimer must wake once, not per free", s.Sleeps)
	}
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Errorf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestClaimWakesOnHashCoverage pins the liveness hole the claim could
// otherwise open: a batch's registered shortfall is exact when it goes
// to sleep, but it becomes an overestimate if another CPU then maps one
// of the batch's pages — that page now resolves by hash hit, needing no
// freed buffer — so waiting for the FULL shortfall in freed-buffer
// credits would sleep forever.  The sequence: a 2-page batch [A, X]
// registers need=2; one buffer is freed (credit 1, correctly no wake);
// another CPU consumes that buffer to map X and HOLDS it.  No further
// free can ever cover the stale need=2, but the hash-coverage wake lets
// the batch rescan, hit X, re-register need=1, and finish on the last
// free.
func TestClaimWakesOnHashCoverage(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 2, ShardedConfig{})
	ctx := r.m.Ctx(0)
	held := allocPages(t, r.m, 2) // W1, W2 fill the cache
	bw1, err := r.sf.Alloc(ctx, held[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	bw2, err := r.sf.Alloc(ctx, held[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	ax := allocPages(t, r.m, 2) // A, X — neither mapped yet
	done := make(chan error, 1)
	go func() {
		sctx := r.m.Ctx(1 % r.m.NumCPUs())
		bufs, err := r.sf.AllocBatch(sctx, ax, 0)
		if err == nil {
			r.sf.FreeBatch(sctx, bufs)
		}
		done <- err
	}()
	for r.sf.Stats().Sleeps == 0 {
		time.Sleep(time.Millisecond)
	}
	// Credit 1 of 2: must NOT wake the claimer.
	r.sf.Free(ctx, bw1)
	time.Sleep(2 * time.Millisecond)
	// Consume the freed buffer to map the batch's page X, and hold it:
	// the claim's registered need is now stale by one.
	bx, err := r.sf.Alloc(ctx, ax[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	// The hash-coverage wake must get the batch moving again; the final
	// free covers its re-registered shortfall for A.
	time.Sleep(2 * time.Millisecond)
	r.sf.Free(ctx, bw2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("batch slept forever on a shortfall that hash coverage had already shrunk")
	}
	r.sf.Free(ctx, bx)
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestMixedSingleBatchRunExhaustionStress mixes single, batch, and run
// allocators over a cache far too small for all of them, under -race:
// the exhaustion machinery (claims, starvation token, per-free wakeups)
// must neither deadlock nor corrupt the ledger.
func TestMixedSingleBatchRunExhaustionStress(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	pages := allocPages(t, r.m, 24)
	finished := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := r.m.Ctx(w % r.m.NumCPUs())
				for i := 0; i < 60; i++ {
					switch w % 3 {
					case 0: // singles
						pg := pages[(w*31+i)%len(pages)]
						b, err := r.sf.Alloc(ctx, pg, 0)
						if err != nil {
							t.Error(err)
							return
						}
						if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
							t.Error(err)
							return
						}
						r.sf.Free(ctx, b)
					case 1: // batches
						start := (w*5 + i) % (len(pages) - 3)
						bufs, err := r.sf.AllocBatch(ctx, pages[start:start+3], 0)
						if err != nil {
							t.Error(err)
							return
						}
						r.sf.FreeBatch(ctx, bufs)
					default: // runs
						start := (w*7 + i) % (len(pages) - 3)
						run, err := r.sf.AllocRun(ctx, pages[start:start+3], 0)
						if err != nil {
							t.Error(err)
							return
						}
						if _, err := r.pm.TranslateRun(ctx, run.Base(), run.Len(), false, nil); err != nil {
							t.Error(err)
							return
						}
						r.sf.FreeRun(ctx, run)
					}
				}
			}(w)
		}
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("mixed single/batch/run exhaustion stress deadlocked")
	}
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
	if got := r.sf.InactiveLen(); got != 8 {
		t.Fatalf("inactive = %d, want 8 after drain", got)
	}
}

// TestShardedRunChurnConcurrent is the -race churn stress for the run
// path: one goroutine per CPU allocating, sweeping (ranged translation
// through the honest MMU), and freeing overlapping runs, with byte
// verification so a stale window translation fails loudly.
func TestShardedRunChurnConcurrent(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 64, ShardedConfig{ReclaimBatch: 8, PerCPUFree: 4})
	pages := allocPages(t, r.m, 128)
	for i, pg := range pages {
		pg.Data()[0] = byte(i)
	}
	ncpu := r.m.NumCPUs()
	const rounds = 200
	var wg sync.WaitGroup
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := r.m.Ctx(cpu)
			var got []*vm.Page
			for i := 0; i < rounds; i++ {
				n := 2 + (i+cpu)%7
				start := (i*(2*cpu+1)*5 + cpu*13) % (len(pages) - n)
				run, err := r.sf.AllocRun(ctx, pages[start:start+n], 0)
				if err != nil {
					t.Error(err)
					return
				}
				var terr error
				got, terr = r.pm.TranslateRun(ctx, run.Base(), run.Len(), false, got[:0])
				if terr != nil {
					t.Error(terr)
					return
				}
				for j, pg := range got {
					if pg.Data()[0] != byte(start+j) {
						t.Errorf("cpu %d round %d: page %d reads %#x, want %#x — stale run window",
							cpu, i, j, pg.Data()[0], byte(start+j))
						return
					}
				}
				r.sf.FreeRun(ctx, run)
			}
		}(cpu)
	}
	wg.Wait()
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestNativeRunPredicate pins which engines claim contiguity.
func TestNativeRunPredicate(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	if !NativeRun(r.sf) {
		t.Error("sharded i386 must provide native runs")
	}
	g := newI386Rig(t, arch.XeonMPHTT(), 32)
	if NativeRun(g.sf) {
		t.Error("global-lock i386 must not claim native runs")
	}
	m, _, amd := newAMD64Rig(t)
	_ = m
	if !NativeRun(amd) {
		t.Error("amd64 direct map must provide native runs")
	}
}

// TestAMD64RunContiguity: physically contiguous frames get a free
// contiguous window (the direct map's arithmetic); scattered frames
// degrade to per-page casts, and neither ever invalidates.
func TestAMD64RunContiguity(t *testing.T) {
	m, pm, sf := newAMD64Rig(t)
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 6) // fresh machine: contiguous frames
	run, err := sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("contiguous frames must yield a contiguous direct-map run")
	}
	if run.Base() != pm.DirectVA(pages[0]) {
		t.Fatal("run base is not the direct-map address")
	}
	sf.FreeRun(ctx, run)

	scattered := []*vm.Page{pages[4], pages[1], pages[3]}
	run2, err := sf.AllocRun(ctx, scattered, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Contiguous() {
		t.Fatal("scattered frames cannot be contiguous on a pure-arithmetic map")
	}
	for i, pg := range scattered {
		if run2.KVA(i) != pm.DirectVA(pg) {
			t.Fatalf("page %d of the fallback run is not its direct-map view", i)
		}
	}
	sf.FreeRun(ctx, run2)
	if c := m.Counters(); c.LocalInv.Load() != 0 || c.RemoteInvIssued.Load() != 0 {
		t.Fatal("amd64 runs must never invalidate")
	}
	st := sf.Stats()
	if st.Allocs != st.Frees || st.RunAllocs != 2 || st.RunFrees != 2 || st.RunPages != 9 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSparc64RunColorSplit: a color-compatible physically contiguous run
// rides the direct map; a color-bound mix splits per color into a
// scattered run, byte-correct either way.
func TestSparc64RunColorSplit(t *testing.T) {
	m := smp.NewMachine(arch.Sparc64MP(), 4096, true)
	pm := pmap.New(m)
	arena := kvaArenaFor(arch.Sparc64MP())
	sf, err := NewSparc64Sharded(m, pm, arena, 2, 64, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 8)
	for _, pg := range pages {
		pg.UserColor = -1 // direct-map eligible
	}
	run, err := sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("color-compatible contiguous frames must ride the direct map")
	}
	sf.FreeRun(ctx, run)

	mixed := allocPages(t, m, 8)
	for i, pg := range mixed {
		pg.UserColor = i % 4
	}
	run2, err := sf.AllocRun(ctx, mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Contiguous() {
		t.Fatal("a color-bound mix cannot be one contiguous window")
	}
	for i := 0; i < run2.Len(); i++ {
		got, err := pm.Translate(ctx, run2.KVA(i), false)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if got.Data()[0] != byte(i) {
			t.Fatalf("page %d reads %#x, want %#x", i, got.Data()[0], byte(i))
		}
	}
	sf.FreeRun(ctx, run2)
	if st := sf.Stats(); st.Allocs != st.Frees || st.RunAllocs != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOriginalRunIsContiguousOn64Bit: the original kernel's 64-bit
// pmap_qenter range is a contiguous run; its i386 loop is not.
func TestOriginalRunBehavior(t *testing.T) {
	m := smp.NewMachine(arch.OpteronMP(), 128, true)
	pm := pmap.New(m)
	sf := NewOriginal(m, pm, kvaArenaFor(arch.OpteronMP()))
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 4)
	run, err := sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Contiguous() {
		t.Fatal("64-bit original run must be contiguous (pmap_qenter range)")
	}
	for i := 1; i < run.Len(); i++ {
		if run.KVA(i) != run.KVA(0)+uint64(i)*vm.PageSize {
			t.Fatal("pmap_qenter range not consecutive")
		}
	}
	sf.FreeRun(ctx, run)

	m32 := smp.NewMachine(arch.XeonMP(), 128, true)
	pm32 := pmap.New(m32)
	sf32 := NewOriginal(m32, pm32, kvaArenaFor(arch.XeonMP()))
	run32, err := sf32.AllocRun(m32.Ctx(0), allocPages(t, m32, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if run32.Contiguous() {
		t.Fatal("i386 original loops per page; its run must be scattered")
	}
	sf32.FreeRun(m32.Ctx(0), run32)
}
