package sfbuf

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sfbuf/internal/cycles"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// This file implements the sharded mapping cache: a scalability redesign
// of the Section 4.2 cache for machines with many CPUs.  The paper's
// design serializes every Alloc and Free behind one mutex and pays one
// shootdown IPI round per shared reuse of an accessed mapping.  The
// sharded design removes both bottlenecks while keeping the Table 1 API
// and the TLB-coherence obligations intact:
//
//   - The hash table and inactive list are split into lock-striped shards
//     indexed by physical page number, so allocations of different pages
//     contend only when their frames collide on a shard.
//   - Each CPU keeps a small freelist of CLEAN buffers — torn down, PTE
//     invalid, guaranteed absent from every TLB.  A miss takes a clean
//     buffer, installs the new translation, and returns WITHOUT issuing
//     any invalidation: the accessed-bit argument of Section 4.2 applies
//     exactly (the replaced entry was invalid and unaccessed), and because
//     the buffer is clean the cpumask may remain "all processors" even for
//     shared mappings.
//   - Clean buffers are produced in batches: when the freelists run dry, a
//     reclaim round harvests the least-recently-used inactive buffers from
//     the shards, tears their mappings down, and retires every required
//     invalidation through the per-CPU shootdown queue in ONE ranged IPI
//     round (smp.QueueShootdown / smp.FlushShootdowns).  Teardown
//     invalidations target each mapping's tlbmask — the CPUs that could
//     have pulled the translation into their TLBs, which the per-mapping
//     bookkeeping the paper already requires tells us precisely — so a
//     CPU-private workload never interrupts other processors at all.
//
// The net effect is that the per-operation shootdown cost of the global
// design (one IPI round per shared miss) becomes one IPI round per
// ReclaimBatch misses, and the single mutex becomes per-shard striping
// plus an uncontended per-CPU freelist lock.
//
// Coherence argument.  A buffer's life starts clean: no TLB on any CPU
// holds a translation for its virtual address.  While the mapping is
// live, TLB entries for it are current by definition (the PTE does not
// change during a life; revivals from the inactive list reuse the same
// translation).  Therefore no CPU ever holds a STALE entry for a mapped
// buffer, and cpumask = all processors is truthful for every mapping this
// engine hands out — no purge-on-first-use is ever needed.  Staleness can
// only arise at reuse, and reuse only happens through reclaim, which
// invalidates the mapping everywhere it could be cached before the buffer
// re-enters circulation.  The stress tests verify this through the honest
// MMU: reads through every mapping must return the mapped page's bytes.

// Defaults for the sharded cache's tuning knobs.
const (
	// DefaultPerCPUFree is the clean-buffer stock each CPU may park.
	DefaultPerCPUFree = 16
	// DefaultReclaimBatch is how many inactive buffers one reclaim round
	// tears down — and thus how many misses share one shootdown round.
	DefaultReclaimBatch = 32
)

// ShardedConfig tunes the sharded mapping cache.  Zero values select
// defaults derived from the machine and cache size.
type ShardedConfig struct {
	// Shards is the lock-stripe count; it is rounded up to a power of
	// two.  Zero derives 2x the CPU count, scaled down for tiny caches.
	Shards int
	// PerCPUFree bounds each CPU's clean-buffer freelist.
	PerCPUFree int
	// ReclaimBatch is the number of buffers recycled per reclaim round.
	ReclaimBatch int
	// Homed selects socket-homed state placement on a multi-socket
	// machine: shards are grouped per socket with each frame routed to
	// its home socket's group, the overflow pool splits into per-socket
	// stocks, the clean-stock steal order prefers same-socket state, and
	// reclaim harvests the caller's own socket group first.  Off (the
	// default), the cache keeps the flat global-hash striping — on a
	// one-socket machine the two layouts are identical, so the knob only
	// matters when smp.Machine has a multi-socket topology.
	Homed bool
}

// withDefaults resolves zero fields against the machine and cache size.
func (c ShardedConfig) withDefaults(ncpu, entries int) ShardedConfig {
	if c.Shards <= 0 {
		c.Shards = 1
		for c.Shards < ncpu*2 {
			c.Shards <<= 1
		}
	} else {
		n := 1
		for n < c.Shards {
			n <<= 1
		}
		c.Shards = n
	}
	// Never stripe so finely that shards average fewer than 8 entries.
	for c.Shards > 1 && entries/c.Shards < 8 {
		c.Shards >>= 1
	}
	if c.ReclaimBatch <= 0 {
		c.ReclaimBatch = DefaultReclaimBatch
	}
	if max := entries / 4; c.ReclaimBatch > max {
		c.ReclaimBatch = max
	}
	if c.ReclaimBatch < 1 {
		c.ReclaimBatch = 1
	}
	if c.PerCPUFree <= 0 {
		// A freelist should absorb a whole reclaim batch so steady-state
		// churn restocks without touching the shared overflow pool.
		c.PerCPUFree = DefaultPerCPUFree
		if want := c.ReclaimBatch * 3 / 2; want > c.PerCPUFree {
			c.PerCPUFree = want
		}
	}
	if max := entries / (2 * ncpu); c.PerCPUFree > max {
		c.PerCPUFree = max
	}
	if c.PerCPUFree < 1 {
		c.PerCPUFree = 1
	}
	return c
}

// cacheShard is one lock stripe: a slice of the hash table plus the
// inactive buffers whose mappings hash here.  Only latently-valid buffers
// (freed but still mapped) sit on a shard's inactive list; clean buffers
// live on the freelists and overflow pool instead.
type cacheShard struct {
	mu       sync.Mutex
	hash     map[uint64]*Buf
	inactive bufList
}

// cpuFree is one CPU's clean-buffer stock.  Its mutex is uncontended
// except when another CPU steals during a shortage.
type cpuFree struct {
	mu   sync.Mutex
	bufs []*Buf
}

type shardedCache struct {
	m     *smp.Machine
	pm    *pmap.Pmap
	cfg   ShardedConfig
	total int // buffer count, the ceiling on any one batch

	shards    []*cacheShard
	shardMask uint64
	freelists []*cpuFree

	// Socket homing.  Every lock on the clean-stock and shard paths has a
	// home socket for smp.ChargeLockAt: shardHome per stripe (the owning
	// socket under Homed, round-robin across sockets for the striped
	// baseline — which is what makes the baseline pay cross-package
	// transfers), cpuSock per freelist (its owner CPU's socket, in both
	// layouts).  planOf is each CPU's clean-stock search order beyond its
	// own freelist and spreadOf its restock order for reclaim surplus;
	// under Homed both visit same-socket state before crossing a package.
	homed     bool
	sockets   int
	shardsPer int   // Homed: stripes per socket group
	shardHome []int // home socket of each shard's lock
	cpuSock   []int // home socket of each CPU's freelist lock
	planOf    [][]stealStep
	spreadOf  [][]int

	// pool is the overflow stock of clean buffers beyond the per-CPU
	// freelists — one sub-stock per socket under Homed, a single global
	// stock homed on socket 0 otherwise — and doubles as the sleep
	// rendezvous for exhaustion.  One mutex guards all sub-stocks; the
	// modeled per-socket lock cost is charged per sub-stock touched.
	pool struct {
		mu    sync.Mutex
		cond  *sync.Cond
		socks [][]*Buf
	}
	// waiters counts sleepers in alloc.  It changes only under pool.mu
	// but is read atomically on the free fast path, which must not take
	// a cache-global lock just to learn nobody is waiting.
	waiters atomic.Int32
	// freeGen increments whenever a buffer becomes reusable; sleepers
	// compare it against the value read before their scan to close the
	// lost-wakeup window without holding a global lock on the fast path.
	freeGen atomic.Uint64

	// Batch-fair exhaustion wakeups.  A starving batch or run (the sole
	// batchMu holder) registers its shortfall here instead of waking per
	// freed buffer: frees credit the claim, and the sleeper is signalled
	// once, when enough buffers have been freed to cover the shortfall.
	// Without the claim, a 16-page batch sleeping under exhaustion wakes
	// and rescans every shard group 16 times while singles race it for
	// each freed buffer.  Credits are counts, not reservations — a
	// non-sleeping allocator can still win the race to the freed buffers,
	// in which case the claimer re-registers the remainder — so fairness
	// is probabilistic but the per-free thundering rescans are gone.
	// claimNeed/claimGot are guarded by pool.mu; batchMu guarantees at
	// most one claim is registered at a time.
	//
	// The registered shortfall is exact at registration time (the
	// claimer just rescanned), but it can become an OVERestimate while
	// the claimer sleeps: if another CPU maps one of the batch's pages,
	// that page now resolves by hash hit, needing no freed buffer at
	// all.  Waiting for the full shortfall in credits could then sleep
	// forever even though a rescan would succeed.  hitGen counts hash
	// coverage growth (new entries installed); a claimer also wakes when
	// it advances, rescans, and re-registers the (smaller) remainder.
	claimNeed int
	claimGot  int
	claimCond *sync.Cond
	hitGen    atomic.Uint64

	// runs manages the reserved VA windows behind AllocRun.
	runs *runPool

	// reclaimHand rotates the shard a reclaim round harvests first, so
	// pressure spreads across stripes.
	reclaimHand atomic.Uint64

	// batchMu serializes batches that must sleep for buffers.  Two
	// concurrent batches each under the capacity guard could otherwise
	// deadlock holding partial runs (4+4 buffers of an 8-buffer cache,
	// both asleep, nobody left to free).  A batch that cannot complete
	// releases everything it holds, queues here, and only the single
	// holder may accumulate a partial run across sleeps — every other
	// starving batch waits empty-handed, so the holder always drains.
	batchMu sync.Mutex

	// migGate is the migration gate.  Every mapping-path entry point holds
	// it for READ for its whole critical span, and the Migrator holds it
	// for WRITE while evacuating a block — so a page's frame (and with it
	// the shard a buffer hashes to, the byte storage a mapping reads, and
	// the revive key of a parked run window) never changes under a mapping
	// operation.  Two rules keep it deadlock-free:
	//
	//   - A sleeper (alloc's exhaustion wait, claimWait) must drop the read
	//     gate BEFORE blocking on its condvar and re-acquire it only AFTER
	//     releasing pool.mu on the way out.  Re-acquiring while still
	//     holding pool.mu would deadlock three ways with a writer pending:
	//     the sleeper holds pool.mu wanting RLock, the pending writer
	//     blocks new readers, and the free() that would signal holds RLock
	//     wanting pool.mu.
	//   - The migrator, under the write gate, may take pool.mu, freelist,
	//     shard, and run-pool locks (no reader holds any of them while
	//     blocked on the gate) but NEVER batchMu: the starving batch holds
	//     batchMu across its gate-dropping sleep.
	migGate sync.RWMutex

	ablate Ablation

	// Statistics are per-field atomics: the engine exists to kill the
	// global lock, so it cannot count through one.
	allocs, frees, hits, misses         atomic.Uint64
	sleeps, interrupted, wouldBlock     atomic.Uint64
	freelistAllocs, reclaims, reclaimed atomic.Uint64
	batchAllocs, batchFrees, batchPages atomic.Uint64
	runAllocs, runFrees, runPages       atomic.Uint64
	runRevives, runReviveMisses         atomic.Uint64
}

var (
	_ mapCore = (*cache)(nil)
	_ mapCore = (*shardedCache)(nil)
)

// newShardedCache builds the engine over the given virtual addresses,
// drawing contiguous run windows from arena.  Every buffer starts clean —
// never mapped, absent from all TLBs — with its cpumask truthfully "all
// processors", distributed round-robin across the per-CPU freelists with
// the remainder in the overflow pool.
func newShardedCache(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena, vas []uint64, cfg ShardedConfig) *shardedCache {
	cfg = cfg.withDefaults(m.NumCPUs(), len(vas))
	topo := m.Topology()
	sockets := topo.Sockets
	if sockets < 1 {
		sockets = 1
	}
	homed := cfg.Homed && sockets > 1
	nshards, shardsPer := cfg.Shards, cfg.Shards
	if homed {
		shardsPer = cfg.Shards / sockets
		if shardsPer < 1 {
			shardsPer = 1
		}
		nshards = shardsPer * sockets
		cfg.Shards = nshards
	}
	c := &shardedCache{
		m:         m,
		pm:        pm,
		cfg:       cfg,
		total:     len(vas),
		shards:    make([]*cacheShard, nshards),
		shardMask: uint64(nshards - 1),
		freelists: make([]*cpuFree, m.NumCPUs()),
		homed:     homed,
		sockets:   sockets,
		shardsPer: shardsPer,
		runs:      newRunPool(pm, arena),
	}
	c.runs.homed = homed
	c.pool.cond = sync.NewCond(&c.pool.mu)
	c.claimCond = sync.NewCond(&c.pool.mu)
	c.runs.forceDebt = func() bool { return c.ablate&AblateAccessedBit != 0 }
	for i := range c.shards {
		c.shards[i] = &cacheShard{hash: make(map[uint64]*Buf, len(vas)/nshards+1)}
	}
	for i := range c.freelists {
		c.freelists[i] = &cpuFree{}
	}
	c.buildHoming(topo)
	all := m.AllCPUs()
	for i, va := range vas {
		b := &Buf{kva: va, home: c, cpumask: all}
		if f := c.freelists[i%len(c.freelists)]; len(f.bufs) < cfg.PerCPUFree {
			f.bufs = append(f.bufs, b)
		} else {
			pi := i % len(c.pool.socks)
			c.pool.socks[pi] = append(c.pool.socks[pi], b)
		}
	}
	return c
}

// stealStep is one stop on a CPU's clean-stock search beyond its own
// freelist: an overflow sub-stock (pool >= 0) or a sibling CPU's freelist
// (cpu >= 0).  Exactly one field is set per step.
type stealStep struct{ pool, cpu int }

// buildHoming precomputes the lock homes and per-CPU search orders.
// Striped layout: shard homes round-robin across sockets, one overflow
// stock homed on socket 0, steal order pool-then-every-sibling — the flat
// PR 6 behaviour, now with its cross-package lock transfers charged.
// Homed layout: shard i belongs to socket i/shardsPer, one overflow stock
// per socket, and the steal/spread orders visit own socket's state before
// any remote socket's.
func (c *shardedCache) buildHoming(topo smp.Topology) {
	ncpu := len(c.freelists)
	c.shardHome = make([]int, len(c.shards))
	for i := range c.shards {
		if c.homed {
			c.shardHome[i] = i / c.shardsPer
		} else {
			c.shardHome[i] = i % c.sockets
		}
	}
	c.cpuSock = make([]int, ncpu)
	for i := range c.cpuSock {
		c.cpuSock[i] = topo.SocketOf(i)
	}
	npool := 1
	if c.homed {
		npool = c.sockets
	}
	c.pool.socks = make([][]*Buf, npool)
	c.planOf = make([][]stealStep, ncpu)
	c.spreadOf = make([][]int, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		var plan []stealStep
		var spread []int
		if !c.homed {
			plan = append(plan, stealStep{pool: 0, cpu: -1})
			for i := 0; i < ncpu; i++ {
				if i != cpu {
					plan = append(plan, stealStep{pool: -1, cpu: i})
				}
				spread = append(spread, (cpu+i)%ncpu)
			}
		} else {
			sock := c.cpuSock[cpu]
			plan = append(plan, stealStep{pool: sock, cpu: -1})
			// Same-socket siblings, rotated from the owner so two
			// neighbors under shortage don't always raid the same victim.
			perSock := topo.CPUsPerSocket
			base := sock * perSock
			for i := 0; i < perSock; i++ {
				peer := base + (cpu-base+i)%perSock
				if peer != cpu {
					plan = append(plan, stealStep{pool: -1, cpu: peer})
				}
				spread = append(spread, base+(cpu-base+i)%perSock)
			}
			for s := 0; s < c.sockets; s++ {
				if s != sock {
					plan = append(plan, stealStep{pool: s, cpu: -1})
				}
			}
			for i := 0; i < ncpu; i++ {
				if c.cpuSock[i] != sock {
					plan = append(plan, stealStep{pool: -1, cpu: i})
					spread = append(spread, i)
				}
			}
		}
		c.planOf[cpu] = plan
		c.spreadOf[cpu] = spread
	}
}

func (c *shardedCache) shardIdx(frame uint64) uint64 {
	// Fibonacci hashing spreads dense frame numbers across stripes.
	h := frame * 0x9E3779B97F4A7C15 >> 32
	if c.homed {
		// The frame's home socket picks the group; the hash only picks
		// the stripe within it, so socket-local traffic stays on
		// socket-local locks.
		sock := uint64(c.m.Phys.SocketOfFrame(frame))
		return sock*uint64(c.shardsPer) + h%uint64(c.shardsPer)
	}
	return h & c.shardMask
}

func (c *shardedCache) shardFor(frame uint64) *cacheShard {
	return c.shards[c.shardIdx(frame)]
}

// chargeShardLock charges acquiring shard si's lock against its home
// socket: remote on a cross-package acquisition, plain ChargeLock on a
// one-socket machine.
func (c *shardedCache) chargeShardLock(ctx *smp.Context, si uint64) {
	ctx.ChargeLockAt(c.shardHome[si])
}

// poolIdx returns the overflow sub-stock the calling CPU restocks into:
// its own socket's under Homed, the single global stock otherwise.  Sub-
// stock i is always homed on socket i for lock charging.
func (c *shardedCache) poolIdx(ctx *smp.Context) int {
	if c.homed {
		return c.cpuSock[ctx.CPUID()]
	}
	return 0
}

// bumpFreeN publishes that n buffers became reusable and wakes sleepers
// accordingly.  A registered batch claim is credited first: the starving
// batch (or run) absorbs freed buffers toward its shortfall and is
// signalled exactly once, when the shortfall is covered, instead of
// waking to rescan per freed buffer; only the surplus beyond the claim
// wakes single-page sleepers (one for a single buffer, all for more —
// each freed buffer may satisfy a different sleeper, and a woken
// allocator that resolves without consuming clean stock — a hash hit —
// never re-signals, so under-waking would strand sleepers on buffers
// that are sitting free).  The generation increment must happen after
// the buffers are visible on their lists so a concurrent allocator that
// misses them is guaranteed to observe the new generation and rescan
// instead of sleeping.  A sleeper that registers after the waiters check
// necessarily re-reads freeGen after registering (both are sequentially
// consistent atomics), sees the increment, and rescans — so skipping the
// lock here cannot strand it.
func (c *shardedCache) bumpFreeN(n int) {
	if n <= 0 {
		return
	}
	c.freeGen.Add(1)
	if c.waiters.Load() > 0 {
		c.pool.mu.Lock()
		if short := c.claimNeed - c.claimGot; short > 0 {
			// An already-satisfied claim (claimGot >= claimNeed, its
			// holder not yet deregistered) absorbs nothing more: later
			// frees belong to the single-page sleepers in full.
			c.claimGot += n
			if c.claimGot >= c.claimNeed {
				c.claimCond.Signal()
			}
			if n > short {
				n -= short
			} else {
				n = 0
			}
		}
		if n == 1 {
			c.pool.cond.Signal()
		} else if n > 1 {
			c.pool.cond.Broadcast()
		}
		c.pool.mu.Unlock()
	}
}

func (c *shardedCache) bumpFree() { c.bumpFreeN(1) }

// noteHashInsert records that the hash gained coverage (a new mapping
// was installed): the only event that can shrink a registered claim's
// true shortfall without a free.  A registered claimer is woken so it
// can rescan against the grown hash instead of waiting for credits that
// may never come.
func (c *shardedCache) noteHashInsert() {
	c.hitGen.Add(1)
	if c.waiters.Load() > 0 {
		c.pool.mu.Lock()
		if c.claimNeed > 0 {
			c.claimCond.Signal()
		}
		c.pool.mu.Unlock()
	}
}

// claimWait is the starving batch/run sleep: register a claim for need
// buffers and block until frees have credited that many, hash coverage
// grows (a page the batch needs may now be a hit — rescan with a smaller
// shortfall), a newer free generation makes an immediate rescan
// worthwhile, or — under Catch — a signal arrives (reported as
// interrupted; the interruption is counted).  rescanAll reports that the
// wake was a hash-coverage one: the registered need counted pages in
// shard groups the claimer has not reached yet, so only a rescan of
// EVERY group can shrink the shortfall the new coverage made stale —
// retrying the current group alone would re-register the same stale
// need and sleep again.  On every deregistration the single-page
// sleepers are woken if the claim absorbed credits: the claimer's rescan
// may consume fewer buffers than were credited (hash hits), and the
// leftovers must not strand singles whose wakeups the claim suppressed.
// The caller must hold batchMu, which makes it the sole claimer.  The
// caller also holds the read migration gate; the sleep drops it (frames
// may migrate while we block) and re-acquires it — strictly after
// releasing pool.mu, per the gate's ordering rule — on every exit path
// that slept, so the caller's gate accounting is unchanged.
func (c *shardedCache) claimWait(ctx *smp.Context, need int, gen, hgen uint64, flags Flags) (rescanAll, interrupted bool) {
	c.pool.mu.Lock()
	c.waiters.Add(1)
	if c.freeGen.Load() != gen || c.hitGen.Load() != hgen {
		// A buffer was freed — or a mapping installed — after our scan
		// began; rescan instead.
		c.waiters.Add(-1)
		rescanAll = c.hitGen.Load() != hgen
		c.pool.mu.Unlock()
		return rescanAll, false
	}
	c.claimNeed, c.claimGot = need, 0
	c.sleeps.Add(1)
	c.migGate.RUnlock()
	for c.claimGot < c.claimNeed && c.hitGen.Load() == hgen {
		c.claimCond.Wait()
		if flags&Catch != 0 && ctx.Interrupted() {
			c.deregisterClaimLocked()
			c.pool.mu.Unlock()
			c.migGate.RLock()
			c.interrupted.Add(1)
			return false, true
		}
	}
	rescanAll = c.hitGen.Load() != hgen
	c.deregisterClaimLocked()
	c.pool.mu.Unlock()
	c.migGate.RLock()
	return rescanAll, false
}

// deregisterClaimLocked clears the claim and passes any absorbed credits
// on to the single-page sleepers.  Caller holds pool.mu.
func (c *shardedCache) deregisterClaimLocked() {
	if c.claimGot > 0 {
		c.pool.cond.Broadcast()
	}
	c.claimNeed, c.claimGot = 0, 0
	c.waiters.Add(-1)
}

// taint records which CPUs may pull the mapping into their TLBs during
// this use: the calling CPU for Private mappings, everyone for shared
// mappings (any CPU may dereference a shared address).  Caller holds the
// buf's shard lock.
func (c *shardedCache) taint(ctx *smp.Context, b *Buf, flags Flags) {
	if flags&Private != 0 {
		b.tlbmask = b.tlbmask.Set(ctx.CPUID())
	} else {
		b.tlbmask = c.m.AllCPUs()
	}
}

// alloc implements sf_buf_alloc on the sharded engine.  The hit path
// touches exactly one shard lock; the miss path additionally takes the
// allocating CPU's freelist lock, falling back to stealing and batched
// reclaim only under shortage.
func (c *shardedCache) alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error) {
	ctx.Charge(ctx.Cost().MapperOp)
	c.migGate.RLock()
	defer c.migGate.RUnlock()

	for {
		// Frame and shard are re-read every iteration: the exhaustion
		// sleep drops the migration gate, and the page may answer with a
		// different frame — hashing to a different shard — when we wake.
		frame := page.Frame()
		si := c.shardIdx(frame)
		c.chargeShardLock(ctx, si)
		gen := c.freeGen.Load()
		s := c.shards[si]

		s.mu.Lock()
		if b, ok := s.hash[frame]; ok && c.ablate&AblateSharing == 0 {
			if b.ref == 0 {
				s.inactive.remove(b)
			}
			b.ref++
			c.taint(ctx, b, flags)
			s.mu.Unlock()
			c.allocs.Add(1)
			c.hits.Add(1)
			return b, nil
		}
		// Miss.  The clean-stock locks (freelist, pool) never nest
		// around shard locks anywhere, so the fast restock can run
		// without giving up this shard — one critical section covers
		// lookup, stock-taking and installation.
		b := c.takeCleanFast(ctx)
		if b == nil {
			s.mu.Unlock()
			b = c.reclaim(ctx)
			if b != nil {
				c.chargeShardLock(ctx, si)
				s.mu.Lock()
				if cur, ok := s.hash[frame]; ok && c.ablate&AblateSharing == 0 {
					// Another CPU mapped the frame while the shard
					// was unlocked; share its mapping, restock ours.
					if cur.ref == 0 {
						s.inactive.remove(cur)
					}
					cur.ref++
					c.taint(ctx, cur, flags)
					s.mu.Unlock()
					c.putClean(ctx, b)
					c.allocs.Add(1)
					c.hits.Add(1)
					return cur, nil
				}
			}
		}
		if b != nil {
			b.page = page
			b.ref = 1
			// The buffer is clean: the old PTE is invalid and
			// unaccessed, so no invalidation is needed and the
			// all-processors cpumask set at cleaning time stays
			// truthful — the accessed-bit optimization, guaranteed
			// rather than opportunistic.
			c.pm.KEnter(ctx, b.kva, page)
			installed := false
			if c.ablate&AblateSharing == 0 {
				s.hash[frame] = b
				installed = true
			}
			c.taint(ctx, b, flags)
			s.mu.Unlock()
			if installed {
				c.noteHashInsert()
			}
			c.allocs.Add(1)
			c.misses.Add(1)
			return b, nil
		}

		// Exhausted: every buffer is referenced.
		if flags&NoWait != 0 {
			c.wouldBlock.Add(1)
			return nil, ErrWouldBlock
		}
		c.pool.mu.Lock()
		c.waiters.Add(1)
		if c.freeGen.Load() != gen {
			// A buffer was freed after our scan began; rescan.
			c.waiters.Add(-1)
			c.pool.mu.Unlock()
			continue
		}
		c.sleeps.Add(1)
		// Sleeping: drop the migration gate (the migrator may need the
		// pool and freelist locks to make a buffer free for us) and
		// re-acquire it only AFTER pool.mu is released, on both exits.
		c.migGate.RUnlock()
		c.pool.cond.Wait()
		c.waiters.Add(-1)
		if flags&Catch != 0 && ctx.Interrupted() {
			// Pass the wakeup on: the signal this sleeper consumed may
			// have announced a freed buffer that another sleeper is
			// still waiting for.
			if c.waiters.Load() > 0 {
				c.pool.cond.Signal()
			}
			c.pool.mu.Unlock()
			c.migGate.RLock()
			c.interrupted.Add(1)
			return nil, ErrInterrupted
		}
		c.pool.mu.Unlock()
		c.migGate.RLock()
	}
}

// takeCleanFast returns a clean buffer from the calling CPU's freelist,
// an overflow stock, or a sibling CPU's freelist, searching in the CPU's
// precomputed steal order (same-socket state first under Homed).  It
// takes no shard locks, so callers may hold one.  Returns nil when the
// clean stock is exhausted and a reclaim round is needed.
func (c *shardedCache) takeCleanFast(ctx *smp.Context) *Buf {
	// Each lock taken on this path is charged: the modeled cost must not
	// flatter the sharded engine against the global design's one mutex.
	self := ctx.CPUID()
	ctx.ChargeLockAt(c.cpuSock[self])
	f := c.freelists[self]
	f.mu.Lock()
	if n := len(f.bufs); n > 0 {
		b := f.bufs[n-1]
		f.bufs = f.bufs[:n-1]
		f.mu.Unlock()
		c.freelistAllocs.Add(1)
		return b
	}
	f.mu.Unlock()

	for _, st := range c.planOf[self] {
		if st.cpu < 0 {
			ctx.ChargeLockAt(st.pool)
			c.pool.mu.Lock()
			if n := len(c.pool.socks[st.pool]); n > 0 {
				b := c.pool.socks[st.pool][n-1]
				c.pool.socks[st.pool] = c.pool.socks[st.pool][:n-1]
				c.pool.mu.Unlock()
				c.freelistAllocs.Add(1)
				return b
			}
			c.pool.mu.Unlock()
			continue
		}
		ctx.ChargeLockAt(c.cpuSock[st.cpu])
		of := c.freelists[st.cpu]
		of.mu.Lock()
		if n := len(of.bufs); n > 0 {
			b := of.bufs[n-1]
			of.bufs = of.bufs[:n-1]
			of.mu.Unlock()
			c.freelistAllocs.Add(1)
			return b
		}
		of.mu.Unlock()
	}
	return nil
}

// putClean restocks a clean buffer the allocator ended up not needing.
func (c *shardedCache) putClean(ctx *smp.Context, b *Buf) {
	self := ctx.CPUID()
	ctx.ChargeLockAt(c.cpuSock[self])
	f := c.freelists[self]
	f.mu.Lock()
	if len(f.bufs) < c.cfg.PerCPUFree {
		f.bufs = append(f.bufs, b)
		f.mu.Unlock()
	} else {
		f.mu.Unlock()
		pi := c.poolIdx(ctx)
		c.pool.mu.Lock()
		c.pool.socks[pi] = append(c.pool.socks[pi], b)
		c.pool.mu.Unlock()
	}
	c.bumpFree()
}

// takeCleanBulk pops up to n clean buffers with as few lock round trips
// as possible: the calling CPU's freelist first (one round trip for the
// whole take), then the overflow stock(s) and sibling freelists in the
// CPU's steal order (same-socket state first under Homed).  It takes no
// shard locks, so callers may hold one.  It returns whatever stock it
// could find appended to into; the shortfall is the caller's to reclaim.
func (c *shardedCache) takeCleanBulk(ctx *smp.Context, n int, into []*Buf) []*Buf {
	want := n
	pop := func(bufs *[]*Buf) {
		take := want
		if m := len(*bufs); take > m {
			take = m
		}
		if take > 0 {
			cut := len(*bufs) - take
			into = append(into, (*bufs)[cut:]...)
			*bufs = (*bufs)[:cut]
			want -= take
		}
	}
	self := ctx.CPUID()
	ctx.ChargeLockAt(c.cpuSock[self])
	f := c.freelists[self]
	f.mu.Lock()
	pop(&f.bufs)
	f.mu.Unlock()
	for _, st := range c.planOf[self] {
		if want == 0 {
			break
		}
		if st.cpu < 0 {
			ctx.ChargeLockAt(st.pool)
			c.pool.mu.Lock()
			pop(&c.pool.socks[st.pool])
			c.pool.mu.Unlock()
			continue
		}
		of := c.freelists[st.cpu]
		ctx.ChargeLockAt(c.cpuSock[st.cpu])
		of.mu.Lock()
		pop(&of.bufs)
		of.mu.Unlock()
	}
	c.freelistAllocs.Add(uint64(n - want))
	return into
}

// putCleanBulk restocks clean buffers: the calling CPU's freelist up to
// its bound in one round trip, the surplus to the caller's overflow
// stock, and one wakeup round for the lot.
func (c *shardedCache) putCleanBulk(ctx *smp.Context, bufs []*Buf) {
	n := len(bufs)
	self := ctx.CPUID()
	ctx.ChargeLockAt(c.cpuSock[self])
	f := c.freelists[self]
	f.mu.Lock()
	if room := c.cfg.PerCPUFree - len(f.bufs); room > 0 {
		take := min(room, len(bufs))
		f.bufs = append(f.bufs, bufs[:take]...)
		bufs = bufs[take:]
	}
	f.mu.Unlock()
	if len(bufs) > 0 {
		pi := c.poolIdx(ctx)
		ctx.ChargeLockAt(pi)
		c.pool.mu.Lock()
		c.pool.socks[pi] = append(c.pool.socks[pi], bufs...)
		c.pool.mu.Unlock()
	}
	c.bumpFreeN(n)
}

// batchGroup is one shard's share of a vectored request: the indices of
// the batch's pages (or buffers) homed on that shard.  si is the shard's
// index, kept for charging its lock against its home socket.
type batchGroup struct {
	shard *cacheShard
	si    uint64
	idxs  []int
}

// groupByShard splits batch indices by home shard in first-appearance
// order, so a vectored operation takes each shard's lock exactly once.
func (c *shardedCache) groupByShard(n int, frameOf func(int) uint64) []batchGroup {
	groups := make([]batchGroup, 0, n)
	pos := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		si := c.shardIdx(frameOf(i))
		gi, ok := pos[si]
		if !ok {
			gi = len(groups)
			pos[si] = gi
			groups = append(groups, batchGroup{shard: c.shards[si], si: si})
		}
		groups[gi].idxs = append(groups[gi].idxs, i)
	}
	return groups
}

// allocBatch is the sharded engine's native vectored sf_buf_alloc: the
// whole run is resolved with one shard-lock round trip per shard touched,
// clean buffers are restocked with one bulk freelist pop instead of one
// pop per miss, and any reclaim a shortage forces retires its entire
// teardown debt in a single ranged shootdown flush.  The per-page
// bookkeeping cost (MapperOp) is unchanged — the vectored win is lock
// round trips and IPI rounds, not hash lookups.
func (c *shardedCache) allocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	if len(pages) > c.total {
		return nil, ErrBatchTooLarge
	}
	ctx.Charge(ctx.Cost().MapperOp * cycles.Cycles(len(pages)))
	c.migGate.RLock()
	defer c.migGate.RUnlock()

	// The grouping keys on each page's frame, which only migration can
	// change.  The gate is held across every scan, so the groups stay
	// keyed correctly except across claimWait — which drops the gate to
	// sleep, and whose return therefore rebuilds the groups wholesale.
	groups := c.groupByShard(len(pages), func(i int) uint64 { return pages[i].Frame() })
	out := make([]*Buf, len(pages))
	pending := len(pages) // pages not yet resolved, the restock target
	var stash []*Buf      // clean buffers carried across shard groups
	starving := false     // holding batchMu: sole batch allowed to sleep with a partial run
	defer func() {
		if starving {
			c.batchMu.Unlock()
		}
		if len(stash) > 0 {
			c.putCleanBulk(ctx, stash)
		}
	}()

restart:
	for gi := 0; gi < len(groups); gi++ {
		g := &groups[gi]
		s := g.shard
	retry:
		for {
			gen := c.freeGen.Load()
			hgen := c.hitGen.Load()
			installed := 0
			c.chargeShardLock(ctx, g.si)
			s.mu.Lock()
			for _, idx := range g.idxs {
				if out[idx] != nil {
					continue // resolved before a shortage retry
				}
				pg := pages[idx]
				frame := pg.Frame()
				if b, ok := s.hash[frame]; ok && c.ablate&AblateSharing == 0 {
					if b.ref == 0 {
						s.inactive.remove(b)
					}
					b.ref++
					c.taint(ctx, b, flags)
					out[idx] = b
					pending--
					c.hits.Add(1)
					continue
				}
				if len(stash) == 0 {
					// Bulk restock for every page the batch still has
					// outstanding, not just this group's.  Clean-stock
					// locks never nest around shard locks anywhere, so
					// holding s.mu is safe — the same argument as the
					// single-page miss path.
					stash = c.takeCleanBulk(ctx, pending, stash)
				}
				if len(stash) == 0 {
					// Shortage: give the shard up and run one reclaim
					// round (its whole teardown debt lands in one
					// flush), keeping the batch's shortfall for
					// ourselves instead of round-tripping it through
					// the freelists.
					s.mu.Unlock()
					if stash = c.reclaimBulk(ctx, pending, stash); len(stash) > 0 {
						continue retry
					}
					// Exhausted: every buffer is referenced.
					if flags&NoWait != 0 {
						c.wouldBlock.Add(1)
						c.rollbackBatch(ctx, out)
						return nil, ErrWouldBlock
					}
					if !starving {
						// Sleeping while holding a partial run is only
						// deadlock-free for one batch at a time: drop
						// everything, take the starvation token, and
						// rebuild from scratch as its sole holder.
						c.rollbackBatch(ctx, out)
						pending = len(pages)
						ctx.ChargeLock()
						c.batchMu.Lock()
						starving = true
						gi = -1 // restart every group
						continue restart
					}
					// About to sleep holding pending as the claim's
					// shortfall — but pending still counts pages in
					// groups this scan has not reached, and any of
					// those may be hash-resident (needing no clean
					// buffer at all).  Sweep every group for hits
					// first, so the claim registers the true
					// clean-buffer shortfall; if the sweep resolved
					// anything, rescan instead of sleeping.
					if swept := c.sweepHits(ctx, groups, pages, out, flags); swept > 0 {
						pending -= swept
						continue retry
					}
					// Claim-based sleep: register the batch's shortfall
					// and wake when frees have covered it — or when hash
					// coverage grows, shrinking the true shortfall —
					// instead of waking to rescan per freed buffer.
					// batchMu (held: starving == true) guarantees we are
					// the only claimer.
					if _, interrupted := c.claimWait(ctx, pending, gen, hgen, flags); interrupted {
						c.rollbackBatch(ctx, out)
						return nil, ErrInterrupted
					}
					// Any wake invalidates the shard grouping: the sleep
					// dropped the migration gate, so an unresolved page
					// may answer with a new frame homed on a different
					// shard.  Rebuild the groups and rescan every one —
					// which also picks up any coverage a hash-growth
					// wake announced.
					groups = c.groupByShard(len(pages), func(i int) uint64 { return pages[i].Frame() })
					gi = -1
					continue restart
				}
				b := stash[len(stash)-1]
				stash = stash[:len(stash)-1]
				b.page = pg
				b.ref = 1
				// Clean buffer: invalid, unaccessed old PTE — no
				// invalidation owed, exactly as in the single-page miss.
				c.pm.KEnter(ctx, b.kva, pg)
				if c.ablate&AblateSharing == 0 {
					s.hash[frame] = b
					installed++
				}
				c.taint(ctx, b, flags)
				out[idx] = b
				pending--
				c.misses.Add(1)
			}
			s.mu.Unlock()
			if installed > 0 {
				c.noteHashInsert()
			}
			break
		}
	}
	c.allocs.Add(uint64(len(pages)))
	c.batchAllocs.Add(1)
	c.batchPages.Add(uint64(len(pages)))
	return out, nil
}

// sweepHits resolves, across EVERY shard group, the batch pages that are
// already hash-resident — revivals and shares that need no clean buffer.
// The group-by-group scan normally discovers these in order, but the
// shortage path must know the whole batch's true clean-buffer shortfall
// before registering it as a claim, and a page in a not-yet-scanned
// group may already be covered.  One shard-lock round per group that
// still has unresolved pages.
func (c *shardedCache) sweepHits(ctx *smp.Context, groups []batchGroup, pages []*vm.Page, out []*Buf, flags Flags) int {
	if c.ablate&AblateSharing != 0 {
		return 0
	}
	resolved := 0
	for gi := range groups {
		g := &groups[gi]
		locked := false
		for _, idx := range g.idxs {
			if out[idx] != nil {
				continue
			}
			if !locked {
				c.chargeShardLock(ctx, g.si)
				g.shard.mu.Lock()
				locked = true
			}
			if b, ok := g.shard.hash[pages[idx].Frame()]; ok {
				if b.ref == 0 {
					g.shard.inactive.remove(b)
				}
				b.ref++
				c.taint(ctx, b, flags)
				out[idx] = b
				c.hits.Add(1)
				resolved++
			}
		}
		if locked {
			g.shard.mu.Unlock()
		}
	}
	return resolved
}

// rollbackBatch releases the references a partial batch holds and clears
// the slots it released.  The batch's pages were never counted as
// allocated, so the unwind bypasses the statistics too.
func (c *shardedCache) rollbackBatch(ctx *smp.Context, out []*Buf) {
	freed := 0
	for i, b := range out {
		if b == nil {
			continue
		}
		si := c.shardIdx(b.page.Frame())
		c.chargeShardLock(ctx, si)
		s := c.shards[si]
		s.mu.Lock()
		b.ref--
		if b.ref == 0 {
			s.inactive.pushTail(b)
			freed++
		}
		s.mu.Unlock()
		out[i] = nil
	}
	c.bumpFreeN(freed)
}

// freeBatch is the sharded engine's native vectored sf_buf_free: one
// shard-lock round trip per shard per batch and one wakeup for the lot.
// Under eager teardown (AblateLazyTeardown) the whole batch's
// invalidation debt is retired in one page-table pass and one queued
// shootdown flush, instead of one flush per buffer.
func (c *shardedCache) freeBatch(ctx *smp.Context, bufs []*Buf) {
	if len(bufs) == 0 {
		return
	}
	ctx.Charge(ctx.Cost().MapperOp * cycles.Cycles(len(bufs)))
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	for _, b := range bufs {
		if b.page == nil {
			panic("sfbuf: free of unreferenced sf_buf")
		}
	}
	groups := c.groupByShard(len(bufs), func(i int) uint64 { return bufs[i].page.Frame() })

	var eager []*Buf
	freed := 0
	for gi := range groups {
		g := &groups[gi]
		s := g.shard
		c.chargeShardLock(ctx, g.si)
		s.mu.Lock()
		for _, idx := range g.idxs {
			b := bufs[idx]
			if b.ref <= 0 {
				s.mu.Unlock()
				panic("sfbuf: free of unreferenced sf_buf")
			}
			b.ref--
			if b.ref > 0 {
				continue
			}
			if c.ablate&AblateLazyTeardown != 0 {
				if cur, ok := s.hash[b.page.Frame()]; ok && cur == b {
					delete(s.hash, b.page.Frame())
				}
				eager = append(eager, b)
			} else {
				s.inactive.pushTail(b)
				freed++
			}
		}
		s.mu.Unlock()
	}
	c.frees.Add(uint64(len(bufs)))
	c.batchFrees.Add(1)
	if len(eager) > 0 {
		c.teardownBatch(ctx, eager)
		c.putCleanBulk(ctx, eager) // wakes one sleeper per buffer restocked
	}
	c.bumpFreeN(freed)
}

// claimTokens claims n clean buffers as run capacity: contiguous runs
// consume the cache's buffer inventory exactly as scattered mappings do
// (so capacity guards, exhaustion sleeping, and the batch-fair wakeup all
// apply), but their kernel virtual addresses go unused — the run's
// translations live in a reserved window instead.  The claim path is the
// batch shortage path: bulk freelist pops, then reclaim rounds handing
// the whole shortfall over under one flush, then — if the cache is truly
// exhausted — the starvation token and a claim-based sleep.
func (c *shardedCache) claimTokens(ctx *smp.Context, n int, flags Flags) ([]*Buf, error) {
	got := c.takeCleanBulk(ctx, n, nil)
	if len(got) < n {
		got = c.reclaimBulk(ctx, n-len(got), got)
	}
	if len(got) >= n {
		return got, nil
	}
	if flags&NoWait != 0 {
		if len(got) > 0 {
			c.putCleanBulk(ctx, got)
		}
		c.wouldBlock.Add(1)
		return nil, ErrWouldBlock
	}
	// Exhausted: sleeping while holding part of the inventory is only
	// deadlock-free for one claimer at a time — drop everything, take the
	// starvation token, and accumulate as its sole holder.
	if len(got) > 0 {
		c.putCleanBulk(ctx, got)
		got = got[:0]
	}
	ctx.ChargeLock()
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	for {
		gen := c.freeGen.Load()
		hgen := c.hitGen.Load()
		if len(got) < n {
			got = c.takeCleanBulk(ctx, n-len(got), got)
		}
		if len(got) < n {
			got = c.reclaimBulk(ctx, n-len(got), got)
		}
		if len(got) >= n {
			return got, nil
		}
		// Runs never hash-hit, so a hash-coverage wake just loops for
		// another (rare, spurious) reclaim scan.
		if _, interrupted := c.claimWait(ctx, n-len(got), gen, hgen, flags); interrupted {
			if len(got) > 0 {
				c.putCleanBulk(ctx, got)
			}
			return nil, ErrInterrupted
		}
	}
}

// allocRun is the sharded engine's native contiguous-run path: claim the
// run's capacity from the clean-buffer inventory in bulk, take a window
// from the run pool, and install every translation with ONE page-table
// pass.  When the pool revives a parked window whose installed extent
// matches the request — the page-set cache hit — even that pass is
// skipped: the run reuses the parked translations with zero PTE writes
// and zero shootdown debt, exactly as a hash hit reuses an inactive
// buffer, and the pages count as cache Hits.  No invalidation is ever
// owed at map time — a cold window is only handed out after the
// laundering flush that retired its previous life's debt, and a revived
// window's translations are current by construction.
func (c *shardedCache) allocRun(ctx *smp.Context, pages []*vm.Page, flags Flags) (*Run, error) {
	n := len(pages)
	if n == 0 {
		return nil, nil
	}
	if n > c.total {
		return nil, ErrBatchTooLarge
	}
	ctx.Charge(ctx.Cost().MapperOp * cycles.Cycles(n))
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	tokens, err := c.claimTokens(ctx, n, flags)
	if err != nil {
		return nil, err
	}
	win, revived, err := c.runs.get(ctx, pages)
	if err != nil {
		c.putCleanBulk(ctx, tokens)
		return nil, fmt.Errorf("sfbuf: reserving a %d-page run window: %w", n, err)
	}
	if !revived {
		c.pm.KEnterRun(ctx, win.base, pages)
	}
	// The run's frames are now migration-ineligible until freeRun: a live
	// run's owner reads through the window with no reference the hash can
	// see, so the migrator must learn of it from the run pool instead.
	c.runs.noteLive(pages)
	mask := c.m.AllCPUs()
	if flags&Private != 0 {
		mask = smp.CPUSet(0).Set(ctx.CPUID())
	}
	c.allocs.Add(uint64(n))
	if revived {
		c.hits.Add(uint64(n))
		c.runRevives.Add(1)
	} else {
		c.misses.Add(uint64(n))
		c.runReviveMisses.Add(1)
	}
	c.runAllocs.Add(1)
	c.runPages.Add(uint64(n))
	return &Run{
		pages:  append([]*vm.Page(nil), pages...),
		base:   win.base,
		contig: true,
		mask:   mask,
		tokens: tokens,
		win:    win,
		home:   c,
	}, nil
}

// freeRun releases a run LAZILY: the window parks on the run pool's
// dirty list with its translations still installed, indexed by the frame
// extent it maps, so a repeat AllocRun over the same extent revives it
// with no PTE writes and no shootdown debt.  The page-table teardown and
// the run's whole invalidation debt are deferred to a laundering round —
// one bulk removal pass and one queued shootdown flush shared with up to
// runLaunderBatch-1 other windows — which only happens when the pool
// needs clean stock.  The claimed capacity restocks the freelists now,
// with one wakeup for the lot.
func (c *shardedCache) freeRun(ctx *smp.Context, r *Run) {
	if r.home != c || r.win == nil {
		panic("sfbuf: freeRun of a foreign or already-freed run")
	}
	n := len(r.pages)
	ctx.Charge(ctx.Cost().MapperOp * cycles.Cycles(n))
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	c.runs.noteDead(r.pages)
	c.runs.put(ctx, r.win, r.pages, r.mask)
	tokens := r.tokens
	r.pages, r.tokens, r.win, r.home = nil, nil, nil, nil
	c.frees.Add(uint64(n))
	c.runFrees.Add(1)
	c.putCleanBulk(ctx, tokens)
}

// launderRunWindows forces a laundering round, draining every parked
// window's deferred teardown in one flush — the deterministic drain hook
// tests and benchmarks use between phases.
func (c *shardedCache) launderRunWindows(ctx *smp.Context) {
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	c.runs.launder(ctx)
}

// reclaimScratch holds one reclaim round's working slices; pooling them
// keeps the steady-state churn path allocation-free.
type reclaimScratch struct {
	victims    []*Buf
	vpns       []uint64
	accessed   []bool
	selfVpns   []uint64
	queueVpns  []uint64
	queueMasks []smp.CPUSet
}

var scratchPool = sync.Pool{New: func() any { return new(reclaimScratch) }}

// reclaim runs one reclaim round and returns one clean buffer for the
// caller, restocking the rest — the single-page miss path.
func (c *shardedCache) reclaim(ctx *smp.Context) *Buf {
	var one [1]*Buf
	got := c.reclaimBulk(ctx, 1, one[:0])
	if len(got) == 0 {
		return nil
	}
	return got[0]
}

// reclaimBulk harvests least-recently-used inactive buffers, tears their
// mappings down, and retires every invalidation the teardown owes through
// the per-CPU shootdown queue — ONE ranged IPI round for the whole round
// instead of one round per mapping.  Mappings whose accessed bit is clear
// owe nothing (no TLB can cache an unaccessed translation), and accessed
// mappings owe only their tlbmask, so a CPU-private workload reclaims
// without interrupting anyone.  Up to want clean buffers are appended to
// into for the caller (the vectored path hands a whole batch's shortfall
// straight to the allocator instead of bouncing it through freelists);
// the surplus restocks the freelists.  The round harvests at least the
// configured ReclaimBatch so large wants keep the one-round amortization.
func (c *shardedCache) reclaimBulk(ctx *smp.Context, want int, into []*Buf) []*Buf {
	return c.reclaimScoped(ctx, want, into, false)
}

// reclaimScoped is reclaimBulk with a homing scope: under the homed
// layout the harvest sweeps the calling CPU's own socket group first —
// its victims were mapped by same-socket CPUs, so their teardown IPIs
// stay inside the package — and crosses to the other groups only when
// the local one runs dry (never when localOnly, the background daemon's
// mode: refill is an optimization, not a correctness obligation, so the
// daemon only does package-local work).  The striped layout rotates the
// hand over all stripes exactly as before.
func (c *shardedCache) reclaimScoped(ctx *smp.Context, want int, into []*Buf, localOnly bool) []*Buf {
	scratch := scratchPool.Get().(*reclaimScratch)
	defer func() {
		scratch.victims = scratch.victims[:0]
		scratch.vpns = scratch.vpns[:0]
		scratch.accessed = scratch.accessed[:0]
		scratch.selfVpns = scratch.selfVpns[:0]
		scratch.queueVpns = scratch.queueVpns[:0]
		scratch.queueMasks = scratch.queueMasks[:0]
		scratchPool.Put(scratch)
	}()
	goal := c.cfg.ReclaimBatch
	if want > goal {
		goal = want
	}
	victims := scratch.victims
	start := c.reclaimHand.Add(1)
	harvest := func(si uint64) {
		t := c.shards[si]
		c.chargeShardLock(ctx, si)
		t.mu.Lock()
		for len(victims) < goal {
			b := t.inactive.popHead()
			if b == nil {
				break
			}
			if b.page != nil {
				if cur, ok := t.hash[b.page.Frame()]; ok && cur == b {
					delete(t.hash, b.page.Frame())
				}
			}
			victims = append(victims, b)
		}
		t.mu.Unlock()
	}
	if !c.homed {
		for i := 0; i < len(c.shards) && len(victims) < goal; i++ {
			harvest((start + uint64(i)) % uint64(len(c.shards)))
		}
	} else {
		sock := ctx.Socket()
		per := uint64(c.shardsPer)
		for i := uint64(0); i < per && len(victims) < goal; i++ {
			harvest(uint64(sock)*per + (start+i)%per)
		}
		for g := 0; !localOnly && g < c.sockets && len(victims) < goal; g++ {
			if g == sock {
				continue
			}
			for i := uint64(0); i < per && len(victims) < goal; i++ {
				harvest(uint64(g)*per + (start+i)%per)
			}
		}
	}
	scratch.victims = victims
	if len(victims) == 0 {
		return into
	}

	c.reclaims.Add(1)
	c.reclaimed.Add(uint64(len(victims)))
	c.teardownBatch(ctx, victims)

	keep := want
	if keep > len(victims) {
		keep = len(victims)
	}
	into = append(into, victims[:keep]...)
	surplus := len(victims) - keep
	if rest := victims[keep:]; len(rest) > 0 {
		// Spread the surplus across the freelists in the CPU's restock
		// order (our own first, same-socket siblings before remote ones
		// under Homed): each CPU's next misses then restock locally
		// instead of stealing through the sibling freelists lock by lock.
		ncpu := len(c.freelists)
		share := (len(rest) + ncpu - 1) / ncpu
		for _, fi := range c.spreadOf[ctx.CPUID()] {
			if len(rest) == 0 {
				break
			}
			f := c.freelists[fi]
			n := share
			if n > len(rest) {
				n = len(rest)
			}
			ctx.ChargeLockAt(c.cpuSock[fi])
			f.mu.Lock()
			if room := c.cfg.PerCPUFree - len(f.bufs); n > room {
				n = room
			}
			if n > 0 {
				f.bufs = append(f.bufs, rest[:n]...)
				rest = rest[n:]
			}
			f.mu.Unlock()
		}
		if len(rest) > 0 {
			pi := c.poolIdx(ctx)
			c.pool.mu.Lock()
			c.pool.socks[pi] = append(c.pool.socks[pi], rest...)
			c.pool.mu.Unlock()
		}
		c.bumpFreeN(surplus)
	}
	return into
}

// teardownBatch removes every victim's mapping in one page-table pass and
// retires the whole batch's invalidation debt at once: one batched local
// purge for the initiating CPU, the remote share queued per victim's
// tlbmask, and ONE forced flush — a single ranged IPI round for the whole
// batch.  The caller owns the victims exclusively (popped from their
// shards under their locks); on return each victim is clean, its cpumask
// truthfully "all processors", ready to restock.
func (c *shardedCache) teardownBatch(ctx *smp.Context, victims []*Buf) {
	scratch := scratchPool.Get().(*reclaimScratch)
	defer func() {
		scratch.vpns = scratch.vpns[:0]
		scratch.accessed = scratch.accessed[:0]
		scratch.selfVpns = scratch.selfVpns[:0]
		scratch.queueVpns = scratch.queueVpns[:0]
		scratch.queueMasks = scratch.queueMasks[:0]
		scratchPool.Put(scratch)
	}()
	all := c.m.AllCPUs()
	self := ctx.CPUID()

	vpns := scratch.vpns
	for _, b := range victims {
		vpns = append(vpns, pmap.VPN(b.kva))
	}
	accessed := c.pm.KRemoveBatch(ctx, vpns, scratch.accessed)
	selfVpns := scratch.selfVpns
	queueVpns, queueMasks := scratch.queueVpns, scratch.queueMasks
	for i, b := range victims {
		if accessed[i] || (c.ablate&AblateAccessedBit != 0 && b.page != nil) {
			mask := b.tlbmask
			if mask.Has(self) {
				selfVpns = append(selfVpns, vpns[i])
				mask = mask.Clear(self)
			}
			queueVpns = append(queueVpns, vpns[i])
			queueMasks = append(queueMasks, mask)
		}
		b.page = nil
		b.tlbmask = 0
		b.cpumask = all
	}
	ctx.InvalidateLocalRange(selfVpns)
	ctx.QueueShootdownBatch(queueMasks, queueVpns)
	scratch.vpns, scratch.accessed, scratch.selfVpns = vpns, accessed, selfVpns
	scratch.queueVpns, scratch.queueMasks = queueVpns, queueMasks
	// The forced flush: the virtual addresses are about to be reused, so
	// the queued invalidations must land now — in one IPI round.
	ctx.FlushShootdowns()
}

// teardown removes b's mapping and queues whatever invalidations the
// removal owes.  The caller owns b exclusively (popped from a shard under
// its lock) and must flush the shootdown queue before reusing b's address.
func (c *shardedCache) teardown(ctx *smp.Context, b *Buf) {
	if b.page == nil {
		b.tlbmask = 0
		return
	}
	vpn := pmap.VPN(b.kva)
	pte, ok := c.pm.Probe(b.kva)
	c.pm.KRemove(ctx, b.kva)
	if ok && (pte.Accessed || (c.ablate&AblateAccessedBit != 0 && pte.Valid)) {
		mask := b.tlbmask
		if mask.Has(ctx.CPUID()) {
			ctx.InvalidateLocal(vpn)
			mask = mask.Clear(ctx.CPUID())
		}
		ctx.QueueShootdown(mask, vpn)
	}
	b.page = nil
	b.tlbmask = 0
}

// free implements sf_buf_free: decrement, and at zero either park the
// buffer on its shard's inactive list with the mapping latently valid
// (the lazy-teardown default the cache's hit rate depends on) or, under
// AblateLazyTeardown, tear it down eagerly.
func (c *shardedCache) free(ctx *smp.Context, b *Buf) {
	ctx.Charge(ctx.Cost().MapperOp)
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	c.frees.Add(1)
	if b.page == nil {
		// A referenced buffer always has a page; a clean one was
		// already freed (and since reclaimed).
		panic("sfbuf: free of unreferenced sf_buf")
	}
	si := c.shardIdx(b.page.Frame())
	c.chargeShardLock(ctx, si)
	s := c.shards[si]
	s.mu.Lock()
	if b.ref <= 0 {
		s.mu.Unlock()
		panic("sfbuf: free of unreferenced sf_buf")
	}
	b.ref--
	if b.ref > 0 {
		s.mu.Unlock()
		return
	}
	if c.ablate&AblateLazyTeardown != 0 {
		// Eager teardown: detach from the shard now, retire the
		// mapping's invalidation debt immediately, restock as clean.
		if cur, ok := s.hash[b.page.Frame()]; ok && cur == b {
			delete(s.hash, b.page.Frame())
		}
		s.mu.Unlock()
		c.teardown(ctx, b)
		ctx.FlushShootdowns()
		b.cpumask = c.m.AllCPUs()
		c.putClean(ctx, b)
		return
	}
	s.inactive.pushTail(b)
	s.mu.Unlock()
	c.bumpFree()
}

// interruptWakeup wakes every sleeper — single-page sleepers and a
// registered batch claimer alike — so pending signals can be observed.
func (c *shardedCache) interruptWakeup() {
	c.pool.mu.Lock()
	c.pool.cond.Broadcast()
	c.claimCond.Broadcast()
	c.pool.mu.Unlock()
}

func (c *shardedCache) snapshotStats() Stats {
	return Stats{
		Allocs:          c.allocs.Load(),
		Frees:           c.frees.Load(),
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Sleeps:          c.sleeps.Load(),
		Interrupted:     c.interrupted.Load(),
		WouldBlock:      c.wouldBlock.Load(),
		FreelistAllocs:  c.freelistAllocs.Load(),
		Reclaims:        c.reclaims.Load(),
		Reclaimed:       c.reclaimed.Load(),
		BatchAllocs:     c.batchAllocs.Load(),
		BatchFrees:      c.batchFrees.Load(),
		BatchPages:      c.batchPages.Load(),
		RunAllocs:       c.runAllocs.Load(),
		RunFrees:        c.runFrees.Load(),
		RunPages:        c.runPages.Load(),
		RunRevives:      c.runRevives.Load(),
		RunReviveMisses: c.runReviveMisses.Load(),
	}
}

func (c *shardedCache) resetStats() {
	c.allocs.Store(0)
	c.frees.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.sleeps.Store(0)
	c.interrupted.Store(0)
	c.wouldBlock.Store(0)
	c.freelistAllocs.Store(0)
	c.reclaims.Store(0)
	c.reclaimed.Store(0)
	c.batchAllocs.Store(0)
	c.batchFrees.Store(0)
	c.batchPages.Store(0)
	c.runAllocs.Store(0)
	c.runFrees.Store(0)
	c.runPages.Store(0)
	c.runRevives.Store(0)
	c.runReviveMisses.Store(0)
}

// inactiveLen counts every unreferenced buffer: latently-valid buffers on
// the shard inactive lists plus clean buffers on the freelists and pool.
func (c *shardedCache) inactiveLen() int {
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.inactive.n
		s.mu.Unlock()
	}
	for _, f := range c.freelists {
		f.mu.Lock()
		n += len(f.bufs)
		f.mu.Unlock()
	}
	c.pool.mu.Lock()
	for _, s := range c.pool.socks {
		n += len(s)
	}
	c.pool.mu.Unlock()
	return n
}

func (c *shardedCache) validMappings() int {
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.hash)
		s.mu.Unlock()
	}
	return n
}

func (c *shardedCache) lookupRef(frame uint64) (ref int, mask smp.CPUSet, ok bool) {
	c.migGate.RLock()
	defer c.migGate.RUnlock()
	return c.lookupRefUngated(frame)
}

// lookupRefUngated is lookupRef for callers that already hold the
// migration gate (either side).
func (c *shardedCache) lookupRefUngated(frame uint64) (ref int, mask smp.CPUSet, ok bool) {
	s := c.shardFor(frame)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.hash[frame]
	if !ok {
		return 0, 0, false
	}
	return b.ref, b.cpumask, true
}

func (c *shardedCache) setAblate(a Ablation) { c.ablate = a }

// NumShards reports the resolved stripe count (test and report helper).
func (c *shardedCache) numShards() int { return c.cfg.Shards }
