package sfbuf

// Differential harness for defragmentation by migration.  The engines
// replay the same trace over BUDDY physical pools, with two opcode kinds
// the base harness leaves out: raw physical churn (kind 10) fragments the
// pool underneath the mapping layer, and forced defrag passes (kind 9)
// evacuate nearly-free spans on whichever engines can migrate.  Only the
// sharded engine has a Migrator; the global-lock cache and the original
// kernel replay kind 9 as a no-op — so the assertion that all engines
// (and the 1- vs 2-socket builds) end byte-identical is exactly the
// contract the Migrator must honor: migration may move frames, remap
// inactive entries and rewrite parked windows, but it may never change a
// single observable byte or leave a stale translation dereferenceable.

import (
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
	"sfbuf/internal/vm/physcheck"
)

const (
	diffBuddyFrames = 1024
	diffMigSpan     = 64 // contiguity target for the differential traces
)

// newDiffEnginesBuddy is newDiffEnginesTopo over buddy physical pools: the
// machines get NUMA-homed buddy frame allocators with a reservation at the
// trace's span order, and the engines that can migrate (the sharded i386
// cache) get a Migrator for kind-9 passes.  sockets <= 1 builds the flat
// single-socket pool.
func newDiffEnginesBuddy(t *testing.T, plat arch.Platform, sockets int) []*diffEngine {
	t.Helper()
	if sockets < 1 {
		sockets = 1
	}
	spanOrder := 0
	for 1<<spanOrder < diffMigSpan {
		spanOrder++
	}
	build := func(name string, mk func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error)) *diffEngine {
		m := smp.NewMachineWithPhys(plat, vm.NewBuddyPhysMemNUMA(diffBuddyFrames, true, sockets))
		m.Phys.SetReservation(spanOrder, 2)
		pm := pmap.New(m)
		arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
		if sockets > 1 {
			m.SetTopology(sockets)
			arena.SetRegions(sockets)
		}
		sf, err := mk(m, pm, arena)
		if err != nil {
			t.Fatal(err)
		}
		pages := make([]*vm.Page, diffPages)
		for i := range pages {
			pg, err := m.Phys.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			pg.Data()[0] = byte(i)
			pages[i] = pg
		}
		e := &diffEngine{name: name, m: m, pm: pm, sf: sf, pages: pages}
		e.mig = NewMigrator(sf, MigrateConfig{Span: diffMigSpan, MaxResident: diffMigSpan / 2})
		return e
	}
	shardCfg := ShardedConfig{ReclaimBatch: 8, PerCPUFree: 4, Homed: sockets > 1}
	return []*diffEngine{
		build("sharded", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			return NewI386Sharded(m, pm, arena, diffEntries, shardCfg)
		}),
		build("global", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			return NewI386(m, pm, arena, diffEntries)
		}),
		build("original", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			return NewOriginal(m, pm, arena), nil
		}),
	}
}

// genTraceMigrate builds a revive-biased mapping trace interleaved with
// raw physical churn (kind 10) and periodic forced defrag passes
// (kind 9).  The churn bursts and scattered frees are what defeats the
// buddy allocator's eager coalescing; the defrag passes then have real
// evacuation work, including this trace's own inactive entries and parked
// windows.
func genTraceMigrate(seed int64, ncpu int) []diffOp {
	base := genTraceBias(seed, ncpu, 25)
	rng := rand.New(rand.NewSource(seed * 7919))
	var out []diffOp
	churnLive := 0
	const churnCap = 420
	for i, op := range base {
		out = append(out, op)
		if i%2 == 0 {
			if churnLive < churnCap && (churnLive == 0 || rng.Intn(5) < 3) {
				n := 1 + rng.Intn(6)
				out = append(out, diffOp{kind: 10, count: n})
				churnLive += n
			} else {
				out = append(out, diffOp{kind: 10, val: 1, pick: rng.Intn(1 << 16)})
				churnLive--
			}
		}
		if i%25 == 24 {
			out = append(out, diffOp{kind: 9, count: 2, cpu: rng.Intn(ncpu)})
		}
	}
	return out
}

// TestDifferentialMigration replays migration traces against all three
// engines on buddy pools, flat and 2-socket, and requires byte-identical
// observables everywhere — with the structural free-list audit run on
// every pool afterwards.  The sharded engine actually migrates (asserted);
// the others prove the moves were invisible.
func TestDifferentialMigration(t *testing.T) {
	flatPlat := arch.XeonMPHTT()
	numaPlat := arch.XeonNUMA(2, 2)
	if numaPlat.NumCPUs != flatPlat.NumCPUs {
		t.Fatalf("platform CPU counts diverge (%d vs %d): traces are not comparable",
			numaPlat.NumCPUs, flatPlat.NumCPUs)
	}
	var movedTotal, freedTotal uint64
	for seed := int64(61); seed <= 63; seed++ {
		ops := genTraceMigrate(seed, flatPlat.NumCPUs)
		var ref [diffPages]byte
		for i, e := range newDiffEnginesBuddy(t, flatPlat, 1) {
			got := replayTrace(t, e, ops)
			if err := physcheck.Audit(e.m.Phys); err != nil {
				t.Fatalf("seed %d: %s after replay: %v", seed, e.name, err)
			}
			if i == 0 {
				ref = got
				st := e.mig.Stats()
				movedTotal += st.PagesMoved
				freedTotal += st.BlocksFreed
				continue
			}
			if got != ref {
				t.Fatalf("seed %d: engine %s final bytes diverge from sharded under migration", seed, e.name)
			}
		}
		for _, e := range newDiffEnginesBuddy(t, numaPlat, 2) {
			got := replayTrace(t, e, ops)
			if err := physcheck.Audit(e.m.Phys); err != nil {
				t.Fatalf("seed %d: 2-socket %s after replay: %v", seed, e.name, err)
			}
			if got != ref {
				t.Fatalf("seed %d: 2-socket %s diverges from the flat replay under migration", seed, e.name)
			}
		}
	}
	if movedTotal == 0 {
		t.Fatal("the migration traces never moved a page — the harness is not exercising defrag")
	}
	if freedTotal == 0 {
		t.Fatal("the migration traces never coalesced a span — churn/defrag balance is off")
	}
}
