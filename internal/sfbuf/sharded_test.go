package sfbuf

import (
	"errors"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

type shardedRig struct {
	m     *smp.Machine
	pm    *pmap.Pmap
	arena *kva.Arena
	sf    *I386
}

func newShardedRig(t *testing.T, p arch.Platform, entries int, cfg ShardedConfig) *shardedRig {
	t.Helper()
	m := smp.NewMachine(p, 4096, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	sf, err := NewI386Sharded(m, pm, arena, entries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &shardedRig{m: m, pm: pm, arena: arena, sf: sf}
}

func (r *shardedRig) page(t *testing.T) *vm.Page {
	t.Helper()
	pg, err := r.m.Phys.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestShardedAllocFreeBasic(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b, err := r.sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Page() != pg || b.KVA() == 0 {
		t.Fatal("accessors wrong")
	}
	got, err := r.pm.Translate(ctx, b.KVA(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got != pg {
		t.Fatal("mapping resolves to wrong page")
	}
	r.sf.Free(ctx, b)
	if r.sf.InactiveLen() != 8 {
		t.Fatalf("inactive = %d, want 8 (all buffers unreferenced)", r.sf.InactiveLen())
	}
}

// TestShardedMissNeedsNoInvalidation is the engine's central property: a
// miss served from clean stock installs a SHARED mapping without a single
// TLB invalidation, local or remote — the global cache's widening
// shootdown is gone, not deferred.
func TestShardedMissNeedsNoInvalidation(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 16, ShardedConfig{})
	ctx := r.m.Ctx(0)
	for i := 0; i < 8; i++ {
		pg := r.page(t)
		b, err := r.sf.Alloc(ctx, pg, 0) // shared
		if err != nil {
			t.Fatal(err)
		}
		// Every CPU may dereference immediately: cpumask is truthful.
		_, mask, ok := r.sf.LookupRef(pg)
		if !ok || mask != r.m.AllCPUs() {
			t.Fatalf("cpumask = %v, want all CPUs", mask)
		}
		for cpu := 0; cpu < r.m.NumCPUs(); cpu++ {
			if g, err := r.pm.Translate(r.m.Ctx(cpu), b.KVA(), false); err != nil || g != pg {
				t.Fatalf("cpu %d: translate got (%v, %v)", cpu, g, err)
			}
		}
		r.sf.Free(ctx, b)
	}
	c := r.m.SnapshotCounters()
	if c.LocalInv != 0 || c.RemoteInvIssued != 0 {
		t.Fatalf("clean misses invalidated: local %d remote %d, want 0/0", c.LocalInv, c.RemoteInvIssued)
	}
}

func TestShardedSharingAndRevival(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b1, _ := r.sf.Alloc(ctx, pg, 0)
	b2, _ := r.sf.Alloc(ctx, pg, 0)
	if b1 != b2 {
		t.Fatal("same page must share one sf_buf")
	}
	if ref, _, _ := r.sf.LookupRef(pg); ref != 2 {
		t.Fatalf("ref = %d, want 2", ref)
	}
	r.sf.Free(ctx, b1)
	r.sf.Free(ctx, b2)
	if r.sf.ValidMappings() != 1 {
		t.Fatal("latent mapping must survive the last free")
	}
	b3, _ := r.sf.Alloc(ctx, pg, 0)
	if b3 != b1 {
		t.Fatal("revival must return the same sf_buf")
	}
	s := r.sf.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", s)
	}
	r.sf.Free(ctx, b3)
}

// TestShardedBatchedReclaimCoalescesShootdowns: a shared churn workload
// on the global cache costs one IPI round per miss; here the same debt is
// paid once per reclaim batch.
func TestShardedBatchedReclaimCoalescesShootdowns(t *testing.T) {
	const entries, batch = 32, 8
	r := newShardedRig(t, arch.XeonMPHTT(), entries,
		ShardedConfig{ReclaimBatch: batch, PerCPUFree: 2})
	ctx := r.m.Ctx(0)
	pages := make([]*vm.Page, 4*entries)
	for i := range pages {
		pages[i] = r.page(t)
	}
	const ops = 1024
	for i := 0; i < ops; i++ {
		b, err := r.sf.Alloc(ctx, pages[i%len(pages)], 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
			t.Fatal(err)
		}
		r.sf.Free(ctx, b)
	}
	s := r.sf.Stats()
	c := r.m.SnapshotCounters()
	if s.Reclaims == 0 || s.Reclaimed == 0 {
		t.Fatalf("churn must reclaim, stats %+v", s)
	}
	// At most one IPI round per reclaim round (some reclaim only
	// unaccessed mappings and owe nothing).
	if c.RemoteInvIssued > s.Reclaims {
		t.Fatalf("remote rounds %d > reclaim rounds %d: batching broken", c.RemoteInvIssued, s.Reclaims)
	}
	// The global design would pay roughly one round per miss.
	if c.RemoteInvIssued*uint64(batch)/2 > s.Misses {
		t.Fatalf("remote rounds %d for %d misses: expected ~1/%d coalescing",
			c.RemoteInvIssued, s.Misses, batch)
	}
	if c.BatchedFlushes == 0 || c.BatchedInv < c.BatchedFlushes {
		t.Fatalf("batched counters = %d flushes / %d inv", c.BatchedFlushes, c.BatchedInv)
	}
}

// TestShardedPrivateChurnNeverIPIs: tlbmask tracking means a CPU-private
// workload reclaims without interrupting other processors at all.
func TestShardedPrivateChurnNeverIPIs(t *testing.T) {
	const entries = 16
	r := newShardedRig(t, arch.XeonMP(), entries, ShardedConfig{ReclaimBatch: 4})
	ctx := r.m.Ctx(0)
	pages := make([]*vm.Page, 4*entries)
	for i := range pages {
		pages[i] = r.page(t)
	}
	for i := 0; i < 512; i++ {
		b, err := r.sf.Alloc(ctx, pages[i%len(pages)], Private)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.pm.Translate(ctx, b.KVA(), true); err != nil {
			t.Fatal(err)
		}
		r.sf.Free(ctx, b)
	}
	if s := r.sf.Stats(); s.Reclaims == 0 {
		t.Fatalf("churn must reclaim, stats %+v", s)
	}
	if got := r.m.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("private churn issued %d remote rounds, want 0", got)
	}
	if got := r.m.Counters().LocalInv.Load(); got == 0 {
		t.Fatal("accessed private mappings still owe local purges at reclaim")
	}
}

// TestShardedReclaimPurgesRemoteStaleEntries proves through the honest
// MMU that the batched teardown leaves no dereferenceable stale mapping:
// a remote CPU's cached translation dies in the reclaim round, before the
// virtual address is reused for another page.
func TestShardedReclaimPurgesRemoteStaleEntries(t *testing.T) {
	// One buffer total: every new page forces a reclaim of the previous
	// mapping.
	r := newShardedRig(t, arch.XeonMP(), 1, ShardedConfig{})
	ctx0, ctx1 := r.m.Ctx(0), r.m.Ctx(1)
	pOld, pNew := r.page(t), r.page(t)
	pOld.Data()[0] = 0xAA
	pNew.Data()[0] = 0xBB

	b, _ := r.sf.Alloc(ctx1, pOld, 0)
	va := b.KVA()
	if g, _ := r.pm.Translate(ctx1, va, false); g.Data()[0] != 0xAA {
		t.Fatal("epoch-1 read wrong")
	}
	if !r.m.CPU(1).TLBResident(pmap.VPN(va)) {
		t.Fatal("setup: CPU 1 should cache the translation")
	}
	r.sf.Free(ctx1, b)

	// CPU 0 takes the only buffer for pNew; the reclaim round must shoot
	// CPU 1's entry down even though CPU 0 initiates.
	b2, err := r.sf.Alloc(ctx0, pNew, Private)
	if err != nil {
		t.Fatal(err)
	}
	if b2.KVA() != va {
		t.Fatal("test requires buffer reuse")
	}
	if r.m.CPU(1).TLBResident(pmap.VPN(va)) {
		t.Fatal("reclaim left CPU 1's stale translation alive")
	}
	// And the proof by data: CPU 1 reads the NEW page's bytes.
	if g, err := r.pm.Translate(ctx1, va, false); err != nil || g.Data()[0] != 0xBB {
		t.Fatalf("CPU 1 read (%v, %v): stale mapping dereferenced", g, err)
	}
	r.sf.Free(ctx0, b2)
}

func TestShardedNoWaitAndSleep(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 1, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pg1, pg2 := r.page(t), r.page(t)
	b1, err := r.sf.Alloc(ctx, pg1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.sf.Alloc(ctx, pg2, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}
	done := make(chan *Buf)
	go func() {
		b, err := r.sf.Alloc(r.m.Ctx(1), pg2, 0)
		if err != nil {
			panic(err)
		}
		done <- b
	}()
	for r.sf.Stats().Sleeps == 0 {
	}
	r.sf.Free(ctx, b1)
	b2 := <-done
	if b2.Page() != pg2 {
		t.Fatal("woken allocation mapped wrong page")
	}
	r.sf.Free(r.m.Ctx(1), b2)
}

func TestShardedInterruptibleSleep(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 1, ShardedConfig{})
	ctx := r.m.Ctx(0)
	b, _ := r.sf.Alloc(ctx, r.page(t), 0)
	ctx2 := r.m.Ctx(1)
	done := make(chan error)
	go func() {
		_, err := r.sf.Alloc(ctx2, r.page(t), Catch)
		done <- err
	}()
	for r.sf.Stats().Sleeps == 0 {
	}
	ctx2.Interrupt()
	r.sf.InterruptWakeup()
	if err := <-done; !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	r.sf.Free(ctx, b)
}

// TestShardedInterruptedSleeperPassesWakeup: when the one free-signal
// lands on a sleeper that aborts with ErrInterrupted, it must pass the
// wakeup on rather than strand the other sleeper with a buffer free.
func TestShardedInterruptedSleeperPassesWakeup(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 1, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pgA, pgB := r.page(t), r.page(t)
	b, err := r.sf.Alloc(ctx, r.page(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctxA, ctxB := r.m.Ctx(1), r.m.Ctx(2)
	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		_, err := r.sf.Alloc(ctxA, pgA, Catch)
		errA <- err
	}()
	for r.sf.Stats().Sleeps < 1 {
	}
	go func() {
		bb, err := r.sf.Alloc(ctxB, pgB, 0)
		if err == nil {
			r.sf.Free(ctxB, bb)
		}
		errB <- err
	}()
	for r.sf.Stats().Sleeps < 2 {
	}
	ctxA.Interrupt() // pending signal; no broadcast
	r.sf.Free(ctx, b)
	if err := <-errB; err != nil {
		t.Fatalf("uninterrupted sleeper: %v", err)
	}
	if err := <-errA; !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted sleeper: err = %v, want ErrInterrupted", err)
	}
	if got := r.sf.InactiveLen(); got != 1 {
		t.Fatalf("inactive = %d, want 1", got)
	}
}

func TestShardedDoubleFreePanics(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 2, ShardedConfig{})
	ctx := r.m.Ctx(0)
	b, _ := r.sf.Alloc(ctx, r.page(t), 0)
	r.sf.Free(ctx, b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	r.sf.Free(ctx, b)
}

// TestShardedDoubleFreeAfterReclaimPanics: the misuse diagnostic must
// survive the buffer being reclaimed (page cleared) between the frees.
func TestShardedDoubleFreeAfterReclaimPanics(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{ReclaimBatch: 4})
	ctx := r.m.Ctx(0)
	bufs := make([]*Buf, 8)
	for i := range bufs {
		b, err := r.sf.Alloc(ctx, r.page(t), 0)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
	}
	for _, b := range bufs {
		r.sf.Free(ctx, b)
	}
	// Exhaust the clean stock so the next miss reclaims a batch; the
	// surplus victims end up clean (page == nil) on the freelists.
	if _, err := r.sf.Alloc(ctx, r.page(t), 0); err != nil {
		t.Fatal(err)
	}
	var clean *Buf
	for _, b := range bufs {
		if b.Page() == nil {
			clean = b
			break
		}
	}
	if clean == nil {
		t.Fatal("setup: reclaim left no clean buffer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("free of a reclaimed, unreferenced buffer must panic")
		}
	}()
	r.sf.Free(ctx, clean)
}

func TestShardedAblateSharing(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 4, ShardedConfig{})
	r.sf.Ablate(AblateSharing)
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b1, _ := r.sf.Alloc(ctx, pg, 0)
	b2, _ := r.sf.Alloc(ctx, pg, 0)
	if b1 == b2 || b1.KVA() == b2.KVA() {
		t.Fatal("sharing ablated but buffers alias")
	}
	for _, b := range []*Buf{b1, b2} {
		if g, _ := r.pm.Translate(ctx, b.KVA(), false); g != pg {
			t.Fatal("aliased mapping resolves wrong")
		}
	}
	if r.sf.Stats().Hits != 0 {
		t.Fatal("no hits possible with sharing ablated")
	}
	r.sf.Free(ctx, b1)
	r.sf.Free(ctx, b2)
}

func TestShardedAblateLazyTeardown(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 4, ShardedConfig{})
	r.sf.Ablate(AblateLazyTeardown)
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b, _ := r.sf.Alloc(ctx, pg, 0)
	r.pm.Translate(ctx, b.KVA(), false)
	va := b.KVA()
	r.sf.Free(ctx, b)
	if pte, ok := r.pm.Probe(va); ok && pte.Valid {
		t.Fatal("eager teardown left the mapping valid")
	}
	if r.sf.ValidMappings() != 0 {
		t.Fatal("eager teardown left the hash populated")
	}
	b2, _ := r.sf.Alloc(ctx, pg, 0)
	if got := r.sf.Stats().Misses; got != 2 {
		t.Fatalf("misses = %d, want 2 (no latent revival)", got)
	}
	r.sf.Free(ctx, b2)
}

func TestShardedConfigDefaults(t *testing.T) {
	cfg := ShardedConfig{}.withDefaults(4, 1024)
	if cfg.Shards != 8 {
		t.Fatalf("shards = %d, want 8 (2x CPUs)", cfg.Shards)
	}
	if cfg.ReclaimBatch != DefaultReclaimBatch {
		t.Fatalf("reclaim batch = %d", cfg.ReclaimBatch)
	}
	if cfg.PerCPUFree < cfg.ReclaimBatch {
		t.Fatalf("per-CPU freelist %d should absorb a reclaim batch %d", cfg.PerCPUFree, cfg.ReclaimBatch)
	}
	tiny := ShardedConfig{}.withDefaults(4, 2)
	if tiny.Shards != 1 || tiny.PerCPUFree != 1 || tiny.ReclaimBatch != 1 {
		t.Fatalf("tiny cache config = %+v, want all 1", tiny)
	}
	rounded := ShardedConfig{Shards: 5}.withDefaults(4, 1024)
	if rounded.Shards != 8 {
		t.Fatalf("shards = %d, want rounded to 8", rounded.Shards)
	}
	if got := (ShardedConfig{}).withDefaults(64, 1<<20).Shards; got != 128 {
		t.Fatalf("big machine shards = %d, want 128", got)
	}
}

func TestSparc64ShardedColorCaches(t *testing.T) {
	m := smp.NewMachine(arch.Sparc64MP(), 256, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	sf, err := NewSparc64Sharded(m, pm, arena, 2, 16, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	direct := pmap.VPN(pmap.DirectMapBase+uint64(pg.PA())) & 1
	pg.UserColor = int(direct ^ 1)
	b, err := sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(pmap.VPN(b.KVA()) & 1); got != pg.UserColor {
		t.Fatalf("mapping color %d, want %d", got, pg.UserColor)
	}
	if g, err := pm.Translate(ctx, b.KVA(), false); err != nil || g != pg {
		t.Fatalf("translate got (%v, %v)", g, err)
	}
	sf.Free(ctx, b)
	s := sf.Stats()
	if s.Allocs != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
