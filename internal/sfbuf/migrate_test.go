package sfbuf

// Unit and stress tests for defragmentation by migration.  The
// deterministic tests drive the Migrator over small buddy pools where
// every span's fate can be pinned exactly: starvation that defeats the
// buddy allocator recovers after evacuation, pinned pages veto their
// span, inactive cache entries and parked run windows are rewritten in
// place and keep serving hits and revives, and the physcheck oracles
// (free-list audit, reservation invariant, byte oracle) hold after every
// pass.  The -race test interleaves migration+churn with concurrent
// mapping traffic to exercise the migration gate protocol under real
// parallelism.

import (
	"errors"
	"sync"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
	"sfbuf/internal/vm/physcheck"
)

const migTestSpan = 64 // frames per contiguity target in these tests

type migrateRig struct {
	m     *smp.Machine
	pm    *pmap.Pmap
	arena *kva.Arena
	sf    *I386
	mig   *Migrator
}

// newMigrateRig builds a sharded i386 engine over a flat buddy pool with
// a reservation at the test span's order and a Migrator configured for
// that span.
func newMigrateRig(t *testing.T, frames, entries int, cfg ShardedConfig) *migrateRig {
	t.Helper()
	m := smp.NewMachineWithPhys(arch.XeonMPHTT(), vm.NewBuddyPhysMem(frames, true))
	order := 0
	for 1<<order < migTestSpan {
		order++
	}
	m.Phys.SetReservation(order, 2)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	sf, err := NewI386Sharded(m, pm, arena, entries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mig := NewMigrator(sf, MigrateConfig{Span: migTestSpan, MaxResident: migTestSpan / 2})
	if mig == nil {
		t.Fatal("NewMigrator declined a sharded engine over a buddy pool")
	}
	return &migrateRig{m: m, pm: pm, arena: arena, sf: sf, mig: mig}
}

// TestMigratorEligibility pins which engines migrate: only the sharded
// cache over a buddy pool.  The global-lock figure engine, the original
// kernel, and any engine over the LIFO pool must be declined, so the
// paper reproductions can never be perturbed by a misconfigured Migrator.
func TestMigratorEligibility(t *testing.T) {
	plat := arch.XeonMPHTT()
	buddy := smp.NewMachineWithPhys(plat, vm.NewBuddyPhysMem(256, true))
	lifo := smp.NewMachine(plat, 256, true)
	mkArena := func() *kva.Arena { return kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386) }

	sharded, err := NewI386Sharded(buddy, pmap.New(buddy), mkArena(), 8, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if NewMigrator(sharded, MigrateConfig{}) == nil {
		t.Fatal("sharded engine over buddy pool must migrate")
	}
	if NewMigrator(sharded, MigrateConfig{Span: 48}) != nil {
		t.Fatal("non-power-of-two span must be rejected")
	}
	global, err := NewI386(buddy, pmap.New(buddy), mkArena(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if NewMigrator(global, MigrateConfig{}) != nil {
		t.Fatal("global-lock figure engine must never migrate")
	}
	orig := NewOriginal(buddy, pmap.New(buddy), mkArena())
	if NewMigrator(orig, MigrateConfig{}) != nil {
		t.Fatal("original kernel must never migrate")
	}
	shardedLIFO, err := NewI386Sharded(lifo, pmap.New(lifo), mkArena(), 8, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if NewMigrator(shardedLIFO, MigrateConfig{}) != nil {
		t.Fatal("LIFO pool has no block geometry: migration must be declined")
	}
	var nilMig *Migrator
	if st := nilMig.Stats(); st != (MigrationStats{}) {
		t.Fatal("nil Migrator must report zero stats")
	}
	if nilMig.MigrateBlocks(buddy.Ctx(0), 4) != 0 {
		t.Fatal("nil Migrator must migrate nothing")
	}
}

// TestMigrateRecoversContigFromSeventyPctChurn is the starvation
// acceptance case in miniature: steady single-page churn to ~70%
// occupancy with scattered survivors leaves ZERO intact spans — repeated
// AllocContig fails sustained, exactly the regime that defeats eager
// buddy coalescing — and a few migration passes rebuild intact spans with
// every survivor's bytes and registry identity preserved.
func TestMigrateRecoversContigFromSeventyPctChurn(t *testing.T) {
	const frames = 1024
	r := newMigrateRig(t, frames, 16, ShardedConfig{ReclaimBatch: 4, PerCPUFree: 2})
	ctx := r.m.Ctx(0)

	// Churn shape: allocate the entire pool, then free scattered fragments
	// out of five spans while the rest stay dense — ~70% occupancy overall,
	// dense spans too full to evacuate, sparse spans each keeping a
	// scatter of quiescent survivors, and ZERO intact spans anywhere.
	var all []*vm.Page
	for {
		pg, err := r.m.Phys.Alloc()
		if err != nil {
			break
		}
		all = append(all, pg)
	}
	var held, dense []*vm.Page
	var wantB []byte
	for _, pg := range all {
		f := pg.Frame()
		s, off := f/migTestSpan, f%migTestSpan
		if s >= 1 && s <= 5 {
			if off == 3 || off == 17 || off == 33 || off == 49 {
				pg.Data()[0] = byte(f)
				held = append(held, pg)
				wantB = append(wantB, byte(f))
				continue
			}
			r.m.Phys.Free(pg)
			continue
		}
		dense = append(dense, pg)
	}
	if occ := r.m.Phys.PhysStats(); frames-occ.FreeFrames < frames*2/3 {
		t.Fatalf("churn left %d resident frames, want ~70%% of %d", frames-occ.FreeFrames, frames)
	}
	if err := physcheck.Audit(r.m.Phys); err != nil {
		t.Fatal(err)
	}

	// Sustained starvation: the scatter defeats the allocator every time.
	for try := 0; try < 3; try++ {
		if _, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan); !errors.Is(err, vm.ErrNoContig) {
			t.Fatalf("try %d: AllocContig = %v, want ErrNoContig under 70%% scattered occupancy", try, err)
		}
	}

	oracle := physcheck.NewOracle(held)
	check := physcheck.NewChecker(r.m.Phys)
	freed := r.mig.MigrateBlocks(ctx, 5)
	if freed == 0 {
		t.Fatal("migration coalesced no spans out of a pool full of nearly-free candidates")
	}
	if err := physcheck.Audit(r.m.Phys); err != nil {
		t.Fatalf("after migration: %v", err)
	}
	if err := check.Step(r.m.Phys); err != nil {
		t.Fatalf("after migration: %v", err)
	}
	if err := oracle.Check(r.m.Phys); err != nil {
		t.Fatalf("after migration: %v", err)
	}
	st := r.mig.Stats()
	if st.PagesMoved == 0 || st.BlocksFreed != uint64(freed) {
		t.Fatalf("stats moved=%d freed=%d, want moves and freed=%d", st.PagesMoved, st.BlocksFreed, freed)
	}

	pages, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan)
	if err != nil {
		t.Fatalf("AllocContig after migration: %v", err)
	}
	for _, pg := range pages {
		r.m.Phys.Free(pg)
	}
	for i, pg := range held {
		if pg.Data()[0] != wantB[i] {
			t.Fatalf("held page %d: byte %#x, want %#x after migration", i, pg.Data()[0], wantB[i])
		}
	}
	for _, pg := range dense {
		r.m.Phys.Free(pg)
	}
}

// TestMigrateQuiescencePins pins the veto rules: a wired page, a page
// with a live mapping reference, or a page inside a checked-out run each
// disqualify their span, and releasing the pins makes the same span
// migrate.
func TestMigrateQuiescencePins(t *testing.T) {
	// 128 frames = span 0 (unusable: frame 0 sentinel) + span 1.  The only
	// way AllocContig can ever succeed is span 1 becoming whole.
	r := newMigrateRig(t, 128, 16, ShardedConfig{})
	ctx := r.m.Ctx(0)
	span, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan)
	if err != nil {
		t.Fatal(err)
	}
	// Keep four residents; free the rest.
	keep := []*vm.Page{span[0], span[10], span[20], span[21]}
	kept := map[*vm.Page]bool{span[0]: true, span[10]: true, span[20]: true, span[21]: true}
	for _, pg := range span {
		if !kept[pg] {
			r.m.Phys.Free(pg)
		}
	}
	// Pin them three ways: wired, mapped with a live reference, checked out
	// as a run.
	keep[0].Wire()
	b, err := r.sf.Alloc(ctx, keep[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	run, err := r.sf.AllocRun(ctx, keep[2:4], 0)
	if err != nil {
		t.Fatal(err)
	}

	if got := r.mig.MigrateBlocks(ctx, 4); got != 0 {
		t.Fatalf("migrated %d spans with pinned residents, want 0", got)
	}
	if st := r.mig.Stats(); st.BlocksSkipped == 0 || st.PagesMoved != 0 {
		t.Fatalf("stats skipped=%d moved=%d, want a skip and no moves", st.BlocksSkipped, st.PagesMoved)
	}
	if _, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan); !errors.Is(err, vm.ErrNoContig) {
		t.Fatalf("AllocContig = %v, want ErrNoContig while the span is pinned", err)
	}
	for i, pg := range keep {
		if pg.Frame() != span[0].Frame()+[]uint64{0, 10, 20, 21}[i] {
			t.Fatalf("pinned page %d moved to frame %d", i, pg.Frame())
		}
	}

	// Release every pin; the same span must now evacuate.
	keep[0].Unwire()
	r.sf.Free(ctx, b)
	r.sf.FreeRun(ctx, run)
	if got := r.mig.MigrateBlocks(ctx, 4); got != 1 {
		t.Fatalf("migrated %d spans after unpinning, want 1", got)
	}
	pages, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan)
	if err != nil {
		t.Fatalf("AllocContig after unpinned migration: %v", err)
	}
	if err := physcheck.Audit(r.m.Phys); err != nil {
		t.Fatal(err)
	}
	for _, pg := range pages {
		r.m.Phys.Free(pg)
	}
}

// TestMigrateRemapsInactiveMapping pins the hash-remap path: an inactive
// cache entry keyed at a migrated frame is rewritten in place, keeps its
// bytes readable through the honest TLB, and still serves the next Alloc
// of the same page as a HIT — migration must not cost the cache its
// memory.
func TestMigrateRemapsInactiveMapping(t *testing.T) {
	r := newMigrateRig(t, 128, 8, ShardedConfig{})
	ctx := r.m.Ctx(0)
	span, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan)
	if err != nil {
		t.Fatal(err)
	}
	victim := span[5]
	b, err := r.sf.Alloc(ctx, victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.pm.Translate(ctx, b.KVA(), true)
	if err != nil {
		t.Fatal(err)
	}
	got.Data()[0] = 0xAB
	r.sf.Free(ctx, b) // inactive entry stays keyed at victim's frame
	for _, pg := range span {
		if pg != victim {
			r.m.Phys.Free(pg)
		}
	}

	oldFrame := victim.Frame()
	if got := r.mig.MigrateBlocks(ctx, 1); got != 1 {
		t.Fatalf("migrated %d spans, want 1", got)
	}
	if victim.Frame() == oldFrame {
		t.Fatal("victim page kept its frame through evacuation")
	}
	if st := r.mig.Stats(); st.HashRemaps != 1 {
		t.Fatalf("HashRemaps = %d, want 1", st.HashRemaps)
	}

	hitsBefore := r.sf.Stats().Hits
	b2, err := r.sf.Alloc(ctx, victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.sf.Stats().Hits; got != hitsBefore+1 {
		t.Fatalf("Hits = %d, want %d: the remapped entry must still serve hits", got, hitsBefore+1)
	}
	got2, err := r.pm.Translate(ctx, b2.KVA(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Data()[0] != 0xAB {
		t.Fatalf("read %#x through remapped entry, want 0xAB", got2.Data()[0])
	}
	r.sf.Free(ctx, b2)
	if _, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan); err != nil {
		t.Fatalf("AllocContig after hash-remap migration: %v", err)
	}
}

// TestMigrateParkedWindows pins both parked-window strategies.  A window
// mostly inside the victim span is force-laundered (one teardown beats
// remapping most of its slots); a window with a single slot inside is
// remapped in place and must still REVIVE for the same extent afterwards,
// reading true bytes through the honest TLB.
func TestMigrateParkedWindows(t *testing.T) {
	r := newMigrateRig(t, 256, 16, ShardedConfig{})
	ctx := r.m.Ctx(0)

	spanA, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan)
	if err != nil {
		t.Fatal(err)
	}
	spanB, err := r.m.Phys.AllocContig(migTestSpan, migTestSpan)
	if err != nil {
		t.Fatal(err)
	}

	// Window 1: all four slots inside spanA -> forced launder.
	insideA := spanA[:4]
	r1, err := r.sf.AllocRun(ctx, insideA, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range insideA {
		pg, err := r.pm.Translate(ctx, r1.KVA(j), true)
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(0x40 + j)
	}
	r.sf.FreeRun(ctx, r1)

	// Window 2: one slot from spanB, three from span 0 (never a candidate,
	// so those three frames stay put) -> in-place remap.
	extras := make([]*vm.Page, 3)
	for i := range extras {
		pg, err := r.m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if pg.Frame() >= uint64(migTestSpan) {
			t.Fatalf("extra page landed at frame %d, outside span 0", pg.Frame())
		}
		extras[i] = pg
	}
	mixed := append([]*vm.Page{spanB[0]}, extras...)
	r2, err := r.sf.AllocRun(ctx, mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range mixed {
		pg, err := r.pm.Translate(ctx, r2.KVA(j), true)
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(0x60 + j)
	}
	r.sf.FreeRun(ctx, r2)

	// Empty both spans of everything but the parked residents.
	for _, pg := range spanA[4:] {
		r.m.Phys.Free(pg)
	}
	for _, pg := range spanB[1:] {
		r.m.Phys.Free(pg)
	}

	if got := r.mig.MigrateBlocks(ctx, 4); got != 2 {
		t.Fatalf("migrated %d spans, want 2", got)
	}
	st := r.mig.Stats()
	if st.ForcedLaunders == 0 {
		t.Fatalf("ForcedLaunders = 0: the all-inside window should have been torn down")
	}
	if st.WindowRemaps == 0 {
		t.Fatalf("WindowRemaps = 0: the one-slot window should have been rewritten in place")
	}

	// The remapped window must still revive for its extent — with the slot
	// now naming the page's NEW frame — and read true bytes.
	revivesBefore := r.sf.Stats().RunRevives
	r2b, err := r.sf.AllocRun(ctx, mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.sf.Stats().RunRevives; got != revivesBefore+1 {
		t.Fatalf("RunRevives = %d, want %d: remap must preserve revivability", got, revivesBefore+1)
	}
	for j := range mixed {
		pg, err := r.pm.Translate(ctx, r2b.KVA(j), false)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data()[0] != byte(0x60+j) {
			t.Fatalf("slot %d reads %#x, want %#x through remapped window", j, pg.Data()[0], byte(0x60+j))
		}
	}
	r.sf.FreeRun(ctx, r2b)

	// The laundered window is gone; a fresh run over the same pages
	// installs cold and still reads true.
	r1b, err := r.sf.AllocRun(ctx, insideA, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range insideA {
		pg, err := r.pm.Translate(ctx, r1b.KVA(j), false)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data()[0] != byte(0x40+j) {
			t.Fatalf("slot %d reads %#x, want %#x after forced launder", j, pg.Data()[0], byte(0x40+j))
		}
	}
	r.sf.FreeRun(ctx, r1b)
	if err := physcheck.Audit(r.m.Phys); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateChurnServeRace is the migration gate's -race workout:
// concurrent servers churn single, batched and run mappings (writes
// included, always through held references) while a defragmentation
// goroutine interleaves raw physical churn with migration passes.  Raw
// frees and migration share one goroutine — the quiescent-owner
// contract: a page's owner must not touch its storage in parallel with
// an evacuation copy, and the mapping layer's own frees are serialized
// by the gate.  Every read goes through the honest MMU, so a forgotten
// gate or a leaked stale translation shows up as wrong bytes or a
// -race report.
func TestMigrateChurnServeRace(t *testing.T) {
	const entries = 32
	r := newMigrateRig(t, 2048, entries, ShardedConfig{ReclaimBatch: 4, PerCPUFree: 2})
	pages := make([]*vm.Page, 48)
	for i := range pages {
		pg, err := r.m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(i)
		pages[i] = pg
	}

	const servers = 3
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < servers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := r.m.Ctx(w)
			check := func(kva uint64, idx int) bool {
				got, err := r.pm.Translate(ctx, kva, false)
				if err != nil {
					t.Errorf("server %d: %v", w, err)
					return false
				}
				if got.Data()[0] != byte(idx) {
					t.Errorf("server %d: read %#x, want %#x — stale mapping survived migration",
						w, got.Data()[0], byte(idx))
					return false
				}
				return true
			}
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					idx := (i*(2*w+3) + w*11) % len(pages)
					b, err := r.sf.Alloc(ctx, pages[idx], NoWait)
					if errors.Is(err, ErrWouldBlock) {
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					if !check(b.KVA(), idx) {
						return
					}
					r.sf.Free(ctx, b)
				case 1:
					n := 3 + (i+w)%3
					start := (i*(2*w+5) + w*13) % (len(pages) - n)
					bufs, err := r.sf.AllocBatch(ctx, pages[start:start+n], NoWait)
					if errors.Is(err, ErrWouldBlock) {
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					for j, b := range bufs {
						if !check(b.KVA(), start+j) {
							return
						}
					}
					r.sf.FreeBatch(ctx, bufs)
				case 2:
					n := 2 + (i+w)%3
					start := (i*(2*w+7) + w*17) % (len(pages) - n)
					run, err := r.sf.AllocRun(ctx, pages[start:start+n], NoWait)
					if errors.Is(err, ErrWouldBlock) {
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					for j := 0; j < n; j++ {
						if !check(run.KVA(j), start+j) {
							return
						}
					}
					r.sf.FreeRun(ctx, run)
				}
			}
		}(w)
	}

	// Defragmentation thread: raw churn and migration interleave on ONE
	// goroutine (the owner contract), racing only the gated mapping paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := r.m.Ctx(3)
		var churn []*vm.Page
		for i := 0; i < 120; i++ {
			for j := 0; j < 6; j++ {
				pg, err := r.m.Phys.Alloc()
				if err != nil {
					t.Error(err)
					return
				}
				churn = append(churn, pg)
			}
			for j := 0; j < 3 && len(churn) > 0; j++ {
				pick := (i*7 + j*13) % len(churn)
				r.m.Phys.Free(churn[pick])
				churn = append(churn[:pick], churn[pick+1:]...)
			}
			r.mig.MigrateBlocks(ctx, 2)
		}
		for _, pg := range churn {
			r.m.Phys.Free(pg)
		}
	}()
	wg.Wait()

	if err := physcheck.Audit(r.m.Phys); err != nil {
		t.Fatal(err)
	}
	st := r.sf.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after drain", st.Allocs, st.Frees)
	}
	for i, pg := range pages {
		if pg.Data()[0] != byte(i) {
			t.Fatalf("page %d byte %#x, want %#x after the race", i, pg.Data()[0], byte(i))
		}
		if ref, _, ok := r.sf.LookupRef(pg); ok && ref != 0 {
			t.Fatalf("page %d: ref = %d after drain", i, ref)
		}
	}
	if ms := r.mig.Stats(); ms.Rounds == 0 {
		t.Fatal("the defrag thread never ran a round")
	}
}
