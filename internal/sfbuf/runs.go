package sfbuf

import (
	"sort"
	"sync"

	"sfbuf/internal/cycles"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// This file implements the run window pool: the VA-window side of the
// contiguous-run fast path.  A window is a multi-page reservation from
// the kernel virtual-address arena into which pmap.KEnterRun installs a
// whole run's translations in one pass.  The pool exists to amortize
// three costs across many runs:
//
//   - Reservation.  A fresh window pays the general-purpose KVA
//     allocator (the cost the original kernel pays per mapping); a
//     recycled window pays one pool lock.  Windows are cached per size
//     class, with one trailing guard page each, so an off-the-end access
//     faults instead of landing in a neighbor.  Windows of
//     superpage-covering sizes are reserved aligned so promotion can
//     fire.
//
//   - Reinstallation.  A freed window is NOT torn down immediately: it
//     parks on the dirty list with its translations still installed,
//     indexed by the frame extent it maps (the page set).  An AllocRun
//     over the same extent REVIVES the parked window exactly as the
//     mapping cache revives an inactive buffer: no PTE writes, no
//     page-table pass, no invalidation debt — the window's translations
//     (and any TLB entries caching them) are still current because
//     nothing changed them.  Repeated extents thus get cache-style
//     reuse while cold extents keep the one-pass install.
//
//   - Teardown invalidation.  A parked window's eventual teardown —
//     which pages were accessed over its parked lives, and which CPUs'
//     TLBs (the accumulated cpumask) may cache them — is deferred until
//     the pool needs clean stock.  Debt is retired by LAUNDERING: when
//     enough dirty windows accumulate (runLaunderBatch), one pass
//     removes every parked window's translations and one queued
//     shootdown flush retires all their invalidations in a single
//     ranged IPI round, after which all of them are reusable for any
//     extent.  This is the sharded cache's clean-buffer batching applied
//     at window granularity: one IPI round per runLaunderBatch windows
//     instead of one per run.
//
// Soundness is the lazy-teardown argument of Section 4.2 lifted to
// window granularity.  While a window is parked its PTEs are unchanged,
// so any TLB entry for it is CURRENT, not stale — and nothing hands out
// its addresses, so nothing reads through it.  A revive resurrects the
// identical translations, which are still correct for the identical
// page set.  Staleness can only arise when a window is reused for a
// DIFFERENT extent, and that only happens from the clean list, which a
// window reaches strictly after the laundering pass that removed its
// translations and flushed every TLB that could cache them.

const (
	// runGuardPages is the reserved-but-never-mapped tail of each window.
	runGuardPages = 1
	// runLaunderBatch is how many dirty windows one laundering round
	// flushes — and thus how many runs share one teardown IPI round.  It
	// is also the depth of the page-set window cache: a parked window can
	// only be revived until a laundering round recycles it.
	runLaunderBatch = 8
)

// DefaultLaunderAge bounds how long a window may stay parked, in simulated
// cycles on the machine clock (smp.Machine.Now).  Fewer than
// runLaunderBatch parked windows never trip the count-threshold launder, so
// without an age bound a quiet kernel would pin their frames, address
// space, and accumulated TLB masks forever.  The bound is enforced on the
// synchronous alloc/free path (so it holds even with no daemon running)
// and by the background daemon's pass (so it holds even with no further
// allocations).  Large enough that revival-economy workloads never trip it
// between back-to-back reuses; small enough that a lull of a few million
// cycles launders everything parked.
const DefaultLaunderAge cycles.Cycles = 2 << 20

// runWindow is one reserved VA window.  Between a FreeRun and the next
// laundering round the window is PARKED: frames records the extent whose
// translations are still installed (the revive key) and mask accumulates
// the CPUs that may cache those translations across the window's parked
// lives.
type runWindow struct {
	base  uint64
	pages int
	// home is the arena region (= socket, under NUMA homing) the window's
	// address space was reserved from; 0 on a single-region arena.
	home int

	frames []uint64   // parked: the installed frame extent, revive key
	mask   smp.CPUSet // parked: union of the lives' TLB masks
	accScr []bool     // KRemoveRun scratch, reused across lives

	// parkedAt is the machine-clock time of the most recent park; the
	// age-bound laundering compares it against runPool.launderAge.
	parkedAt cycles.Cycles
}

// RunWindowStats counts run-window pool events and reports the pool's
// current capacity split.  The counters are cumulative; the *Pages and
// LargestFreeRun fields are gauges recomputed at snapshot time, so they
// reflect frees and coalesces, not just the last allocation.
type RunWindowStats struct {
	// Reserved counts fresh window reservations from the KVA arena.
	Reserved uint64
	// Reuses counts runs served by a recycled (laundered, clean) window.
	Reuses uint64
	// Revives counts runs served by a parked dirty window whose installed
	// extent matched the request — the page-set cache hit: no PTE writes,
	// no shootdown debt.
	Revives uint64
	// Launders counts laundering rounds and Laundered the dirty windows
	// those rounds made reusable; Laundered/Launders is the teardown
	// coalescing factor the pool earns.
	Launders  uint64
	Laundered uint64
	// AgedLaunders counts laundering rounds triggered by the parked-window
	// age bound rather than the count threshold, and AgedWindows the
	// windows those rounds retired.  Age-triggered rounds launder fewer
	// than runLaunderBatch windows by design: they trade coalescing for a
	// bound on how long a parked window pins its frames and VA.
	AgedLaunders uint64
	AgedWindows  uint64
	// Trimmed counts clean windows whose address space was returned to the
	// KVA arena by the background daemon's trim pass (the pool's
	// contribution to address-space coalescing).
	Trimmed uint64

	// CleanPages is the usable-page total of windows on the clean lists:
	// torn down, flushed, reusable for any extent.
	CleanPages int
	// DirtyPages is the usable-page total of parked windows: still
	// mapped, revivable for their exact extent only.  Parked windows are
	// NOT free capacity — they hold both address space and installed
	// translations until a laundering round — so they are deliberately
	// excluded from CleanPages and from the arena's free ranges.
	DirtyPages int
	// LargestFreeRun is the arena's longest free span in pages — the
	// biggest fresh window reservation that could currently succeed.  It
	// is recomputed from the arena's live free list at snapshot time, so
	// it tracks frees and coalesces as well as allocations.
	LargestFreeRun int
}

// runPool caches reserved VA windows: clean stock per size class, parked
// dirty windows indexed by frame extent for revival.
type runPool struct {
	pm    *pmap.Pmap
	arena *kva.Arena
	// homed enables NUMA homing: fresh windows are reserved from the
	// caller's socket's arena region and clean stock is popped
	// home-socket-first.  Off (the default), the pool behaves exactly as
	// the flat single-region pool.
	homed bool
	// forceDebt reports whether the accessed-bit optimization is ablated:
	// laundering then owes an invalidation for every page, accessed or
	// not.
	forceDebt func() bool

	mu    sync.Mutex
	clean map[int][]*runWindow
	// dirty holds parked windows in park order (oldest first), so the
	// windows past the age bound are always a prefix.
	dirty    []*runWindow
	dirtyIdx map[uint64][]*runWindow // frame-extent hash -> parked windows
	// launderAge is the parked-window age bound on the machine clock;
	// 0 disables age-triggered laundering (count threshold only).
	launderAge cycles.Cycles
	// resident counts, per frame, the checked-out (live) runs currently
	// mapping it.  The migrator consults it: a frame in a live run has its
	// translations in active use and must not be evacuated.  Parked
	// windows' frames are deliberately NOT here — those are migratable in
	// place or force-launderable.
	resident map[uint64]int
	stats    RunWindowStats
	scrVpns  []uint64 // laundering scratch
	scrMasks []smp.CPUSet
}

func newRunPool(pm *pmap.Pmap, arena *kva.Arena) *runPool {
	return &runPool{
		pm:         pm,
		arena:      arena,
		forceDebt:  func() bool { return false },
		clean:      make(map[int][]*runWindow),
		dirtyIdx:   make(map[uint64][]*runWindow),
		resident:   make(map[uint64]int),
		launderAge: DefaultLaunderAge,
	}
}

// noteLive records a checked-out run's frames as migration-ineligible;
// noteDead drops them again when the run is freed (parked).
func (p *runPool) noteLive(pages []*vm.Page) {
	p.mu.Lock()
	for _, pg := range pages {
		p.resident[pg.Frame()]++
	}
	p.mu.Unlock()
}

func (p *runPool) noteDead(pages []*vm.Page) {
	p.mu.Lock()
	for _, pg := range pages {
		f := pg.Frame()
		if n := p.resident[f]; n <= 1 {
			delete(p.resident, f)
		} else {
			p.resident[f] = n - 1
		}
	}
	p.mu.Unlock()
}

// frameLive reports whether any checked-out run maps the frame.
func (p *runPool) frameLive(f uint64) bool {
	p.mu.Lock()
	_, live := p.resident[f]
	p.mu.Unlock()
	return live
}

// setLaunderAge overrides the parked-window age bound; 0 disables it.
func (p *runPool) setLaunderAge(age cycles.Cycles) {
	p.mu.Lock()
	p.launderAge = age
	p.mu.Unlock()
}

// ExtentHash keys the page-set window cache: an order-sensitive hash of
// the extent's frame sequence, so [A,B] and [B,A] revive different
// windows (their installed translations differ).  It is exported for
// the kernel's adaptive contiguity policy, whose extent-reuse tracking
// must use the SAME keying — "this extent was seen recently" is only a
// valid revive predictor if it means "this revive key was seen
// recently".
func ExtentHash(pages []*vm.Page) uint64 {
	h := uint64(1469598103934665603)
	for _, pg := range pages {
		h ^= pg.Frame()
		h *= 1099511628211
	}
	return h
}

// get returns a window for the requested extent.  revived reports that
// the window's translations are ALREADY the extent's — the caller must
// skip the install pass.  Preference order: revive a parked window for
// this exact extent (the page-set cache hit), recycle clean stock,
// launder when enough debt has parked to amortize the flush, reserve
// fresh address space otherwise.
func (p *runPool) get(ctx *smp.Context, pages []*vm.Page) (w *runWindow, revived bool, err error) {
	n := len(pages)
	sock := -1
	if p.homed {
		sock = ctx.Socket()
	}
	ctx.ChargeLock()
	p.mu.Lock()
	// The age bound wins over revival: a window parked past launderAge is
	// retired even if this very request would have revived it, so no
	// window stays revivable-parked forever.
	if p.launderAge > 0 && len(p.dirty) > 0 {
		p.launderAgedLocked(ctx, ctx.Machine().Now())
	}
	if w := p.reviveLocked(pages); w != nil {
		p.mu.Unlock()
		return w, true, nil
	}
	if w := p.popCleanLocked(n, sock); w != nil {
		p.mu.Unlock()
		return w, false, nil
	}
	if len(p.dirty) >= runLaunderBatch {
		p.launderLocked(ctx)
		if w := p.popCleanLocked(n, sock); w != nil {
			p.mu.Unlock()
			return w, false, nil
		}
	}
	p.mu.Unlock()

	w, err = p.reserve(ctx, n)
	if err == nil {
		return w, false, nil
	}
	// Arena exhausted: launder everything (freeing debt is prerequisite
	// to returning address space) and give back every cached window, then
	// retry once.
	p.mu.Lock()
	p.launderLocked(ctx)
	if w := p.popCleanLocked(n, sock); w != nil {
		p.mu.Unlock()
		return w, false, nil
	}
	// No stock in our size: give every cached window's address space back,
	// smallest class first — sorted, so the recovery path frees the same
	// ranges in the same order on every run and replay stays exact.
	sizes := make([]int, 0, len(p.clean))
	for size := range p.clean {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		for _, w := range p.clean[size] {
			p.arena.Free(w.base)
		}
		delete(p.clean, size)
	}
	p.mu.Unlock()
	w, err = p.reserve(ctx, n)
	return w, false, err
}

// reviveLocked looks the requested extent up in the parked-window index
// and, on an exact frame-sequence match, removes the window from the
// dirty list and returns it still mapped.  Caller holds p.mu.
func (p *runPool) reviveLocked(pages []*vm.Page) *runWindow {
	if len(p.dirty) == 0 {
		return nil
	}
	h := ExtentHash(pages)
	ws := p.dirtyIdx[h]
	for wi, w := range ws {
		if w.pages != len(pages) || !framesMatch(w.frames, pages) {
			continue
		}
		if len(ws) == 1 {
			delete(p.dirtyIdx, h)
		} else {
			p.dirtyIdx[h] = append(ws[:wi], ws[wi+1:]...)
		}
		for di, dw := range p.dirty {
			if dw == w {
				p.dirty = append(p.dirty[:di], p.dirty[di+1:]...)
				break
			}
		}
		p.stats.Revives++
		return w
	}
	return nil
}

func framesMatch(frames []uint64, pages []*vm.Page) bool {
	if len(frames) != len(pages) {
		return false
	}
	for i, f := range frames {
		if pages[i].Frame() != f {
			return false
		}
	}
	return true
}

// popCleanLocked pops a clean window of the given size, preferring one
// whose address space is homed on socket sock (newest first, so the
// preference degrades to the plain tail pop when every window matches).
// sock < 0 — the non-homed pool — is exactly the old tail pop, which
// keeps the flat configurations bit-identical.
func (p *runPool) popCleanLocked(pages, sock int) *runWindow {
	ws := p.clean[pages]
	if len(ws) == 0 {
		return nil
	}
	pick := len(ws) - 1
	if sock >= 0 && ws[pick].home != sock {
		for i := pick - 1; i >= 0; i-- {
			if ws[i].home == sock {
				pick = i
				break
			}
		}
	}
	w := ws[pick]
	p.clean[pages] = append(ws[:pick], ws[pick+1:]...)
	p.stats.Reuses++
	return w
}

// reserve takes a fresh window from the arena, superpage-aligned when the
// size can cover an aligned superpage chunk, with the trailing guard.
// Under NUMA homing the reservation prefers the caller's socket's arena
// region (spilling to the others only when it is exhausted) and the
// window records which region it landed in.
func (p *runPool) reserve(ctx *smp.Context, pages int) (*runWindow, error) {
	ctx.Charge(ctx.Cost().KVAAlloc)
	align := 1
	if pages >= pmap.SuperpagePages {
		align = pmap.SuperpagePages
	}
	var (
		base uint64
		err  error
	)
	if p.homed {
		base, err = p.arena.AllocWindowOn(ctx.Socket(), pages, runGuardPages, align)
	} else {
		base, err = p.arena.AllocWindow(pages, runGuardPages, align)
	}
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.stats.Reserved++
	p.mu.Unlock()
	return &runWindow{base: base, pages: pages, home: p.arena.RegionOf(base)}, nil
}

// put parks a freed window on the dirty list WITH its translations still
// installed, indexed by the extent it maps, so a repeat AllocRun over the
// same page set can revive it.  mask is the freeing run's TLB mask; it
// accumulates into the window's parked mask so the eventual laundering
// shoots down every CPU that any parked life could have tainted.
func (p *runPool) put(ctx *smp.Context, w *runWindow, pages []*vm.Page, mask smp.CPUSet) {
	ctx.ChargeLock()
	p.mu.Lock()
	w.frames = w.frames[:0]
	for _, pg := range pages {
		w.frames = append(w.frames, pg.Frame())
	}
	w.mask |= mask
	w.parkedAt = ctx.Machine().Now()
	h := ExtentHash(pages)
	p.dirtyIdx[h] = append(p.dirtyIdx[h], w)
	p.dirty = append(p.dirty, w)
	// Parking is also a chance to retire windows that aged out while the
	// pool sat under the count threshold (the just-parked window has age
	// zero and always survives).
	if p.launderAge > 0 && len(p.dirty) > 1 {
		p.launderAgedLocked(ctx, w.parkedAt)
	}
	p.mu.Unlock()
}

// launderLocked tears down every parked window — one page-table pass per
// window reporting which pages were accessed — and retires the whole
// batch's invalidation debt through the per-CPU shootdown queue in ONE
// forced flush, then moves the windows to their clean lists, reusable
// for any extent.  Caller holds p.mu.
func (p *runPool) launderLocked(ctx *smp.Context) {
	p.launderSomeLocked(ctx, len(p.dirty))
}

// launderSomeLocked launders the n oldest parked windows (the dirty-list
// prefix) in one round: one page-table pass per window, all invalidation
// debt retired through ONE forced shootdown flush.  Caller holds p.mu.
func (p *runPool) launderSomeLocked(ctx *smp.Context, n int) {
	if n > len(p.dirty) {
		n = len(p.dirty)
	}
	if n <= 0 {
		return
	}
	force := p.forceDebt()
	batch := p.dirty[:n]
	for _, w := range batch {
		p.launderWindowLocked(ctx, w, force)
	}
	ctx.FlushShootdowns()
	p.stats.Launders++
	p.stats.Laundered += uint64(n)
	for _, w := range batch {
		p.clean[w.pages] = append(p.clean[w.pages], w)
	}
	p.dirty = append(p.dirty[:0], p.dirty[n:]...)
}

// launderWindowLocked retires ONE parked window's revive key and deferred
// teardown: drop it from the extent index, remove its translations in one
// page-table pass, and queue the invalidations its accessed pages owe
// against the window's accumulated mask.  The shootdown FLUSH is the
// caller's: batch launderers flush once per round, the migrator once per
// evacuated block.  The window is left frame-less but still on p.dirty;
// the caller moves it to its clean list.  Caller holds p.mu.
func (p *runPool) launderWindowLocked(ctx *smp.Context, w *runWindow, force bool) {
	// Drop the revive key first, while the parked frames are intact.
	h := frameHash(w.frames)
	if ws := p.dirtyIdx[h]; len(ws) == 1 && ws[0] == w {
		delete(p.dirtyIdx, h)
	} else {
		for wi, cand := range ws {
			if cand == w {
				p.dirtyIdx[h] = append(ws[:wi], ws[wi+1:]...)
				break
			}
		}
	}
	w.accScr = p.pm.KRemoveRun(ctx, w.base, w.pages, w.accScr[:0])
	vpn0 := pmap.VPN(w.base)
	p.scrVpns, p.scrMasks = p.scrVpns[:0], p.scrMasks[:0]
	for i, a := range w.accScr {
		if a || force {
			p.scrVpns = append(p.scrVpns, vpn0+uint64(i))
			p.scrMasks = append(p.scrMasks, w.mask)
		}
	}
	ctx.QueueShootdownBatch(p.scrMasks, p.scrVpns)
	w.frames = w.frames[:0]
	w.mask = 0
}

// launderSpan force-launders every parked window whose installed extent is
// mostly (half or more) inside the victim frame span [lo, hi): when an
// evacuation would have to remap most of a window's pages one by one, one
// teardown pass is cheaper and frees the window for any extent.  Windows
// only lightly touching the span are left parked for remapParked's
// in-place migration.  Shootdowns are queued, NOT flushed — the migrator
// owns the one-flush-per-block discipline.  Returns the windows laundered.
func (p *runPool) launderSpan(ctx *smp.Context, lo, hi uint64) int {
	ctx.ChargeLock()
	p.mu.Lock()
	defer p.mu.Unlock()
	force := p.forceDebt()
	kept := p.dirty[:0]
	laundered := 0
	for _, w := range p.dirty {
		in := 0
		for _, f := range w.frames {
			if f >= lo && f < hi {
				in++
			}
		}
		if in == 0 || 2*in < w.pages {
			kept = append(kept, w)
			continue
		}
		p.launderWindowLocked(ctx, w, force)
		p.clean[w.pages] = append(p.clean[w.pages], w)
		laundered++
	}
	p.dirty = kept
	if laundered > 0 {
		p.stats.Launders++
		p.stats.Laundered += uint64(laundered)
	}
	return laundered
}

// remapParked migrates frame old in place wherever a parked window maps
// it: the page pg (already swapped to its new frame) is re-entered at the
// window slot, the stale translation's invalidation is queued against the
// window's accumulated mask, and the window's revive key is rebuilt — so a
// repeat AllocRun over the migrated page set still revives with zero PTE
// writes.  Shootdowns are queued, not flushed (the migrator flushes once
// per block).  Returns the slots remapped.
func (p *runPool) remapParked(ctx *smp.Context, pg *vm.Page, old uint64) int {
	ctx.ChargeLock()
	p.mu.Lock()
	defer p.mu.Unlock()
	force := p.forceDebt()
	self := ctx.CPUID()
	remapped := 0
	for _, w := range p.dirty {
		for i, f := range w.frames {
			if f != old {
				continue
			}
			oldH := frameHash(w.frames)
			_, oldAcc := p.pm.KEnter(ctx, w.base+uint64(i)*vm.PageSize, pg)
			if oldAcc || force {
				vpn := pmap.VPN(w.base) + uint64(i)
				mask := w.mask
				if mask.Has(self) {
					ctx.InvalidateLocal(vpn)
					mask = mask.Clear(self)
				}
				ctx.QueueShootdown(mask, vpn)
			}
			w.frames[i] = pg.Frame()
			// Rekey the extent index: the window now revives for the
			// migrated frame sequence, not the pre-migration one.
			if ws := p.dirtyIdx[oldH]; len(ws) == 1 && ws[0] == w {
				delete(p.dirtyIdx, oldH)
			} else {
				for wi, cand := range ws {
					if cand == w {
						p.dirtyIdx[oldH] = append(ws[:wi], ws[wi+1:]...)
						break
					}
				}
			}
			newH := frameHash(w.frames)
			p.dirtyIdx[newH] = append(p.dirtyIdx[newH], w)
			remapped++
		}
	}
	return remapped
}

// launderAgedLocked launders the parked windows whose age at time now
// meets the pool's age bound.  The dirty list is in park order, so they
// form a prefix.  Caller holds p.mu.  Returns how many were laundered.
func (p *runPool) launderAgedLocked(ctx *smp.Context, now cycles.Cycles) int {
	if p.launderAge <= 0 {
		return 0
	}
	cut := 0
	for cut < len(p.dirty) && now-p.dirty[cut].parkedAt >= p.launderAge {
		cut++
	}
	if cut == 0 {
		return 0
	}
	p.stats.AgedLaunders++
	p.stats.AgedWindows += uint64(cut)
	p.launderSomeLocked(ctx, cut)
	return cut
}

// launderAged runs an age-bound laundering round outside the allocation
// path — the background daemon's entry point.
func (p *runPool) launderAged(ctx *smp.Context) int {
	ctx.ChargeLock()
	p.mu.Lock()
	n := 0
	if len(p.dirty) > 0 {
		n = p.launderAgedLocked(ctx, ctx.Machine().Now())
	}
	p.mu.Unlock()
	return n
}

// trimClean returns surplus clean windows' address space to the KVA arena,
// keeping at most keep windows per size class.  Laundering deliberately
// never does this (a clean window is warm stock); the background daemon
// does, so a load spike's window population shrinks back during lulls and
// the arena's free ranges re-coalesce.  Arena frees are address-routed, so
// under NUMA homing each window's span returns to the region — the socket
// — it was reserved from, regardless of which CPU runs the trim.  Returns
// how many windows were freed.
func (p *runPool) trimClean(ctx *smp.Context, keep int) int {
	ctx.ChargeLock()
	p.mu.Lock()
	sizes := make([]int, 0, len(p.clean))
	for size := range p.clean {
		if len(p.clean[size]) > keep {
			sizes = append(sizes, size)
		}
	}
	sort.Ints(sizes) // deterministic free order
	freed := 0
	for _, size := range sizes {
		ws := p.clean[size]
		for len(ws) > keep {
			w := ws[len(ws)-1]
			ws = ws[:len(ws)-1]
			p.arena.Free(w.base)
			freed++
		}
		p.clean[size] = ws
	}
	if freed > 0 {
		p.stats.Trimmed += uint64(freed)
	}
	p.mu.Unlock()
	return freed
}

// frameHash is ExtentHash over an already-extracted frame sequence (the
// parked window's revive key).
func frameHash(frames []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, f := range frames {
		h ^= f
		h *= 1099511628211
	}
	return h
}

// launder forces a laundering round outside the allocation path — a test
// and benchmark hook for draining parked windows deterministically.
func (p *runPool) launder(ctx *smp.Context) {
	ctx.ChargeLock()
	p.mu.Lock()
	p.launderLocked(ctx)
	p.mu.Unlock()
}

// snapshot copies the pool statistics and recomputes the capacity gauges
// from live state: clean vs parked window pages from the pool's own
// lists, the largest free run from the arena's current free list — so
// the fragmentation picture reflects frees and coalesces, not just the
// state at the last allocation, and a parked (revivable) window is never
// double-counted as free capacity.
func (p *runPool) snapshot() RunWindowStats {
	p.mu.Lock()
	s := p.stats
	for _, ws := range p.clean {
		for _, w := range ws {
			s.CleanPages += w.pages
		}
	}
	for _, w := range p.dirty {
		s.DirtyPages += w.pages
	}
	p.mu.Unlock()
	s.LargestFreeRun = p.arena.LargestFreeRun()
	return s
}
