package sfbuf

import (
	"sync"

	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
)

// This file implements the run window pool: the VA-window side of the
// contiguous-run fast path.  A window is a multi-page reservation from
// the kernel virtual-address arena into which pmap.KEnterRun installs a
// whole run's translations in one pass.  The pool exists to amortize two
// costs across many runs:
//
//   - Reservation.  A fresh window pays the general-purpose KVA
//     allocator (the cost the original kernel pays per mapping); a
//     recycled window pays one pool lock.  Windows are cached per size
//     class, with one trailing guard page each, so an off-the-end access
//     faults instead of landing in a neighbor.  Windows of
//     superpage-covering sizes are reserved aligned so promotion can
//     fire.
//
//   - Teardown invalidation.  Freeing a run removes its PTEs
//     (pmap.KRemoveRun, one pass) but does NOT flush: the window's
//     invalidation debt — which pages were accessed, and by which CPUs'
//     TLBs (the run's cpumask) — is recorded on the window, and the
//     window parks on a dirty list.  Debt is retired by LAUNDERING: when
//     enough dirty windows accumulate (runLaunderBatch), one queued
//     shootdown flush retires every parked window's debt in a single
//     ranged IPI round, and all of them become reusable.  This is the
//     sharded cache's clean-buffer batching applied at window
//     granularity: one IPI round per runLaunderBatch runs instead of one
//     per run.
//
// Soundness is the same argument as for clean buffers: a freed window's
// stale TLB entries are unreachable (its PTEs are invalid and nothing
// hands out its addresses) until the window is reused, and reuse only
// happens from the clean list, which a window reaches strictly after the
// flush that retired its debt.

const (
	// runGuardPages is the reserved-but-never-mapped tail of each window.
	runGuardPages = 1
	// runLaunderBatch is how many dirty windows one laundering round
	// flushes — and thus how many runs share one teardown IPI round.
	runLaunderBatch = 8
)

// runWindow is one reserved VA window and, between a FreeRun and the next
// laundering round, its recorded invalidation debt.
type runWindow struct {
	base  uint64
	pages int

	debtVpns  []uint64
	debtMasks []smp.CPUSet
	accScr    []bool // KRemoveRun scratch, reused across lives
}

// RunWindowStats counts run-window pool events.
type RunWindowStats struct {
	// Reserved counts fresh window reservations from the KVA arena.
	Reserved uint64
	// Reuses counts runs served by a recycled window.
	Reuses uint64
	// Launders counts laundering rounds and Laundered the dirty windows
	// those rounds made reusable; Laundered/Launders is the teardown
	// coalescing factor the pool earns.
	Launders  uint64
	Laundered uint64
}

// runPool caches reserved VA windows per size class.
type runPool struct {
	pm    *pmap.Pmap
	arena *kva.Arena

	mu    sync.Mutex
	clean map[int][]*runWindow
	dirty []*runWindow
	stats RunWindowStats
}

func newRunPool(pm *pmap.Pmap, arena *kva.Arena) *runPool {
	return &runPool{pm: pm, arena: arena, clean: make(map[int][]*runWindow)}
}

// get returns a window of exactly pages usable pages: recycled when the
// size class has clean stock, laundered out of the dirty list when enough
// debt has parked to amortize the flush, reserved fresh otherwise.
func (p *runPool) get(ctx *smp.Context, pages int) (*runWindow, error) {
	ctx.ChargeLock()
	p.mu.Lock()
	if w := p.popCleanLocked(pages); w != nil {
		p.mu.Unlock()
		return w, nil
	}
	if len(p.dirty) >= runLaunderBatch {
		p.launderLocked(ctx)
		if w := p.popCleanLocked(pages); w != nil {
			p.mu.Unlock()
			return w, nil
		}
	}
	p.mu.Unlock()

	w, err := p.reserve(ctx, pages)
	if err == nil {
		return w, nil
	}
	// Arena exhausted: launder everything (freeing debt is prerequisite
	// to returning address space) and give back every cached window, then
	// retry once.
	p.mu.Lock()
	p.launderLocked(ctx)
	for size, ws := range p.clean {
		if size == pages && len(ws) > 0 {
			w := p.popCleanLocked(pages)
			p.mu.Unlock()
			return w, nil
		}
		for _, w := range ws {
			p.arena.Free(w.base)
		}
		delete(p.clean, size)
	}
	p.mu.Unlock()
	return p.reserve(ctx, pages)
}

func (p *runPool) popCleanLocked(pages int) *runWindow {
	ws := p.clean[pages]
	if len(ws) == 0 {
		return nil
	}
	w := ws[len(ws)-1]
	p.clean[pages] = ws[:len(ws)-1]
	p.stats.Reuses++
	return w
}

// reserve takes a fresh window from the arena, superpage-aligned when the
// size can cover an aligned superpage chunk, with the trailing guard.
func (p *runPool) reserve(ctx *smp.Context, pages int) (*runWindow, error) {
	ctx.Charge(ctx.Cost().KVAAlloc)
	align := 1
	if pages >= pmap.SuperpagePages {
		align = pmap.SuperpagePages
	}
	base, err := p.arena.AllocWindow(pages, runGuardPages, align)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.stats.Reserved++
	p.mu.Unlock()
	return &runWindow{base: base, pages: pages}, nil
}

// put parks a torn-down window: straight back to clean stock when its
// teardown owed nothing (no page of the run was ever accessed — the
// accessed-bit optimization at window granularity), onto the dirty list
// otherwise.
func (p *runPool) put(ctx *smp.Context, w *runWindow) {
	ctx.ChargeLock()
	p.mu.Lock()
	if len(w.debtVpns) == 0 {
		p.clean[w.pages] = append(p.clean[w.pages], w)
	} else {
		p.dirty = append(p.dirty, w)
	}
	p.mu.Unlock()
}

// launderLocked retires every dirty window's invalidation debt through
// the per-CPU shootdown queue in ONE forced flush and moves the windows
// to their clean lists.  Caller holds p.mu.
func (p *runPool) launderLocked(ctx *smp.Context) {
	if len(p.dirty) == 0 {
		return
	}
	for _, w := range p.dirty {
		ctx.QueueShootdownBatch(w.debtMasks, w.debtVpns)
		w.debtVpns = w.debtVpns[:0]
		w.debtMasks = w.debtMasks[:0]
	}
	ctx.FlushShootdowns()
	p.stats.Launders++
	p.stats.Laundered += uint64(len(p.dirty))
	for _, w := range p.dirty {
		p.clean[w.pages] = append(p.clean[w.pages], w)
	}
	p.dirty = p.dirty[:0]
}

// snapshot copies the pool statistics.
func (p *runPool) snapshot() RunWindowStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
