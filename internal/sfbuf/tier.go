package sfbuf

import (
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Tier migration: the mechanism half of consumer-hinted hot-extent
// placement on a tiered physical pool (vm.SetTierSplit).  The policy —
// which extents are hot, which resident extent is coldest, when the fast
// tier is under pressure — lives above, in the kernel's tier keeper; this
// file only knows how to move a quiescent extent's frames into a tier
// without changing one observable byte, reusing the defragmentation
// Migrator's three pillars verbatim: the write migration gate, the
// vm.MigratePage copy-and-swap, and the honest-TLB handoff with ONE
// accumulated shootdown flush per call.
//
// A tier move is cheaper to reason about than an evacuation because the
// destination is explicit (vm.TierTarget picks the lowest free frame of
// the requested tier) and partial progress is fine: an extent whose pages
// are half promoted simply pays the slow surcharge on the other half
// until the next pass.  Non-quiescent pages (wired, in a checked-out run,
// hash-referenced) are skipped, not waited for.

// MoveToTier migrates the given pages' frames into the given tier,
// preferring destination frames homed on socket pref, and returns how
// many pages actually moved.  Pages already resident in the tier, pages
// that are not quiescent, and pages whose owners race the move (freeing
// or wiring them mid-pass) are skipped; a full destination tier ends the
// pass early — the caller decides whether to demote something and retry.
// The whole pass runs under the write migration gate, and every remapped
// or stale translation is retired in one shootdown flush before the gate
// reopens.
func (g *Migrator) MoveToTier(ctx *smp.Context, pages []*vm.Page, tier, pref int) int {
	if g == nil || len(pages) == 0 || !g.phys.Tiered() {
		return 0
	}
	start := ctx.CPU().Cycles()
	ctx.ChargeLock()
	g.c.migGate.Lock()
	var doomed []*vm.Page
	moved, queued := 0, false
	for _, pg := range pages {
		f := pg.Frame()
		if f == 0 || g.phys.TierOfFrame(f) == tier {
			continue
		}
		// Quiescence: the same bar evacuate sets, but per page — one hot
		// page skips itself, not the whole extent.
		if pg.Wired() || g.c.runs.frameLive(f) {
			continue
		}
		if ref, _, ok := g.c.lookupRefUngated(f); ok && ref > 0 {
			continue
		}
		dst, err := g.phys.TierTarget(tier, pref)
		if err != nil {
			break // destination tier is full: the caller owns the eviction policy
		}
		ok, evicted := g.evictStale(ctx, dst.Frame())
		queued = queued || evicted
		if !ok {
			g.phys.Free(dst)
			continue
		}
		ctx.ChargeBytesAt(ctx.Cost().CopyPerByte, vm.PageSize, dst.Frame())
		if !g.phys.MigratePage(pg, dst) {
			// The owner freed or wired the page since the scan; a page we
			// cannot move is a page that no longer needs moving.
			g.phys.Free(dst)
			continue
		}
		g.remapHash(ctx, pg, f)
		if n := g.c.runs.remapParked(ctx, pg, f); n > 0 {
			g.winRemaps.Add(uint64(n))
		}
		doomed = append(doomed, dst)
		moved++
	}
	if moved > 0 || queued {
		ctx.FlushShootdowns()
	}
	for _, d := range doomed {
		g.phys.Free(d)
	}
	g.c.migGate.Unlock()
	g.tierMoved.Add(uint64(moved))
	g.cycles.Add(uint64(ctx.CPU().Cycles() - start))
	return moved
}
