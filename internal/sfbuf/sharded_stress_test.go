package sfbuf

import (
	"sync"
	"sync/atomic"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/vm"
)

// TestShardedConcurrentChurn is the sharded engine's -race workout: one
// contending goroutine per simulated CPU plus extras sharing CPUs, all
// churning shared and private mappings over a working set larger than the
// cache so hits, clean misses, stealing and batched reclaims interleave.
// Every read goes through the honest MMU, so a batched shootdown that
// left a stale mapping dereferenceable shows up as wrong bytes, not just
// a counter.
func TestShardedConcurrentChurn(t *testing.T) {
	const entries = 24
	r := newShardedRig(t, arch.XeonMPHTT(), entries,
		ShardedConfig{ReclaimBatch: 4, PerCPUFree: 2})
	pages := make([]*vm.Page, 3*entries)
	for i := range pages {
		pages[i] = r.page(t)
		pages[i].Data()[0] = byte(i)
	}

	const workers = 6 // more workers than CPUs: some share a CPU id
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := r.m.Ctx(w % r.m.NumCPUs())
			for i := 0; i < iters; i++ {
				idx := (i*(2*w+3) + w*11) % len(pages)
				pg := pages[idx]
				var flags Flags
				if (i+w)%3 == 0 {
					flags = Private
				}
				b, err := r.sf.Alloc(ctx, pg, flags)
				if err != nil {
					t.Error(err)
					return
				}
				if b.Page() != pg {
					t.Errorf("worker %d iter %d: wrong page", w, i)
					return
				}
				got, err := r.pm.Translate(ctx, b.KVA(), false)
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if got.Data()[0] != byte(idx) {
					t.Errorf("worker %d iter %d: read %#x, want %#x — stale mapping dereferenced",
						w, i, got.Data()[0], byte(idx))
					return
				}
				r.sf.Free(ctx, b)
			}
		}(w)
	}
	wg.Wait()

	// Drain invariants: every reference released, every buffer back on
	// an unreferenced list, no mapping left claiming a reference.
	s := r.sf.Stats()
	if s.Allocs != s.Frees || s.Allocs != workers*iters {
		t.Fatalf("allocs/frees = %d/%d, want %d", s.Allocs, s.Frees, workers*iters)
	}
	if got := r.sf.InactiveLen(); got != entries {
		t.Fatalf("inactive = %d, want %d after drain", got, entries)
	}
	if got := r.sf.ValidMappings(); got > entries {
		t.Fatalf("valid mappings = %d > %d buffers", got, entries)
	}
	for _, pg := range pages {
		if ref, mask, ok := r.sf.LookupRef(pg); ok {
			if ref != 0 {
				t.Fatalf("page %d: ref = %d after drain", pg.Frame(), ref)
			}
			if mask != r.m.AllCPUs() {
				t.Fatalf("page %d: cpumask = %v, want all (no stale view possible)", pg.Frame(), mask)
			}
		}
	}
	if s.Reclaims == 0 {
		t.Fatal("stress must have exercised batched reclaim")
	}
}

// TestShardedBatchChurnConcurrent is the vectored path's -race workout:
// workers mix AllocBatch/FreeBatch runs with single-page Alloc/Free over
// a working set larger than the cache, so batched hits, bulk freelist
// pops, shortage reclaims inside a batch, and single-page ops interleave
// on the same shards.  Every buffer of every batch is read through the
// honest MMU before release — a batched teardown that leaves any stale
// mapping dereferenceable returns wrong bytes, not just a bad counter.
func TestShardedBatchChurnConcurrent(t *testing.T) {
	const entries = 32
	r := newShardedRig(t, arch.XeonMPHTT(), entries,
		ShardedConfig{ReclaimBatch: 6, PerCPUFree: 3})
	pages := make([]*vm.Page, 4*entries)
	for i := range pages {
		pages[i] = r.page(t)
		pages[i].Data()[0] = byte(i)
	}

	const workers = 6
	const iters = 250
	var wg sync.WaitGroup
	var allocated atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := r.m.Ctx(w % r.m.NumCPUs())
			check := func(b *Buf, idx int) bool {
				got, err := r.pm.Translate(ctx, b.KVA(), false)
				if err != nil {
					t.Error(err)
					return false
				}
				if got.Data()[0] != byte(idx) {
					t.Errorf("worker %d: read %#x, want %#x — stale mapping dereferenced",
						w, got.Data()[0], byte(idx))
					return false
				}
				return true
			}
			for i := 0; i < iters; i++ {
				var flags Flags
				if (i+w)%3 == 0 {
					flags = Private
				}
				if i%2 == 0 {
					// Vectored run of 3-6 distinct pages.
					n := 3 + (i+w)%4
					start := (i*(2*w+3) + w*13) % (len(pages) - n)
					bufs, err := r.sf.AllocBatch(ctx, pages[start:start+n], flags)
					if err != nil {
						t.Error(err)
						return
					}
					allocated.Add(uint64(n))
					for j, b := range bufs {
						if !check(b, start+j) {
							return
						}
					}
					r.sf.FreeBatch(ctx, bufs)
				} else {
					idx := (i*(2*w+5) + w*7) % len(pages)
					b, err := r.sf.Alloc(ctx, pages[idx], flags)
					if err != nil {
						t.Error(err)
						return
					}
					allocated.Add(1)
					if !check(b, idx) {
						return
					}
					r.sf.Free(ctx, b)
				}
			}
		}(w)
	}
	wg.Wait()

	s := r.sf.Stats()
	if s.Allocs != s.Frees || s.Allocs != allocated.Load() {
		t.Fatalf("allocs/frees = %d/%d, want %d", s.Allocs, s.Frees, allocated.Load())
	}
	if s.BatchAllocs == 0 || s.BatchFrees == 0 {
		t.Fatal("stress must have exercised the vectored path")
	}
	if s.Reclaims == 0 {
		t.Fatal("stress must have exercised batched reclaim")
	}
	if got := r.sf.InactiveLen(); got != entries {
		t.Fatalf("inactive = %d, want %d after drain", got, entries)
	}
	for _, pg := range pages {
		if ref, _, ok := r.sf.LookupRef(pg); ok && ref != 0 {
			t.Fatalf("page %d: ref = %d after drain", pg.Frame(), ref)
		}
	}
}

// TestShardedBatchNoWaitStress pins the batch rollback under concurrency:
// with the whole cache held, NoWait batches on every CPU fail fast,
// never sleep, and leak no references.
func TestShardedBatchNoWaitStress(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 4, ShardedConfig{})
	ctx := r.m.Ctx(0)
	heldPages := make([]*vm.Page, 4)
	for i := range heldPages {
		heldPages[i] = r.page(t)
	}
	held, err := r.sf.AllocBatch(ctx, heldPages, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sctx := r.m.Ctx(w % r.m.NumCPUs())
			fresh := make([]*vm.Page, 3)
			for i := range fresh {
				pg, err := r.m.Phys.Alloc()
				if err != nil {
					t.Error(err)
					return
				}
				fresh[i] = pg
			}
			for i := 0; i < 40; i++ {
				if _, err := r.sf.AllocBatch(sctx, fresh, NoWait); err != ErrWouldBlock {
					t.Errorf("want ErrWouldBlock, got %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.sf.Stats().Sleeps; got != 0 {
		t.Fatalf("NoWait batch slept %d times", got)
	}
	r.sf.FreeBatch(ctx, held)
	if r.sf.InactiveLen() != 4 {
		t.Fatal("cache did not drain after batch rollback stress")
	}
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestShardedNoWaitStress verifies exhaustion behavior under concurrency:
// with every buffer pinned, NoWait allocators on every CPU fail fast and
// never sleep.
func TestShardedNoWaitStress(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 2, ShardedConfig{})
	ctx := r.m.Ctx(0)
	held := make([]*Buf, 2)
	for i := range held {
		b, err := r.sf.Alloc(ctx, r.page(t), 0)
		if err != nil {
			t.Fatal(err)
		}
		held[i] = b
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sctx := r.m.Ctx(w % r.m.NumCPUs())
			pg, _ := r.m.Phys.Alloc()
			for i := 0; i < 50; i++ {
				if _, err := r.sf.Alloc(sctx, pg, NoWait); err != ErrWouldBlock {
					t.Errorf("want ErrWouldBlock, got %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.sf.Stats().Sleeps; got != 0 {
		t.Fatalf("NoWait slept %d times", got)
	}
	for _, b := range held {
		r.sf.Free(ctx, b)
	}
	if r.sf.InactiveLen() != 2 {
		t.Fatal("cache did not drain")
	}
}

// TestShardedSleepersDrain exhausts the cache with held references while
// a crowd sleeps, then releases and checks everyone is served.
func TestShardedSleepersDrain(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 2, ShardedConfig{})
	ctx := r.m.Ctx(0)
	held := make([]*Buf, 2)
	for i := range held {
		b, err := r.sf.Alloc(ctx, r.page(t), 0)
		if err != nil {
			t.Fatal(err)
		}
		held[i] = b
	}
	const sleepers = 12
	var wg sync.WaitGroup
	for i := 0; i < sleepers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx := r.m.Ctx(i % r.m.NumCPUs())
			pg, err := r.m.Phys.Alloc()
			if err != nil {
				t.Error(err)
				return
			}
			b, err := r.sf.Alloc(sctx, pg, 0)
			if err != nil {
				t.Errorf("sleeper %d: %v", i, err)
				return
			}
			r.sf.Free(sctx, b)
		}(i)
	}
	for r.sf.Stats().Sleeps < sleepers {
		if r.sf.Stats().WouldBlock > 0 {
			t.Fatal("unexpected NoWait failure")
		}
	}
	for _, b := range held {
		r.sf.Free(ctx, b)
	}
	wg.Wait()
	if got := r.sf.InactiveLen(); got != 2 {
		t.Fatalf("inactive = %d, want 2", got)
	}
}
