package sfbuf

import (
	"sync/atomic"

	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// This file implements defragmentation by migration: the active half of
// the superpage contiguity story (the passive half is the buddy
// allocator's reservation watermark).  Reservations slow the erosion of
// intact superpage-span blocks; the Migrator rebuilds them, by evacuating
// the few resident pages out of nearly-free spans into existing fragments
// elsewhere and letting the buddy coalescing recover the span as one
// intact block.
//
// Correctness rests on three pillars:
//
//   - The migration gate (shardedCache.migGate).  The Migrator holds it
//     for WRITE across each block's evacuation, so no mapping operation —
//     alloc, free, batch, run, launder — observes a page mid-move.  The
//     gate never protects direct page access: a client reading or writing
//     a held page's storage without a mapping reference races the copy by
//     contract (pages are only evacuated when quiescent — unwired, not in
//     a checked-out run, hash reference count zero — and a quiescent
//     page's owner has promised not to touch its bytes bare-handed).
//
//   - vm.MigratePage's atomicity.  The copy-and-swap validates, under the
//     pool lock, that the source is still a registered, unwired, resident
//     page — so a client Free racing the evacuation (the vm layer is NOT
//     behind the gate) loses cleanly: MigratePage returns false and the
//     frame is simply no longer resident.
//
//   - The honest-TLB handoff.  MigratePage leaves the doomed destination
//     handle holding the OLD frame with a byte-identical copy, so any TLB
//     entry still naming the old frame keeps reading correct bytes.  The
//     Migrator queues every invalidation the old translations owe, issues
//     ONE accumulated shootdown flush per evacuated block, and only then
//     frees the doomed handles (freeing zeroes them — an access through a
//     translation that should have been shot down reads zeroes, and the
//     byte oracles catch the bug).
type Migrator struct {
	c    *shardedCache
	phys *vm.PhysMem

	span        int // frames per target block (the superpage span)
	spanOrder   int
	maxResident int // occupancy ceiling for a span to be worth evacuating

	rounds, moved, freed, skipped atomic.Uint64
	hashRemaps, winRemaps, forced atomic.Uint64
	tierMoved                     atomic.Uint64
	cycles                        atomic.Uint64
}

// MigrateConfig tunes the Migrator.  Zero values select defaults.
type MigrateConfig struct {
	// Span is the contiguity target in frames; it must be a power of two.
	// Zero selects the superpage span (pmap.SuperpagePages).
	Span int
	// MaxResident is the densest span an evacuation will take on.  Zero
	// selects Span/4: beyond a quarter occupancy the copy bill outweighs
	// the reclaimed block.
	MaxResident int
}

// MigrationStats is a snapshot of the Migrator's counters.
type MigrationStats struct {
	// Rounds counts MigrateBlocks calls; PagesMoved, copied pages;
	// BlocksFreed, spans whose evacuation fully coalesced; BlocksSkipped,
	// candidates given up on (non-quiescent resident, no target frame, or
	// residual occupancy after the pass).
	Rounds, PagesMoved, BlocksFreed, BlocksSkipped uint64
	// HashRemaps and WindowRemaps count mappings rewritten in place —
	// inactive cache entries and parked run-window slots, respectively;
	// ForcedLaunders counts parked windows torn down instead because most
	// of their extent sat inside the victim span.
	HashRemaps, WindowRemaps, ForcedLaunders uint64
	// TierMoves counts pages migrated between physical-memory tiers by
	// MoveToTier (promotions and demotions both; the kernel's tier keeper
	// splits the direction).
	TierMoves uint64
	// CyclesCharged is the total simulated cycles MigrateBlocks consumed.
	CyclesCharged uint64
}

// NewMigrator builds a Migrator for the mapper, or nil when the mapper
// cannot migrate: only the i386 sharded engine over a buddy physical pool
// participates (the global-lock figure engines and sparc64 stay untouched
// so the paper reproductions keep their exact behaviour).
func NewMigrator(m Mapper, cfg MigrateConfig) *Migrator {
	v, ok := m.(*I386)
	if !ok {
		return nil
	}
	sc, ok := v.c.(*shardedCache)
	if !ok {
		return nil
	}
	phys := sc.m.Phys
	if phys == nil || !phys.PhysStats().Buddy {
		return nil
	}
	span := cfg.Span
	if span <= 0 {
		span = pmap.SuperpagePages
	}
	if span&(span-1) != 0 {
		return nil
	}
	maxRes := cfg.MaxResident
	if maxRes <= 0 {
		maxRes = span / 4
	}
	order := 0
	for 1<<order < span {
		order++
	}
	return &Migrator{c: sc, phys: phys, span: span, spanOrder: order, maxResident: maxRes}
}

// Span returns the configured contiguity target in frames.
func (g *Migrator) Span() int { return g.span }

// MigrateBlocks runs one defragmentation round: evacuate up to maxBlocks
// nearly-free spans, cheapest first, and return how many fully coalesced.
// The whole round runs under the write migration gate; each block's
// remapping debt is retired in one shootdown flush.
func (g *Migrator) MigrateBlocks(ctx *smp.Context, maxBlocks int) int {
	if g == nil || maxBlocks <= 0 {
		return 0
	}
	start := ctx.CPU().Cycles()
	ctx.ChargeLock()
	g.c.migGate.Lock()
	freed := 0
	// Over-fetch candidates: some will be skipped for non-quiescent
	// residents, and a skip must not end the round early.
	for _, cand := range g.phys.MigrationCandidates(g.span, g.maxResident, maxBlocks*4) {
		if freed >= maxBlocks {
			break
		}
		if g.evacuate(ctx, cand) {
			freed++
		} else {
			g.skipped.Add(1)
		}
	}
	g.c.migGate.Unlock()
	g.rounds.Add(1)
	g.cycles.Add(uint64(ctx.CPU().Cycles() - start))
	return freed
}

// evacuate moves every resident page out of the candidate span and reports
// whether the span fully coalesced.  Caller holds the write migration
// gate.
func (g *Migrator) evacuate(ctx *smp.Context, cand vm.MigrationCandidate) bool {
	lo, hi := cand.Start, cand.Start+uint64(cand.Span)
	frames := g.phys.ResidentFrames(lo, cand.Span)

	// Quiescence check: every resident must be unwired, outside any
	// checked-out run, and unreferenced in the cache.  One hot page
	// disqualifies the whole span — a partial evacuation frees nothing.
	for _, f := range frames {
		pg := g.phys.PageByFrame(f)
		if pg == nil || pg.Wired() {
			return false
		}
		if g.c.runs.frameLive(f) {
			return false
		}
		if ref, _, ok := g.c.lookupRefUngated(f); ok && ref > 0 {
			return false
		}
	}

	// Parked windows mostly inside the span: one teardown pass beats
	// remapping most of their slots one by one, and it frees the windows
	// for any future extent.  (Shootdowns queue; the block flush below
	// retires them.)
	queued := false
	if n := g.c.runs.launderSpan(ctx, lo, hi); n > 0 {
		g.forced.Add(uint64(n))
		queued = true
	}

	var doomed []*vm.Page
	moved := 0
	for _, f := range frames {
		pg := g.phys.PageByFrame(f)
		dst, err := g.phys.MigrationTarget(cand.Socket, g.spanOrder, lo, hi)
		if err != nil {
			break // no fragment left to absorb an evacuee: abandon
		}
		// The destination frame may carry a STALE inactive cache entry
		// from a prior life (lazy teardown outlives the page's free).
		// Evict it now: after the swap its hash key would no longer match
		// its page's frame and every later lookup on it would go to the
		// wrong shard.
		ok, evicted := g.evictStale(ctx, dst.Frame())
		queued = queued || evicted
		if !ok {
			g.phys.Free(dst)
			break // a REFERENCED entry on a free frame: client bug upstream
		}
		ctx.ChargeBytesAt(ctx.Cost().CopyPerByte, vm.PageSize, dst.Frame())
		if !g.phys.MigratePage(pg, dst) {
			// The owner freed (or wired) the page since the scan; a freed
			// frame needs no evacuation, so keep going either way.
			g.phys.Free(dst)
			continue
		}
		g.remapHash(ctx, pg, f)
		if n := g.c.runs.remapParked(ctx, pg, f); n > 0 {
			g.winRemaps.Add(uint64(n))
		}
		doomed = append(doomed, dst)
		moved++
	}

	if moved > 0 || queued {
		// ONE flush for the whole block's debt — remaps, forced launders,
		// stale evictions.  It must land before the gate reopens (stale
		// VAs get reused the moment mapping traffic resumes), and only
		// after it may the doomed handles — still holding byte-identical
		// copies at the old frames for any straggler TLB entry — be freed
		// and zeroed.
		ctx.FlushShootdowns()
	}
	if moved > 0 {
		for _, d := range doomed {
			g.phys.Free(d)
		}
		g.moved.Add(uint64(moved))
	}
	if len(g.phys.ResidentFrames(lo, cand.Span)) > 0 {
		return false
	}
	g.freed.Add(1)
	return true
}

// evictStale removes a leftover unreferenced cache entry keyed at frame,
// tearing its mapping down (shootdowns queued, flushed with the block) and
// restocking its buffer clean.  ok is false when the entry is still
// referenced — the frame cannot be used as a migration target; evicted
// reports whether an entry was actually torn down (the caller owes a
// flush).  Caller holds the write migration gate.
func (g *Migrator) evictStale(ctx *smp.Context, frame uint64) (ok, evicted bool) {
	c := g.c
	si := c.shardIdx(frame)
	c.chargeShardLock(ctx, si)
	s := c.shards[si]
	s.mu.Lock()
	b, found := s.hash[frame]
	if !found {
		s.mu.Unlock()
		return true, false
	}
	if b.ref > 0 {
		s.mu.Unlock()
		return false, false
	}
	delete(s.hash, frame)
	s.inactive.remove(b)
	s.mu.Unlock()
	c.teardown(ctx, b)
	b.cpumask = c.m.AllCPUs()
	c.putClean(ctx, b)
	return true, true
}

// remapHash rewrites the inactive cache entry that mapped the page at its
// old frame, if any: re-enter the translation (the page now answers with
// its new frame), queue the old translation's invalidation against the
// CPUs that may have cached it, and re-key the entry onto the new frame's
// shard — so the next Alloc of the page is still a hit.  Caller holds the
// write migration gate.
func (g *Migrator) remapHash(ctx *smp.Context, pg *vm.Page, old uint64) {
	c := g.c
	osi := c.shardIdx(old)
	c.chargeShardLock(ctx, osi)
	os := c.shards[osi]
	os.mu.Lock()
	b, ok := os.hash[old]
	if ok {
		delete(os.hash, old)
		os.inactive.remove(b)
	}
	os.mu.Unlock()
	if !ok {
		return
	}
	vpn := pmap.VPN(b.kva)
	_, oldAcc := c.pm.KEnter(ctx, b.kva, pg)
	if oldAcc || c.ablate&AblateAccessedBit != 0 {
		mask := b.tlbmask
		if mask.Has(ctx.CPUID()) {
			ctx.InvalidateLocal(vpn)
			mask = mask.Clear(ctx.CPUID())
		}
		ctx.QueueShootdown(mask, vpn)
	}
	// Post-flush no TLB holds this VPN at all: the rewritten mapping
	// starts life untainted, like a revival from clean.
	b.tlbmask = 0
	nf := pg.Frame()
	nsi := c.shardIdx(nf)
	c.chargeShardLock(ctx, nsi)
	ns := c.shards[nsi]
	ns.mu.Lock()
	ns.hash[nf] = b
	ns.inactive.pushTail(b)
	ns.mu.Unlock()
	g.hashRemaps.Add(1)
}

// Stats snapshots the Migrator's counters.  Nil-safe (a kernel without
// migration reports zeroes).
func (g *Migrator) Stats() MigrationStats {
	if g == nil {
		return MigrationStats{}
	}
	return MigrationStats{
		Rounds:         g.rounds.Load(),
		PagesMoved:     g.moved.Load(),
		BlocksFreed:    g.freed.Load(),
		BlocksSkipped:  g.skipped.Load(),
		HashRemaps:     g.hashRemaps.Load(),
		WindowRemaps:   g.winRemaps.Load(),
		ForcedLaunders: g.forced.Load(),
		TierMoves:      g.tierMoved.Load(),
		CyclesCharged:  g.cycles.Load(),
	}
}
