package sfbuf

// Native fuzz target for tier migration: the same decoded trace language
// as FuzzMigrate (digits '0'-'7' are readable opcodes), replayed over a
// TIERED buddy pool — a quarter of the frames fast — where every op-7
// pass runs a defrag round AND a tier-move pass over everything the
// trace owns, each under its own byte oracle, live-mapping re-read and
// structural audit.  The fast tier is small enough that promotion runs
// into the destination-full exit under load, and odd-argument passes
// demote, so the fuzzer continually drives frames across the boundary in
// both directions while mappings, runs, wired holds and raw churn race
// the moves.

import "testing"

// fuzzTierFast is the fast-tier size of the fuzz pool: a quarter of
// fuzzMigFrames, so a full-pool trace oversubscribes it four to one.
const fuzzTierFast = fuzzMigFrames / 4

// tierPressureSeed is the checked-in acceptance trace for tier moves
// under pressure: fill most of the pool, map and dirty pages, promote
// everything (the fast tier overflows — the early-exit path), scatter
// frees, then alternate demote/promote passes around a wired hold and
// parked run windows while the pool keeps churning.
func tierPressureSeed() []byte {
	var b []byte
	op := func(o, arg byte) { b = append(b, '0'+o, arg) }
	for i := 0; i < 48; i++ {
		op(0, 0xff) // burst-allocate: ~384 of 512 frames owned, fast tier 128
	}
	for i := 0; i < 5; i++ {
		op(2, byte(i*53+17)|1) // map + dirty across the pool
	}
	op(4, 0x23) // park a run window across the moves
	op(7, 0x00) // promote pass: oversubscribed 3:1, must hit the full exit
	op(7, 0x01) // demote pass: drain the fast tier back out
	for k := 0; k < 12; k++ {
		for j := 0; j < 5; j++ {
			op(1, byte(40+k)) // scatter frees: fragment both tiers
		}
	}
	op(6, 0xfe) // wired contiguous hold: fenced off from every move
	op(7, 0x02) // promote around the hold and the live mappings
	op(3, 0x00) // unmap one
	op(5, 0x00) // free the run
	op(7, 0x01) // demote again now that the window is parked
	op(6, 0x01) // release the hold
	op(7, 0x00) // final promote over what remains
	return b
}

func FuzzTier(f *testing.F) {
	f.Add([]byte("0a0b2a2b7a7b3a3b1a1b"))             // churn, map, promote+demote, unmap
	f.Add([]byte("0\xff7a1b1c7b6a7c6b"))              // pressure, scatter, moves around a hold
	f.Add([]byte("0d4a4b7a5a7b4c7c5b"))               // parked windows crossing the boundary
	f.Add([]byte("0\xff0\xff2a7a2b7b3a7c3b1a1b1c7d")) // mixed traffic with repeated passes
	f.Add(tierPressureSeed())
	f.Fuzz(func(t *testing.T, data []byte) {
		runMigrateTraceTiered(t, data, fuzzTierFast)
	})
}

// TestTierPressureSeed replays the checked-in tier-pressure seed
// deterministically and pins that it does what its comment says: pages
// actually crossed the tier boundary (the oversubscribed promote and the
// demote both moved something), under every physcheck oracle the trace
// runner applies per step.
func TestTierPressureSeed(t *testing.T) {
	sum := runMigrateTraceTiered(t, tierPressureSeed(), fuzzTierFast)
	if sum.stats.TierMoves == 0 {
		t.Fatal("the pressure seed never moved a page across the tier boundary")
	}
}
