package sfbuf

import (
	"errors"
	"testing"
	"testing/quick"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// --- amd64 ---

func newAMD64Rig(t *testing.T) (*smp.Machine, *pmap.Pmap, *AMD64) {
	t.Helper()
	m := smp.NewMachine(arch.OpteronMP(), 128, true)
	pm := pmap.New(m)
	return m, pm, NewAMD64(m, pm)
}

func TestAMD64AllocIsDirectMap(t *testing.T) {
	m, pm, sf := newAMD64Rig(t)
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	pg.Data()[5] = 0x42
	b, err := sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.KVA() != pm.DirectVA(pg) {
		t.Fatal("kva must be the direct-map address")
	}
	if b.Page() != pg {
		t.Fatal("page accessor wrong")
	}
	got, err := pm.Translate(ctx, b.KVA(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[5] != 0x42 {
		t.Fatal("direct map data access wrong")
	}
}

func TestAMD64SameBufForSamePage(t *testing.T) {
	m, _, sf := newAMD64Rig(t)
	ctx0, ctx1 := m.Ctx(0), m.Ctx(1)
	pg, _ := m.Phys.Alloc()
	b1, _ := sf.Alloc(ctx0, pg, Private)
	b2, _ := sf.Alloc(ctx1, pg, NoWait)
	if b1 != b2 {
		t.Fatal("an sf_buf is the vm_page: all callers share it")
	}
	sf.Free(ctx0, b1)
	sf.Free(ctx1, b2)
}

func TestAMD64NeverInvalidates(t *testing.T) {
	m, pm, sf := newAMD64Rig(t)
	ctx := m.Ctx(0)
	for i := 0; i < 100; i++ {
		pg, err := m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b, _ := sf.Alloc(ctx, pg, 0)
		if _, err := pm.Translate(ctx, b.KVA(), true); err != nil {
			t.Fatal(err)
		}
		sf.Free(ctx, b)
	}
	if m.Counters().LocalInv.Load() != 0 || m.Counters().RemoteInvIssued.Load() != 0 {
		t.Fatal("amd64 implementation must never produce TLB invalidations")
	}
	s := sf.Stats()
	if s.Allocs != 100 || s.Frees != 100 || s.Hits != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAMD64FreeIsCheap(t *testing.T) {
	m, _, sf := newAMD64Rig(t)
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	b, _ := sf.Alloc(ctx, pg, 0)
	before := m.CPU(0).Cycles()
	sf.Free(ctx, b)
	if cost := m.CPU(0).Cycles() - before; cost != 0 {
		t.Fatalf("sf_buf_free must be the empty function, cost %d", cost)
	}
}

// --- original ---

func newOriginalRig(t *testing.T, p arch.Platform) (*smp.Machine, *pmap.Pmap, *Original) {
	t.Helper()
	m := smp.NewMachine(p, 128, true)
	pm := pmap.New(m)
	var arena *kva.Arena
	if p.Arch == arch.I386 {
		arena = kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	} else {
		arena = kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	}
	return m, pm, NewOriginal(m, pm, arena)
}

func TestOriginalAllocMapsAndFrees(t *testing.T) {
	m, pm, o := newOriginalRig(t, arch.XeonMP())
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	pg.Data()[0] = 0x7E
	b, err := o.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pm.Translate(ctx, b.KVA(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[0] != 0x7E {
		t.Fatal("mapping wrong")
	}
	o.Free(ctx, b)
	if pm.Mappings() != 0 {
		t.Fatal("free must unmap")
	}
}

func TestOriginalGlobalInvalidationPerFree(t *testing.T) {
	m, pm, o := newOriginalRig(t, arch.XeonMPHTT())
	ctx := m.Ctx(0)
	const n = 25
	for i := 0; i < n; i++ {
		pg, _ := m.Phys.Alloc()
		b, _ := o.Alloc(ctx, pg, 0)
		pm.Translate(ctx, b.KVA(), false)
		o.Free(ctx, b)
	}
	if got := m.Counters().LocalInv.Load(); got != n {
		t.Fatalf("local invalidations = %d, want %d", got, n)
	}
	if got := m.Counters().RemoteInvIssued.Load(); got != n {
		t.Fatalf("remote invalidations = %d, want %d", got, n)
	}
	if got := o.Stats().VAAllocs; got != n {
		t.Fatalf("VA allocations = %d, want %d", got, n)
	}
}

func TestOriginalOnUPHasNoRemote(t *testing.T) {
	m, _, o := newOriginalRig(t, arch.XeonUP())
	ctx := m.Ctx(0)
	for i := 0; i < 10; i++ {
		pg, _ := m.Phys.Alloc()
		b, _ := o.Alloc(ctx, pg, 0)
		o.Free(ctx, b)
	}
	if m.Counters().RemoteInvIssued.Load() != 0 {
		t.Fatal("UP original kernel must not shoot down")
	}
	if m.Counters().LocalInv.Load() != 10 {
		t.Fatal("UP original kernel still invalidates locally")
	}
}

// TestOriginalNoStaleLeaks: the original kernel's global invalidation on
// free is precisely what keeps VA recycling safe.  Exercise recycling
// across CPUs with data checks through the honest MMU.
func TestOriginalNoStaleLeaks(t *testing.T) {
	m, pm, o := newOriginalRig(t, arch.XeonMP())
	ctx0, ctx1 := m.Ctx(0), m.Ctx(1)
	for i := 0; i < 50; i++ {
		pg, err := m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(i)
		b, _ := o.Alloc(ctx0, pg, 0)
		// Both CPUs read through the mapping (it is shared).
		g0, _ := pm.Translate(ctx0, b.KVA(), false)
		g1, _ := pm.Translate(ctx1, b.KVA(), false)
		if g0 == nil || g1 == nil || g0.Data()[0] != byte(i) || g1.Data()[0] != byte(i) {
			t.Fatalf("iteration %d read stale data", i)
		}
		o.Free(ctx0, b)
		pg.UserColor = -1
		m.Phys.Free(pg)
	}
}

func TestOriginalNoWaitOnExhaustedArena(t *testing.T) {
	m := smp.NewMachine(arch.XeonMP(), 16, false)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, vm.PageSize) // one page only
	o := NewOriginal(m, pm, arena)
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	b, err := o.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Alloc(ctx, pg, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}
	o.Free(ctx, b)
}

// --- sparc64 ---

func newSparcRig(t *testing.T, colors, perColor int) (*smp.Machine, *pmap.Pmap, *Sparc64) {
	t.Helper()
	m := smp.NewMachine(arch.Sparc64MP(), 256, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	sf, err := NewSparc64(m, pm, arena, colors, perColor)
	if err != nil {
		t.Fatal(err)
	}
	return m, pm, sf
}

func TestSparcDirectWhenNoUserMapping(t *testing.T) {
	m, pm, sf := newSparcRig(t, 2, 8)
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	b, err := sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.KVA() != pm.DirectVA(pg) {
		t.Fatal("unmapped page should use the direct map")
	}
	if sf.DirectAllocs() != 1 {
		t.Fatal("direct alloc not counted")
	}
	sf.Free(ctx, b)
}

func TestSparcColorMismatchUsesCache(t *testing.T) {
	m, pm, sf := newSparcRig(t, 2, 8)
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	// Force a user mapping color that conflicts with the direct map's.
	direct := pmap.VPN(pmap.DirectMapBase+uint64(pg.PA())) & 1
	pg.UserColor = int(direct ^ 1)
	b, err := sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.KVA() == pm.DirectVA(pg) {
		t.Fatal("color conflict must avoid the direct map")
	}
	// The chosen VA's color must match the user mapping's color.
	if got := int(pmap.VPN(b.KVA()) & 1); got != pg.UserColor {
		t.Fatalf("mapping color %d, want %d", got, pg.UserColor)
	}
	// And the mapping must actually work.
	if g, err := pm.Translate(ctx, b.KVA(), false); err != nil || g != pg {
		t.Fatalf("translate got (%v,%v)", g, err)
	}
	sf.Free(ctx, b)
}

func TestSparcMatchingColorUsesDirect(t *testing.T) {
	m, pm, sf := newSparcRig(t, 2, 8)
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	pg.UserColor = int(pmap.VPN(pmap.DirectMapBase+uint64(pg.PA())) & 1)
	b, err := sf.Alloc(ctx, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.KVA() != pm.DirectVA(pg) {
		t.Fatal("matching color should use the direct map")
	}
	sf.Free(ctx, b)
}

func TestSparcRejectsNonPowerOfTwoColors(t *testing.T) {
	m := smp.NewMachine(arch.Sparc64MP(), 16, false)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	if _, err := NewSparc64(m, pm, arena, 3, 8); err == nil {
		t.Fatal("3 colors must be rejected")
	}
}

func TestSparcStatsAggregation(t *testing.T) {
	m, _, sf := newSparcRig(t, 2, 8)
	ctx := m.Ctx(0)
	pgDirect, _ := m.Phys.Alloc()
	pgCached, _ := m.Phys.Alloc()
	dc := int(pmap.VPN(pmap.DirectMapBase+uint64(pgCached.PA())) & 1)
	pgCached.UserColor = dc ^ 1
	b1, _ := sf.Alloc(ctx, pgDirect, 0)
	b2, _ := sf.Alloc(ctx, pgCached, 0)
	sf.Free(ctx, b1)
	sf.Free(ctx, b2)
	s := sf.Stats()
	if s.Allocs != 2 || s.Frees != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v: want 1 direct hit + 1 cache miss", s)
	}
}

// --- cross-implementation properties ---

// Property: for every implementation, alloc/translate/free round-trips
// resolve to the allocated page regardless of flags.
func TestQuickMapperRoundTrip(t *testing.T) {
	type rig struct {
		name string
		m    *smp.Machine
		pm   *pmap.Pmap
		sf   Mapper
	}
	var rigs []rig
	{
		m := smp.NewMachine(arch.XeonMP(), 256, true)
		pm := pmap.New(m)
		arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
		sf, err := NewI386(m, pm, arena, 16)
		if err != nil {
			t.Fatal(err)
		}
		rigs = append(rigs, rig{"i386", m, pm, sf})
	}
	{
		m := smp.NewMachine(arch.OpteronMP(), 256, true)
		pm := pmap.New(m)
		rigs = append(rigs, rig{"amd64", m, pm, NewAMD64(m, pm)})
	}
	{
		m := smp.NewMachine(arch.XeonMP(), 256, true)
		pm := pmap.New(m)
		arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
		rigs = append(rigs, rig{"original", m, pm, NewOriginal(m, pm, arena)})
	}
	for _, r := range rigs {
		pages, err := r.m.Phys.AllocN(32)
		if err != nil {
			t.Fatal(err)
		}
		f := func(pageIdx uint8, cpu uint8, private, touch bool) bool {
			pg := pages[int(pageIdx)%len(pages)]
			ctx := r.m.Ctx(int(cpu) % r.m.NumCPUs())
			var flags Flags
			if private {
				flags |= Private
			}
			b, err := r.sf.Alloc(ctx, pg, flags)
			if err != nil {
				return false
			}
			ok := b.Page() == pg
			if touch {
				g, err := r.pm.Translate(ctx, b.KVA(), false)
				ok = ok && err == nil && g == pg
			}
			r.sf.Free(ctx, b)
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
	}
}
