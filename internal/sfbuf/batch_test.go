package sfbuf

// Unit and economy tests for the vectored mapping API: AllocBatch and
// FreeBatch on every engine.  The differential and fuzz harnesses cover
// trace-level semantics; this file pins down the per-engine contracts —
// rollback on failure, capacity guards, loop-equivalence on the paper's
// cache, and the lock/shootdown economy the sharded fast path exists for.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

func allocPages(t *testing.T, m *smp.Machine, n int) []*vm.Page {
	t.Helper()
	pages := make([]*vm.Page, n)
	for i := range pages {
		pg, err := m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(i)
		pages[i] = pg
	}
	return pages
}

func TestShardedAllocBatchBasic(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 8)

	bufs, err := r.sf.AllocBatch(ctx, pages, Private)
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != len(pages) {
		t.Fatalf("got %d bufs for %d pages", len(bufs), len(pages))
	}
	for i, b := range bufs {
		if b.Page() != pages[i] {
			t.Fatalf("buf %d maps wrong page", i)
		}
		got, err := r.pm.Translate(ctx, b.KVA(), false)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data()[0] != byte(i) {
			t.Fatalf("buf %d reads %#x, want %#x", i, got.Data()[0], byte(i))
		}
	}
	s := r.sf.Stats()
	if s.BatchAllocs != 1 || s.BatchPages != 8 || s.Allocs != 8 || s.Misses != 8 {
		t.Fatalf("stats after batch = %+v", s)
	}

	// A second batch over the same pages is all hits, still one shard
	// round per shard.
	again, err := r.sf.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != bufs[i] {
			t.Fatalf("batch reuse did not share mapping %d", i)
		}
	}
	if s := r.sf.Stats(); s.Hits != 8 {
		t.Fatalf("hits = %d, want 8", s.Hits)
	}
	r.sf.FreeBatch(ctx, again)
	r.sf.FreeBatch(ctx, bufs)
	s = r.sf.Stats()
	if s.Allocs != s.Frees || s.BatchFrees != 2 {
		t.Fatalf("drain stats = %+v", s)
	}
	if got := r.sf.InactiveLen(); got != 32 {
		t.Fatalf("inactive = %d, want 32", got)
	}
}

func TestShardedAllocBatchEmptyAndOversized(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	ctx := r.m.Ctx(0)
	if bufs, err := r.sf.AllocBatch(ctx, nil, 0); err != nil || bufs != nil {
		t.Fatalf("empty batch = %v, %v", bufs, err)
	}
	pages := allocPages(t, r.m, 9)
	if _, err := r.sf.AllocBatch(ctx, pages, 0); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch error = %v, want ErrBatchTooLarge", err)
	}
	if s := r.sf.Stats(); s.Allocs != 0 {
		t.Fatalf("failed batch counted allocs: %+v", s)
	}
}

// TestShardedAllocBatchNoWaitRollback pins the unwind contract: a batch
// that cannot complete under NoWait releases every reference it already
// took and leaves no statistics skew.
func TestShardedAllocBatchNoWaitRollback(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 4, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)

	// Pin two buffers so a 4-page batch of fresh pages cannot finish.
	held, err := r.sf.AllocBatch(ctx, pages[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := allocPages(t, r.m, 4)
	if _, err := r.sf.AllocBatch(ctx, fresh, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("batch over pinned cache = %v, want ErrWouldBlock", err)
	}
	s := r.sf.Stats()
	if s.WouldBlock != 1 {
		t.Fatalf("WouldBlock = %d, want 1", s.WouldBlock)
	}
	// The failed batch must not leak references: everything but the two
	// held buffers is unreferenced again.
	if got := r.sf.InactiveLen(); got != 2 {
		t.Fatalf("inactive = %d, want 2 after rollback", got)
	}
	r.sf.FreeBatch(ctx, held)
	s = r.sf.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d after rollback drain", s.Allocs, s.Frees)
	}
}

// TestShardedFreeBatchMixesWithSingles checks that FreeBatch accepts any
// combination of batch- and single-allocated buffers on the cache engines.
func TestShardedFreeBatchMixesWithSingles(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 16, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 6)
	var bufs []*Buf
	for _, pg := range pages[:3] {
		b, err := r.sf.Alloc(ctx, pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	batch, err := r.sf.AllocBatch(ctx, pages[3:], Private)
	if err != nil {
		t.Fatal(err)
	}
	bufs = append(bufs, batch...)
	r.sf.FreeBatch(ctx, bufs)
	s := r.sf.Stats()
	if s.Allocs != 6 || s.Frees != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if got := r.sf.InactiveLen(); got != 16 {
		t.Fatalf("inactive = %d, want 16", got)
	}
}

// TestShardedFreeBatchEagerTeardown verifies the single-flush promise:
// under eager teardown a whole batch's invalidation debt retires in one
// queued shootdown flush instead of one flush per buffer.
func TestShardedFreeBatchEagerTeardown(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 16, ShardedConfig{})
	r.sf.Ablate(AblateLazyTeardown)
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 8)
	bufs, err := r.sf.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bufs {
		if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
			t.Fatal(err)
		}
	}
	before := r.m.SnapshotCounters()
	r.sf.FreeBatch(ctx, bufs)
	d := r.m.SnapshotCounters().Sub(before)
	if d.BatchedFlushes != 1 {
		t.Fatalf("eager batch teardown used %d flushes, want 1", d.BatchedFlushes)
	}
	if d.BatchedInv != 8 {
		t.Fatalf("flush retired %d invalidations, want 8", d.BatchedInv)
	}
	// Torn-down buffers are clean: remapping them needs no invalidation.
	before = r.m.SnapshotCounters()
	again, err := r.sf.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	d = r.m.SnapshotCounters().Sub(before)
	if d.LocalInv != 0 || d.RemoteInvIssued != 0 {
		t.Fatalf("remapping clean buffers invalidated: %+v", d)
	}
	r.sf.Ablate(0)
	r.sf.FreeBatch(ctx, again)
}

// TestGlobalCacheBatchIsLoopIdentical proves the figure-reproduction
// property at the engine level: on the paper's global-lock cache, a
// vectored request charges exactly the cycles, locks and invalidations of
// the equivalent single-page sequence and leaves identical cache state.
func TestGlobalCacheBatchIsLoopIdentical(t *testing.T) {
	run := func(batched bool) (cyc int64, snap smp.Snapshot, st Stats) {
		r := newI386Rig(t, arch.XeonMPHTT(), 16)
		ctx := r.m.Ctx(0)
		pages := allocPages(t, r.m, 8)
		for round := 0; round < 6; round++ {
			if batched {
				bufs, err := r.sf.AllocBatch(ctx, pages, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range bufs {
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
				}
				r.sf.FreeBatch(ctx, bufs)
			} else {
				bufs := make([]*Buf, 0, len(pages))
				for _, pg := range pages {
					b, err := r.sf.Alloc(ctx, pg, 0)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
					bufs = append(bufs, b)
				}
				for _, b := range bufs {
					r.sf.Free(ctx, b)
				}
			}
		}
		return int64(r.m.TotalCycles()), r.m.SnapshotCounters(), r.sf.Stats()
	}
	bc, bs, bst := run(true)
	lc, ls, lst := run(false)
	if bc != lc {
		t.Errorf("cycles: batch %d != loop %d", bc, lc)
	}
	if bs != ls {
		t.Errorf("counters: batch %+v != loop %+v", bs, ls)
	}
	bst.BatchAllocs, bst.BatchFrees, bst.BatchPages = 0, 0, 0
	if bst != lst {
		t.Errorf("mapper stats: batch %+v != loop %+v", bst, lst)
	}
}

func TestNativeBatchPredicate(t *testing.T) {
	m := smp.NewMachine(arch.XeonMPHTT(), 256, false)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	sharded, err := NewI386Sharded(m, pm, arena, 32, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	global, err := NewI386(m, pm, arena, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !NativeBatch(sharded) {
		t.Error("sharded i386 must batch natively")
	}
	if NativeBatch(global) {
		t.Error("global-lock i386 must not claim native batching")
	}

	om := smp.NewMachine(arch.OpteronMP(), 64, false)
	opm := pmap.New(om)
	if !NativeBatch(NewAMD64(om, opm)) {
		t.Error("amd64 direct map must batch natively")
	}
	oarena := kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	if !NativeBatch(NewOriginal(om, opm, oarena)) {
		t.Error("original kernel must batch natively (pmap_qenter)")
	}

	sm := smp.NewMachine(arch.Sparc64MP(), 4096, false)
	spm := pmap.New(sm)
	sarena := kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	ss, err := NewSparc64Sharded(sm, spm, sarena, 2, 64, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !NativeBatch(ss) {
		t.Error("sharded sparc64 must batch natively")
	}
	sg, err := NewSparc64(sm, spm, sarena, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if NativeBatch(sg) {
		t.Error("global sparc64 must not claim native batching")
	}
}

// TestSparc64BatchSplitsByColor drives a batch whose pages mix direct-map
// and cache-bound colors through the hybrid.
func TestSparc64BatchSplitsByColor(t *testing.T) {
	m := smp.NewMachine(arch.Sparc64MP(), 4096, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	sf, err := NewSparc64Sharded(m, pm, arena, 2, 64, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 12)
	for i, pg := range pages {
		pg.UserColor = i % 4 // -1 never occurs; mix of colors 0..3
		if i%4 == 3 {
			pg.UserColor = -1 // no user mapping: direct map eligible
		}
	}
	bufs, err := sf.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bufs {
		got, err := pm.Translate(ctx, b.KVA(), false)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if got.Data()[0] != byte(i) {
			t.Fatalf("page %d reads %#x, want %#x", i, got.Data()[0], byte(i))
		}
	}
	if sf.DirectAllocs() == 0 {
		t.Error("batch should have used the direct map for compatible colors")
	}
	// One vectored call is one batch covering every page, no matter how
	// many color sub-batches and direct casts serve it.
	st := sf.Stats()
	if st.BatchAllocs != 1 || st.BatchPages != 12 {
		t.Errorf("batch stats = %d calls / %d pages, want 1 / 12", st.BatchAllocs, st.BatchPages)
	}
	sf.FreeBatch(ctx, bufs)
	if st := sf.Stats(); st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d", st.Allocs, st.Frees)
	}
}

func TestAMD64Batch(t *testing.T) {
	m, pm, sf := newAMD64Rig(t)
	ctx := m.Ctx(0)
	pages := allocPages(t, m, 6)
	bufs, err := sf.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bufs {
		if b.KVA() != pm.DirectVA(pages[i]) {
			t.Fatalf("buf %d is not the direct-map view", i)
		}
	}
	sf.FreeBatch(ctx, bufs)
	if c := m.Counters(); c.LocalInv.Load() != 0 || c.RemoteInvIssued.Load() != 0 {
		t.Fatal("amd64 batch must never invalidate")
	}
	st := sf.Stats()
	if st.Allocs != 6 || st.Frees != 6 || st.BatchAllocs != 1 || st.BatchFrees != 1 || st.BatchPages != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedFreeBatchWakesAllSleepers pins the batch wakeup contract:
// one FreeBatch that returns N buffers must be able to satisfy N
// sleepers.  A single Signal would wake one, which can resolve via a
// hash hit without ever re-signalling, stranding the rest forever on
// buffers that sit free on the inactive lists.
func TestShardedFreeBatchWakesAllSleepers(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 4, ShardedConfig{})
	ctx := r.m.Ctx(0)
	heldPages := allocPages(t, r.m, 4)
	held, err := r.sf.AllocBatch(ctx, heldPages, 0)
	if err != nil {
		t.Fatal(err)
	}
	const sleepers = 3
	fresh := allocPages(t, r.m, sleepers)
	done := make(chan error, sleepers)
	for i := 0; i < sleepers; i++ {
		go func(i int) {
			sctx := r.m.Ctx(i % r.m.NumCPUs())
			b, err := r.sf.Alloc(sctx, fresh[i], 0)
			if err == nil {
				r.sf.Free(sctx, b)
			}
			done <- err
		}(i)
	}
	for r.sf.Stats().Sleeps < sleepers {
		time.Sleep(time.Millisecond)
	}
	r.sf.FreeBatch(ctx, held)
	for i := 0; i < sleepers; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("sleeper stranded: FreeBatch woke only %d of %d sleepers", i, sleepers)
		}
	}
}

// TestShardedConcurrentStarvingBatches pins the starvation serializer:
// two batches each under the capacity guard but jointly over it must not
// deadlock holding partial runs (4+4 of an 8-buffer cache, both asleep).
func TestShardedConcurrentStarvingBatches(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 8, ShardedConfig{})
	setA := allocPages(t, r.m, 5)
	setB := allocPages(t, r.m, 5)
	finished := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w, set := range [][]*vm.Page{setA, setB} {
			wg.Add(1)
			go func(w int, set []*vm.Page) {
				defer wg.Done()
				ctx := r.m.Ctx(w % r.m.NumCPUs())
				for i := 0; i < 50; i++ {
					bufs, err := r.sf.AllocBatch(ctx, set, 0) // blocking
					if err != nil {
						t.Error(err)
						return
					}
					for _, b := range bufs {
						if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
							t.Error(err)
							return
						}
					}
					r.sf.FreeBatch(ctx, bufs)
				}
			}(w, set)
		}
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent starving batches deadlocked")
	}
	if s := r.sf.Stats(); s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
}

// TestVectoredLockAndShootdownEconomy enforces the PR's acceptance
// criterion: on contended churn with batch=16, the sharded vectored path
// takes at least 2x fewer lock round trips per page than the equivalent
// single-page sequence, and no more shootdown rounds per page.
func TestVectoredLockAndShootdownEconomy(t *testing.T) {
	const (
		entries = 128
		batch   = 16
		rounds  = 250
	)
	run := func(batched bool) (locksPerPage, sdRoundsPerPage float64) {
		r := newShardedRig(t, arch.XeonMPHTT(), entries, ShardedConfig{})
		pages := allocPages(t, r.m, 4*entries)
		ncpu := r.m.NumCPUs()
		scratch := make([]*vm.Page, batch)
		for i := 0; i < rounds; i++ {
			ctx := r.m.Ctx(i % ncpu)
			for j := 0; j < batch; j++ {
				scratch[j] = pages[(i*batch*3+j*7)%len(pages)]
			}
			if batched {
				bufs, err := r.sf.AllocBatch(ctx, scratch, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range bufs {
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
				}
				r.sf.FreeBatch(ctx, bufs)
			} else {
				bufs := make([]*Buf, 0, batch)
				for _, pg := range scratch {
					b, err := r.sf.Alloc(ctx, pg, 0)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
						t.Fatal(err)
					}
					bufs = append(bufs, b)
				}
				for _, b := range bufs {
					r.sf.Free(ctx, b)
				}
			}
		}
		snap := r.m.SnapshotCounters()
		pagesMoved := float64(rounds * batch)
		return float64(snap.LockAcq) / pagesMoved, float64(snap.RemoteInvIssued) / pagesMoved
	}
	bLocks, bRounds := run(true)
	sLocks, sRounds := run(false)
	t.Logf("locks/page: batch %.3f vs single %.3f; shootdown rounds/page: batch %.4f vs single %.4f",
		bLocks, sLocks, bRounds, sRounds)
	if bLocks*2 > sLocks {
		t.Errorf("vectored path locks/page = %.3f, want <= half of single-page %.3f", bLocks, sLocks)
	}
	if bRounds > sRounds {
		t.Errorf("vectored path shootdown rounds/page = %.4f, want <= single-page %.4f", bRounds, sRounds)
	}
}
