package sfbuf

import (
	"sync"

	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// bufList is the intrusive doubly-linked inactive list of Figure 1: head
// is the least recently used buffer (the replacement victim), tail the
// most recently freed.  A Buf on the list has a reference count of zero
// but may still represent a valid mapping — that latent validity is what
// the mapping cache exploits.
type bufList struct {
	head, tail *Buf
	n          int
}

func (l *bufList) empty() bool { return l.head == nil }

func (l *bufList) pushTail(b *Buf) {
	if b.inList {
		panic("sfbuf: buffer already on inactive list")
	}
	b.inList = true
	b.prev = l.tail
	b.next = nil
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
	l.n++
}

func (l *bufList) remove(b *Buf) {
	if !b.inList {
		panic("sfbuf: removing buffer not on inactive list")
	}
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
	b.inList = false
	l.n--
}

func (l *bufList) popHead() *Buf {
	b := l.head
	if b == nil {
		return nil
	}
	l.remove(b)
	return b
}

// cache is the i386 mapping cache of Section 4.2: "(1) a hash table of
// valid sf_bufs that is indexed by physical page and (2) an inactive list
// of unused sf_bufs that is maintained in least-recently-used order.  An
// sf_buf can appear in both structures simultaneously."
//
// The sparc64 implementation instantiates one cache per virtual cache
// color (Section 4.4), which is why the logic lives in its own type.
// Ablation selectively disables the design choices DESIGN.md section 5
// calls out, so their contribution can be measured in isolation.  All
// ablated variants remain TLB-coherent (the correctness tests run against
// them too); they just pay more.
type Ablation uint8

const (
	// AblateAccessedBit disables the accessed-bit optimization: every
	// reuse of a valid mapping is treated as potentially TLB-cached.
	AblateAccessedBit Ablation = 1 << iota
	// AblateSharing disables shared sf_bufs: every allocation takes a
	// fresh buffer even when the page is already mapped.
	AblateSharing
	// AblateLazyTeardown removes mappings eagerly when their reference
	// count drops to zero, instead of letting valid mappings linger on
	// the inactive list for reuse.
	AblateLazyTeardown
)

// mapCore is the contract between the architecture wrappers (I386,
// Sparc64) and a mapping-cache engine.  Two engines implement it: cache,
// the paper's global-lock design, and shardedCache, the lock-striped
// per-CPU design with batched teardown shootdowns.  Buf.home holds the
// engine that owns a buffer so Free dispatches without knowing which
// engine — or, on sparc64, which color — allocated it.
type mapCore interface {
	alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error)
	free(ctx *smp.Context, b *Buf)
	allocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error)
	freeBatch(ctx *smp.Context, bufs []*Buf)
	allocRun(ctx *smp.Context, pages []*vm.Page, flags Flags) (*Run, error)
	freeRun(ctx *smp.Context, r *Run)
	interruptWakeup()
	snapshotStats() Stats
	resetStats()
	inactiveLen() int
	validMappings() int
	lookupRef(frame uint64) (ref int, mask smp.CPUSet, ok bool)
	setAblate(a Ablation)
}

type cache struct {
	m     *smp.Machine
	pm    *pmap.Pmap
	total int // buffer count, the ceiling on any one batch

	mu       sync.Mutex
	cond     *sync.Cond
	hash     map[uint64]*Buf // physical frame -> valid sf_buf
	inactive bufList
	stats    Stats
	ablate   Ablation
}

func newCache(m *smp.Machine, pm *pmap.Pmap, vas []uint64) *cache {
	c := &cache{
		m:     m,
		pm:    pm,
		total: len(vas),
		hash:  make(map[uint64]*Buf, len(vas)),
	}
	c.cond = sync.NewCond(&c.mu)
	// "The inactive list is filled as follows: a range of kernel virtual
	// addresses is allocated by the ephemeral mapping module; for each
	// virtual page in this range, an sf_buf is created, its virtual
	// address initialized, and inserted into the inactive list."
	for _, va := range vas {
		b := &Buf{kva: va, home: c}
		c.inactive.pushTail(b)
	}
	return c
}

// alloc implements the i386 sf_buf_alloc algorithm of Section 4.2.
//
// Fidelity note: the paper's prose says that when the replaced mapping's
// accessed bit was clear "no TLB invalidations are issued and the cpumask
// is set to include all processors".  Taken literally that is unsound: a
// CPU may still cache a translation from an even earlier life of the
// virtual address (mapped, touched, then replaced as a CPU-private mapping
// of another CPU — no shootdown ever reached it).  Marking the mapping
// valid on such a CPU lets it read through the stale entry.  The
// implementation that actually shipped in FreeBSD retains the cpumask
// across reuse and only clears it when the replaced mapping had been
// accessed; CPUs absent from the mask then purge on first use, exactly as
// on the hash-hit path.  We implement the shipped semantics; the test
// TestProseMissPathIsUnsound demonstrates the corruption the prose version
// would allow, caught by this simulator's honest TLB model.
func (c *cache) alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error) {
	ctx.Charge(ctx.Cost().MapperOp)
	ctx.ChargeLock()

	c.mu.Lock()
	defer c.mu.Unlock()

	for {
		if b, ok := c.hash[page.Frame()]; ok && c.ablate&AblateSharing == 0 {
			// Cache hit: revive from the inactive list if unused,
			// then make the mapping valid for this caller.
			c.stats.Allocs++
			c.stats.Hits++
			if b.ref == 0 {
				c.inactive.remove(b)
			}
			b.ref++
			c.makeValid(ctx, b, flags)
			return b, nil
		}

		if b := c.inactive.popHead(); b != nil {
			c.stats.Allocs++
			c.stats.Misses++
			// "First, if the inactive sf_buf represents a valid
			// mapping ... it must be removed from the hash table."
			if b.page != nil {
				if cur, ok := c.hash[b.page.Frame()]; ok && cur == b {
					delete(c.hash, b.page.Frame())
				}
			}
			// "Second, the sf_buf's physical page pointer is
			// assigned ... the reference count is set to one, and
			// the sf_buf is inserted into the hash table."
			b.page = page
			b.ref = 1
			if c.ablate&AblateSharing == 0 {
				c.hash[page.Frame()] = b
			}
			// "Third, the page table entry for the sf_buf's virtual
			// address is changed to map the given physical page."
			oldValid, oldAccessed := c.pm.KEnter(ctx, b.kva, page)
			// Fourth: if the old mapping was accessed it may be
			// cached by TLBs, so no CPU's view is trustworthy any
			// longer.  If it was never accessed, the previous mask
			// remains exactly right (the accessed-bit optimization).
			if oldAccessed || (c.ablate&AblateAccessedBit != 0 && oldValid) {
				b.cpumask = 0
			}
			c.makeValid(ctx, b, flags)
			return b, nil
		}

		// The inactive list is empty: fail or sleep per the flags.
		if flags&NoWait != 0 {
			c.stats.WouldBlock++
			return nil, ErrWouldBlock
		}
		c.stats.Sleeps++
		c.cond.Wait()
		if flags&Catch != 0 && ctx.Interrupted() {
			c.stats.Interrupted++
			return nil, ErrInterrupted
		}
		// Re-run the whole lookup: while sleeping, the page may have
		// been mapped by another thread (hash hit now) or a buffer
		// may have been freed (miss path now succeeds).
	}
}

// makeValid brings b's mapping into a state the calling CPU may safely
// dereference, and widens it to all CPUs for shared mappings — FreeBSD's
// sf_buf_shootdown, shared by the hit and miss paths.
func (c *cache) makeValid(ctx *smp.Context, b *Buf, flags Flags) {
	vpn := pmap.VPN(b.kva)
	all := c.m.AllCPUs()
	if !b.cpumask.Has(ctx.CPUID()) {
		// This CPU's TLB may hold a stale entry for b.kva from an
		// earlier life of the mapping; purge it before use.
		ctx.InvalidateLocal(vpn)
		b.cpumask = b.cpumask.Set(ctx.CPUID())
	}
	if flags&Private == 0 && b.cpumask != all {
		ctx.Shootdown(all.Minus(b.cpumask), vpn)
		b.cpumask = all
	}
}

// free implements sf_buf_free: "decrements the sf_buf's reference count,
// inserting the sf_buf into the free list if the reference count becomes
// zero.  When an sf_buf is inserted into the free list, a sleeping
// sf_buf_alloc() is awakened."
func (c *cache) free(ctx *smp.Context, b *Buf) {
	ctx.Charge(ctx.Cost().MapperOp)
	ctx.ChargeLock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Frees++
	if b.ref <= 0 {
		panic("sfbuf: free of unreferenced sf_buf")
	}
	b.ref--
	if b.ref == 0 {
		if c.ablate&AblateLazyTeardown != 0 {
			// Eager teardown: the mapping dies with its last
			// reference.  Reading the accessed bit BEFORE removal is
			// what keeps this sound: an accessed mapping may live in
			// TLBs, so no CPU's view survives (the cpumask is
			// zeroed); KRemove then clears the PTE so the next reuse
			// sees an invalid, unaccessed entry.
			if pte, ok := c.pm.Probe(b.kva); ok && pte.Accessed {
				b.cpumask = 0
			}
			c.pm.KRemove(ctx, b.kva)
			if b.page != nil {
				if cur, ok := c.hash[b.page.Frame()]; ok && cur == b {
					delete(c.hash, b.page.Frame())
				}
				b.page = nil
			}
		}
		c.inactive.pushTail(b)
		c.cond.Signal()
	}
}

// allocBatch is the global-lock cache's vectored fallback: exactly one
// alloc per page, in order, so the engine's observable behaviour — and
// every cycle the cost model charges — is byte-identical whether a
// subsystem maps a run through this call or page by page.  The paper's
// design has nothing to amortize here (its bottleneck IS the one lock),
// which is why NativeBatch reports false for it and the converted
// subsystems leave it on their historical per-page paths.
func (c *cache) allocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	if len(pages) > c.total {
		return nil, ErrBatchTooLarge
	}
	bufs := make([]*Buf, 0, len(pages))
	for _, pg := range pages {
		b, err := c.alloc(ctx, pg, flags)
		if err != nil {
			for _, prev := range bufs {
				c.free(ctx, prev)
			}
			return nil, err
		}
		bufs = append(bufs, b)
	}
	c.mu.Lock()
	c.stats.BatchAllocs++
	c.stats.BatchPages += uint64(len(pages))
	c.mu.Unlock()
	return bufs, nil
}

// freeBatch releases each buffer in order — the loop the per-page callers
// would have run themselves.
func (c *cache) freeBatch(ctx *smp.Context, bufs []*Buf) {
	if len(bufs) == 0 {
		return
	}
	for _, b := range bufs {
		c.free(ctx, b)
	}
	c.mu.Lock()
	c.stats.BatchFrees++
	c.mu.Unlock()
}

// allocRun is the global-lock cache's run fallback: the paper's design
// has no contiguous window to offer (its buffers' addresses are fixed at
// boot and scattered by reuse), so a run request degrades to exactly one
// alloc per page, in order — the same loop allocBatch runs, charged and
// counted identically, so figure reproduction on this engine is
// indifferent to whether a subsystem asked for a run, a batch, or pages.
// The returned run reports Contiguous() == false and consumers fall back
// to per-page translation, which is precisely what this engine's
// scattered mappings cost.
func (c *cache) allocRun(ctx *smp.Context, pages []*vm.Page, flags Flags) (*Run, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	if len(pages) > c.total {
		return nil, ErrBatchTooLarge
	}
	bufs := make([]*Buf, 0, len(pages))
	for _, pg := range pages {
		b, err := c.alloc(ctx, pg, flags)
		if err != nil {
			for _, prev := range bufs {
				c.free(ctx, prev)
			}
			return nil, err
		}
		bufs = append(bufs, b)
	}
	c.mu.Lock()
	c.stats.RunAllocs++
	c.stats.RunPages += uint64(len(pages))
	c.mu.Unlock()
	return &Run{pages: append([]*vm.Page(nil), pages...), bufs: bufs, home: c}, nil
}

// freeRun releases a fallback run: one free per page, as the per-page
// callers would have run themselves.
func (c *cache) freeRun(ctx *smp.Context, r *Run) {
	if r.home != c || r.bufs == nil {
		panic("sfbuf: freeRun of a foreign or already-freed run")
	}
	for _, b := range r.bufs {
		c.free(ctx, b)
	}
	c.mu.Lock()
	c.stats.RunFrees++
	c.mu.Unlock()
	r.pages, r.bufs, r.home = nil, nil, nil
}

// interruptWakeup wakes all sleepers so those with a pending signal can
// observe it; it models signal delivery to threads blocked in
// sf_buf_alloc.
func (c *cache) interruptWakeup() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// snapshotStats returns a copy of the statistics.
func (c *cache) snapshotStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *cache) resetStats() {
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
}

// inactiveLen reports the inactive list length; test helper.
func (c *cache) inactiveLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inactive.n
}

// validMappings reports the hash-table size; test helper.
func (c *cache) validMappings() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hash)
}

// setAblate disables the selected design choices; not safe concurrently
// with allocations.
func (c *cache) setAblate(a Ablation) { c.ablate = a }

// lookupRef returns the ref count and cpumask of the buf mapping frame,
// for invariant checks.
func (c *cache) lookupRef(frame uint64) (ref int, mask smp.CPUSet, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.hash[frame]
	if !ok {
		return 0, 0, false
	}
	return b.ref, b.cpumask, true
}
