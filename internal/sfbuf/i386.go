package sfbuf

import (
	"fmt"

	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// DefaultI386Entries is the evaluation's default mapping-cache size:
// "the sf_buf kernel on a Xeon machine uses a cache of 64K entries of
// physical-to-virtual address mappings ... this cache can map a maximum
// footprint of 256 MB" (Section 6.2).
const DefaultI386Entries = 64 * 1024

// I386 is the 32-bit implementation of the ephemeral mapping interface
// (Section 4.2).  Kernel virtual address space is too small to map all of
// physical memory, so a configurable region is reserved at boot and
// managed as a cache of virtual-to-physical mappings indexed by physical
// page.
//
// Two cache engines implement the same interface: the paper's global-lock
// design (NewI386), kept byte-for-byte for figure reproduction and the
// protocol's unit tests, and the sharded per-CPU design with batched
// teardown shootdowns (NewI386Sharded) that removes the single mutex on
// large machines.
type I386 struct {
	c       mapCore
	name    string
	entries int
	base    uint64
}

var _ Mapper = (*I386)(nil)

// reserveVAs carves entries pages of kernel virtual address space out of
// the arena for a mapping cache.
func reserveVAs(arena *kva.Arena, entries int) (uint64, []uint64, error) {
	base, err := arena.Alloc(entries)
	if err != nil {
		return 0, nil, fmt.Errorf("sfbuf: reserving %d pages for the i386 mapping cache: %w", entries, err)
	}
	vas := make([]uint64, entries)
	for i := range vas {
		vas[i] = base + uint64(i)*vm.PageSize
	}
	return base, vas, nil
}

// NewI386 reserves entries pages of kernel virtual address space from the
// arena and builds the paper's global-lock mapping cache over them.
func NewI386(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena, entries int) (*I386, error) {
	if entries <= 0 {
		entries = DefaultI386Entries
	}
	base, vas, err := reserveVAs(arena, entries)
	if err != nil {
		return nil, err
	}
	return &I386{c: newCache(m, pm, vas), name: "sf_buf/i386", entries: entries, base: base}, nil
}

// NewI386Sharded builds the same mapping cache on the sharded engine:
// lock-striped shards, per-CPU clean freelists, and batched teardown
// shootdowns.  cfg zero values derive sensible defaults.
func NewI386Sharded(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena, entries int, cfg ShardedConfig) (*I386, error) {
	if entries <= 0 {
		entries = DefaultI386Entries
	}
	base, vas, err := reserveVAs(arena, entries)
	if err != nil {
		return nil, err
	}
	return &I386{
		c:       newShardedCache(m, pm, arena, vas, cfg),
		name:    "sf_buf/i386-sharded",
		entries: entries,
		base:    base,
	}, nil
}

// Alloc implements sf_buf_alloc for i386.
func (s *I386) Alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error) {
	return s.c.alloc(ctx, page, flags)
}

// Free implements sf_buf_free for i386.
func (s *I386) Free(ctx *smp.Context, b *Buf) {
	s.c.free(ctx, b)
}

// AllocBatch implements the vectored alloc: a native fast path on the
// sharded engine, a semantics-preserving loop on the paper's cache.
func (s *I386) AllocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error) {
	return s.c.allocBatch(ctx, pages, flags)
}

// FreeBatch implements the vectored free.
func (s *I386) FreeBatch(ctx *smp.Context, bufs []*Buf) {
	s.c.freeBatch(ctx, bufs)
}

// AllocRun implements the contiguous-run alloc: a reserved VA window
// populated in one page-table pass on the sharded engine, a scattered
// loop-identical fallback on the paper's cache.
func (s *I386) AllocRun(ctx *smp.Context, pages []*vm.Page, flags Flags) (*Run, error) {
	return s.c.allocRun(ctx, pages, flags)
}

// FreeRun releases a contiguous run as a unit.
func (s *I386) FreeRun(ctx *smp.Context, r *Run) {
	s.c.freeRun(ctx, r)
}

// nativeBatch reports whether the underlying engine amortizes vectored
// requests (the sharded engine does; the global-lock cache loops).
func (s *I386) nativeBatch() bool {
	_, ok := s.c.(*shardedCache)
	return ok
}

// nativeRun reports whether AllocRun returns genuinely contiguous
// windows (the sharded engine's reserved-window path).
func (s *I386) nativeRun() bool {
	_, ok := s.c.(*shardedCache)
	return ok
}

// RunWindowStats reports the sharded engine's run-window pool counters;
// zero for the global-lock engine, which has no window pool.
func (s *I386) RunWindowStats() RunWindowStats {
	if sc, ok := s.c.(*shardedCache); ok {
		return sc.runs.snapshot()
	}
	return RunWindowStats{}
}

// LaunderRunWindows forces a run-window laundering round on the sharded
// engine: every parked (revivable) window's deferred teardown is retired
// in one shootdown flush and the windows become clean stock.  A no-op on
// the global-lock engine.  Tests and benchmarks use it to drain the
// page-set window cache deterministically between phases.
func (s *I386) LaunderRunWindows(ctx *smp.Context) {
	if sc, ok := s.c.(*shardedCache); ok {
		sc.launderRunWindows(ctx)
	}
}

// Name implements Mapper.
func (s *I386) Name() string { return s.name }

// Stats implements Mapper.
func (s *I386) Stats() Stats { return s.c.snapshotStats() }

// ResetStats implements Mapper.
func (s *I386) ResetStats() { s.c.resetStats() }

// Entries returns the cache capacity in mappings.
func (s *I386) Entries() int { return s.entries }

// Shards returns the lock-stripe count: 1 for the global-lock engine.
func (s *I386) Shards() int {
	if sc, ok := s.c.(*shardedCache); ok {
		return sc.numShards()
	}
	return 1
}

// InactiveLen returns the current unreferenced-buffer count (test helper).
func (s *I386) InactiveLen() int { return s.c.inactiveLen() }

// ValidMappings returns the number of live hash-table entries (test
// helper).
func (s *I386) ValidMappings() int { return s.c.validMappings() }

// LookupRef exposes a mapping's reference count and cpumask for invariant
// checks.
func (s *I386) LookupRef(page *vm.Page) (ref int, mask smp.CPUSet, ok bool) {
	return s.c.lookupRef(page.Frame())
}

// InterruptWakeup wakes threads sleeping in Alloc so pending signals can
// be observed; it models signal delivery.
func (s *I386) InterruptWakeup() { s.c.interruptWakeup() }

// Ablate disables the selected design choices for ablation studies; pass 0
// to restore the full design.  Must be called before use, not concurrently
// with allocations.
func (s *I386) Ablate(a Ablation) {
	s.c.setAblate(a)
}
