package sfbuf

import (
	"fmt"
	"sync"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Original is the pre-sf_buf baseline that every evaluation figure
// compares against: "Under the original kernel, the machine independent
// code always allocates a virtual address for creating an ephemeral
// mapping" (Section 6.2).  Each Alloc pays the general-purpose kernel
// virtual-address allocator and installs a fresh translation; each Free
// tears the translation down with an unconditional global TLB invalidation
// (a local invalidation plus, on multiprocessor kernels, a shootdown to
// every other CPU), because the address is about to be recycled for an
// unrelated mapping.
//
// It runs on both architectures — on amd64 it ignores the direct map just
// as FreeBSD's machine-independent code did, which is why the paper's
// Opteron results improve even though that machine needs no mapping cache.
type Original struct {
	m     *smp.Machine
	pm    *pmap.Pmap
	arena *kva.Arena

	mu    sync.Mutex
	stats Stats
}

var _ Mapper = (*Original)(nil)

// NewOriginal builds the baseline mapper drawing addresses from arena.
func NewOriginal(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) *Original {
	return &Original{m: m, pm: pm, arena: arena}
}

// Alloc allocates a fresh kernel virtual address and maps the page at it.
// Flags are accepted for interface compatibility but confer no benefit:
// the original kernel had no notion of a CPU-private ephemeral mapping.
func (o *Original) Alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error) {
	ctx.ChargeLock()
	ctx.Charge(ctx.Cost().KVAAlloc)
	va, err := o.arena.Alloc(1)
	if err != nil {
		if flags&NoWait != 0 {
			o.mu.Lock()
			o.stats.WouldBlock++
			o.mu.Unlock()
			return nil, ErrWouldBlock
		}
		return nil, fmt.Errorf("sfbuf: original mapper out of KVA: %w", err)
	}
	o.pm.KEnter(ctx, va, page)
	// The fresh translation needs no invalidation: the global shootdown
	// performed when this address was last freed guarantees no TLB holds
	// a stale entry for it.
	o.mu.Lock()
	o.stats.Allocs++
	o.stats.Misses++
	o.stats.VAAllocs++
	o.mu.Unlock()
	return &Buf{kva: va, page: page}, nil
}

// Free unmaps the page, performs the global TLB invalidation, and returns
// the virtual address to the allocator.
func (o *Original) Free(ctx *smp.Context, b *Buf) {
	ctx.ChargeLock()
	o.pm.KRemove(ctx, b.kva)
	ctx.InvalidateGlobal(pmap.VPN(b.kva))
	ctx.Charge(ctx.Cost().KVAFree)
	o.arena.Free(b.kva)
	b.page = nil
	o.mu.Lock()
	o.stats.Frees++
	o.mu.Unlock()
}

// AllocBatch maps a run of pages at consecutive virtual addresses with a
// single address allocation, like pmap_qenter over a kmem_alloc_nofault
// range.  The per-page PTE store performs a local invlpg (the historical
// pmap_kenter behaviour); no remote traffic happens at map time because
// the range's previous unmapping already shot it down globally.
//
// Calibration note: batching applies only on 64-bit architectures.  The
// amd64 pmap (written in 2003) performed ranged invalidations for bulk
// unmappings, while the older i386 pmap invalidated page by page; the
// paper's measured pipe and disk-dump ratios (Xeon +129%..168% vs Opteron
// +22%..37%) are only reproducible with exactly that split, so the i386
// baseline routes batch requests through the per-page path.
func (o *Original) AllocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	if o.m.Plat.Arch == arch.I386 {
		bufs := make([]*Buf, 0, len(pages))
		for _, pg := range pages {
			b, err := o.Alloc(ctx, pg, flags)
			if err != nil {
				for _, prev := range bufs {
					o.Free(ctx, prev)
				}
				return nil, err
			}
			bufs = append(bufs, b)
		}
		o.mu.Lock()
		o.stats.BatchAllocs++
		o.stats.BatchPages += uint64(len(pages))
		o.mu.Unlock()
		return bufs, nil
	}
	ctx.ChargeLock()
	ctx.Charge(ctx.Cost().KVAAlloc)
	base, err := o.arena.Alloc(len(pages))
	if err != nil {
		if flags&NoWait != 0 {
			o.mu.Lock()
			o.stats.WouldBlock++
			o.mu.Unlock()
			return nil, ErrWouldBlock
		}
		return nil, fmt.Errorf("sfbuf: original mapper out of KVA: %w", err)
	}
	bufs := make([]*Buf, len(pages))
	for i, pg := range pages {
		va := base + uint64(i)*vm.PageSize
		o.pm.KEnter(ctx, va, pg)
		ctx.InvalidateLocal(pmap.VPN(va))
		bufs[i] = &Buf{kva: va, page: pg}
	}
	o.mu.Lock()
	o.stats.Allocs += uint64(len(pages))
	o.stats.Misses += uint64(len(pages))
	o.stats.VAAllocs++
	o.stats.BatchAllocs++
	o.stats.BatchPages += uint64(len(pages))
	o.mu.Unlock()
	return bufs, nil
}

// FreeBatch unmaps the run with per-page local invalidations and ONE
// ranged remote shootdown — pmap_qremove followed by a ranged
// invalidation.  The batch must have come from AllocBatch.
func (o *Original) FreeBatch(ctx *smp.Context, bufs []*Buf) {
	if len(bufs) == 0 {
		return
	}
	if o.m.Plat.Arch == arch.I386 {
		for _, b := range bufs {
			o.Free(ctx, b)
		}
		o.mu.Lock()
		o.stats.BatchFrees++
		o.mu.Unlock()
		return
	}
	ctx.ChargeLock()
	vpns := make([]uint64, len(bufs))
	for i, b := range bufs {
		o.pm.KRemove(ctx, b.kva)
		ctx.InvalidateLocal(pmap.VPN(b.kva))
		vpns[i] = pmap.VPN(b.kva)
		b.page = nil
	}
	ctx.ShootdownRange(o.m.AllCPUs(), vpns)
	ctx.Charge(ctx.Cost().KVAFree)
	o.arena.Free(bufs[0].kva)
	o.mu.Lock()
	o.stats.Frees += uint64(len(bufs))
	o.stats.BatchFrees++
	o.mu.Unlock()
}

// AllocRun rides the batch machinery: on 64-bit pmaps AllocBatch already
// allocates one consecutive virtual range and maps it with pmap_qenter,
// which IS a contiguous run, so the result is promoted to one; the i386
// baseline's per-page loop yields a scattered run.  Batch counters
// increment alongside the run counters, because here a run literally is
// a batch.
func (o *Original) AllocRun(ctx *smp.Context, pages []*vm.Page, flags Flags) (*Run, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	bufs, err := o.AllocBatch(ctx, pages, flags)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.stats.RunAllocs++
	o.stats.RunPages += uint64(len(pages))
	o.mu.Unlock()
	run := &Run{pages: append([]*vm.Page(nil), pages...), bufs: bufs}
	if o.m.Plat.Arch != arch.I386 {
		run.contig = true
		run.base = bufs[0].KVA()
	}
	return run, nil
}

// FreeRun unmaps the run through FreeBatch: per-page global invalidations
// on i386, one ranged shootdown for the whole range on 64-bit pmaps.
func (o *Original) FreeRun(ctx *smp.Context, r *Run) {
	if r.bufs == nil {
		panic("sfbuf: freeRun of a foreign or already-freed run")
	}
	o.FreeBatch(ctx, r.bufs)
	o.mu.Lock()
	o.stats.RunFrees++
	o.mu.Unlock()
	r.pages, r.bufs = nil, nil
}

// nativeBatch: pmap_qenter semantics — one virtual-address allocation and
// one ranged shootdown per run — are the original kernel's whole batching
// story (on 64-bit pmaps; the i386 pmap loops, see AllocBatch).
func (o *Original) nativeBatch() bool { return true }

// nativeRun: the 64-bit pmap_qenter range is contiguous by construction.
// The predicate is engine-static like nativeBatch; kernels gate their
// run usage additionally by policy (the evaluation baselines never take
// the run path on Auto — see Kernel.UseRuns).
func (o *Original) nativeRun() bool { return o.m.Plat.Arch != arch.I386 }

var _ nativeBatcher = (*Original)(nil)

// Name implements Mapper.
func (o *Original) Name() string { return "original" }

// Stats implements Mapper.
func (o *Original) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// ResetStats implements Mapper.
func (o *Original) ResetStats() {
	o.mu.Lock()
	o.stats = Stats{}
	o.mu.Unlock()
}
