package sfbuf

import (
	"fmt"
	"sync/atomic"

	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Sparc64 is the hybrid implementation sketched in Section 4.4.  The
// architecture has a 64-bit address space and therefore a direct map, but
// its virtually-indexed, virtually-tagged cache requires that all
// simultaneous mappings of a physical page share a cache color (the low
// bits of the virtual page number), or caching must be disabled.
//
// The implementation therefore checks color compatibility:
//
//   - If the page has no user-level mapping, or its user mapping's color
//     matches the direct map's color for that page, the permanent direct
//     mapping is used — the amd64 fast path.
//   - Otherwise a virtual address of the required color is taken from a
//     per-color mapping cache managed exactly like the i386 implementation.
type Sparc64 struct {
	m         *smp.Machine
	pm        *pmap.Pmap
	numColors int
	colors    []mapCore

	directAllocs atomic.Uint64
	directFrees  atomic.Uint64

	// Batch statistics live at the hybrid level: one AllocBatch call is
	// one batch regardless of how many per-color sub-batches (or
	// direct-map casts) serve it, so the per-color engines' own batch
	// counters are ignored by Stats.
	batchAllocs atomic.Uint64
	batchFrees  atomic.Uint64
	batchPages  atomic.Uint64

	runAllocs atomic.Uint64
	runFrees  atomic.Uint64
	runPages  atomic.Uint64
}

var _ Mapper = (*Sparc64)(nil)

// NewSparc64 builds the hybrid mapper with entriesPerColor cache slots for
// each of numColors virtual cache colors, using the paper's global-lock
// cache per color.  numColors must be a power of two (it is a bitmask over
// virtual page numbers).
func NewSparc64(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena, numColors, entriesPerColor int) (*Sparc64, error) {
	return newSparc64(m, pm, arena, numColors, entriesPerColor, func(vas []uint64) mapCore {
		return newCache(m, pm, vas)
	})
}

// NewSparc64Sharded builds the hybrid mapper with one sharded cache per
// color — the per-color striping the paper already mandates, multiplied by
// the lock striping and batched shootdowns of the sharded engine.
func NewSparc64Sharded(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena, numColors, entriesPerColor int, cfg ShardedConfig) (*Sparc64, error) {
	return newSparc64(m, pm, arena, numColors, entriesPerColor, func(vas []uint64) mapCore {
		return newShardedCache(m, pm, arena, vas, cfg)
	})
}

func newSparc64(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena, numColors, entriesPerColor int, mk func(vas []uint64) mapCore) (*Sparc64, error) {
	if numColors <= 0 || numColors&(numColors-1) != 0 {
		return nil, fmt.Errorf("sfbuf: numColors %d is not a power of two", numColors)
	}
	if entriesPerColor <= 0 {
		entriesPerColor = 1024
	}
	base, err := arena.Alloc(numColors * entriesPerColor)
	if err != nil {
		return nil, fmt.Errorf("sfbuf: reserving sparc64 color caches: %w", err)
	}
	// The reserved region is color-striped: virtual page i has color
	// i % numColors, so each cache gets every numColors-th page, keeping
	// each cache's addresses all of one color.
	s := &Sparc64{m: m, pm: pm, numColors: numColors, colors: make([]mapCore, numColors)}
	baseVPN := pmap.VPN(base)
	for color := 0; color < numColors; color++ {
		var vas []uint64
		for i := 0; i < entriesPerColor; i++ {
			vpn := baseVPN + uint64(i*numColors)
			// Align the stripe so vpn's color matches.
			offset := (uint64(color) - vpn) & uint64(numColors-1)
			vas = append(vas, (vpn+offset)<<vm.PageShift)
		}
		s.colors[color] = mk(vas)
	}
	return s, nil
}

// pageColor is the color the direct map would give the page: the direct
// map is linear in physical addresses, so the color is determined by the
// frame number.
func (s *Sparc64) pageColor(page *vm.Page) int {
	return int(pmap.VPN(pmap.DirectMapBase+uint64(page.PA())) & uint64(s.numColors-1))
}

// Alloc returns a direct-map buffer when colors permit, otherwise a
// color-compatible cached mapping.
func (s *Sparc64) Alloc(ctx *smp.Context, page *vm.Page, flags Flags) (*Buf, error) {
	want := page.UserColor
	if want < 0 || want == s.pageColor(page) {
		// "The permanent, one-to-one, virtual-to-physical mapping is
		// used when its color is compatible with the color of the
		// user-level address space mappings for the physical page."
		s.directAllocs.Add(1)
		return &Buf{kva: s.pm.DirectVA(page), page: page}, nil
	}
	// "Otherwise ... a virtual address of a compatible color is
	// allocated from a free list and managed through a dictionary as in
	// the i386 implementation."
	return s.colors[want%s.numColors].alloc(ctx, page, flags)
}

// Free releases the mapping; direct-map buffers need no action.
func (s *Sparc64) Free(ctx *smp.Context, b *Buf) {
	if b.home == nil {
		s.directFrees.Add(1)
		return
	}
	b.home.free(ctx, b)
}

// AllocBatch implements the vectored alloc for the hybrid: direct-map
// pages resolve inline (casts, as on amd64), and the cache-bound pages
// are split into one sub-batch per required color, each handed to that
// color's engine — so per-color striping multiplies with the sharded
// engine's per-shard batching when the sharded cores are configured.
func (s *Sparc64) AllocBatch(ctx *smp.Context, pages []*vm.Page, flags Flags) ([]*Buf, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	s.batchAllocs.Add(1)
	s.batchPages.Add(uint64(len(pages)))
	bufs := make([]*Buf, len(pages))
	byColor := make([][]int, s.numColors)
	for i, pg := range pages {
		want := pg.UserColor
		if want < 0 || want == s.pageColor(pg) {
			s.directAllocs.Add(1)
			bufs[i] = &Buf{kva: s.pm.DirectVA(pg), page: pg}
			continue
		}
		c := want % s.numColors
		byColor[c] = append(byColor[c], i)
	}
	for color, idxs := range byColor {
		if len(idxs) == 0 {
			continue
		}
		sub := make([]*vm.Page, len(idxs))
		for j, idx := range idxs {
			sub[j] = pages[idx]
		}
		got, err := s.colors[color].allocBatch(ctx, sub, flags)
		if err != nil {
			// Unwind the colors (and direct casts) already resolved.
			var undo []*Buf
			for _, b := range bufs {
				if b != nil {
					undo = append(undo, b)
				}
			}
			s.FreeBatch(ctx, undo)
			return nil, err
		}
		for j, idx := range idxs {
			bufs[idx] = got[j]
		}
	}
	return bufs, nil
}

// FreeBatch releases a vectored batch, grouping the buffers by owning
// color engine so each engine sees its share as one batch.
func (s *Sparc64) FreeBatch(ctx *smp.Context, bufs []*Buf) {
	if len(bufs) == 0 {
		return
	}
	s.batchFrees.Add(1)
	type group struct {
		home mapCore
		bufs []*Buf
	}
	var groups []group
	pos := make(map[mapCore]int)
	for _, b := range bufs {
		if b.home == nil {
			s.directFrees.Add(1)
			continue
		}
		gi, ok := pos[b.home]
		if !ok {
			gi = len(groups)
			pos[b.home] = gi
			groups = append(groups, group{home: b.home})
		}
		groups[gi].bufs = append(groups[gi].bufs, b)
	}
	for _, g := range groups {
		g.home.freeBatch(ctx, g.bufs)
	}
}

// AllocRun implements the contiguous-run alloc for the hybrid.  A run is
// color-compatible when every page may use the direct map (no user
// mapping, or a user color matching the direct map's) AND the frames are
// physically contiguous: the direct map then provides the window for
// free, exactly as on amd64.  Any other run must split per required
// color, and per-color addresses are scattered by construction (the
// reserved region stripes colors across consecutive virtual pages), so
// the split degrades to a scattered run over the per-color batch
// machinery — the honest cost of a virtually-indexed cache.
func (s *Sparc64) AllocRun(ctx *smp.Context, pages []*vm.Page, flags Flags) (*Run, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	direct := true
	for i, pg := range pages {
		if want := pg.UserColor; want >= 0 && want != s.pageColor(pg) {
			direct = false
			break
		}
		if i > 0 && pg.Frame() != pages[0].Frame()+uint64(i) {
			direct = false
			break
		}
	}
	if direct {
		s.directAllocs.Add(uint64(len(pages)))
		s.runAllocs.Add(1)
		s.runPages.Add(uint64(len(pages)))
		return &Run{
			pages:  append([]*vm.Page(nil), pages...),
			base:   s.pm.DirectVA(pages[0]),
			contig: true,
		}, nil
	}
	bufs, err := s.AllocBatch(ctx, pages, flags)
	if err != nil {
		return nil, err
	}
	s.runAllocs.Add(1)
	s.runPages.Add(uint64(len(pages)))
	return &Run{pages: append([]*vm.Page(nil), pages...), bufs: bufs}, nil
}

// FreeRun releases a hybrid run: nothing for a direct window, one
// grouped FreeBatch for a color split.
func (s *Sparc64) FreeRun(ctx *smp.Context, r *Run) {
	s.runFrees.Add(1)
	if r.bufs != nil {
		s.FreeBatch(ctx, r.bufs)
	} else {
		s.directFrees.Add(uint64(len(r.pages)))
	}
	r.pages, r.bufs = nil, nil
}

// nativeBatch reports whether the color engines amortize vectored
// requests; the direct-map share always does.
func (s *Sparc64) nativeBatch() bool {
	_, ok := s.colors[0].(*shardedCache)
	return ok
}

// nativeRun mirrors nativeBatch: with sharded cores the hybrid's
// color-compatible runs ride the direct map and its splits batch
// natively; with the paper's global cores runs must stay off the figure
// engines entirely.
func (s *Sparc64) nativeRun() bool {
	_, ok := s.colors[0].(*shardedCache)
	return ok
}

// Name implements Mapper.
func (s *Sparc64) Name() string { return "sf_buf/sparc64" }

// Stats implements Mapper, aggregating across colors; direct-map
// allocations count as hits.
func (s *Sparc64) Stats() Stats {
	var t Stats
	for _, c := range s.colors {
		cs := c.snapshotStats()
		t.Allocs += cs.Allocs
		t.Frees += cs.Frees
		t.Hits += cs.Hits
		t.Misses += cs.Misses
		t.Sleeps += cs.Sleeps
		t.Interrupted += cs.Interrupted
		t.WouldBlock += cs.WouldBlock
		t.FreelistAllocs += cs.FreelistAllocs
		t.Reclaims += cs.Reclaims
		t.Reclaimed += cs.Reclaimed
	}
	t.BatchAllocs = s.batchAllocs.Load()
	t.BatchFrees = s.batchFrees.Load()
	t.BatchPages = s.batchPages.Load()
	t.RunAllocs = s.runAllocs.Load()
	t.RunFrees = s.runFrees.Load()
	t.RunPages = s.runPages.Load()
	d := s.directAllocs.Load()
	t.Allocs += d
	t.Hits += d
	t.Frees += s.directFrees.Load()
	return t
}

// ResetStats implements Mapper.
func (s *Sparc64) ResetStats() {
	for _, c := range s.colors {
		c.resetStats()
	}
	s.directAllocs.Store(0)
	s.directFrees.Store(0)
	s.batchAllocs.Store(0)
	s.batchFrees.Store(0)
	s.batchPages.Store(0)
	s.runAllocs.Store(0)
	s.runFrees.Store(0)
	s.runPages.Store(0)
}

// NumColors returns the configured color count.
func (s *Sparc64) NumColors() int { return s.numColors }

// DirectAllocs returns how many allocations took the direct-map fast path.
func (s *Sparc64) DirectAllocs() uint64 { return s.directAllocs.Load() }
