package sfbuf

// Native fuzz target for reservations + defragmentation by migration.  A
// byte string decodes into a trace of raw frame churn, mapping traffic
// (singles and runs), wired contiguous holds, AllocContig attempts and
// forced migration passes over a small buddy pool — and the physcheck
// layer is the oracle, run after EVERY step: the structural free-list
// audit, the temporal reservation invariant, and (across each migration
// pass) the byte oracle over every page the trace owns.  Every live
// mapping is also re-read through the honest TLB after each migration, so
// an evacuation that leaves a stale translation dereferenceable fails as
// wrong bytes.
//
// The seed corpus lives in testdata/fuzz/FuzzMigrate; digits '0'-'7'
// decode to opcodes 0-7, so the short seeds are readable op lists.  The
// starvation seed (built by starvationSeed, also checked in) fills the
// pool, scatters frees to ~70% occupancy with zero intact spans, proves
// AllocContig starves, then migrates and re-allocates — the acceptance
// trace for defrag-by-migration, replayed deterministically by
// TestMigrateStarvationSeed.

import (
	"errors"
	"testing"

	"sfbuf/internal/vm"
	"sfbuf/internal/vm/physcheck"
)

const (
	fuzzMigFrames  = 512
	fuzzMigEntries = 16
)

// migPoolPage is one raw page the trace owns, with its model byte and the
// number of live mapping references the harness itself holds on it.
type migPoolPage struct {
	pg   *vm.Page
	val  byte
	refs int
}

// migTraceSummary reports what a trace exercised, for seed-replay tests
// that pin specific economies.
type migTraceSummary struct {
	contigFails, contigOks int
	stats                  MigrationStats
}

func runMigrateTrace(t *testing.T, data []byte) migTraceSummary {
	return runMigrateTraceTiered(t, data, 0)
}

// runMigrateTraceTiered is runMigrateTrace over an optionally tiered
// pool: fastPer > 0 splits the buddy frames with SetTierSplit, and every
// op-7 migration pass is followed by a tier-move pass over everything
// the trace owns — destination alternating with the op's argument — each
// under its own byte oracle and live-mapping re-read.  fastPer == 0 is
// byte-for-byte the untiered trace FuzzMigrate has always run.
func runMigrateTraceTiered(t *testing.T, data []byte, fastPer int) migTraceSummary {
	r := newMigrateRig(t, fuzzMigFrames, fuzzMigEntries,
		ShardedConfig{ReclaimBatch: 3, PerCPUFree: 2})
	if fastPer > 0 {
		r.m.Phys.SetTierSplit(fastPer)
	}
	ncpu := r.m.NumCPUs()
	check := physcheck.NewChecker(r.m.Phys)

	var pool []*migPoolPage
	type migMap struct {
		p   *migPoolPage
		b   *Buf
		kva uint64
		cpu int
	}
	var maps []migMap
	type migRunH struct {
		r     *Run
		items []*migPoolPage
	}
	var runsLive []migRunH
	var held [][]*vm.Page
	sum := migTraceSummary{}
	nextVal := byte(1)

	verifyAll := func(step int) {
		for _, m := range maps {
			got, err := r.pm.Translate(r.m.Ctx(m.cpu), m.kva, false)
			if err != nil {
				t.Fatalf("step %d: translate: %v", step, err)
			}
			if got.Data()[0] != m.p.val {
				t.Fatalf("step %d: mapping reads %#x, want %#x — stale translation survived migration",
					step, got.Data()[0], m.p.val)
			}
		}
		for _, rh := range runsLive {
			for j, p := range rh.items {
				got, err := r.pm.Translate(r.m.Ctx(0), rh.r.KVA(j), false)
				if err != nil {
					t.Fatalf("step %d: run translate: %v", step, err)
				}
				if got.Data()[0] != p.val {
					t.Fatalf("step %d: run slot %d reads %#x, want %#x",
						step, j, got.Data()[0], p.val)
				}
			}
		}
	}
	audit := func(step int) {
		if err := physcheck.Audit(r.m.Phys); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := check.Step(r.m.Phys); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}

	for i := 0; i+1 < len(data); i += 2 {
		op, arg := int(data[i]%8), int(data[i+1])
		cpu := (arg >> 2) % ncpu
		switch op {
		case 0: // raw alloc burst: churn fodder and migration victims
			n := 1 + arg%8
			for j := 0; j < n; j++ {
				pg, err := r.m.Phys.Alloc()
				if err != nil {
					break // pool exhausted: the burst just ends
				}
				pg.Data()[0] = nextVal
				pool = append(pool, &migPoolPage{pg: pg, val: nextVal})
				nextVal++
				if nextVal == 0 {
					nextVal = 1
				}
			}
		case 1: // raw free: first unreferenced page at or after the pick
			if len(pool) == 0 {
				continue
			}
			pick := arg % len(pool)
			for j := 0; j < len(pool); j++ {
				k := (pick + j) % len(pool)
				if pool[k].refs == 0 {
					r.m.Phys.Free(pool[k].pg)
					pool = append(pool[:k], pool[k+1:]...)
					break
				}
			}
		case 2: // map a pool page and write a fresh byte through it
			if len(pool) == 0 {
				continue
			}
			p := pool[arg%len(pool)]
			b, err := r.sf.Alloc(r.m.Ctx(cpu), p.pg, NoWait)
			if errors.Is(err, ErrWouldBlock) {
				continue
			}
			if err != nil {
				t.Fatalf("alloc: %v", err)
			}
			got, err := r.pm.Translate(r.m.Ctx(cpu), b.KVA(), true)
			if err != nil {
				t.Fatalf("write translate: %v", err)
			}
			v := byte(arg) | 1
			got.Data()[0] = v
			p.val = v
			p.refs++
			maps = append(maps, migMap{p: p, b: b, kva: b.KVA(), cpu: cpu})
		case 3: // verify and unmap
			if len(maps) == 0 {
				continue
			}
			pick := arg % len(maps)
			m := maps[pick]
			got, err := r.pm.Translate(r.m.Ctx(m.cpu), m.kva, false)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			if got.Data()[0] != m.p.val {
				t.Fatalf("mapping reads %#x, want %#x before free", got.Data()[0], m.p.val)
			}
			r.sf.Free(r.m.Ctx(m.cpu), m.b)
			m.p.refs--
			maps = append(maps[:pick], maps[pick+1:]...)
		case 4: // run over consecutive pool entries (frames arbitrary)
			n := 2 + (arg>>4)%3
			if len(pool) < n {
				continue
			}
			start := arg % (len(pool) - n + 1)
			items := append([]*migPoolPage(nil), pool[start:start+n]...)
			pages := make([]*vm.Page, n)
			for j, p := range items {
				pages[j] = p.pg
			}
			rn, err := r.sf.AllocRun(r.m.Ctx(cpu), pages, NoWait)
			if errors.Is(err, ErrWouldBlock) || errors.Is(err, ErrBatchTooLarge) {
				continue
			}
			if err != nil {
				t.Fatalf("allocRun: %v", err)
			}
			for _, p := range items {
				p.refs++
			}
			runsLive = append(runsLive, migRunH{r: rn, items: items})
		case 5: // free a run
			if len(runsLive) == 0 {
				continue
			}
			pick := arg % len(runsLive)
			rh := runsLive[pick]
			for _, p := range rh.items {
				p.refs--
			}
			r.sf.FreeRun(r.m.Ctx(cpu), rh.r)
			runsLive = append(runsLive[:pick], runsLive[pick+1:]...)
		case 6: // wired contiguous hold, or release the oldest one
			if arg&1 == 0 && len(held) < 3 {
				pages, err := r.m.Phys.AllocContig(16, 16)
				if errors.Is(err, vm.ErrNoContig) || errors.Is(err, vm.ErrNoMemory) {
					sum.contigFails++
					continue
				}
				if err != nil {
					t.Fatalf("AllocContig: %v", err)
				}
				sum.contigOks++
				for _, pg := range pages {
					pg.Wire()
				}
				held = append(held, pages)
			} else if len(held) > 0 {
				for _, pg := range held[0] {
					pg.Unwire()
					r.m.Phys.Free(pg)
				}
				held = held[1:]
			}
		case 7: // migration pass, byte-oracle checked
			var owned []*vm.Page
			for _, p := range pool {
				owned = append(owned, p.pg)
			}
			for _, ext := range held {
				owned = append(owned, ext...)
			}
			oracle := physcheck.NewOracle(owned)
			r.mig.MigrateBlocks(r.m.Ctx(cpu), 1+arg%3)
			if err := oracle.Check(r.m.Phys); err != nil {
				t.Fatalf("step %d: %v", i/2, err)
			}
			verifyAll(i / 2)
			if fastPer > 0 {
				// Tier-move pass over the same ownership set.  The fast
				// tier is a fraction of the pool, so promoting everything
				// the trace owns exercises the destination-full early exit
				// as often as it succeeds — and demoting (odd args) frees
				// the boundary back up.
				tierOracle := physcheck.NewOracle(owned)
				r.mig.MoveToTier(r.m.Ctx(cpu), owned, arg%2, 0)
				if err := tierOracle.Check(r.m.Phys); err != nil {
					t.Fatalf("step %d (tier move): %v", i/2, err)
				}
				verifyAll(i / 2)
			}
		}
		audit(i / 2)
	}

	// Drain everything, then the ledger and the pool must balance.
	for _, m := range maps {
		r.sf.Free(r.m.Ctx(m.cpu), m.b)
	}
	for _, rh := range runsLive {
		r.sf.FreeRun(r.m.Ctx(0), rh.r)
	}
	for _, ext := range held {
		for _, pg := range ext {
			pg.Unwire()
			r.m.Phys.Free(pg)
		}
	}
	for _, p := range pool {
		r.m.Phys.Free(p.pg)
	}
	audit(len(data))
	if st := r.sf.Stats(); st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after drain", st.Allocs, st.Frees)
	}
	if free := r.m.Phys.FreeFrames(); free != fuzzMigFrames {
		t.Fatalf("free frames = %d, want %d after drain — migration leaked or double-freed a frame",
			free, fuzzMigFrames)
	}
	sum.stats = r.mig.Stats()
	return sum
}

// starvationSeed builds the checked-in acceptance trace: fill the pool,
// scatter frees down to ~70% occupancy (no intact span anywhere), prove
// AllocContig starves, migrate, hold a recovered extent, release and
// re-verify.
func starvationSeed() []byte {
	var b []byte
	op := func(o, arg byte) { b = append(b, '0'+o, arg) }
	for i := 0; i < 64; i++ {
		op(0, 0xff) // burst-allocate 8 raw pages until the pool is full
	}
	// Mapping churn over the full pool: map, dirty, unmap.  The unmapped
	// entries stay cached inactive — some of their pages are freed raw by
	// the sweep below (stale entries at free frames, the evictStale path)
	// and some survive to be remapped in place by the migration passes.
	for i := 0; i < 6; i++ {
		op(2, byte(i*67+33)|1)
		op(3, 0x00)
	}
	// Band-sweep frees: seven consecutive frees then one survivor, over
	// three spans' worth of frames.  Leaves ~71% occupancy with a survivor
	// every eighth frame — no aligned order-4 block anywhere, the scatter
	// that defeats eager buddy coalescing.
	for k := 0; k < 21; k++ {
		for j := 0; j < 7; j++ {
			op(1, byte(64+k))
		}
	}
	op(6, 0xfe) // contiguous hold attempt: starves (recorded)
	op(7, 0x02) // migrate: evacuate the sparse spans' survivors
	op(7, 0x02)
	op(6, 0xfe) // hold a recovered extent: succeeds (recorded)
	op(7, 0x02) // one more pass around the wired hold
	op(6, 0x01) // release the oldest hold
	return b
}

func FuzzMigrate(f *testing.F) {
	f.Add([]byte("0a0b2a2b3a3b1a1b"))                 // churn, map, unmap, free
	f.Add([]byte("0\xff1a1b1c7a6b6a7b"))              // burst, scatter, migrate, contig hold
	f.Add([]byte("0d4a4b5a7c5b4c7a"))                 // runs parked across migrations
	f.Add([]byte("0\xff0\xff2a2b7a3a7b1a1b1c7c6a6b")) // mixed traffic with repeated passes
	f.Add([]byte("6a7a6a7a6b6b"))                     // wired holds fencing migration
	f.Add(starvationSeed())
	f.Fuzz(func(t *testing.T, data []byte) {
		runMigrateTrace(t, data)
	})
}

// TestMigrateStarvationSeed replays the checked-in starvation seed
// deterministically and pins its economy: the ~70%-occupancy scatter
// starves at least one AllocContig, migration then moves pages and
// coalesces spans, and a later AllocContig succeeds — the on-demand
// recovery story end to end, under every physcheck oracle.
func TestMigrateStarvationSeed(t *testing.T) {
	sum := runMigrateTrace(t, starvationSeed())
	if sum.contigFails == 0 {
		t.Fatal("the starvation trace never starved an AllocContig")
	}
	if sum.contigOks == 0 {
		t.Fatal("the starvation trace never recovered a contiguous extent after migration")
	}
	if sum.stats.PagesMoved == 0 || sum.stats.BlocksFreed == 0 {
		t.Fatalf("stats moved=%d freed=%d: migration did not do the recovery",
			sum.stats.PagesMoved, sum.stats.BlocksFreed)
	}
}
