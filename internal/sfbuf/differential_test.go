package sfbuf

// Cross-engine differential harness.  The three engines — the sharded
// per-CPU cache, the paper's global-lock cache, and the original kernel —
// implement the same Table-1 + vectored contract on very different
// machinery.  This harness replays identical seeded operation traces
// (single and batched allocs, shared and private mappings, frees in
// arbitrary order, writes through live mappings, multi-CPU placement)
// against all of them on every evaluation platform, and checks the one
// observable that matters: every read through a live Buf's kernel virtual
// address, performed through the honest TLB model, must see the mapped
// frame's current bytes.  An engine that leaks a stale translation, maps
// the wrong frame, or unmaps too early diverges from the shared model —
// and therefore from the other engines — immediately.

import (
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// diffOp is one step of a trace.  Traces are generated once per seed and
// replayed verbatim against every engine.
type diffOp struct {
	kind    int // 0 alloc, 1 allocBatch, 2 free, 3 freeBatch, 4 write, 5 verify, 6 allocRun, 7 freeRun, 8 idle, 9 defrag, 10 phys churn, 11 tier move
	page    int // first page index (alloc kinds)
	count   int // batch/run length
	cpu     int
	private bool
	pick    int  // which live handle/batch/run (free/write/verify kinds)
	val     byte // written value
}

const (
	diffPages   = 96
	diffEntries = 128 // > diffMaxLive: traces never exhaust any engine
	diffMaxLive = 64
	diffOps     = 500
)

// genTrace builds a deterministic trace for one platform.  Live-set
// bookkeeping here mirrors the replay exactly, so free/write picks always
// resolve to the same logical handle on every engine.
func genTrace(seed int64, ncpu int) []diffOp {
	return genTraceBias(seed, ncpu, 12)
}

// genTraceBias is genTrace with a tunable revive bias: the percentage of
// steps that re-allocate a RECENTLY FREED run extent verbatim — the
// page-set window cache's hit pattern (alloc-run / free-run / re-alloc
// same extent), which on the sharded engine resurrects parked windows
// while the other engines must observe identical mapping semantics
// through their cold paths.
func genTraceBias(seed int64, ncpu, reviveBias int) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []diffOp
	liveSingles := 0
	type extent struct{ start, count int }
	var batchSizes []int    // batches tracked as units
	var runExtents []extent // live runs with their extents
	var freed []extent      // recently freed run extents, oldest first
	for len(ops) < diffOps {
		live := liveSingles
		for _, n := range batchSizes {
			live += n
		}
		for _, e := range runExtents {
			live += e.count
		}
		if len(freed) > 0 && rng.Intn(100) < reviveBias {
			// Re-allocate a recently freed extent verbatim.
			e := freed[rng.Intn(len(freed))]
			if live+e.count < diffMaxLive {
				ops = append(ops, diffOp{kind: 6, page: e.start, count: e.count,
					cpu: rng.Intn(ncpu), private: rng.Intn(3) == 0})
				runExtents = append(runExtents, e)
				continue
			}
		}
		r := rng.Intn(100)
		switch {
		case r < 25 && live < diffMaxLive:
			ops = append(ops, diffOp{kind: 0, page: rng.Intn(diffPages),
				cpu: rng.Intn(ncpu), private: rng.Intn(3) == 0})
			liveSingles++
		case r < 42 && live+8 < diffMaxLive:
			n := 1 + rng.Intn(8)
			start := rng.Intn(diffPages - n) // no wraparound: distinct pages
			ops = append(ops, diffOp{kind: 1, page: start, count: n,
				cpu: rng.Intn(ncpu), private: rng.Intn(3) == 0})
			batchSizes = append(batchSizes, n)
		case r < 55 && live+8 < diffMaxLive:
			n := 1 + rng.Intn(8)
			start := rng.Intn(diffPages - n)
			ops = append(ops, diffOp{kind: 6, page: start, count: n,
				cpu: rng.Intn(ncpu), private: rng.Intn(3) == 0})
			runExtents = append(runExtents, extent{start: start, count: n})
		case r < 68 && liveSingles > 0:
			ops = append(ops, diffOp{kind: 2, pick: rng.Intn(liveSingles)})
			liveSingles--
		case r < 78 && len(batchSizes) > 0:
			pick := rng.Intn(len(batchSizes))
			ops = append(ops, diffOp{kind: 3, pick: pick})
			batchSizes = append(batchSizes[:pick], batchSizes[pick+1:]...)
		case r < 86 && len(runExtents) > 0:
			pick := rng.Intn(len(runExtents))
			ops = append(ops, diffOp{kind: 7, pick: pick})
			// Remember the freed extent for the revive mix, bounded to
			// the depth a parked window could plausibly survive.
			freed = append(freed, runExtents[pick])
			if len(freed) > 8 {
				freed = freed[1:]
			}
			runExtents = append(runExtents[:pick], runExtents[pick+1:]...)
		case r < 93 && live > 0:
			ops = append(ops, diffOp{kind: 4, pick: rng.Intn(live),
				val: byte(rng.Intn(256)), cpu: rng.Intn(ncpu)})
		case live > 0:
			ops = append(ops, diffOp{kind: 5, pick: rng.Intn(live),
				cpu: rng.Intn(ncpu)})
		}
	}
	return ops
}

// diffEngine is one engine instance with its own machine, pages and
// address space.
type diffEngine struct {
	name  string
	m     *smp.Machine
	pm    *pmap.Pmap
	sf    Mapper
	pages []*vm.Page
	// mig, when non-nil (the buddy-pool builder sets it where NewMigrator
	// accepts the engine), serves kind-9 forced defragmentation passes.
	// Engines that cannot migrate replay kind 9 as a no-op — and must
	// still agree on every observable byte.
	mig *Migrator
}

// diffHandle is one live mapping during replay.  Run members have no Buf
// of their own — only their address within the run, which differs between
// a window-backed run and a scattered fallback, but resolves per engine.
type diffHandle struct {
	b       *Buf
	kva     uint64
	page    int
	cpu     int
	private bool
}

// diffRun is one live run and its member handles.
type diffRun struct {
	r  *Run
	hs []diffHandle
}

func newDiffEngines(t *testing.T, plat arch.Platform) []*diffEngine {
	return newDiffEnginesTopo(t, plat, 1)
}

// newDiffEnginesTopo is newDiffEngines on a sockets-package machine: the
// physical pool is homing-partitioned, the machine gets the topology, the
// arena gets per-socket regions and the sharded engine runs socket-homed.
// sockets <= 1 is byte-for-byte the flat build.
func newDiffEnginesTopo(t *testing.T, plat arch.Platform, sockets int) []*diffEngine {
	t.Helper()
	build := func(name string, mk func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error)) *diffEngine {
		m := smp.NewMachine(plat, diffPages+600, true)
		pm := pmap.New(m)
		base, size := uint64(pmap.KVABaseI386), uint64(pmap.KVASizeI386)
		if plat.Arch != arch.I386 {
			base, size = pmap.KVABaseAMD64, pmap.KVASizeAMD64
		}
		arena := kva.NewArena(base, size)
		if sockets > 1 {
			m.Phys.HomeSockets(sockets)
			m.SetTopology(sockets)
			arena.SetRegions(sockets)
		}
		sf, err := mk(m, pm, arena)
		if err != nil {
			t.Fatal(err)
		}
		pages := make([]*vm.Page, diffPages)
		for i := range pages {
			pg, err := m.Phys.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			pg.Data()[0] = byte(i)
			// Mix direct-map-compatible and cache-bound colors so the
			// sparc64 hybrid exercises both halves; no effect elsewhere.
			pg.UserColor = i % 4
			if i%4 == 3 {
				pg.UserColor = -1
			}
			pages[i] = pg
		}
		return &diffEngine{name: name, m: m, pm: pm, sf: sf, pages: pages}
	}
	shardCfg := ShardedConfig{ReclaimBatch: 8, PerCPUFree: 4, Homed: sockets > 1}
	engines := []*diffEngine{
		build("sharded", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			switch plat.Arch {
			case arch.AMD64:
				return NewAMD64(m, pm), nil
			case arch.SPARC64:
				return NewSparc64Sharded(m, pm, arena, 2, diffEntries, shardCfg)
			}
			return NewI386Sharded(m, pm, arena, diffEntries, shardCfg)
		}),
		build("global", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			switch plat.Arch {
			case arch.AMD64:
				return NewAMD64(m, pm), nil
			case arch.SPARC64:
				return NewSparc64(m, pm, arena, 2, diffEntries)
			}
			return NewI386(m, pm, arena, diffEntries)
		}),
		build("original", func(m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (Mapper, error) {
			return NewOriginal(m, pm, arena), nil
		}),
	}
	return engines
}

// replayTrace runs a trace against one engine, checking every read
// against the shared byte model.  It returns the per-page bytes at trace
// end so the caller can compare engines against each other directly.
func replayTrace(t *testing.T, e *diffEngine, ops []diffOp) [diffPages]byte {
	t.Helper()
	var model [diffPages]byte
	for i := range model {
		model[i] = byte(i)
	}
	var singles []diffHandle
	var batches [][]diffHandle
	var runs []diffRun
	var churn []*vm.Page // kind-10 raw frames: never mapped, only fragment the pool

	// liveAt resolves a flat pick over singles, then batch members, then
	// run members, in the same order the generator counted them.
	liveAt := func(pick int) *diffHandle {
		if pick < len(singles) {
			return &singles[pick]
		}
		pick -= len(singles)
		for bi := range batches {
			if pick < len(batches[bi]) {
				return &batches[bi][pick]
			}
			pick -= len(batches[bi])
		}
		for ri := range runs {
			if pick < len(runs[ri].hs) {
				return &runs[ri].hs[pick]
			}
			pick -= len(runs[ri].hs)
		}
		return nil
	}
	// readCPU picks a CPU allowed to dereference the handle: private
	// mappings belong to their allocating CPU, shared ones to anyone.
	readCPU := func(h *diffHandle, want int) int {
		if h.private {
			return h.cpu
		}
		return want
	}

	verify := func(step int, h *diffHandle, cpu int) {
		ctx := e.m.Ctx(cpu)
		got, err := e.pm.Translate(ctx, h.kva, false)
		if err != nil {
			t.Fatalf("%s step %d: translate page %d: %v", e.name, step, h.page, err)
		}
		if got.Data()[0] != model[h.page] {
			t.Fatalf("%s step %d: page %d reads %#x, want %#x — stale or misrouted mapping",
				e.name, step, h.page, got.Data()[0], model[h.page])
		}
	}

	for step, op := range ops {
		switch op.kind {
		case 0:
			flags := Flags(0)
			if op.private {
				flags = Private
			}
			b, err := e.sf.Alloc(e.m.Ctx(op.cpu), e.pages[op.page], flags)
			if err != nil {
				t.Fatalf("%s step %d: alloc page %d: %v", e.name, step, op.page, err)
			}
			if b.Page() != e.pages[op.page] {
				t.Fatalf("%s step %d: alloc returned wrong page", e.name, step)
			}
			h := diffHandle{b: b, kva: b.KVA(), page: op.page, cpu: op.cpu, private: op.private}
			singles = append(singles, h)
			verify(step, &h, op.cpu)
		case 1:
			flags := Flags(0)
			if op.private {
				flags = Private
			}
			run := e.pages[op.page : op.page+op.count]
			bufs, err := e.sf.AllocBatch(e.m.Ctx(op.cpu), run, flags)
			if err != nil {
				t.Fatalf("%s step %d: allocBatch [%d,%d): %v",
					e.name, step, op.page, op.page+op.count, err)
			}
			hs := make([]diffHandle, len(bufs))
			for j, b := range bufs {
				if b.Page() != run[j] {
					t.Fatalf("%s step %d: batch buf %d maps wrong page", e.name, step, j)
				}
				hs[j] = diffHandle{b: b, kva: b.KVA(), page: op.page + j, cpu: op.cpu, private: op.private}
				verify(step, &hs[j], op.cpu)
			}
			batches = append(batches, hs)
		case 2:
			h := singles[op.pick]
			verify(step, &h, readCPU(&h, h.cpu))
			e.sf.Free(e.m.Ctx(h.cpu), h.b)
			singles = append(singles[:op.pick], singles[op.pick+1:]...)
		case 3:
			hs := batches[op.pick]
			bufs := make([]*Buf, len(hs))
			for j := range hs {
				verify(step, &hs[j], hs[j].cpu)
				bufs[j] = hs[j].b
			}
			e.sf.FreeBatch(e.m.Ctx(hs[0].cpu), bufs)
			batches = append(batches[:op.pick], batches[op.pick+1:]...)
		case 4:
			h := liveAt(op.pick)
			if h == nil {
				continue
			}
			cpu := readCPU(h, op.cpu)
			ctx := e.m.Ctx(cpu)
			got, err := e.pm.Translate(ctx, h.kva, true)
			if err != nil {
				t.Fatalf("%s step %d: write translate: %v", e.name, step, err)
			}
			got.Data()[0] = op.val
			model[h.page] = op.val
			verify(step, h, cpu)
		case 5:
			h := liveAt(op.pick)
			if h == nil {
				continue
			}
			verify(step, h, readCPU(h, op.cpu))
		case 6:
			flags := Flags(0)
			if op.private {
				flags = Private
			}
			pageRun := e.pages[op.page : op.page+op.count]
			r, err := e.sf.AllocRun(e.m.Ctx(op.cpu), pageRun, flags)
			if err != nil {
				t.Fatalf("%s step %d: allocRun [%d,%d): %v",
					e.name, step, op.page, op.page+op.count, err)
			}
			if r.Len() != op.count {
				t.Fatalf("%s step %d: run length %d, want %d", e.name, step, r.Len(), op.count)
			}
			hs := make([]diffHandle, op.count)
			for j := 0; j < op.count; j++ {
				hs[j] = diffHandle{kva: r.KVA(j), page: op.page + j, cpu: op.cpu, private: op.private}
				verify(step, &hs[j], op.cpu)
			}
			runs = append(runs, diffRun{r: r, hs: hs})
		case 7:
			dr := runs[op.pick]
			for j := range dr.hs {
				verify(step, &dr.hs[j], dr.hs[j].cpu)
			}
			e.sf.FreeRun(e.m.Ctx(dr.hs[0].cpu), dr.r)
			runs = append(runs[:op.pick], runs[op.pick+1:]...)
		case 8:
			// Idle gap: runs whatever idle work the engine registered (the
			// background daemon where supported, nothing elsewhere).  Live
			// mappings must read true straight through it.
			e.m.Idle(op.cpu, 20000)
		case 9:
			// Forced defragmentation pass.  Only the sharded engine over a
			// buddy pool migrates; everyone else treats the step as a no-op.
			// Whatever the pass moves — including this trace's own pages,
			// parked windows and inactive entries — every later read must
			// still see true bytes, or the migrating engine diverges.
			if e.mig != nil {
				e.mig.MigrateBlocks(e.m.Ctx(op.cpu), op.count)
			}
		case 11:
			// Tier move: migrate a band of the trace's pages into the tier
			// the generator picked (val 0 fast, 1 slow).  Only an engine
			// with a Migrator over a TIERED pool moves anything —
			// MoveToTier declines untiered pools — so the global-lock
			// cache, the original kernel AND every untiered build replay
			// the step as a no-op, and all of them must still agree on
			// every observable byte.
			if e.mig != nil {
				end := op.page + op.count
				if end > diffPages {
					end = diffPages
				}
				e.mig.MoveToTier(e.m.Ctx(op.cpu), e.pages[op.page:end], int(op.val)%2, 0)
			}
		case 10:
			// Deterministic physical churn: raw frames allocated and freed
			// outside the mapping layer, fragmenting the pool so kind-9
			// passes have real evacuation work.  The frames are never
			// mapped, so they add nothing to the observable model.
			if op.val == 0 {
				for j := 0; j < op.count; j++ {
					pg, err := e.m.Phys.Alloc()
					if err != nil {
						t.Fatalf("%s step %d: churn alloc: %v", e.name, step, err)
					}
					churn = append(churn, pg)
				}
			} else if len(churn) > 0 {
				pick := op.pick % len(churn)
				e.m.Phys.Free(churn[pick])
				churn = append(churn[:pick], churn[pick+1:]...)
			}
		}
	}

	// Drain: every surviving mapping must still read true, then release
	// everything and check the ledger balances.
	for i := range singles {
		verify(len(ops), &singles[i], singles[i].cpu)
		e.sf.Free(e.m.Ctx(singles[i].cpu), singles[i].b)
	}
	for _, hs := range batches {
		bufs := make([]*Buf, len(hs))
		for j := range hs {
			verify(len(ops), &hs[j], hs[j].cpu)
			bufs[j] = hs[j].b
		}
		e.sf.FreeBatch(e.m.Ctx(hs[0].cpu), bufs)
	}
	for _, dr := range runs {
		for j := range dr.hs {
			verify(len(ops), &dr.hs[j], dr.hs[j].cpu)
		}
		e.sf.FreeRun(e.m.Ctx(dr.hs[0].cpu), dr.r)
	}
	if st := e.sf.Stats(); st.Allocs != st.Frees {
		t.Fatalf("%s: allocs %d != frees %d after drain", e.name, st.Allocs, st.Frees)
	}
	for _, pg := range churn {
		e.m.Phys.Free(pg)
	}

	// Final ground truth read outside any ephemeral mapping.
	var final [diffPages]byte
	for i, pg := range e.pages {
		final[i] = pg.Data()[0]
		if final[i] != model[i] {
			t.Fatalf("%s: page %d backing store %#x, model %#x — a write went to the wrong frame",
				e.name, i, final[i], model[i])
		}
	}
	return final
}

// TestDifferentialEngines replays seeded traces against all three engines
// on all five evaluation platforms (plus the sparc64 hybrid's machine)
// and requires identical observable mapping semantics everywhere.
func TestDifferentialEngines(t *testing.T) {
	plats := append(arch.Evaluation(), arch.Sparc64MP())
	for _, plat := range plats {
		plat := plat
		t.Run(plat.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				ops := genTrace(seed, plat.NumCPUs)
				engines := newDiffEngines(t, plat)
				var ref [diffPages]byte
				for i, e := range engines {
					got := replayTrace(t, e, ops)
					if i == 0 {
						ref = got
						continue
					}
					if got != ref {
						t.Fatalf("seed %d: engine %s final bytes diverge from %s",
							seed, e.name, engines[0].name)
					}
				}
			}
		})
	}
}

// TestDifferentialReviveHeavy replays traces biased hard toward the
// alloc-run / free-run / re-alloc-same-extent pattern: the sharded
// engine serves the repeats from its page-set window cache (the test
// asserts revives actually fired) while the global-lock cache and the
// original kernel take their cold paths — and all three must agree on
// every observable byte, proving a revived window is semantically
// indistinguishable from a fresh install.
func TestDifferentialReviveHeavy(t *testing.T) {
	plat := arch.XeonMPHTT()
	for seed := int64(21); seed <= 23; seed++ {
		ops := genTraceBias(seed, plat.NumCPUs, 35)
		engines := newDiffEngines(t, plat)
		var ref [diffPages]byte
		for i, e := range engines {
			got := replayTrace(t, e, ops)
			if i == 0 {
				ref = got
				if st := e.sf.Stats(); st.RunRevives == 0 {
					t.Errorf("seed %d: the revive-heavy trace never revived a window on %s", seed, e.name)
				}
				continue
			}
			if got != ref {
				t.Fatalf("seed %d: engine %s final bytes diverge from %s",
					seed, e.name, engines[0].name)
			}
		}
	}
}

// genTraceACKClocked builds a trace shaped like the serving path's
// ACK-clocked send pipeline: windows (runs) are allocated ahead of
// transmission and freed OLDEST-FIRST as cumulative acknowledgments
// cover them, with the pipeline depth bounded — allocation and FIFO
// release continuously interleave, instead of the uniform-random free
// order of genTrace.  A slice of steps re-allocates the extent that was
// just acknowledged (the next request for the same popular document),
// and writes land through live mappings mid-pipeline the way checksum
// passes touch in-flight windows.
func genTraceACKClocked(seed int64, ncpu int) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []diffOp
	liveSingles := 0
	type extent struct{ start, count int }
	var runExtents []extent // the in-flight FIFO, oldest first
	var freed []extent      // acknowledged extents, for the re-request mix
	const pipeDepth = 6     // windows in flight per pseudo-connection
	live := func() int {
		n := liveSingles
		for _, e := range runExtents {
			n += e.count
		}
		return n
	}
	for len(ops) < diffOps {
		r := rng.Intn(100)
		switch {
		case r < 40 && len(runExtents) < pipeDepth && live()+8 < diffMaxLive:
			// Stage the next window.  A quarter of the time it is a
			// re-request of an acknowledged extent, hitting the page-set
			// window cache on the sharded engine.
			var e extent
			if len(freed) > 0 && rng.Intn(4) == 0 {
				e = freed[rng.Intn(len(freed))]
			} else {
				e.count = 2 + rng.Intn(7)
				e.start = rng.Intn(diffPages - e.count)
			}
			ops = append(ops, diffOp{kind: 6, page: e.start, count: e.count,
				cpu: rng.Intn(ncpu), private: rng.Intn(5) == 0})
			runExtents = append(runExtents, e)
		case r < 70 && len(runExtents) > 0:
			// Cumulative ACK: the OLDEST window is always the one released.
			ops = append(ops, diffOp{kind: 7, pick: 0})
			freed = append(freed, runExtents[0])
			if len(freed) > 8 {
				freed = freed[1:]
			}
			runExtents = runExtents[1:]
		case r < 78 && live() < diffMaxLive:
			// Control-plane singles (headers, metadata) around the stream.
			ops = append(ops, diffOp{kind: 0, page: rng.Intn(diffPages),
				cpu: rng.Intn(ncpu), private: rng.Intn(3) == 0})
			liveSingles++
		case r < 84 && liveSingles > 0:
			ops = append(ops, diffOp{kind: 2, pick: rng.Intn(liveSingles)})
			liveSingles--
		case r < 93 && live() > 0:
			// Checksum-style write through an in-flight mapping.
			ops = append(ops, diffOp{kind: 4, pick: rng.Intn(live()),
				val: byte(rng.Intn(256)), cpu: rng.Intn(ncpu)})
		case live() > 0:
			ops = append(ops, diffOp{kind: 5, pick: rng.Intn(live()),
				cpu: rng.Intn(ncpu)})
		}
	}
	return ops
}

// TestDifferentialACKClocked replays the ACK-clocked serving trace —
// FIFO window release interleaved with look-ahead allocation, plus
// same-extent re-requests — against all three engines.  The ordering is
// exactly what the virtual-internet serve loop generates, and it is the
// ordering that exposes release-order bugs (a window freed while a newer
// one is still installing) that uniform-random frees rarely line up.
func TestDifferentialACKClocked(t *testing.T) {
	plat := arch.XeonMPHTT()
	for seed := int64(31); seed <= 34; seed++ {
		ops := genTraceACKClocked(seed, plat.NumCPUs)
		engines := newDiffEngines(t, plat)
		var ref [diffPages]byte
		for i, e := range engines {
			got := replayTrace(t, e, ops)
			if i == 0 {
				ref = got
				continue
			}
			if got != ref {
				t.Fatalf("seed %d: engine %s final bytes diverge from %s",
					seed, e.name, engines[0].name)
			}
		}
	}
}

// insertIdleGaps deterministically interleaves idle ops (kind 8) into a
// trace: one gap after every `every` real operations, rotating the idling
// CPU.  Idle ops touch no live-set bookkeeping, so the generator's pick
// accounting stays valid.
func insertIdleGaps(ops []diffOp, every, ncpu int) []diffOp {
	out := make([]diffOp, 0, len(ops)+len(ops)/every)
	for i, op := range ops {
		out = append(out, op)
		if (i+1)%every == 0 {
			out = append(out, diffOp{kind: 8, cpu: (i / every) % ncpu})
		}
	}
	return out
}

// TestDifferentialIdleGaps replays revive-biased traces with idle gaps
// interleaved, the background daemon registered on every engine that
// supports one (the sharded cache; NewDaemon declines the global-lock and
// original engines).  The daemon asynchronously launders parked windows
// and refills freelists during the gaps — and must never change a single
// observable byte: a trace with a daemon racing it must read exactly like
// the same trace replayed cold on the other engines.
func TestDifferentialIdleGaps(t *testing.T) {
	plat := arch.XeonMPHTT()
	for seed := int64(41); seed <= 43; seed++ {
		ops := insertIdleGaps(genTraceBias(seed, plat.NumCPUs, 35), 13, plat.NumCPUs)
		engines := newDiffEngines(t, plat)
		var ref [diffPages]byte
		for i, e := range engines {
			// A short age bound so the gaps genuinely launder windows out
			// from under the revive-heavy trace; a watermark so the gaps
			// also run refill rounds against the trace's inactive lists.
			if d := NewDaemon(e.sf, DaemonConfig{Watermark: 2, LaunderAge: 5000}); d != nil {
				e.m.RegisterIdleWork(d.Run)
			}
			got := replayTrace(t, e, ops)
			if i == 0 {
				ref = got
				ws := e.sf.(*I386).RunWindowStats()
				if ws.AgedWindows == 0 {
					t.Errorf("seed %d: idle gaps never aged a window out on %s — the trace is not exercising the daemon", seed, e.name)
				}
				continue
			}
			if got != ref {
				t.Fatalf("seed %d: engine %s final bytes diverge from %s",
					seed, e.name, engines[0].name)
			}
		}
	}
}

// TestDifferentialVectoredForcedLoop additionally replays a batch-heavy
// trace against the global-lock cache directly through its loop fallback,
// pinning the claim that batched and per-page requests are
// indistinguishable to it.
func TestDifferentialVectoredForcedLoop(t *testing.T) {
	for seed := int64(7); seed <= 9; seed++ {
		plat := arch.XeonMPHTT()
		ops := genTrace(seed, plat.NumCPUs)
		engines := newDiffEngines(t, plat)
		var ref [diffPages]byte
		for i, e := range engines {
			got := replayTrace(t, e, ops)
			if i == 0 {
				ref = got
			} else if got != ref {
				t.Fatalf("seed %d: %s diverged", seed, e.name)
			}
		}
	}
}

// TestDifferentialTopology replays seeded traces across socket
// topologies.  At Sockets=1 the topology-aware build must be
// byte-identical to the flat harness — the homing machinery's existence
// alone may not perturb a single observable.  At Sockets=2 all three
// engines run on a 2-package machine (the sharded cache socket-homed,
// the others merely topology-charged) and must agree with each other AND
// with the flat replay: cross-package cost asymmetry changes cycle
// totals, never mapping semantics.
func TestDifferentialTopology(t *testing.T) {
	flatPlat := arch.XeonMPHTT()
	numaPlat := arch.XeonNUMA(2, 2)
	if numaPlat.NumCPUs != flatPlat.NumCPUs {
		t.Fatalf("platform CPU counts diverge (%d vs %d): traces are not comparable",
			numaPlat.NumCPUs, flatPlat.NumCPUs)
	}
	for seed := int64(51); seed <= 53; seed++ {
		ops := genTrace(seed, flatPlat.NumCPUs)

		var ref [diffPages]byte
		for i, e := range newDiffEngines(t, flatPlat) {
			got := replayTrace(t, e, ops)
			if i == 0 {
				ref = got
			} else if got != ref {
				t.Fatalf("seed %d: flat engine %s diverged", seed, e.name)
			}
		}
		for _, e := range newDiffEnginesTopo(t, flatPlat, 1) {
			if got := replayTrace(t, e, ops); got != ref {
				t.Fatalf("seed %d: Sockets=1 build of %s diverges from the flat harness", seed, e.name)
			}
		}
		for _, e := range newDiffEnginesTopo(t, numaPlat, 2) {
			if got := replayTrace(t, e, ops); got != ref {
				t.Fatalf("seed %d: 2-socket %s diverges from the flat replay", seed, e.name)
			}
		}
	}
}
