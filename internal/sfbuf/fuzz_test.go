package sfbuf

// Native Go fuzz target for the vectored and contiguous-run paths of the
// sharded engine.  A byte string decodes into a trace of single, batched,
// and run operations over a deliberately tiny cache (constant reclaim and
// window-launder pressure), and the stale-mapping invariant is the
// oracle: every read through a live mapping's kernel virtual address,
// performed through the honest TLB model, must see the mapped frame's
// current bytes.  Allocation uses NoWait throughout — the trace runs on
// one goroutine, so a sleeping alloc would deadlock; a WouldBlock outcome
// is simply a no-op step.
//
// The seed corpus lives in testdata/fuzz/FuzzBatchOps; digits '0'-'7'
// conveniently decode to opcodes 0-7, so the seeds are readable op lists.

import (
	"errors"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/vm"
)

const (
	fuzzEntries = 12
	fuzzPages   = 36
)

func FuzzBatchOps(f *testing.F) {
	// Each opcode consumes two bytes: op = b[i]%8, arg = b[i+1].
	f.Add([]byte("0a0b1c4d5e2a3b"))                                // allocs, a batch, write, verify, frees
	f.Add([]byte("1a1b1c1d3a3b3c"))                                // batch churn beyond the cache size
	f.Add([]byte("0\x80" + "0\x81" + "4\xff" + "5\x00" + "2\x00")) // private flags, write/verify
	f.Add([]byte("1\xf0" + "1\xf1" + "1\xf2" + "1\xf3" + "1\xf4")) // NoWait exhaustion + rollback
	f.Add([]byte("0123456789abcdef0123456789abcdef"))
	f.Add([]byte("6a6b4c5d7a7b"))                                   // runs, write/verify through windows, frees
	f.Add([]byte("6\xf06\xf16\xf27\x007\x016\x337\x00"))            // run churn: window recycling + NoWait exhaustion
	f.Add([]byte("6a1b0c7a3a2a6d5e7b"))                             // runs, batches and singles interleaved
	f.Add([]byte("6a707a6a4a5a7a6a7a6b6a7a7a6a2a7a"))               // revive-heavy: free/re-alloc the same extent, with writes between lives
	f.Add([]byte("0a0q0b2a0c2b6e2c7a0d6f0e7a2d6a4b5c7a1f2e3a6b7a")) // fragmentation-heavy: interleaved single alloc/free churn punctuated by runs and batches
	f.Fuzz(func(t *testing.T, data []byte) {
		runBatchOpsTrace(t, data)
	})
}

// fuzzHandle mirrors diffHandle for the fuzz replay; run members carry no
// Buf, only their window address.
type fuzzHandle struct {
	b       *Buf
	kva     uint64
	page    int
	cpu     int
	private bool
}

// fuzzRun is one live contiguous run and its per-page handles.
type fuzzRun struct {
	r  *Run
	hs []fuzzHandle
}

func runBatchOpsTrace(t *testing.T, data []byte) {
	r := newShardedRig(t, arch.XeonMPHTT(), fuzzEntries,
		ShardedConfig{ReclaimBatch: 3, PerCPUFree: 2})
	var model [fuzzPages]byte
	vmPages := make([]*vm.Page, fuzzPages)
	for i := range vmPages {
		pg, err := r.m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(i)
		model[i] = byte(i)
		vmPages[i] = pg
	}
	ncpu := r.m.NumCPUs()

	var singles []fuzzHandle
	var batches [][]fuzzHandle
	var runs []fuzzRun
	// Allocs counts only pages successfully mapped — the unified ledger
	// rule this fuzz target originally forced by catching the asymmetry
	// between singles (which used to count failed NoWait attempts) and
	// batches (which never did).  Failed attempts of every kind count
	// only in WouldBlock; track them so that can be audited exactly.
	failedAllocs := uint64(0)
	live := func() int {
		n := len(singles)
		for _, b := range batches {
			n += len(b)
		}
		for _, fr := range runs {
			n += len(fr.hs)
		}
		return n
	}
	liveAt := func(pick int) *fuzzHandle {
		if pick < len(singles) {
			return &singles[pick]
		}
		pick -= len(singles)
		for bi := range batches {
			if pick < len(batches[bi]) {
				return &batches[bi][pick]
			}
			pick -= len(batches[bi])
		}
		for ri := range runs {
			if pick < len(runs[ri].hs) {
				return &runs[ri].hs[pick]
			}
			pick -= len(runs[ri].hs)
		}
		return nil
	}
	verify := func(h *fuzzHandle, cpu int) {
		if h.private {
			cpu = h.cpu
		}
		ctx := r.m.Ctx(cpu)
		got, err := r.pm.Translate(ctx, h.kva, false)
		if err != nil {
			t.Fatalf("translate page %d: %v", h.page, err)
		}
		if got.Data()[0] != model[h.page] {
			t.Fatalf("page %d reads %#x, want %#x — stale mapping dereferenced",
				h.page, got.Data()[0], model[h.page])
		}
	}

	for i := 0; i+1 < len(data); i += 2 {
		op, arg := int(data[i]%8), int(data[i+1])
		cpu := (arg >> 2) % ncpu
		switch op {
		case 0: // single alloc, NoWait
			flags := NoWait
			if arg&0x80 != 0 {
				flags |= Private
			}
			pi := arg % fuzzPages
			b, err := r.sf.Alloc(r.m.Ctx(cpu), vmPages[pi], flags)
			if errors.Is(err, ErrWouldBlock) {
				failedAllocs++
				continue
			}
			if err != nil {
				t.Fatalf("alloc: %v", err)
			}
			h := fuzzHandle{b: b, kva: b.KVA(), page: pi, cpu: cpu, private: arg&0x80 != 0}
			singles = append(singles, h)
			verify(&h, cpu)
		case 1: // batch alloc, NoWait
			n := 1 + (arg>>4)%8
			start := arg % (fuzzPages - n)
			flags := NoWait
			if arg&0x01 != 0 {
				flags |= Private
			}
			run := vmPages[start : start+n]
			bufs, err := r.sf.AllocBatch(r.m.Ctx(cpu), run, flags)
			if errors.Is(err, ErrWouldBlock) || errors.Is(err, ErrBatchTooLarge) {
				failedAllocs++
				continue
			}
			if err != nil {
				t.Fatalf("allocBatch: %v", err)
			}
			hs := make([]fuzzHandle, n)
			for j, b := range bufs {
				if b.Page() != run[j] {
					t.Fatalf("batch buf %d maps wrong page", j)
				}
				hs[j] = fuzzHandle{b: b, kva: b.KVA(), page: start + j, cpu: cpu, private: arg&0x01 != 0}
				verify(&hs[j], cpu)
			}
			batches = append(batches, hs)
		case 2: // free one single
			if len(singles) == 0 {
				continue
			}
			pick := arg % len(singles)
			h := singles[pick]
			verify(&h, h.cpu)
			r.sf.Free(r.m.Ctx(h.cpu), h.b)
			singles = append(singles[:pick], singles[pick+1:]...)
		case 3: // free one batch
			if len(batches) == 0 {
				continue
			}
			pick := arg % len(batches)
			hs := batches[pick]
			bufs := make([]*Buf, len(hs))
			for j := range hs {
				verify(&hs[j], hs[j].cpu)
				bufs[j] = hs[j].b
			}
			r.sf.FreeBatch(r.m.Ctx(hs[0].cpu), bufs)
			batches = append(batches[:pick], batches[pick+1:]...)
		case 4: // write through a live mapping
			if live() == 0 {
				continue
			}
			h := liveAt(arg % live())
			wcpu := cpu
			if h.private {
				wcpu = h.cpu
			}
			ctx := r.m.Ctx(wcpu)
			got, err := r.pm.Translate(ctx, h.kva, true)
			if err != nil {
				t.Fatalf("write translate: %v", err)
			}
			v := byte(arg) | 1
			got.Data()[0] = v
			model[h.page] = v
			verify(h, wcpu)
		case 5: // verify a live mapping
			if live() == 0 {
				continue
			}
			verify(liveAt(arg%live()), cpu)
		case 6: // contiguous run alloc, NoWait
			n := 1 + (arg>>4)%8
			start := arg % (fuzzPages - n)
			flags := NoWait
			if arg&0x01 != 0 {
				flags |= Private
			}
			rn, err := r.sf.AllocRun(r.m.Ctx(cpu), vmPages[start:start+n], flags)
			if errors.Is(err, ErrWouldBlock) || errors.Is(err, ErrBatchTooLarge) {
				failedAllocs++
				continue
			}
			if err != nil {
				t.Fatalf("allocRun: %v", err)
			}
			if !rn.Contiguous() {
				t.Fatal("sharded engine returned a non-contiguous run")
			}
			hs := make([]fuzzHandle, n)
			for j := 0; j < n; j++ {
				hs[j] = fuzzHandle{kva: rn.KVA(j), page: start + j, cpu: cpu, private: arg&0x01 != 0}
				verify(&hs[j], cpu)
			}
			runs = append(runs, fuzzRun{r: rn, hs: hs})
		case 7: // free one run
			if len(runs) == 0 {
				continue
			}
			pick := arg % len(runs)
			fr := runs[pick]
			for j := range fr.hs {
				verify(&fr.hs[j], fr.hs[j].cpu)
			}
			r.sf.FreeRun(r.m.Ctx(fr.hs[0].cpu), fr.r)
			runs = append(runs[:pick], runs[pick+1:]...)
		}
	}

	// Drain and audit the ledger: Allocs counts exactly the successfully
	// mapped pages, so after the drain it balances Frees with no
	// failed-attempt skew, and every failed attempt — single, batch, or
	// run — appears in WouldBlock and nowhere else.
	for i := range singles {
		verify(&singles[i], singles[i].cpu)
		r.sf.Free(r.m.Ctx(singles[i].cpu), singles[i].b)
	}
	for _, hs := range batches {
		bufs := make([]*Buf, len(hs))
		for j := range hs {
			verify(&hs[j], hs[j].cpu)
			bufs[j] = hs[j].b
		}
		r.sf.FreeBatch(r.m.Ctx(hs[0].cpu), bufs)
	}
	for _, fr := range runs {
		for j := range fr.hs {
			verify(&fr.hs[j], fr.hs[j].cpu)
		}
		r.sf.FreeRun(r.m.Ctx(fr.hs[0].cpu), fr.r)
	}
	st := r.sf.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after drain", st.Allocs, st.Frees)
	}
	if st.WouldBlock != failedAllocs {
		t.Fatalf("WouldBlock %d != failed allocation attempts %d",
			st.WouldBlock, failedAllocs)
	}
	if got := r.sf.InactiveLen(); got != fuzzEntries {
		t.Fatalf("inactive = %d, want %d after drain", got, fuzzEntries)
	}
	for i, pg := range vmPages {
		if pg.Data()[0] != model[i] {
			t.Fatalf("page %d backing store %#x, model %#x — write hit the wrong frame",
				i, pg.Data()[0], model[i])
		}
	}
}

// TestAllocLedgerRegression replays the exact input with which
// FuzzBatchOps caught the PR-2 ledger asymmetry: a large batch fills the
// cache, a single NoWait Alloc fails, and under the old rule the failed
// single skewed Stats.Allocs while a failed batch would not have.  Under
// the unified rule (Allocs counts only successfully mapped pages) the
// trace's ledger balances, which runBatchOpsTrace now asserts directly.
func TestAllocLedgerRegression(t *testing.T) {
	runBatchOpsTrace(t, []byte("1a1C0700000000"))
}

// TestAllocLedgerSymmetry pins the rule on every failure shape against
// the sharded engine: failed NoWait singles, batches, and runs count in
// WouldBlock only.
func TestAllocLedgerSymmetry(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 4, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)
	held, err := r.sf.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := allocPages(t, r.m, 2)
	if _, err := r.sf.Alloc(ctx, fresh[0], NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("single = %v, want ErrWouldBlock", err)
	}
	if _, err := r.sf.AllocBatch(ctx, fresh, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("batch = %v, want ErrWouldBlock", err)
	}
	if _, err := r.sf.AllocRun(ctx, fresh, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("run = %v, want ErrWouldBlock", err)
	}
	st := r.sf.Stats()
	if st.Allocs != 4 {
		t.Errorf("Allocs = %d, want 4: failed attempts must not count", st.Allocs)
	}
	if st.WouldBlock != 3 {
		t.Errorf("WouldBlock = %d, want 3", st.WouldBlock)
	}
	r.sf.FreeBatch(ctx, held)
	if st := r.sf.Stats(); st.Allocs != st.Frees {
		t.Errorf("allocs %d != frees %d after drain", st.Allocs, st.Frees)
	}
}
