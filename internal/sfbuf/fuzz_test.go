package sfbuf

// Native Go fuzz target for the vectored sharded engine.  A byte string
// decodes into a trace of single and batched operations over a
// deliberately tiny cache (constant reclaim pressure), and the
// stale-mapping invariant is the oracle: every read through a live Buf's
// kernel virtual address, performed through the honest TLB model, must
// see the mapped frame's current bytes.  Allocation uses NoWait
// throughout — the trace runs on one goroutine, so a sleeping alloc would
// deadlock; a WouldBlock outcome is simply a no-op step.
//
// The seed corpus lives in testdata/fuzz/FuzzBatchOps; digits '0'-'5'
// conveniently decode to opcodes 0-5, so the seeds are readable op lists.

import (
	"errors"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/vm"
)

const (
	fuzzEntries = 12
	fuzzPages   = 36
)

func FuzzBatchOps(f *testing.F) {
	// Each opcode consumes two bytes: op = b[i]%6, arg = b[i+1].
	f.Add([]byte("0a0b1c4d5e2a3b"))                                // allocs, a batch, write, verify, frees
	f.Add([]byte("1a1b1c1d3a3b3c"))                                // batch churn beyond the cache size
	f.Add([]byte("0\x80" + "0\x81" + "4\xff" + "5\x00" + "2\x00")) // private flags, write/verify
	f.Add([]byte("1\xf0" + "1\xf1" + "1\xf2" + "1\xf3" + "1\xf4")) // NoWait exhaustion + rollback
	f.Add([]byte("0123456789abcdef0123456789abcdef"))
	f.Fuzz(func(t *testing.T, data []byte) {
		runBatchOpsTrace(t, data)
	})
}

// fuzzHandle mirrors diffHandle for the fuzz replay.
type fuzzHandle struct {
	b       *Buf
	page    int
	cpu     int
	private bool
}

func runBatchOpsTrace(t *testing.T, data []byte) {
	r := newShardedRig(t, arch.XeonMPHTT(), fuzzEntries,
		ShardedConfig{ReclaimBatch: 3, PerCPUFree: 2})
	var model [fuzzPages]byte
	vmPages := make([]*vm.Page, fuzzPages)
	for i := range vmPages {
		pg, err := r.m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte(i)
		model[i] = byte(i)
		vmPages[i] = pg
	}
	ncpu := r.m.NumCPUs()

	var singles []fuzzHandle
	var batches [][]fuzzHandle
	// The single-page Alloc counts a failed NoWait attempt in
	// Stats.Allocs (the paper's "calls to sf_buf_alloc"); a failed batch
	// allocates nothing and counts nothing.  Track the two failure kinds
	// so the drain ledger can be audited exactly.
	failedSingles, failedBatches := uint64(0), uint64(0)
	live := func() int {
		n := len(singles)
		for _, b := range batches {
			n += len(b)
		}
		return n
	}
	liveAt := func(pick int) *fuzzHandle {
		if pick < len(singles) {
			return &singles[pick]
		}
		pick -= len(singles)
		for bi := range batches {
			if pick < len(batches[bi]) {
				return &batches[bi][pick]
			}
			pick -= len(batches[bi])
		}
		return nil
	}
	verify := func(h *fuzzHandle, cpu int) {
		if h.private {
			cpu = h.cpu
		}
		ctx := r.m.Ctx(cpu)
		got, err := r.pm.Translate(ctx, h.b.KVA(), false)
		if err != nil {
			t.Fatalf("translate page %d: %v", h.page, err)
		}
		if got.Data()[0] != model[h.page] {
			t.Fatalf("page %d reads %#x, want %#x — stale mapping dereferenced",
				h.page, got.Data()[0], model[h.page])
		}
	}

	for i := 0; i+1 < len(data); i += 2 {
		op, arg := int(data[i]%6), int(data[i+1])
		cpu := (arg >> 2) % ncpu
		switch op {
		case 0: // single alloc, NoWait
			flags := NoWait
			if arg&0x80 != 0 {
				flags |= Private
			}
			pi := arg % fuzzPages
			b, err := r.sf.Alloc(r.m.Ctx(cpu), vmPages[pi], flags)
			if errors.Is(err, ErrWouldBlock) {
				failedSingles++
				continue
			}
			if err != nil {
				t.Fatalf("alloc: %v", err)
			}
			h := fuzzHandle{b: b, page: pi, cpu: cpu, private: arg&0x80 != 0}
			singles = append(singles, h)
			verify(&h, cpu)
		case 1: // batch alloc, NoWait
			n := 1 + (arg>>4)%8
			start := arg % (fuzzPages - n)
			flags := NoWait
			if arg&0x01 != 0 {
				flags |= Private
			}
			run := vmPages[start : start+n]
			bufs, err := r.sf.AllocBatch(r.m.Ctx(cpu), run, flags)
			if errors.Is(err, ErrWouldBlock) || errors.Is(err, ErrBatchTooLarge) {
				failedBatches++
				continue
			}
			if err != nil {
				t.Fatalf("allocBatch: %v", err)
			}
			hs := make([]fuzzHandle, n)
			for j, b := range bufs {
				if b.Page() != run[j] {
					t.Fatalf("batch buf %d maps wrong page", j)
				}
				hs[j] = fuzzHandle{b: b, page: start + j, cpu: cpu, private: arg&0x01 != 0}
				verify(&hs[j], cpu)
			}
			batches = append(batches, hs)
		case 2: // free one single
			if len(singles) == 0 {
				continue
			}
			pick := arg % len(singles)
			h := singles[pick]
			verify(&h, h.cpu)
			r.sf.Free(r.m.Ctx(h.cpu), h.b)
			singles = append(singles[:pick], singles[pick+1:]...)
		case 3: // free one batch
			if len(batches) == 0 {
				continue
			}
			pick := arg % len(batches)
			hs := batches[pick]
			bufs := make([]*Buf, len(hs))
			for j := range hs {
				verify(&hs[j], hs[j].cpu)
				bufs[j] = hs[j].b
			}
			r.sf.FreeBatch(r.m.Ctx(hs[0].cpu), bufs)
			batches = append(batches[:pick], batches[pick+1:]...)
		case 4: // write through a live mapping
			if live() == 0 {
				continue
			}
			h := liveAt(arg % live())
			wcpu := cpu
			if h.private {
				wcpu = h.cpu
			}
			ctx := r.m.Ctx(wcpu)
			got, err := r.pm.Translate(ctx, h.b.KVA(), true)
			if err != nil {
				t.Fatalf("write translate: %v", err)
			}
			v := byte(arg) | 1
			got.Data()[0] = v
			model[h.page] = v
			verify(h, wcpu)
		case 5: // verify a live mapping
			if live() == 0 {
				continue
			}
			verify(liveAt(arg%live()), cpu)
		}
	}

	// Drain and audit the ledger.
	for i := range singles {
		verify(&singles[i], singles[i].cpu)
		r.sf.Free(r.m.Ctx(singles[i].cpu), singles[i].b)
	}
	for _, hs := range batches {
		bufs := make([]*Buf, len(hs))
		for j := range hs {
			verify(&hs[j], hs[j].cpu)
			bufs[j] = hs[j].b
		}
		r.sf.FreeBatch(r.m.Ctx(hs[0].cpu), bufs)
	}
	st := r.sf.Stats()
	if st.Allocs != st.Frees+failedSingles {
		t.Fatalf("allocs %d != frees %d + failed singles %d after drain",
			st.Allocs, st.Frees, failedSingles)
	}
	if st.WouldBlock != failedSingles+failedBatches {
		t.Fatalf("WouldBlock %d != failed singles %d + failed batches %d",
			st.WouldBlock, failedSingles, failedBatches)
	}
	if got := r.sf.InactiveLen(); got != fuzzEntries {
		t.Fatalf("inactive = %d, want %d after drain", got, fuzzEntries)
	}
	for i, pg := range vmPages {
		if pg.Data()[0] != model[i] {
			t.Fatalf("page %d backing store %#x, model %#x — write hit the wrong frame",
				i, pg.Data()[0], model[i])
		}
	}
}
