package sfbuf

// Tests for the background reclaim & laundering daemon and the parked-window
// age bound: the sub-batch park leak regression (a lone parked window below
// the count threshold must still launder), the age bound beating revival,
// the daemon's watermark refill paying the after-idle reclaim ahead of
// demand, the clean-window trim, and a -race stress of the daemon against
// concurrent churn.

import (
	"sync"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/vm"
)

// TestParkedWindowAgeLaunderSyncPath is the leak regression: a single
// parked window — far below runLaunderBatch, so the count threshold never
// fires — must still be laundered by the next allocation once it ages out,
// with no daemon running at all.
func TestParkedWindowAgeLaunderSyncPath(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)

	run, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sf.FreeRun(ctx, run)
	if ws := r.sf.RunWindowStats(); ws.DirtyPages != 4 {
		t.Fatalf("DirtyPages = %d after park, want 4", ws.DirtyPages)
	}

	SetLaunderAge(r.sf, 100)
	// Advance the machine clock past the age bound.  No idle work is
	// registered, so this models a pure lull: the sync path alone must
	// enforce the bound.
	r.m.Idle(0, 1000)

	// Allocate a DIFFERENT extent: the aged window must be laundered and
	// recycled for it, not left parked.
	other := allocPages(t, r.m, 4)
	run2, err := r.sf.AllocRun(ctx, other, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws := r.sf.RunWindowStats()
	if ws.AgedLaunders != 1 || ws.AgedWindows != 1 {
		t.Fatalf("aged counters = %d/%d, want 1/1", ws.AgedLaunders, ws.AgedWindows)
	}
	if ws.DirtyPages != 0 {
		t.Fatalf("DirtyPages = %d after aged launder, want 0", ws.DirtyPages)
	}
	// The laundered window was recycled, not re-reserved.
	if ws.Reserved != 1 || ws.Reuses != 1 {
		t.Fatalf("reserved/reuses = %d/%d, want 1/1 (recycle the aged window)", ws.Reserved, ws.Reuses)
	}
	r.sf.FreeRun(ctx, run2)
}

// TestAgeBoundBeatsRevival pins the acceptance rule "no run window stays
// revivable-parked past LaunderAge regardless of how few dirty windows
// exist": even a repeat AllocRun over the EXACT parked extent — the one
// request revival exists for — must not revive a window past the bound.
func TestAgeBoundBeatsRevival(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)

	run, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sf.FreeRun(ctx, run)

	// The bound must dwarf the cycles the alloc/free paths themselves
	// charge (which also advance the machine clock), so only the explicit
	// idle below can age a window past it.
	SetLaunderAge(r.sf, 1<<17)
	r.m.Idle(0, 1<<18)

	run2, err := r.sf.AllocRun(ctx, pages, 0) // same extent
	if err != nil {
		t.Fatal(err)
	}
	ws := r.sf.RunWindowStats()
	if ws.Revives != 0 {
		t.Fatalf("revives = %d, want 0: the age bound must win over revival", ws.Revives)
	}
	if ws.AgedWindows != 1 {
		t.Fatalf("AgedWindows = %d, want 1", ws.AgedWindows)
	}
	r.sf.FreeRun(ctx, run2)

	// Control: under the bound, the same reuse DOES revive.
	r.m.Idle(0, 1000) // ages the new park by far less than launderAge
	run3, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.sf.RunWindowStats().Revives; got != 1 {
		t.Fatalf("revives = %d, want 1: young parked windows must still revive", got)
	}
	r.sf.FreeRun(ctx, run3)
}

// TestDaemonLaundersParkedWindowOnIdle is the other half of the leak fix:
// with NO further allocations at all, the daemon's idle pass alone must
// retire an aged parked window.
func TestDaemonLaundersParkedWindowOnIdle(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 32, ShardedConfig{})
	ctx := r.m.Ctx(0)
	pages := allocPages(t, r.m, 4)

	run, err := r.sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sf.FreeRun(ctx, run)

	d := NewDaemon(r.sf, DaemonConfig{LaunderAge: 1 << 17})
	if d == nil {
		t.Fatal("NewDaemon returned nil for a sharded engine")
	}
	r.m.RegisterIdleWork(d.Run)

	// First tick: the window is still young, so the pass leaves it parked
	// — the bound is an age bound, not "launder on any idle".
	r.m.Idle(0, 1000)
	if ws := r.sf.RunWindowStats(); ws.DirtyPages != 4 {
		t.Fatalf("DirtyPages = %d after young tick, want 4", ws.DirtyPages)
	}
	// The pass runs at tick ENTRY, so the long tick itself still sees a
	// young window; it is the tick after the clock advance that launders.
	r.m.Idle(0, 1<<18)
	r.m.Idle(0, 1000)
	ws := r.sf.RunWindowStats()
	if ws.DirtyPages != 0 {
		t.Fatalf("DirtyPages = %d after daemon tick, want 0", ws.DirtyPages)
	}
	if ws.AgedWindows != 1 {
		t.Fatalf("AgedWindows = %d, want 1", ws.AgedWindows)
	}
	ds := d.Stats()
	if ds.Passes < 3 || ds.AgedWindows != 1 {
		t.Fatalf("daemon stats = %+v, want 3 passes and 1 aged window", ds)
	}
}

// TestDaemonRefillsCleanStock: after a burst fills and frees the whole
// cache, an idle tick must restock the clean freelists so the next burst's
// misses pop clean buffers instead of paying a synchronous reclaim round.
func TestDaemonRefillsCleanStock(t *testing.T) {
	probeAfterIdle := func(idle bool) (reclaims uint64, ds DaemonStats) {
		r := newShardedRig(t, arch.XeonMPHTT(), 32, ShardedConfig{})
		ctx := r.m.Ctx(0)
		d := NewDaemon(r.sf, DaemonConfig{Watermark: 16})
		r.m.RegisterIdleWork(d.Run)

		working := allocPages(t, r.m, 32)
		bufs, err := r.sf.AllocBatch(ctx, working, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bufs {
			if _, err := r.pm.Translate(ctx, b.KVA(), false); err != nil {
				t.Fatal(err)
			}
		}
		r.sf.FreeBatch(ctx, bufs)

		if idle {
			r.m.Idle(0, 1<<20)
		}

		before := r.sf.Stats().Reclaims
		fresh := allocPages(t, r.m, 8)
		pb, err := r.sf.AllocBatch(ctx, fresh, 0)
		if err != nil {
			t.Fatal(err)
		}
		r.sf.FreeBatch(ctx, pb)
		return r.sf.Stats().Reclaims - before, d.Stats()
	}

	onDemand, _ := probeAfterIdle(false)
	if onDemand == 0 {
		t.Fatal("control broken: the probe burst should force a synchronous reclaim round")
	}
	prefilled, ds := probeAfterIdle(true)
	if prefilled != 0 {
		t.Fatalf("probe after idle paid %d synchronous reclaim rounds, want 0 (daemon should have refilled)", prefilled)
	}
	if ds.Passes == 0 || ds.RefillRounds == 0 || ds.RefilledBufs == 0 {
		t.Fatalf("daemon stats = %+v, want nonzero passes/refill rounds/refilled bufs", ds)
	}
}

// TestDaemonTrimsSurplusCleanWindows: after a run spike, the daemon's pass
// must launder what aged out and give surplus clean windows' address space
// back to the arena, keeping only runLaunderBatch per size class.
func TestDaemonTrimsSurplusCleanWindows(t *testing.T) {
	r := newShardedRig(t, arch.XeonMP(), 64, ShardedConfig{})
	ctx := r.m.Ctx(0)

	// Twelve simultaneous 4-page runs: freeing them parks 12 windows (the
	// count-threshold launder only fires on the NEXT allocation, which
	// never comes — exactly the population the daemon exists to retire).
	pages := allocPages(t, r.m, 48)
	runs := make([]*Run, 12)
	for i := range runs {
		var err error
		runs[i], err = r.sf.AllocRun(ctx, pages[i*4:(i+1)*4], 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, run := range runs {
		r.sf.FreeRun(ctx, run)
	}
	ws := r.sf.RunWindowStats()
	if ws.DirtyPages != 48 || ws.CleanPages != 0 {
		t.Fatalf("after spike: dirty/clean pages = %d/%d, want 48/0", ws.DirtyPages, ws.CleanPages)
	}
	freeBefore := ws.LargestFreeRun

	d := NewDaemon(r.sf, DaemonConfig{LaunderAge: 1 << 17})
	r.m.RegisterIdleWork(d.Run)
	r.m.Idle(0, 1<<20) // pass sees young windows; the tick ages them all
	r.m.Idle(0, 1<<20) // launder the aged dozen, then trim the surplus

	ws = r.sf.RunWindowStats()
	if ws.DirtyPages != 0 {
		t.Fatalf("DirtyPages = %d after lull, want 0", ws.DirtyPages)
	}
	// 12 windows laundered clean, trim keeps runLaunderBatch (8) of them.
	if ws.Trimmed != 4 {
		t.Fatalf("Trimmed = %d, want 4", ws.Trimmed)
	}
	if got := d.Stats().TrimmedWindows; got != 4 {
		t.Fatalf("daemon TrimmedWindows = %d, want 4", got)
	}
	if ws.CleanPages != 32 {
		t.Fatalf("CleanPages = %d after trim, want 32 (8 windows x 4 pages)", ws.CleanPages)
	}
	if ws.LargestFreeRun < freeBefore {
		t.Fatalf("LargestFreeRun shrank across trim: %d -> %d", freeBefore, ws.LargestFreeRun)
	}
}

// TestDaemonRaceStress runs the daemon's idle passes concurrently with
// alloc/free and run churn on every CPU — the -race tier's check that the
// background pass takes the same locks as the foreground paths.
func TestDaemonRaceStress(t *testing.T) {
	r := newShardedRig(t, arch.XeonMPHTT(), 64, ShardedConfig{})
	d := NewDaemon(r.sf, DaemonConfig{Watermark: 8, LaunderAge: 2048})
	r.m.RegisterIdleWork(d.Run)

	pages := make([]*vm.Page, 32)
	for i := range pages {
		pages[i] = r.page(t)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := r.m.Ctx(w % r.m.NumCPUs())
			for i := 0; i < 300; i++ {
				if i%3 == 0 {
					lo := (w*4 + i) % (len(pages) - 4)
					run, err := r.sf.AllocRun(ctx, pages[lo:lo+4], 0)
					if err != nil {
						t.Error(err)
						return
					}
					r.sf.FreeRun(ctx, run)
				} else {
					b, err := r.sf.Alloc(ctx, pages[(w*7+i)%len(pages)], 0)
					if err != nil {
						t.Error(err)
						return
					}
					r.sf.Free(ctx, b)
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.m.Idle(w%r.m.NumCPUs(), 4096)
			}
		}(w)
	}
	wg.Wait()

	s := r.sf.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("ledger: allocs %d != frees %d", s.Allocs, s.Frees)
	}
	// The machine must still be fully functional after the stress.
	ctx := r.m.Ctx(0)
	b, err := r.sf.Alloc(ctx, pages[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sf.Free(ctx, b)
}
