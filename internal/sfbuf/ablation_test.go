package sfbuf

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/vm"
)

// ablationRigs builds one rig per ablation mode, including the full design.
func ablationModes() map[string]Ablation {
	return map[string]Ablation{
		"full-design":      0,
		"no-accessed-bit":  AblateAccessedBit,
		"no-sharing":       AblateSharing,
		"no-lazy-teardown": AblateLazyTeardown,
		"all-ablated":      AblateAccessedBit | AblateSharing | AblateLazyTeardown,
	}
}

// TestAblationsPreserveCoherence is the critical property: every ablated
// variant must still be TLB-coherent.  We hammer a small cache from two
// CPUs with private and shared mappings over distinct-content pages and
// verify every read through the honest MMU sees the right page's bytes.
func TestAblationsPreserveCoherence(t *testing.T) {
	for name, mode := range ablationModes() {
		t.Run(name, func(t *testing.T) {
			r := newI386Rig(t, arch.XeonMPHTT(), 4)
			r.sf.Ablate(mode)
			pages := make([]*vm.Page, 16)
			for i := range pages {
				pages[i] = r.page(t)
				pages[i].Data()[0] = byte(i + 1)
			}
			for i := 0; i < 800; i++ {
				cpu := (i * 7) % r.m.NumCPUs()
				ctx := r.m.Ctx(cpu)
				pg := pages[(i*13)%len(pages)]
				var flags Flags
				if i%3 == 0 {
					flags = Private
				}
				b, err := r.sf.Alloc(ctx, pg, flags)
				if err != nil {
					t.Fatalf("%s: alloc %d: %v", name, i, err)
				}
				got, err := r.pm.Translate(ctx, b.KVA(), false)
				if err != nil {
					t.Fatalf("%s: translate %d: %v", name, i, err)
				}
				if got.Data()[0] != pg.Data()[0] {
					t.Fatalf("%s: iteration %d on cpu %d read page %#x, want %#x — coherence broken",
						name, i, cpu, got.Data()[0], pg.Data()[0])
				}
				r.sf.Free(ctx, b)
			}
		})
	}
}

func TestAblateSharingForcesDistinctBufs(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 4)
	r.sf.Ablate(AblateSharing)
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b1, _ := r.sf.Alloc(ctx, pg, 0)
	b2, _ := r.sf.Alloc(ctx, pg, 0)
	if b1 == b2 {
		t.Fatal("sharing ablated but same buffer returned")
	}
	if b1.KVA() == b2.KVA() {
		t.Fatal("two live buffers share a virtual address")
	}
	// Both map the same page at different addresses.
	for _, b := range []*Buf{b1, b2} {
		if g, _ := r.pm.Translate(ctx, b.KVA(), false); g != pg {
			t.Fatal("aliased mapping resolves wrong")
		}
	}
	if r.sf.Stats().Hits != 0 {
		t.Fatal("no hits possible with sharing ablated")
	}
	r.sf.Free(ctx, b1)
	r.sf.Free(ctx, b2)
}

func TestAblateLazyTeardownDropsMappingOnFree(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 4)
	r.sf.Ablate(AblateLazyTeardown)
	ctx := r.m.Ctx(0)
	pg := r.page(t)
	b, _ := r.sf.Alloc(ctx, pg, 0)
	r.pm.Translate(ctx, b.KVA(), false)
	va := b.KVA()
	r.sf.Free(ctx, b)
	if pte, ok := r.pm.Probe(va); ok && pte.Valid {
		t.Fatal("eager teardown left the mapping valid")
	}
	if r.sf.ValidMappings() != 0 {
		t.Fatal("eager teardown left the hash populated")
	}
	// Reallocation misses (no latent mapping to revive).
	b2, _ := r.sf.Alloc(ctx, pg, 0)
	if got := r.sf.Stats().Misses; got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	r.sf.Free(ctx, b2)
}

// TestAblationCostOrdering verifies the design choices actually pay for
// themselves: on a reuse-heavy single-CPU workload, the full design costs
// no more than each ablated variant.
func TestAblationCostOrdering(t *testing.T) {
	run := func(mode Ablation) int64 {
		r := newI386Rig(t, arch.XeonMP(), 8)
		r.sf.Ablate(mode)
		ctx := r.m.Ctx(0)
		pages := make([]*vm.Page, 4)
		for i := range pages {
			pages[i] = r.page(t)
		}
		// Warmup, then measured reuse.
		for i := 0; i < 8; i++ {
			b, _ := r.sf.Alloc(ctx, pages[i%len(pages)], 0)
			r.pm.Translate(ctx, b.KVA(), true)
			r.sf.Free(ctx, b)
		}
		r.m.ResetCounters()
		for i := 0; i < 200; i++ {
			b, err := r.sf.Alloc(ctx, pages[i%len(pages)], 0)
			if err != nil {
				t.Fatal(err)
			}
			r.pm.Translate(ctx, b.KVA(), true)
			r.sf.Free(ctx, b)
		}
		return int64(r.m.TotalCycles())
	}
	full := run(0)
	for name, mode := range ablationModes() {
		if mode == 0 {
			continue
		}
		if ablated := run(mode); ablated < full {
			t.Errorf("%s (%d cycles) beat the full design (%d cycles)", name, ablated, full)
		}
	}
}
