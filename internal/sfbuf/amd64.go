package sfbuf

import (
	"sync"
	"sync/atomic"

	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// AMD64 is the 64-bit implementation (Section 4.3).  The kernel maintains
// a permanent one-to-one mapping of all physical memory, so:
//
//   - sf_buf_alloc and sf_buf_page are "nothing more than cast operations":
//     the Buf for a page is a precomputed view with the page's direct-map
//     address, shared by all callers, costing no allocation and no lock.
//   - sf_buf_free is the empty function.
//   - No flag requires any action: there is never a remote TLB
//     invalidation, and allocation can never block.
//
// One Buf per physical frame is materialized lazily the first time that
// frame is mapped (a real kernel would not even need that much — the cast
// happens at compile time).
type AMD64 struct {
	pm   *pmap.Pmap
	bufs []Buf
	once []sync.Once

	allocs atomic.Uint64
	frees  atomic.Uint64

	batchAllocs atomic.Uint64
	batchFrees  atomic.Uint64
	batchPages  atomic.Uint64

	runAllocs atomic.Uint64
	runFrees  atomic.Uint64
	runPages  atomic.Uint64
}

var _ Mapper = (*AMD64)(nil)

// NewAMD64 builds the direct-map implementation for machine m.
func NewAMD64(m *smp.Machine, pm *pmap.Pmap) *AMD64 {
	n := m.Phys.Frames() + 1 // frames are numbered from 1
	return &AMD64{
		pm:   pm,
		bufs: make([]Buf, n),
		once: make([]sync.Once, n),
	}
}

// Alloc implements sf_buf_alloc: a cast from vm_page to sf_buf.  The flags
// are accepted and ignored, exactly as the paper specifies.
func (s *AMD64) Alloc(ctx *smp.Context, page *vm.Page, _ Flags) (*Buf, error) {
	s.allocs.Add(1)
	f := page.Frame()
	s.once[f].Do(func() {
		s.bufs[f] = Buf{kva: s.pm.DirectVA(page), page: page}
	})
	return &s.bufs[f], nil
}

// Free implements sf_buf_free: the empty function.
func (s *AMD64) Free(ctx *smp.Context, b *Buf) {
	s.frees.Add(1)
}

// AllocBatch is trivially native on the direct map: one cast per page, no
// locks to amortize and nothing to invalidate — a batch costs exactly
// what its pages cost one at a time, which is nothing.
func (s *AMD64) AllocBatch(ctx *smp.Context, pages []*vm.Page, _ Flags) ([]*Buf, error) {
	bufs := make([]*Buf, len(pages))
	for i, pg := range pages {
		f := pg.Frame()
		s.once[f].Do(func() {
			s.bufs[f] = Buf{kva: s.pm.DirectVA(pg), page: pg}
		})
		bufs[i] = &s.bufs[f]
	}
	s.allocs.Add(uint64(len(pages)))
	s.batchAllocs.Add(1)
	s.batchPages.Add(uint64(len(pages)))
	return bufs, nil
}

// FreeBatch implements the vectored free: still the empty function.
func (s *AMD64) FreeBatch(ctx *smp.Context, bufs []*Buf) {
	s.frees.Add(uint64(len(bufs)))
	s.batchFrees.Add(1)
}

// AllocRun on the direct map is free when the frames are physically
// contiguous: the direct map is linear, so contiguous frames ARE a
// contiguous virtual window — already covered by the direct map's
// permanent 2 MB superpages, with nothing to install and nothing to ever
// invalidate.  Scattered frames cannot be made virtually contiguous by a
// map that is pure arithmetic, so they degrade to the per-page casts
// (Run.Contiguous reports false) rather than paying for a mapped window
// this architecture exists to avoid.
func (s *AMD64) AllocRun(ctx *smp.Context, pages []*vm.Page, _ Flags) (*Run, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	s.allocs.Add(uint64(len(pages)))
	s.runAllocs.Add(1)
	s.runPages.Add(uint64(len(pages)))
	run := &Run{pages: append([]*vm.Page(nil), pages...)}
	contig := true
	for i := 1; i < len(pages); i++ {
		if pages[i].Frame() != pages[0].Frame()+uint64(i) {
			contig = false
			break
		}
	}
	if contig {
		run.contig = true
		run.base = s.pm.DirectVA(pages[0])
		return run, nil
	}
	bufs := make([]*Buf, len(pages))
	for i, pg := range pages {
		f := pg.Frame()
		s.once[f].Do(func() {
			s.bufs[f] = Buf{kva: s.pm.DirectVA(pg), page: pg}
		})
		bufs[i] = &s.bufs[f]
	}
	run.bufs = bufs
	return run, nil
}

// FreeRun implements the run free: the empty function, as always here.
func (s *AMD64) FreeRun(ctx *smp.Context, r *Run) {
	s.frees.Add(uint64(len(r.pages)))
	s.runFrees.Add(1)
	r.pages, r.bufs = nil, nil
}

// nativeBatch: the direct map is the degenerate best case of batching.
func (s *AMD64) nativeBatch() bool { return true }

// nativeRun: physically contiguous extents get their window for free.
func (s *AMD64) nativeRun() bool { return true }

// Name implements Mapper.
func (s *AMD64) Name() string { return "sf_buf/amd64" }

// Stats implements Mapper.  Every allocation is a "hit": the permanent
// direct map never misses.
func (s *AMD64) Stats() Stats {
	a := s.allocs.Load()
	return Stats{
		Allocs: a, Frees: s.frees.Load(), Hits: a,
		BatchAllocs: s.batchAllocs.Load(),
		BatchFrees:  s.batchFrees.Load(),
		BatchPages:  s.batchPages.Load(),
		RunAllocs:   s.runAllocs.Load(),
		RunFrees:    s.runFrees.Load(),
		RunPages:    s.runPages.Load(),
	}
}

// ResetStats implements Mapper.
func (s *AMD64) ResetStats() {
	s.allocs.Store(0)
	s.frees.Store(0)
	s.batchAllocs.Store(0)
	s.batchFrees.Store(0)
	s.batchPages.Store(0)
	s.runAllocs.Store(0)
	s.runFrees.Store(0)
	s.runPages.Store(0)
}
