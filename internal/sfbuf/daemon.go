package sfbuf

import (
	"sync/atomic"

	"sfbuf/internal/cycles"
	"sfbuf/internal/smp"
)

// Background reclaim and laundering daemon.
//
// The paper's sf_buf cache reclaims only on allocation-miss shortage, so
// the first allocation after a quiet period eats an entire reclaim round
// plus a forced shootdown flush — a tail-latency spike paid exactly when
// the machine was doing nothing and could have paid it for free.  The
// daemon is the low-watermark fix: a modeled per-CPU kernel thread,
// driven by smp.Machine idle ticks, that does the shortage work ahead of
// demand and charges it against idle time.
//
// One pass, per sharded core, does three things in order:
//
//  1. Age-bound laundering: parked run windows older than the pool's
//     LaunderAge are torn down and flushed, so a revivable window's hold
//     on frames, address space, and TLB masks is bounded by time, not by
//     the arrival of runLaunderBatch-1 siblings.
//  2. Watermark refill: while the idling CPU's clean freelist or the
//     overflow pool sits below the watermark, run ordinary reclaim rounds
//     (LRU inactive harvest, batched teardown, ONE ranged IPI flush per
//     round) with want=0 so every harvested buffer restocks the freelists
//     and pool.  The next burst's misses then pop clean stock instead of
//     paying the round synchronously.
//  3. Clean-window trim: surplus laundered run windows (beyond
//     runLaunderBatch per size class) return their address space to the
//     KVA arena, whose free-range merging re-coalesces it — the pool's
//     address-space analogue of buddy coalescing.  (Buddy frame
//     coalescing itself is eager on free and needs no daemon help; the
//     deferred coalescing debt in this system lives in the VA arena.)
//
// Charging model: daemon work runs on the idling CPU's context and is
// charged normally — its locks, walks and IPIs are as real as the
// workload's and hit the same machine-wide counters — but the cycles come
// out of the idle stretch (tracked as Counters.DaemonCycles against
// Counters.IdleCycles), not out of workload time.  The pass checks its
// budget between reclaim rounds and stops when the tick is spent, so a
// short lull buys a partial refill rather than a latency debt.

// DaemonConfig configures NewDaemon.
type DaemonConfig struct {
	// Watermark is the clean-stock low watermark, in buffers, applied to
	// the idling CPU's freelist and to the overflow pool.  0 means half
	// the per-CPU freelist capacity (minimum 1).
	Watermark int
	// LaunderAge, when nonzero, overrides the run pools' parked-window
	// age bound (see DefaultLaunderAge); negative disables the bound.
	LaunderAge cycles.Cycles
}

// DaemonStats counts background-daemon activity.
type DaemonStats struct {
	// Passes counts idle ticks that ran the daemon.
	Passes uint64
	// RefillRounds counts reclaim rounds the daemon ran to restock clean
	// freelists, and RefilledBufs the buffers those rounds harvested.
	RefillRounds uint64
	RefilledBufs uint64
	// AgedLaunders/AgedWindows mirror the run pools' age-bound laundering
	// counters summed across cores (sync-path and daemon-path both).
	AgedLaunders uint64
	AgedWindows  uint64
	// TrimmedWindows counts clean run windows whose address space the
	// daemon's trim pass returned to the KVA arena.
	TrimmedWindows uint64

	// MigrateRounds counts idle ticks that ran a defragmentation round,
	// and MigratedBlocks the superpage-span blocks those rounds fully
	// coalesced (see MigrationStats for the finer-grained counters).
	MigrateRounds  uint64
	MigratedBlocks uint64

	// TierRounds counts idle ticks that ran the registered tier duty
	// (SetTierDuty) — on a tiered pool, the kernel tier keeper's
	// background demotion pass that keeps a free reserve in the fast
	// tier.
	TierRounds uint64

	// RefilledBySocket and TrimmedBySocket split RefilledBufs and
	// TrimmedWindows by the socket of the CPU whose idle tick did the
	// work — the per-socket view of where the daemon's background effort
	// lands.  Length is the machine's socket count (1 on a flat machine).
	RefilledBySocket []uint64
	TrimmedBySocket  []uint64
}

// Daemon is the background reclaim and laundering worker for a mapper's
// sharded cores.  Register its Run method as the machine's idle work.
type Daemon struct {
	cores     []*shardedCache
	watermark int

	// mig, when set (SetMigrator), adds defragmentation by migration as
	// the pass's fourth duty: up to migBlocks nearly-free superpage spans
	// are evacuated per tick, outside the per-core read gate (the
	// Migrator takes the write side itself).
	mig       *Migrator
	migBlocks int

	// tierDuty, when set (SetTierDuty), runs as the pass's fifth duty:
	// the tier keeper's background demotion, which evicts the coldest
	// fast-tier residents while the CPU has idle budget to pay for the
	// copies.  Like the defrag duty it runs outside the per-core read
	// gate (MoveToTier takes the write side itself).
	tierDuty func(ctx *smp.Context)

	passes         atomic.Uint64
	refills        atomic.Uint64
	refilled       atomic.Uint64
	trimmed        atomic.Uint64
	migRounds      atomic.Uint64
	migBlocksFreed atomic.Uint64
	tierRounds     atomic.Uint64

	// Per-socket attribution of refill and trim work, indexed by the
	// socket of the CPU running the pass.
	refilledSock []atomic.Uint64
	trimmedSock  []atomic.Uint64
}

// shardedCores extracts the sharded cache cores behind a mapper: one for
// the i386 engine, one per color for the sparc64 hybrid, none for the
// figure-reproduction (global-lock) and amd64 direct-map engines.
func shardedCores(m Mapper) []*shardedCache {
	switch v := m.(type) {
	case *I386:
		if sc, ok := v.c.(*shardedCache); ok {
			return []*shardedCache{sc}
		}
	case *Sparc64:
		var cores []*shardedCache
		for _, col := range v.colors {
			if sc, ok := col.(*shardedCache); ok {
				cores = append(cores, sc)
			}
		}
		return cores
	}
	return nil
}

// SetLaunderAge sets the parked-window age bound on every sharded core
// behind m (0 disables it).  No-op for engines without run pools.
func SetLaunderAge(m Mapper, age cycles.Cycles) {
	for _, c := range shardedCores(m) {
		c.runs.setLaunderAge(age)
	}
}

// NewDaemon builds a background daemon for the mapper's sharded cores,
// applying cfg.LaunderAge to their run pools.  Returns nil if the mapper
// has no sharded cores (the global-lock figure engines and the amd64
// direct map have no clean stock to refill and no windows to launder).
func NewDaemon(m Mapper, cfg DaemonConfig) *Daemon {
	cores := shardedCores(m)
	if len(cores) == 0 {
		return nil
	}
	switch {
	case cfg.LaunderAge > 0:
		SetLaunderAge(m, cfg.LaunderAge)
	case cfg.LaunderAge < 0:
		SetLaunderAge(m, 0)
	}
	wm := cfg.Watermark
	if wm <= 0 {
		wm = cores[0].cfg.PerCPUFree / 2
		if wm < 1 {
			wm = 1
		}
	}
	nsock := cores[0].sockets
	if nsock < 1 {
		nsock = 1
	}
	return &Daemon{
		cores:        cores,
		watermark:    wm,
		refilledSock: make([]atomic.Uint64, nsock),
		trimmedSock:  make([]atomic.Uint64, nsock),
	}
}

// SetMigrator registers defragmentation by migration as the daemon's
// fourth duty: each pass with budget left runs one MigrateBlocks round
// with the given per-tick block budget.  A nil migrator (or blocks <= 0)
// leaves the daemon as it was.
func (d *Daemon) SetMigrator(mig *Migrator, blocks int) {
	if d == nil || mig == nil || blocks <= 0 {
		return
	}
	d.mig, d.migBlocks = mig, blocks
}

// SetTierDuty registers a tier-maintenance duty as the daemon's fifth
// idle-tick task, run after defragmentation when budget remains.  The
// kernel's tier keeper registers its background demotion pass here.  A
// nil duty leaves the daemon as it was.
func (d *Daemon) SetTierDuty(duty func(ctx *smp.Context)) {
	if d == nil || duty == nil {
		return
	}
	d.tierDuty = duty
}

// Run is the idle-tick entry point (an smp.IdleWork).  It spends up to
// budget cycles of the idling CPU doing one background pass over every
// core, oldest duties first, and stops early once the budget is consumed.
// Duties 1-3 hold the core's read migration gate — they walk frame-keyed
// state (revive keys, shard hashes) that must not shift underfoot — and
// duty 4, the defrag round, runs after the gate is dropped (the Migrator
// takes the write side itself).
func (d *Daemon) Run(ctx *smp.Context, budget cycles.Cycles) {
	d.passes.Add(1)
	sock := ctx.Socket()
	if sock >= len(d.refilledSock) {
		sock = 0
	}
	start := ctx.CPU().Cycles()
	within := func() bool { return ctx.CPU().Cycles()-start < budget }
	for _, c := range d.cores {
		c.migGate.RLock()
		// 1. Retire parked run windows past the age bound.
		c.runs.launderAged(ctx)
		// 2. Refill clean stock to the watermark, one reclaim round at a
		// time, until the inactive lists run dry or the budget does.  On a
		// homed core the harvest stays on the idling CPU's own socket's
		// shard group: the daemon refills each socket's stocks from that
		// socket's frames, and never pays cross-package locks or IPIs for
		// an optimization pass (shortage-driven reclaim still spills).
		for within() && c.cleanBelow(ctx, d.watermark) {
			before := c.reclaimed.Load()
			c.reclaimScoped(ctx, 0, nil, c.homed)
			got := c.reclaimed.Load() - before
			if got == 0 {
				break
			}
			d.refills.Add(1)
			d.refilled.Add(uint64(got))
			d.refilledSock[sock].Add(uint64(got))
		}
		// 3. Give surplus clean windows' address space back to the arena.
		if within() {
			if n := c.runs.trimClean(ctx, runLaunderBatch); n > 0 {
				d.trimmed.Add(uint64(n))
				d.trimmedSock[sock].Add(uint64(n))
			}
		}
		c.migGate.RUnlock()
		if !within() {
			return
		}
	}
	// 4. Defragment: evacuate a bounded number of nearly-free superpage
	// spans so AllocContig keeps finding intact blocks.  Like refill, this
	// is ahead-of-demand work charged to idle time; the synchronous
	// trigger (kernel.AllocPhysContig on contiguity failure) still covers
	// demand the daemon has not met.
	if d.mig != nil && within() {
		if n := d.mig.MigrateBlocks(ctx, d.migBlocks); n > 0 {
			d.migBlocksFreed.Add(uint64(n))
		}
		d.migRounds.Add(1)
	}
	// 5. Tier maintenance: background demotion keeps a free reserve in
	// the fast tier, so the next hot-extent promotion finds frames
	// instead of paying a synchronous eviction.
	if d.tierDuty != nil && within() {
		d.tierDuty(ctx)
		d.tierRounds.Add(1)
	}
}

// Stats reports cumulative daemon activity, including the run pools'
// age-bound laundering counters.
func (d *Daemon) Stats() DaemonStats {
	s := DaemonStats{
		Passes:           d.passes.Load(),
		RefillRounds:     d.refills.Load(),
		RefilledBufs:     d.refilled.Load(),
		TrimmedWindows:   d.trimmed.Load(),
		MigrateRounds:    d.migRounds.Load(),
		MigratedBlocks:   d.migBlocksFreed.Load(),
		TierRounds:       d.tierRounds.Load(),
		RefilledBySocket: make([]uint64, len(d.refilledSock)),
		TrimmedBySocket:  make([]uint64, len(d.trimmedSock)),
	}
	for i := range d.refilledSock {
		s.RefilledBySocket[i] = d.refilledSock[i].Load()
		s.TrimmedBySocket[i] = d.trimmedSock[i].Load()
	}
	for _, c := range d.cores {
		rs := c.runs.snapshot()
		s.AgedLaunders += rs.AgedLaunders
		s.AgedWindows += rs.AgedWindows
	}
	return s
}

// Watermark returns the clean-stock low watermark the daemon refills to.
func (d *Daemon) Watermark() int { return d.watermark }

// cleanBelow reports whether the calling CPU's clean freelist or the
// overflow pool is below the watermark.  Peeking takes the same charged
// locks a restock would: the daemon's probe cost is modeled, not free.
func (c *shardedCache) cleanBelow(ctx *smp.Context, wm int) bool {
	self := ctx.CPUID()
	f := c.freelists[self]
	ctx.ChargeLockAt(c.cpuSock[self])
	f.mu.Lock()
	n := len(f.bufs)
	f.mu.Unlock()
	if n < wm {
		return true
	}
	// On a homed core the daemon watches its own socket's pool sub-stock;
	// the other sockets' daemons watch theirs.
	pi := c.poolIdx(ctx)
	ctx.ChargeLockAt(pi)
	c.pool.mu.Lock()
	pn := len(c.pool.socks[pi])
	c.pool.mu.Unlock()
	return pn < wm
}
