package sfbuf

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// TestManySleepersDrainInOrder exhausts a tiny cache with long-held
// references while a crowd of allocators sleeps, then releases and checks
// everyone eventually gets a buffer and the cache drains clean.
func TestManySleepersDrainInOrder(t *testing.T) {
	r := newI386Rig(t, arch.XeonMPHTT(), 2)
	ctx := r.m.Ctx(0)
	held := make([]*Buf, 2)
	for i := range held {
		pg := r.page(t)
		b, err := r.sf.Alloc(ctx, pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		held[i] = b
	}

	const sleepers = 16
	var succeeded atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < sleepers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx := r.m.Ctx(i % r.m.NumCPUs())
			pg, err := r.m.Phys.Alloc()
			if err != nil {
				t.Error(err)
				return
			}
			b, err := r.sf.Alloc(sctx, pg, 0)
			if err != nil {
				t.Errorf("sleeper %d: %v", i, err)
				return
			}
			succeeded.Add(1)
			r.sf.Free(sctx, b)
		}(i)
	}
	// Wait for the crowd to block, then release the held buffers.
	for r.sf.Stats().Sleeps < sleepers {
		if r.sf.Stats().WouldBlock > 0 {
			t.Fatal("unexpected NoWait failure")
		}
	}
	for _, b := range held {
		r.sf.Free(ctx, b)
	}
	wg.Wait()
	if got := succeeded.Load(); got != sleepers {
		t.Fatalf("%d of %d sleepers succeeded", got, sleepers)
	}
	if r.sf.InactiveLen() != 2 {
		t.Fatalf("inactive = %d, want 2", r.sf.InactiveLen())
	}
}

// TestNoWaitNeverSleeps hammers an exhausted cache with NoWait allocations
// from several goroutines; all must fail fast with ErrWouldBlock and none
// may deadlock.
func TestNoWaitNeverSleeps(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 1)
	ctx := r.m.Ctx(0)
	b, err := r.sf.Alloc(ctx, r.page(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx := r.m.Ctx(i % r.m.NumCPUs())
			pg, _ := r.m.Phys.Alloc()
			for j := 0; j < 50; j++ {
				if _, err := r.sf.Alloc(sctx, pg, NoWait); !errors.Is(err, ErrWouldBlock) {
					t.Errorf("want ErrWouldBlock, got %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.sf.Stats().Sleeps; got != 0 {
		t.Fatalf("NoWait allocations slept %d times", got)
	}
	r.sf.Free(ctx, b)
}

// TestHitRevivalUnderChurn interleaves holders and churners so buffers
// constantly cross between the hash, the inactive list and revival; the
// data read through every mapping must stay correct throughout.
func TestHitRevivalUnderChurn(t *testing.T) {
	r := newI386Rig(t, arch.XeonMP(), 8)
	pages := make([]*vm.Page, 6) // fewer pages than buffers: revival-heavy
	for i := range pages {
		pages[i] = r.page(t)
		pages[i].Data()[0] = byte(0xA0 + i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := r.m.Ctx(w % r.m.NumCPUs())
			for i := 0; i < 400; i++ {
				idx := (i*5 + w*3) % len(pages)
				b, err := r.sf.Alloc(ctx, pages[idx], 0)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := r.pm.Translate(ctx, b.KVA(), false)
				if err != nil {
					t.Error(err)
					return
				}
				if got.Data()[0] != byte(0xA0+idx) {
					t.Errorf("worker %d iter %d: read %#x, want %#x",
						w, i, got.Data()[0], 0xA0+idx)
					return
				}
				r.sf.Free(ctx, b)
			}
		}(w)
	}
	wg.Wait()
	if r.sf.InactiveLen() != 8 {
		t.Fatalf("inactive = %d after drain, want 8", r.sf.InactiveLen())
	}
}

// TestOriginalBatchRollbackOnExhaustion: the i386 original mapper's batch
// path allocates per page; when the arena runs dry mid-batch it must roll
// back the pages it already mapped, leaving no leaked VA or mapping.
func TestOriginalBatchRollbackOnExhaustion(t *testing.T) {
	m := smp.NewMachine(arch.XeonMP(), 64, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, 4*vm.PageSize) // room for 4 only
	o := NewOriginal(m, pm, arena)
	ctx := m.Ctx(0)
	pages, err := m.Phys.AllocN(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AllocBatch(ctx, pages, 0); err == nil {
		t.Fatal("batch larger than the arena must fail")
	}
	if got := arena.InUsePages(); got != 0 {
		t.Fatalf("rollback leaked %d arena pages", got)
	}
	if got := pm.Mappings(); got != 0 {
		t.Fatalf("rollback leaked %d mappings", got)
	}
	// The arena must still be fully usable.
	bufs, err := o.AllocBatch(ctx, pages[:4], 0)
	if err != nil {
		t.Fatal(err)
	}
	o.FreeBatch(ctx, bufs)
	if arena.InUsePages() != 0 {
		t.Fatalf("arena in use = %d after FreeBatch", arena.InUsePages())
	}
}

// TestAMD64BatchRanged: the amd64 original batch path performs exactly one
// ranged remote invalidation per batch and per-page locals.
func TestAMD64BatchRanged(t *testing.T) {
	m := smp.NewMachine(arch.OpteronMP(), 64, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	o := NewOriginal(m, pm, arena)
	ctx := m.Ctx(0)
	pages, err := m.Phys.AllocN(16)
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := o.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.ResetCounters()
	o.FreeBatch(ctx, bufs)
	if got := m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote issues = %d, want 1 (ranged)", got)
	}
	if got := m.Counters().LocalInv.Load(); got != 16 {
		t.Fatalf("local invalidations = %d, want 16", got)
	}
	if got := o.Stats().VAAllocs; got != 1 {
		t.Fatalf("VA allocations = %d, want 1 for the whole batch", got)
	}
}

// TestI386BatchFallsBackPerPage: the i386 original batch path is the
// per-page path (per-page VA allocations and per-page shootdowns).
func TestI386BatchFallsBackPerPage(t *testing.T) {
	m := smp.NewMachine(arch.XeonMP(), 64, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	o := NewOriginal(m, pm, arena)
	ctx := m.Ctx(0)
	pages, err := m.Phys.AllocN(8)
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := o.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Stats().VAAllocs; got != 8 {
		t.Fatalf("VA allocations = %d, want 8 (per page)", got)
	}
	m.ResetCounters()
	o.FreeBatch(ctx, bufs)
	if got := m.Counters().RemoteInvIssued.Load(); got != 8 {
		t.Fatalf("remote issues = %d, want 8 (per page)", got)
	}
}
