// Package vnet simulates the internet between the serving machine and
// its clients: point-to-point links that lose, reorder and delay
// packets, driven by a deterministic discrete-event scheduler on the
// same simulated-cycles clock the kernel charges CPU work to.
//
// The simulation is metadata-only.  A Packet carries flow, sequence,
// length, acknowledgment and window fields but no payload: payload bytes
// stay on the sender in mbuf chains under their ephemeral mappings
// (which is the point — retransmission is why send-side mappings
// outlive the first transmit), and the serving layer in
// internal/netstack interprets deliveries against that state.
//
// Determinism is the design constraint everything else follows from.
// Events fire in (time, schedule-order) order from a binary heap, all
// randomness comes from per-link splitmix64 generators seeded from the
// caller's one seed, and the event loop is single-threaded: Step and
// Run must be called from one goroutine, and every callback runs on
// that goroutine.  Two runs with the same seed therefore replay the
// same packet schedule bit for bit, which TraceHash certifies — it
// folds every delivery and timer into one FNV-1a digest that the
// determinism suite compares across runs.  Virtual time is measured in
// simulated CPU cycles so that network round trips and mapping-stall
// backoffs add in the same unit the latency percentiles are reported
// in, but the clock only advances through link delays and timers —
// never by CPU work, which the smp machine accounts separately.
package vnet

import "container/heap"

// Flags mark a packet's role.
type Flags uint8

const (
	// FlagAck marks a pure acknowledgment (Ack and Win are meaningful).
	FlagAck Flags = 1 << iota
	// FlagFin marks the flow's final data packet.
	FlagFin
	// FlagProbe marks a zero-window probe: a dataless poke that asks the
	// receiver to re-advertise its window after a lost update.
	FlagProbe
)

// Packet is the metadata of one frame in flight.
type Packet struct {
	// Flow identifies the connection.
	Flow int
	// Seq is the first payload byte's stream offset and Len the payload
	// length; data packets only.
	Seq int64
	Len int
	// Ack is the cumulative acknowledgment and Win the advertised
	// receive window in bytes; meaningful when FlagAck is set.
	Ack int64
	Win int
	// Flags marks the packet's role.
	Flags Flags
}

// Rand is a splitmix64 generator: deterministic, seedable, and cheap
// enough to sit on the per-packet path.
type Rand struct{ state uint64 }

// NewRand returns a generator; distinct links derive distinct streams by
// seeding with seed+linkID so call interleaving cannot couple them.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// event is one scheduled callback.
type event struct {
	at  int64
	seq uint64 // schedule order: the deterministic tiebreak
	fn  func()
}

// eventHeap orders events by (time, schedule order).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Stats counts scheduler and link activity.
type Stats struct {
	// Sent counts packets offered to links, Delivered those that arrived,
	// Dropped those lost, Reordered those given extra reordering delay.
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Reordered uint64
	// Timers counts After callbacks fired; Events counts every event.
	Timers uint64
	Events uint64
}

// Net is one virtual network: a clock, an event heap, and the links
// created on it.  Single-threaded: see the package comment.
type Net struct {
	now   int64
	seq   uint64
	heap  eventHeap
	seed  uint64
	links int
	hash  uint64
	stats Stats
}

// New creates a network whose links derive their randomness from seed.
func New(seed uint64) *Net {
	return &Net{seed: seed, hash: fnvOffset}
}

// Now returns the current virtual time in simulated cycles.
func (n *Net) Now() int64 { return n.now }

// Stats returns a copy of the activity counters.
func (n *Net) Stats() Stats { return n.stats }

// Pending returns the number of scheduled events.
func (n *Net) Pending() int { return len(n.heap) }

// After schedules fn to run at Now()+d (d floors at zero, meaning "next
// event slot").
func (n *Net) After(d int64, fn func()) {
	if d < 0 {
		d = 0
	}
	n.schedule(n.now+d, func() {
		n.stats.Timers++
		n.fold('T', uint64(n.now))
		fn()
	})
}

func (n *Net) schedule(at int64, fn func()) {
	ev := &event{at: at, seq: n.seq, fn: fn}
	n.seq++
	heap.Push(&n.heap, ev)
}

// Step fires the earliest event, advancing the clock to it.  It returns
// false when no events remain.
func (n *Net) Step() bool {
	if len(n.heap) == 0 {
		return false
	}
	ev := heap.Pop(&n.heap).(*event)
	if ev.at > n.now {
		n.now = ev.at
	}
	n.stats.Events++
	ev.fn()
	return true
}

// Run fires events until none remain.
func (n *Net) Run() {
	for n.Step() {
	}
}

// RunLimit fires at most limit events, returning the number fired — the
// runaway backstop for misconfigured protocols that never drain.
func (n *Net) RunLimit(limit uint64) uint64 {
	var fired uint64
	for fired < limit && n.Step() {
		fired++
	}
	return fired
}

// TraceHash digests the schedule observed so far: every delivery's
// (time, flow, seq, len, ack, win, flags) and every drop, in firing
// order.  Equal seeds and equal workloads produce equal hashes; any
// divergence in packet scheduling changes the digest.
func (n *Net) TraceHash() uint64 { return n.hash }

const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

func (n *Net) fold(vs ...uint64) {
	h := n.hash
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	n.hash = h
}

func (n *Net) foldPacket(tag uint64, p Packet) {
	n.fold(tag, uint64(n.now), uint64(p.Flow), uint64(p.Seq),
		uint64(p.Len), uint64(p.Ack), uint64(p.Win), uint64(p.Flags))
}

// Link is one simplex path with loss, reordering and delay.  Deliver is
// invoked (on the event-loop goroutine) for each packet that survives.
type Link struct {
	n *Net
	// LossPct is the percentage of packets dropped; ReorderPct the
	// percentage of surviving packets held back by an extra jitter so
	// they overtake later traffic.
	LossPct    int
	ReorderPct int
	// DelayMin and DelayMax bound the uniform one-way delay in cycles;
	// ReorderDelay is the extra hold applied to reordered packets (zero
	// defaults to DelayMax-DelayMin, one full jitter span).
	DelayMin     int64
	DelayMax     int64
	ReorderDelay int64
	// Deliver receives surviving packets.
	Deliver func(Packet)

	rng *Rand
}

// NewLink creates a link on the network with the given delay bounds.
// Loss/reorder default to zero; callers set the fields before traffic
// flows.
func (n *Net) NewLink(delayMin, delayMax int64, deliver func(Packet)) *Link {
	l := &Link{
		n:        n,
		DelayMin: delayMin,
		DelayMax: delayMax,
		Deliver:  deliver,
		rng:      NewRand(n.seed + uint64(n.links)*0x6a09e667f3bcc909 + 1),
	}
	n.links++
	return l
}

// Send offers a packet to the link: it is dropped with LossPct, else
// delivered after a uniform delay in [DelayMin, DelayMax], plus
// ReorderDelay with ReorderPct.
func (l *Link) Send(p Packet) {
	n := l.n
	n.stats.Sent++
	if l.LossPct > 0 && l.rng.Intn(100) < l.LossPct {
		n.stats.Dropped++
		n.foldPacket('D', p)
		return
	}
	delay := l.DelayMin
	if span := l.DelayMax - l.DelayMin; span > 0 {
		delay += l.rng.Int63n(span + 1)
	}
	if l.ReorderPct > 0 && l.rng.Intn(100) < l.ReorderPct {
		extra := l.ReorderDelay
		if extra == 0 {
			extra = l.DelayMax - l.DelayMin
		}
		delay += extra
		n.stats.Reordered++
	}
	pkt := p
	n.schedule(n.now+delay, func() {
		n.stats.Delivered++
		n.foldPacket('P', pkt)
		l.Deliver(pkt)
	})
}
