package vnet

import "testing"

// runSchedule drives a fixed two-way packet exchange and returns the
// trace hash plus delivery counters.
func runSchedule(seed uint64) (uint64, Stats, []Packet) {
	n := New(seed)
	var got []Packet
	var back *Link
	fwd := n.NewLink(1000, 5000, func(p Packet) {
		got = append(got, p)
		back.Send(Packet{Flow: p.Flow, Ack: p.Seq + int64(p.Len), Win: 65536, Flags: FlagAck})
	})
	fwd.LossPct = 10
	fwd.ReorderPct = 20
	back = n.NewLink(1000, 5000, func(p Packet) {
		got = append(got, p)
	})
	back.LossPct = 5
	for i := 0; i < 200; i++ {
		p := Packet{Flow: i % 7, Seq: int64(i) * 1460, Len: 1460}
		n.After(int64(i)*100, func() { fwd.Send(p) })
	}
	n.Run()
	return n.TraceHash(), n.Stats(), got
}

// TestDeterministicSchedule is the determinism suite's core claim: the
// same seed replays a byte-identical packet schedule — same hash, same
// counters, same delivery sequence.
func TestDeterministicSchedule(t *testing.T) {
	h1, s1, got1 := runSchedule(42)
	h2, s2, got2 := runSchedule(42)
	if h1 != h2 {
		t.Fatalf("trace hash diverged across identical runs: %#x != %#x", h1, h2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v != %+v", s1, s2)
	}
	if len(got1) != len(got2) {
		t.Fatalf("delivery count diverged: %d != %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery %d diverged: %+v != %+v", i, got1[i], got2[i])
		}
	}
	if h3, _, _ := runSchedule(43); h3 == h1 {
		t.Fatalf("different seeds produced the same trace hash %#x", h1)
	}
}

// TestLossAndReorderRates checks the link model's knobs actually bite at
// roughly the configured rates.
func TestLossAndReorderRates(t *testing.T) {
	n := New(7)
	delivered := 0
	l := n.NewLink(100, 200, func(Packet) { delivered++ })
	l.LossPct = 25
	l.ReorderPct = 10
	const sent = 10000
	for i := 0; i < sent; i++ {
		l.Send(Packet{Seq: int64(i)})
	}
	n.Run()
	st := n.Stats()
	if st.Sent != sent || st.Delivered != uint64(delivered) {
		t.Fatalf("counter mismatch: %+v vs delivered %d", st, delivered)
	}
	lossRate := float64(st.Dropped) / float64(sent)
	if lossRate < 0.20 || lossRate > 0.30 {
		t.Fatalf("loss rate %.3f far from configured 0.25", lossRate)
	}
	reorderRate := float64(st.Reordered) / float64(st.Sent-st.Dropped)
	if reorderRate < 0.06 || reorderRate > 0.14 {
		t.Fatalf("reorder rate %.3f far from configured 0.10", reorderRate)
	}
}

// TestEventOrdering checks ties fire in schedule order and the clock
// never runs backwards.
func TestEventOrdering(t *testing.T) {
	n := New(1)
	var order []int
	n.After(50, func() { order = append(order, 2) })
	n.After(10, func() { order = append(order, 0) })
	n.After(50, func() { order = append(order, 3) })
	n.After(10, func() {
		order = append(order, 1)
		if n.Now() != 10 {
			t.Errorf("clock %d inside t=10 event", n.Now())
		}
		// Nested zero-delay events fire before later-scheduled times.
		n.After(0, func() { order = append(order, 10) })
	})
	n.Run()
	want := []int{0, 1, 10, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestRunLimit bounds a self-rescheduling storm.
func TestRunLimit(t *testing.T) {
	n := New(3)
	var tick func()
	tick = func() { n.After(10, tick) }
	n.After(0, tick)
	if fired := n.RunLimit(100); fired != 100 {
		t.Fatalf("RunLimit fired %d, want 100", fired)
	}
	if n.Pending() == 0 {
		t.Fatal("storm should still be pending after the limit")
	}
}

// TestRandRanges sanity-checks the generator helpers.
func TestRandRanges(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	if r.Intn(0) != 0 || r.Int63n(0) != 0 {
		t.Fatal("zero-bound draws must return 0")
	}
}
