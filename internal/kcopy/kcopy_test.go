package kcopy

import (
	"bytes"
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

func rig(t *testing.T) (*smp.Machine, *pmap.Pmap, *smp.Context) {
	t.Helper()
	m := smp.NewMachine(arch.XeonMP(), 64, true)
	return m, pmap.New(m), m.Ctx(0)
}

const base = uint64(pmap.KVABaseI386)

func mapPages(t *testing.T, m *smp.Machine, pm *pmap.Pmap, ctx *smp.Context, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		pg, err := m.Phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pm.KEnter(ctx, base+uint64(i)*vm.PageSize, pg)
	}
}

func TestCopyInOutRoundTrip(t *testing.T) {
	m, pm, ctx := rig(t)
	mapPages(t, m, pm, ctx, 3)
	want := make([]byte, 2*vm.PageSize+100)
	rand.New(rand.NewSource(21)).Read(want)

	// Unaligned start, spanning three pages.
	if err := CopyIn(ctx, pm, base+500, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := CopyOut(ctx, pm, got, base+500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("copy round trip corrupted data")
	}
}

func TestCopyFaultsOnUnmapped(t *testing.T) {
	_, pm, ctx := rig(t)
	if err := CopyIn(ctx, pm, base, []byte{1}); err == nil {
		t.Fatal("copy into unmapped VA must fault")
	}
	if err := CopyOut(ctx, pm, make([]byte, 1), base); err == nil {
		t.Fatal("copy from unmapped VA must fault")
	}
}

func TestZero(t *testing.T) {
	m, pm, ctx := rig(t)
	mapPages(t, m, pm, ctx, 2)
	data := make([]byte, vm.PageSize)
	for i := range data {
		data[i] = 0xFF
	}
	CopyIn(ctx, pm, base, data)
	CopyIn(ctx, pm, base+vm.PageSize, data)
	if err := Zero(ctx, pm, base+100, vm.PageSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*vm.PageSize)
	CopyOut(ctx, pm, got, base)
	for i := 0; i < 100; i++ {
		if got[i] != 0xFF {
			t.Fatal("Zero clobbered bytes before the range")
		}
	}
	for i := 100; i < 100+vm.PageSize; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	if got[100+vm.PageSize] != 0xFF {
		t.Fatal("Zero clobbered bytes after the range")
	}
}

func TestChecksumTouchesAndSums(t *testing.T) {
	m, pm, ctx := rig(t)
	mapPages(t, m, pm, ctx, 1)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = 1
	}
	CopyIn(ctx, pm, base, data)

	// Clear the accessed bit by re-entering the mapping, then checksum:
	// the PTE accessed bit must be set afterwards — that is the side
	// effect the checksum-offload experiments toggle.
	pg, _ := pm.Translate(ctx, base, false)
	ctx.InvalidateLocal(pmap.VPN(base))
	pm.KEnter(ctx, base, pg)
	if pte, _ := pm.Probe(base); pte.Accessed {
		t.Fatal("setup: accessed bit should be clear")
	}
	sum, err := Checksum(ctx, pm, base, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 1000 {
		t.Fatalf("sum = %d, want 1000", sum)
	}
	if pte, _ := pm.Probe(base); !pte.Accessed {
		t.Fatal("checksum must set the accessed bit")
	}
}

func TestCopyChargesPerByte(t *testing.T) {
	m, pm, ctx := rig(t)
	mapPages(t, m, pm, ctx, 1)
	m.ResetCounters()
	// Prime the TLB so the measured copy is pure copy cost.
	if err := CopyIn(ctx, pm, base, []byte{0}); err != nil {
		t.Fatal(err)
	}
	before := m.CPU(0).Cycles()
	if err := CopyIn(ctx, pm, base, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	got := m.CPU(0).Cycles() - before
	want := cycles.PerByte(m.Plat.Cost.CopyPerByte, 1000)
	if got != want {
		t.Fatalf("copy cost = %d, want %d", got, want)
	}
}

func TestCopyReadsThroughStaleTLB(t *testing.T) {
	// The whole point of the honest MMU: a copy through a stale TLB
	// entry moves the WRONG page's bytes.
	m, pm, ctx := rig(t)
	p1, _ := m.Phys.Alloc()
	p2, _ := m.Phys.Alloc()
	p1.Data()[0] = 0x11
	p2.Data()[0] = 0x22
	pm.KEnter(ctx, base, p1)
	one := make([]byte, 1)
	CopyOut(ctx, pm, one, base) // TLB now caches p1
	pm.KEnter(ctx, base, p2)    // remap without invalidation
	CopyOut(ctx, pm, one, base)
	if one[0] != 0x11 {
		t.Fatalf("read %#x: stale TLB should have served p1", one[0])
	}
	ctx.InvalidateLocal(pmap.VPN(base))
	CopyOut(ctx, pm, one, base)
	if one[0] != 0x22 {
		t.Fatal("after invalidation the copy must see p2")
	}
}

// runRig boots a sharded-cache kernel piecewise so kcopy's run calls can
// be exercised against a real contiguous window and its fallback.
func runRig(t *testing.T) (*smp.Machine, *pmap.Pmap, *smp.Context, sfbuf.Mapper, []*vm.Page) {
	t.Helper()
	m := smp.NewMachine(arch.XeonMPHTT(), 256, true)
	pm := pmap.New(m)
	arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	sf, err := sfbuf.NewI386Sharded(m, pm, arena, 64, sfbuf.ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := m.Phys.AllocN(6)
	if err != nil {
		t.Fatal(err)
	}
	return m, pm, m.Ctx(0), sf, pages
}

func TestCopyRunRoundTrip(t *testing.T) {
	m, pm, ctx, sf, pages := runRig(t)
	run, err := sf.AllocRun(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.FreeRun(ctx, run)

	src := make([]byte, 3*vm.PageSize+123)
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(src)
	const off = vm.PageSize/2 + 9
	if err := CopyInRun(ctx, pm, run, off, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := CopyOutRun(ctx, pm, dst, run, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("run round trip corrupted data")
	}

	// The whole multi-page copy crossed on ONE walk per call (plus the
	// window being cold exactly once): re-copy warm and count.
	before := m.SnapshotCounters()
	if err := CopyOutRun(ctx, pm, dst, run, off); err != nil {
		t.Fatal(err)
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Fatalf("warm run copy walked %d times, want 0", d.PTWalks)
	}
}

// TestCopyRunFallbackMatchesVec pins the degraded path: on a
// non-contiguous run the run copies are exactly the vectored per-page
// copies, bytes and cycles alike.
func TestCopyRunFallbackMatchesVec(t *testing.T) {
	drive := func(useRun bool) (int64, []byte) {
		m := smp.NewMachine(arch.XeonMPHTT(), 256, true)
		pm := pmap.New(m)
		arena := kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
		sf, err := sfbuf.NewI386(m, pm, arena, 64) // global cache: scattered runs
		if err != nil {
			t.Fatal(err)
		}
		pages, err := m.Phys.AllocN(4)
		if err != nil {
			t.Fatal(err)
		}
		ctx := m.Ctx(0)
		run, err := sf.AllocRun(ctx, pages, 0)
		if err != nil {
			t.Fatal(err)
		}
		if run.Contiguous() {
			t.Fatal("global cache must yield a scattered run")
		}
		src := make([]byte, 2*vm.PageSize+77)
		rand.New(rand.NewSource(3)).Read(src)
		dst := make([]byte, len(src))
		if useRun {
			if err := CopyInRun(ctx, pm, run, 100, src); err != nil {
				t.Fatal(err)
			}
			if err := CopyOutRun(ctx, pm, dst, run, 100); err != nil {
				t.Fatal(err)
			}
		} else {
			bufs := run.Bufs()
			if err := CopyInVec(ctx, pm, bufs, 100, src); err != nil {
				t.Fatal(err)
			}
			if err := CopyOutVec(ctx, pm, dst, bufs, 100); err != nil {
				t.Fatal(err)
			}
		}
		sf.FreeRun(ctx, run)
		if !bytes.Equal(src, dst) {
			t.Fatal("round trip corrupted data")
		}
		return int64(m.TotalCycles()), dst
	}
	rc, _ := drive(true)
	vc, _ := drive(false)
	if rc != vc {
		t.Errorf("fallback run copy cycles %d != vectored copy cycles %d", rc, vc)
	}
}

// TestChecksumRunMatchesChecksum pins ChecksumRun's result against the
// per-page Checksum on the same data, including unaligned spans, and
// verifies the ranged-translate economy: one walk for the whole span
// instead of one per page crossed.
func TestChecksumRunMatchesChecksum(t *testing.T) {
	m, pm, ctx := rig(t)
	mapPages(t, m, pm, ctx, 8)
	data := make([]byte, 6*vm.PageSize)
	rand.New(rand.NewSource(5)).Read(data)
	if err := CopyIn(ctx, pm, base, data); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ off, n int }{
		{0, 6 * vm.PageSize},
		{100, 3*vm.PageSize + 7},
		{vm.PageSize - 1, 2},
		{17, 300},
	} {
		want, err := Checksum(ctx, pm, base+uint64(tc.off), tc.n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ChecksumRun(ctx, pm, base+uint64(tc.off), tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ChecksumRun(off=%d, n=%d) = %d, want %d", tc.off, tc.n, got, want)
		}
	}

	// Economy: flush the TLB, then one multi-page ChecksumRun must charge
	// exactly one walk where the per-page loop charges one per page.
	const span = 6
	ctx.FlushLocalTLB()
	before := m.SnapshotCounters()
	if _, err := ChecksumRun(ctx, pm, base, span*vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 1 {
		t.Errorf("ChecksumRun walks = %d, want 1", d.PTWalks)
	}
	ctx.FlushLocalTLB()
	before = m.SnapshotCounters()
	if _, err := Checksum(ctx, pm, base, span*vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != uint64(span) {
		t.Errorf("Checksum walks = %d, want %d", d.PTWalks, span)
	}
}

func TestChecksumRunFaultsOnUnmapped(t *testing.T) {
	_, pm, ctx := rig(t)
	if _, err := ChecksumRun(ctx, pm, base, 3*vm.PageSize); err == nil {
		t.Fatal("ChecksumRun over unmapped VA must fault")
	}
}
