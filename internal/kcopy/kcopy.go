// Package kcopy implements the kernel's data movement primitives over the
// simulated MMU: every load and store through a kernel virtual address is
// translated by pmap.Translate, which consults the executing CPU's TLB and
// honestly follows whatever frame it returns.  Copies therefore both charge
// the architecture's per-byte cost and actually move bytes between page
// backing stores (when physical memory is backed), so a TLB-coherence bug
// upstream shows up as corrupted data downstream.
package kcopy

import (
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// CopyIn copies src into kernel memory at kva (user-to-kernel direction:
// the kernel writing through an ephemeral mapping).
func CopyIn(ctx *smp.Context, pm *pmap.Pmap, kva uint64, src []byte) error {
	for len(src) > 0 {
		pg, err := pm.Translate(ctx, kva, true)
		if err != nil {
			return err
		}
		off := pmap.PageOffset(kva)
		n := min(vm.PageSize-off, len(src))
		if d := pg.Data(); d != nil {
			copy(d[off:off+n], src[:n])
		}
		ctx.ChargeBytes(ctx.Cost().CopyPerByte, n)
		src = src[n:]
		kva += uint64(n)
	}
	return nil
}

// CopyOut copies n bytes from kernel memory at kva into dst
// (kernel-to-user direction: the kernel reading through an ephemeral
// mapping).  len(dst) bytes are copied.
func CopyOut(ctx *smp.Context, pm *pmap.Pmap, dst []byte, kva uint64) error {
	for len(dst) > 0 {
		pg, err := pm.Translate(ctx, kva, false)
		if err != nil {
			return err
		}
		off := pmap.PageOffset(kva)
		n := min(vm.PageSize-off, len(dst))
		if d := pg.Data(); d != nil {
			copy(dst[:n], d[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		ctx.ChargeBytes(ctx.Cost().CopyPerByte, n)
		dst = dst[n:]
		kva += uint64(n)
	}
	return nil
}

// CopyInVec copies src into the page run mapped by bufs, starting at byte
// offset off within the run.  A vectored mapping's buffers need not be
// virtually contiguous (only the original kernel's 64-bit path returns a
// consecutive range), so each page's bytes move through that page's own
// kernel virtual address — and therefore through the executing CPU's TLB,
// keeping the coherence protocol load-bearing page by page.
func CopyInVec(ctx *smp.Context, pm *pmap.Pmap, bufs []*sfbuf.Buf, off int, src []byte) error {
	for len(src) > 0 {
		pi, po := off/vm.PageSize, off%vm.PageSize
		n := min(vm.PageSize-po, len(src))
		if err := CopyIn(ctx, pm, bufs[pi].KVA()+uint64(po), src[:n]); err != nil {
			return err
		}
		src = src[n:]
		off += n
	}
	return nil
}

// CopyOutVec copies len(dst) bytes out of the page run mapped by bufs,
// starting at byte offset off within the run; the vectored counterpart of
// CopyOut with the same per-page translation behaviour as CopyInVec.
func CopyOutVec(ctx *smp.Context, pm *pmap.Pmap, dst []byte, bufs []*sfbuf.Buf, off int) error {
	for len(dst) > 0 {
		pi, po := off/vm.PageSize, off%vm.PageSize
		n := min(vm.PageSize-po, len(dst))
		if err := CopyOut(ctx, pm, dst[:n], bufs[pi].KVA()+uint64(po)); err != nil {
			return err
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// Zero clears n bytes of kernel memory at kva.
func Zero(ctx *smp.Context, pm *pmap.Pmap, kva uint64, n int) error {
	for n > 0 {
		pg, err := pm.Translate(ctx, kva, true)
		if err != nil {
			return err
		}
		off := pmap.PageOffset(kva)
		c := min(vm.PageSize-off, n)
		if d := pg.Data(); d != nil {
			for i := off; i < off+c; i++ {
				d[i] = 0
			}
		}
		ctx.ChargeBytes(ctx.Cost().CopyPerByte, c)
		n -= c
		kva += uint64(c)
	}
	return nil
}

// Checksum computes the ones-complement-style checksum of n bytes at kva,
// as the software TCP checksum path does.  It reads the data through the
// MMU — setting PTE accessed bits — which is exactly the behaviour the
// paper's checksum-offload experiment (Section 6.5.2) turns on and off.
func Checksum(ctx *smp.Context, pm *pmap.Pmap, kva uint64, n int) (uint32, error) {
	var sum uint32
	for n > 0 {
		pg, err := pm.Translate(ctx, kva, false)
		if err != nil {
			return 0, err
		}
		off := pmap.PageOffset(kva)
		c := min(vm.PageSize-off, n)
		if d := pg.Data(); d != nil {
			for i := off; i < off+c; i++ {
				sum += uint32(d[i])
			}
		}
		ctx.ChargeBytes(ctx.Cost().ChecksumPerByte, c)
		n -= c
		kva += uint64(c)
	}
	return sum, nil
}
