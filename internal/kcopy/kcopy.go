// Package kcopy implements the kernel's data movement primitives over the
// simulated MMU: every load and store through a kernel virtual address is
// translated by pmap.Translate, which consults the executing CPU's TLB and
// honestly follows whatever frame it returns.  Copies therefore both charge
// the architecture's per-byte cost and actually move bytes between page
// backing stores (when physical memory is backed), so a TLB-coherence bug
// upstream shows up as corrupted data downstream.
package kcopy

import (
	"sync"

	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// runScratch pools the page slices TranslateRun fills, keeping the
// steady-state run-copy path allocation-free like the repo's other hot
// paths (TLB node recycling, the reclaim scratch pool).
var runScratch = sync.Pool{New: func() any { return new([]*vm.Page) }}

// CopyIn copies src into kernel memory at kva (user-to-kernel direction:
// the kernel writing through an ephemeral mapping).
func CopyIn(ctx *smp.Context, pm *pmap.Pmap, kva uint64, src []byte) error {
	for len(src) > 0 {
		pg, err := pm.Translate(ctx, kva, true)
		if err != nil {
			return err
		}
		off := pmap.PageOffset(kva)
		n := min(vm.PageSize-off, len(src))
		if d := pg.Data(); d != nil {
			copy(d[off:off+n], src[:n])
		}
		ctx.ChargeBytesAt(ctx.Cost().CopyPerByte, n, pg.Frame())
		src = src[n:]
		kva += uint64(n)
	}
	return nil
}

// CopyOut copies n bytes from kernel memory at kva into dst
// (kernel-to-user direction: the kernel reading through an ephemeral
// mapping).  len(dst) bytes are copied.
func CopyOut(ctx *smp.Context, pm *pmap.Pmap, dst []byte, kva uint64) error {
	for len(dst) > 0 {
		pg, err := pm.Translate(ctx, kva, false)
		if err != nil {
			return err
		}
		off := pmap.PageOffset(kva)
		n := min(vm.PageSize-off, len(dst))
		if d := pg.Data(); d != nil {
			copy(dst[:n], d[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		ctx.ChargeBytesAt(ctx.Cost().CopyPerByte, n, pg.Frame())
		dst = dst[n:]
		kva += uint64(n)
	}
	return nil
}

// CopyInVec copies src into the page run mapped by bufs, starting at byte
// offset off within the run.  A vectored mapping's buffers need not be
// virtually contiguous (only the original kernel's 64-bit path returns a
// consecutive range), so each page's bytes move through that page's own
// kernel virtual address — and therefore through the executing CPU's TLB,
// keeping the coherence protocol load-bearing page by page.
func CopyInVec(ctx *smp.Context, pm *pmap.Pmap, bufs []*sfbuf.Buf, off int, src []byte) error {
	for len(src) > 0 {
		pi, po := off/vm.PageSize, off%vm.PageSize
		n := min(vm.PageSize-po, len(src))
		if err := CopyIn(ctx, pm, bufs[pi].KVA()+uint64(po), src[:n]); err != nil {
			return err
		}
		src = src[n:]
		off += n
	}
	return nil
}

// CopyOutVec copies len(dst) bytes out of the page run mapped by bufs,
// starting at byte offset off within the run; the vectored counterpart of
// CopyOut with the same per-page translation behaviour as CopyInVec.
func CopyOutVec(ctx *smp.Context, pm *pmap.Pmap, dst []byte, bufs []*sfbuf.Buf, off int) error {
	for len(dst) > 0 {
		pi, po := off/vm.PageSize, off%vm.PageSize
		n := min(vm.PageSize-po, len(dst))
		if err := CopyOut(ctx, pm, dst[:n], bufs[pi].KVA()+uint64(po)); err != nil {
			return err
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// CopyInRun copies src into the contiguous run r starting at byte offset
// off within the run.  Where CopyInVec pays one translation per page —
// the scattered-KVA tax — a contiguous window is resolved with ONE
// ranged translate for the whole crossing (pmap.TranslateRun: one
// page-table walk per contiguous PTE run, one TLB entry for a promoted
// superpage window), which is the kcopy cost model the paper's amd64
// direct map enjoys implicitly.  Non-contiguous fallback runs take the
// vectored per-page path, exactly what their scattered mappings cost.
func CopyInRun(ctx *smp.Context, pm *pmap.Pmap, r *sfbuf.Run, off int, src []byte) error {
	if !r.Contiguous() {
		return CopyInVec(ctx, pm, r.Bufs(), off, src)
	}
	return copyRun(ctx, pm, r, off, src, true)
}

// CopyOutRun copies len(dst) bytes out of the contiguous run r starting
// at byte offset off within the run; the read-side counterpart of
// CopyInRun with the same ranged-translate economy.
func CopyOutRun(ctx *smp.Context, pm *pmap.Pmap, dst []byte, r *sfbuf.Run, off int) error {
	if !r.Contiguous() {
		return CopyOutVec(ctx, pm, dst, r.Bufs(), off)
	}
	return copyRun(ctx, pm, r, off, dst, false)
}

// copyRun moves buf against the contiguous window: one TranslateRun for
// the page span the transfer crosses, then per-page byte movement through
// the returned frames — which are exactly the frames the executing CPU's
// TLB (honestly, staleness included) resolved.
func copyRun(ctx *smp.Context, pm *pmap.Pmap, r *sfbuf.Run, off int, buf []byte, write bool) error {
	if len(buf) == 0 {
		return nil
	}
	pi0 := off / vm.PageSize
	pi1 := (off + len(buf) - 1) / vm.PageSize
	scratch := runScratch.Get().(*[]*vm.Page)
	defer func() {
		clear(*scratch)
		*scratch = (*scratch)[:0]
		runScratch.Put(scratch)
	}()
	pages, err := pm.TranslateRun(ctx, r.Base()+uint64(pi0)*vm.PageSize, pi1-pi0+1, write, (*scratch)[:0])
	if err != nil {
		return err
	}
	*scratch = pages
	po := off - pi0*vm.PageSize
	for _, pg := range pages {
		n := min(vm.PageSize-po, len(buf))
		if d := pg.Data(); d != nil {
			if write {
				copy(d[po:po+n], buf[:n])
			} else {
				copy(buf[:n], d[po:po+n])
			}
		} else if !write {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		ctx.ChargeBytesAt(ctx.Cost().CopyPerByte, n, pg.Frame())
		buf = buf[n:]
		po = 0
	}
	return nil
}

// Zero clears n bytes of kernel memory at kva.
func Zero(ctx *smp.Context, pm *pmap.Pmap, kva uint64, n int) error {
	for n > 0 {
		pg, err := pm.Translate(ctx, kva, true)
		if err != nil {
			return err
		}
		off := pmap.PageOffset(kva)
		c := min(vm.PageSize-off, n)
		if d := pg.Data(); d != nil {
			for i := off; i < off+c; i++ {
				d[i] = 0
			}
		}
		ctx.ChargeBytesAt(ctx.Cost().CopyPerByte, c, pg.Frame())
		n -= c
		kva += uint64(c)
	}
	return nil
}

// Checksum computes the ones-complement-style checksum of n bytes at kva,
// as the software TCP checksum path does.  It reads the data through the
// MMU — setting PTE accessed bits — which is exactly the behaviour the
// paper's checksum-offload experiment (Section 6.5.2) turns on and off.
func Checksum(ctx *smp.Context, pm *pmap.Pmap, kva uint64, n int) (uint32, error) {
	var sum uint32
	for n > 0 {
		pg, err := pm.Translate(ctx, kva, false)
		if err != nil {
			return 0, err
		}
		off := pmap.PageOffset(kva)
		c := min(vm.PageSize-off, n)
		if d := pg.Data(); d != nil {
			for i := off; i < off+c; i++ {
				sum += uint32(d[i])
			}
		}
		ctx.ChargeBytesAt(ctx.Cost().ChecksumPerByte, c, pg.Frame())
		n -= c
		kva += uint64(c)
	}
	return sum, nil
}

// ChecksumRun is Checksum over a span of a contiguous run window: where
// Checksum charges one translation per page crossed, ChecksumRun resolves
// the covering pages with ONE ranged translate (pmap.TranslateRun — one
// page-table walk per contiguous PTE run, one TLB entry for a promoted
// superpage window), the same economy CopyInRun/CopyOutRun already give
// the data movement.  It is what the netstack software-checksum path
// (checksum offload disabled) uses over run-mapped packets, shaving the
// last per-page walks off zero-copy send.  kva need not be page-aligned,
// but every page the span [kva, kva+n) touches must be mapped — true by
// construction inside a run window.
func ChecksumRun(ctx *smp.Context, pm *pmap.Pmap, kva uint64, n int) (uint32, error) {
	if n <= 0 {
		return 0, nil
	}
	base := kva - uint64(pmap.PageOffset(kva))
	npages := int((kva+uint64(n)-1-base)/vm.PageSize) + 1
	scratch := runScratch.Get().(*[]*vm.Page)
	defer func() {
		clear(*scratch)
		*scratch = (*scratch)[:0]
		runScratch.Put(scratch)
	}()
	pages, err := pm.TranslateRun(ctx, base, npages, false, (*scratch)[:0])
	if err != nil {
		return 0, err
	}
	*scratch = pages
	var sum uint32
	off := pmap.PageOffset(kva)
	for _, pg := range pages {
		c := min(vm.PageSize-off, n)
		if d := pg.Data(); d != nil {
			for i := off; i < off+c; i++ {
				sum += uint32(d[i])
			}
		}
		ctx.ChargeBytesAt(ctx.Cost().ChecksumPerByte, c, pg.Frame())
		n -= c
		off = 0
	}
	return sum, nil
}
