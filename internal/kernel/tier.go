package kernel

// Consumer-hinted hot-extent placement on a tiered physical pool.
//
// The tier split itself (vm.SetTierSplit) and the slow-tier surcharge
// (smp.Context.ChargeBytesAt) are mechanism: every copy, zeroing pass and
// checksum against a slow frame costs more.  What makes a two-tier pool
// pay is placement — keeping the frames the workload actually re-touches
// in the fast tier — and the signal for that already exists: each
// MapConsumer's per-size-class reuse EWMAs, maintained for the adaptive
// contiguity policy.  An extent observed repeating while its class's
// extent-reuse EWMA clears tierHotEWMA is hot; the keeper promotes its
// frames into the fast tier (vm migration under the write gate, parked
// windows remapped in place, one shootdown flush per pass).  Everything
// else is cold and stays where allocation put it.
//
// Fast-tier pressure is resolved by demoting the coldest tracked resident
// extents (least-recently-noted first): synchronously when a promotion
// needs room, and ahead of demand as the background daemon's fifth
// idle-tick duty, which keeps a small free reserve in the fast tier so
// promotions land without paying a synchronous eviction.
//
// On a uniform pool the keeper does not exist (Kernel.tier is nil) and no
// consumer pays a cycle of its bookkeeping: the default configuration is
// byte-identical to the untiered build.

import (
	"sort"
	"sync"
	"sync/atomic"

	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

const (
	// tierHotEWMA is the class extent-reuse EWMA a consumer must clear
	// before a repeating extent counts as hot.  It is the anti-thrash
	// gate: a uniform access pattern wide enough to defeat the EWMAs
	// (every extent "repeats" occasionally, none reliably) stays below
	// it, so the keeper promotes nothing and the pool behaves
	// tier-obliviously instead of churning copies.
	tierHotEWMA = 0.5
	// tierMaxTracked bounds the keeper's extent table; beyond it the
	// least-recently-noted entries are dropped (their frames stay where
	// they are — tracking is for eviction ordering, not correctness).
	tierMaxTracked = 512
	// tierNoteHistory is the per-extent note-time ring depth: the keeper
	// estimates an extent's access frequency as
	// tierNoteHistory / (now - oldest recorded note), a direct sliding-
	// window rate.  An extent with fewer recorded notes has no rate yet
	// and cannot be promoted — a single lucky repeat of an unpopular
	// extent tracks it but moves nothing.
	tierNoteHistory = 4
	// tierAdmitMargin is the admission hysteresis: a candidate may evict
	// a resident only when its estimated rate beats the weakest
	// resident's by this factor.  Rates estimated from tierNoteHistory
	// samples are noisy; without the margin, near-equal boundary extents
	// endlessly swap places, and every swap costs two page copies per
	// page plus a shootdown round.  With it, a stable working set
	// migrates nothing at all.
	tierAdmitMargin = 1.5
	// tierStaleAge drives idle demotion: a fast-resident tracked extent
	// not noted for this many notes is demoted on the daemon's tick.
	// Aging — rather than keeping a fixed free reserve — is what keeps
	// the steady state quiet: a full fast tier of hot extents stays
	// exactly where it is until something actually goes cold.
	tierStaleAge = 256
)

// tierExtent is one tracked extent: the page handles (stable across
// migration) and a ring of its last tierNoteHistory note times, the
// sliding window its access rate is estimated from.
type tierExtent struct {
	pages []*vm.Page
	notes [tierNoteHistory]uint64
	count uint64
}

// note records an observation at the given clock.
func (e *tierExtent) note(clock uint64) {
	e.notes[e.count%tierNoteHistory] = clock
	e.count++
}

// last is the clock of the most recent note.
func (e *tierExtent) last() uint64 {
	if e.count == 0 {
		return 0
	}
	return e.notes[(e.count-1)%tierNoteHistory]
}

// rate estimates the extent's notes-per-clock-tick access frequency over
// its recorded window, or 0 when the ring has not filled yet — an extent
// without tierNoteHistory observations has no defensible claim on a fast
// frame.
func (e *tierExtent) rate(clock uint64) float64 {
	if e.count < tierNoteHistory {
		return 0
	}
	oldest := e.notes[e.count%tierNoteHistory]
	return tierNoteHistory / float64(clock-oldest+1)
}

// TierKeeper tracks hot extents on a tiered pool and moves their frames
// with the migration machinery.  One per kernel, created by Boot when
// tier hints resolve on.
type TierKeeper struct {
	k   *Kernel
	mig *sfbuf.Migrator

	mu      sync.Mutex
	extents map[uint64]*tierExtent
	clock   uint64

	promoted     atomic.Uint64 // pages moved into the fast tier
	demoted      atomic.Uint64 // pages moved out of it
	promotedExt  atomic.Uint64 // extents at least partially promoted
	demotedExt   atomic.Uint64 // extents at least partially demoted
	promoteFails atomic.Uint64 // hot extents left in place (no room, nothing evictable)
}

// newTierKeeper builds the keeper over the kernel's migration machinery.
func newTierKeeper(k *Kernel, mig *sfbuf.Migrator) *TierKeeper {
	return &TierKeeper{k: k, mig: mig, extents: make(map[uint64]*tierExtent)}
}

// Note records one consumer observation of the extent keyed by sig: the
// clock advances, a first hot observation starts tracking the extent,
// and a hot observation of an extent whose estimated access rate has
// filled its window promotes it — its slow-tier frames migrated into the
// fast tier, but only if the fast tier has room or the weakest resident
// is demonstrably colder (the admission margin) than the candidate.  A
// candidate that cannot beat any resident moves nothing: refusing that
// promotion, not performing it, is what the placement economy rewards.
// Called by MapConsumer.UseRuns outside the consumer's own lock.
func (t *TierKeeper) Note(ctx *smp.Context, sig uint64, pages []*vm.Page, hot bool) {
	ctx.ChargeLock() // the keeper's own table round trip is simulated cost
	t.mu.Lock()
	t.clock++
	ext := t.extents[sig]
	if ext == nil {
		// Every observed extent is tracked, not just hot ones: a cold
		// extent's entry is what gives the admission check an honest
		// (low) rate to demote it by when it squats on fast frames it
		// inherited from allocation order.
		ext = &tierExtent{pages: append([]*vm.Page(nil), pages...)}
		t.extents[sig] = ext
		t.pruneLocked()
	}
	ext.note(t.clock)
	rate := ext.rate(t.clock)
	t.mu.Unlock()
	if !hot || rate == 0 {
		return
	}
	phys := t.k.M.Phys
	need := 0
	for _, pg := range pages {
		if phys.SlowFrame(pg.Frame()) {
			need++
		}
	}
	if need == 0 {
		return
	}
	if free := phys.TierFreeFrames(vm.TierFast); free < need {
		if !t.demoteWeaker(ctx, sig, rate, need-free) {
			t.promoteFails.Add(1)
			return
		}
	}
	if moved := t.mig.MoveToTier(ctx, pages, vm.TierFast, ctx.Socket()); moved > 0 {
		t.promoted.Add(uint64(moved))
		t.promotedExt.Add(1)
	} else {
		t.promoteFails.Add(1)
	}
}

// demoteWeaker makes room for a candidate with the given estimated rate:
// it migrates the lowest-rate fast-resident tracked extents out of the
// fast tier, but only while the candidate's rate beats the victim's by
// the admission margin.  Returns whether the needed frames were freed.
// Victims that yield no movable page are dropped from the table so the
// pass cannot spin on them.
func (t *TierKeeper) demoteWeaker(ctx *smp.Context, except uint64, candRate float64, need int) bool {
	phys := t.k.M.Phys
	for need > 0 {
		t.mu.Lock()
		var victim *tierExtent
		var vsig uint64
		vrate := 0.0
		for sig, e := range t.extents {
			if sig == except {
				continue
			}
			inFast := false
			for _, pg := range e.pages {
				if f := pg.Frame(); f != 0 && !phys.SlowFrame(f) {
					inFast = true
					break
				}
			}
			if !inFast {
				continue
			}
			// Strictly ordered victim choice (rate, then signature) so
			// the pass is deterministic regardless of map iteration order.
			r := e.rate(t.clock)
			if victim == nil || r < vrate || (r == vrate && sig < vsig) {
				victim, vsig, vrate = e, sig, r
			}
		}
		t.mu.Unlock()
		if victim == nil || candRate <= tierAdmitMargin*vrate {
			return false
		}
		moved := t.mig.MoveToTier(ctx, victim.pages, vm.TierSlow, ctx.Socket())
		if moved == 0 {
			t.mu.Lock()
			delete(t.extents, vsig)
			t.mu.Unlock()
			continue
		}
		t.demoted.Add(uint64(moved))
		t.demotedExt.Add(1)
		need -= moved
	}
	return true
}

// IdleDemote is the background daemon's tier duty: demote fast-resident
// tracked extents that have gone stale (not noted for tierStaleAge
// notes) — eviction paid out of idle time.  A full fast tier of live
// extents is left alone: steady-state pressure is resolved by the
// synchronous demotion on the promotion path, not by keeping frames
// idle-free, so a stable working set migrates nothing at all.
func (t *TierKeeper) IdleDemote(ctx *smp.Context) {
	phys := t.k.M.Phys
	type stale struct {
		sig  uint64
		last uint64
	}
	t.mu.Lock()
	clock := t.clock
	var victims []stale
	for sig, e := range t.extents {
		if clock-e.last() <= tierStaleAge {
			continue
		}
		inFast := false
		for _, pg := range e.pages {
			if f := pg.Frame(); f != 0 && !phys.SlowFrame(f) {
				inFast = true
				break
			}
		}
		if inFast {
			victims = append(victims, stale{sig, e.last()})
		}
	}
	t.mu.Unlock()
	// Oldest first, signature tiebreak: deterministic regardless of map
	// iteration order.
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].last != victims[j].last {
			return victims[i].last < victims[j].last
		}
		return victims[i].sig < victims[j].sig
	})
	for _, v := range victims {
		t.mu.Lock()
		ext := t.extents[v.sig]
		t.mu.Unlock()
		if ext == nil || ext.last() != v.last {
			continue // re-noted since the scan: no longer stale
		}
		if moved := t.mig.MoveToTier(ctx, ext.pages, vm.TierSlow, ctx.Socket()); moved > 0 {
			t.demoted.Add(uint64(moved))
			t.demotedExt.Add(1)
		}
	}
}

// pruneLocked bounds the extent table by dropping the least recently
// noted entries.  Caller holds t.mu.
func (t *TierKeeper) pruneLocked() {
	if len(t.extents) <= tierMaxTracked {
		return
	}
	type ent struct {
		sig  uint64
		last uint64
	}
	ents := make([]ent, 0, len(t.extents))
	for sig, e := range t.extents {
		ents = append(ents, ent{sig, e.last()})
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].last != ents[j].last {
			return ents[i].last < ents[j].last
		}
		return ents[i].sig < ents[j].sig
	})
	for _, e := range ents[:len(ents)-tierMaxTracked/2] {
		delete(t.extents, e.sig)
	}
}

// TierConsumerStats is one consumer's fast-tier placement economy: of
// the pages it asked the policy layer about, how many were fast-tier
// resident at observation time.
type TierConsumerStats struct {
	// Name identifies the consumer.
	Name string
	// Pages counts pages observed; FastPages those resident in the fast
	// tier when observed.
	Pages     uint64
	FastPages uint64
}

// FastFrac is the consumer's fast-tier hit rate (0 when it observed
// nothing).
func (s TierConsumerStats) FastFrac() float64 {
	if s.Pages == 0 {
		return 0
	}
	return float64(s.FastPages) / float64(s.Pages)
}

// TierStats is the kernel's tiered-memory snapshot: residency, free
// stock, keeper activity, the accumulated slow-tier surcharge, and the
// per-consumer fast-tier hit rates.
type TierStats struct {
	// Tiered reports whether the pool carries a fast/slow split; every
	// other field is zero when it does not.
	Tiered bool
	// FastFrames/SlowFrames are the tiers' frame capacities; FastFree/
	// SlowFree their current free stock.
	FastFrames, SlowFrames int
	FastFree, SlowFree     int
	// PromotedPages/DemotedPages count pages migrated into and out of
	// the fast tier; PromotedExtents/DemotedExtents the passes that
	// moved at least one page; PromoteFails hot extents left in place.
	PromotedPages, DemotedPages     uint64
	PromotedExtents, DemotedExtents uint64
	PromoteFails                    uint64
	// SlowMemCycles is the machine's accumulated slow-tier surcharge
	// (smp.Counters.SlowMemCycles).
	SlowMemCycles int64
	// Consumers lists the per-consumer fast-tier hit rates, sorted by
	// name, omitting consumers that observed nothing.
	Consumers []TierConsumerStats
}

// TierStats snapshots the kernel's tiered-memory state.  On a uniform
// pool only Tiered=false is reported.
func (k *Kernel) TierStats() TierStats {
	phys := k.M.Phys
	if !phys.Tiered() {
		return TierStats{}
	}
	ts := TierStats{
		Tiered:        true,
		FastFrames:    phys.TierFrames(vm.TierFast),
		SlowFrames:    phys.TierFrames(vm.TierSlow),
		FastFree:      phys.TierFreeFrames(vm.TierFast),
		SlowFree:      phys.TierFreeFrames(vm.TierSlow),
		SlowMemCycles: k.M.SnapshotCounters().SlowMemCycles,
	}
	if t := k.tier; t != nil {
		ts.PromotedPages = t.promoted.Load()
		ts.DemotedPages = t.demoted.Load()
		ts.PromotedExtents = t.promotedExt.Load()
		ts.DemotedExtents = t.demotedExt.Load()
		ts.PromoteFails = t.promoteFails.Load()
	}
	k.consumersMu.Lock()
	cs := make([]*MapConsumer, 0, len(k.consumers))
	for _, c := range k.consumers {
		cs = append(cs, c)
	}
	k.consumersMu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	for _, c := range cs {
		pages, fast := c.tierCounts()
		if pages == 0 {
			continue
		}
		ts.Consumers = append(ts.Consumers, TierConsumerStats{Name: c.name, Pages: pages, FastPages: fast})
	}
	return ts
}

// TierHintsEnabled reports whether the kernel booted a tier keeper.
func (k *Kernel) TierHintsEnabled() bool { return k.tier != nil }
