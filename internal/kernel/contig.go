package kernel

// Per-consumer adaptive contiguity policy.  Contiguous runs and cached
// scattered mappings have opposite sweet spots: a run pays one window
// install and one ranged translation for a whole extent (streaming
// copies love it), while the mapping cache turns repeat mappings of the
// same pages into pure hits with zero PTE writes and zero invalidations
// (reuse-heavy working sets love it).  The engine-static Contig knob
// pins every consumer to one side of that tradeoff; the adaptive policy
// lets each consumer — pipe, memory disk, sendfile, zero-copy send —
// pick its side from its own observed reuse, the application-driven
// page-management-policy argument UMap makes for userspace services.
//
// Each consumer handle tracks, per window-size class, an EWMA of two
// reuse signals over the extents it maps:
//
//   - page reuse: the fraction of an extent's frames mapped recently by
//     this consumer.  High page reuse is what the hash cache (and the
//     batch path) monetizes.
//   - extent reuse: whether this exact frame sequence was mapped
//     recently.  High extent reuse is what the run path monetizes too,
//     via the page-set window cache (a repeated extent revives its
//     parked window like a hash hit).
//
// The batch path wins only when pages repeat but extents do not — the
// working set is hash-resident while every run install would be cold —
// so the flip score is pageEWMA * (1 - extentEWMA).  Decisions change
// only at window-size-class epoch boundaries and the score must cross
// hysteresis thresholds, so the policy cannot thrash on a mixed phase.
// Consumers start in run mode, preserving the historical ContigAuto
// behaviour for short or streaming workloads.

import (
	"sort"
	"sync"

	"sfbuf/internal/mbuf"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

const (
	// adaptiveEpoch is the number of observations (per window-size class)
	// between policy decisions; flips only happen on epoch boundaries.
	adaptiveEpoch = 16
	// adaptiveAlpha is the EWMA smoothing factor for the reuse signals.
	adaptiveAlpha = 0.125
	// adaptiveFlipToBatch and adaptiveFlipToRun are the hysteresis
	// thresholds on the batch score pageEWMA*(1-extentEWMA): run mode
	// flips to batch above the first, batch mode returns to run below
	// the second.
	adaptiveFlipToBatch = 0.5
	adaptiveFlipToRun   = 0.25
	// pageRecentWindow caps how many page observations back a frame
	// still counts as recently mapped; extentRecentWindow likewise for
	// whole extents.  Both windows deliberately match what the caches
	// they predict can actually serve: the page window is further
	// bounded by the mapping cache's capacity (a frame last mapped more
	// than a cache-ful of observations ago has likely been evicted, so
	// its "reuse" would miss anyway — see Kernel.mapCapacityPages), and
	// the extent window matches the run pool's revivable depth (twice
	// runLaunderBatch: an extent repeating less often than that is
	// laundered before it could revive).  Overpredicting either cache
	// strands the consumer on the path whose hits never materialize.
	pageRecentWindow   = 4096
	extentRecentWindow = 16
)

// contigClassCount buckets window sizes by power of two: 2, 4, 8, 16,
// 32, and 64+ pages (single pages never reach the policy).
const contigClassCount = 6

// contigClass is one window-size class's adaptive state.
type contigClass struct {
	run      bool // current decision: run path vs batch path
	pageEWMA float64
	extEWMA  float64
	obs      uint64
	flips    uint64
}

// MapConsumer is one subsystem's contiguity-policy handle.  Under the
// static policies it just echoes the kernel's resolution; under the
// adaptive policy (ContigAdaptive, and ContigAuto on engines with native
// runs) it tracks the consumer's observed reuse and flips the consumer
// between the run path and the batch path per window-size epoch.
type MapConsumer struct {
	k        *Kernel
	name     string
	adaptive bool
	// pageWindow is pageRecentWindow bounded by the engine's capacity.
	pageWindow uint64

	mu      sync.Mutex
	classes [contigClassCount]contigClass
	// Recency trackers, shared across size classes: logical clocks keyed
	// by frame (pageSeen) and by extent signature (extSeen).
	pageSeen  map[uint64]uint64
	extSeen   map[uint64]uint64
	pageClock uint64
	extClock  uint64

	observations uint64
	runDecisions uint64
	batchDecs    uint64

	// Tier placement economy (tiered pools only): pages observed by this
	// consumer, and how many of them were fast-tier resident at
	// observation time.
	tierPages uint64
	tierFast  uint64
}

// PolicyClassStats is one window-size class's adaptive state snapshot.
type PolicyClassStats struct {
	// MaxPages is the class's upper window size (2, 4, ..., 64 meaning
	// 64 and larger).
	MaxPages int
	// Mode is the class's current decision: "run" or "batch".
	Mode string
	// PageReuseEWMA and ExtentReuseEWMA are the smoothed reuse signals.
	PageReuseEWMA   float64
	ExtentReuseEWMA float64
	// Observations counts extents observed in this class; Flips counts
	// mode changes.
	Observations uint64
	Flips        uint64
}

// PolicyStats is a consumer handle's policy state snapshot.
type PolicyStats struct {
	// Name identifies the consumer ("pipe", "memdisk", "sendfile",
	// "netstack").
	Name string
	// Adaptive reports whether the handle is adapting; false means every
	// decision is the kernel's static Contig resolution.
	Adaptive bool
	// Observations counts observed extents; RunDecisions and
	// BatchDecisions count how often each path was chosen; Flips sums
	// mode changes across size classes.
	Observations   uint64
	RunDecisions   uint64
	BatchDecisions uint64
	Flips          uint64
	// Classes lists the per-window-size-class state, smallest class
	// first, omitting classes that never observed an extent.
	Classes []PolicyClassStats
}

// contigAdaptive reports whether the booted configuration adapts
// contiguity per consumer: explicitly under ContigAdaptive, and as the
// Auto resolution on the sf_buf kernel wherever the engine provides
// native runs AND has something to adapt — a bounded mapping cache
// whose reuse the batch path can monetize.  The amd64 direct map is
// excluded: runs and batches are both free casts there, so adapting
// (and charging for the policy's bookkeeping) would only distort an
// evaluation baseline.  The paper's global-lock cache and the original
// kernel never adapt either (no native runs), so every
// figure-reproduction experiment keeps its exact historical paths.
func (k *Kernel) contigAdaptive() bool {
	switch k.Cfg.Contig {
	case ContigOn, ContigOff:
		return false
	}
	if k.mapCapacityPages() == 0 {
		return false
	}
	return k.Cfg.Mapper != OriginalKernel && sfbuf.NativeRun(k.Map)
}

// Consumer returns the named contiguity-policy handle, creating it on
// first use.  Handles are cached by name, so every caller naming the
// same consumer shares one adaptive state — the per-consumer policy the
// subsystems register themselves under.
func (k *Kernel) Consumer(name string) *MapConsumer {
	k.consumersMu.Lock()
	defer k.consumersMu.Unlock()
	if k.consumers == nil {
		k.consumers = make(map[string]*MapConsumer)
	}
	if c, ok := k.consumers[name]; ok {
		return c
	}
	c := &MapConsumer{k: k, name: name, adaptive: k.contigAdaptive(), pageWindow: pageRecentWindow}
	if cap := k.mapCapacityPages(); cap > 0 && uint64(cap) < c.pageWindow {
		c.pageWindow = uint64(cap)
	}
	if c.adaptive {
		for i := range c.classes {
			c.classes[i].run = true // historical Auto behaviour until observed
		}
		c.pageSeen = make(map[uint64]uint64)
		c.extSeen = make(map[uint64]uint64)
	}
	k.consumers[name] = c
	return c
}

// PolicyStats snapshots every registered consumer's policy state, sorted
// by consumer name.
func (k *Kernel) PolicyStats() []PolicyStats {
	k.consumersMu.Lock()
	cs := make([]*MapConsumer, 0, len(k.consumers))
	for _, c := range k.consumers {
		cs = append(cs, c)
	}
	k.consumersMu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	out := make([]PolicyStats, len(cs))
	for i, c := range cs {
		out[i] = c.PolicyStats()
	}
	return out
}

// classIdx buckets a window size: 2 pages -> 0, 3-4 -> 1, 5-8 -> 2,
// 9-16 -> 3, 17-32 -> 4, larger -> 5.
func classIdx(n int) int {
	idx, limit := 0, 2
	for n > limit && idx < contigClassCount-1 {
		idx++
		limit <<= 1
	}
	return idx
}

// UseRuns decides whether this consumer should map the given multi-page
// extent as a contiguous run, and — when adapting — records the
// extent's reuse observation first, so the decision reflects it.  Under
// the static policies it is exactly the kernel's Contig resolution.
// The adaptive bookkeeping is charged to the calling context (one lock
// round trip plus one MapperOp-class bookkeeping charge per extent):
// the policy's own cost must show up in the simulated cycles it is
// judged by.
func (c *MapConsumer) UseRuns(ctx *smp.Context, pages []*vm.Page) bool {
	if !c.adaptive {
		return c.k.UseRuns()
	}
	if len(pages) < 2 {
		return false
	}
	ctx.ChargeLock()
	ctx.Charge(ctx.Cost().MapperOp)
	phys := c.k.M.Phys
	tiered := phys.Tiered()
	c.mu.Lock()
	cl := &c.classes[classIdx(len(pages))]
	sig, hot := c.observe(cl, pages)
	run := cl.run
	if run {
		c.runDecisions++
	} else {
		c.batchDecs++
	}
	if tiered {
		c.tierPages += uint64(len(pages))
		for _, pg := range pages {
			if f := pg.Frame(); f != 0 && !phys.SlowFrame(f) {
				c.tierFast++
			}
		}
	}
	c.mu.Unlock()
	// The tier keeper takes its own locks and may migrate, so it runs
	// outside the consumer lock; the reuse verdict travels with the call.
	if tiered && c.k.tier != nil {
		c.k.tier.Note(ctx, sig, pages, hot)
	}
	return run
}

// UseVectored reports whether the consumer should batch-map extents it
// does not map as runs; it is the kernel's static Vectored resolution.
func (c *MapConsumer) UseVectored() bool { return c.k.UseVectored() }

// MapSendExtent maps one send-side window by the consumer's policy:
// a contiguous AllocRun (each page's mbuf external carries its window
// address; the last covering acknowledgment unmaps the whole window
// with one FreeRun), a vectored AllocBatch released with one FreeBatch,
// or — when runs are declined and batching is disabled — a request for
// the caller's per-page fallback, signalled through the same
// sfbuf.ErrBatchTooLarge route the over-capacity case takes.  Mappings
// are shared (no Private flag): any CPU may retransmit.  It is the one
// window mapper behind both sendfile and zero-copy socket sends, so
// their mapping economies cannot drift apart.
func (c *MapConsumer) MapSendExtent(ctx *smp.Context, pages []*vm.Page) ([]*sfbuf.Buf, *mbuf.RunRelease, error) {
	return c.mapSendExtent(ctx, pages, 0)
}

// mapSendExtent is MapSendExtent with allocation flags — the serving
// loop maps with sfbuf.NoWait through SendWindow.MapExtent so mapping
// pressure surfaces as ErrWouldBlock instead of a sleep.  Mappings stay
// shared regardless of flags: any CPU may retransmit.
func (c *MapConsumer) mapSendExtent(ctx *smp.Context, pages []*vm.Page, flags sfbuf.Flags) ([]*sfbuf.Buf, *mbuf.RunRelease, error) {
	k := c.k
	if c.UseRuns(ctx, pages) {
		run, err := k.Map.AllocRun(ctx, pages, flags)
		if err != nil {
			return nil, nil, err
		}
		return run.Bufs(), mbuf.NewRunReleaseMapped(k.Map, run, pages), nil
	}
	if k.UseVectoredSend() {
		bufs, err := k.Map.AllocBatch(ctx, pages, flags)
		if err != nil {
			return nil, nil, err
		}
		return bufs, mbuf.NewRunRelease(k.Map, bufs, pages), nil
	}
	return nil, nil, sfbuf.ErrBatchTooLarge
}

// observe folds one extent into the reuse EWMAs of its size class and,
// on an epoch boundary, re-decides the class's mode with hysteresis.
// It returns the extent's signature and the tier-placement verdict: hot
// means this exact extent repeated within its recency window while the
// class's extent-reuse EWMA clears tierHotEWMA — the same smoothed
// signal the run/batch flip reads, reused as the promotion hint.
// Caller holds c.mu.
func (c *MapConsumer) observe(cl *contigClass, pages []*vm.Page) (sig uint64, hot bool) {
	c.observations++
	seen := 0
	for _, pg := range pages {
		f := pg.Frame()
		if at, ok := c.pageSeen[f]; ok && c.pageClock-at <= c.pageWindow {
			seen++
		}
		c.pageSeen[f] = c.pageClock
		c.pageClock++
	}
	pageReuse := float64(seen) / float64(len(pages))

	// vm.ExtentID keys the logical extent: on a pool that never migrates
	// it is exactly sfbuf.ExtentHash, the page-set window cache's own
	// revive key, so "extent reuse high" predicts "revives will hit" by
	// construction — and when migration moves an extent's frames (the
	// tier keeper's promotions, defragmentation), the identity follows
	// the pages, exactly as the remapped-in-place parked window does.
	sig = vm.ExtentID(pages)
	extReuse := 0.0
	if at, ok := c.extSeen[sig]; ok && c.extClock-at <= extentRecentWindow {
		extReuse = 1.0
	}
	c.extSeen[sig] = c.extClock
	c.extClock++

	cl.pageEWMA += adaptiveAlpha * (pageReuse - cl.pageEWMA)
	cl.extEWMA += adaptiveAlpha * (extReuse - cl.extEWMA)
	cl.obs++
	if cl.obs%adaptiveEpoch == 0 {
		score := cl.pageEWMA * (1 - cl.extEWMA)
		switch {
		case cl.run && score > adaptiveFlipToBatch:
			cl.run = false
			cl.flips++
		case !cl.run && score < adaptiveFlipToRun:
			cl.run = true
			cl.flips++
		}
	}
	c.pruneLocked()
	hot = extReuse > 0 && cl.extEWMA >= tierHotEWMA
	return sig, hot
}

// pruneLocked bounds the recency maps: entries older than their windows
// are dropped once a map grows past a small multiple of its window, so
// steady-state tracking stays O(working set), not O(history).
func (c *MapConsumer) pruneLocked() {
	if uint64(len(c.pageSeen)) > 4*c.pageWindow {
		for f, at := range c.pageSeen {
			if c.pageClock-at > c.pageWindow {
				delete(c.pageSeen, f)
			}
		}
	}
	if len(c.extSeen) > 4*extentRecentWindow {
		for s, at := range c.extSeen {
			if c.extClock-at > extentRecentWindow {
				delete(c.extSeen, s)
			}
		}
	}
}

// tierCounts snapshots the consumer's tier placement counters (pages
// observed, fast-tier resident at observation).
func (c *MapConsumer) tierCounts() (pages, fast uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tierPages, c.tierFast
}

// PolicyStats snapshots the handle's policy state.
func (c *MapConsumer) PolicyStats() PolicyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := PolicyStats{
		Name:           c.name,
		Adaptive:       c.adaptive,
		Observations:   c.observations,
		RunDecisions:   c.runDecisions,
		BatchDecisions: c.batchDecs,
	}
	limit := 2
	for i := range c.classes {
		cl := &c.classes[i]
		ps.Flips += cl.flips
		if cl.obs > 0 {
			mode := "batch"
			if cl.run {
				mode = "run"
			}
			ps.Classes = append(ps.Classes, PolicyClassStats{
				MaxPages:        limit,
				Mode:            mode,
				PageReuseEWMA:   cl.pageEWMA,
				ExtentReuseEWMA: cl.extEWMA,
				Observations:    cl.obs,
				Flips:           cl.flips,
			})
		}
		limit <<= 1
	}
	return ps
}
