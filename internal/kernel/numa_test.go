package kernel

// Socket-topology wiring and stress tests: the Config.Sockets/Homing
// knobs through Boot, and a -race churn where one package frees what the
// other mapped — the allocation-side and teardown-side state live in
// different sockets' structures, so every handoff crosses the homing
// boundaries the refactor introduced.

import (
	"sync"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/sfbuf"
)

func TestSocketConfigWiring(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		sockets   int
		usesHomed bool
	}{
		{"default flat", Config{Platform: arch.XeonMP(), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32}, 1, false},
		{"explicit one socket", Config{Platform: arch.XeonMP(), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32, Sockets: 1}, 1, false},
		{"two sockets auto", Config{Platform: arch.XeonNUMA(2, 2), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32, Sockets: 2}, 2, true},
		{"two sockets homing off", Config{Platform: arch.XeonNUMA(2, 2), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32, Sockets: 2, Homing: HomingOff}, 2, false},
		{"global cache never homes", Config{Platform: arch.XeonNUMA(2, 2), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32, Sockets: 2, Cache: CacheGlobal}, 2, false},
		{"original kernel never homes", Config{Platform: arch.XeonNUMA(2, 2),
			Mapper: OriginalKernel, PhysPages: 256, Sockets: 2}, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, err := Boot(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := k.M.Sockets(); got != tc.sockets {
				t.Fatalf("machine sockets = %d, want %d", got, tc.sockets)
			}
			if got := tc.cfg.UsesHoming(); got != tc.usesHomed {
				t.Fatalf("UsesHoming = %v, want %v", got, tc.usesHomed)
			}
			if got := k.M.Phys.PhysStats().Sockets; got != tc.sockets {
				t.Fatalf("phys pool sockets = %d, want %d", got, tc.sockets)
			}
		})
	}
}

func TestHomingPolicyString(t *testing.T) {
	for policy, want := range map[HomingPolicy]string{
		HomingAuto: "auto", HomingOn: "homed", HomingOff: "striped",
	} {
		if got := policy.String(); got != want {
			t.Errorf("HomingPolicy(%d).String() = %q, want %q", policy, got, want)
		}
	}
}

// TestCrossSocketChurnStress: socket 1's CPUs map shared buffers over
// their own socket's frames while socket 0's CPUs read and free them.
// Every buffer's lifecycle crosses the package boundary — the freeing
// CPU takes the frame's home-socket shard lock and freelist remotely —
// so the homed structures' locking is exercised from the wrong side on
// every operation.  Run under -race this is the cross-socket
// interleaving stressor; on any run the remote-lock counter must have
// engaged, proving the handoffs genuinely crossed sockets.
func TestCrossSocketChurnStress(t *testing.T) {
	const (
		entries = 96
		perCPU  = 2000
	)
	k := MustBoot(Config{
		Platform:     arch.XeonNUMA(2, 2),
		Mapper:       SFBuf,
		Cache:        CacheSharded,
		PhysPages:    1024,
		CacheEntries: entries,
		Sockets:      2,
	})
	pages, err := k.M.Phys.AllocNOn(1, 256) // socket 1's frames
	if err != nil {
		t.Fatal(err)
	}

	// Mappers (CPUs 2,3 — socket 1) push live buffers; freers (CPUs 0,1 —
	// socket 0) read through them and free.  The channel bound keeps the
	// in-flight set below the cache capacity so mappers never deadlock.
	ch := make(chan *sfbuf.Buf, entries/2)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i, cpu := range []int{2, 3} {
		wg.Add(1)
		go func(i, cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			for n := 0; n < perCPU; n++ {
				pg := pages[(n*(2*cpu+1)+i*31)%len(pages)]
				b, err := k.Map.Alloc(ctx, pg, 0)
				if err != nil {
					errs[cpu] = err
					break
				}
				if _, err := k.Pmap.Translate(ctx, b.KVA(), true); err != nil {
					errs[cpu] = err
					break
				}
				ch <- b
			}
		}(i, cpu)
	}
	var fwg sync.WaitGroup
	for _, cpu := range []int{0, 1} {
		fwg.Add(1)
		go func(cpu int) {
			defer fwg.Done()
			ctx := k.Ctx(cpu)
			for b := range ch {
				if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
					errs[cpu] = err
					return
				}
				k.Map.Free(ctx, b)
			}
		}(cpu)
	}
	wg.Wait()
	close(ch)
	fwg.Wait()
	for cpu, err := range errs {
		if err != nil {
			t.Fatalf("cpu %d: %v", cpu, err)
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		t.Fatalf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	if s := k.M.SnapshotCounters(); s.RemoteLockAcq == 0 {
		t.Fatal("cross-socket churn never paid a remote lock — the handoff did not cross packages")
	}
}
