package kernel

// Per-connection adaptive send batching.  The windowed send paths
// (sendfile, zero-copy socket send) map file and user pages in windows —
// one AllocRun or AllocBatch per window — and historically sized every
// window with one fixed constant (sendfile.VectoredRun = 16 pages).  A
// fixed size is wrong at both ends of a serving workload: a slow reader
// advertising a tiny receive window keeps only a page or two in flight,
// so a 16-page window pins 14 mappings that sit idle in a bounded cache
// other connections are starving for; a fast LAN client ACK-clocks a
// whole bandwidth-delay product per round trip, so 16-page windows pay
// four window installs where one would do.
//
// SendWindow is the per-connection policy handle that replaces the
// constant.  Each connection observes its own ACK stream — how many
// pages each acknowledgment burst covered, and how many pages were still
// in flight when it arrived — and sizes the next mapping window to the
// connection's measured appetite: roughly one window per ACK burst,
// bounded by what the connection actually keeps in flight.  The two
// signals are EWMA-smoothed and the window is re-decided only on epoch
// boundaries, quantized to powers of two so the run pool's size-classed
// window stock is not scattered across arbitrary lengths.
//
// The handle only adapts on kernels whose contiguity policy adapts
// (MapConsumer.adaptive): everywhere else WindowPages is the historical
// constant, so the figure-reproduction kernels (global-lock cache,
// original kernel) keep their exact window sizes.  Observation is pure
// bookkeeping — no simulated cycles are charged — because it rides on
// ACK processing that already charges AckProcess; the policy's mapping
// decisions are charged where they always were, in UseRuns.

import (
	"sync"

	"sfbuf/internal/mbuf"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

const (
	// MinSendWindowPages and MaxSendWindowPages clamp the adaptive send
	// window.  The floor keeps the window on the multi-page (batched)
	// path; the ceiling bounds how many mappings one connection can pin
	// in a shared cache.
	MinSendWindowPages = 2
	MaxSendWindowPages = 64
	// DefaultSendWindowPages is the historical fixed window
	// (sendfile.VectoredRun), used until a connection has observed
	// enough ACKs to size itself and forever on non-adaptive kernels.
	DefaultSendWindowPages = 16
	// sendWindowEpoch is the number of ACK observations between window
	// re-decisions; like the contiguity classes, the window cannot
	// thrash inside an epoch.
	sendWindowEpoch = 8
	// sendWindowAlpha smooths the ACK-burst and in-flight signals.
	sendWindowAlpha = 0.25
	// sendWindowRecoveryEpochs is how many consecutive stall-free epochs
	// earn one upward probe of the stall ceiling (AIMD recovery): long
	// enough that a ceiling halved under real pressure is not immediately
	// re-tested, short enough that a long-lived connection outliving a
	// transient spike re-earns its window.
	sendWindowRecoveryEpochs = 4
)

// SendWindow sizes one connection's mapping windows from its observed
// ACK cadence.  Create one per connection with MapConsumer.SendWindow
// (adaptive where the consumer adapts) or FixedSendWindow (pinned, for
// ablation sweeps).  Methods are safe for concurrent use; the serving
// paths call ObserveAck from ACK processing and WindowPages/MapExtent
// from the send loop.
type SendWindow struct {
	c     *MapConsumer
	fixed int // pinned size when > 0

	mu sync.Mutex
	// ackEWMA tracks pages acknowledged per ACK burst; inflightEWMA
	// tracks pages still unacknowledged at each ACK arrival.
	ackEWMA      float64
	inflightEWMA float64
	obs          uint64
	resizes      uint64
	stalls       uint64
	cur          int
	// ceil is the stall-driven congestion cap on epoch growth: it halves
	// on ObserveStall — a stall is evidence this connection's share of
	// the mapping cache is smaller than its appetite — and probes back
	// upward (one doubling) after sendWindowRecoveryEpochs consecutive
	// stall-free epochs, the AIMD shape.  A long-lived connection that
	// outlives a transient pressure spike thus re-earns its window
	// instead of being capped for life.
	ceil int
	// calmEpochs counts consecutive stall-free epochs since the last
	// ceiling change; epochStalls is the stall count at the last epoch
	// boundary, for detecting stalls that arrived between boundaries.
	calmEpochs  int
	epochStalls uint64
}

// SendWindow returns a new per-connection send-window handle under this
// consumer's policy.  On non-adaptive consumers the handle is inert: it
// always reports DefaultSendWindowPages.
func (c *MapConsumer) SendWindow() *SendWindow {
	return &SendWindow{c: c, cur: DefaultSendWindowPages, ceil: MaxSendWindowPages}
}

// StartPages sets an adaptive handle's initial window — the slow-start
// knob for servers multiplexing a mapping cache across thousands of
// connections, where starting every connection at the historical 16
// pages is itself a demand spike several times the cache.  Single-
// connection paths (sendfile on an otherwise idle kernel) keep the
// historical default.  Clamped to [MinSendWindowPages,
// MaxSendWindowPages]; no-op on fixed and non-adaptive handles.
func (w *SendWindow) StartPages(pages int) *SendWindow {
	if w.fixed != 0 || w.c == nil || !w.c.adaptive {
		return w
	}
	if pages < MinSendWindowPages {
		pages = MinSendWindowPages
	}
	if pages > MaxSendWindowPages {
		pages = MaxSendWindowPages
	}
	w.mu.Lock()
	w.cur = pages
	w.mu.Unlock()
	return w
}

// FixedSendWindow returns a handle pinned to the given window size — the
// ablation arm of the serve benchmark's fixed-batch sweep.  Observation
// is accepted and tracked but never changes the window; ceil is pinned
// too, so Stats reports the cap a fixed handle actually lives under.
func (c *MapConsumer) FixedSendWindow(pages int) *SendWindow {
	if pages < 1 {
		pages = 1
	}
	return &SendWindow{c: c, fixed: pages, cur: pages, ceil: pages}
}

// WindowPages returns the pages the next mapping window should cover.
func (w *SendWindow) WindowPages() int {
	if w.fixed > 0 {
		return w.fixed
	}
	if w.c == nil || !w.c.adaptive {
		return DefaultSendWindowPages
	}
	w.mu.Lock()
	n := w.cur
	w.mu.Unlock()
	return n
}

// ObserveAck folds one acknowledgment into the window policy:
// ackedBytes is what the ACK newly covered, inflightBytes what remains
// unacknowledged after it.  Called from ACK processing; charges nothing.
func (w *SendWindow) ObserveAck(ackedBytes, inflightBytes int) {
	if ackedBytes <= 0 {
		return
	}
	ackPages := float64(ackedBytes) / float64(vm.PageSize)
	inflightPages := float64(inflightBytes) / float64(vm.PageSize)
	w.mu.Lock()
	w.ackEWMA += sendWindowAlpha * (ackPages - w.ackEWMA)
	w.inflightEWMA += sendWindowAlpha * (inflightPages - w.inflightEWMA)
	w.obs++
	if w.fixed == 0 && w.c != nil && w.c.adaptive && w.obs%sendWindowEpoch == 0 {
		// AIMD recovery: after sendWindowRecoveryEpochs consecutive
		// stall-free epochs, probe the stall ceiling one doubling upward
		// before this epoch's decision, so sustained calm re-earns the
		// window a transient pressure spike took away.
		if w.stalls == w.epochStalls {
			w.calmEpochs++
			if w.calmEpochs >= sendWindowRecoveryEpochs && w.ceil < MaxSendWindowPages {
				w.ceil *= 2
				if w.ceil > MaxSendWindowPages {
					w.ceil = MaxSendWindowPages
				}
				w.calmEpochs = 0
			}
		} else {
			w.calmEpochs = 0
		}
		w.epochStalls = w.stalls
		// Target one window per ACK burst, with headroom up to what the
		// connection keeps in flight: a slow reader's burst and backlog
		// are both tiny, a BDP-limited fast path has bursts near the
		// whole window.
		target := w.ackEWMA
		if half := w.inflightEWMA / 2; half > target {
			target = half
		}
		next := quantizeWindow(target)
		if next > w.ceil {
			next = w.ceil
		}
		if next != w.cur {
			w.cur = next
			w.resizes++
		}
	}
	w.mu.Unlock()
}

// ObserveStall folds one mapping-pressure stall (the send path's
// AllocRun/AllocBatch returning ErrWouldBlock) into the policy:
// immediate multiplicative decrease, the congestion response that makes
// the adaptive arm robust where a fixed window keeps banging on an
// exhausted cache.  Unlike ACK observation this is not epoch-gated — a
// stall is evidence the current window cannot be granted at all, and
// every backoff tick spent retrying it is pure added latency.  The
// halved size also becomes the handle's growth ceiling, and the smoothed
// signals are damped, so epoch decisions cannot immediately re-grow into
// the same pressure; the ceiling recovers only through the AIMD probe
// after sustained stall-free epochs.  Inert on fixed and non-adaptive
// handles.
func (w *SendWindow) ObserveStall() {
	if w.fixed != 0 || w.c == nil || !w.c.adaptive {
		return
	}
	w.mu.Lock()
	w.stalls++
	// Restart the recovery clock: the calm count drops now, and
	// epochStalls syncs so the next boundary counts the post-stall ACKs
	// as the first stall-free epoch rather than re-detecting this stall.
	w.calmEpochs = 0
	w.epochStalls = w.stalls
	next := w.cur / 2
	if next < MinSendWindowPages {
		next = MinSendWindowPages
	}
	if next < w.ceil {
		w.ceil = next
	}
	if next != w.cur {
		w.cur = next
		w.resizes++
	}
	w.ackEWMA /= 2
	w.inflightEWMA /= 2
	w.mu.Unlock()
}

// quantizeWindow rounds a fractional page target up to the next power of
// two inside [MinSendWindowPages, MaxSendWindowPages].
func quantizeWindow(target float64) int {
	n := MinSendWindowPages
	for float64(n) < target && n < MaxSendWindowPages {
		n <<= 1
	}
	return n
}

// SendWindowStats snapshots one handle's state (tests and reports).
type SendWindowStats struct {
	// WindowPages is the current decision; CeilPages the stall-driven
	// growth cap; Fixed reports a pinned handle.
	WindowPages int
	CeilPages   int
	Fixed       bool
	// AckBurstPages and InflightPages are the smoothed signals.
	AckBurstPages float64
	InflightPages float64
	// Observations counts ACKs folded in; Resizes counts window changes;
	// Stalls counts mapping-pressure backoffs folded in.
	Observations uint64
	Resizes      uint64
	Stalls       uint64
}

// Stats returns the handle's current state.
func (w *SendWindow) Stats() SendWindowStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.cur
	if w.fixed == 0 && (w.c == nil || !w.c.adaptive) {
		cur = DefaultSendWindowPages
	}
	return SendWindowStats{
		WindowPages:   cur,
		CeilPages:     w.ceil,
		Fixed:         w.fixed > 0,
		AckBurstPages: w.ackEWMA,
		InflightPages: w.inflightEWMA,
		Observations:  w.obs,
		Resizes:       w.resizes,
		Stalls:        w.stalls,
	}
}

// MapExtent maps one send-side window by the consumer's contiguity
// policy with the given allocation flags — the flags-aware form of
// MapSendExtent.  The serving loop passes sfbuf.NoWait: a synchronous
// sleep inside the single-threaded virtual-network event loop would
// deadlock it, so mapping pressure surfaces as ErrWouldBlock and the
// caller backs off on a retry timer, which is exactly the latency the
// serve benchmark's percentiles must see.
func (w *SendWindow) MapExtent(ctx *smp.Context, pages []*vm.Page, flags sfbuf.Flags) ([]*sfbuf.Buf, *mbuf.RunRelease, error) {
	return w.c.mapSendExtent(ctx, pages, flags)
}
