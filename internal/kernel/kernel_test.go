package kernel

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
)

func TestBootAllPlatformsBothKernels(t *testing.T) {
	for _, plat := range arch.Evaluation() {
		for _, mk := range []MapperKind{SFBuf, OriginalKernel} {
			k, err := Boot(Config{
				Platform:     plat,
				Mapper:       mk,
				PhysPages:    256,
				Backed:       true,
				CacheEntries: 64,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", plat.Name, mk, err)
			}
			// Smoke: allocate, resolve, free a mapping.
			ctx := k.Ctx(0)
			pg, err := k.M.Phys.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			b, err := k.Map.Alloc(ctx, pg, 0)
			if err != nil {
				t.Fatalf("%s: %v", k.Name(), err)
			}
			if got, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil || got != pg {
				t.Fatalf("%s: translate = (%v, %v)", k.Name(), got, err)
			}
			k.Map.Free(ctx, b)
		}
	}
}

func TestMapperSelection(t *testing.T) {
	cases := []struct {
		plat  arch.Platform
		mk    MapperKind
		cache CachePolicy
		want  string
	}{
		{arch.XeonMP(), SFBuf, CacheSharded, "sf_buf/i386-sharded"},
		{arch.XeonMP(), SFBuf, CacheGlobal, "sf_buf/i386"},
		{arch.OpteronMP(), SFBuf, CacheSharded, "sf_buf/amd64"},
		{arch.Sparc64MP(), SFBuf, CacheSharded, "sf_buf/sparc64"},
		{arch.Sparc64MP(), SFBuf, CacheGlobal, "sf_buf/sparc64"},
		{arch.XeonMP(), OriginalKernel, CacheSharded, "original"},
		{arch.OpteronMP(), OriginalKernel, CacheGlobal, "original"},
	}
	for _, c := range cases {
		k := MustBoot(Config{Platform: c.plat, Mapper: c.mk, Cache: c.cache, PhysPages: 64, CacheEntries: 16})
		if k.Map.Name() != c.want {
			t.Fatalf("%s/%v/%v: mapper %q, want %q", c.plat.Name, c.mk, c.cache, k.Map.Name(), c.want)
		}
	}
}

func TestKernelNames(t *testing.T) {
	k := MustBoot(Config{Platform: arch.XeonHTT(), Mapper: SFBuf, PhysPages: 64, CacheEntries: 16})
	if k.Name() != "Xeon-HTT/sf_buf" {
		t.Fatalf("name = %q", k.Name())
	}
	k2 := MustBoot(Config{Platform: arch.OpteronMP(), Mapper: OriginalKernel, PhysPages: 64})
	if k2.Name() != "Opteron-MP/original" {
		t.Fatalf("name = %q", k2.Name())
	}
}

func TestCacheEntriesConfig(t *testing.T) {
	k := MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf, PhysPages: 64, CacheEntries: 6 * 1024})
	i386, ok := k.Map.(*sfbuf.I386)
	if !ok {
		t.Fatal("expected i386 mapper")
	}
	if i386.Entries() != 6*1024 {
		t.Fatalf("entries = %d, want 6144", i386.Entries())
	}
}

func TestShardedCacheKnobs(t *testing.T) {
	k := MustBoot(Config{
		Platform:       arch.XeonMP(),
		Mapper:         SFBuf,
		PhysPages:      64,
		CacheEntries:   1024,
		CacheShards:    4,
		ShootdownBatch: 9,
	})
	i386, ok := k.Map.(*sfbuf.I386)
	if !ok {
		t.Fatal("expected i386 mapper")
	}
	if got := i386.Shards(); got != 4 {
		t.Fatalf("shards = %d, want 4", got)
	}
	if got := k.M.ShootdownBatch(); got != 9 {
		t.Fatalf("shootdown batch = %d, want 9", got)
	}
	// The global engine reports a single stripe.
	kg := MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf, Cache: CacheGlobal,
		PhysPages: 64, CacheEntries: 1024})
	if got := kg.Map.(*sfbuf.I386).Shards(); got != 1 {
		t.Fatalf("global engine shards = %d, want 1", got)
	}
}

func TestResetClearsCountersAndStats(t *testing.T) {
	k := MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf, PhysPages: 64, CacheEntries: 16, Backed: true})
	ctx := k.Ctx(0)
	pg, _ := k.M.Phys.Alloc()
	b, _ := k.Map.Alloc(ctx, pg, 0)
	k.Map.Free(ctx, b)
	k.Reset()
	if k.Map.Stats().Allocs != 0 {
		t.Fatal("mapper stats not reset")
	}
	if k.M.TotalCycles() != 0 {
		t.Fatal("cycles not reset")
	}
}

func TestPhysBuddyResolution(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		buddy bool
	}{
		{"auto sf_buf sharded", Config{Mapper: SFBuf, Cache: CacheSharded}, true},
		{"auto sf_buf amd64", Config{Platform: arch.OpteronMP(), Mapper: SFBuf}, true},
		{"auto sf_buf global", Config{Mapper: SFBuf, Cache: CacheGlobal}, false},
		{"auto original", Config{Mapper: OriginalKernel}, false},
		{"forced on, global", Config{Mapper: SFBuf, Cache: CacheGlobal, PhysBuddy: PhysBuddyOn}, true},
		{"forced off, sharded", Config{Mapper: SFBuf, PhysBuddy: PhysBuddyOff}, false},
	}
	for _, c := range cases {
		if got := c.cfg.UsesBuddyPhys(); got != c.buddy {
			t.Errorf("%s: UsesBuddyPhys = %v, want %v", c.name, got, c.buddy)
		}
	}
	// The booted machine's pool must match the resolution.
	k := MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf, PhysPages: 128, CacheEntries: 32})
	if !k.M.Phys.Buddy() {
		t.Error("sharded sf_buf kernel did not boot the buddy allocator")
	}
	if st := k.PhysStats(); !st.Buddy || st.Frames != 128 {
		t.Errorf("PhysStats = %+v", st)
	}
	k = MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf, Cache: CacheGlobal, PhysPages: 128, CacheEntries: 32})
	if k.M.Phys.Buddy() {
		t.Error("global-lock figure kernel must keep the LIFO pool under Auto")
	}
}

func TestPhysContigAlignHints(t *testing.T) {
	k := MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf, PhysPages: 4096, CacheEntries: 32})
	if got := k.PhysContigAlign(pmap.SuperpagePages); got != pmap.SuperpagePages {
		t.Errorf("superpage-coverable align = %d, want %d", got, pmap.SuperpagePages)
	}
	if got := k.PhysContigAlign(8); got != 1 {
		t.Errorf("i386 small align = %d, want 1", got)
	}
	sp := MustBoot(Config{Platform: arch.Sparc64MP(), Mapper: SFBuf, PhysPages: 4096,
		NumColors: 4, EntriesPerColor: 64})
	if got := sp.PhysContigAlign(8); got != 4 {
		t.Errorf("sparc64 color align = %d, want 4", got)
	}
	// A color-aligned contiguous extent keeps the direct map color-
	// compatible: frame i's direct-map color is i mod NumColors.
	pages, err := sp.AllocPhysContig(8)
	if err != nil {
		t.Fatal(err)
	}
	if pages[0].Frame()%4 != 0 {
		t.Errorf("sparc64 extent starts at frame %d, want a multiple of 4", pages[0].Frame())
	}
}
