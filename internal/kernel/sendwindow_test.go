package kernel

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/vm"
)

func bootSendWindowKernel(t *testing.T, cache CachePolicy) *Kernel {
	t.Helper()
	k, err := Boot(Config{
		Platform:     arch.XeonMP(),
		Mapper:       SFBuf,
		Cache:        cache,
		PhysPages:    512,
		CacheEntries: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// feedAcks folds n identical acknowledgments into the handle.
func feedAcks(w *SendWindow, n, ackedBytes, inflightBytes int) {
	for i := 0; i < n; i++ {
		w.ObserveAck(ackedBytes, inflightBytes)
	}
}

// TestSendWindowAdaptsDown: a slow reader's tiny ACK bursts with a tiny
// backlog must shrink the window below the historical 16 pages.
func TestSendWindowAdaptsDown(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	w := k.Consumer("test-sw").SendWindow()
	if got := w.WindowPages(); got != DefaultSendWindowPages {
		t.Fatalf("fresh window %d, want default %d", got, DefaultSendWindowPages)
	}
	// One page acked per burst, one page in flight: target ~1 page,
	// clamped to the 2-page floor.
	feedAcks(w, 4*sendWindowEpoch, vm.PageSize, vm.PageSize)
	if got := w.WindowPages(); got != MinSendWindowPages {
		t.Fatalf("slow-reader window %d, want floor %d", got, MinSendWindowPages)
	}
	st := w.Stats()
	if st.Resizes == 0 || st.Observations != uint64(4*sendWindowEpoch) {
		t.Fatalf("stats did not track the adaptation: %+v", st)
	}
}

// TestSendWindowAdaptsUp: large ACK bursts and a deep in-flight backlog
// must grow the window toward the ceiling.
func TestSendWindowAdaptsUp(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	w := k.Consumer("test-sw-up").SendWindow()
	// 40 pages per burst, 100 pages in flight: target 50 → quantized 64.
	feedAcks(w, 4*sendWindowEpoch, 40*vm.PageSize, 100*vm.PageSize)
	if got := w.WindowPages(); got != MaxSendWindowPages {
		t.Fatalf("fast-path window %d, want ceiling %d", got, MaxSendWindowPages)
	}
	// And back down when the connection slows.
	feedAcks(w, 8*sendWindowEpoch, vm.PageSize, 2*vm.PageSize)
	if got := w.WindowPages(); got > 4 {
		t.Fatalf("window stuck high at %d after the connection slowed", got)
	}
}

// TestSendWindowEpochGating: inside an epoch the window must not move,
// however wild the observations.
func TestSendWindowEpochGating(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	w := k.Consumer("test-sw-epoch").SendWindow()
	feedAcks(w, sendWindowEpoch-1, 64*vm.PageSize, 128*vm.PageSize)
	if got := w.WindowPages(); got != DefaultSendWindowPages {
		t.Fatalf("window moved to %d inside the first epoch", got)
	}
	w.ObserveAck(64*vm.PageSize, 128*vm.PageSize)
	if got := w.WindowPages(); got == DefaultSendWindowPages {
		t.Fatal("window did not move on the epoch boundary")
	}
}

// TestSendWindowFixedPinned: a fixed handle tracks observations but never
// resizes — the ablation arms must stay at their configured size.
func TestSendWindowFixedPinned(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	for _, pin := range []int{2, 16, 64} {
		w := k.Consumer("test-sw-fixed").FixedSendWindow(pin)
		feedAcks(w, 10*sendWindowEpoch, vm.PageSize, vm.PageSize)
		if got := w.WindowPages(); got != pin {
			t.Fatalf("fixed(%d) drifted to %d", pin, got)
		}
		st := w.Stats()
		if !st.Fixed || st.Resizes != 0 {
			t.Fatalf("fixed(%d) stats wrong: %+v", pin, st)
		}
	}
}

// TestSendWindowInertOnGlobalCache: the figure-reproduction kernels pin
// CacheGlobal, whose consumers do not adapt; their send windows must stay
// at the historical constant no matter what they observe, so the paper
// figures stay byte-identical.
func TestSendWindowInertOnGlobalCache(t *testing.T) {
	k := bootSendWindowKernel(t, CacheGlobal)
	w := k.Consumer("test-sw-global").SendWindow()
	feedAcks(w, 10*sendWindowEpoch, vm.PageSize, vm.PageSize)
	if got := w.WindowPages(); got != DefaultSendWindowPages {
		t.Fatalf("global-cache window moved to %d; figures are no longer byte-identical", got)
	}
	if st := w.Stats(); st.WindowPages != DefaultSendWindowPages || st.Resizes != 0 {
		t.Fatalf("inert handle stats wrong: %+v", st)
	}
}

// TestSendWindowZeroAcksIgnored: pure window updates (no new bytes
// acknowledged) must not perturb the signals.
func TestSendWindowZeroAcksIgnored(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	w := k.Consumer("test-sw-zero").SendWindow()
	feedAcks(w, 100, 0, 50*vm.PageSize)
	if st := w.Stats(); st.Observations != 0 {
		t.Fatalf("zero-byte acks were counted: %+v", st)
	}
}

// TestSendWindowStallBackoff: a mapping-pressure stall must halve the
// window immediately and cap epoch growth at the halved size until the
// AIMD recovery probe re-earns it — the congestion response that keeps
// the adaptive arm off an exhausted cache without capping a long-lived
// connection for life.
func TestSendWindowStallBackoff(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	w := k.Consumer("test-sw-stall").SendWindow()

	// Grow to the ceiling first.
	feedAcks(w, 64, 40*vm.PageSize, 100*vm.PageSize)
	if got := w.WindowPages(); got != MaxSendWindowPages {
		t.Fatalf("pre-stall window %d, want %d", got, MaxSendWindowPages)
	}

	w.ObserveStall()
	if got := w.WindowPages(); got != MaxSendWindowPages/2 {
		t.Fatalf("post-stall window %d, want %d", got, MaxSendWindowPages/2)
	}
	if st := w.Stats(); st.Stalls != 1 || st.CeilPages != MaxSendWindowPages/2 {
		t.Fatalf("stall stats %+v, want 1 stall, ceil %d", st, MaxSendWindowPages/2)
	}

	// Fast ACK traffic may not grow the window past the stall ceiling
	// until sendWindowRecoveryEpochs stall-free epochs have passed.
	feedAcks(w, (sendWindowRecoveryEpochs-1)*sendWindowEpoch, 40*vm.PageSize, 100*vm.PageSize)
	if got := w.WindowPages(); got > MaxSendWindowPages/2 {
		t.Fatalf("window %d grew past stall ceiling %d before the recovery delay", got, MaxSendWindowPages/2)
	}

	// The next stall-free epoch earns the upward probe.
	feedAcks(w, sendWindowEpoch, 40*vm.PageSize, 100*vm.PageSize)
	if got := w.WindowPages(); got != MaxSendWindowPages {
		t.Fatalf("window %d after recovery probe, want %d", got, MaxSendWindowPages)
	}

	// Repeated stalls converge on the floor, where the cap holds for the
	// full recovery delay...
	for i := 0; i < 10; i++ {
		w.ObserveStall()
	}
	if got := w.WindowPages(); got != MinSendWindowPages {
		t.Fatalf("post-collapse window %d, want floor %d", got, MinSendWindowPages)
	}
	feedAcks(w, (sendWindowRecoveryEpochs-1)*sendWindowEpoch, 40*vm.PageSize, 100*vm.PageSize)
	if got := w.WindowPages(); got != MinSendWindowPages {
		t.Fatalf("window %d re-grew before the recovery delay", got)
	}
	// ...and sustained stall-free ACKs then climb all the way back: one
	// doubling per recovery delay, floor to ceiling.
	feedAcks(w, 6*sendWindowRecoveryEpochs*sendWindowEpoch, 40*vm.PageSize, 100*vm.PageSize)
	if got := w.WindowPages(); got != MaxSendWindowPages {
		t.Fatalf("window %d after sustained calm, want full recovery to %d", got, MaxSendWindowPages)
	}
}

// TestSendWindowStallResetsRecovery: a stall during the recovery delay
// must restart the calm count — pressure that keeps recurring keeps the
// cap down.
func TestSendWindowStallResetsRecovery(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	w := k.Consumer("test-sw-stall-reset").SendWindow()
	feedAcks(w, 64, 40*vm.PageSize, 100*vm.PageSize)
	w.ObserveStall()

	// Almost earn the probe, stall again, then almost earn it again: the
	// ceiling must reflect both stalls and no recovery.
	feedAcks(w, (sendWindowRecoveryEpochs-1)*sendWindowEpoch, 40*vm.PageSize, 100*vm.PageSize)
	w.ObserveStall()
	feedAcks(w, (sendWindowRecoveryEpochs-1)*sendWindowEpoch, 40*vm.PageSize, 100*vm.PageSize)
	if st := w.Stats(); st.CeilPages != MaxSendWindowPages/4 {
		t.Fatalf("ceil %d after re-stall, want %d (no recovery credit across stalls)",
			st.CeilPages, MaxSendWindowPages/4)
	}
}

// TestSendWindowFixedCeilStat: a pinned handle must report its pin as the
// ceiling too — the zero CeilPages the serve sweep's fixed arms used to
// report made their stats tables lie.
func TestSendWindowFixedCeilStat(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	for _, pin := range []int{2, 16, 64} {
		st := k.Consumer("test-sw-fixed-ceil").FixedSendWindow(pin).Stats()
		if st.CeilPages != pin {
			t.Fatalf("fixed(%d) reports CeilPages %d, want %d", pin, st.CeilPages, pin)
		}
	}
}

// TestSendWindowStallInertOnFixed: stalls must not move a pinned handle.
func TestSendWindowStallInertOnFixed(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	w := k.Consumer("test-sw-stall-fixed").FixedSendWindow(16)
	for i := 0; i < 5; i++ {
		w.ObserveStall()
	}
	if got := w.WindowPages(); got != 16 {
		t.Fatalf("fixed window moved to %d on stalls", got)
	}
	if st := w.Stats(); st.Resizes != 0 {
		t.Fatalf("fixed handle recorded %d resizes", st.Resizes)
	}
}

// TestSendWindowStartPages: the serving slow-start knob sets an adaptive
// handle's initial window, clamps out-of-range values, and is a no-op on
// pinned and non-adaptive handles.
func TestSendWindowStartPages(t *testing.T) {
	k := bootSendWindowKernel(t, CacheSharded)
	c := k.Consumer("test-sw-start")
	if got := c.SendWindow().StartPages(MinSendWindowPages).WindowPages(); got != MinSendWindowPages {
		t.Fatalf("slow-start window %d, want %d", got, MinSendWindowPages)
	}
	if got := c.SendWindow().StartPages(0).WindowPages(); got != MinSendWindowPages {
		t.Fatalf("clamped-low start %d, want %d", got, MinSendWindowPages)
	}
	if got := c.SendWindow().StartPages(1 << 20).WindowPages(); got != MaxSendWindowPages {
		t.Fatalf("clamped-high start %d, want %d", got, MaxSendWindowPages)
	}
	if got := c.FixedSendWindow(16).StartPages(2).WindowPages(); got != 16 {
		t.Fatalf("StartPages moved a pinned handle to %d", got)
	}
	kg := bootSendWindowKernel(t, CacheGlobal)
	if got := kg.Consumer("test-sw-start-g").SendWindow().StartPages(2).WindowPages(); got != DefaultSendWindowPages {
		t.Fatalf("StartPages moved an inert handle to %d", got)
	}
}
