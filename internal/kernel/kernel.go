// Package kernel assembles a bootable simulated kernel: machine, physical
// memory, page tables, the kernel virtual-address arena, and an ephemeral
// mapping implementation — either the sf_buf kernel or the original
// kernel, selected by configuration exactly as the paper's evaluation
// boots one or the other.
package kernel

import (
	"errors"
	"fmt"
	"sync"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// MapperKind selects which ephemeral mapping management the kernel boots
// with.
type MapperKind int

const (
	// SFBuf is the paper's kernel: the architecture-appropriate sf_buf
	// implementation (i386 mapping cache, amd64 direct map, sparc64
	// hybrid).
	SFBuf MapperKind = iota
	// OriginalKernel is the baseline: fresh virtual address per mapping,
	// global invalidation per unmapping.
	OriginalKernel
)

// String names the kernel variant as the paper's figures label it.
func (k MapperKind) String() string {
	if k == SFBuf {
		return "sf_buf"
	}
	return "original"
}

// CachePolicy selects the concurrency engine behind the i386 and sparc64
// mapping caches.  The Table-1 semantics are identical either way; the
// engines differ in locking granularity and in when TLB shootdowns are
// issued.
type CachePolicy int

const (
	// CacheSharded is the default: the hash table and inactive list are
	// split into lock-striped shards, each CPU keeps a freelist of clean
	// buffers it can allocate from without invalidations, and teardown
	// shootdowns are coalesced into one ranged IPI round per reclaim
	// batch.
	CacheSharded CachePolicy = iota
	// CacheGlobal is the paper's Section 4.2 design, byte-for-byte: one
	// mutex, lazy teardown, one shootdown round per shared reuse of an
	// accessed mapping.  The evaluation experiments pin this policy so
	// the reproduced figures keep matching the paper.
	CacheGlobal
)

// String names the cache engine for reports.
func (p CachePolicy) String() string {
	if p == CacheGlobal {
		return "global"
	}
	return "sharded"
}

// VectoredPolicy decides whether the converted I/O subsystems map
// multi-page extents through the vectored calls (AllocBatch/FreeBatch) or
// page by page.
type VectoredPolicy int

const (
	// VectoredAuto is the default: batch exactly where batching buys
	// something.  Subsystems consult NativeBatch — the sharded cache, the
	// amd64 direct map, and the original kernel's pmap_qenter path take
	// the vectored route; the paper's global-lock cache keeps its
	// historical per-page behaviour, so figure reproduction on
	// CacheGlobal stays byte-identical.
	VectoredAuto VectoredPolicy = iota
	// VectoredOn forces every converted subsystem onto the vectored
	// path, including the loop-fallback engines and the send paths of
	// the original kernel (which never batched historically).
	VectoredOn
	// VectoredOff forces every subsystem onto the per-page path — the
	// ablation knob for measuring what batching is worth.  Note it also
	// strips the original kernel of its pmap_qenter window batching, so
	// figure experiments must leave the policy on Auto.
	VectoredOff
)

// String names the policy for reports.
func (v VectoredPolicy) String() string {
	switch v {
	case VectoredOn:
		return "on"
	case VectoredOff:
		return "off"
	}
	return "auto"
}

// ContigPolicy decides whether the converted I/O subsystems map
// multi-page extents as contiguous runs (AllocRun/FreeRun) — one VA
// window, ranged translation, simulated superpage promotion — rather
// than as scattered batches or pages.
type ContigPolicy int

const (
	// ContigAuto is the default, and on the sf_buf kernel it now
	// resolves to the ADAPTIVE policy wherever the engine provides
	// native contiguity (NativeRun — the sharded cache's reserved
	// windows, the amd64 direct map): each consumer handle starts on
	// the run path (the historical Auto behaviour) and flips itself
	// between runs and batches per window-size epoch from its observed
	// reuse (see MapConsumer).  The paper's global-lock cache and the
	// original kernel keep their historical paths, so every
	// figure-reproduction experiment is untouched: the original kernel
	// is the baseline in each figure and must keep paying per-page
	// translation even though its 64-bit pmap_qenter range is
	// technically contiguous.
	ContigAuto ContigPolicy = iota
	// ContigOn forces every converted subsystem onto the run path,
	// including the fallback engines (which degrade to scattered runs).
	ContigOn
	// ContigOff forces batches/pages everywhere — the ablation knob for
	// measuring what contiguity is worth.
	ContigOff
	// ContigAdaptive names the adaptive per-consumer policy explicitly.
	// It resolves identically to Auto today (Auto's sf_buf resolution IS
	// adaptive); the distinct value exists so configurations can pin the
	// adaptive policy against future changes to Auto's meaning, and so
	// reports can label it.
	ContigAdaptive
)

// String names the policy for reports.
func (c ContigPolicy) String() string {
	switch c {
	case ContigOn:
		return "on"
	case ContigOff:
		return "off"
	case ContigAdaptive:
		return "adaptive"
	}
	return "auto"
}

// PhysPolicy selects the physical-frame allocator behind vm.PhysMem: the
// buddy allocator, whose order-indexed free lists keep physically
// contiguous, aligned extents allocatable after churn (AllocContig,
// promotion-aware AllocN), or the seed's LIFO free stack, on which
// contiguity exists only at boot.
type PhysPolicy int

const (
	// PhysBuddyAuto is the default: the buddy allocator on sf_buf kernels
	// running a native engine (the sharded cache, the amd64 direct map,
	// the sharded sparc64 hybrid), where recovered contiguity feeds
	// superpage promotion and free direct-map windows; the LIFO stack on
	// the original kernel and the paper's global-lock cache, so every
	// deterministic figure-reproduction experiment keeps the seed's
	// bit-exact frame allocation order.
	PhysBuddyAuto PhysPolicy = iota
	// PhysBuddyOn forces the buddy allocator everywhere.
	PhysBuddyOn
	// PhysBuddyOff forces the LIFO stack everywhere (the ablation knob:
	// what churn costs a kernel whose frame allocator cannot coalesce).
	PhysBuddyOff
)

// String names the policy for reports.
func (p PhysPolicy) String() string {
	switch p {
	case PhysBuddyOn:
		return "on"
	case PhysBuddyOff:
		return "off"
	}
	return "auto"
}

// ReservPolicy selects superpage reservation watermarks on the buddy
// allocator: while a socket's stock of intact superpage-span blocks is at
// or below the low watermark, single-page allocation steers into smaller
// blocks and splits a protected block only when nothing smaller exists
// anywhere (an explicitly counted spill).
type ReservPolicy int

const (
	// ReservAuto is the default: watermarks on every buddy-allocator
	// kernel (reservations are meaningless on a LIFO pool, and the
	// figure-reproduction kernels resolve to LIFO, so every deterministic
	// figure experiment is untouched).
	ReservAuto ReservPolicy = iota
	// ReservOn forces the watermarks wherever the buddy allocator runs.
	ReservOn
	// ReservOff disables them — the ablation arm that measures how fast
	// unguarded churn erodes contiguity.
	ReservOff
)

// String names the policy for reports.
func (r ReservPolicy) String() string {
	switch r {
	case ReservOn:
		return "on"
	case ReservOff:
		return "off"
	}
	return "auto"
}

// MigratePolicy selects defragmentation by migration: a Migrator that
// evacuates the few resident pages out of nearly-free superpage spans —
// rewriting their cache and run-window mappings in place, one shootdown
// flush per block — so buddy coalescing recovers the spans as intact
// blocks.  It runs as the background daemon's fourth idle-tick duty and
// as an on-demand pass when AllocPhysContig faces scattered-but-
// sufficient free memory.
type MigratePolicy int

const (
	// MigrateAuto is the default: migration wherever it can work — the
	// sharded i386 engine over a buddy pool (NewMigrator's requirement) —
	// which again excludes every figure-reproduction kernel.
	MigrateAuto MigratePolicy = iota
	// MigrateOn forces it (still nil on engines that cannot migrate).
	MigrateOn
	// MigrateOff disables it — the no-defrag baseline arm.
	MigrateOff
)

// String names the policy for reports.
func (p MigratePolicy) String() string {
	switch p {
	case MigrateOn:
		return "on"
	case MigrateOff:
		return "off"
	}
	return "auto"
}

// TierHintPolicy selects consumer-hinted hot-extent placement on a tiered
// physical pool (Config.Tiers >= 2): the kernel's tier keeper promotes
// extents the per-consumer reuse EWMAs classify as hot into the fast tier
// (migrating their frames and remapping parked windows in place, one
// shootdown flush per pass) and demotes the coldest residents under
// fast-tier pressure — synchronously when a promotion needs room, and as
// the background daemon's fifth idle-tick duty.
type TierHintPolicy int

const (
	// TierHintAuto is the default: hinted placement wherever it can work
	// — a tiered pool on an engine that can migrate (the sharded i386
	// cache over the buddy allocator).
	TierHintAuto TierHintPolicy = iota
	// TierHintOn forces hinted placement (still nil on engines that
	// cannot migrate).
	TierHintOn
	// TierHintOff disables placement: the tiers still charge their costs,
	// but frames stay wherever allocation put them — the tier-oblivious
	// baseline arm of the tier experiment.
	TierHintOff
)

// String names the policy for reports.
func (p TierHintPolicy) String() string {
	switch p {
	case TierHintOn:
		return "on"
	case TierHintOff:
		return "off"
	}
	return "auto"
}

// DefaultReservLowWater is the per-socket intact-superpage stock below
// which single-page allocation steers away from protected blocks.
const DefaultReservLowWater = 2

// DefaultFastFraction is the fast tier's default share of each socket's
// frames when Config.Tiers selects a tiered pool without an explicit
// FastFraction.
const DefaultFastFraction = 0.25

// DefaultMigrateBlocksPerTick bounds how many superpage spans one daemon
// idle tick may evacuate.
const DefaultMigrateBlocksPerTick = 1

// HomingPolicy selects how mapping state is placed on a multi-socket
// machine (Config.Sockets > 1).  On a one-socket machine the policy is
// irrelevant: every layout collapses to the flat one.
type HomingPolicy int

const (
	// HomingAuto is the default: socket-homed state whenever the machine
	// has more than one socket and the engine is sharded; flat otherwise.
	HomingAuto HomingPolicy = iota
	// HomingOn forces socket homing (still a no-op at one socket).
	HomingOn
	// HomingOff pins the hash-striped flat layout even on a multi-socket
	// machine — the NUMA experiment's baseline arm: shard homes fall
	// round-robin across packages, clean stock and the overflow pool stay
	// global, and reclaim's hand rotates over every socket's shards, so
	// the workload pays the cross-package costs homing is built to avoid.
	HomingOff
)

// String names the policy for reports.
func (h HomingPolicy) String() string {
	switch h {
	case HomingOn:
		return "homed"
	case HomingOff:
		return "striped"
	}
	return "auto"
}

// Config describes the kernel to boot.
type Config struct {
	// Platform is one of the Section 6.1 machines.
	Platform arch.Platform
	// Mapper selects sf_buf vs original ephemeral mapping management.
	Mapper MapperKind
	// PhysPages is the physical memory size in pages.  Zero defaults to
	// a comfortable 160 MB.
	PhysPages int
	// Backed selects real page storage (tests) vs cost-only pages
	// (large benchmarks).
	Backed bool
	// CacheEntries sizes the i386 mapping cache; zero means the paper's
	// 64K-entry default.  Ignored on amd64.
	CacheEntries int
	// NumColors and EntriesPerColor configure the sparc64 hybrid;
	// zero values take defaults (2 colors, 1024 entries each).
	NumColors       int
	EntriesPerColor int
	// Cache selects the mapping-cache engine: sharded (default) or the
	// paper's global-lock design.  Ignored on amd64 and by the original
	// kernel, which have no mapping cache.
	Cache CachePolicy
	// CacheShards, PerCPUFree and ReclaimBatch tune the sharded engine;
	// zero values derive defaults from the machine and cache size.
	CacheShards  int
	PerCPUFree   int
	ReclaimBatch int
	// ShootdownBatch caps the per-CPU shootdown queue before a flush is
	// forced; zero means smp.DefaultShootdownBatch.
	ShootdownBatch int
	// Vectored selects whether multi-page I/O maps page runs through the
	// vectored AllocBatch/FreeBatch calls; the zero value (Auto) batches
	// exactly where the booted engine makes batching a genuine fast path.
	Vectored VectoredPolicy
	// Contig selects whether multi-page I/O maps extents as contiguous
	// runs (AllocRun/FreeRun).  The zero value (Auto) resolves, on
	// engines with native contiguity, to the ADAPTIVE per-consumer
	// policy — each subsystem's MapConsumer handle flips between runs
	// and batches from its observed reuse, starting on the run path —
	// and to the historical static paths everywhere else.  On/Off force
	// one path for every consumer; Adaptive names Auto's sf_buf
	// resolution explicitly.  Contig takes precedence over Vectored
	// where both would apply.
	Contig ContigPolicy
	// PhysBuddy selects the physical-frame allocator.  The zero value
	// (Auto) boots the buddy allocator exactly where recovered physical
	// contiguity pays (sf_buf kernels on non-figure engines) and keeps
	// the LIFO stack on the figure-reproduction configurations, whose
	// deterministic experiments must stay bit-identical.
	PhysBuddy PhysPolicy
	// ReclaimWatermark configures the background reclaim-and-laundering
	// daemon on engines with sharded cores: the clean-stock low watermark
	// (buffers) the idle-tick pass refills each CPU's freelist and the
	// overflow pool to.  Zero enables the daemon with its derived default
	// (half the per-CPU freelist capacity); negative disables the daemon
	// entirely (reclaim happens only on allocation-miss shortage, the
	// paper's behaviour).  The figure engines (CacheGlobal, the original
	// kernel) never run a daemon regardless.
	ReclaimWatermark int
	// LaunderAge bounds how long a freed run window may stay parked
	// (revivable) before the age-triggered laundering retires it, in
	// simulated cycles.  Zero keeps sfbuf.DefaultLaunderAge; negative
	// disables the age bound (windows launder only by count threshold or
	// arena pressure, the pre-daemon behaviour).
	LaunderAge cycles.Cycles
	// Reserv selects superpage reservation watermarks on the buddy
	// allocator (Auto: on wherever the buddy allocator runs), and
	// ReservLowWater the per-socket protected stock (0 means
	// DefaultReservLowWater).
	Reserv         ReservPolicy
	ReservLowWater int
	// Migrate selects defragmentation by migration (Auto: on wherever the
	// engine can migrate — the sharded i386 cache over a buddy pool).
	// MigrateMaxResident caps how many resident pages a span may hold and
	// still be worth evacuating (0 means a quarter of the superpage span);
	// MigrateBlocksPerTick bounds the daemon's per-idle-tick evacuation
	// budget (0 means DefaultMigrateBlocksPerTick).
	Migrate              MigratePolicy
	MigrateMaxResident   int
	MigrateBlocksPerTick int
	// Tiers models the physical memory as that many performance tiers.
	// 2 splits each socket's frame range into a fast low-address prefix
	// (FastFraction of its frames) and a slow remainder — far DRAM, CXL-
	// attached or persistent memory — whose copies, zeroing and checksums
	// pay the platform's SlowMemPerByte surcharge (Counters.SlowMemCycles).
	// Zero or one keeps the uniform pool: every existing configuration,
	// including the figure-reproduction kernels, is bit-identical.
	Tiers int
	// FastFraction is the fast tier's share of each socket's frames when
	// Tiers >= 2; zero means DefaultFastFraction.
	FastFraction float64
	// TierHints selects consumer-hinted hot-extent placement on the
	// tiered pool (Auto: on wherever the engine can migrate).  Off leaves
	// frames where allocation put them — the tier-oblivious baseline.
	TierHints TierHintPolicy
	// Sockets models the machine as that many CPU packages: consecutive
	// CPU-id blocks become sockets, physical frames are homed on sockets
	// by address range, and cross-package lock acquisitions, IPI
	// deliveries, and memory traffic pay the platform's remote
	// multipliers (Counters.RemoteLockAcq / RemoteIPIs /
	// RemoteMemCycles).  The CPU count must divide evenly.  Zero or one
	// keeps the flat machine: every existing configuration, including the
	// figure-reproduction kernels, is bit-identical.
	Sockets int
	// Homing places the mapping state on a multi-socket machine: Auto
	// homes state per socket whenever Sockets > 1 (shards striped within
	// the frame's home socket, per-CPU freelists and pool sub-stocks per
	// package, run windows and KVA from socket-local regions, the daemon
	// refilling from its own socket); Off pins the flat hash-striped
	// layout as the NUMA baseline arm.  Ignored at Sockets <= 1.
	Homing HomingPolicy
}

// UsesBuddyPhys reports the config's resolved frame-allocator choice.
func (cfg Config) UsesBuddyPhys() bool {
	switch cfg.PhysBuddy {
	case PhysBuddyOn:
		return true
	case PhysBuddyOff:
		return false
	}
	return cfg.Mapper == SFBuf && cfg.Cache != CacheGlobal
}

// UsesReservation reports the config's resolved reservation choice.  The
// watermarks live in the buddy allocator, so they require it regardless
// of policy.
func (cfg Config) UsesReservation() bool {
	if !cfg.UsesBuddyPhys() {
		return false
	}
	return cfg.Reserv != ReservOff
}

// UsesMigration reports the config's resolved defragmentation choice.
// Like the reservation, migration requires the buddy allocator; it
// additionally requires an engine that can migrate, which Boot discovers
// by whether sfbuf.NewMigrator accepts the mapper.
func (cfg Config) UsesMigration() bool {
	if !cfg.UsesBuddyPhys() {
		return false
	}
	return cfg.Migrate != MigrateOff
}

// UsesTiering reports whether the config boots a tiered physical pool.
func (cfg Config) UsesTiering() bool { return cfg.Tiers >= 2 }

// UsesTierHints reports the config's resolved hot-extent placement
// choice.  Placement moves frames with the migration machinery, so —
// like defragmentation — it additionally requires an engine that can
// migrate, which Boot discovers via sfbuf.NewMigrator.
func (cfg Config) UsesTierHints() bool {
	if !cfg.UsesTiering() || !cfg.UsesBuddyPhys() {
		return false
	}
	return cfg.TierHints != TierHintOff
}

// sockets returns the configured socket count, clamped to at least 1.
func (cfg Config) sockets() int {
	if cfg.Sockets < 1 {
		return 1
	}
	return cfg.Sockets
}

// UsesHoming reports the config's resolved state-placement choice: true
// when a multi-socket machine homes its mapping state per package.
func (cfg Config) UsesHoming() bool {
	if cfg.sockets() <= 1 || cfg.Homing == HomingOff {
		return false
	}
	return cfg.Mapper == SFBuf && cfg.Cache != CacheGlobal
}

// Kernel is one booted simulated kernel instance.
type Kernel struct {
	Cfg   Config
	M     *smp.Machine
	Pmap  *pmap.Pmap
	Arena *kva.Arena
	Map   sfbuf.Mapper

	// daemon is the background reclaim-and-laundering worker, nil when
	// disabled or when the engine has no sharded cores.
	daemon *sfbuf.Daemon

	// migrator defragments physical memory by evacuating nearly-free
	// superpage spans; nil when disabled or unsupported by the engine.
	migrator *sfbuf.Migrator

	// tier is the hot-extent placement keeper on a tiered pool (see
	// tier.go); nil when the pool is uniform, hints are off, or the
	// engine cannot migrate.
	tier *TierKeeper

	// consumers is the registry of per-subsystem contiguity-policy
	// handles (see Consumer).
	consumersMu sync.Mutex
	consumers   map[string]*MapConsumer
}

// Boot constructs the machine and the configured mapping implementation.
func Boot(cfg Config) (*Kernel, error) {
	if cfg.PhysPages == 0 {
		cfg.PhysPages = 40960 // 160 MB
	}
	sockets := cfg.sockets()
	var phys *vm.PhysMem
	if cfg.UsesBuddyPhys() {
		phys = vm.NewBuddyPhysMemNUMA(cfg.PhysPages, cfg.Backed, sockets)
	} else {
		phys = vm.NewPhysMem(cfg.PhysPages, cfg.Backed)
		if sockets > 1 {
			// LIFO pools keep their exact allocation order; the partition
			// only homes frames for SocketOfFrame and remote-memory
			// charging.
			phys.HomeSockets(sockets)
		}
	}
	if cfg.UsesTiering() {
		// The split must land before anything allocates: on a buddy pool
		// the free-block cover is rebuilt per tier sub-range.  LIFO pools
		// take the split as lookup-only metadata, so slow-tier charging
		// works there too; hinted placement additionally needs the buddy
		// allocator (tier-targeted allocation and migration).
		per := cfg.PhysPages / sockets
		ff := cfg.FastFraction
		if ff <= 0 {
			ff = DefaultFastFraction
		}
		if ff > 1 {
			ff = 1
		}
		fast := int(float64(per)*ff + 0.5)
		if fast < 1 {
			fast = 1
		}
		phys.SetTierSplit(fast)
	}
	m := smp.NewMachineWithPhys(cfg.Platform, phys)
	m.SetTopology(sockets)
	if cfg.ShootdownBatch > 0 {
		m.SetShootdownBatch(cfg.ShootdownBatch)
	}
	pm := pmap.New(m)

	var arena *kva.Arena
	if cfg.Platform.Arch == arch.I386 {
		arena = kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	} else {
		arena = kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	}
	if cfg.UsesHoming() {
		// One arena region per socket: run windows and other window
		// reservations carve address space from their socket's region, so
		// a window's span identifies its home and frees re-coalesce
		// per package.
		arena.SetRegions(sockets)
	}

	k := &Kernel{Cfg: cfg, M: m, Pmap: pm, Arena: arena}
	var err error
	k.Map, err = buildMapper(cfg, m, pm, arena)
	if err != nil {
		return nil, err
	}
	if cfg.UsesReservation() {
		low := cfg.ReservLowWater
		if low <= 0 {
			low = DefaultReservLowWater
		}
		order := 0
		for 1<<order < pmap.SuperpagePages {
			order++
		}
		phys.SetReservation(order, low)
	}
	if cfg.UsesMigration() {
		// NewMigrator answers nil for engines that cannot migrate (the
		// global-lock cache, amd64, sparc64, LIFO pools) — the knob then
		// resolves off by itself.
		k.migrator = sfbuf.NewMigrator(k.Map, sfbuf.MigrateConfig{
			MaxResident: cfg.MigrateMaxResident,
		})
	}
	// Background reclaim/laundering rides the idle tick on engines with
	// sharded cores.  The figure engines never get a daemon (NewDaemon
	// returns nil for them), and their experiments never call Idle, so
	// figure reproduction stays bit-identical.
	if cfg.Mapper == SFBuf && cfg.Cache != CacheGlobal {
		if cfg.LaunderAge != 0 {
			age := cfg.LaunderAge
			if age < 0 {
				age = 0
			}
			sfbuf.SetLaunderAge(k.Map, age)
		}
		if cfg.ReclaimWatermark >= 0 {
			if d := sfbuf.NewDaemon(k.Map, sfbuf.DaemonConfig{Watermark: cfg.ReclaimWatermark}); d != nil {
				k.daemon = d
				if k.migrator != nil {
					blocks := cfg.MigrateBlocksPerTick
					if blocks <= 0 {
						blocks = DefaultMigrateBlocksPerTick
					}
					d.SetMigrator(k.migrator, blocks)
				}
				m.RegisterIdleWork(d.Run)
			}
		}
	}
	if cfg.UsesTierHints() && phys.Tiered() {
		// The tier keeper reuses the migration machinery even when the
		// defrag knob is off: a dedicated Migrator over the same cache
		// shares the gate discipline, so placement and defragmentation
		// cannot race each other's remaps.
		mig := k.migrator
		if mig == nil {
			mig = sfbuf.NewMigrator(k.Map, sfbuf.MigrateConfig{
				MaxResident: cfg.MigrateMaxResident,
			})
		}
		if mig != nil {
			k.tier = newTierKeeper(k, mig)
			if k.daemon != nil {
				k.daemon.SetTierDuty(k.tier.IdleDemote)
			}
		}
	}
	return k, nil
}

func buildMapper(cfg Config, m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (sfbuf.Mapper, error) {
	if cfg.Mapper == OriginalKernel {
		return sfbuf.NewOriginal(m, pm, arena), nil
	}
	shardCfg := sfbuf.ShardedConfig{
		Shards:       cfg.CacheShards,
		PerCPUFree:   cfg.PerCPUFree,
		ReclaimBatch: cfg.ReclaimBatch,
		Homed:        cfg.UsesHoming(),
	}
	switch cfg.Platform.Arch {
	case arch.I386:
		if cfg.Cache == CacheGlobal {
			return sfbuf.NewI386(m, pm, arena, cfg.CacheEntries)
		}
		return sfbuf.NewI386Sharded(m, pm, arena, cfg.CacheEntries, shardCfg)
	case arch.AMD64:
		return sfbuf.NewAMD64(m, pm), nil
	case arch.SPARC64:
		nc := cfg.NumColors
		if nc == 0 {
			nc = 2
		}
		if cfg.Cache == CacheGlobal {
			return sfbuf.NewSparc64(m, pm, arena, nc, cfg.EntriesPerColor)
		}
		return sfbuf.NewSparc64Sharded(m, pm, arena, nc, cfg.EntriesPerColor, shardCfg)
	}
	return nil, fmt.Errorf("kernel: unknown architecture %v", cfg.Platform.Arch)
}

// MustBoot is Boot for tests and examples where failure is fatal.
func MustBoot(cfg Config) *Kernel {
	k, err := Boot(cfg)
	if err != nil {
		panic(err)
	}
	return k
}

// Ctx returns a kernel thread context on the given CPU.
func (k *Kernel) Ctx(cpu int) *smp.Context { return k.M.Ctx(cpu) }

// UseVectored reports whether multi-page extents (pipe direct windows,
// memory-disk runs) should be mapped through the vectored calls.  Auto
// follows the engine: native batchers (sharded cache, amd64 direct map,
// the original kernel's pmap_qenter path) batch; the global-lock cache
// keeps the per-page path the paper describes.
func (k *Kernel) UseVectored() bool {
	switch k.Cfg.Vectored {
	case VectoredOn:
		return true
	case VectoredOff:
		return false
	}
	return sfbuf.NativeBatch(k.Map)
}

// UseVectoredSend reports whether the send-side subsystems (sendfile,
// zero-copy socket send) should batch-map their page runs.  Auto excludes
// the original kernel even though its mapper batches: the historical
// sendfile allocated kernel virtual addresses one page at a time, and the
// evaluation baselines must keep paying exactly that.  VectoredOn forces
// batching everywhere.
func (k *Kernel) UseVectoredSend() bool {
	switch k.Cfg.Vectored {
	case VectoredOn:
		return true
	case VectoredOff:
		return false
	}
	return k.Cfg.Mapper != OriginalKernel && sfbuf.NativeBatch(k.Map)
}

// UseRuns reports the STATIC contiguity resolution: whether multi-page
// extents should be mapped as contiguous runs when no adaptive state
// applies.  Auto and Adaptive both require native contiguity AND the
// sf_buf kernel: the original kernel is every figure's baseline and
// must keep its historical per-page translation costs even though its
// 64-bit batch range is contiguous, and the global-lock cache has no
// contiguous path at all.  Subsystems no longer call this directly —
// they route decisions through a Consumer handle, which under the
// adaptive policy starts from this resolution and then flips itself per
// observed reuse.  Where the decision is false, UseVectored still
// decides batches vs pages.
func (k *Kernel) UseRuns() bool {
	switch k.Cfg.Contig {
	case ContigOn:
		return true
	case ContigOff:
		return false
	}
	return k.Cfg.Mapper != OriginalKernel && sfbuf.NativeRun(k.Map)
}

// UseRunsSend is UseRuns for the send-side subsystems (sendfile,
// zero-copy socket send).  Unlike the UseVectored/UseVectoredSend pair —
// whose Auto rules genuinely differ because the original kernel batches
// windows but never batched sends — the run rule is identical on both
// sides (Auto already excludes the original kernel everywhere), so this
// simply delegates; the separate name keeps the send-path call sites
// symmetric with the vectored policy.
func (k *Kernel) UseRunsSend() bool { return k.UseRuns() }

// mapCapacityPages reports how many mappings the booted engine can hold
// at once: the i386 cache's entry count, the sparc64 hybrid's summed
// per-color entries, or 0 (unbounded) for the amd64 direct map, which
// never evicts.  The adaptive contiguity policy bounds its page-reuse
// recency window by this — a frame last mapped more than a cache-ful of
// observations ago has likely been evicted, so its repeat would miss
// the hash cache anyway.
func (k *Kernel) mapCapacityPages() int {
	switch k.Cfg.Platform.Arch {
	case arch.AMD64:
		return 0
	case arch.SPARC64:
		nc := k.Cfg.NumColors
		if nc == 0 {
			nc = 2
		}
		epc := k.Cfg.EntriesPerColor
		if epc == 0 {
			epc = 1024
		}
		return nc * epc
	default:
		if k.Cfg.CacheEntries > 0 {
			return k.Cfg.CacheEntries
		}
		return sfbuf.DefaultI386Entries
	}
}

// PhysStats snapshots the physical frame allocator's fragmentation
// picture: free blocks per buddy order, the largest contiguous free
// extent, split/coalesce counts.
func (k *Kernel) PhysStats() vm.PhysStats { return k.M.Phys.PhysStats() }

// PhysContigAlign is the frame-alignment hint for an n-page physically
// contiguous extent on this kernel:
//
//   - Extents that can cover a superpage align to the superpage span, so
//     an aligned run window over them promotes (and on amd64 they fall on
//     the direct map's own 2 MB boundaries).
//   - On sparc64 smaller extents align to the color modulus: the direct
//     map's cache color of page i is then i mod NumColors, matching any
//     color-aligned user mapping of the same buffer, so the hybrid keeps
//     its direct-map fast path (Section 4.4) for buddy-allocated pools.
//   - Everything else needs no alignment beyond contiguity itself.
func (k *Kernel) PhysContigAlign(n int) int {
	if n >= pmap.SuperpagePages {
		return pmap.SuperpagePages
	}
	if k.Cfg.Platform.Arch == arch.SPARC64 {
		if nc := k.Cfg.NumColors; nc > 1 {
			return nc
		}
		return 2
	}
	return 1
}

// AllocPhysContig allocates n physically contiguous frames with the
// kernel's alignment/color hint applied.  It fails with vm.ErrNoContig on
// LIFO pools and under unrecoverable fragmentation; callers that can use
// scattered pages fall back to AllocN.
//
// With a migrator booted, a contiguity failure over SUFFICIENT total free
// memory triggers one synchronous defragmentation pass — evacuate enough
// nearly-free superpage spans to cover the request — and one retry: the
// on-demand complement to the daemon's ahead-of-demand idle-tick rounds.
func (k *Kernel) AllocPhysContig(n int) ([]*vm.Page, error) {
	pages, err := k.M.Phys.AllocContig(n, k.PhysContigAlign(n))
	if err == nil || k.migrator == nil || !errors.Is(err, vm.ErrNoContig) {
		return pages, err
	}
	if k.M.Phys.FreeFrames() < n {
		return nil, err // genuinely out of memory: migration moves, it does not mint
	}
	span := k.migrator.Span()
	blocks := (n + span - 1) / span
	if k.migrator.MigrateBlocks(k.Ctx(0), blocks) == 0 {
		return nil, err
	}
	return k.M.Phys.AllocContig(n, k.PhysContigAlign(n))
}

// MigrationEnabled reports whether the kernel booted a defragmentation
// migrator.
func (k *Kernel) MigrationEnabled() bool { return k.migrator != nil }

// MigrateNow forces one synchronous defragmentation round on the given
// CPU — up to blocks nearly-free superpage spans evacuated — and returns
// how many fully coalesced.  Zero (and a no-op) without a migrator.  The
// deterministic experiments use it to defragment at controlled points.
func (k *Kernel) MigrateNow(cpu, blocks int) int {
	if k.migrator == nil {
		return 0
	}
	return k.migrator.MigrateBlocks(k.Ctx(cpu), blocks)
}

// MigrationStats snapshots the migrator's counters (zero value when no
// migrator is booted).
func (k *Kernel) MigrationStats() sfbuf.MigrationStats { return k.migrator.Stats() }

// Idle models cpu being idle for dur simulated cycles.  If the background
// daemon is enabled it runs a maintenance pass on that CPU within the
// budget; either way the machine clock advances by at least dur, so
// age-bound laundering sees the lull.  Returns the cycles the daemon
// consumed.
func (k *Kernel) Idle(cpu int, dur cycles.Cycles) cycles.Cycles {
	return k.M.Idle(cpu, dur)
}

// DaemonEnabled reports whether the background reclaim daemon is wired to
// the machine's idle tick.
func (k *Kernel) DaemonEnabled() bool { return k.daemon != nil }

// DaemonStats reports cumulative background-daemon activity (zero value
// when no daemon runs).
func (k *Kernel) DaemonStats() sfbuf.DaemonStats {
	if k.daemon == nil {
		return sfbuf.DaemonStats{}
	}
	return k.daemon.Stats()
}

// Reset zeroes all machine counters and mapper statistics, preparing for a
// measured run.
func (k *Kernel) Reset() {
	k.M.ResetCounters()
	k.Map.ResetStats()
}

// Name describes the booted configuration, e.g. "Xeon-MP/sf_buf".
func (k *Kernel) Name() string {
	return k.Cfg.Platform.Name + "/" + k.Cfg.Mapper.String()
}
