// Package kernel assembles a bootable simulated kernel: machine, physical
// memory, page tables, the kernel virtual-address arena, and an ephemeral
// mapping implementation — either the sf_buf kernel or the original
// kernel, selected by configuration exactly as the paper's evaluation
// boots one or the other.
package kernel

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kva"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
)

// MapperKind selects which ephemeral mapping management the kernel boots
// with.
type MapperKind int

const (
	// SFBuf is the paper's kernel: the architecture-appropriate sf_buf
	// implementation (i386 mapping cache, amd64 direct map, sparc64
	// hybrid).
	SFBuf MapperKind = iota
	// OriginalKernel is the baseline: fresh virtual address per mapping,
	// global invalidation per unmapping.
	OriginalKernel
)

// String names the kernel variant as the paper's figures label it.
func (k MapperKind) String() string {
	if k == SFBuf {
		return "sf_buf"
	}
	return "original"
}

// Config describes the kernel to boot.
type Config struct {
	// Platform is one of the Section 6.1 machines.
	Platform arch.Platform
	// Mapper selects sf_buf vs original ephemeral mapping management.
	Mapper MapperKind
	// PhysPages is the physical memory size in pages.  Zero defaults to
	// a comfortable 160 MB.
	PhysPages int
	// Backed selects real page storage (tests) vs cost-only pages
	// (large benchmarks).
	Backed bool
	// CacheEntries sizes the i386 mapping cache; zero means the paper's
	// 64K-entry default.  Ignored on amd64.
	CacheEntries int
	// NumColors and EntriesPerColor configure the sparc64 hybrid;
	// zero values take defaults (2 colors, 1024 entries each).
	NumColors       int
	EntriesPerColor int
}

// Kernel is one booted simulated kernel instance.
type Kernel struct {
	Cfg   Config
	M     *smp.Machine
	Pmap  *pmap.Pmap
	Arena *kva.Arena
	Map   sfbuf.Mapper
}

// Boot constructs the machine and the configured mapping implementation.
func Boot(cfg Config) (*Kernel, error) {
	if cfg.PhysPages == 0 {
		cfg.PhysPages = 40960 // 160 MB
	}
	m := smp.NewMachine(cfg.Platform, cfg.PhysPages, cfg.Backed)
	pm := pmap.New(m)

	var arena *kva.Arena
	if cfg.Platform.Arch == arch.I386 {
		arena = kva.NewArena(pmap.KVABaseI386, pmap.KVASizeI386)
	} else {
		arena = kva.NewArena(pmap.KVABaseAMD64, pmap.KVASizeAMD64)
	}

	k := &Kernel{Cfg: cfg, M: m, Pmap: pm, Arena: arena}
	var err error
	k.Map, err = buildMapper(cfg, m, pm, arena)
	if err != nil {
		return nil, err
	}
	return k, nil
}

func buildMapper(cfg Config, m *smp.Machine, pm *pmap.Pmap, arena *kva.Arena) (sfbuf.Mapper, error) {
	if cfg.Mapper == OriginalKernel {
		return sfbuf.NewOriginal(m, pm, arena), nil
	}
	switch cfg.Platform.Arch {
	case arch.I386:
		return sfbuf.NewI386(m, pm, arena, cfg.CacheEntries)
	case arch.AMD64:
		return sfbuf.NewAMD64(m, pm), nil
	case arch.SPARC64:
		nc := cfg.NumColors
		if nc == 0 {
			nc = 2
		}
		return sfbuf.NewSparc64(m, pm, arena, nc, cfg.EntriesPerColor)
	}
	return nil, fmt.Errorf("kernel: unknown architecture %v", cfg.Platform.Arch)
}

// MustBoot is Boot for tests and examples where failure is fatal.
func MustBoot(cfg Config) *Kernel {
	k, err := Boot(cfg)
	if err != nil {
		panic(err)
	}
	return k
}

// Ctx returns a kernel thread context on the given CPU.
func (k *Kernel) Ctx(cpu int) *smp.Context { return k.M.Ctx(cpu) }

// Reset zeroes all machine counters and mapper statistics, preparing for a
// measured run.
func (k *Kernel) Reset() {
	k.M.ResetCounters()
	k.Map.ResetStats()
}

// Name describes the booted configuration, e.g. "Xeon-MP/sf_buf".
func (k *Kernel) Name() string {
	return k.Cfg.Platform.Name + "/" + k.Cfg.Mapper.String()
}
