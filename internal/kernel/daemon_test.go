package kernel

// Boot-time wiring tests for the background reclaim-and-laundering daemon
// knobs (Config.ReclaimWatermark, Config.LaunderAge) and the Kernel.Idle
// passthrough.

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/sfbuf"
)

func TestDaemonWiring(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"sharded default", Config{Platform: arch.XeonMP(), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32}, true},
		{"sharded sparc64", Config{Platform: arch.Sparc64MP(), Mapper: SFBuf,
			PhysPages: 256, EntriesPerColor: 32}, true},
		{"explicit watermark", Config{Platform: arch.XeonMP(), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32, ReclaimWatermark: 4}, true},
		{"disabled by watermark", Config{Platform: arch.XeonMP(), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32, ReclaimWatermark: -1}, false},
		{"global-lock figure engine", Config{Platform: arch.XeonMP(), Mapper: SFBuf,
			PhysPages: 256, CacheEntries: 32, Cache: CacheGlobal}, false},
		{"original kernel", Config{Platform: arch.XeonMP(), Mapper: OriginalKernel,
			PhysPages: 256}, false},
		{"amd64 direct map", Config{Platform: arch.OpteronMP(), Mapper: SFBuf,
			PhysPages: 256}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, err := Boot(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := k.DaemonEnabled(); got != tc.want {
				t.Fatalf("DaemonEnabled = %v, want %v", got, tc.want)
			}
			if !tc.want {
				if s := k.DaemonStats(); s.Passes != 0 || s.RefillRounds != 0 ||
					s.RefilledBufs != 0 || s.TrimmedWindows != 0 ||
					len(s.RefilledBySocket) != 0 || len(s.TrimmedBySocket) != 0 {
					t.Fatalf("DaemonStats = %+v without a daemon, want zero", s)
				}
				// Idle must still be safe (pure clock advance).
				if spent := k.Idle(0, 1000); spent != 0 {
					t.Fatalf("Idle spent %d with no daemon, want 0", spent)
				}
			}
		})
	}
}

// TestKernelIdleRunsDaemon: after churn leaves the cache dirty, an idle
// tick must run the daemon on the idling CPU and charge its work against
// the tick.
func TestKernelIdleRunsDaemon(t *testing.T) {
	k := MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf,
		Backed: true, PhysPages: 512, CacheEntries: 32})
	ctx := k.Ctx(0)
	pages, err := k.M.Phys.AllocN(32)
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := k.Map.AllocBatch(ctx, pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bufs {
		if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
			t.Fatal(err)
		}
	}
	k.Map.FreeBatch(ctx, bufs)

	spent := k.Idle(0, 1<<20)
	if spent <= 0 {
		t.Fatalf("Idle spent %d cycles, want > 0 (refill work was available)", spent)
	}
	ds := k.DaemonStats()
	if ds.Passes == 0 || ds.RefilledBufs == 0 {
		t.Fatalf("daemon stats = %+v, want a pass with refilled buffers", ds)
	}
	c := k.M.Counters()
	if got := c.DaemonCycles.Load(); got != int64(spent) {
		t.Fatalf("DaemonCycles = %d, want %d (the tick's charge)", got, spent)
	}
	if got := c.IdleCycles.Load(); got != 1<<20 {
		t.Fatalf("IdleCycles = %d, want the full tick", got)
	}
}

// TestLaunderAgeKnob: Config.LaunderAge passes through to the run pools —
// a small bound launders an aged parked window on the next allocation, a
// negative bound disables aging so the window stays revivable.
func TestLaunderAgeKnob(t *testing.T) {
	parkAndRepeat := func(age cycles.Cycles) sfbuf.RunWindowStats {
		k := MustBoot(Config{Platform: arch.XeonMP(), Mapper: SFBuf,
			Backed: true, PhysPages: 512, CacheEntries: 32,
			ReclaimWatermark: -1, LaunderAge: age})
		ctx := k.Ctx(0)
		pages, err := k.M.Phys.AllocN(4)
		if err != nil {
			t.Fatal(err)
		}
		run, err := k.Map.AllocRun(ctx, pages, 0)
		if err != nil {
			t.Fatal(err)
		}
		k.Map.FreeRun(ctx, run)
		k.Idle(0, 1<<18) // pure clock advance: the daemon is disabled
		run2, err := k.Map.AllocRun(ctx, pages, 0)
		if err != nil {
			t.Fatal(err)
		}
		k.Map.FreeRun(ctx, run2)
		return k.Map.(*sfbuf.I386).RunWindowStats()
	}

	aged := parkAndRepeat(1 << 17)
	if aged.Revives != 0 || aged.AgedWindows != 1 {
		t.Fatalf("small LaunderAge: revives/aged = %d/%d, want 0/1", aged.Revives, aged.AgedWindows)
	}
	kept := parkAndRepeat(-1)
	if kept.Revives != 1 || kept.AgedWindows != 0 {
		t.Fatalf("LaunderAge < 0: revives/aged = %d/%d, want 1/0 (age bound disabled)", kept.Revives, kept.AgedWindows)
	}
}
