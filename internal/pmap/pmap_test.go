package pmap

import (
	"errors"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

func newTestPmap(t *testing.T, p arch.Platform) (*smp.Machine, *Pmap) {
	t.Helper()
	m := smp.NewMachine(p, 64, true)
	return m, New(m)
}

const testVA = uint64(KVABaseI386)

func TestKEnterTranslate(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	oldValid, oldAccessed := pm.KEnter(ctx, testVA, pg)
	if oldValid || oldAccessed {
		t.Fatalf("fresh PTE reported old state valid=%v accessed=%v", oldValid, oldAccessed)
	}
	got, err := pm.Translate(ctx, testVA, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != pg {
		t.Fatalf("translated to %v, want %v", got, pg)
	}
}

func TestTranslateFaultsOnUnmapped(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	if _, err := pm.Translate(m.Ctx(0), testVA, false); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
}

func TestTranslateSetsAccessedAndModified(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	pm.KEnter(ctx, testVA, pg)
	pte, _ := pm.Probe(testVA)
	if pte.Accessed || pte.Modified {
		t.Fatal("KEnter must clear A/M bits")
	}
	if _, err := pm.Translate(ctx, testVA, false); err != nil {
		t.Fatal(err)
	}
	pte, _ = pm.Probe(testVA)
	if !pte.Accessed || pte.Modified {
		t.Fatalf("after read: %+v", pte)
	}
	// A write through a cached TLB entry does not rewalk; invalidate the
	// TLB entry to force a walk that sets M.
	ctx.InvalidateLocal(VPN(testVA))
	if _, err := pm.Translate(ctx, testVA, true); err != nil {
		t.Fatal(err)
	}
	pte, _ = pm.Probe(testVA)
	if !pte.Modified {
		t.Fatal("write walk must set modified")
	}
}

func TestKEnterReportsOldAccessed(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	p1, _ := m.Phys.Alloc()
	p2, _ := m.Phys.Alloc()
	pm.KEnter(ctx, testVA, p1)
	pm.Translate(ctx, testVA, false) // sets accessed
	oldValid, oldAccessed := pm.KEnter(ctx, testVA, p2)
	if !oldValid || !oldAccessed {
		t.Fatalf("old state = (%v,%v), want (true,true)", oldValid, oldAccessed)
	}
	// And the replacement cleared the bits again.
	oldValid, oldAccessed = pm.KEnter(ctx, testVA, p1)
	if !oldValid || oldAccessed {
		t.Fatalf("old state = (%v,%v), want (true,false)", oldValid, oldAccessed)
	}
}

// TestStaleTLBWinsOverPageTables is the honesty check the whole simulator
// rests on: changing a PTE without invalidating leaves the old translation
// live on any CPU that cached it.
func TestStaleTLBWinsOverPageTables(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	p1, _ := m.Phys.Alloc()
	p2, _ := m.Phys.Alloc()
	p1.Data()[0] = 0x11
	p2.Data()[0] = 0x22

	pm.KEnter(ctx, testVA, p1)
	got, _ := pm.Translate(ctx, testVA, false) // fills TLB with p1
	if got.Data()[0] != 0x11 {
		t.Fatal("initial translation wrong")
	}

	pm.KEnter(ctx, testVA, p2) // remap WITHOUT invalidation

	got, err := pm.Translate(ctx, testVA, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[0] != 0x11 {
		t.Fatal("TLB coherence is being faked: stale entry did not win")
	}

	// After the invalidation the new mapping is visible.
	ctx.InvalidateLocal(VPN(testVA))
	got, _ = pm.Translate(ctx, testVA, false)
	if got.Data()[0] != 0x22 {
		t.Fatal("translation after invalidation still stale")
	}
}

// TestCrossCPUStaleness: CPU 1 keeps using its stale entry even after CPU 0
// invalidated its own.
func TestCrossCPUStaleness(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx0, ctx1 := m.Ctx(0), m.Ctx(1)
	p1, _ := m.Phys.Alloc()
	p2, _ := m.Phys.Alloc()

	pm.KEnter(ctx0, testVA, p1)
	pm.Translate(ctx0, testVA, false)
	pm.Translate(ctx1, testVA, false) // both TLBs now cache p1

	pm.KEnter(ctx0, testVA, p2)
	ctx0.InvalidateLocal(VPN(testVA)) // only CPU 0 invalidates

	g0, _ := pm.Translate(ctx0, testVA, false)
	g1, _ := pm.Translate(ctx1, testVA, false)
	if g0 != p2 {
		t.Fatal("CPU 0 should see the new mapping")
	}
	if g1 != p1 {
		t.Fatal("CPU 1 must still see the stale mapping")
	}
	// The shootdown repairs CPU 1.
	ctx0.Shootdown(m.AllCPUs(), VPN(testVA))
	g1, _ = pm.Translate(ctx1, testVA, false)
	if g1 != p2 {
		t.Fatal("CPU 1 stale after shootdown")
	}
}

func TestKRemoveFaults(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	pm.KEnter(ctx, testVA, pg)
	pm.KRemove(ctx, testVA)
	ctx.InvalidateLocal(VPN(testVA))
	if _, err := pm.Translate(ctx, testVA, false); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault after KRemove", err)
	}
	if pm.Mappings() != 0 {
		t.Fatalf("mappings = %d, want 0", pm.Mappings())
	}
}

func TestDirectMapAMD64(t *testing.T) {
	m, pm := newTestPmap(t, arch.OpteronMP())
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	va := pm.DirectVA(pg)
	if !pm.IsDirectMapped(va) {
		t.Fatalf("va %#x not recognized as direct-mapped", va)
	}
	got, err := pm.Translate(ctx, va, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != pg {
		t.Fatal("direct map inverse wrong")
	}
	// Direct translations must not create page-table state or TLB churn
	// that could ever require invalidation.
	if pm.Mappings() != 0 {
		t.Fatal("direct map created PTEs")
	}
}

func TestDirectMapRejectsOutOfRange(t *testing.T) {
	m, pm := newTestPmap(t, arch.OpteronMP())
	// One past the last frame.
	bad := DirectMapBase + uint64(m.Phys.Frames()+5)*vm.PageSize
	if _, err := pm.Translate(m.Ctx(0), bad, false); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
}

func TestDirectVAPanicsOnI386(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonUP())
	pg, _ := m.Phys.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("DirectVA on i386 must panic")
		}
	}()
	pm.DirectVA(pg)
}

func TestKEnterIntoDirectMapPanics(t *testing.T) {
	m, pm := newTestPmap(t, arch.OpteronMP())
	pg, _ := m.Phys.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("KEnter into direct map must panic")
		}
	}()
	pm.KEnter(m.Ctx(0), DirectMapBase, pg)
}

func TestTranslateChargesWalkOnlyOnMiss(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	pg, _ := m.Phys.Alloc()
	pm.KEnter(ctx, testVA, pg)
	base := m.CPU(0).Cycles()
	pm.Translate(ctx, testVA, false)
	missCost := m.CPU(0).Cycles() - base
	if missCost != m.Plat.Cost.TLBMissWalk {
		t.Fatalf("miss cost = %d, want %d", missCost, m.Plat.Cost.TLBMissWalk)
	}
	base = m.CPU(0).Cycles()
	pm.Translate(ctx, testVA, false)
	if hitCost := m.CPU(0).Cycles() - base; hitCost != 0 {
		t.Fatalf("hit cost = %d, want 0", hitCost)
	}
}

func TestVPNAndOffsetHelpers(t *testing.T) {
	va := uint64(0xC012_3456)
	if VPN(va) != va>>12 {
		t.Fatal("VPN wrong")
	}
	if PageOffset(va) != 0x456 {
		t.Fatalf("offset = %#x", PageOffset(va))
	}
}
