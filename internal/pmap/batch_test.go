package pmap

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// TestKRemoveBatch verifies the bulk teardown: one pass invalidates every
// entry and reports exactly which were valid AND accessed — the set that
// owes TLB invalidations.
func TestKRemoveBatch(t *testing.T) {
	m := smp.NewMachine(arch.XeonMP(), 64, false)
	pm := New(m)
	ctx := m.Ctx(0)
	pages, err := m.Phys.AllocN(3)
	if err != nil {
		t.Fatal(err)
	}

	base := uint64(KVABaseI386)
	vas := []uint64{base, base + vm.PageSize, base + 2*vm.PageSize}
	for i, va := range vas {
		pm.KEnter(ctx, va, pages[i])
	}
	// Touch only the first mapping: its accessed bit sets; the second
	// stays untouched; the third is torn down before the batch.
	if _, err := pm.Translate(ctx, vas[0], false); err != nil {
		t.Fatal(err)
	}
	pm.KRemove(ctx, vas[2])

	vpns := []uint64{VPN(vas[0]), VPN(vas[1]), VPN(vas[2])}
	accessed := pm.KRemoveBatch(ctx, vpns, nil)
	want := []bool{true, false, false}
	for i := range want {
		if accessed[i] != want[i] {
			t.Errorf("accessed[%d] = %v, want %v", i, accessed[i], want[i])
		}
	}
	if pm.Mappings() != 0 {
		t.Fatalf("mappings = %d after batch removal, want 0", pm.Mappings())
	}
	for _, va := range vas {
		if pte, ok := pm.Probe(va); ok && pte.Valid {
			t.Fatalf("va %#x still valid", va)
		}
	}
}

// TestKRemoveBatchReusesBuffer checks the appended-result contract hot
// paths rely on.
func TestKRemoveBatchReusesBuffer(t *testing.T) {
	m := smp.NewMachine(arch.XeonMP(), 64, false)
	pm := New(m)
	ctx := m.Ctx(0)
	pg, err := m.Phys.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]bool, 0, 8)
	for round := 0; round < 3; round++ {
		pm.KEnter(ctx, KVABaseI386, pg)
		got := pm.KRemoveBatch(ctx, []uint64{VPN(KVABaseI386)}, scratch[:0])
		if len(got) != 1 || got[0] {
			t.Fatalf("round %d: accessed = %v, want [false]", round, got)
		}
	}
}
