package pmap

// Tests for the contiguous-run page-table operations: bulk install and
// teardown (KEnterRun/KRemoveRun), ranged translation (one walk per
// contiguous PTE run), and simulated superpage promotion/demotion.

import (
	"errors"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

func allocRunPages(t *testing.T, m *smp.Machine, n int) []*vm.Page {
	t.Helper()
	pages, err := m.Phys.AllocN(n)
	if err != nil {
		t.Fatal(err)
	}
	return pages
}

func TestKEnterRunAndRangedTranslate(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMPHTT())
	ctx := m.Ctx(0)
	pages := allocRunPages(t, m, 8)
	base := uint64(KVABaseI386)
	pm.KEnterRun(ctx, base, pages)

	// One ranged translate of the cold run: exactly ONE page-table walk,
	// one TLB entry per page.
	before := m.SnapshotCounters()
	got, err := pm.TranslateRun(ctx, base, 8, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range got {
		if pg != pages[i] {
			t.Fatalf("page %d resolves wrong", i)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 1 {
		t.Fatalf("walks for a cold 8-page run = %d, want 1", d.PTWalks)
	}
	// Warm: all TLB hits, no walks at all.
	before = m.SnapshotCounters()
	if _, err := pm.TranslateRun(ctx, base, 8, false, nil); err != nil {
		t.Fatal(err)
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Fatalf("walks on a warm run = %d, want 0", d.PTWalks)
	}
	// The per-page path pays one walk per cold page; same PTEs, another
	// CPU so its TLB is cold.
	ctx1 := m.Ctx(1)
	before = m.SnapshotCounters()
	for i := 0; i < 8; i++ {
		if _, err := pm.Translate(ctx1, base+uint64(i)*vm.PageSize, false); err != nil {
			t.Fatal(err)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 8 {
		t.Fatalf("per-page walks = %d, want 8", d.PTWalks)
	}
}

func TestKRemoveRunAccessedReporting(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	pages := allocRunPages(t, m, 6)
	base := uint64(KVABaseI386)
	pm.KEnterRun(ctx, base, pages)
	// Touch pages 1 and 4 only.
	for _, i := range []int{1, 4} {
		if _, err := pm.Translate(ctx, base+uint64(i)*vm.PageSize, false); err != nil {
			t.Fatal(err)
		}
	}
	acc := pm.KRemoveRun(ctx, base, 6, nil)
	want := []bool{false, true, false, false, true, false}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("accessed[%d] = %v, want %v", i, acc[i], want[i])
		}
	}
	// The run is gone: translation faults.
	if _, err := pm.Translate(m.Ctx(1), base, false); !errors.Is(err, ErrFault) {
		t.Fatalf("translate after KRemoveRun = %v, want ErrFault", err)
	}
	if _, err := pm.TranslateRun(ctx, base+vm.PageSize, 2, false, nil); !errors.Is(err, ErrFault) {
		t.Fatalf("ranged translate after KRemoveRun = %v, want ErrFault", err)
	}
}

func TestTranslateRunDirectMap(t *testing.T) {
	m, pm := newTestPmap(t, arch.OpteronMP())
	ctx := m.Ctx(0)
	pages := allocRunPages(t, m, 4) // fresh machine: contiguous frames
	base := pm.DirectVA(pages[0])
	before := m.SnapshotCounters()
	got, err := pm.TranslateRun(ctx, base, 4, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range got {
		if pg != pages[i] {
			t.Fatalf("direct page %d resolves wrong", i)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Fatal("direct-map ranged translate must not walk")
	}
}

func TestSuperpagePromotionLifecycle(t *testing.T) {
	m := smp.NewMachine(arch.XeonMPHTT(), 2*SuperpagePages+32, false)
	pm := New(m)
	ctx := m.Ctx(0)
	// A fresh machine hands out frames 1, 2, 3, ...; promotion demands the
	// window start on a SuperpagePages-aligned FRAME, so slice out the
	// aligned contiguous window from a double-span allocation.
	all := allocRunPages(t, m, 2*SuperpagePages)
	start := -1
	for i, pg := range all {
		if pg.Frame()%uint64(SuperpagePages) == 0 {
			start = i
			break
		}
	}
	if start < 0 || start+SuperpagePages > len(all) {
		t.Skip("no aligned window in the allocation")
	}
	pages := all[start : start+SuperpagePages]
	for i := 1; i < SuperpagePages; i++ {
		if pages[i].Frame() != pages[0].Frame()+uint64(i) {
			t.Skip("physical allocator did not hand out contiguous frames")
		}
	}
	// An aligned window over contiguous frames promotes...
	base := uint64(KVABaseI386) // base is superpage-aligned
	pm.KEnterRun(ctx, base, pages)
	if ss := pm.SuperStats(); ss.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", ss.Promotions)
	}
	if !pm.Promoted(base) || !pm.Promoted(base+uint64(SuperpagePages-1)*vm.PageSize) {
		t.Fatal("window not promoted")
	}
	// ...an unaligned or torn window does not.
	misaligned := base + uint64(SuperpagePages+1)*vm.PageSize
	pm.KEnterRun(ctx, misaligned, pages[:4])
	if ss := pm.SuperStats(); ss.Promotions != 1 {
		t.Fatalf("short window promoted: %+v", ss)
	}

	// One walk anywhere in the window fills a large entry covering all
	// of it on the walking CPU.
	if _, err := pm.Translate(ctx, base+7*vm.PageSize, false); err != nil {
		t.Fatal(err)
	}
	before := m.SnapshotCounters()
	for i := 0; i < SuperpagePages; i++ {
		pg, err := pm.Translate(ctx, base+uint64(i)*vm.PageSize, false)
		if err != nil {
			t.Fatal(err)
		}
		if pg != pages[i] {
			t.Fatalf("page %d resolves wrong through the superpage", i)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Fatalf("walks through a resident large entry = %d, want 0", d.PTWalks)
	}

	// Demotion: the teardown reports EVERY page accessed (the large
	// entry has no per-page accessed bits) and drops the window.
	acc := pm.KRemoveRun(ctx, base, SuperpagePages, nil)
	for i, a := range acc {
		if !a {
			t.Fatalf("accessed[%d] = false; a promoted, accessed window owes all pages", i)
		}
	}
	if ss := pm.SuperStats(); ss.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", ss.Demotions)
	}
	if pm.Promoted(base) {
		t.Fatal("window still promoted after KRemoveRun")
	}
}

// TestPromotionDemandsFrameAlignment pins the alignment rule: a window of
// physically CONTIGUOUS but misaligned frames maps and translates
// correctly as base pages, yet does not promote — real page-size extension
// hardware has no low frame bits in a large PTE — and the disqualification
// is measured in SuperStats.AlignSkips.
func TestPromotionDemandsFrameAlignment(t *testing.T) {
	m := smp.NewMachine(arch.XeonMPHTT(), 2*SuperpagePages+32, true)
	pm := New(m)
	ctx := m.Ctx(0)
	all := allocRunPages(t, m, SuperpagePages+8)
	// Frames 1, 2, 3, ... — take a full span starting at a frame that is
	// NOT a multiple of SuperpagePages.
	pages := all[:SuperpagePages]
	if pages[0].Frame()%uint64(SuperpagePages) == 0 {
		pages = all[1 : SuperpagePages+1]
	}
	for i := 1; i < SuperpagePages; i++ {
		if pages[i].Frame() != pages[0].Frame()+uint64(i) {
			t.Skip("physical allocator did not hand out contiguous frames")
		}
	}
	pages[3].Data()[7] = 0xA5

	base := uint64(KVABaseI386) // superpage-aligned VA: only the frames disqualify
	pm.KEnterRun(ctx, base, pages)
	ss := pm.SuperStats()
	if ss.Promotions != 0 {
		t.Fatalf("misaligned contiguous window promoted: %+v", ss)
	}
	if ss.AlignSkips != 1 {
		t.Fatalf("align skips = %d, want 1", ss.AlignSkips)
	}
	if pm.Promoted(base) {
		t.Fatal("Promoted reports a window that must not exist")
	}

	// The window still maps fine: every page translates to its frame (base
	// entries), and the bytes come through.
	got, err := pm.TranslateRun(ctx, base, SuperpagePages, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range got {
		if pg != pages[i] {
			t.Fatalf("page %d resolves wrong", i)
		}
	}
	if got[3].Data()[7] != 0xA5 {
		t.Fatal("bytes do not come through the base mappings")
	}
	if ts := m.CPU(0).TLBStats(); ts.LargeInserts != 0 {
		t.Fatalf("large TLB inserts = %d, want 0 for a misaligned window", ts.LargeInserts)
	}

	// Teardown reports per-page accessed bits (no large entry to blame).
	acc := pm.KRemoveRun(ctx, base, SuperpagePages, nil)
	for i, a := range acc {
		if !a {
			t.Fatalf("accessed[%d] = false after a full sweep", i)
		}
	}
	if ss := pm.SuperStats(); ss.Demotions != 0 {
		t.Fatalf("demotions = %d, want 0 (nothing was promoted)", ss.Demotions)
	}
}
