package pmap

// Tests for the contiguous-run page-table operations: bulk install and
// teardown (KEnterRun/KRemoveRun), ranged translation (one walk per
// contiguous PTE run), and simulated superpage promotion/demotion.

import (
	"errors"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

func allocRunPages(t *testing.T, m *smp.Machine, n int) []*vm.Page {
	t.Helper()
	pages, err := m.Phys.AllocN(n)
	if err != nil {
		t.Fatal(err)
	}
	return pages
}

func TestKEnterRunAndRangedTranslate(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMPHTT())
	ctx := m.Ctx(0)
	pages := allocRunPages(t, m, 8)
	base := uint64(KVABaseI386)
	pm.KEnterRun(ctx, base, pages)

	// One ranged translate of the cold run: exactly ONE page-table walk,
	// one TLB entry per page.
	before := m.SnapshotCounters()
	got, err := pm.TranslateRun(ctx, base, 8, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range got {
		if pg != pages[i] {
			t.Fatalf("page %d resolves wrong", i)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 1 {
		t.Fatalf("walks for a cold 8-page run = %d, want 1", d.PTWalks)
	}
	// Warm: all TLB hits, no walks at all.
	before = m.SnapshotCounters()
	if _, err := pm.TranslateRun(ctx, base, 8, false, nil); err != nil {
		t.Fatal(err)
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Fatalf("walks on a warm run = %d, want 0", d.PTWalks)
	}
	// The per-page path pays one walk per cold page; same PTEs, another
	// CPU so its TLB is cold.
	ctx1 := m.Ctx(1)
	before = m.SnapshotCounters()
	for i := 0; i < 8; i++ {
		if _, err := pm.Translate(ctx1, base+uint64(i)*vm.PageSize, false); err != nil {
			t.Fatal(err)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 8 {
		t.Fatalf("per-page walks = %d, want 8", d.PTWalks)
	}
}

func TestKRemoveRunAccessedReporting(t *testing.T) {
	m, pm := newTestPmap(t, arch.XeonMP())
	ctx := m.Ctx(0)
	pages := allocRunPages(t, m, 6)
	base := uint64(KVABaseI386)
	pm.KEnterRun(ctx, base, pages)
	// Touch pages 1 and 4 only.
	for _, i := range []int{1, 4} {
		if _, err := pm.Translate(ctx, base+uint64(i)*vm.PageSize, false); err != nil {
			t.Fatal(err)
		}
	}
	acc := pm.KRemoveRun(ctx, base, 6, nil)
	want := []bool{false, true, false, false, true, false}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("accessed[%d] = %v, want %v", i, acc[i], want[i])
		}
	}
	// The run is gone: translation faults.
	if _, err := pm.Translate(m.Ctx(1), base, false); !errors.Is(err, ErrFault) {
		t.Fatalf("translate after KRemoveRun = %v, want ErrFault", err)
	}
	if _, err := pm.TranslateRun(ctx, base+vm.PageSize, 2, false, nil); !errors.Is(err, ErrFault) {
		t.Fatalf("ranged translate after KRemoveRun = %v, want ErrFault", err)
	}
}

func TestTranslateRunDirectMap(t *testing.T) {
	m, pm := newTestPmap(t, arch.OpteronMP())
	ctx := m.Ctx(0)
	pages := allocRunPages(t, m, 4) // fresh machine: contiguous frames
	base := pm.DirectVA(pages[0])
	before := m.SnapshotCounters()
	got, err := pm.TranslateRun(ctx, base, 4, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range got {
		if pg != pages[i] {
			t.Fatalf("direct page %d resolves wrong", i)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Fatal("direct-map ranged translate must not walk")
	}
}

func TestSuperpagePromotionLifecycle(t *testing.T) {
	m := smp.NewMachine(arch.XeonMPHTT(), SuperpagePages+32, false)
	pm := New(m)
	ctx := m.Ctx(0)
	pages := allocRunPages(t, m, SuperpagePages)
	for i := 1; i < SuperpagePages; i++ {
		if pages[i].Frame() != pages[0].Frame()+uint64(i) {
			t.Skip("physical allocator did not hand out contiguous frames")
		}
	}
	// An aligned window over contiguous frames promotes...
	base := uint64(KVABaseI386) // base is superpage-aligned
	pm.KEnterRun(ctx, base, pages)
	if ss := pm.SuperStats(); ss.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", ss.Promotions)
	}
	if !pm.Promoted(base) || !pm.Promoted(base+uint64(SuperpagePages-1)*vm.PageSize) {
		t.Fatal("window not promoted")
	}
	// ...an unaligned or torn window does not.
	misaligned := base + uint64(SuperpagePages+1)*vm.PageSize
	pm.KEnterRun(ctx, misaligned, pages[:4])
	if ss := pm.SuperStats(); ss.Promotions != 1 {
		t.Fatalf("short window promoted: %+v", ss)
	}

	// One walk anywhere in the window fills a large entry covering all
	// of it on the walking CPU.
	if _, err := pm.Translate(ctx, base+7*vm.PageSize, false); err != nil {
		t.Fatal(err)
	}
	before := m.SnapshotCounters()
	for i := 0; i < SuperpagePages; i++ {
		pg, err := pm.Translate(ctx, base+uint64(i)*vm.PageSize, false)
		if err != nil {
			t.Fatal(err)
		}
		if pg != pages[i] {
			t.Fatalf("page %d resolves wrong through the superpage", i)
		}
	}
	if d := m.SnapshotCounters().Sub(before); d.PTWalks != 0 {
		t.Fatalf("walks through a resident large entry = %d, want 0", d.PTWalks)
	}

	// Demotion: the teardown reports EVERY page accessed (the large
	// entry has no per-page accessed bits) and drops the window.
	acc := pm.KRemoveRun(ctx, base, SuperpagePages, nil)
	for i, a := range acc {
		if !a {
			t.Fatalf("accessed[%d] = false; a promoted, accessed window owes all pages", i)
		}
	}
	if ss := pm.SuperStats(); ss.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", ss.Demotions)
	}
	if pm.Promoted(base) {
		t.Fatal("window still promoted after KRemoveRun")
	}
}
