package pmap

import (
	"sync"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// TestConcurrentTranslateStress runs translators on every CPU against a
// window of mappings while a mutator remaps and globally invalidates them
// with the full coherent protocol.  Every translation must land on a page
// that was mapped at that address at some point of the current or previous
// epoch — never on an unrelated frame — and nothing may fault.
func TestConcurrentTranslateStress(t *testing.T) {
	m := smp.NewMachine(arch.XeonMPHTT(), 256, true)
	pm := New(m)
	const window = 8
	base := uint64(KVABaseI386)

	epochPages := make([][]*vm.Page, 2)
	for e := range epochPages {
		epochPages[e] = make([]*vm.Page, window)
		for i := range epochPages[e] {
			pg, err := m.Phys.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			pg.Data()[0] = byte(0x10*e + i)
			epochPages[e][i] = pg
		}
	}
	mctx := m.Ctx(0)
	install := func(epoch int) {
		for i := 0; i < window; i++ {
			va := base + uint64(i)*vm.PageSize
			pm.KEnter(mctx, va, epochPages[epoch][i])
			mctx.InvalidateGlobal(VPN(va))
		}
	}
	install(0)

	valid := func(b byte) bool {
		// Either epoch's byte for some window slot.
		return (b&0xF0) <= 0x10 && (b&0x0F) < window
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for cpu := 1; cpu < m.NumCPUs(); cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := m.Ctx(cpu)
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				va := base + uint64(i%window)*vm.PageSize
				pg, err := pm.Translate(ctx, va, false)
				if err != nil {
					t.Errorf("cpu %d: %v", cpu, err)
					return
				}
				if !valid(pg.Data()[0]) {
					t.Errorf("cpu %d read unrelated frame %#x", cpu, pg.Data()[0])
					return
				}
				i++
			}
		}(cpu)
	}
	for flip := 0; flip < 50; flip++ {
		install(flip % 2)
	}
	close(stop)
	wg.Wait()
}

// TestGlobalInvalidationPublishes: after KEnter + InvalidateGlobal, every
// CPU immediately observes the new frame — the coherence guarantee the
// original kernel relies on.
func TestGlobalInvalidationPublishes(t *testing.T) {
	m := smp.NewMachine(arch.XeonMPHTT(), 64, true)
	pm := New(m)
	va := uint64(KVABaseI386)
	pages := make([]*vm.Page, 8)
	for i := range pages {
		pg, _ := m.Phys.Alloc()
		pg.Data()[0] = byte(i)
		pages[i] = pg
	}
	ctx0 := m.Ctx(0)
	for round, pg := range pages {
		pm.KEnter(ctx0, va, pg)
		ctx0.InvalidateGlobal(VPN(va))
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			got, err := pm.Translate(m.Ctx(cpu), va, false)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data()[0] != byte(round) {
				t.Fatalf("round %d cpu %d: read %d", round, cpu, got.Data()[0])
			}
		}
	}
}
