// Package pmap is the machine-dependent physical-map layer, in the spirit
// of Mach's pmap interface that the paper cites as its model: it owns the
// kernel page tables and is the only module that manipulates translations.
//
// The crucial design decision for a faithful reproduction is that loads and
// stores through kernel virtual addresses are translated by Translate,
// which consults the executing CPU's TLB first and BELIEVES IT: if a
// mapping was changed without invalidating that TLB, Translate returns the
// old frame and the access reads or writes stale physical memory.  The
// sf_buf protocol (cpumask maintenance, the accessed-bit optimization,
// shootdowns) is therefore load-bearing in this simulator exactly as it is
// in a real kernel, and the test suite proves it by corrupting data when
// the protocol is weakened.
package pmap

import (
	"errors"
	"fmt"
	"sync"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/smp"
	"sfbuf/internal/tlb"
	"sfbuf/internal/vm"
)

// Kernel virtual address layout.  The i386 split gives the kernel the top
// 1 GB of the 32-bit space (the conventional 3 GB/1 GB split the paper
// describes); amd64 has a permanent direct map of all physical memory plus
// a separate region for dynamically allocated kernel VA.
const (
	// KVABaseI386 is the bottom of the i386 kernel dynamic VA region.
	KVABaseI386 = 0xC400_0000
	// KVASizeI386 is the size of the i386 dynamic region: the kernel
	// space minus the kernel image, mdisk windows, and so on.
	KVASizeI386 = 0x3000_0000 // 768 MB of kernel virtual address space
	// DirectMapBase is the base of the amd64 direct map, which maps all
	// of physical memory with 2 MB superpages (Section 4.3).
	DirectMapBase = 0xFFFF_8000_0000_0000
	// KVABaseAMD64 is the base of the amd64 dynamic kernel VA region,
	// used by the original kernel's machine-independent mapping code.
	KVABaseAMD64 = 0xFFFF_C000_0000_0000
	// KVASizeAMD64 is the size of the amd64 dynamic region.
	KVASizeAMD64 = 0x1_0000_0000 // 4 GB
)

// PTE is a kernel page-table entry.  Accessed and Modified model the x86
// A/D bits: the hardware (Translate) sets them; the OS reads and clears
// them.  The accessed bit drives the paper's key optimization — a mapping
// whose PTE was never accessed cannot be cached by any TLB, so replacing it
// requires no invalidation at all.
type PTE struct {
	Frame    uint64
	Valid    bool
	Accessed bool
	Modified bool
}

// ErrFault is returned when a translation fails (invalid mapping).
var ErrFault = errors.New("pmap: page fault on kernel address")

// SuperpagePages is the simulated superpage span in base pages: the
// 2 MB-equivalent window a contiguous run must cover, aligned, for the
// promotion path to collapse it into one TLB entry.
const SuperpagePages = tlb.SuperSpan

// superWindow is one promoted superpage: an aligned SuperpagePages-page
// virtual window whose PTEs map physically contiguous frames, so a single
// large TLB entry (base vpn, base frame) covers all of it by arithmetic.
// accessed records whether any CPU pulled the large translation into its
// TLB during the window's life — the superpage form of the accessed bit,
// deciding what the demoting teardown owes.
type superWindow struct {
	baseVPN  uint64
	frame    uint64
	accessed bool
}

// SuperStats counts simulated superpage events.
type SuperStats struct {
	// Promotions counts KEnterRun calls that collapsed an aligned,
	// physically contiguous 2 MB-equivalent window into a superpage.
	Promotions uint64
	// Demotions counts promoted windows torn back down by KRemoveRun.
	Demotions uint64
	// AlignSkips counts would-be promotions disqualified ONLY by physical
	// alignment: the window was fully covered by contiguous frames, but the
	// first frame was not a multiple of SuperpagePages, which real page-size
	// extension hardware refuses.  It measures the opportunistic promotion
	// the frame allocator's alignment discipline is (or is not) losing.
	AlignSkips uint64
}

// Pmap is the kernel address space of one machine.
type Pmap struct {
	m *smp.Machine

	mu    sync.Mutex
	pt    map[uint64]*PTE         // vpn -> entry
	super map[uint64]*superWindow // vpn >> SuperSpanShift -> promoted window
	sstat SuperStats
}

// New creates the kernel pmap for machine m.
func New(m *smp.Machine) *Pmap {
	return &Pmap{
		m:     m,
		pt:    make(map[uint64]*PTE),
		super: make(map[uint64]*superWindow),
	}
}

// Machine returns the owning machine.
func (p *Pmap) Machine() *smp.Machine { return p.m }

// VPN returns the virtual page number of a kernel VA.
func VPN(va uint64) uint64 { return va >> vm.PageShift }

// PageOffset returns the offset of va within its page.
func PageOffset(va uint64) int { return int(va & (vm.PageSize - 1)) }

// IsDirectMapped reports whether va falls in the amd64 direct map.
func (p *Pmap) IsDirectMapped(va uint64) bool {
	if p.m.Plat.Arch == arch.I386 {
		return false
	}
	return va >= DirectMapBase && va < KVABaseAMD64
}

// DirectVA returns the permanent direct-map virtual address of a physical
// page.  Only 64-bit architectures have a direct map; calling this on i386
// panics, mirroring the fact that no such address exists there.
func (p *Pmap) DirectVA(pg *vm.Page) uint64 {
	if p.m.Plat.Arch == arch.I386 {
		panic("pmap: direct map does not exist on i386")
	}
	return DirectMapBase + uint64(pg.PA())
}

// directTranslate inverts the direct map with a single arithmetic
// operation (Section 4.3: "the inverse of this mapping is trivially
// computed").
func (p *Pmap) directTranslate(va uint64) (*vm.Page, error) {
	pa := va - DirectMapBase
	pg := p.m.Phys.PageByFrame(pa >> vm.PageShift)
	if pg == nil {
		return nil, fmt.Errorf("%w: direct-map va %#x beyond physical memory", ErrFault, va)
	}
	return pg, nil
}

// KEnter installs a translation from va to pg, replacing any previous one,
// and returns whether the previous entry was valid and whether its
// accessed bit was set.  It performs no TLB invalidation — that policy
// decision belongs to the caller (this split is exactly where the sf_buf
// implementations differ from the original kernel).
func (p *Pmap) KEnter(ctx *smp.Context, va uint64, pg *vm.Page) (oldValid, oldAccessed bool) {
	if p.IsDirectMapped(va) {
		panic(fmt.Sprintf("pmap: KEnter into direct map va %#x", va))
	}
	vpn := VPN(va)
	p.mu.Lock()
	pte, ok := p.pt[vpn]
	if ok {
		oldValid = pte.Valid
		oldAccessed = pte.Accessed
	} else {
		pte = &PTE{}
		p.pt[vpn] = pte
	}
	pte.Frame = pg.Frame()
	pte.Valid = true
	pte.Accessed = false
	pte.Modified = false
	p.mu.Unlock()

	ctx.TouchPTE(vpn)
	ctx.Charge(ctx.Cost().PTEWrite)
	return oldValid, oldAccessed
}

// KRemove invalidates the translation at va.  As with KEnter, TLB
// invalidation is the caller's responsibility.
func (p *Pmap) KRemove(ctx *smp.Context, va uint64) {
	vpn := VPN(va)
	p.mu.Lock()
	if pte, ok := p.pt[vpn]; ok {
		pte.Valid = false
		pte.Accessed = false
		pte.Modified = false
		pte.Frame = 0
	}
	p.mu.Unlock()
	ctx.TouchPTE(vpn)
	ctx.Charge(ctx.Cost().PTEWrite)
}

// KRemoveBatch invalidates the translations for every vpn in one
// page-table pass — the bulk pmap_qremove-style teardown the sharded
// cache's reclaim uses — and reports, for each vpn, whether its entry was
// valid with the accessed bit set (the caller owes TLB invalidations only
// for those).  The result is appended to accessed, which callers on hot
// paths reuse across rounds to stay allocation-free.  As with KRemove,
// TLB invalidation is the caller's responsibility.
func (p *Pmap) KRemoveBatch(ctx *smp.Context, vpns []uint64, accessed []bool) []bool {
	p.mu.Lock()
	for _, vpn := range vpns {
		a := false
		if pte, ok := p.pt[vpn]; ok {
			a = pte.Valid && pte.Accessed
			pte.Valid = false
			pte.Accessed = false
			pte.Modified = false
			pte.Frame = 0
		}
		accessed = append(accessed, a)
	}
	p.mu.Unlock()
	ctx.TouchPTERange(vpns)
	ctx.Charge(ctx.Cost().PTEWrite * cycles.Cycles(len(vpns)))
	return accessed
}

// KEnterRun installs translations for a contiguous run: pages[i] becomes
// addressable at base + i*PageSize, in ONE page-table pass — the bulk
// pmap_qenter the contiguous-run engines use to populate a reserved VA
// window.  Like KEnter, it performs no TLB invalidation; run windows are
// only ever reused after their previous teardown's invalidations landed,
// which is the caller's (the run pool's) obligation.
//
// Superpage promotion: every SuperpagePages-aligned chunk of the run that
// is fully covered, physically contiguous, AND starts on a
// SuperpagePages-aligned frame is promoted — recorded so that a later
// translation of any of its pages fills ONE large TLB entry covering the
// whole chunk instead of one base entry per page.  Real page-size
// extension hardware demands that physical alignment (a large PTE has no
// low frame bits), so the model does too: a contiguous but misaligned
// chunk maps fine as base pages and counts in SuperStats.AlignSkips — the
// gauge of what opportunistic promotion the alignment discipline
// disqualifies, which the buddy allocator's aligned AllocContig extents
// are there to win back.
func (p *Pmap) KEnterRun(ctx *smp.Context, base uint64, pages []*vm.Page) {
	if p.IsDirectMapped(base) {
		panic(fmt.Sprintf("pmap: KEnterRun into direct map va %#x", base))
	}
	if PageOffset(base) != 0 {
		panic(fmt.Sprintf("pmap: KEnterRun at unaligned va %#x", base))
	}
	vpn0 := VPN(base)
	n := len(pages)
	p.mu.Lock()
	for i, pg := range pages {
		vpn := vpn0 + uint64(i)
		pte, ok := p.pt[vpn]
		if !ok {
			pte = &PTE{}
			p.pt[vpn] = pte
		}
		pte.Frame = pg.Frame()
		pte.Valid = true
		pte.Accessed = false
		pte.Modified = false
	}
	const span = uint64(SuperpagePages)
	for c := (vpn0 + span - 1) &^ (span - 1); c+span <= vpn0+uint64(n); c += span {
		idx := int(c - vpn0)
		contig := true
		for j := 1; j < SuperpagePages; j++ {
			if pages[idx+j].Frame() != pages[idx].Frame()+uint64(j) {
				contig = false
				break
			}
		}
		switch {
		case !contig:
		case pages[idx].Frame()%span != 0:
			p.sstat.AlignSkips++
		default:
			p.super[c>>tlb.SuperSpanShift] = &superWindow{baseVPN: c, frame: pages[idx].Frame()}
			p.sstat.Promotions++
		}
	}
	p.mu.Unlock()
	ctx.TouchPTESpan(vpn0, n)
	ctx.Charge(ctx.Cost().PTEWrite * cycles.Cycles(n))
}

// KRemoveRun invalidates the n translations starting at base in one
// page-table pass, reporting per page whether the entry was valid with
// the accessed bit set — the pages whose teardown owes TLB invalidations.
// Promoted superpage chunks are demoted: if the window's large entry was
// ever pulled into a TLB, EVERY page of the chunk is reported accessed
// (the large entry has no per-page accessed bits to consult).  The result
// is appended to accessed for scratch reuse, as with KRemoveBatch.
func (p *Pmap) KRemoveRun(ctx *smp.Context, base uint64, n int, accessed []bool) []bool {
	vpn0 := VPN(base)
	start := len(accessed)
	p.mu.Lock()
	for i := 0; i < n; i++ {
		a := false
		if pte, ok := p.pt[vpn0+uint64(i)]; ok {
			a = pte.Valid && pte.Accessed
			pte.Valid = false
			pte.Accessed = false
			pte.Modified = false
			pte.Frame = 0
		}
		accessed = append(accessed, a)
	}
	const span = uint64(SuperpagePages)
	for c := (vpn0 + span - 1) &^ (span - 1); c+span <= vpn0+uint64(n); c += span {
		w, ok := p.super[c>>tlb.SuperSpanShift]
		if !ok || w.baseVPN != c {
			continue
		}
		if w.accessed {
			idx := start + int(c-vpn0)
			for j := 0; j < SuperpagePages; j++ {
				accessed[idx+j] = true
			}
		}
		delete(p.super, c>>tlb.SuperSpanShift)
		p.sstat.Demotions++
	}
	p.mu.Unlock()
	ctx.TouchPTESpan(vpn0, n)
	ctx.Charge(ctx.Cost().PTEWrite * cycles.Cycles(n))
	return accessed
}

// SuperStats returns the cumulative superpage promotion/demotion counts.
func (p *Pmap) SuperStats() SuperStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sstat
}

// Promoted reports whether va currently lies in a promoted superpage
// window (invariant-check helper).
func (p *Pmap) Promoted(va uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.super[VPN(va)>>tlb.SuperSpanShift]
	return ok && VPN(va) >= w.baseVPN && VPN(va) < w.baseVPN+uint64(SuperpagePages)
}

// Probe returns a copy of the PTE for va, for assertions and the
// accessed-bit-dependent paths (checksum offload experiments).
func (p *Pmap) Probe(va uint64) (PTE, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pte, ok := p.pt[VPN(va)]
	if !ok {
		return PTE{}, false
	}
	return *pte, true
}

// Translate resolves a kernel virtual address to its physical page as the
// hardware would on behalf of the executing CPU:
//
//   - Direct-map addresses translate by arithmetic; they are permanent, so
//     no TLB coherence concern exists and no cost beyond the access itself
//     is charged (Section 4.3: "there is never a TLB invalidation").
//   - Otherwise the CPU's TLB is consulted.  A hit returns the cached
//     frame — even if the page tables have since changed.  A miss walks
//     the page table (charging the walk), faults if invalid, fills the
//     TLB, and sets the PTE accessed bit (and modified bit for writes).
//
// The returned page is the one the access physically touches.
func (p *Pmap) Translate(ctx *smp.Context, va uint64, write bool) (*vm.Page, error) {
	if p.IsDirectMapped(va) {
		return p.directTranslate(va)
	}
	vpn := VPN(va)
	if frame, ok := ctx.TLBLookup(vpn); ok {
		pg := p.m.Phys.PageByFrame(frame)
		if pg == nil {
			return nil, fmt.Errorf("%w: stale TLB frame %d for va %#x", ErrFault, frame, va)
		}
		return pg, nil
	}
	ctx.ChargeWalk()
	ctx.TouchPTE(vpn)

	p.mu.Lock()
	pte, ok := p.pt[vpn]
	if !ok || !pte.Valid {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: va %#x", ErrFault, va)
	}
	pte.Accessed = true
	if write {
		pte.Modified = true
	}
	frame := pte.Frame
	// A walk that lands in a promoted superpage window fills one large
	// entry covering the whole window instead of a base entry for this
	// page alone, and marks the window accessed for its future teardown.
	var largeBase, largeFrame uint64
	haveLarge := false
	if w, ok := p.super[vpn>>tlb.SuperSpanShift]; ok && vpn >= w.baseVPN && vpn < w.baseVPN+uint64(SuperpagePages) {
		w.accessed = true
		largeBase, largeFrame, haveLarge = w.baseVPN, w.frame, true
	}
	p.mu.Unlock()

	if haveLarge {
		ctx.TLBInsertLarge(largeBase, largeFrame)
	} else {
		ctx.TLBInsert(vpn, frame)
	}
	pg := p.m.Phys.PageByFrame(frame)
	if pg == nil {
		return nil, fmt.Errorf("%w: pte frame %d for va %#x", ErrFault, frame, va)
	}
	return pg, nil
}

// TranslateRun resolves npages consecutive kernel virtual pages starting
// at the page-aligned va, as the executing CPU's MMU behaves during a
// copy that sweeps a contiguous mapping: each page consults the TLB first
// and BELIEVES it (stale entries are honored, exactly as in Translate),
// and the first miss triggers ONE page-table walk that resolves every
// remaining page of the range.  Consecutive virtual pages are one
// contiguous PTE run — the walker reads the covering page-table lines
// once — so the cycle model charges one TLBMissWalk per run, not per
// page.  That ranged charge is the kcopy cost model the direct map gets
// for free on amd64 and that scattered per-page mappings can never have.
//
// TLB fill: pages inside a promoted superpage window fill one large entry
// for the whole window; the rest fill one base entry each.  Direct-map
// ranges translate by arithmetic with no TLB involvement at all.
//
// The resolved pages are appended to out (pass a reused slice on hot
// paths to stay allocation-free).
func (p *Pmap) TranslateRun(ctx *smp.Context, va uint64, npages int, write bool, out []*vm.Page) ([]*vm.Page, error) {
	if PageOffset(va) != 0 {
		return nil, fmt.Errorf("pmap: TranslateRun at unaligned va %#x", va)
	}
	if p.IsDirectMapped(va) {
		for i := 0; i < npages; i++ {
			pg, err := p.directTranslate(va + uint64(i)*vm.PageSize)
			if err != nil {
				return nil, err
			}
			out = append(out, pg)
		}
		return out, nil
	}
	vpn0 := VPN(va)
	i := 0
	for i < npages {
		frame, ok := ctx.TLBLookup(vpn0 + uint64(i))
		if !ok {
			break
		}
		pg := p.m.Phys.PageByFrame(frame)
		if pg == nil {
			return nil, fmt.Errorf("%w: stale TLB frame %d for va %#x", ErrFault, frame, va+uint64(i)*vm.PageSize)
		}
		out = append(out, pg)
		i++
	}
	if i == npages {
		return out, nil
	}

	// One walk for the whole remaining run.
	ctx.ChargeWalk()
	ctx.TouchPTESpan(vpn0+uint64(i), npages-i)
	resolvedAt := len(out)
	type largeFill struct{ baseVPN, frame uint64 }
	var larges []largeFill
	p.mu.Lock()
	for j := i; j < npages; j++ {
		vpn := vpn0 + uint64(j)
		pte, ok := p.pt[vpn]
		if !ok || !pte.Valid {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: va %#x", ErrFault, va+uint64(j)*vm.PageSize)
		}
		pte.Accessed = true
		if write {
			pte.Modified = true
		}
		pg := p.m.Phys.PageByFrame(pte.Frame)
		if pg == nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: pte frame %d for va %#x", ErrFault, pte.Frame, va+uint64(j)*vm.PageSize)
		}
		out = append(out, pg)
	}
	const span = uint64(SuperpagePages)
	for key := (vpn0 + uint64(i)) >> tlb.SuperSpanShift; key<<tlb.SuperSpanShift < vpn0+uint64(npages); key++ {
		if w, ok := p.super[key]; ok {
			w.accessed = true
			larges = append(larges, largeFill{baseVPN: w.baseVPN, frame: w.frame})
		}
	}
	p.mu.Unlock()

	for j := i; j < npages; {
		vpn := vpn0 + uint64(j)
		filledLarge := false
		for _, lf := range larges {
			if vpn >= lf.baseVPN && vpn < lf.baseVPN+span {
				ctx.TLBInsertLarge(lf.baseVPN, lf.frame)
				// The large entry covers the window's remainder.
				j += int(lf.baseVPN + span - vpn)
				filledLarge = true
				break
			}
		}
		if !filledLarge {
			ctx.TLBInsert(vpn, out[resolvedAt+j-i].Frame())
			j++
		}
	}
	return out, nil
}

// Mappings returns the number of valid kernel translations; test helper.
func (p *Pmap) Mappings() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, pte := range p.pt {
		if pte.Valid {
			n++
		}
	}
	return n
}
