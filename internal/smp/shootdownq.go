package smp

import "sync"

// This file implements batched TLB shootdowns: a per-CPU queue of pending
// remote invalidations that is drained with a single ranged IPI round.
//
// The paper's protocol avoids most invalidations outright; the ones that
// remain (tearing down mappings whose accessed bit is set) need not happen
// one IPI round at a time.  A mapping's cpumask already says exactly which
// CPUs may cache its translation, so the teardown path can record the debt
// — (cpumask, vpn) — in its CPU's queue and keep going.  The queue is
// flushed in ONE ranged shootdown when either a threshold of pending lines
// accumulates or the caller needs the addresses clean for reuse (an
// allocation miss about to recycle the virtual addresses).
//
// Deferral is sound only for invalidations whose staleness is not yet
// observable: the mapping-cache layer queues a line strictly before the
// virtual address is reused, and flushes before handing the address out
// again.  The queue itself enforces nothing about reuse; it is a batching
// mechanism, not a coherence protocol.

// DefaultShootdownBatch is the queue depth at which a flush is forced even
// if no allocation needs the addresses yet, bounding both queue memory and
// the staleness window of any one TLB line.
const DefaultShootdownBatch = 64

// pendingInv is one deferred invalidation: the virtual page and the CPUs
// that may cache its translation.
type pendingInv struct {
	vpn     uint64
	targets CPUSet
}

// shootdownQueue is one CPU's pending-invalidation queue.  Its mutex only
// arbitrates between kernel threads pinned to the same virtual CPU; it is
// never contended across CPUs.
type shootdownQueue struct {
	mu      sync.Mutex
	pending []pendingInv
	// spare and vpnSpare recycle the drained slices so steady-state
	// flushing does not allocate.
	spare    []pendingInv
	vpnSpare []uint64
}

// QueueShootdown records that vpn may be cached by the TLBs of targets and
// must be invalidated there before the address is reused.  The entry is
// queued on the context CPU's shootdown queue; when the queue reaches the
// machine's batch threshold it is flushed immediately.  Entries with no
// targets are dropped (nothing to invalidate anywhere).
func (c *Context) QueueShootdown(targets CPUSet, vpn uint64) {
	if targets.Empty() {
		return
	}
	q := c.m.sdq[c.cpu.ID]
	q.mu.Lock()
	q.pending = append(q.pending, pendingInv{vpn: vpn, targets: targets})
	force := len(q.pending) >= c.m.ShootdownBatch()
	q.mu.Unlock()
	if force {
		c.FlushShootdowns()
	}
}

// QueueShootdownBatch queues one invalidation per vpns[i]/targets[i] pair
// under a single lock round — the bulk enqueue a batched teardown uses.
// Pairs with no targets are dropped.  The slices must be equal length.
func (c *Context) QueueShootdownBatch(targets []CPUSet, vpns []uint64) {
	if len(targets) != len(vpns) {
		panic("smp: QueueShootdownBatch slice length mismatch")
	}
	q := c.m.sdq[c.cpu.ID]
	q.mu.Lock()
	for i, t := range targets {
		if t.Empty() {
			continue
		}
		q.pending = append(q.pending, pendingInv{vpn: vpns[i], targets: t})
	}
	force := len(q.pending) >= c.m.ShootdownBatch()
	q.mu.Unlock()
	if force {
		c.FlushShootdowns()
	}
}

// PendingShootdowns reports how many invalidations are queued on the
// context CPU.
func (c *Context) PendingShootdowns() int {
	q := c.m.sdq[c.cpu.ID]
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// FlushShootdowns drains the context CPU's queue: entries targeting the
// flushing CPU are purged with local invalidations, and all remaining
// targets receive ONE ranged shootdown covering every queued page.  The
// union of target masks is used — a remote handler may invalidate lines it
// never cached, which wastes a few handler cycles but is always sound.
// Returns the number of invalidations retired.
func (c *Context) FlushShootdowns() int {
	q := c.m.sdq[c.cpu.ID]
	q.mu.Lock()
	if len(q.pending) == 0 {
		q.mu.Unlock()
		return 0
	}
	batch := q.pending
	q.pending = q.spare[:0]
	q.spare = nil
	vpns := q.vpnSpare[:0]
	q.vpnSpare = nil
	q.mu.Unlock()

	var remote CPUSet
	self := c.cpu.ID
	for _, p := range batch {
		if p.targets.Has(self) {
			c.InvalidateLocal(p.vpn)
		}
		if rt := p.targets.Clear(self); !rt.Empty() {
			remote = remote.Union(rt)
			vpns = append(vpns, p.vpn)
		}
	}
	if len(vpns) > 0 {
		c.ShootdownRange(remote, vpns)
	}
	c.m.counters.BatchedFlushes.Add(1)
	c.m.counters.BatchedInv.Add(uint64(len(batch)))

	n := len(batch)
	q.mu.Lock()
	if q.spare == nil {
		q.spare = batch[:0]
	}
	if q.vpnSpare == nil {
		q.vpnSpare = vpns[:0]
	}
	q.mu.Unlock()
	return n
}

// SetShootdownBatch sets the queue depth that forces a flush; n <= 0
// restores the default.  Call before the machine runs workloads.
func (m *Machine) SetShootdownBatch(n int) {
	if n <= 0 {
		n = DefaultShootdownBatch
	}
	m.sdBatch.Store(int64(n))
}

// ShootdownBatch returns the current flush threshold.
func (m *Machine) ShootdownBatch() int {
	if b := m.sdBatch.Load(); b > 0 {
		return int(b)
	}
	return DefaultShootdownBatch
}
