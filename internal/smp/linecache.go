package smp

// lineCache is a tiny LRU set of 64-byte cache-line tags used to model
// whether a page-table entry is resident in a CPU's data cache.  The paper
// measures a 2x cost difference between invalidating a mapping whose PTE is
// cached (~500 cycles on the Xeon) and one whose PTE must be fetched from
// memory (~1000 cycles); workloads that sweep large mapping ranges (dd over
// a 512 MB disk) pay the uncached cost, while tight reuse (the Section 3
// microbenchmark's single-page loop) pays the cached cost.
type lineCache struct {
	capacity int
	lines    map[uint64]*lcNode
	head     lcNode
	tail     lcNode
}

type lcNode struct {
	tag        uint64
	prev, next *lcNode
}

// ptesPerLine is how many 8-byte PTEs share one 64-byte cache line.
const ptesPerLine = 8

func newLineCache(capacity int) *lineCache {
	if capacity <= 0 {
		capacity = 1
	}
	lc := &lineCache{
		capacity: capacity,
		lines:    make(map[uint64]*lcNode, capacity),
	}
	lc.head.next = &lc.tail
	lc.tail.prev = &lc.head
	return lc
}

func (lc *lineCache) unlink(n *lcNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (lc *lineCache) pushFront(n *lcNode) {
	n.next = lc.head.next
	n.prev = &lc.head
	lc.head.next.prev = n
	lc.head.next = n
}

// lineTag maps a virtual page number to the cache-line tag of its PTE.
func lineTag(vpn uint64) uint64 { return vpn / ptesPerLine }

// touch records an access to vpn's PTE and reports whether its line was
// already resident.
func (lc *lineCache) touch(vpn uint64) bool {
	tag := lineTag(vpn)
	if n, ok := lc.lines[tag]; ok {
		lc.unlink(n)
		lc.pushFront(n)
		return true
	}
	if len(lc.lines) >= lc.capacity {
		victim := lc.tail.prev
		lc.unlink(victim)
		delete(lc.lines, victim.tag)
	}
	n := &lcNode{tag: tag}
	lc.lines[tag] = n
	lc.pushFront(n)
	return false
}

// resident reports whether vpn's PTE line is cached, without refreshing it.
func (lc *lineCache) resident(vpn uint64) bool {
	_, ok := lc.lines[lineTag(vpn)]
	return ok
}
