package smp

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
)

// TestNowMonotonicAcrossReset: ResetCounters zeroes the per-CPU cycle
// counters for measurement, but the machine clock must keep ticking —
// age bounds compare against it across measurement windows.
func TestNowMonotonicAcrossReset(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, true)
	m.Ctx(0).Charge(500)
	m.Ctx(1).Charge(250)
	before := m.Now()
	if before < 750 {
		t.Fatalf("Now = %d before reset, want >= 750", before)
	}
	m.ResetCounters()
	if got := m.TotalCycles(); got != 0 {
		t.Fatalf("TotalCycles = %d after reset, want 0", got)
	}
	if after := m.Now(); after < before {
		t.Fatalf("Now went backwards across ResetCounters: %d -> %d", before, after)
	}
	m.Ctx(0).Charge(100)
	if got := m.Now(); got < before+100 {
		t.Fatalf("Now = %d, want >= %d (clock keeps accumulating)", got, before+100)
	}
}

// TestIdleWithoutWork: an idle tick on a machine with no registered work
// is pure clock advance — exactly dur, all of it idle, none of it daemon.
func TestIdleWithoutWork(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, true)
	before := m.Now()
	if spent := m.Idle(0, 1000); spent != 0 {
		t.Fatalf("Idle spent %d with no work registered, want 0", spent)
	}
	if got := m.Now(); got != before+1000 {
		t.Fatalf("Now advanced by %d, want exactly 1000", got-before)
	}
	c := m.Counters()
	if got := c.IdleCycles.Load(); got != 1000 {
		t.Fatalf("IdleCycles = %d, want 1000", got)
	}
	if got := c.DaemonCycles.Load(); got != 0 {
		t.Fatalf("DaemonCycles = %d, want 0", got)
	}
	if m.Idle(0, 0) != 0 || m.Idle(0, -5) != 0 {
		t.Fatal("zero/negative ticks must be no-ops")
	}
}

// TestIdleChargesWorkAgainstTick: work that consumes part of the budget is
// charged as daemon cycles, and the unconsumed remainder still advances
// the clock — the tick costs dur wall-clock no matter how much the work
// used.
func TestIdleChargesWorkAgainstTick(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, true)
	m.RegisterIdleWork(func(ctx *Context, budget cycles.Cycles) {
		ctx.Charge(300)
	})
	before := m.Now()
	if spent := m.Idle(0, 1000); spent != 300 {
		t.Fatalf("Idle spent %d, want 300", spent)
	}
	if got := m.Now(); got != before+1000 {
		t.Fatalf("Now advanced by %d, want exactly 1000 (300 charged + 700 credited)", got-before)
	}
	c := m.Counters()
	if got := c.DaemonCycles.Load(); got != 300 {
		t.Fatalf("DaemonCycles = %d, want 300", got)
	}
	if got := c.IdleCycles.Load(); got != 1000 {
		t.Fatalf("IdleCycles = %d, want 1000", got)
	}
	// The charged cycles ran on the idling CPU, not out of thin air.
	if got := m.Ctx(0).CPU().Cycles(); got != 300 {
		t.Fatalf("CPU 0 cycles = %d, want 300", got)
	}
}

// TestIdleOverrunClamped: work that blows past its budget extends the tick
// (its cycles are real) but the daemon charge and the return value are
// clamped to the budget, so IdleCycles never under-reports a lull and the
// credit never goes negative.
func TestIdleOverrunClamped(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, true)
	m.RegisterIdleWork(func(ctx *Context, budget cycles.Cycles) {
		ctx.Charge(5000)
	})
	before := m.Now()
	if spent := m.Idle(0, 1000); spent != 1000 {
		t.Fatalf("Idle spent %d, want clamp to budget 1000", spent)
	}
	// All 5000 charged cycles are on the clock; no extra credit on top.
	if got := m.Now(); got != before+5000 {
		t.Fatalf("Now advanced by %d, want 5000 (overrun extends the tick)", got-before)
	}
	if got := m.Counters().DaemonCycles.Load(); got != 1000 {
		t.Fatalf("DaemonCycles = %d, want clamp to 1000", got)
	}
}

// TestRegisterIdleWorkReplaceAndDisable: registration replaces the
// previous hook, nil disables it.
func TestRegisterIdleWorkReplaceAndDisable(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, true)
	ran := 0
	m.RegisterIdleWork(func(ctx *Context, budget cycles.Cycles) { ran = 1 })
	m.RegisterIdleWork(func(ctx *Context, budget cycles.Cycles) { ran = 2 })
	m.Idle(0, 100)
	if ran != 2 {
		t.Fatalf("ran = %d, want the replacement hook", ran)
	}
	m.RegisterIdleWork(nil)
	ran = 0
	m.Idle(0, 100)
	if ran != 0 {
		t.Fatal("nil registration must disable idle work")
	}
}

// TestIdleCountersSurviveSnapshot: the new counters ride the snapshot/sub
// plumbing like every other counter.
func TestIdleCountersSurviveSnapshot(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, true)
	m.Idle(0, 700)
	snap := m.SnapshotCounters()
	if snap.IdleCycles != 700 {
		t.Fatalf("snapshot IdleCycles = %d, want 700", snap.IdleCycles)
	}
	m.Idle(0, 300)
	diff := m.SnapshotCounters().Sub(snap)
	if diff.IdleCycles != 300 {
		t.Fatalf("diff IdleCycles = %d, want 300", diff.IdleCycles)
	}
	m.ResetCounters()
	if got := m.Counters().IdleCycles.Load(); got != 0 {
		t.Fatalf("IdleCycles = %d after reset, want 0", got)
	}
}
