package smp

import "sfbuf/internal/cycles"

// This file implements the software TLB-coherence protocol the paper's
// Section 1 describes: "The processor initiating a mapping change issues an
// interprocessor interrupt (IPI) to each of the processors that share the
// mapping; the interrupt handler that is executed by each of these
// processors includes an instruction, such as invlpg, that invalidates that
// processor's TLB entry for the mapping's virtual address."

// InvalidateLocal performs an invlpg on the context's own CPU: the entry
// for vpn is dropped from its TLB and the cached- or uncached-PTE cost from
// the platform model is charged.  It increments the machine's LocalInv
// counter — the metric the paper plots as "local TLB invalidations issued".
func (c *Context) InvalidateLocal(vpn uint64) {
	cpu := c.cpu
	cpu.mu.Lock()
	cached := cpu.pteCache.touch(vpn)
	cpu.tlb.Invalidate(vpn)
	cpu.mu.Unlock()
	if cached {
		c.Charge(c.Cost().LocalInvCachedPTE)
	} else {
		c.Charge(c.Cost().LocalInvUncachedPTE)
	}
	c.m.counters.LocalInv.Add(1)
}

// InvalidateLocalRange purges every vpn from the context CPU's TLB in one
// pass: the same per-entry invlpg costs and LocalInv counts as calling
// InvalidateLocal per page, but a single lock round trip — the local half
// of a batched teardown.
func (c *Context) InvalidateLocalRange(vpns []uint64) {
	if len(vpns) == 0 {
		return
	}
	cpu := c.cpu
	var cached int
	cpu.mu.Lock()
	for _, vpn := range vpns {
		if cpu.pteCache.touch(vpn) {
			cached++
		}
		cpu.tlb.Invalidate(vpn)
	}
	cpu.mu.Unlock()
	c.Charge(c.Cost().LocalInvCachedPTE*cycles.Cycles(cached) +
		c.Cost().LocalInvUncachedPTE*cycles.Cycles(len(vpns)-cached))
	c.m.counters.LocalInv.Add(uint64(len(vpns)))
}

// TouchPTERange records PTE-cache touches for every vpn in one lock round
// (the batched counterpart of TouchPTE).
func (c *Context) TouchPTERange(vpns []uint64) {
	c.cpu.mu.Lock()
	for _, vpn := range vpns {
		c.cpu.pteCache.touch(vpn)
	}
	c.cpu.mu.Unlock()
}

// TouchPTESpan records PTE-cache touches for n consecutive vpns starting
// at start — the contiguous-run form of TouchPTERange, taken by the
// KEnterRun/KRemoveRun bulk page-table passes.
func (c *Context) TouchPTESpan(start uint64, n int) {
	c.cpu.mu.Lock()
	for i := 0; i < n; i++ {
		c.cpu.pteCache.touch(start + uint64(i))
	}
	c.cpu.mu.Unlock()
}

// Shootdown sends TLB-shootdown IPIs for vpn to every CPU in targets other
// than the initiator.  The initiator is charged the platform's measured
// shootdown wait (it spins until all targets acknowledge); each target is
// charged the IPI handler cost and loses its TLB entry for vpn.
//
// One call counts as one "remote TLB invalidation issued" regardless of how
// many targets it reaches, matching the paper's counting rule.  Calls with
// no remote targets are free no-ops, which is how uniprocessor platforms
// avoid all shootdown cost.
//
// The remote handler's own cycles accrue to the machine's HandlerCycles
// counter rather than the target CPUs' clocks: handler execution overlaps
// the initiator's charged wait, so adding it to per-CPU time would count
// the same wall-clock interval twice.
func (c *Context) Shootdown(targets CPUSet, vpn uint64) {
	targets = targets.Clear(c.cpu.ID)
	if targets.Empty() {
		return
	}
	c.m.counters.RemoteInvIssued.Add(1)
	c.Charge(c.m.Plat.RemoteShootdownWait)
	targets.ForEach(func(id int) {
		if id >= len(c.m.cpus) {
			return
		}
		t := c.m.cpus[id]
		t.mu.Lock()
		t.tlb.Invalidate(vpn)
		t.mu.Unlock()
		c.m.counters.HandlerCycles.Add(int64(c.Cost().IPIHandler))
		c.m.counters.IPIsDelivered.Add(1)
		c.chargeRemoteIPI(id)
	})
}

// chargeRemoteIPI accounts one IPI delivery crossing a package boundary:
// when the target sits on a different socket than the initiator, the
// initiator pays the platform's RemoteIPIExtra on top of its shootdown
// wait and the delivery is counted in Counters.RemoteIPIs.  A no-op on a
// one-socket topology.
func (c *Context) chargeRemoteIPI(target int) {
	if c.m.topo.Sockets > 1 && c.m.topo.SocketOf(target) != c.Socket() {
		c.Charge(c.m.Plat.Cost.RemoteIPIExtra)
		c.m.counters.RemoteIPIs.Add(1)
	}
}

// ShootdownRange sends one ranged shootdown covering all vpns: a single
// IPI round whose handlers invalidate every page of the range, the way
// pmap_qremove-style bulk unmappings invalidate.  The initiator waits the
// base shootdown latency plus a per-page increment; the whole range counts
// as ONE remote invalidation issued.
func (c *Context) ShootdownRange(targets CPUSet, vpns []uint64) {
	targets = targets.Clear(c.cpu.ID)
	if targets.Empty() || len(vpns) == 0 {
		return
	}
	c.m.counters.RemoteInvIssued.Add(1)
	c.Charge(c.m.Plat.RemoteShootdownWait +
		c.Cost().RangedShootdownPerPage*cycles.Cycles(len(vpns)))
	targets.ForEach(func(id int) {
		if id >= len(c.m.cpus) {
			return
		}
		t := c.m.cpus[id]
		t.mu.Lock()
		t.tlb.InvalidateRange(vpns)
		t.mu.Unlock()
		c.m.counters.HandlerCycles.Add(int64(c.Cost().IPIHandler) +
			int64(c.Cost().LocalInvCachedPTE)*int64(len(vpns)))
		c.m.counters.IPIsDelivered.Add(1)
		c.chargeRemoteIPI(id)
	})
}

// InvalidateGlobal performs a local invalidation plus a shootdown to every
// other CPU: the unconditional global invalidation the original kernel
// issues when it tears down an ephemeral mapping.
func (c *Context) InvalidateGlobal(vpn uint64) {
	c.InvalidateLocal(vpn)
	c.Shootdown(c.m.AllCPUs(), vpn)
}

// TLBLookup consults the context CPU's TLB for vpn.  No cycle cost: TLB
// hits are part of ordinary instruction execution.
func (c *Context) TLBLookup(vpn uint64) (frame uint64, ok bool) {
	c.cpu.mu.Lock()
	defer c.cpu.mu.Unlock()
	return c.cpu.tlb.Lookup(vpn)
}

// TLBInsert fills the context CPU's TLB after a page-table walk.
func (c *Context) TLBInsert(vpn, frame uint64) {
	c.cpu.mu.Lock()
	defer c.cpu.mu.Unlock()
	c.cpu.tlb.Insert(vpn, frame)
}

// TLBInsertLarge fills one superpage entry in the context CPU's TLB: the
// aligned window starting at baseVPN maps from frame by arithmetic.  The
// walk that discovered the promoted window pays for one entry, not one
// per page — the simulated superpage promotion's whole benefit.
func (c *Context) TLBInsertLarge(baseVPN, frame uint64) {
	c.cpu.mu.Lock()
	defer c.cpu.mu.Unlock()
	c.cpu.tlb.InsertLarge(baseVPN, frame)
}

// TouchPTE records that the context's CPU accessed vpn's page-table entry,
// warming the modeled PTE data cache.  The page-table walk on a TLB miss
// and the PTE store on a mapping change both do this.
func (c *Context) TouchPTE(vpn uint64) {
	c.cpu.mu.Lock()
	c.cpu.pteCache.touch(vpn)
	c.cpu.mu.Unlock()
}

// FlushLocalTLB drops every entry from the context CPU's TLB.
func (c *Context) FlushLocalTLB() {
	c.cpu.mu.Lock()
	c.cpu.tlb.FlushAll()
	c.cpu.mu.Unlock()
	c.m.counters.FullFlushes.Add(1)
}
