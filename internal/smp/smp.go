// Package smp models the multiprocessor machine: virtual CPUs with private
// TLBs and cycle counters, and the software TLB-coherence protocol
// (interprocessor-interrupt shootdowns) whose cost the paper sets out to
// avoid.
//
// Everything that happens in the simulated kernel happens on behalf of a
// Context — a kernel thread pinned to one virtual CPU.  Operations charge
// cycles to that CPU; machine-wide event counters record every local and
// remote TLB invalidation issued, which is the metric plotted in the
// paper's Figures 3, 5, 7, 10, 13, 14, 17, 18 and 20.
package smp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/tlb"
	"sfbuf/internal/vm"
)

// CPU is one virtual processor.
type CPU struct {
	// ID is the virtual CPU id, dense from 0.
	ID int
	// Core is the physical core index this virtual CPU belongs to; SMT
	// siblings share a core.
	Core int

	mu  sync.Mutex // guards TLB and pteCache (shootdowns cross CPUs)
	tlb *tlb.TLB
	// pteCache models which page-table entries are resident in this
	// CPU's data cache, deciding the cached/uncached invlpg cost split
	// that Section 3 measures.
	pteCache *lineCache

	cycles atomic.Int64
}

// Cycles returns the cycles this CPU has consumed since the last reset.
func (c *CPU) Cycles() cycles.Cycles { return cycles.Cycles(c.cycles.Load()) }

// TLBStats returns a copy of this CPU's TLB event counters.
func (c *CPU) TLBStats() tlb.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tlb.Stats()
}

// TLBResident reports whether the CPU's TLB holds an entry for vpn
// (invariant-check helper; takes the CPU lock).
func (c *CPU) TLBResident(vpn uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tlb.Resident(vpn)
}

// TLBFrameOf returns the frame the CPU's TLB maps vpn to, if resident.
func (c *CPU) TLBFrameOf(vpn uint64) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tlb.FrameOf(vpn)
}

// Counters aggregates machine-wide TLB coherence events.  All fields are
// updated atomically and may be read while the machine runs.
type Counters struct {
	// LocalInv counts TLB invalidations a CPU performed on its own TLB
	// outside of shootdown handling (the paper's "local invalidations
	// issued").
	LocalInv atomic.Uint64
	// RemoteInvIssued counts shootdown initiations: one per operation
	// that sent IPIs, regardless of target count, matching the paper's
	// "we count the number of remote TLB invalidations issued and not
	// the number that actually happen on the remote processors".
	RemoteInvIssued atomic.Uint64
	// IPIsDelivered counts per-target IPI deliveries.
	IPIsDelivered atomic.Uint64
	// FullFlushes counts whole-TLB flushes.
	FullFlushes atomic.Uint64
	// HandlerCycles accumulates the cycles remote CPUs spend in
	// shootdown interrupt handlers.  They are tracked separately from
	// the per-CPU counters because handler execution overlaps the
	// initiator's (already charged) wait — folding both into elapsed
	// time would double-count wall-clock time.
	HandlerCycles atomic.Int64
	// BatchedFlushes counts shootdown-queue drains (each at most one
	// ranged IPI round) and BatchedInv the invalidations they retired;
	// BatchedInv/BatchedFlushes is the coalescing factor batching earns.
	BatchedFlushes atomic.Uint64
	BatchedInv     atomic.Uint64
	// LockAcq counts kernel lock round trips charged through ChargeLock.
	// It is the denominator-free form of the vectored-path economy claim:
	// a batched mapper operation must take fewer lock round trips per
	// page than the equivalent run of single-page operations.
	LockAcq atomic.Uint64
	// PTWalks counts page-table walks charged through ChargeWalk: one per
	// single-page TLB miss, and one per contiguous PTE run on the ranged
	// translate path.  Walks per page is the economy metric the
	// contiguous-run work targets.
	PTWalks atomic.Uint64
	// IdleCycles accumulates the durations passed to Machine.Idle, and
	// DaemonCycles the portion the registered idle work actually consumed.
	// Daemon work is charged to the idling CPU like any other kernel work
	// (its locks and IPIs are real), but it displaces idle time, not
	// workload time; these two counters let a harness separate the
	// machine's busy cycles from its background-maintenance cycles.
	IdleCycles   atomic.Int64
	DaemonCycles atomic.Int64
	// RemoteLockAcq counts the subset of LockAcq whose lock home socket
	// differed from the acquiring CPU's socket — cross-package cache-line
	// transfers on a multi-socket machine.  Always zero on a one-socket
	// topology.
	RemoteLockAcq atomic.Uint64
	// RemoteIPIs counts the subset of IPIsDelivered whose target CPU sat
	// on a different socket than the initiator.  Always zero on a
	// one-socket topology.
	RemoteIPIs atomic.Uint64
	// RemoteMemCycles accumulates the extra cycles cross-socket memory
	// traffic cost: copies, zeroing, and checksums whose frame is homed on
	// another socket pay the platform's RemoteMemPerByte surcharge, which
	// lands both on the CPU and here.  Always zero on a one-socket
	// topology.
	RemoteMemCycles atomic.Int64
	// SlowMemCycles accumulates the extra cycles slow-tier memory traffic
	// cost: copies, zeroing, and checksums whose frame resides in the slow
	// physical-memory tier pay the platform's SlowMemPerByte surcharge,
	// which lands both on the CPU and here.  Always zero on a single-tier
	// pool.
	SlowMemCycles atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	LocalInv        uint64
	RemoteInvIssued uint64
	IPIsDelivered   uint64
	FullFlushes     uint64
	HandlerCycles   int64
	BatchedFlushes  uint64
	BatchedInv      uint64
	LockAcq         uint64
	PTWalks         uint64
	IdleCycles      int64
	DaemonCycles    int64
	RemoteLockAcq   uint64
	RemoteIPIs      uint64
	RemoteMemCycles int64
	SlowMemCycles   int64
}

// Sub returns the event deltas since an earlier snapshot.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		LocalInv:        s.LocalInv - earlier.LocalInv,
		RemoteInvIssued: s.RemoteInvIssued - earlier.RemoteInvIssued,
		IPIsDelivered:   s.IPIsDelivered - earlier.IPIsDelivered,
		FullFlushes:     s.FullFlushes - earlier.FullFlushes,
		HandlerCycles:   s.HandlerCycles - earlier.HandlerCycles,
		BatchedFlushes:  s.BatchedFlushes - earlier.BatchedFlushes,
		BatchedInv:      s.BatchedInv - earlier.BatchedInv,
		LockAcq:         s.LockAcq - earlier.LockAcq,
		PTWalks:         s.PTWalks - earlier.PTWalks,
		IdleCycles:      s.IdleCycles - earlier.IdleCycles,
		DaemonCycles:    s.DaemonCycles - earlier.DaemonCycles,
		RemoteLockAcq:   s.RemoteLockAcq - earlier.RemoteLockAcq,
		RemoteIPIs:      s.RemoteIPIs - earlier.RemoteIPIs,
		RemoteMemCycles: s.RemoteMemCycles - earlier.RemoteMemCycles,
		SlowMemCycles:   s.SlowMemCycles - earlier.SlowMemCycles,
	}
}

// Topology describes the machine's socket layout: Sockets packages, each
// holding CPUsPerSocket consecutive CPU ids.  The default topology is one
// socket spanning every CPU, under which every remote-cost path is
// unreachable and the machine behaves exactly as before sockets existed.
type Topology struct {
	Sockets       int
	CPUsPerSocket int
}

// SocketOf returns the socket housing the given CPU id.
func (t Topology) SocketOf(cpu int) int {
	if t.Sockets <= 1 || t.CPUsPerSocket <= 0 {
		return 0
	}
	s := cpu / t.CPUsPerSocket
	if s >= t.Sockets {
		s = t.Sockets - 1
	}
	return s
}

// Machine is one simulated multiprocessor.
type Machine struct {
	Plat arch.Platform
	Phys *vm.PhysMem
	cpus []*CPU
	// sdq holds one batched-shootdown queue per CPU; sdBatch is the
	// queue depth that forces a flush (0 means DefaultShootdownBatch).
	sdq     []*shootdownQueue
	sdBatch atomic.Int64

	// topo is the socket layout; the zero value means one socket over all
	// CPUs (SetTopology installs multi-socket layouts).
	topo Topology

	counters Counters

	// clockBase carries the simulated-time contribution of idle periods
	// and of per-CPU cycle counters zeroed by ResetCounters, so that
	// Now() is monotonic across counter resets and idle gaps.  Without
	// it, a harness reset would make parked-window age stamps appear to
	// come from the future.
	clockBase atomic.Int64

	// idleWork is the background-maintenance hook run by Idle (the
	// modeled per-CPU reclaim daemon registers here).
	idleMu   sync.Mutex
	idleWork IdleWork
}

// NewMachine builds a machine for the given platform with frames pages of
// physical memory on the LIFO frame allocator.  backed selects whether
// pages carry real storage.
func NewMachine(p arch.Platform, frames int, backed bool) *Machine {
	return NewMachineWithPhys(p, vm.NewPhysMem(frames, backed))
}

// NewMachineWithPhys builds a machine over a caller-constructed physical
// memory pool — how the kernel boots the buddy frame allocator
// (vm.NewBuddyPhysMem) behind the Config.PhysBuddy knob while the
// figure-reproduction configurations keep the seed's LIFO pool and its
// bit-exact allocation order.
func NewMachineWithPhys(p arch.Platform, phys *vm.PhysMem) *Machine {
	if p.NumCPUs <= 0 || p.NumCPUs > MaxCPUs {
		panic(fmt.Sprintf("smp: invalid CPU count %d", p.NumCPUs))
	}
	m := &Machine{
		Plat: p,
		Phys: phys,
		cpus: make([]*CPU, p.NumCPUs),
		sdq:  make([]*shootdownQueue, p.NumCPUs),
	}
	for i := range m.sdq {
		m.sdq[i] = &shootdownQueue{}
	}
	coreOf := make(map[int]int, p.NumCPUs)
	for core, members := range p.Cores {
		for _, id := range members {
			coreOf[id] = core
		}
	}
	for i := range m.cpus {
		m.cpus[i] = &CPU{
			ID:       i,
			Core:     coreOf[i],
			tlb:      tlb.New(p.TLBEntries),
			pteCache: newLineCache(p.PTECacheLines),
		}
	}
	return m
}

// NumCPUs returns the number of virtual CPUs.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// SetTopology partitions the machine's CPUs into sockets of consecutive
// ids.  sockets must divide the CPU count; sockets <= 1 restores the flat
// single-package layout.  It must be called before any work runs (kernel
// boot does), not concurrently with charging.
func (m *Machine) SetTopology(sockets int) {
	if sockets <= 1 {
		m.topo = Topology{Sockets: 1, CPUsPerSocket: len(m.cpus)}
		return
	}
	if len(m.cpus)%sockets != 0 {
		panic(fmt.Sprintf("smp: %d CPUs do not divide into %d sockets", len(m.cpus), sockets))
	}
	m.topo = Topology{Sockets: sockets, CPUsPerSocket: len(m.cpus) / sockets}
}

// Topology returns the machine's socket layout.
func (m *Machine) Topology() Topology {
	if m.topo.Sockets <= 0 {
		return Topology{Sockets: 1, CPUsPerSocket: len(m.cpus)}
	}
	return m.topo
}

// Sockets returns the number of sockets (1 on the default flat layout).
func (m *Machine) Sockets() int {
	if m.topo.Sockets <= 1 {
		return 1
	}
	return m.topo.Sockets
}

// SocketOf returns the socket housing the given CPU id.
func (m *Machine) SocketOf(cpu int) int { return m.topo.SocketOf(cpu) }

// CPU returns the virtual CPU with the given id.
func (m *Machine) CPU(id int) *CPU { return m.cpus[id] }

// AllCPUs returns the set of every virtual CPU.
func (m *Machine) AllCPUs() CPUSet { return AllCPUs(len(m.cpus)) }

// Counters exposes the machine-wide coherence event counters.
func (m *Machine) Counters() *Counters { return &m.counters }

// SnapshotCounters copies the coherence counters.
func (m *Machine) SnapshotCounters() Snapshot {
	return Snapshot{
		LocalInv:        m.counters.LocalInv.Load(),
		RemoteInvIssued: m.counters.RemoteInvIssued.Load(),
		IPIsDelivered:   m.counters.IPIsDelivered.Load(),
		FullFlushes:     m.counters.FullFlushes.Load(),
		HandlerCycles:   m.counters.HandlerCycles.Load(),
		BatchedFlushes:  m.counters.BatchedFlushes.Load(),
		BatchedInv:      m.counters.BatchedInv.Load(),
		LockAcq:         m.counters.LockAcq.Load(),
		PTWalks:         m.counters.PTWalks.Load(),
		IdleCycles:      m.counters.IdleCycles.Load(),
		DaemonCycles:    m.counters.DaemonCycles.Load(),
		RemoteLockAcq:   m.counters.RemoteLockAcq.Load(),
		RemoteIPIs:      m.counters.RemoteIPIs.Load(),
		RemoteMemCycles: m.counters.RemoteMemCycles.Load(),
		SlowMemCycles:   m.counters.SlowMemCycles.Load(),
	}
}

// ResetCounters zeroes coherence counters and per-CPU cycle counters;
// experiment harnesses call it between runs.  The zeroed cycles are
// folded into clockBase first so Now() never runs backwards.
func (m *Machine) ResetCounters() {
	m.counters.LocalInv.Store(0)
	m.counters.RemoteInvIssued.Store(0)
	m.counters.IPIsDelivered.Store(0)
	m.counters.FullFlushes.Store(0)
	m.counters.HandlerCycles.Store(0)
	m.counters.BatchedFlushes.Store(0)
	m.counters.BatchedInv.Store(0)
	m.counters.LockAcq.Store(0)
	m.counters.PTWalks.Store(0)
	m.counters.IdleCycles.Store(0)
	m.counters.DaemonCycles.Store(0)
	m.counters.RemoteLockAcq.Store(0)
	m.counters.RemoteIPIs.Store(0)
	m.counters.RemoteMemCycles.Store(0)
	m.counters.SlowMemCycles.Store(0)
	for _, c := range m.cpus {
		m.clockBase.Add(c.cycles.Swap(0))
	}
}

// TotalCycles sums cycles consumed across every CPU.  It is the elapsed
// time of a serialized workload — one whose logical threads hand off to
// each other (pipe writer/reader ping-pong, dd, PostMark, netperf) so that
// CPU work never overlaps in wall-clock time.
func (m *Machine) TotalCycles() cycles.Cycles {
	var t cycles.Cycles
	for _, c := range m.cpus {
		t += c.Cycles()
	}
	return t
}

// ParallelCycles estimates the elapsed cycles of a workload whose threads
// run concurrently (the web server).  Each physical core's elapsed time is
// the sum of its SMT siblings' cycles divided by the platform's SMT speedup
// when more than one sibling did work; the machine's elapsed time is the
// busiest core's.
func (m *Machine) ParallelCycles() cycles.Cycles {
	var busiest float64
	for _, members := range m.Plat.Cores {
		var sum float64
		busySiblings := 0
		for _, id := range members {
			cy := float64(m.cpus[id].Cycles())
			sum += cy
			if cy > 0 {
				busySiblings++
			}
		}
		if busySiblings > 1 && m.Plat.SMTSpeedup > 0 {
			sum /= m.Plat.SMTSpeedup
		}
		if sum > busiest {
			busiest = sum
		}
	}
	return cycles.Cycles(busiest)
}

// Context is a kernel thread of control pinned to one virtual CPU.  All
// simulated kernel work flows through a Context so that costs land on the
// right CPU and CPU-private mappings have a well-defined owner.
type Context struct {
	m   *Machine
	cpu *CPU
	// interrupted models signal delivery for interruptible sleeps
	// (the sf_buf_alloc "catch" flag).
	interrupted atomic.Bool
}

// Ctx returns a context executing on the given CPU.
func (m *Machine) Ctx(cpu int) *Context {
	return &Context{m: m, cpu: m.cpus[cpu]}
}

// Machine returns the context's machine.
func (c *Context) Machine() *Machine { return c.m }

// CPU returns the CPU the context runs on.
func (c *Context) CPU() *CPU { return c.cpu }

// CPUID returns the id of the CPU the context runs on.
func (c *Context) CPUID() int { return c.cpu.ID }

// Cost returns the platform cost model.
func (c *Context) Cost() *arch.CostModel { return &c.m.Plat.Cost }

// Charge adds cy cycles to the context's CPU.
func (c *Context) Charge(cy cycles.Cycles) { c.cpu.cycles.Add(int64(cy)) }

// ChargeBytes charges a fractional per-byte cost over n bytes.
func (c *Context) ChargeBytes(perByte float64, n int) {
	c.Charge(cycles.PerByte(perByte, n))
}

// Socket returns the socket of the CPU the context runs on.
func (c *Context) Socket() int { return c.m.topo.SocketOf(c.cpu.ID) }

// ChargeBytesAt is ChargeBytes for traffic against a physical frame: when
// the frame's home socket differs from the executing CPU's, the platform's
// RemoteMemPerByte surcharge is charged on top and accumulated in
// Counters.RemoteMemCycles, and when the frame resides in the slow
// physical-memory tier the platform's SlowMemPerByte surcharge is charged
// on top and accumulated in Counters.SlowMemCycles.  The two surcharges
// compose: a slow frame homed on a remote socket pays both.  On a
// one-socket topology over a single-tier pool it is exactly ChargeBytes.
func (c *Context) ChargeBytesAt(perByte float64, n int, frame uint64) {
	c.Charge(cycles.PerByte(perByte, n))
	if c.m.topo.Sockets > 1 && c.m.Phys.SocketOfFrame(frame) != c.Socket() {
		extra := cycles.PerByte(c.m.Plat.Cost.RemoteMemPerByte, n)
		c.Charge(extra)
		c.m.counters.RemoteMemCycles.Add(int64(extra))
	}
	if c.m.Phys.SlowFrame(frame) {
		extra := cycles.PerByte(c.m.Plat.Cost.SlowMemPerByte, n)
		c.Charge(extra)
		c.m.counters.SlowMemCycles.Add(int64(extra))
	}
}

// ChargeLock charges one uncontended lock round trip on multiprocessor
// kernels; uniprocessor kernels skip synchronization entirely, which is
// why Xeon-UP outruns the other Xeons on single-threaded benchmarks.
func (c *Context) ChargeLock() {
	if c.m.Plat.MPKernel {
		c.Charge(c.m.Plat.Cost.LockUncontended)
		c.m.counters.LockAcq.Add(1)
	}
}

// ChargeLockAt is ChargeLock for a lock homed on a specific socket: when
// the home differs from the acquiring CPU's socket the platform's
// RemoteLockExtra surcharge (the cross-package cache-line transfer) is
// charged on top and the acquisition counted in Counters.RemoteLockAcq.
// home < 0 marks a socket-agnostic lock and always charges locally; on a
// one-socket topology every home is local, so the method degenerates to
// ChargeLock exactly.
func (c *Context) ChargeLockAt(home int) {
	if !c.m.Plat.MPKernel {
		return
	}
	c.Charge(c.m.Plat.Cost.LockUncontended)
	c.m.counters.LockAcq.Add(1)
	if home >= 0 && c.m.topo.Sockets > 1 && home != c.Socket() {
		c.Charge(c.m.Plat.Cost.RemoteLockExtra)
		c.m.counters.RemoteLockAcq.Add(1)
	}
}

// ChargeWalk charges one page-table walk and counts it in PTWalks.  The
// single-page Translate path pays one walk per TLB miss; TranslateRun
// pays one walk per contiguous PTE run, which is the whole point of the
// ranged translate.
func (c *Context) ChargeWalk() {
	c.Charge(c.m.Plat.Cost.TLBMissWalk)
	c.m.counters.PTWalks.Add(1)
}

// Interrupt marks the context as having a pending signal; an interruptible
// sleep observing it aborts (sf_buf_alloc returns NULL under "catch").
func (c *Context) Interrupt() { c.interrupted.Store(true) }

// Interrupted reports and clears the pending-signal flag.
func (c *Context) Interrupted() bool {
	return c.interrupted.Swap(false)
}

// InterruptPending reports the flag without clearing it.
func (c *Context) InterruptPending() bool { return c.interrupted.Load() }
