package smp

import "sfbuf/internal/cycles"

// Idle-tick hook: the machine's model of a CPU having nothing to do for a
// stretch of simulated time.  A workload harness calls Idle(cpu, dur) for
// each lull; registered idle work (the background reclaim daemon) runs on
// that CPU and is charged normally — its locks, walks and IPIs are as real
// as the workload's — but the cycles it burns come out of the idle stretch
// instead of workload time.  Whatever the work does not consume still
// advances the simulated clock, so parked-state age bounds see idle time
// pass even on a machine doing nothing.

// IdleWork is background maintenance run during idle ticks.  It executes
// on the idling CPU's context and should stop on its own once it has
// charged roughly budget cycles; Idle tolerates overrun but the overrun
// extends the tick.
type IdleWork func(ctx *Context, budget cycles.Cycles)

// RegisterIdleWork installs fn as the machine's idle-tick hook, replacing
// any previous hook.  Pass nil to disable.
func (m *Machine) RegisterIdleWork(fn IdleWork) {
	m.idleMu.Lock()
	m.idleWork = fn
	m.idleMu.Unlock()
}

// Now returns the machine's simulated clock: every cycle any CPU has ever
// consumed, plus idle time, monotonic across ResetCounters.  It is a
// global (not per-CPU) clock, which is what age bounds want: a window
// parked by CPU 0 must age while CPU 1 does all the work.
func (m *Machine) Now() cycles.Cycles {
	return cycles.Cycles(m.clockBase.Load()) + m.TotalCycles()
}

// Idle models cpu being idle for dur cycles.  If idle work is registered
// it runs on that CPU with dur as its budget; the cycles it charged are
// measured and the unconsumed remainder is credited straight to the
// simulated clock, so Now() advances by at least dur either way.  Returns
// the cycles the idle work consumed.
func (m *Machine) Idle(cpu int, dur cycles.Cycles) cycles.Cycles {
	if dur <= 0 {
		return 0
	}
	m.idleMu.Lock()
	work := m.idleWork
	m.idleMu.Unlock()

	var spent cycles.Cycles
	if work != nil {
		c := m.cpus[cpu]
		before := c.Cycles()
		work(m.Ctx(cpu), dur)
		spent = c.Cycles() - before
		if spent < 0 {
			spent = 0 // a concurrent ResetCounters raced the tick
		}
		if spent > dur {
			spent = dur // overrun extends the tick but not the credit
		}
		m.counters.DaemonCycles.Add(int64(spent))
	}
	if rest := dur - spent; rest > 0 {
		m.clockBase.Add(int64(rest))
	}
	m.counters.IdleCycles.Add(int64(dur))
	return spent
}
