package smp

// Socket-topology unit tests: the asymmetric cross-package cost model
// (ChargeLockAt, ChargeBytesAt, remote IPI surcharges) and the layout
// bookkeeping behind it.  The load-bearing property throughout is that a
// one-socket topology — set explicitly or left as the zero value — is
// bit-identical to the machine before sockets existed.

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/vm"
)

func numaMachine(t *testing.T, sockets, cpusPer, frames int) *Machine {
	t.Helper()
	phys := vm.NewBuddyPhysMemNUMA(frames, false, sockets)
	m := NewMachineWithPhys(arch.XeonNUMA(sockets, cpusPer), phys)
	m.SetTopology(sockets)
	return m
}

func TestTopologySocketOf(t *testing.T) {
	m := numaMachine(t, 2, 2, 64)
	topo := m.Topology()
	if topo.Sockets != 2 || topo.CPUsPerSocket != 2 {
		t.Fatalf("topology = %+v, want 2x2", topo)
	}
	for cpu, want := range []int{0, 0, 1, 1} {
		if got := topo.SocketOf(cpu); got != want {
			t.Errorf("SocketOf(%d) = %d, want %d", cpu, got, want)
		}
		if got := m.Ctx(cpu).Socket(); got != want {
			t.Errorf("Ctx(%d).Socket() = %d, want %d", cpu, got, want)
		}
	}
}

func TestTopologyZeroValueIsFlat(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false)
	topo := m.Topology()
	if topo.Sockets != 1 || topo.CPUsPerSocket != m.NumCPUs() {
		t.Fatalf("default topology = %+v, want one socket over all CPUs", topo)
	}
	if m.Sockets() != 1 || m.SocketOf(m.NumCPUs()-1) != 0 {
		t.Fatal("flat machine must report one socket housing every CPU")
	}
}

func TestSetTopologyRejectsUnevenSplit(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false) // 4 CPUs
	defer func() {
		if recover() == nil {
			t.Fatal("SetTopology(3) over 4 CPUs should panic")
		}
	}()
	m.SetTopology(3)
}

// TestChargeLockAtRemote: a lock homed on another socket pays the base
// uncontended cost plus RemoteLockExtra and counts in RemoteLockAcq; a
// local or socket-agnostic home pays exactly ChargeLock.
func TestChargeLockAtRemote(t *testing.T) {
	m := numaMachine(t, 2, 2, 64)
	base := m.Plat.Cost.LockUncontended
	extra := m.Plat.Cost.RemoteLockExtra
	if extra <= 0 {
		t.Fatal("XeonNUMA must model a cross-package lock surcharge")
	}
	ctx := m.Ctx(0) // socket 0

	ctx.ChargeLockAt(0) // local home
	if got := m.CPU(0).Cycles(); got != base {
		t.Fatalf("local ChargeLockAt cost = %d, want %d", got, base)
	}
	ctx.ChargeLockAt(-1) // socket-agnostic
	if got := m.CPU(0).Cycles(); got != 2*base {
		t.Fatalf("agnostic ChargeLockAt cost = %d, want %d", got, 2*base)
	}
	ctx.ChargeLockAt(1) // remote home
	if got := m.CPU(0).Cycles(); got != 3*base+extra {
		t.Fatalf("remote ChargeLockAt cost = %d, want %d", got, 3*base+extra)
	}
	s := m.SnapshotCounters()
	if s.LockAcq != 3 || s.RemoteLockAcq != 1 {
		t.Fatalf("locks = %d remote = %d, want 3 and 1", s.LockAcq, s.RemoteLockAcq)
	}
}

// TestChargeLockAtFlatIdentity: on a one-socket machine ChargeLockAt is
// ChargeLock for every home value — the surcharge path is unreachable.
func TestChargeLockAtFlatIdentity(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false)
	ctx := m.Ctx(0)
	for _, home := range []int{-1, 0, 1, 7} {
		ctx.ChargeLockAt(home)
	}
	if got, want := m.TotalCycles(), 4*m.Plat.Cost.LockUncontended; got != want {
		t.Fatalf("flat ChargeLockAt total = %d, want %d", got, want)
	}
	if s := m.SnapshotCounters(); s.RemoteLockAcq != 0 {
		t.Fatalf("flat machine counted %d remote locks", s.RemoteLockAcq)
	}
}

// TestChargeBytesAtRemote: traffic against a frame homed on another
// socket pays RemoteMemPerByte on top, accumulated in RemoteMemCycles.
func TestChargeBytesAtRemote(t *testing.T) {
	m := numaMachine(t, 2, 2, 64)
	// Frame 1 is homed on socket 0, the last frame on socket 1.
	local := uint64(1)
	remote := uint64(63)
	if m.Phys.SocketOfFrame(local) != 0 || m.Phys.SocketOfFrame(remote) != 1 {
		t.Fatalf("frame homes = %d,%d, want 0,1",
			m.Phys.SocketOfFrame(local), m.Phys.SocketOfFrame(remote))
	}
	ctx := m.Ctx(0)
	const n = 1000
	perByte := 1.5
	ctx.ChargeBytesAt(perByte, n, local)
	localCost := m.CPU(0).Cycles()
	if want := cycles.PerByte(perByte, n); localCost != want {
		t.Fatalf("local ChargeBytesAt = %d, want %d", localCost, want)
	}
	ctx.ChargeBytesAt(perByte, n, remote)
	extra := cycles.PerByte(m.Plat.Cost.RemoteMemPerByte, n)
	if extra <= 0 {
		t.Fatal("XeonNUMA must model a cross-package memory surcharge")
	}
	if got, want := m.CPU(0).Cycles()-localCost, localCost+extra; got != want {
		t.Fatalf("remote ChargeBytesAt = %d, want %d", got, want)
	}
	if s := m.SnapshotCounters(); s.RemoteMemCycles != int64(extra) {
		t.Fatalf("RemoteMemCycles = %d, want %d", s.RemoteMemCycles, extra)
	}
}

// TestShootdownRemoteIPISurcharge: a shootdown whose targets span both
// sockets pays RemoteIPIExtra once per cross-package delivery and counts
// them in RemoteIPIs; a same-socket shootdown pays and counts nothing
// remote.
func TestShootdownRemoteIPISurcharge(t *testing.T) {
	m := numaMachine(t, 2, 2, 64)
	ctx := m.Ctx(0) // socket 0

	ctx.Shootdown(CPUSet(0).Set(1), 42) // sibling, same socket
	s := m.SnapshotCounters()
	if s.RemoteIPIs != 0 {
		t.Fatalf("same-socket shootdown counted %d remote IPIs", s.RemoteIPIs)
	}
	localCost := m.CPU(0).Cycles()

	m.ResetCounters()
	ctx.Shootdown(CPUSet(0).Set(2), 42) // socket 1
	s = m.SnapshotCounters()
	if s.RemoteIPIs != 1 {
		t.Fatalf("cross-socket shootdown counted %d remote IPIs, want 1", s.RemoteIPIs)
	}
	// ResetCounters zeroed the CPU clock, so the whole balance is this
	// one shootdown: the same-socket cost plus the package surcharge.
	if got, want := m.CPU(0).Cycles(), localCost+m.Plat.Cost.RemoteIPIExtra; got != want {
		t.Fatalf("cross-socket shootdown cost = %d, want %d (same-socket %d + surcharge %d)",
			got, want, localCost, m.Plat.Cost.RemoteIPIExtra)
	}

	// Ranged shootdowns pay the same per-delivery surcharge.
	m.ResetCounters()
	ctx.ShootdownRange(CPUSet(0).Set(1).Set(2).Set(3), []uint64{7, 8, 9})
	if s = m.SnapshotCounters(); s.RemoteIPIs != 2 {
		t.Fatalf("ranged shootdown counted %d remote IPIs, want 2 (cpus 2,3)", s.RemoteIPIs)
	}
}

// TestXeonNUMAPlatformShape: the NUMA constructor scales the CPU count
// with the socket grid and keeps SMT pairing within a package.
func TestXeonNUMAPlatformShape(t *testing.T) {
	p := arch.XeonNUMA(4, 2)
	if p.NumCPUs != 8 || !p.MPKernel {
		t.Fatalf("XeonNUMA(4,2) = %d CPUs MP=%v, want 8 MP CPUs", p.NumCPUs, p.MPKernel)
	}
	m := NewMachineWithPhys(p, vm.NewBuddyPhysMemNUMA(128, false, 4))
	m.SetTopology(4)
	for cpu := 0; cpu < 8; cpu++ {
		if got, want := m.SocketOf(cpu), cpu/2; got != want {
			t.Fatalf("SocketOf(%d) = %d, want %d", cpu, got, want)
		}
	}
}
