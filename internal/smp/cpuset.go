package smp

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUSet is a bitmask of virtual CPU ids, the paper's cpumask_t.  The i386
// sf_buf implementation records in each mapping's cpumask the set of CPUs
// on which the mapping is known valid (no stale TLB entry can exist there).
type CPUSet uint64

// MaxCPUs bounds the number of virtual CPUs a machine may have.
const MaxCPUs = 64

// Set returns s with cpu added.
func (s CPUSet) Set(cpu int) CPUSet { return s | 1<<uint(cpu) }

// Clear returns s with cpu removed.
func (s CPUSet) Clear(cpu int) CPUSet { return s &^ (1 << uint(cpu)) }

// Has reports whether cpu is in the set.
func (s CPUSet) Has(cpu int) bool { return s&(1<<uint(cpu)) != 0 }

// Count returns the number of CPUs in the set.
func (s CPUSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set is empty.
func (s CPUSet) Empty() bool { return s == 0 }

// Union returns the union of both sets.
func (s CPUSet) Union(o CPUSet) CPUSet { return s | o }

// Minus returns the CPUs in s that are not in o.
func (s CPUSet) Minus(o CPUSet) CPUSet { return s &^ o }

// ForEach calls f for each CPU in the set, in ascending id order.
func (s CPUSet) ForEach(f func(cpu int)) {
	for s != 0 {
		cpu := bits.TrailingZeros64(uint64(s))
		f(cpu)
		s = s.Clear(cpu)
	}
}

// AllCPUs returns the set {0, ..., n-1}.
func AllCPUs(n int) CPUSet {
	if n <= 0 {
		return 0
	}
	if n >= MaxCPUs {
		return ^CPUSet(0)
	}
	return CPUSet(1)<<uint(n) - 1
}

// String renders the set as "{0,2,3}".
func (s CPUSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(cpu int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", cpu)
	})
	b.WriteByte('}')
	return b.String()
}
