package smp

import (
	"testing"

	"sfbuf/internal/arch"
)

func TestMachineTopology(t *testing.T) {
	m := NewMachine(arch.XeonMPHTT(), 64, false)
	if m.NumCPUs() != 4 {
		t.Fatalf("cpus = %d, want 4", m.NumCPUs())
	}
	// SMT siblings 0,1 share core 0; 2,3 share core 1.
	if m.CPU(0).Core != m.CPU(1).Core {
		t.Fatal("cpus 0,1 should share a core")
	}
	if m.CPU(0).Core == m.CPU(2).Core {
		t.Fatal("cpus 0,2 should be on different cores")
	}
	if m.AllCPUs() != AllCPUs(4) {
		t.Fatalf("all = %v", m.AllCPUs())
	}
}

func TestChargeAccounting(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 64, false)
	ctx := m.Ctx(1)
	ctx.Charge(100)
	ctx.ChargeBytes(1.5, 1000)
	if got := m.CPU(1).Cycles(); got != 100+1500 {
		t.Fatalf("cpu1 cycles = %d, want 1600", got)
	}
	if got := m.CPU(0).Cycles(); got != 0 {
		t.Fatalf("cpu0 cycles = %d, want 0", got)
	}
	if m.TotalCycles() != 1600 {
		t.Fatalf("total = %d", m.TotalCycles())
	}
}

func TestChargeLockOnlyOnMPKernels(t *testing.T) {
	up := NewMachine(arch.XeonUP(), 16, false)
	up.Ctx(0).ChargeLock()
	if up.TotalCycles() != 0 {
		t.Fatal("UP kernel must not pay lock overhead")
	}
	mp := NewMachine(arch.XeonMP(), 16, false)
	mp.Ctx(0).ChargeLock()
	if mp.TotalCycles() != mp.Plat.Cost.LockUncontended {
		t.Fatalf("MP lock cost = %d", mp.TotalCycles())
	}
}

func TestLocalInvalidateCostsAndCounts(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 64, false)
	ctx := m.Ctx(0)
	// First invalidation: PTE line cold -> uncached cost.
	ctx.InvalidateLocal(42)
	uncached := m.CPU(0).Cycles()
	if uncached != m.Plat.Cost.LocalInvUncachedPTE {
		t.Fatalf("first invalidation cost %d, want uncached %d", uncached, m.Plat.Cost.LocalInvUncachedPTE)
	}
	// Second invalidation of the same VPN: line now hot -> cached cost.
	ctx.InvalidateLocal(42)
	second := m.CPU(0).Cycles() - uncached
	if second != m.Plat.Cost.LocalInvCachedPTE {
		t.Fatalf("second invalidation cost %d, want cached %d", second, m.Plat.Cost.LocalInvCachedPTE)
	}
	if got := m.Counters().LocalInv.Load(); got != 2 {
		t.Fatalf("local invalidations = %d, want 2", got)
	}
}

func cyc[T ~int64](v T) T { return v }

func TestLocalInvalidateDropsTLBEntry(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 64, false)
	ctx := m.Ctx(0)
	ctx.TLBInsert(7, 77)
	if !m.CPU(0).TLBResident(7) {
		t.Fatal("entry not inserted")
	}
	ctx.InvalidateLocal(7)
	if m.CPU(0).TLBResident(7) {
		t.Fatal("entry survived invalidation")
	}
}

func TestShootdownSemantics(t *testing.T) {
	m := NewMachine(arch.XeonMPHTT(), 64, false)
	// Fill VPN 9 into every TLB.
	for i := 0; i < 4; i++ {
		m.Ctx(i).TLBInsert(9, 99)
	}
	ctx := m.Ctx(0)
	ctx.Shootdown(AllCPUs(4), 9)

	// The initiator's own TLB is NOT touched by a shootdown (it issues a
	// separate local invalidation when needed).
	if !m.CPU(0).TLBResident(9) {
		t.Fatal("shootdown must not touch the initiator's TLB")
	}
	for i := 1; i < 4; i++ {
		if m.CPU(i).TLBResident(9) {
			t.Fatalf("cpu %d still holds the entry", i)
		}
	}
	// One issue event regardless of target count; three deliveries.
	if got := m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote issued = %d, want 1", got)
	}
	if got := m.Counters().IPIsDelivered.Load(); got != 3 {
		t.Fatalf("IPIs delivered = %d, want 3", got)
	}
	// The initiator waits the platform's measured shootdown latency; the
	// handler work overlaps that wait, so it accrues to the machine-wide
	// HandlerCycles counter rather than the target CPUs' clocks.
	if got := m.CPU(0).Cycles(); got != m.Plat.RemoteShootdownWait {
		t.Fatalf("initiator wait = %d, want %d", got, m.Plat.RemoteShootdownWait)
	}
	if got := m.CPU(2).Cycles(); got != 0 {
		t.Fatalf("target CPU charged %d, want 0 (handler cycles overlap the wait)", got)
	}
	if got := m.Counters().HandlerCycles.Load(); got != 3*int64(m.Plat.Cost.IPIHandler) {
		t.Fatalf("handler cycles = %d, want %d", got, 3*int64(m.Plat.Cost.IPIHandler))
	}
}

func TestShootdownRange(t *testing.T) {
	m := NewMachine(arch.OpteronMP(), 64, false)
	vpns := []uint64{10, 11, 12, 13}
	for _, v := range vpns {
		m.Ctx(1).TLBInsert(v, v*10)
	}
	ctx := m.Ctx(0)
	ctx.ShootdownRange(AllCPUs(2), vpns)
	for _, v := range vpns {
		if m.CPU(1).TLBResident(v) {
			t.Fatalf("vpn %d survived the ranged shootdown", v)
		}
	}
	// One issue event for the whole range.
	if got := m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote issued = %d, want 1", got)
	}
	want := m.Plat.RemoteShootdownWait + m.Plat.Cost.RangedShootdownPerPage*4
	if got := m.CPU(0).Cycles(); got != want {
		t.Fatalf("initiator wait = %d, want %d", got, want)
	}
	// A ranged shootdown with no vpns or no remote targets is free.
	m.ResetCounters()
	ctx.ShootdownRange(AllCPUs(2), nil)
	ctx.ShootdownRange(AllCPUs(1), vpns)
	if m.TotalCycles() != 0 || m.Counters().RemoteInvIssued.Load() != 0 {
		t.Fatal("empty ranged shootdowns must be free")
	}
}

func TestShootdownWithNoRemoteTargetsIsFree(t *testing.T) {
	m := NewMachine(arch.XeonUP(), 16, false)
	ctx := m.Ctx(0)
	ctx.Shootdown(AllCPUs(1), 5) // only target is the initiator itself
	if m.Counters().RemoteInvIssued.Load() != 0 {
		t.Fatal("self-only shootdown must not count as issued")
	}
	if m.TotalCycles() != 0 {
		t.Fatal("self-only shootdown must be free")
	}
}

func TestInvalidateGlobal(t *testing.T) {
	m := NewMachine(arch.OpteronMP(), 64, false)
	m.Ctx(0).TLBInsert(3, 30)
	m.Ctx(1).TLBInsert(3, 30)
	m.Ctx(0).InvalidateGlobal(3)
	if m.CPU(0).TLBResident(3) || m.CPU(1).TLBResident(3) {
		t.Fatal("global invalidation left entries behind")
	}
	if m.Counters().LocalInv.Load() != 1 || m.Counters().RemoteInvIssued.Load() != 1 {
		t.Fatalf("counters local=%d remote=%d, want 1,1",
			m.Counters().LocalInv.Load(), m.Counters().RemoteInvIssued.Load())
	}
}

func TestParallelCyclesSMTAndCores(t *testing.T) {
	m := NewMachine(arch.XeonMPHTT(), 16, false)
	// 1000 cycles on each sibling of core 0 -> with SMT speedup 1.25 the
	// core needs 2000/1.25 = 1600 elapsed cycles.  Core 1 idle.
	m.Ctx(0).Charge(1000)
	m.Ctx(1).Charge(1000)
	if got := m.ParallelCycles(); got != 1600 {
		t.Fatalf("parallel cycles = %d, want 1600", got)
	}
	// Load core 1's single thread more than core 0's effective time.
	m.Ctx(2).Charge(5000)
	if got := m.ParallelCycles(); got != 5000 {
		t.Fatalf("parallel cycles = %d, want 5000 (busiest core)", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	m := NewMachine(arch.OpteronMP(), 16, false)
	before := m.SnapshotCounters()
	m.Ctx(0).InvalidateGlobal(1)
	delta := m.SnapshotCounters().Sub(before)
	if delta.LocalInv != 1 || delta.RemoteInvIssued != 1 || delta.IPIsDelivered != 1 {
		t.Fatalf("delta = %+v", delta)
	}
}

func TestResetCounters(t *testing.T) {
	m := NewMachine(arch.OpteronMP(), 16, false)
	m.Ctx(0).InvalidateGlobal(1)
	m.Ctx(0).Charge(123)
	m.ResetCounters()
	if m.TotalCycles() != 0 || m.Counters().LocalInv.Load() != 0 {
		t.Fatal("reset left residue")
	}
}

func TestInterruptFlag(t *testing.T) {
	m := NewMachine(arch.XeonUP(), 16, false)
	ctx := m.Ctx(0)
	if ctx.Interrupted() {
		t.Fatal("fresh context is interrupted")
	}
	ctx.Interrupt()
	if !ctx.InterruptPending() {
		t.Fatal("pending not visible")
	}
	if !ctx.Interrupted() {
		t.Fatal("interrupt not observed")
	}
	if ctx.Interrupted() {
		t.Fatal("interrupt not cleared after observation")
	}
}

func TestCPUSetOperations(t *testing.T) {
	var s CPUSet
	s = s.Set(0).Set(3).Set(5)
	if !s.Has(3) || s.Has(1) {
		t.Fatalf("set contents wrong: %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	s = s.Clear(3)
	if s.Has(3) {
		t.Fatal("clear failed")
	}
	if got := AllCPUs(4); got != 0xF {
		t.Fatalf("AllCPUs(4) = %#x", uint64(got))
	}
	if got := AllCPUs(0); got != 0 {
		t.Fatalf("AllCPUs(0) = %#x", uint64(got))
	}
	a, b := AllCPUs(4), CPUSet(0).Set(1).Set(2)
	if a.Minus(b) != CPUSet(0).Set(0).Set(3) {
		t.Fatalf("minus = %v", a.Minus(b))
	}
	var visited []int
	b.ForEach(func(c int) { visited = append(visited, c) })
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 2 {
		t.Fatalf("ForEach order = %v", visited)
	}
	if b.String() != "{1,2}" {
		t.Fatalf("String = %q", b.String())
	}
}
