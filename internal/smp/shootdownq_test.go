package smp

import (
	"testing"

	"sfbuf/internal/arch"
)

func TestQueueShootdownDefersUntilFlush(t *testing.T) {
	m := NewMachine(arch.XeonMPHTT(), 16, false)
	ctx := m.Ctx(0)
	// Give CPU 2 a TLB entry for vpn 7, then queue its invalidation.
	m.Ctx(2).TLBInsert(7, 70)
	ctx.QueueShootdown(CPUSet(0).Set(2), 7)
	if !m.CPU(2).TLBResident(7) {
		t.Fatal("queueing must not invalidate anything yet")
	}
	if got := ctx.PendingShootdowns(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if got := m.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("remote rounds before flush = %d, want 0", got)
	}
	if n := ctx.FlushShootdowns(); n != 1 {
		t.Fatalf("flush retired %d, want 1", n)
	}
	if m.CPU(2).TLBResident(7) {
		t.Fatal("flush must invalidate the queued line")
	}
	if got := m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote rounds after flush = %d, want 1", got)
	}
}

func TestFlushCoalescesIntoOneRound(t *testing.T) {
	m := NewMachine(arch.XeonMPHTT(), 64, false)
	ctx := m.Ctx(0)
	all := m.AllCPUs()
	for vpn := uint64(0); vpn < 10; vpn++ {
		for cpu := 1; cpu < m.NumCPUs(); cpu++ {
			m.Ctx(cpu).TLBInsert(vpn, vpn+100)
		}
		ctx.QueueShootdown(all.Clear(0), vpn)
	}
	ctx.FlushShootdowns()
	c := m.SnapshotCounters()
	if c.RemoteInvIssued != 1 {
		t.Fatalf("remote rounds = %d, want 1 for the whole batch", c.RemoteInvIssued)
	}
	if want := uint64(m.NumCPUs() - 1); c.IPIsDelivered != want {
		t.Fatalf("IPIs = %d, want %d (one per remote CPU)", c.IPIsDelivered, want)
	}
	if c.BatchedFlushes != 1 || c.BatchedInv != 10 {
		t.Fatalf("batched counters = %d flushes / %d inv, want 1/10", c.BatchedFlushes, c.BatchedInv)
	}
	for vpn := uint64(0); vpn < 10; vpn++ {
		for cpu := 1; cpu < m.NumCPUs(); cpu++ {
			if m.CPU(cpu).TLBResident(vpn) {
				t.Fatalf("cpu %d still caches vpn %d after flush", cpu, vpn)
			}
		}
	}
}

func TestQueueThresholdForcesFlush(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 64, false)
	m.SetShootdownBatch(4)
	ctx := m.Ctx(0)
	for vpn := uint64(0); vpn < 3; vpn++ {
		ctx.QueueShootdown(CPUSet(0).Set(1), vpn)
	}
	if got := ctx.PendingShootdowns(); got != 3 {
		t.Fatalf("pending = %d, want 3 below threshold", got)
	}
	ctx.QueueShootdown(CPUSet(0).Set(1), 3)
	if got := ctx.PendingShootdowns(); got != 0 {
		t.Fatalf("pending = %d, want 0 after threshold flush", got)
	}
	if got := m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote rounds = %d, want 1", got)
	}
}

func TestQueueSelfTargetPurgesLocally(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false)
	ctx := m.Ctx(0)
	ctx.TLBInsert(5, 50)
	ctx.QueueShootdown(CPUSet(0).Set(0), 5)
	ctx.FlushShootdowns()
	if got, _ := ctx.TLBLookup(5); got == 50 {
		t.Fatal("flush must purge the flushing CPU's own queued lines")
	}
	if got := m.Counters().LocalInv.Load(); got != 1 {
		t.Fatalf("local invalidations = %d, want 1", got)
	}
	if got := m.Counters().RemoteInvIssued.Load(); got != 0 {
		t.Fatalf("remote rounds = %d, want 0 for a self-only entry", got)
	}
}

func TestQueueEmptyTargetsDropped(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false)
	ctx := m.Ctx(0)
	ctx.QueueShootdown(0, 9)
	if got := ctx.PendingShootdowns(); got != 0 {
		t.Fatalf("pending = %d, want 0 for empty targets", got)
	}
	if n := ctx.FlushShootdowns(); n != 0 {
		t.Fatalf("flush retired %d, want 0", n)
	}
}

func TestQueuesArePerCPU(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false)
	ctx0, ctx1 := m.Ctx(0), m.Ctx(1)
	ctx0.QueueShootdown(CPUSet(0).Set(1), 1)
	ctx1.QueueShootdown(CPUSet(0).Set(0), 2)
	if ctx0.PendingShootdowns() != 1 || ctx1.PendingShootdowns() != 1 {
		t.Fatal("queues must be per CPU")
	}
	ctx0.FlushShootdowns()
	if ctx1.PendingShootdowns() != 1 {
		t.Fatal("flushing CPU 0 must not drain CPU 1's queue")
	}
}

func TestQueueShootdownBatchBulkEnqueue(t *testing.T) {
	m := NewMachine(arch.XeonMPHTT(), 64, false)
	ctx := m.Ctx(0)
	targets := []CPUSet{CPUSet(0).Set(1), 0, CPUSet(0).Set(2).Set(3)}
	vpns := []uint64{11, 12, 13}
	ctx.QueueShootdownBatch(targets, vpns)
	if got := ctx.PendingShootdowns(); got != 2 {
		t.Fatalf("pending = %d, want 2 (empty-target pair dropped)", got)
	}
	m.Ctx(1).TLBInsert(11, 1)
	m.Ctx(3).TLBInsert(13, 3)
	ctx.FlushShootdowns()
	if m.CPU(1).TLBResident(11) || m.CPU(3).TLBResident(13) {
		t.Fatal("bulk-enqueued lines must be invalidated on flush")
	}
	if got := m.Counters().RemoteInvIssued.Load(); got != 1 {
		t.Fatalf("remote rounds = %d, want 1", got)
	}
}

func TestInvalidateLocalRange(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false)
	ctx := m.Ctx(0)
	vpns := []uint64{1, 2, 3}
	for _, vpn := range vpns {
		ctx.TLBInsert(vpn, vpn+10)
	}
	ctx.InvalidateLocalRange(vpns)
	for _, vpn := range vpns {
		if m.CPU(0).TLBResident(vpn) {
			t.Fatalf("vpn %d survived the ranged local purge", vpn)
		}
	}
	if got := m.Counters().LocalInv.Load(); got != 3 {
		t.Fatalf("local invalidations = %d, want 3 (counted per page)", got)
	}
	before := m.CPU(0).Cycles()
	ctx.InvalidateLocalRange(nil)
	if m.CPU(0).Cycles() != before {
		t.Fatal("empty range must be free")
	}
}

func TestShootdownBatchConfiguration(t *testing.T) {
	m := NewMachine(arch.XeonMP(), 16, false)
	if got := m.ShootdownBatch(); got != DefaultShootdownBatch {
		t.Fatalf("default batch = %d, want %d", got, DefaultShootdownBatch)
	}
	m.SetShootdownBatch(7)
	if got := m.ShootdownBatch(); got != 7 {
		t.Fatalf("batch = %d, want 7", got)
	}
	m.SetShootdownBatch(0)
	if got := m.ShootdownBatch(); got != DefaultShootdownBatch {
		t.Fatalf("batch = %d, want default restored", got)
	}
}
