package arch

import "testing"

func TestEvaluationPlatforms(t *testing.T) {
	plats := Evaluation()
	if len(plats) != 5 {
		t.Fatalf("platforms = %d, want 5", len(plats))
	}
	wantOrder := []string{"Xeon-UP", "Xeon-HTT", "Xeon-MP", "Xeon-MP-HTT", "Opteron-MP"}
	for i, p := range plats {
		if p.Name != wantOrder[i] {
			t.Errorf("platform %d = %s, want %s", i, p.Name, wantOrder[i])
		}
	}
}

func TestTopologyConsistency(t *testing.T) {
	for _, p := range append(Evaluation(), Sparc64MP()) {
		seen := map[int]bool{}
		count := 0
		for _, core := range p.Cores {
			for _, id := range core {
				if seen[id] {
					t.Errorf("%s: cpu %d in two cores", p.Name, id)
				}
				seen[id] = true
				count++
			}
		}
		if count != p.NumCPUs {
			t.Errorf("%s: cores list %d cpus, NumCPUs %d", p.Name, count, p.NumCPUs)
		}
		for id := 0; id < p.NumCPUs; id++ {
			if !seen[id] {
				t.Errorf("%s: cpu %d missing from cores", p.Name, id)
			}
		}
	}
}

func TestSection3CostSeeding(t *testing.T) {
	// The cost models must carry the paper's measured numbers verbatim.
	x := XeonHTT()
	if x.Cost.LocalInvCachedPTE != 500 || x.Cost.LocalInvUncachedPTE != 1000 {
		t.Errorf("Xeon local costs = %d/%d, want 500/1000",
			x.Cost.LocalInvCachedPTE, x.Cost.LocalInvUncachedPTE)
	}
	if x.RemoteShootdownWait != 4000 {
		t.Errorf("Xeon-HTT shootdown = %d, want 4000", x.RemoteShootdownWait)
	}
	if XeonMPHTT().RemoteShootdownWait != 13500 {
		t.Errorf("Xeon-MP-HTT shootdown = %d, want 13500", XeonMPHTT().RemoteShootdownWait)
	}
	o := OpteronMP()
	if o.Cost.LocalInvCachedPTE != 95 || o.Cost.LocalInvUncachedPTE != 320 {
		t.Errorf("Opteron local costs = %d/%d, want 95/320",
			o.Cost.LocalInvCachedPTE, o.Cost.LocalInvUncachedPTE)
	}
	if o.RemoteShootdownWait != 2030 {
		t.Errorf("Opteron shootdown = %d, want 2030", o.RemoteShootdownWait)
	}
}

func TestKernelKinds(t *testing.T) {
	if !XeonMP().MPKernel {
		t.Error("Xeon-MP must run an MP kernel")
	}
	if XeonUP().MPKernel {
		t.Error("Xeon-UP must run a UP kernel")
	}
	if XeonUP().RemoteShootdownWait != 0 {
		t.Error("UP platform cannot have a shootdown wait")
	}
}

func TestArchStrings(t *testing.T) {
	cases := map[ID]string{I386: "i386", AMD64: "amd64", SPARC64: "sparc64", ID(99): "unknown"}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", id, got, want)
		}
	}
}

func TestAllCPUSet(t *testing.T) {
	if got := XeonMPHTT().AllCPUSet(); got != 0xF {
		t.Errorf("AllCPUSet = %#x, want 0xF", got)
	}
	if got := XeonUP().AllCPUSet(); got != 0x1 {
		t.Errorf("AllCPUSet = %#x, want 0x1", got)
	}
}

func TestFrequencies(t *testing.T) {
	if XeonMP().FreqGHz != 2.4 {
		t.Error("Xeon runs at 2.4 GHz")
	}
	if OpteronMP().FreqGHz != 1.6 {
		t.Error("Opteron 242 runs at 1.6 GHz")
	}
}
