// Package arch describes the simulated processor architectures and the five
// experimental platforms of the paper's evaluation (Section 6.1).
//
// An architecture fixes the machine-dependent cost model: how expensive a
// local TLB invalidation is, what an interprocessor interrupt costs, how
// fast the CPU copies memory.  A platform combines an architecture with a
// processor topology (physical cores, SMT siblings), a clock frequency, and
// the kind of kernel it runs (uniprocessor vs multiprocessor).
//
// The headline cost numbers are the paper's own Section 3 measurements:
//
//	Xeon (i386, 2.4 GHz):    local invlpg ~500 cycles (PTE in d-cache),
//	                         ~1000 cycles otherwise; remote shootdown wait
//	                         ~4,000 cycles (SMT sibling) to ~13,500 cycles
//	                         (2 packages x 2 threads).
//	Opteron (amd64, 1.6 GHz): local ~95/320 cycles, remote ~2,030 cycles.
//
// Costs that the paper does not report directly (allocator path lengths,
// copy bandwidth, per-packet protocol costs) are calibration constants,
// chosen so the simulated baselines land near the paper's absolute numbers;
// see EXPERIMENTS.md for the calibration discussion.
package arch

import (
	"fmt"

	"sfbuf/internal/cycles"
)

// ID identifies a simulated processor architecture.
type ID int

// The architectures discussed in the paper (Section 4).
const (
	// I386 is the 32-bit x86 architecture: kernel virtual address space
	// is scarce, so ephemeral mappings go through a mapping cache.
	I386 ID = iota
	// AMD64 is the 64-bit x86 architecture: the entire physical memory is
	// permanently direct-mapped, making ephemeral mappings free.
	AMD64
	// SPARC64 has a 64-bit address space but a virtually-indexed,
	// virtually-tagged cache; the direct map is usable only when cache
	// colors are compatible (Section 4.4).
	SPARC64
)

// String returns the conventional lower-case architecture name.
func (a ID) String() string {
	switch a {
	case I386:
		return "i386"
	case AMD64:
		return "amd64"
	case SPARC64:
		return "sparc64"
	}
	return "unknown"
}

// CostModel carries the per-architecture operation costs, in CPU cycles.
// Per-byte costs are fractional cycles per byte.
type CostModel struct {
	// LocalInvCachedPTE is the cost of invlpg when the PTE is resident in
	// the data cache (paper Section 3: ~500 Xeon, ~95 Opteron).
	LocalInvCachedPTE cycles.Cycles
	// LocalInvUncachedPTE is the cost of invlpg when the PTE must be
	// fetched from memory (~1000 Xeon, ~320 Opteron).
	LocalInvUncachedPTE cycles.Cycles
	// IPIHandler is the cost charged to each CPU that receives a TLB
	// shootdown interrupt: interrupt entry/exit plus the invalidation.
	IPIHandler cycles.Cycles
	// RangedShootdownPerPage is the initiator's additional wait per page
	// of a ranged shootdown (the remote handler invalidates n pages per
	// interrupt instead of one page per interrupt).
	RangedShootdownPerPage cycles.Cycles
	// TLBMissWalk is the page-table walk cost on a TLB miss.
	TLBMissWalk cycles.Cycles
	// PTEWrite is the cost of writing a page-table entry.
	PTEWrite cycles.Cycles
	// CopyPerByte is the kernel memory-copy cost, cycles per byte.
	CopyPerByte float64
	// ChecksumPerByte is the software TCP checksum cost, cycles per byte.
	ChecksumPerByte float64
	// KVAAlloc and KVAFree are the costs of the general-purpose kernel
	// virtual-address allocator used by the original kernel for every
	// ephemeral mapping (lock acquisition, free-list manipulation).
	KVAAlloc cycles.Cycles
	KVAFree  cycles.Cycles
	// MapperOp is the bookkeeping cost of an sf_buf_alloc/free pair's
	// fast path: a hash lookup, a reference count update.
	MapperOp cycles.Cycles
	// LockUncontended is the cost of an uncontended kernel mutex
	// acquire/release pair; charged only by multiprocessor kernels.
	LockUncontended cycles.Cycles
	// PacketFixed is the sender's fixed per-packet cost: tcp_output,
	// IP header construction, segment bookkeeping, driver enqueue.
	PacketFixed cycles.Cycles
	// PacketRecv is the receiver's fixed per-packet cost: tcp_input,
	// reassembly bookkeeping, socket wakeups.
	PacketRecv cycles.Cycles
	// AckProcess is the sender-side cost of processing one returning
	// acknowledgment (freeing the covered mbufs).
	AckProcess cycles.Cycles
	// VFSOpFixed is the fixed cost of one name-based filesystem
	// operation: namei, VFS locking, vnode management.
	VFSOpFixed cycles.Cycles
	// HTTPRequestFixed is the per-request web server cost outside data
	// movement: accept/parse/log in user space plus socket setup.
	HTTPRequestFixed cycles.Cycles
	// PageWire is the cost of wiring or unwiring a physical page
	// (disabling/enabling replacement or page-out).
	PageWire cycles.Cycles
	// Syscall is the fixed user/kernel crossing cost.
	Syscall cycles.Cycles
	// BioFixed is the fixed cost of one block-device request through the
	// disk driver path: bio setup, GEOM traversal and the handoff to and
	// from the memory disk's worker thread.  Both kernels pay it; it is
	// why disk-dump gains (Figures 4 and 6) are smaller than pipe gains.
	BioFixed cycles.Cycles
	// RemoteLockExtra is the surcharge on LockUncontended when the lock's
	// cache line is homed on another socket: the acquire must pull the
	// line across the package interconnect.  Charged only on multi-socket
	// topologies (smp.Context.ChargeLockAt).
	RemoteLockExtra cycles.Cycles
	// RemoteIPIExtra is the initiator's additional wait per shootdown
	// target on another socket: a cross-package interrupt is delivered
	// over the interconnect, not the shared APIC bus.
	RemoteIPIExtra cycles.Cycles
	// RemoteMemPerByte is the per-byte surcharge for copies, zeroing, and
	// checksums against a frame homed on another socket (the NUMA remote
	// access penalty), on top of CopyPerByte/ChecksumPerByte.
	RemoteMemPerByte float64
	// SlowMemPerByte is the per-byte surcharge for copies, zeroing, and
	// checksums against a frame resident in the slow physical-memory tier
	// (far DRAM, CXL-attached or persistent memory), on top of
	// CopyPerByte/ChecksumPerByte.  Charged only when the machine's pool
	// is tiered (smp.Context.ChargeBytesAt); composes with the NUMA
	// surcharge when the slow frame is also remote.
	SlowMemPerByte float64
}

// xeonCosts is the i386 cost model, seeded from the paper's Xeon numbers.
func xeonCosts() CostModel {
	return CostModel{
		LocalInvCachedPTE:      500,
		LocalInvUncachedPTE:    1000,
		IPIHandler:             1500,
		RangedShootdownPerPage: 250,
		TLBMissWalk:            180,
		PTEWrite:               60,
		CopyPerByte:            1.30,
		ChecksumPerByte:        0.90,
		KVAAlloc:               2400,
		KVAFree:                1100,
		MapperOp:               140,
		LockUncontended:        120,
		PacketFixed:            22000,
		PacketRecv:             20000,
		AckProcess:             3500,
		VFSOpFixed:             30000,
		HTTPRequestFixed:       120000,
		PageWire:               180,
		Syscall:                1100,
		BioFixed:               52000,
		RemoteLockExtra:        280,
		RemoteIPIExtra:         2500,
		RemoteMemPerByte:       0.65,
		SlowMemPerByte:         1.95,
	}
}

// opteronCosts is the amd64 cost model, seeded from the paper's Opteron
// numbers.  The Opteron runs at a lower clock but has a shorter pipeline
// and an on-die memory controller, so per-operation cycle counts are lower.
func opteronCosts() CostModel {
	return CostModel{
		LocalInvCachedPTE:      95,
		LocalInvUncachedPTE:    320,
		IPIHandler:             800,
		RangedShootdownPerPage: 60,
		TLBMissWalk:            90,
		PTEWrite:               35,
		CopyPerByte:            0.62,
		ChecksumPerByte:        0.45,
		KVAAlloc:               900,
		KVAFree:                450,
		MapperOp:               70,
		LockUncontended:        70,
		PacketFixed:            11000,
		PacketRecv:             10000,
		AckProcess:             1800,
		VFSOpFixed:             15000,
		HTTPRequestFixed:       60000,
		PageWire:               90,
		Syscall:                600,
		BioFixed:               22000,
		RemoteLockExtra:        120,
		RemoteIPIExtra:         700,
		RemoteMemPerByte:       0.28,
		SlowMemPerByte:         0.84,
	}
}

// sparcCosts is a plausible cost model for the sparc64 hybrid
// implementation; the paper reports no sparc64 measurements, so these
// values exist only to make the implementation runnable.
func sparcCosts() CostModel {
	c := opteronCosts()
	c.LocalInvCachedPTE = 140
	c.LocalInvUncachedPTE = 420
	return c
}

// Platform is one of the evaluation machines of Section 6.1.
type Platform struct {
	// Name is the paper's platform name, e.g. "Xeon-MP-HTT".
	Name string
	// Arch selects the machine-dependent sf_buf implementation.
	Arch ID
	// FreqGHz is the processor clock.
	FreqGHz cycles.GHz
	// NumCPUs is the number of virtual processors visible to the kernel.
	NumCPUs int
	// Cores groups virtual CPU ids by physical core; SMT siblings share
	// a core and therefore share execution bandwidth.
	Cores [][]int
	// MPKernel reports whether the kernel is compiled for
	// multiprocessors; MP kernels pay lock overhead even on one CPU
	// and must perform TLB shootdowns.
	MPKernel bool
	// RemoteShootdownWait is the number of cycles the initiating CPU
	// waits for a remote TLB shootdown to complete, from the paper's
	// Section 3 measurements.  Zero when the platform has no remote CPUs.
	RemoteShootdownWait cycles.Cycles
	// SMTSpeedup is the combined throughput of one physical core with
	// all SMT siblings busy, relative to a single thread (e.g. 1.25
	// means two hyperthreads deliver 25% more than one).
	SMTSpeedup float64
	// Cost is the architecture's operation cost model.
	Cost CostModel
	// TLBEntries is the modeled per-CPU data-TLB capacity.
	TLBEntries int
	// PTECacheLines is the modeled per-CPU capacity, in 64-byte lines,
	// of the portion of the data cache that holds page-table entries.
	// It decides whether an invalidation pays the cached or uncached
	// PTE cost.
	PTECacheLines int
}

// AllCPUSet returns a bitmask with one bit set per virtual CPU.
func (p Platform) AllCPUSet() uint64 {
	return (uint64(1) << uint(p.NumCPUs)) - 1
}

// XeonUP is the 2.4 GHz Pentium Xeon running a uniprocessor kernel:
// one physical, one virtual CPU; no TLB coherence traffic at all.
func XeonUP() Platform {
	return Platform{
		Name:          "Xeon-UP",
		Arch:          I386,
		FreqGHz:       2.4,
		NumCPUs:       1,
		Cores:         [][]int{{0}},
		MPKernel:      false,
		SMTSpeedup:    1.0,
		Cost:          xeonCosts(),
		TLBEntries:    64,
		PTECacheLines: 2048,
	}
}

// XeonHTT is the same Xeon with hyper-threading enabled: two virtual CPUs
// on one physical processor.  Even this single-package machine must run TLB
// shootdowns (the paper's observation that SMT brought TLB coherence to
// uniprocessor systems).  Remote shootdown wait: ~4,000 cycles.
func XeonHTT() Platform {
	p := XeonUP()
	p.Name = "Xeon-HTT"
	p.NumCPUs = 2
	p.Cores = [][]int{{0, 1}}
	p.MPKernel = true
	p.RemoteShootdownWait = 4000
	p.SMTSpeedup = 1.25
	return p
}

// XeonMP has two physical processors with hyper-threading disabled.
// The paper does not report this platform's shootdown wait directly; we
// place it between the single-package (4,000) and the four-thread
// (13,500) numbers — a cross-package IPI is slower than a sibling-thread
// IPI but only one target must respond — calibrated so the pipe
// experiment reproduces the paper's +168% (see EXPERIMENTS.md).
func XeonMP() Platform {
	p := XeonUP()
	p.Name = "Xeon-MP"
	p.NumCPUs = 2
	p.Cores = [][]int{{0}, {1}}
	p.MPKernel = true
	p.RemoteShootdownWait = 6600
	p.SMTSpeedup = 1.0
	return p
}

// XeonMPHTT has two physical processors, each with hyper-threading: four
// virtual CPUs.  Remote shootdown wait: ~13,500 cycles (Section 3).
func XeonMPHTT() Platform {
	p := XeonUP()
	p.Name = "Xeon-MP-HTT"
	p.NumCPUs = 4
	p.Cores = [][]int{{0, 1}, {2, 3}}
	p.MPKernel = true
	p.RemoteShootdownWait = 13500
	p.SMTSpeedup = 1.25
	return p
}

// XeonNUMA is a parameterized multi-package Xeon: sockets packages of
// cpusPerSocket hyper-threaded virtual CPUs each, sharing the Xeon-MP-HTT
// cost model and its cross-package shootdown wait.  It exists for the
// NUMA-modeled experiments, which need 2- and 4-socket machines the
// paper's fixed evaluation set cannot express; pairing it with
// kernel.Config.Sockets = sockets makes the package boundaries visible to
// the cost model (remote locks, IPIs, and memory).  SMT siblings share a
// core, so Cores groups CPU ids in pairs when cpusPerSocket is even.
func XeonNUMA(sockets, cpusPerSocket int) Platform {
	if sockets < 1 {
		sockets = 1
	}
	if cpusPerSocket < 1 {
		cpusPerSocket = 1
	}
	n := sockets * cpusPerSocket
	p := XeonUP()
	p.Name = fmt.Sprintf("Xeon-NUMA-%dx%d", sockets, cpusPerSocket)
	p.NumCPUs = n
	p.MPKernel = true
	p.RemoteShootdownWait = 13500
	p.SMTSpeedup = 1.25
	p.Cores = nil
	for i := 0; i < n; {
		if cpusPerSocket%2 == 0 {
			p.Cores = append(p.Cores, []int{i, i + 1})
			i += 2
		} else {
			p.Cores = append(p.Cores, []int{i})
			i++
		}
	}
	return p
}

// OpteronMP is the dual-processor 1.6 GHz Opteron model 242 (amd64).
// Remote shootdown wait: ~2,030 cycles (Section 3).
func OpteronMP() Platform {
	return Platform{
		Name:                "Opteron-MP",
		Arch:                AMD64,
		FreqGHz:             1.6,
		NumCPUs:             2,
		Cores:               [][]int{{0}, {1}},
		MPKernel:            true,
		RemoteShootdownWait: 2030,
		SMTSpeedup:          1.0,
		Cost:                opteronCosts(),
		TLBEntries:          64,
		PTECacheLines:       2048,
	}
}

// Sparc64MP is a hypothetical dual-processor sparc64 machine used to
// exercise the hybrid color-aware implementation of Section 4.4.
func Sparc64MP() Platform {
	return Platform{
		Name:                "Sparc64-MP",
		Arch:                SPARC64,
		FreqGHz:             1.2,
		NumCPUs:             2,
		Cores:               [][]int{{0}, {1}},
		MPKernel:            true,
		RemoteShootdownWait: 2500,
		SMTSpeedup:          1.0,
		Cost:                sparcCosts(),
		TLBEntries:          64,
		PTECacheLines:       2048,
	}
}

// Evaluation returns the five platforms of the paper's evaluation, in the
// order the figures present them.
func Evaluation() []Platform {
	return []Platform{XeonUP(), XeonHTT(), XeonMP(), XeonMPHTT(), OpteronMP()}
}
