package proc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/smp"
)

func bootProcKernel(t *testing.T, plat arch.Platform, mk kernel.MapperKind) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    512,
		Backed:       true,
		CacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPtracePeekPokeRoundTrip(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootProcKernel(t, arch.XeonMP(), mk)
		p, err := NewProcess(k, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		ctx := k.Ctx(0)
		want := make([]byte, 3*4096+123)
		rand.New(rand.NewSource(4)).Read(want)
		// Poke at an unaligned address spanning pages.
		if err := p.PtracePoke(ctx, 456, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if err := p.PtracePeek(ctx, 456, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: ptrace round trip corrupted data", mk)
		}
		p.Release()
	}
}

func TestPtraceUsesPrivateMappings(t *testing.T) {
	k := bootProcKernel(t, arch.XeonMP(), kernel.SFBuf)
	p, _ := NewProcess(k, 1, 4)
	defer p.Release()
	ctx := k.Ctx(0)
	buf := make([]byte, 4*4096)
	// Warm, then measure: repeated peeks of the same pages must be
	// cache hits with no coherence traffic.
	p.PtracePeek(ctx, 0, buf)
	k.Reset()
	for i := 0; i < 10; i++ {
		if err := p.PtracePeek(ctx, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if r := k.M.Counters().RemoteInvIssued.Load(); r != 0 {
		t.Fatalf("ptrace issued %d remote invalidations, want 0", r)
	}
	if l := k.M.Counters().LocalInv.Load(); l != 0 {
		t.Fatalf("ptrace issued %d local invalidations on hits, want 0", l)
	}
}

func TestPtraceBadAddress(t *testing.T) {
	k := bootProcKernel(t, arch.XeonUP(), kernel.SFBuf)
	p, _ := NewProcess(k, 1, 2)
	defer p.Release()
	ctx := k.Ctx(0)
	if err := p.PtracePeek(ctx, 5*4096, make([]byte, 8)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
	// A peek straddling into unmapped territory fails partway.
	if err := p.PtracePoke(ctx, 2*4096-4, make([]byte, 8)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
}

func execRig(t *testing.T) (*kernel.Kernel, *fs.FS, *smp.Context) {
	t.Helper()
	k := bootProcKernel(t, arch.XeonMP(), kernel.SFBuf)
	d, err := memdisk.New(k, 128*fs.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	fsys, err := fs.Mkfs(ctx, k, d, 16)
	if err != nil {
		t.Fatal(err)
	}
	return k, fsys, ctx
}

func TestExecveParsesHeader(t *testing.T) {
	k, fsys, ctx := execRig(t)
	img := EncodeImage(0x400123, 7777, 8888)
	if err := fsys.WriteFile(ctx, "a.out", img); err != nil {
		t.Fatal(err)
	}
	h, err := Execve(ctx, k, fsys, "a.out")
	if err != nil {
		t.Fatal(err)
	}
	if h.Entry != 0x400123 || h.Text != 7777 || h.Data != 8888 {
		t.Fatalf("header = %+v", h)
	}
}

func TestExecveRejectsNonExecutable(t *testing.T) {
	k, fsys, ctx := execRig(t)
	if err := fsys.WriteFile(ctx, "script.sh", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := Execve(ctx, k, fsys, "script.sh"); !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("err = %v, want ErrNotExecutable", err)
	}
	if _, err := Execve(ctx, k, fsys, "missing"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestProcessReleaseReturnsPages(t *testing.T) {
	k := bootProcKernel(t, arch.XeonUP(), kernel.SFBuf)
	free := k.M.Phys.FreeFrames()
	p, _ := NewProcess(k, 1, 16)
	if k.M.Phys.FreeFrames() != free-16 {
		t.Fatal("pages not taken")
	}
	p.Release()
	if k.M.Phys.FreeFrames() != free {
		t.Fatal("pages leaked")
	}
}
