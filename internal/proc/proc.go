// Package proc models processes far enough to reproduce the two remaining
// ephemeral-mapping clients of Section 2: execve(2)'s image-header read
// (Section 2.4) and ptrace(2)'s reads and writes of a traced process's
// memory (Section 2.5).  Both use CPU-private ephemeral mappings: the
// kernel thread performing the access is the only consumer.
package proc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sfbuf/internal/fs"
	"sfbuf/internal/kcopy"
	"sfbuf/internal/kernel"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// Process is a minimal process: an address space of anonymous pages.
type Process struct {
	k     *kernel.Kernel
	PID   int
	pages map[uint64]*vm.Page // user vpn -> page
}

// ErrBadAddress is returned for accesses to unmapped process memory.
var ErrBadAddress = errors.New("proc: bad address")

// NewProcess creates a process with npages anonymous pages mapped from
// user address 0.
func NewProcess(k *kernel.Kernel, pid, npages int) (*Process, error) {
	p := &Process{k: k, PID: pid, pages: make(map[uint64]*vm.Page, npages)}
	for i := 0; i < npages; i++ {
		pg, err := k.M.Phys.Alloc()
		if err != nil {
			p.Release()
			return nil, err
		}
		p.pages[uint64(i)] = pg
	}
	return p, nil
}

// Page returns the physical page backing user address addr.
func (p *Process) Page(addr uint64) (*vm.Page, error) {
	pg, ok := p.pages[addr>>vm.PageShift]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	return pg, nil
}

// Release frees the process's pages.
func (p *Process) Release() {
	for vpn, pg := range p.pages {
		p.k.M.Phys.Free(pg)
		delete(p.pages, vpn)
	}
}

// PtracePeek reads len(dst) bytes of the traced process's memory at addr,
// as PT_READ_D does: "the kernel creates CPU-private ephemeral mappings
// for the desired physical pages of the traced process ... copies the data
// ... then frees the ephemeral mappings."
func (p *Process) PtracePeek(ctx *smp.Context, addr uint64, dst []byte) error {
	ctx.Charge(ctx.Cost().Syscall)
	for len(dst) > 0 {
		pg, err := p.Page(addr)
		if err != nil {
			return err
		}
		po := int(addr & (vm.PageSize - 1))
		n := min(vm.PageSize-po, len(dst))
		b, err := p.k.Map.Alloc(ctx, pg, sfbuf.Private)
		if err != nil {
			return err
		}
		err = kcopy.CopyOut(ctx, p.k.Pmap, dst[:n], b.KVA()+uint64(po))
		p.k.Map.Free(ctx, b)
		if err != nil {
			return err
		}
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// PtracePoke writes src into the traced process's memory at addr
// (PT_WRITE_D), through CPU-private ephemeral mappings.
func (p *Process) PtracePoke(ctx *smp.Context, addr uint64, src []byte) error {
	ctx.Charge(ctx.Cost().Syscall)
	for len(src) > 0 {
		pg, err := p.Page(addr)
		if err != nil {
			return err
		}
		po := int(addr & (vm.PageSize - 1))
		n := min(vm.PageSize-po, len(src))
		b, err := p.k.Map.Alloc(ctx, pg, sfbuf.Private)
		if err != nil {
			return err
		}
		err = kcopy.CopyIn(ctx, p.k.Pmap, b.KVA()+uint64(po), src[:n])
		p.k.Map.Free(ctx, b)
		if err != nil {
			return err
		}
		src = src[n:]
		addr += uint64(n)
	}
	return nil
}

// --- execve ---

// ExecMagic marks a valid executable image in this simulator's format.
const ExecMagic = 0x7F534258 // "\x7fSBX"

// ImageHeader is the parsed executable header.
type ImageHeader struct {
	Magic uint32
	Entry uint64
	Text  uint32 // text segment length
	Data  uint32 // data segment length
}

// EncodeImage builds a minimal executable image with the given header
// fields followed by zero padding to one page.
func EncodeImage(entry uint64, text, data uint32) []byte {
	img := make([]byte, vm.PageSize)
	binary.LittleEndian.PutUint32(img[0:], ExecMagic)
	binary.LittleEndian.PutUint64(img[4:], entry)
	binary.LittleEndian.PutUint32(img[12:], text)
	binary.LittleEndian.PutUint32(img[16:], data)
	return img
}

// ErrNotExecutable is returned when the image header magic is wrong.
var ErrNotExecutable = errors.New("proc: not an executable")

// Execve reads and validates the image header of the named file, the way
// FreeBSD's execve uses the ephemeral mapping interface to access the
// header page (Section 2.4): the file's first page is mapped CPU-private,
// the header parsed, and the mapping freed.
func Execve(ctx *smp.Context, k *kernel.Kernel, fsys *fs.FS, path string) (*ImageHeader, error) {
	ctx.Charge(ctx.Cost().Syscall)
	pg, err := fsys.FilePage(ctx, path, 0)
	if err != nil {
		return nil, err
	}
	b, err := k.Map.Alloc(ctx, pg, sfbuf.Private)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 20)
	err = kcopy.CopyOut(ctx, k.Pmap, hdr, b.KVA())
	k.Map.Free(ctx, b)
	if err != nil {
		return nil, err
	}
	h := &ImageHeader{
		Magic: binary.LittleEndian.Uint32(hdr[0:]),
		Entry: binary.LittleEndian.Uint64(hdr[4:]),
		Text:  binary.LittleEndian.Uint32(hdr[12:]),
		Data:  binary.LittleEndian.Uint32(hdr[16:]),
	}
	if h.Magic != ExecMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrNotExecutable, h.Magic)
	}
	return h, nil
}
