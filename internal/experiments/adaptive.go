package experiments

// Adaptive-contiguity acceptance workloads.  The run path and the batch
// path have opposite sweet spots, and the two workloads here are the
// acceptance criteria's embodiment of each:
//
//   - "stream": a handful of large extents re-streamed cyclically, their
//     page total exceeding the mapping cache.  The batch path thrashes —
//     a cyclic sweep wider than the cache is the LRU worst case, every
//     page a miss paying install, walk and reclaim teardown — while the
//     run path revives each extent's parked window from the page-set
//     cache: no PTE writes, no walks, no shootdown debt.
//
//   - "churn": reuse-heavy churn over a small, hash-resident page set
//     with a sliding extent boundary.  The batch path is pure hash hits
//     (zero PTE writes, zero invalidations, TLB-resident translations)
//     while the run path installs a cold window every round — the extent
//     boundaries repeat too rarely for the page-set cache — and launders
//     the teardown debt.
//
// The adaptive policy must land within ~10% of the best static choice on
// BOTH, and beat the worst static choice by >= 2x on each, enforced by
// TestAdaptivePolicyEconomy and surfaced by BenchmarkAllocAdaptive.

import (
	"fmt"
	"sync"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/vm"
)

// Canonical parameters of the adaptive acceptance workloads, shared by
// the benchmark and the economy test so they cannot drift apart.
const (
	// AdaptiveEntries sizes the mapping cache: large enough that four
	// CPUs can hold a streaming window each (4 x AdaptiveStreamLen = 128
	// claimed tokens) with headroom, small enough that the streaming
	// working set (AdaptiveStreamExtents x AdaptiveStreamLen = 192
	// pages) thrashes it.
	AdaptiveEntries = 160
	// AdaptiveStreamLen and AdaptiveStreamExtents shape the streaming
	// workload: extents few enough to stay within the run pool's
	// revivable-window depth, pages many enough to exceed the cache.
	AdaptiveStreamLen     = 32
	AdaptiveStreamExtents = 6
	// AdaptiveChurnLen and AdaptiveChurnPages shape the churn workload:
	// a page set that fits both the mapping cache and the per-CPU TLB,
	// swept with extent starts that repeat far outside the page-set
	// cache's depth.
	AdaptiveChurnLen   = 16
	AdaptiveChurnPages = 48
)

// BootAdaptive boots the canonical adaptive-workload kernel: the 4-way
// Xeon with the sharded engine (native runs, so ContigAuto resolves to
// the adaptive policy) and the canonical cache size.
func BootAdaptive() (*kernel.Kernel, error) {
	return kernel.Boot(kernel.Config{
		Platform:     arch.XeonMPHTT(),
		Mapper:       kernel.SFBuf,
		Cache:        kernel.CacheSharded,
		PhysPages:    8*AdaptiveEntries + 256,
		CacheEntries: AdaptiveEntries,
	})
}

// ChurnAdaptiveWorkload drives one acceptance workload ("stream" or
// "churn") for rounds extents per CPU under one mapping policy:
// "adaptive" consults a consumer handle per extent (exactly as the
// converted subsystems do), "run" and "batch" pin the static paths.  It
// returns the pages moved.  Extents are touched through the honest MMU —
// a ranged translation per contiguous run, a per-page translation per
// batch — so walk economy and TLB behaviour are load-bearing.
func ChurnAdaptiveWorkload(k *kernel.Kernel, workload, policy string, rounds int) (int, error) {
	var pages []*vm.Page
	var runLen int
	var err error
	switch workload {
	case "stream":
		runLen = AdaptiveStreamLen
		pages, err = k.M.Phys.AllocN(AdaptiveStreamExtents * runLen)
	case "churn":
		runLen = AdaptiveChurnLen
		pages, err = k.M.Phys.AllocN(AdaptiveChurnPages)
	default:
		return 0, fmt.Errorf("unknown adaptive workload %q", workload)
	}
	if err != nil {
		return 0, err
	}
	cons := k.Consumer("adaptive-" + workload)
	ncpu := k.M.NumCPUs()
	span := len(pages) - runLen + 1
	var wg sync.WaitGroup
	errs := make([]error, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			var got []*vm.Page
			for r := 0; r < rounds; r++ {
				var extent []*vm.Page
				if workload == "stream" {
					e := (r + cpu) % AdaptiveStreamExtents
					extent = pages[e*runLen : (e+1)*runLen]
				} else {
					// The global (cross-CPU) extent sequence walks the
					// span with period span, so a given boundary repeats
					// far outside the page-set cache's revivable depth.
					start := ((r*ncpu + cpu) * 7) % span
					extent = pages[start : start+runLen]
				}
				useRun := policy == "run" || (policy == "adaptive" && cons.UseRuns(ctx, extent))
				if useRun {
					rn, err := k.Map.AllocRun(ctx, extent, 0)
					if err != nil {
						errs[cpu] = err
						return
					}
					if rn.Contiguous() {
						got, err = k.Pmap.TranslateRun(ctx, rn.Base(), rn.Len(), false, got[:0])
						if err != nil {
							errs[cpu] = err
							return
						}
					} else {
						for j := 0; j < rn.Len(); j++ {
							if _, err := k.Pmap.Translate(ctx, rn.KVA(j), false); err != nil {
								errs[cpu] = err
								return
							}
						}
					}
					k.Map.FreeRun(ctx, rn)
				} else {
					bufs, err := k.Map.AllocBatch(ctx, extent, 0)
					if err != nil {
						errs[cpu] = err
						return
					}
					for _, b := range bufs {
						if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
							errs[cpu] = err
							return
						}
					}
					k.Map.FreeBatch(ctx, bufs)
				}
			}
		}(cpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return rounds * ncpu * runLen, nil
}

// ChurnAdaptiveSequential replays ChurnAdaptiveWorkload's exact extent
// sequence from a single goroutine, round-robining the CPU contexts with
// the round loop outermost and the CPU loop innermost — the same global
// interleaving the concurrent driver produces on average, but with a
// fully deterministic order.  The decision-pinning test uses it: the
// policy's flip count depends on the order extents hit the consumer's
// EWMAs, and goroutine scheduling must not be able to wobble an asserted
// trace.  The concurrent driver remains the economy benchmark's path.
func ChurnAdaptiveSequential(k *kernel.Kernel, workload, policy string, rounds int) (int, error) {
	var pages []*vm.Page
	var runLen int
	var err error
	switch workload {
	case "stream":
		runLen = AdaptiveStreamLen
		pages, err = k.M.Phys.AllocN(AdaptiveStreamExtents * runLen)
	case "churn":
		runLen = AdaptiveChurnLen
		pages, err = k.M.Phys.AllocN(AdaptiveChurnPages)
	default:
		return 0, fmt.Errorf("unknown adaptive workload %q", workload)
	}
	if err != nil {
		return 0, err
	}
	cons := k.Consumer("adaptive-" + workload)
	ncpu := k.M.NumCPUs()
	span := len(pages) - runLen + 1
	var got []*vm.Page
	for r := 0; r < rounds; r++ {
		for cpu := 0; cpu < ncpu; cpu++ {
			ctx := k.Ctx(cpu)
			var extent []*vm.Page
			if workload == "stream" {
				e := (r + cpu) % AdaptiveStreamExtents
				extent = pages[e*runLen : (e+1)*runLen]
			} else {
				start := ((r*ncpu + cpu) * 7) % span
				extent = pages[start : start+runLen]
			}
			useRun := policy == "run" || (policy == "adaptive" && cons.UseRuns(ctx, extent))
			if useRun {
				rn, err := k.Map.AllocRun(ctx, extent, 0)
				if err != nil {
					return 0, err
				}
				if rn.Contiguous() {
					got, err = k.Pmap.TranslateRun(ctx, rn.Base(), rn.Len(), false, got[:0])
					if err != nil {
						return 0, err
					}
				} else {
					for j := 0; j < rn.Len(); j++ {
						if _, err := k.Pmap.Translate(ctx, rn.KVA(j), false); err != nil {
							return 0, err
						}
					}
				}
				k.Map.FreeRun(ctx, rn)
			} else {
				bufs, err := k.Map.AllocBatch(ctx, extent, 0)
				if err != nil {
					return 0, err
				}
				for _, b := range bufs {
					if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
						return 0, err
					}
				}
				k.Map.FreeBatch(ctx, bufs)
			}
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return rounds * ncpu * runLen, nil
}

// ChurnAuto is the scale experiment's adaptive counterpart of ChurnRun
// and ChurnBatch: the same shared-working-set extent pattern, but each
// extent routed through a consumer handle exactly as the converted
// subsystems route theirs — the run path where the handle (or the
// engine's static resolution) says runs, the batch path otherwise.  The
// returned count is in pages, comparable with the other Churn drivers.
func ChurnAuto(k *kernel.Kernel, pages []*vm.Page, ops, runLen int) (int, error) {
	ncpu := k.M.NumCPUs()
	rounds := ops / ncpu / runLen
	cons := k.Consumer("scale")
	var wg sync.WaitGroup
	errs := make([]error, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			scratch := make([]*vm.Page, runLen)
			var got []*vm.Page
			for i := 0; i < rounds; i++ {
				for j := 0; j < runLen; j++ {
					scratch[j] = pages[(i*runLen*(2*cpu+1)+j*7+cpu*11)%len(pages)]
				}
				if cons.UseRuns(ctx, scratch) {
					r, err := k.Map.AllocRun(ctx, scratch, 0)
					if err != nil {
						errs[cpu] = err
						return
					}
					if r.Contiguous() {
						got, err = k.Pmap.TranslateRun(ctx, r.Base(), r.Len(), false, got[:0])
						if err != nil {
							errs[cpu] = err
							return
						}
					} else {
						for j := 0; j < r.Len(); j++ {
							if _, err := k.Pmap.Translate(ctx, r.KVA(j), false); err != nil {
								errs[cpu] = err
								return
							}
						}
					}
					k.Map.FreeRun(ctx, r)
				} else {
					bufs, err := k.Map.AllocBatch(ctx, scratch, 0)
					if err != nil {
						errs[cpu] = err
						return
					}
					for _, b := range bufs {
						if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
							errs[cpu] = err
							return
						}
					}
					k.Map.FreeBatch(ctx, bufs)
				}
			}
		}(cpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return rounds * ncpu * runLen, nil
}
