package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/fs"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/workloads"
)

func init() {
	register("fig8", RunFig8)
	register("fig9", RunFig9)
	register("fig10", RunFig10)
}

// postmarkRun executes the paper's largest PostMark configuration (20,000
// files / 100,000 transactions on a 512 MB memory disk) on one platform
// under one kernel.
func postmarkRun(o Options, plat arch.Platform, mk kernel.MapperKind) (measurement, workloads.PostMarkResult, error) {
	type both struct {
		m  measurement
		pr workloads.PostMarkResult
	}
	key := fmt.Sprintf("postmark/%s/%v/%g", plat.Name, mk, o.Scale)
	v, err := memoizedRun(key, func() (both, error) {
		m, pr, err := postmarkRun1(o, plat, mk)
		return both{m, pr}, err
	})
	return v.m, v.pr, err
}

func postmarkRun1(o Options, plat arch.Platform, mk kernel.MapperKind) (measurement, workloads.PostMarkResult, error) {
	cfg := workloads.PostMarkConfig3()
	cfg.InitialFiles = o.scaleInt(cfg.InitialFiles, 100)
	cfg.Transactions = o.scaleInt(cfg.Transactions, 300)
	diskBytes := o.scaleInt64(512<<20, 16<<20)
	entries := o.scaleInt(sfbuf.DefaultI386Entries, 2048)

	k, err := kernel.Boot(kernel.Config{
		// Figure reproduction pins the paper's cache engine.
		Cache:     kernel.CacheGlobal,
		Platform:  plat,
		Mapper:    mk,
		PhysPages: int(diskBytes>>12) + 256,
		// PostMark needs real storage: the filesystem's metadata lives
		// on the disk.
		Backed:       true,
		CacheEntries: entries,
	})
	if err != nil {
		return measurement{}, workloads.PostMarkResult{}, err
	}
	d, err := memdisk.New(k, diskBytes)
	if err != nil {
		return measurement{}, workloads.PostMarkResult{}, err
	}
	ctx := k.Ctx(0)
	fsys, err := fs.Mkfs(ctx, k, d, cfg.InitialFiles*2+64)
	if err != nil {
		return measurement{}, workloads.PostMarkResult{}, err
	}
	if err := workloads.PostMarkInit(ctx, fsys, cfg); err != nil {
		return measurement{}, workloads.PostMarkResult{}, err
	}
	k.Reset()

	pr, err := workloads.PostMark(k, fsys, cfg)
	if err != nil {
		return measurement{}, pr, err
	}
	m := measurement{
		plat:    plat,
		kernel:  mk.String(),
		elapsed: serializedCycles(k.M),
		bytes:   pr.BytesRead + pr.BytesWritten,
		events:  int64(pr.Transactions),
	}
	m.snapshotInto(k)
	d.Release()
	return m, pr, nil
}

// RunFig8 reproduces Figure 8: PostMark transactions per second with
// 20,000 files and 100,000 transactions.
func RunFig8(o Options) (*Result, error) {
	res := &Result{
		ID:      "fig8",
		Title:   "PostMark transactions per second (20,000 files / 100,000 transactions)",
		Columns: []string{"Platform", "sf_buf TPS", "original TPS", "improvement"},
		Notes: []string{
			"paper: Opteron-MP +11%..+27%; Xeons +4%..+13%",
			"the ~150 MB footprint fits the Xeon mapping cache, so gains come from eliminated invalidations",
		},
	}
	for _, plat := range o.platforms() {
		o.logf("  fig8: %s", plat.Name)
		sf, _, err := postmarkRun(o, plat, kernel.SFBuf)
		if err != nil {
			return nil, err
		}
		orig, _, err := postmarkRun(o, plat, kernel.OriginalKernel)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			plat.Name, fmtF(sf.perSec()), fmtF(orig.perSec()), pct(sf.perSec(), orig.perSec()),
		})
		res.SetMetric("sfbuf_tps/"+plat.Name, sf.perSec())
		res.SetMetric("original_tps/"+plat.Name, orig.perSec())
		res.SetMetric("improvement_pct/"+plat.Name, pctVal(sf.perSec(), orig.perSec()))
	}
	return res, nil
}

// RunFig9 reproduces Figure 9: PostMark read and write throughput.
func RunFig9(o Options) (*Result, error) {
	res := &Result{
		ID:      "fig9",
		Title:   "PostMark read/write throughput in MB/s (20,000 files / 100,000 transactions)",
		Columns: []string{"Platform", "Kernel", "Read MB/s", "Write MB/s"},
		Notes: []string{
			"paper: read and write bandwidth up by ~4%..17%",
		},
	}
	for _, plat := range o.platforms() {
		o.logf("  fig9: %s", plat.Name)
		for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
			m, pr, err := postmarkRun(o, plat, mk)
			if err != nil {
				return nil, err
			}
			secs := m.elapsed.Seconds(plat.FreqGHz)
			readMBps, writeMBps := 0.0, 0.0
			if secs > 0 {
				readMBps = float64(pr.BytesRead) / 1e6 / secs
				writeMBps = float64(pr.BytesWritten) / 1e6 / secs
			}
			res.Rows = append(res.Rows, []string{
				plat.Name, m.kernel, fmtF(readMBps), fmtF(writeMBps),
			})
			res.SetMetric(fmt.Sprintf("read_mbps/%s/%s", plat.Name, m.kernel), readMBps)
			res.SetMetric(fmt.Sprintf("write_mbps/%s/%s", plat.Name, m.kernel), writeMBps)
		}
	}
	return res, nil
}

// RunFig10 reproduces Figure 10: TLB invalidations issued during PostMark.
func RunFig10(o Options) (*Result, error) {
	res := &Result{
		ID:      "fig10",
		Title:   "Local and remote TLB invalidations issued for PostMark",
		Columns: []string{"Platform", "Kernel", "Local", "Remote"},
		Notes: []string{
			"paper: sf_buf kernel eliminates invalidations (footprint fits the cache); original issues millions",
		},
	}
	for _, plat := range o.platforms() {
		o.logf("  fig10: %s", plat.Name)
		for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
			m, _, err := postmarkRun(o, plat, mk)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				plat.Name, m.kernel, fmtU(m.localInv), fmtU(m.remoteInv),
			})
			res.SetMetric(fmt.Sprintf("local/%s/%s", plat.Name, m.kernel), float64(m.localInv))
			res.SetMetric(fmt.Sprintf("remote/%s/%s", plat.Name, m.kernel), float64(m.remoteInv))
		}
	}
	return res, nil
}
