package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/workloads"
)

func init() {
	register("fig15", func(o Options) (*Result, error) { return runWebThroughput(o, "NASA", "fig15") })
	register("fig16", func(o Options) (*Result, error) { return runWebThroughput(o, "Rice", "fig16") })
	register("fig17", func(o Options) (*Result, error) { return runWebInvalidations(o, "NASA", "fig17") })
	register("fig18", func(o Options) (*Result, error) { return runWebInvalidations(o, "Rice", "fig18") })
	register("fig19", RunFig19)
	register("fig20", RunFig20)
}

// webTrace synthesizes the named trace at the option's scale.
func webTrace(o Options, name string) *workloads.Trace {
	switch name {
	case "NASA":
		// 258.7 MB footprint, ~50k requests at full scale.
		return workloads.SynthesizeTrace("NASA",
			o.scaleInt64(258_700_000, 8<<20),
			o.scaleInt(10000, 100),
			o.scaleInt(50000, 400),
			1.2, 1994)
	case "Rice":
		// 1.1 GB footprint, ~30k requests at full scale.
		return workloads.SynthesizeTrace("Rice",
			o.scaleInt64(1_100_000_000, 16<<20),
			o.scaleInt(20000, 150),
			o.scaleInt(30000, 300),
			1.15, 2002)
	}
	panic("unknown trace " + name)
}

// webRun serves the trace on one platform under one kernel configuration.
func webRun(o Options, plat arch.Platform, mk kernel.MapperKind, trace *workloads.Trace, cacheEntries int, offload bool) (measurement, error) {
	key := fmt.Sprintf("web/%s/%v/%s/%d/%v/%g", plat.Name, mk, trace.Name, cacheEntries, offload, o.Scale)
	return memoizedRun(key, func() (measurement, error) {
		return webRun1(o, plat, mk, trace, cacheEntries, offload)
	})
}

func webRun1(o Options, plat arch.Platform, mk kernel.MapperKind, trace *workloads.Trace, cacheEntries int, offload bool) (measurement, error) {
	diskPages := int(workloads.CorpusDiskSize(trace)>>12) + 256
	k, err := kernel.Boot(kernel.Config{
		// Figure reproduction pins the paper's cache engine.
		Cache:     kernel.CacheGlobal,
		Platform:  plat,
		Mapper:    mk,
		PhysPages: diskPages + 1024,
		// The filesystem needs real storage for its metadata.
		Backed:       true,
		CacheEntries: cacheEntries,
	})
	if err != nil {
		return measurement{}, err
	}
	ctx := k.Ctx(0)
	corpus, err := workloads.BuildCorpus(ctx, k, trace)
	if err != nil {
		return measurement{}, err
	}
	k.Reset()

	cfg := workloads.DefaultWeb(k)
	cfg.ChecksumOffload = offload
	wres, err := workloads.WebServer(k, corpus, trace, cfg)
	if err != nil {
		return measurement{}, err
	}
	m := measurement{
		plat:    plat,
		kernel:  mk.String(),
		elapsed: parallelCycles(k.M),
		bytes:   wres.BytesServed,
		events:  int64(wres.Requests),
	}
	m.snapshotInto(k)
	corpus.Disk.Release()
	return m, nil
}

func runWebThroughput(o Options, traceName, id string) (*Result, error) {
	trace := webTrace(o, traceName)
	res := &Result{
		ID:    id,
		Title: fmt.Sprintf("Web server throughput in Mbits/s, %s workload (footprint %d MB)", traceName, trace.Footprint>>20),
		Columns: []string{
			"Platform", "sf_buf Mbits/s", "original Mbits/s", "improvement",
		},
	}
	if traceName == "NASA" {
		res.Notes = append(res.Notes, "paper: Opteron-MP +6%; Xeons up to +7%")
	} else {
		res.Notes = append(res.Notes, "paper: Opteron-MP +14%; Xeons up to +7%")
	}
	entries := o.scaleInt(sfbuf.DefaultI386Entries, 2048)
	for _, plat := range o.platforms() {
		o.logf("  %s: %s", id, plat.Name)
		sf, err := webRun(o, plat, kernel.SFBuf, trace, entries, true)
		if err != nil {
			return nil, err
		}
		orig, err := webRun(o, plat, kernel.OriginalKernel, trace, entries, true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			plat.Name, fmtF(sf.mbitps()), fmtF(orig.mbitps()), pct(sf.mbitps(), orig.mbitps()),
		})
		res.SetMetric("sfbuf_mbitps/"+plat.Name, sf.mbitps())
		res.SetMetric("original_mbitps/"+plat.Name, orig.mbitps())
		res.SetMetric("improvement_pct/"+plat.Name, pctVal(sf.mbitps(), orig.mbitps()))
	}
	return res, nil
}

func runWebInvalidations(o Options, traceName, id string) (*Result, error) {
	trace := webTrace(o, traceName)
	res := &Result{
		ID:      id,
		Title:   fmt.Sprintf("Local and remote TLB invalidations issued, %s workload", traceName),
		Columns: []string{"Platform", "Kernel", "Local", "Remote"},
	}
	entries := o.scaleInt(sfbuf.DefaultI386Entries, 2048)
	for _, plat := range o.platforms() {
		o.logf("  %s: %s", id, plat.Name)
		for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
			m, err := webRun(o, plat, mk, trace, entries, true)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				plat.Name, m.kernel, fmtU(m.localInv), fmtU(m.remoteInv),
			})
			res.SetMetric(fmt.Sprintf("local/%s/%s", plat.Name, m.kernel), float64(m.localInv))
			res.SetMetric(fmt.Sprintf("remote/%s/%s", plat.Name, m.kernel), float64(m.remoteInv))
		}
	}
	return res, nil
}

// fig19Configs are the cache-size sweep configurations of Figures 19-20:
// the Xeon-MP serving the NASA workload with a 64K-entry cache, a
// 6K-entry cache, and the original kernel, each with TCP checksum
// offloading enabled and disabled.
type fig19Config struct {
	label   string
	mapper  kernel.MapperKind
	entries int // at full scale
}

var fig19Configs = []fig19Config{
	{"64K cache entries", kernel.SFBuf, 64 * 1024},
	{"6K cache entries", kernel.SFBuf, 6 * 1024},
	{"no cache (original)", kernel.OriginalKernel, 0},
}

// RunFig19 reproduces Figure 19: NASA workload throughput on the Xeon-MP
// with varying cache sizes and checksum offloading on/off.
func RunFig19(o Options) (*Result, error) {
	trace := webTrace(o, "NASA")
	res := &Result{
		ID:      "fig19",
		Title:   "NASA workload on Xeon-MP: throughput vs sf_buf cache size and checksum offloading (Mbits/s)",
		Columns: []string{"Config", "offload on", "offload off", "hit rate (on)"},
		Notes: []string{
			"paper: shrinking the cache 64K->6K drops the hit rate ~100%->82% with little throughput loss;",
			"checksum offloading keeps PTE accessed bits clear, so cache misses skip TLB invalidations",
		},
	}
	plat := arch.XeonMP()
	for _, cfg := range fig19Configs {
		o.logf("  fig19: %s", cfg.label)
		entries := 0
		if cfg.entries > 0 {
			entries = o.scaleInt(cfg.entries, cfg.entries/64)
		}
		on, err := webRun(o, plat, cfg.mapper, trace, entries, true)
		if err != nil {
			return nil, err
		}
		off, err := webRun(o, plat, cfg.mapper, trace, entries, false)
		if err != nil {
			return nil, err
		}
		hit := "n/a"
		if cfg.mapper == kernel.SFBuf {
			hit = fmt.Sprintf("%.1f%%", on.hitRate*100)
		}
		res.Rows = append(res.Rows, []string{
			cfg.label, fmtF(on.mbitps()), fmtF(off.mbitps()), hit,
		})
		key := cfg.label
		res.SetMetric("mbitps_on/"+key, on.mbitps())
		res.SetMetric("mbitps_off/"+key, off.mbitps())
		res.SetMetric("hitrate_on/"+key, on.hitRate)
	}
	return res, nil
}

// RunFig20 reproduces Figure 20: the invalidation counts behind Figure 19.
func RunFig20(o Options) (*Result, error) {
	trace := webTrace(o, "NASA")
	res := &Result{
		ID:      "fig20",
		Title:   "NASA workload on Xeon-MP: TLB invalidations vs cache size and checksum offloading",
		Columns: []string{"Config", "Checksum", "Local", "Remote"},
	}
	plat := arch.XeonMP()
	for _, cfg := range fig19Configs {
		o.logf("  fig20: %s", cfg.label)
		entries := 0
		if cfg.entries > 0 {
			entries = o.scaleInt(cfg.entries, cfg.entries/64)
		}
		for _, offload := range []bool{true, false} {
			m, err := webRun(o, plat, cfg.mapper, trace, entries, offload)
			if err != nil {
				return nil, err
			}
			label := "off"
			if offload {
				label = "on"
			}
			res.Rows = append(res.Rows, []string{
				cfg.label, label, fmtU(m.localInv), fmtU(m.remoteInv),
			})
			res.SetMetric(fmt.Sprintf("local/%s/offload=%s", cfg.label, label), float64(m.localInv))
			res.SetMetric(fmt.Sprintf("remote/%s/offload=%s", cfg.label, label), float64(m.remoteInv))
		}
	}
	return res, nil
}
