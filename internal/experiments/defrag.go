package experiments

import (
	"errors"
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/kernel"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/vm"
	"sfbuf/internal/vm/physcheck"
)

func init() {
	register("defrag", RunDefrag)
}

// This file drives the defragmentation-by-migration experiment: a shaped
// steady-state workload at ~70% physical occupancy where every superpage
// span holds a few scattered residents, so the buddy allocator alone can
// NEVER serve a contiguous superpage extent again — eager coalescing is
// defeated not by load but by placement.  Against that pool the driver
// runs the serving mix the converted subsystems generate: steady
// single-page mapping churn, plus a FIFO of superpage-spanning physical
// extents that are mapped as aligned run windows (promoting when the
// frames are contiguous), plus periodic idle ticks for the background
// daemon.  With migration off the kernel falls back to scattered extents
// forever; with migration on, evacuating a handful of nearly-free spans
// unlocks contiguous service that then SUSTAINS itself, because freed
// extents re-coalesce into the very spans migration reclaimed.
const (
	// defragSpans is the pool size in superpage spans.
	defragSpans = 16
	// defragSparse spans are left nearly free by the shaping churn; their
	// scattered survivors are what migration must evacuate.
	defragSparse = 5
	// defragSurvivors is the resident count pinned in each sparse span,
	// scattered so no aligned sub-span block larger than 16 frames is free.
	defragSurvivors = 32
	// defragHold is the FIFO depth of live extents: deep enough that the
	// first spans migration recovers stay consumed while new requests
	// arrive, shallow enough to fit the shaped pool's free memory.
	defragHold = 3
	// DefragChurnOps is the single-page mapping churn per round,
	// interleaved with each extent so the contiguity machinery is measured
	// under — and charged against — a steady serving load.
	DefragChurnOps = 512
	// defragWorkSet is the dense working set the churn maps; smaller than
	// the cache, so steady-state churn is hit-dominated and deterministic.
	defragWorkSet = 256
)

// BootDefrag boots one arm of the defragmentation experiment: the sharded
// i386 engine over a backed buddy pool of defragSpans superpage spans,
// reservation watermarks on, and the given migration policy.  The cache
// holds two superpage runs so extent windows and churn singles coexist.
func BootDefrag(migrate kernel.MigratePolicy) (*kernel.Kernel, error) {
	return kernel.Boot(kernel.Config{
		Platform:     arch.XeonMPHTT(),
		Mapper:       kernel.SFBuf,
		Cache:        kernel.CacheSharded,
		PhysPages:    defragSpans * pmap.SuperpagePages,
		Backed:       true,
		CacheEntries: 2*pmap.SuperpagePages + 64,
		PhysBuddy:    kernel.PhysBuddyOn,
		Reserv:       kernel.ReservOn,
		Migrate:      migrate,
	})
}

// DefragShape is the shaped occupancy ChurnDefrag runs against: most
// spans dense (fully resident), defragSparse spans nearly free with
// scattered survivors, and a byte oracle over every resident page so any
// migration that corrupts or mis-registers a single byte is caught.
type DefragShape struct {
	// Held pins every resident page for the experiment's lifetime.
	Held []*vm.Page
	// WorkSet is the dense subset the steady churn maps.
	WorkSet []*vm.Page
	// Oracle snapshots every held page's bytes and registry identity.
	Oracle *physcheck.Oracle
}

// ShapeOccupancy drains the fresh pool and frees it back into the shape
// that defeats plain buddy coalescing: spans 1..defragSparse keep only
// defragSurvivors scattered residents each (every 16th frame), every
// other span stays fully resident.  The result is ~70% occupancy with
// zero intact superpage blocks — sparse spans are migration candidates,
// dense spans never are.
func ShapeOccupancy(k *kernel.Kernel) (*DefragShape, error) {
	span := pmap.SuperpagePages
	phys := k.M.Phys
	var bySpan [][]*vm.Page
	for {
		pg, err := phys.Alloc()
		if err != nil {
			if errors.Is(err, vm.ErrNoMemory) {
				break
			}
			return nil, err
		}
		s := int(pg.Frame()) / span
		for len(bySpan) <= s {
			bySpan = append(bySpan, nil)
		}
		bySpan[s] = append(bySpan[s], pg)
	}
	shape := &DefragShape{}
	for s, pages := range bySpan {
		sparse := s >= 1 && s <= defragSparse
		for _, pg := range pages {
			if sparse && int(pg.Frame())%span%16 != 5 {
				phys.Free(pg)
				continue
			}
			shape.Held = append(shape.Held, pg)
			if !sparse && len(shape.WorkSet) < defragWorkSet {
				shape.WorkSet = append(shape.WorkSet, pg)
			}
		}
	}
	// Stamp every resident with a distinct two-byte tag; the oracle
	// snapshot makes the tags (and the zero tail) the migration contract.
	for i, pg := range shape.Held {
		d := pg.Data()
		d[0] = byte(i + 1)
		d[1] = byte(i>>8 + 1)
	}
	shape.Oracle = physcheck.NewOracle(shape.Held)
	total := defragSpans * span
	occ := total - phys.FreeFrames()
	if occ < total*65/100 || occ > total*75/100 {
		return nil, fmt.Errorf("defrag shape: occupancy %d/%d outside the ~70%% band", occ, total)
	}
	if free := phys.FreeFrames(); free < (defragHold+1)*span {
		return nil, fmt.Errorf("defrag shape: %d free frames cannot float %d held extents", free, defragHold)
	}
	return shape, nil
}

// ChurnDefrag runs the steady-state serving rounds: per round,
// DefragChurnOps single-page map/touch/unmap cycles over the dense
// working set, an idle tick every fourth round (the background daemon's
// slot, where its migrate duty runs ahead of demand), and one
// superpage-spanning extent — AllocPhysContig with the on-demand defrag
// retry, scattered AllocN when contiguity is truly unavailable — mapped
// as an aligned run, swept through the honest MMU with every translation
// checked against the page it must resolve to, then parked in a FIFO of
// defragHold live extents.  Returns the pages moved through the mapping
// layer and how many extents were served physically contiguous.
func ChurnDefrag(k *kernel.Kernel, shape *DefragShape, rounds int) (done, contigServed int, err error) {
	span := pmap.SuperpagePages
	ncpu := k.M.NumCPUs()
	var hold [][]*vm.Page
	defer func() {
		for _, ext := range hold {
			for _, pg := range ext {
				k.M.Phys.Free(pg)
			}
		}
	}()
	var got []*vm.Page
	for r := 0; r < rounds; r++ {
		for i := 0; i < DefragChurnOps; i++ {
			ctx := k.Ctx((r + i) % ncpu)
			pg := shape.WorkSet[(r*13+i)%len(shape.WorkSet)]
			b, aerr := k.Map.Alloc(ctx, pg, 0)
			if aerr != nil {
				return 0, 0, aerr
			}
			tp, terr := k.Pmap.Translate(ctx, b.KVA(), false)
			if terr != nil {
				return 0, 0, terr
			}
			if tp != pg {
				return 0, 0, fmt.Errorf("round %d: churn translation resolved a different page", r)
			}
			k.Map.Free(ctx, b)
		}
		if r%4 == 3 {
			k.Idle(r%ncpu, 1<<15)
		}
		if len(hold) >= defragHold {
			for _, pg := range hold[0] {
				k.M.Phys.Free(pg)
			}
			hold = hold[1:]
		}
		ctx := k.Ctx(r % ncpu)
		pages, aerr := k.AllocPhysContig(span)
		if aerr == nil {
			contigServed++
		} else if errors.Is(aerr, vm.ErrNoContig) {
			pages, aerr = k.M.Phys.AllocN(span)
		}
		if aerr != nil {
			return 0, 0, fmt.Errorf("round %d: extent: %w", r, aerr)
		}
		rn, rerr := k.Map.AllocRun(ctx, pages, 0)
		if rerr != nil {
			return 0, 0, rerr
		}
		if rn.Contiguous() {
			got, rerr = k.Pmap.TranslateRun(ctx, rn.Base(), rn.Len(), false, got[:0])
			if rerr != nil {
				return 0, 0, rerr
			}
			for j, tp := range got {
				if tp != pages[j] {
					return 0, 0, fmt.Errorf("round %d: run slot %d resolved a different page", r, j)
				}
			}
		} else {
			for j := 0; j < rn.Len(); j++ {
				tp, terr := k.Pmap.Translate(ctx, rn.KVA(j), false)
				if terr != nil {
					return 0, 0, terr
				}
				if tp != pages[j] {
					return 0, 0, fmt.Errorf("round %d: scattered slot %d resolved a different page", r, j)
				}
			}
		}
		k.Map.FreeRun(ctx, rn)
		hold = append(hold, pages)
		done += DefragChurnOps + span
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return done, contigServed, nil
}

// DefragArm is one measured arm of the defragmentation experiment.
type DefragArm struct {
	K           *kernel.Kernel
	Done        int
	Extents     int
	ContigFrac  float64
	PromoPerSec float64
	CycPerOp    float64
	Mig         sfbuf.MigrationStats
}

// RunDefragArm boots one arm, shapes its occupancy, proves the shape
// defeats the plain buddy allocator (a raw aligned AllocContig must
// fail), warms the cache and the recovery for two rounds, then measures
// the steady state — closing with the byte oracle and the structural
// free-list audit, so a corrupting or leaking migration fails the arm
// rather than skewing its numbers.
func RunDefragArm(migrate kernel.MigratePolicy, rounds int) (*DefragArm, error) {
	span := pmap.SuperpagePages
	k, err := BootDefrag(migrate)
	if err != nil {
		return nil, err
	}
	shape, err := ShapeOccupancy(k)
	if err != nil {
		return nil, err
	}
	if _, err := k.M.Phys.AllocContig(span, span); !errors.Is(err, vm.ErrNoContig) {
		return nil, fmt.Errorf("defrag shape: raw AllocContig = %v, the shaped pool must starve it", err)
	}
	if _, _, err := ChurnDefrag(k, shape, 2); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	k.Reset()
	promoBase := k.Pmap.SuperStats().Promotions
	done, contig, err := ChurnDefrag(k, shape, rounds)
	if err != nil {
		return nil, err
	}
	promos := k.Pmap.SuperStats().Promotions - promoBase
	elapsed := k.M.TotalCycles()
	if err := shape.Oracle.Check(k.M.Phys); err != nil {
		return nil, fmt.Errorf("byte oracle after churn: %w", err)
	}
	if err := physcheck.Audit(k.M.Phys); err != nil {
		return nil, fmt.Errorf("free-list audit after churn: %w", err)
	}
	return &DefragArm{
		K:           k,
		Done:        done,
		Extents:     rounds,
		ContigFrac:  float64(contig) / float64(rounds),
		PromoPerSec: cycles.PerSecond(int64(promos), elapsed, k.Cfg.Platform.FreqGHz),
		CycPerOp:    float64(elapsed) / float64(done),
		Mig:         k.MigrationStats(),
	}, nil
}

// RunDefrag goes beyond the paper: it measures what superpage reservations
// plus defragmentation by migration buy a fragmented long-running kernel.
// Both arms run the identical shaped workload; the only difference is the
// Migrate knob.  The no-defrag arm shows today's buddy allocator defeated
// — zero contiguous extents, zero promotions, forever — while the defrag
// arm's first few evacuations unlock sustained contiguous service at a
// steady-state cycle cost within noise of the baseline (the criterion
// TestDefragEconomy enforces is 10%).
func RunDefrag(o Options) (*Result, error) {
	res := &Result{
		ID:    "defrag",
		Title: "Defragmentation by migration: contiguous extents under steady churn (Xeon 4-way)",
		Columns: []string{"variant", "ops", "extents", "contig%", "promo/s",
			"pages moved", "blocks freed", "cyc/op"},
		Notes: []string{
			"shaped pool: ~70% occupancy, every superpage span resident, sparse spans hold 32 scattered survivors",
			"each round: 512 single-page churn ops, one superpage extent mapped as an aligned run, FIFO of 3 live extents",
			"contig% counts extents served physically contiguous; promotions need an aligned contiguous run",
			"the defrag arm migrates on demand (AllocPhysContig retry) and ahead of demand (daemon idle ticks)",
			"byte oracle + free-list audit run on both arms: migration must not corrupt a byte or leak a block",
		},
	}
	ops := o.scaleInt(160000, 8192)
	rounds := ops / (DefragChurnOps + pmap.SuperpagePages)
	if rounds < 4 {
		rounds = 4
	}
	for _, armCfg := range []struct {
		name string
		pol  kernel.MigratePolicy
	}{
		{"defrag on", kernel.MigrateOn},
		{"defrag off", kernel.MigrateOff},
	} {
		o.logf("defrag: measuring %s (%d rounds)...", armCfg.name, rounds)
		arm, err := RunDefragArm(armCfg.pol, rounds)
		if err != nil {
			return nil, fmt.Errorf("defrag %s: %w", armCfg.name, err)
		}
		res.Rows = append(res.Rows, []string{
			armCfg.name, fmt.Sprintf("%d", arm.Done), fmt.Sprintf("%d", arm.Extents),
			fmt.Sprintf("%.2f", arm.ContigFrac), fmtF(arm.PromoPerSec),
			fmt.Sprintf("%d", arm.Mig.PagesMoved), fmt.Sprintf("%d", arm.Mig.BlocksFreed),
			fmt.Sprintf("%.1f", arm.CycPerOp),
		})
		res.SetMetric("contig_frac/"+armCfg.name, arm.ContigFrac)
		res.SetMetric("promo_per_sec/"+armCfg.name, arm.PromoPerSec)
		res.SetMetric("cyc_per_op/"+armCfg.name, arm.CycPerOp)
		res.SetMetric("pages_moved/"+armCfg.name, float64(arm.Mig.PagesMoved))
		res.SetMetric("blocks_freed/"+armCfg.name, float64(arm.Mig.BlocksFreed))
	}
	return res, nil
}
