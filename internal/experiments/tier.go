package experiments

import (
	"fmt"
	"math"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
	"sfbuf/internal/vm/physcheck"
)

func init() {
	register("tier", RunTier)
}

// This file drives the tiered-memory experiment: a two-tier physical pool
// whose fast tier holds a quarter of the working set, under a zipfian
// extent-popularity serving workload — a handful of extents carry most of
// the traffic, exactly the skew a static web or file server sees.  Every
// byte copied or checksummed against a slow frame pays the platform's
// slow-memory surcharge, so placement is the whole economy: the hinted
// arm lets each consumer's reuse EWMAs nominate hot extents for promotion
// into the fast tier (the kernel's tier keeper, riding the migration
// machinery), while the oblivious arm leaves frames wherever allocation
// order put them.  A uniform workload runs as the adversarial control:
// with no stable popularity the EWMAs never clear the hot threshold, the
// keeper promotes (almost) nothing, and the hinted arm must cost within
// noise of the oblivious one — hints that thrash are worse than no hints.
const (
	// TierExtents and TierExtentLen shape the working set: 48 extents of
	// 8 pages, 384 pages total.
	TierExtents   = 48
	TierExtentLen = 8
	// TierPhysPages is the pool size; with TierFastFraction of it fast,
	// the fast tier (96 frames) holds ~25% of the working set — 12 of the
	// 48 extents, forcing real placement choices.
	TierPhysPages    = 768
	TierFastFraction = 0.125
	// tierZipfS is the zipfian skew of the popular workload: steep enough
	// that the top dozen extents carry ~80% of accesses (and repeat fast
	// enough for the reuse EWMAs to see them), shallow enough that the
	// tail still interleaves.
	tierZipfS = 1.3
	// tierIdleEvery is the idle-tick period in accesses: the background
	// daemon's slot, where the tier keeper's idle demotion keeps a free
	// reserve in the fast tier.
	tierIdleEvery = 16
	// tierLCGMul and tierLCGInc are the driver's deterministic LCG.
	tierLCGMul = 6364136223846793005
	tierLCGInc = 1442695040888963407
)

// BootTier boots one arm of the tiered-memory experiment: the sharded
// i386 engine over a backed two-tier buddy pool, reservations off so
// frame placement is pure allocation order, and the given hint policy —
// the arms differ in nothing else.
func BootTier(hints kernel.TierHintPolicy) (*kernel.Kernel, error) {
	return kernel.Boot(kernel.Config{
		Platform:     arch.XeonMPHTT(),
		Mapper:       kernel.SFBuf,
		Cache:        kernel.CacheSharded,
		PhysPages:    TierPhysPages,
		Backed:       true,
		CacheEntries: 512,
		PhysBuddy:    kernel.PhysBuddyOn,
		Reserv:       kernel.ReservOff,
		Tiers:        2,
		FastFraction: TierFastFraction,
		TierHints:    hints,
	})
}

// AllocTierExtents carves the working set in pure address order — the
// first extents land in the fast tier, which is exactly what the
// oblivious arm has to live with — and stamps every page for the byte
// oracle, so a corrupting promotion fails the arm instead of skewing it.
func AllocTierExtents(k *kernel.Kernel) ([][]*vm.Page, *physcheck.Oracle, error) {
	extents := make([][]*vm.Page, TierExtents)
	var all []*vm.Page
	for e := range extents {
		pages, err := k.M.Phys.AllocN(TierExtentLen)
		if err != nil {
			return nil, nil, err
		}
		extents[e] = pages
		all = append(all, pages...)
	}
	for i, pg := range all {
		d := pg.Data()
		d[0] = byte(i + 1)
		d[1] = byte(i>>8 + 1)
	}
	return extents, physcheck.NewOracle(all), nil
}

// tierZipfCum builds the cumulative zipfian popularity distribution over
// the extent ranks.
func tierZipfCum() []float64 {
	cum := make([]float64, TierExtents)
	total := 0.0
	for r := 0; r < TierExtents; r++ {
		total += 1 / math.Pow(float64(r+1), tierZipfS)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	return cum
}

// tierExtentOf maps a popularity rank to an extent index.  The affine
// permutation decorrelates popularity from allocation order: the extents
// the oblivious arm happens to hold fast (the first-allocated dozen)
// carry only ~10% of the zipfian access mass, so whatever the hinted arm
// wins, it wins by placement, not by luck.
func tierExtentOf(rank int) int { return (7*rank + 19) % TierExtents }

// ChurnTier runs the serving loop: per access, one extent chosen by the
// workload's popularity distribution is routed through the consumer
// handle (whose observation doubles as the tier hint), mapped, served —
// every page pays a copy charge and a checksum charge against its
// current frame, so slow-tier residency costs exactly what the cost
// model says it costs — and unmapped.  A single goroutine round-robins
// the CPU contexts, keeping the access order (and so the EWMA and
// migration histories) deterministic.  Every tierIdleEvery accesses one
// CPU takes an idle tick: the daemon's slot.
func ChurnTier(k *kernel.Kernel, workload string, extents [][]*vm.Page, accesses int) (int, error) {
	cons := k.Consumer("tier")
	ncpu := k.M.NumCPUs()
	cum := tierZipfCum()
	state := uint64(0x9E3779B97F4A7C15)
	pages := 0
	var got []*vm.Page
	for i := 0; i < accesses; i++ {
		state = state*tierLCGMul + tierLCGInc
		u := float64(state>>11) / (1 << 53)
		rank := 0
		switch workload {
		case "zipf":
			for cum[rank] < u {
				rank++
			}
		case "uniform":
			rank = int(u * TierExtents)
			if rank >= TierExtents {
				rank = TierExtents - 1
			}
		default:
			return 0, fmt.Errorf("unknown tier workload %q", workload)
		}
		ext := extents[tierExtentOf(rank)]
		ctx := k.Ctx(i % ncpu)
		if cons.UseRuns(ctx, ext) {
			rn, err := k.Map.AllocRun(ctx, ext, 0)
			if err != nil {
				return 0, err
			}
			if rn.Contiguous() {
				got, err = k.Pmap.TranslateRun(ctx, rn.Base(), rn.Len(), false, got[:0])
				if err != nil {
					return 0, err
				}
			} else {
				for j := 0; j < rn.Len(); j++ {
					if _, err := k.Pmap.Translate(ctx, rn.KVA(j), false); err != nil {
						return 0, err
					}
				}
			}
			serveTierExtent(ctx, ext)
			k.Map.FreeRun(ctx, rn)
		} else {
			bufs, err := k.Map.AllocBatch(ctx, ext, 0)
			if err != nil {
				return 0, err
			}
			for _, b := range bufs {
				if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
					return 0, err
				}
			}
			serveTierExtent(ctx, ext)
			k.Map.FreeBatch(ctx, bufs)
		}
		pages += len(ext)
		if i%tierIdleEvery == tierIdleEvery-1 {
			k.Idle(i%ncpu, 1<<15)
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return pages, nil
}

// serveTierExtent charges the serving work — one copy pass and one
// checksum pass per page, each against the page's CURRENT frame.  The
// frame is read per charge, after the consumer's hint had its chance to
// migrate, so a promotion pays off (or a slow residency costs) starting
// with this very access.
func serveTierExtent(ctx *smp.Context, ext []*vm.Page) {
	cost := ctx.Cost()
	for _, pg := range ext {
		f := pg.Frame()
		ctx.ChargeBytesAt(cost.CopyPerByte, vm.PageSize, f)
		ctx.ChargeBytesAt(cost.ChecksumPerByte, vm.PageSize, f)
	}
}

// TierArm is one measured arm of the tiered-memory experiment.
type TierArm struct {
	K          *kernel.Kernel
	Pages      int
	CycPerPage float64
	Stats      kernel.TierStats
}

// RunTierArm boots one arm, carves the working set, warms the caches and
// the placement (the hinted arm's promotions mostly happen here), resets
// the counters and measures the steady state — closing with the byte
// oracle and the structural free-list audit, so a corrupting or leaking
// tier move fails the arm rather than skewing its numbers.
func RunTierArm(hints kernel.TierHintPolicy, workload string, warmup, accesses int) (*TierArm, error) {
	k, err := BootTier(hints)
	if err != nil {
		return nil, err
	}
	extents, oracle, err := AllocTierExtents(k)
	if err != nil {
		return nil, err
	}
	if _, err := ChurnTier(k, workload, extents, warmup); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	k.Reset()
	pages, err := ChurnTier(k, workload, extents, accesses)
	if err != nil {
		return nil, err
	}
	elapsed := k.M.TotalCycles()
	if err := oracle.Check(k.M.Phys); err != nil {
		return nil, fmt.Errorf("byte oracle after churn: %w", err)
	}
	if err := physcheck.Audit(k.M.Phys); err != nil {
		return nil, fmt.Errorf("free-list audit after churn: %w", err)
	}
	return &TierArm{
		K:          k,
		Pages:      pages,
		CycPerPage: float64(elapsed) / float64(pages),
		Stats:      k.TierStats(),
	}, nil
}

// tierFastFrac extracts the "tier" consumer's fast-tier hit rate from an
// arm's stats.
func tierFastFrac(st kernel.TierStats) float64 {
	for _, c := range st.Consumers {
		if c.Name == "tier" {
			return c.FastFrac()
		}
	}
	return 0
}

// RunTier goes beyond the paper: it measures what consumer-hinted
// placement buys a kernel whose physical pool is not uniform — the
// tiered-memory reality (NUMA far tiers, CXL, persistent memory) that
// postdates the paper's machines.  Four arms: {hinted, oblivious} x
// {zipfian, uniform}.  On the zipfian workload the hinted arm must serve
// a page in at most two thirds of the oblivious arm's cycles (the
// criterion TestTierEconomy enforces); on the uniform workload it must
// stay within 10% — the hot-threshold gate, not luck, is what keeps the
// keeper from thrashing copies it cannot amortize.
func RunTier(o Options) (*Result, error) {
	res := &Result{
		ID:    "tier",
		Title: "Tiered memory: consumer-hinted hot-extent placement (Xeon 4-way, fast tier = 25% of working set)",
		Columns: []string{"variant", "workload", "pages", "fast%/op", "promoted", "demoted",
			"slow-surcharge Mcyc", "cyc/page"},
		Notes: []string{
			"two-tier buddy pool: 96 of 768 frames fast; slow frames pay the platform surcharge per copied/checksummed byte",
			"48 extents of 8 pages; zipfian popularity (s=1.3) decorrelated from allocation order, uniform as the adversarial control",
			"hinted arm: consumer reuse EWMAs nominate hot extents, the tier keeper promotes them and demotes the coldest residents",
			"oblivious arm books the same tier split but leaves frames where allocation order put them",
			"fast%/op is the fraction of served pages found fast-tier resident at observation time",
			"byte oracle + free-list audit run on every arm: a tier move must not corrupt a byte or leak a block",
		},
	}
	accesses := o.scaleInt(12000, 1600)
	warmup := 400 + accesses/10
	for _, armCfg := range []struct {
		name  string
		hints kernel.TierHintPolicy
	}{
		{"hinted", kernel.TierHintOn},
		{"oblivious", kernel.TierHintOff},
	} {
		for _, workload := range []string{"zipf", "uniform"} {
			o.logf("tier: measuring %s/%s (%d accesses)...", armCfg.name, workload, accesses)
			arm, err := RunTierArm(armCfg.hints, workload, warmup, accesses)
			if err != nil {
				return nil, fmt.Errorf("tier %s/%s: %w", armCfg.name, workload, err)
			}
			st := arm.Stats
			res.Rows = append(res.Rows, []string{
				armCfg.name, workload, fmt.Sprintf("%d", arm.Pages),
				fmt.Sprintf("%.2f", tierFastFrac(st)),
				fmt.Sprintf("%d", st.PromotedPages), fmt.Sprintf("%d", st.DemotedPages),
				fmt.Sprintf("%.1f", float64(st.SlowMemCycles)/1e6),
				fmt.Sprintf("%.1f", arm.CycPerPage),
			})
			key := workload + "/" + armCfg.name
			res.SetMetric("cyc_per_page/"+key, arm.CycPerPage)
			res.SetMetric("fast_frac/"+key, tierFastFrac(st))
			res.SetMetric("promoted_pages/"+key, float64(st.PromotedPages))
			res.SetMetric("demoted_pages/"+key, float64(st.DemotedPages))
		}
	}
	return res, nil
}
