package experiments

import (
	"testing"
)

// TestDefragEconomy is the defragmentation acceptance criterion, run in
// CI (make bench-defrag): on the shaped ~70%-occupancy pool whose steady
// churn defeats the plain buddy allocator — the no-defrag arm must
// sustain ZERO contiguous extents and zero promotions — the migration arm
// must serve at least half its superpage extents physically contiguous
// with a non-zero promotion rate, at steady-state simulated cycles per
// operation within 10% of the no-defrag arm.  RunDefrag itself enforces
// the migration byte oracle and the free-list audit on both arms, so a
// corrupting evacuation fails the run before any criterion is compared.
func TestDefragEconomy(t *testing.T) {
	res, err := RunDefrag(Options{Scale: 0.25, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	onContig := res.Metrics["contig_frac/defrag on"]
	offContig := res.Metrics["contig_frac/defrag off"]
	onPromo := res.Metrics["promo_per_sec/defrag on"]
	offPromo := res.Metrics["promo_per_sec/defrag off"]
	onCyc := res.Metrics["cyc_per_op/defrag on"]
	offCyc := res.Metrics["cyc_per_op/defrag off"]
	onMoved := res.Metrics["pages_moved/defrag on"]
	t.Logf("contig%% %.2f vs %.2f, promo/s %.0f vs %.0f, cyc/op %.1f vs %.1f, moved %.0f",
		onContig, offContig, onPromo, offPromo, onCyc, offCyc, onMoved)
	if offContig != 0 {
		t.Errorf("no-defrag arm served %.2f contiguous extents; the shaped pool must starve it", offContig)
	}
	if offPromo != 0 {
		t.Errorf("no-defrag arm promoted (%.2f/s) without contiguity", offPromo)
	}
	if onContig < 0.5 {
		t.Errorf("defrag arm contig fraction = %.2f, want >= 0.5", onContig)
	}
	if onPromo <= 0 {
		t.Errorf("defrag arm promotions/s = %.2f, want > 0", onPromo)
	}
	if onMoved <= 0 {
		t.Errorf("defrag arm moved %.0f pages; the recovery must come from migration", onMoved)
	}
	if offCyc == 0 {
		t.Fatal("missing baseline cycle metric")
	}
	if onCyc > offCyc*1.10 {
		t.Errorf("defrag arm cyc/op = %.1f, want within 10%% of no-defrag %.1f", onCyc, offCyc)
	}
}

// TestDefragDeterminism: the driver is sequential — churn, idle ticks,
// extents and migration passes all run from one goroutine in a fixed
// order — so two runs must produce identical economies and the criterion
// above cannot flake.
func TestDefragDeterminism(t *testing.T) {
	run := func() map[string]float64 {
		res, err := RunDefrag(Options{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	for _, key := range []string{
		"contig_frac/defrag on", "contig_frac/defrag off",
		"promo_per_sec/defrag on", "cyc_per_op/defrag on",
		"cyc_per_op/defrag off", "pages_moved/defrag on",
	} {
		if a[key] != b[key] {
			t.Errorf("%s not deterministic: %v vs %v", key, a[key], b[key])
		}
	}
}
