package experiments

import (
	"strings"
	"testing"

	"sfbuf/internal/arch"
)

// tinyOptions runs experiments at the smallest usable scale, restricted to
// two platforms so the whole suite stays test-sized.
func tinyOptions() Options {
	return Options{
		Scale:     0.004,
		Platforms: []arch.Platform{arch.XeonMP(), arch.OpteronMP()},
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"sec3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "ablation",
		"scale", "serve", "reclaim", "numa", "defrag", "tier",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d: %v", len(got), len(want), got)
	}
	set := map[string]bool{}
	for _, id := range got {
		set[id] = true
	}
	for _, id := range want {
		if !set[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := Get("fig2"); !ok {
		t.Fatal("Get(fig2) failed")
	}
	if _, ok := Get("nonsense"); ok {
		t.Fatal("Get(nonsense) succeeded")
	}
}

func TestSec3MatchesSeededCosts(t *testing.T) {
	res, err := RunSec3(Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// The microbenchmark must reproduce the paper's numbers to within a
	// few percent (only the first iteration's cold PTE differs).
	checks := map[string]float64{
		"local_cached/Xeon-HTT":     500,
		"local_uncached/Xeon-HTT":   1000,
		"remote/Xeon-HTT":           4000,
		"remote/Xeon-MP-HTT":        13500,
		"local_cached/Opteron-MP":   95,
		"local_uncached/Opteron-MP": 320,
		"remote/Opteron-MP":         2030,
	}
	for key, want := range checks {
		got, ok := res.Metrics[key]
		if !ok {
			t.Fatalf("missing metric %s", key)
		}
		if got < want*0.97 || got > want*1.03 {
			t.Errorf("%s = %.1f, want ~%.0f", key, got, want)
		}
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	res, err := RunFig2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// sf_buf must win on every platform.
	for _, plat := range tinyOptions().Platforms {
		imp := res.Metrics["improvement_pct/"+plat.Name]
		if imp <= 0 {
			t.Errorf("%s: sf_buf did not win (%.1f%%)", plat.Name, imp)
		}
	}
	// The MP Xeon must gain more than the Opteron (mapping changes cost
	// more on i386 without a direct map).
	if res.Metrics["improvement_pct/Xeon-MP"] <= res.Metrics["improvement_pct/Opteron-MP"] {
		t.Error("Xeon-MP should gain more than Opteron-MP")
	}
}

func TestFig3SFBufEliminatesInvalidations(t *testing.T) {
	res, err := RunFig3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Metrics["local/Xeon-MP/sf_buf"]; v != 0 {
		t.Errorf("sf_buf local invalidations = %v, want 0", v)
	}
	if v := res.Metrics["remote/Xeon-MP/sf_buf"]; v != 0 {
		t.Errorf("sf_buf remote invalidations = %v, want 0", v)
	}
	if v := res.Metrics["local/Xeon-MP/original"]; v == 0 {
		t.Error("original kernel should issue local invalidations")
	}
	if v := res.Metrics["remote/Xeon-MP/original"]; v == 0 {
		t.Error("original kernel should issue remote invalidations")
	}
}

func TestFig4PrivateSharedEquivalentWhenCached(t *testing.T) {
	res, err := runDDBandwidth(tinyOptions(), 128<<20, "fig4")
	if err != nil {
		t.Fatal(err)
	}
	// Disk fits the cache: private and shared must perform identically
	// (the paper's observation), and both beat the original.
	p := res.Metrics["private_mbps/Xeon-MP"]
	s := res.Metrics["shared_mbps/Xeon-MP"]
	o := res.Metrics["original_mbps/Xeon-MP"]
	if rel := (p - s) / p; rel > 0.02 || rel < -0.02 {
		t.Errorf("private %.0f vs shared %.0f MB/s: should be equivalent", p, s)
	}
	if p <= o {
		t.Errorf("sf_buf (%.0f) should beat original (%.0f)", p, o)
	}
}

func TestFig7PrivateEliminatesRemotes(t *testing.T) {
	res, err := runDDInvalidations(tinyOptions(), 512<<20, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Metrics["remote/Xeon-MP/sf_buf: private"]; v != 0 {
		t.Errorf("private mappings issued %v remote invalidations, want 0", v)
	}
	if v := res.Metrics["remote/Xeon-MP/sf_buf: shared"]; v == 0 {
		t.Error("shared mappings under misses must issue remote invalidations")
	}
	// Both sf_buf configs still pay local invalidations on misses.
	if v := res.Metrics["local/Xeon-MP/sf_buf: private"]; v == 0 {
		t.Error("cache misses must cost local invalidations")
	}
}

func TestFig8PostMarkShape(t *testing.T) {
	res, err := RunFig8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range tinyOptions().Platforms {
		if imp := res.Metrics["improvement_pct/"+plat.Name]; imp <= 0 {
			t.Errorf("%s: sf_buf did not win PostMark (%.1f%%)", plat.Name, imp)
		}
		if tps := res.Metrics["sfbuf_tps/"+plat.Name]; tps <= 0 {
			t.Errorf("%s: zero TPS", plat.Name)
		}
	}
}

func TestFig11LargeMTUGainsExceedSmall(t *testing.T) {
	o := tinyOptions()
	large, err := runNetperfBandwidth(o, 16<<10, "fig11")
	if err != nil {
		t.Fatal(err)
	}
	small, err := runNetperfBandwidth(o, 1500, "fig12")
	if err != nil {
		t.Fatal(err)
	}
	// "the performance improvement is higher when using the sf_buf
	// interface under this scenario [large MTU]"
	for _, plat := range o.Platforms {
		l := large.Metrics["improvement_pct/"+plat.Name]
		s := small.Metrics["improvement_pct/"+plat.Name]
		if l <= s {
			t.Errorf("%s: large MTU gain (%.1f%%) should exceed small (%.1f%%)", plat.Name, l, s)
		}
	}
}

func TestFig19HitRateDropsWithSmallCache(t *testing.T) {
	o := Options{Scale: 0.004}
	res, err := RunFig19(o)
	if err != nil {
		t.Fatal(err)
	}
	big := res.Metrics["hitrate_on/64K cache entries"]
	small := res.Metrics["hitrate_on/6K cache entries"]
	if big <= small {
		t.Errorf("hit rates: big cache %.2f <= small cache %.2f", big, small)
	}
	if small < 0.3 {
		t.Errorf("small-cache hit rate %.2f implausibly low (Zipf locality should help)", small)
	}
}

func TestFig20AccessedBitEffect(t *testing.T) {
	o := Options{Scale: 0.004}
	res, err := RunFig20(o)
	if err != nil {
		t.Fatal(err)
	}
	// With the small cache, disabling checksum offload must increase
	// invalidations: touched pages defeat the accessed-bit optimization.
	on := res.Metrics["local/6K cache entries/offload=on"]
	off := res.Metrics["local/6K cache entries/offload=off"]
	if off <= on {
		t.Errorf("offload off (%v locals) should exceed on (%v)", off, on)
	}
}

func TestScaleShardedBeatsGlobalOnShootdowns(t *testing.T) {
	res, err := RunScale(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sharded := res.Metrics["remote_per_kop/sf_buf sharded"]
	global := res.Metrics["remote_per_kop/sf_buf global-lock"]
	orig := res.Metrics["remote_per_kop/original"]
	if global <= 0 || orig <= 0 {
		t.Fatalf("churn must make the global cache (%v) and original kernel (%v) shoot down", global, orig)
	}
	// Batching must coalesce teardown rounds by a wide margin: at least
	// 4x fewer IPI rounds per op than the per-miss global design.
	if sharded*4 > global {
		t.Fatalf("sharded remote rounds/1k ops = %v, want <= 1/4 of global %v", sharded, global)
	}
	if ipiS, ipiG := res.Metrics["ipis_per_kop/sf_buf sharded"], res.Metrics["ipis_per_kop/sf_buf global-lock"]; ipiS >= ipiG {
		t.Fatalf("sharded IPIs/1k ops = %v, want below global %v", ipiS, ipiG)
	}
	if co := res.Metrics["coalesce/sf_buf sharded"]; co < 2 {
		t.Fatalf("coalescing factor = %v, want >= 2 invalidations per flush", co)
	}
}

func TestScaleBatchRowsAmortizeLocks(t *testing.T) {
	res, err := RunScale(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	single := res.Metrics["locks_per_op/sf_buf sharded"]
	batch := res.Metrics["locks_per_op/sf_buf sharded batch"]
	if single <= 0 || batch <= 0 {
		t.Fatalf("lock metrics missing: single %v, batch %v", single, batch)
	}
	// The vectored path's whole point: at least half the lock round
	// trips per page of the single-page path.
	if batch*2 > single {
		t.Fatalf("sharded batch locks/op = %v, want <= half of single-page %v", batch, single)
	}
	// And it must not regress shootdown behaviour.  The churn is
	// genuinely concurrent, so reclaim timing wobbles a few percent
	// run to run; the deterministic bound lives in the sfbuf package's
	// TestVectoredLockAndShootdownEconomy.
	if r, s := res.Metrics["remote_per_kop/sf_buf sharded batch"], res.Metrics["remote_per_kop/sf_buf sharded"]; r > s*1.1 {
		t.Fatalf("batch remote rounds/1k = %v, want <= 1.1x single-page %v", r, s)
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{
		ID:      "figX",
		Title:   "test table",
		Columns: []string{"A", "BBBB"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	out := r.Render()
	for _, want := range []string{"figX", "test table", "BBBB", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScalingHelpers(t *testing.T) {
	o := Options{Scale: 0.1}
	if got := o.scaleInt(1000, 1); got != 100 {
		t.Fatalf("scaleInt = %d", got)
	}
	if got := o.scaleInt(1000, 500); got != 500 {
		t.Fatalf("floor not applied: %d", got)
	}
	if got := o.scaleInt64(1<<30, 1); got != 1<<30/10 {
		t.Fatalf("scaleInt64 = %d", got)
	}
	zero := Options{}
	if got := zero.scaleInt(42, 1); got != 42 {
		t.Fatalf("zero scale should mean 1.0, got %d", got)
	}
}
