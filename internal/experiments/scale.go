package experiments

import (
	"fmt"
	"sync"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/kernel"
	"sfbuf/internal/pmap"
	"sfbuf/internal/vm"
)

func init() {
	register("scale", RunScale)
}

// RunScale goes beyond the paper: it measures the mapping cache itself
// under multiprocessor contention, comparing the sharded per-CPU engine
// against the paper's global-lock cache and the original kernel.  Every
// CPU churns shared Alloc/touch/Free cycles over a working set larger
// than the cache, the worst case for the Section 4.2 design: each miss
// replaces an accessed mapping, so the global cache pays one shootdown
// IPI round per miss, while the sharded cache batches the same teardown
// debt into one ranged round per reclaim batch.
//
// Reported per variant: hit rate, local invalidations, remote IPI rounds
// and IPIs delivered per 1000 operations, lock round trips per operation,
// page-table walks and TLB entries filled per operation (the touch is
// through the honest MMU, so walk economy shows up here), and the
// shootdown-queue coalescing factor (invalidations retired per flush).
// Each engine appears four times: churning one page at a time, churning
// the same pages through the vectored AllocBatch/FreeBatch calls in runs
// of ScaleBatch — the lock column is where the vectored fast path shows
// up — churning them as contiguous AllocRun windows read under ranged
// translation, where the walks column collapses, and churning them
// through a per-consumer policy handle (the adaptive rows), which routes
// each extent the way the converted subsystems would.
func RunScale(o Options) (*Result, error) {
	res := &Result{
		ID:    "scale",
		Title: "Contended Alloc/Free: sharded vs. global-lock vs. original (Xeon 4-way)",
		Columns: []string{"variant", "ops", "hit rate", "local/1k ops",
			"remote rounds/1k ops", "IPIs/1k ops", "locks/op", "rlocks/op",
			"rIPIs/op", "walks/op", "tlb/op", "coalesce", "contig%", "promo/s",
			"fast%/op"},
		Notes: []string{
			"working set is 4x the cache so every shared reuse of the global cache pays a shootdown round",
			"coalesce = invalidations retired per batched flush (sharded engine only)",
			"walks/op = page-table walks per page touched; run rows pay one walk per contiguous run",
			"tlb/op = TLB entries filled per page touched (base + superpage entries)",
			"frag rows churn FRESH physical extents after a fragmentation-churn warmup; contig% is the fraction served physically contiguous (buddy allocator coalesces, LIFO never recovers)",
			"defrag rows run the shaped ~70%-occupancy steady-churn driver (experiment \"defrag\"): superpage extents under residency that defeats plain coalescing, migration on vs. off; promo/s counts superpage promotions per simulated second",
			"rlocks/op and rIPIs/op are cross-package lock acquisitions and IPI deliveries; zero on the flat single-package machine",
			"N-socket rows run the same shared churn on 2- and 4-package NUMA Xeons, socket-homed vs. hash-striped state",
			"tier rows run the tiered-memory zipfian serving arms (experiment \"tier\"); fast%/op is the fraction of served pages found fast-tier resident",
		},
	}

	plat := arch.XeonMPHTT()
	entries := o.scaleInt(256, 64)
	ops := o.scaleInt(200000, 4000)
	// Cap the batch so every CPU can hold a full run concurrently with
	// half the cache to spare: otherwise all CPUs could sleep mid-batch
	// holding partial runs with nobody left to free.
	batch := ScaleBatch
	if max := entries / (2 * plat.NumCPUs); batch > max {
		batch = max
	}
	if batch < 1 {
		batch = 1
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("batch rows churn the same pages through AllocBatch/FreeBatch in runs of %d", batch),
		fmt.Sprintf("run rows churn them as contiguous AllocRun windows of %d under ranged translation", batch),
		"adaptive rows route each extent through a consumer handle (the per-consumer contiguity policy), as the converted subsystems do")

	type variant struct {
		name string
		cfg  kernel.Config
	}
	base := kernel.Config{
		Platform:     plat,
		PhysPages:    8*entries + 128,
		Backed:       false,
		CacheEntries: entries,
	}
	variants := []variant{
		{"sf_buf sharded", func() kernel.Config {
			c := base
			c.Mapper = kernel.SFBuf
			c.Cache = kernel.CacheSharded
			return c
		}()},
		{"sf_buf global-lock", func() kernel.Config {
			c := base
			c.Mapper = kernel.SFBuf
			c.Cache = kernel.CacheGlobal
			return c
		}()},
		{"original", func() kernel.Config {
			c := base
			c.Mapper = kernel.OriginalKernel
			return c
		}()},
	}

	for _, mode := range []string{"single", "batch", "run", "adaptive", "frag"} {
		for _, v := range variants {
			name := v.name
			if mode != "single" {
				name = v.name + " " + mode
			}
			k, err := kernel.Boot(v.cfg)
			if err != nil {
				return nil, err
			}
			var done int
			contigCol := "-"
			if mode == "frag" {
				// The frag rows allocate their extents fresh from the
				// churned physical allocator instead of a boot-time pool.
				if err := FragmentPhys(k); err != nil {
					return nil, fmt.Errorf("scale %s warmup: %w", name, err)
				}
				k.Reset()
				var frac float64
				done, frac, err = ChurnFrag(k, ops, batch, true)
				if err == nil {
					contigCol = fmt.Sprintf("%.2f", frac)
					res.SetMetric("contig_frac/"+name, frac)
				}
			} else {
				var pages []*vm.Page
				pages, err = k.M.Phys.AllocN(4 * entries)
				if err != nil {
					return nil, err
				}
				switch mode {
				case "batch":
					done, err = ChurnBatch(k, pages, ops, batch)
				case "run":
					done, err = ChurnRun(k, pages, ops, batch)
				case "adaptive":
					done, err = ChurnAuto(k, pages, ops, batch)
				default:
					done, err = Churn(k, pages, ops)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("scale %s: %w", name, err)
			}
			scaleRow(res, k, name, done, contigCol, "-", "-")
		}
	}

	// Idle-gap rows: the same vectored churn on the sharded engine, but
	// with periodic idle ticks between rounds — once with the background
	// reclaim daemon riding the ticks, once with the ticks advancing time
	// only.  Steady-state economy must match the plain batch row (the
	// daemon runs exclusively against idle time); the reclaim experiment
	// measures what the daemon buys the first alloc after each gap.
	for _, ir := range []struct {
		name string
		wm   int
	}{
		{"sf_buf sharded idle", -1},
		{"sf_buf sharded idle+daemon", 0},
	} {
		cfg := variants[0].cfg
		cfg.ReclaimWatermark = ir.wm
		k, err := kernel.Boot(cfg)
		if err != nil {
			return nil, err
		}
		pages, err := k.M.Phys.AllocN(4 * entries)
		if err != nil {
			return nil, err
		}
		done, err := ChurnIdle(k, pages, ops, batch, 8, 1<<16)
		if err != nil {
			return nil, fmt.Errorf("scale %s: %w", ir.name, err)
		}
		scaleRow(res, k, ir.name, done, "-", "-", "-")
	}

	// Multi-package rows: the same shared churn on 2- and 4-socket NUMA
	// Xeons, sharded engine, once with the mapping state socket-homed and
	// once hash-striped.  The rlocks/op and rIPIs/op columns — zero
	// everywhere above — light up here: the striped layout's shard homes
	// fall round-robin across packages, so most lock round trips cross the
	// interconnect; the homed layout keeps them inside the package except
	// where the shared working set genuinely crosses sockets.  The numa
	// experiment isolates the placement effect on a socket-local workload;
	// these rows show it under the scale churn's worst-case sharing.
	for _, sockets := range []int{2, 4} {
		for _, hp := range []struct {
			name   string
			homing kernel.HomingPolicy
		}{
			{"homed", kernel.HomingAuto},
			{"striped", kernel.HomingOff},
		} {
			cfg := kernel.Config{
				Platform:     arch.XeonNUMA(sockets, 2),
				Mapper:       kernel.SFBuf,
				Cache:        kernel.CacheSharded,
				PhysPages:    8*entries + 128,
				CacheEntries: entries,
				Sockets:      sockets,
				Homing:       hp.homing,
			}
			k, err := kernel.Boot(cfg)
			if err != nil {
				return nil, err
			}
			pages, err := k.M.Phys.AllocN(4 * entries)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("sf_buf sharded %s %d-socket", hp.name, sockets)
			done, err := Churn(k, pages, ops)
			if err != nil {
				return nil, fmt.Errorf("scale %s: %w", name, err)
			}
			scaleRow(res, k, name, done, "-", "-", "-")
		}
	}

	// Defrag rows: the same steady-churn driver the defrag experiment
	// measures, on the shaped ~70%-occupancy pool whose scattered
	// residents defeat plain buddy coalescing.  The contig% and promo/s
	// columns — frozen at 0 on the no-defrag row — show migration turning
	// the shaped pool back into a superpage server; the shared economy
	// columns show what the steady churn pays for it (nothing measurable:
	// evacuations ride idle ticks and contiguity misses).
	defragRounds := o.scaleInt(40960, 8192) / (DefragChurnOps + pmap.SuperpagePages)
	if defragRounds < 4 {
		defragRounds = 4
	}
	for _, dr := range []struct {
		name string
		pol  kernel.MigratePolicy
	}{
		{"sf_buf sharded defrag", kernel.MigrateOn},
		{"sf_buf sharded no-defrag", kernel.MigrateOff},
	} {
		arm, err := RunDefragArm(dr.pol, defragRounds)
		if err != nil {
			return nil, fmt.Errorf("scale %s: %w", dr.name, err)
		}
		scaleRow(res, arm.K, dr.name, arm.Done,
			fmt.Sprintf("%.2f", arm.ContigFrac), fmtF(arm.PromoPerSec), "-")
		res.SetMetric("contig_frac/"+dr.name, arm.ContigFrac)
		res.SetMetric("promo_per_sec/"+dr.name, arm.PromoPerSec)
	}

	// Tier rows: the tiered-memory zipfian serving arms (the tier
	// experiment's headline comparison) under the scale table's shared
	// economy columns.  The fast%/op column — dashed everywhere above —
	// lights up here: hinted placement parks the popular extents fast-tier
	// resident, the oblivious arm serves them from wherever allocation
	// order left them.
	tierAcc := o.scaleInt(12000, 1600)
	tierWarm := 400 + tierAcc/10
	for _, tr := range []struct {
		name  string
		hints kernel.TierHintPolicy
	}{
		{"sf_buf sharded tier hinted", kernel.TierHintOn},
		{"sf_buf sharded tier oblivious", kernel.TierHintOff},
	} {
		arm, err := RunTierArm(tr.hints, "zipf", tierWarm, tierAcc)
		if err != nil {
			return nil, fmt.Errorf("scale %s: %w", tr.name, err)
		}
		ff := tierFastFrac(arm.Stats)
		scaleRow(res, arm.K, tr.name, arm.Pages, "-", "-",
			fmt.Sprintf("%.2f", ff))
		res.SetMetric("fast_frac/"+tr.name, ff)
		res.SetMetric("cyc_per_page/"+tr.name, arm.CycPerPage)
	}
	return res, nil
}

// scaleRow appends one engine's churn economy to the scale result: the
// shared row/metric emission for the variant grid, the idle-gap, NUMA
// and defrag rows.
func scaleRow(res *Result, k *kernel.Kernel, name string, done int, contigCol, promoCol, fastCol string) {
	s := k.M.SnapshotCounters()
	st := k.Map.Stats()
	perK := func(n uint64) float64 { return float64(n) * 1000 / float64(done) }
	coalesce := 0.0
	if s.BatchedFlushes > 0 {
		coalesce = float64(s.BatchedInv) / float64(s.BatchedFlushes)
	}
	locksPerOp := float64(s.LockAcq) / float64(done)
	rlocksPerOp := float64(s.RemoteLockAcq) / float64(done)
	ripisPerOp := float64(s.RemoteIPIs) / float64(done)
	walksPerOp := float64(s.PTWalks) / float64(done)
	var tlbTouched uint64
	for cpu := 0; cpu < k.M.NumCPUs(); cpu++ {
		ts := k.M.CPU(cpu).TLBStats()
		tlbTouched += ts.Inserts + ts.LargeInserts
	}
	tlbPerOp := float64(tlbTouched) / float64(done)
	res.Rows = append(res.Rows, []string{
		name, fmt.Sprintf("%d", done), fmt.Sprintf("%.2f", st.HitRate()),
		fmtF(perK(s.LocalInv)), fmtF(perK(s.RemoteInvIssued)),
		fmtF(perK(s.IPIsDelivered)), fmt.Sprintf("%.2f", locksPerOp),
		fmt.Sprintf("%.4f", rlocksPerOp), fmt.Sprintf("%.4f", ripisPerOp),
		fmt.Sprintf("%.3f", walksPerOp), fmt.Sprintf("%.3f", tlbPerOp),
		fmtF(coalesce), contigCol, promoCol, fastCol,
	})
	res.SetMetric("remote_per_kop/"+name, perK(s.RemoteInvIssued))
	res.SetMetric("ipis_per_kop/"+name, perK(s.IPIsDelivered))
	res.SetMetric("local_per_kop/"+name, perK(s.LocalInv))
	res.SetMetric("hitrate/"+name, st.HitRate())
	res.SetMetric("coalesce/"+name, coalesce)
	res.SetMetric("locks_per_op/"+name, locksPerOp)
	res.SetMetric("remote_locks_per_op/"+name, rlocksPerOp)
	res.SetMetric("remote_ipis_per_op/"+name, ripisPerOp)
	res.SetMetric("walks_per_op/"+name, walksPerOp)
	res.SetMetric("tlb_per_op/"+name, tlbPerOp)
}

// ScaleBatch is the run length the scale experiment's batch rows use —
// also the batch size of the acceptance benchmark BenchmarkAllocBatch.
const ScaleBatch = 16

// Churn runs roughly ops shared Alloc/touch/Free cycles spread across
// every CPU, one goroutine per CPU, each walking the working set at a
// different stride so frames stay spread across shards and CPUs genuinely
// contend.  It returns the operation count actually executed (ops rounded
// down to a multiple of the CPU count).  BenchmarkAllocContended drives
// the same loop, so the benchmark and the scale experiment cannot drift
// apart.
func Churn(k *kernel.Kernel, pages []*vm.Page, ops int) (int, error) {
	ncpu := k.M.NumCPUs()
	n := ops / ncpu
	var wg sync.WaitGroup
	errs := make([]error, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			for i := 0; i < n; i++ {
				pg := pages[(i*(2*cpu+1)+cpu*7)%len(pages)]
				b, err := k.Map.Alloc(ctx, pg, 0)
				if err != nil {
					errs[cpu] = err
					return
				}
				// Touch through the honest MMU so the accessed bit is
				// set and the coherence protocol is load-bearing.
				if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
					errs[cpu] = err
					return
				}
				k.Map.Free(ctx, b)
			}
		}(cpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	// Guard the simulation's invariant: contention must never corrupt a
	// mapping (stale TLB reads fault or return wrong frames upstream).
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return n * ncpu, nil
}

// ChurnBatch is the vectored counterpart of Churn: every CPU churns the
// same shared working set, but maps batch pages per AllocBatch, touches
// each through the honest MMU, and releases them with one FreeBatch.  The
// returned count is in pages (single-page-op equivalents), so rows and
// metrics stay directly comparable with Churn's.  BenchmarkAllocBatch
// drives this loop, keeping the benchmark and the experiment in lockstep.
func ChurnBatch(k *kernel.Kernel, pages []*vm.Page, ops, batch int) (int, error) {
	ncpu := k.M.NumCPUs()
	rounds := ops / ncpu / batch
	var wg sync.WaitGroup
	errs := make([]error, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			scratch := make([]*vm.Page, batch)
			for i := 0; i < rounds; i++ {
				for j := 0; j < batch; j++ {
					scratch[j] = pages[(i*batch*(2*cpu+1)+j*7+cpu*11)%len(pages)]
				}
				bufs, err := k.Map.AllocBatch(ctx, scratch, 0)
				if err != nil {
					errs[cpu] = err
					return
				}
				for _, b := range bufs {
					if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
						errs[cpu] = err
						return
					}
				}
				k.Map.FreeBatch(ctx, bufs)
			}
		}(cpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return rounds * ncpu * batch, nil
}

// ChurnIdle is ChurnBatch with traffic lulls: after every gapEvery rounds
// each CPU goes idle for gap cycles (kernel.Idle — the background daemon's
// tick when one is enabled).  It is the scale experiment's bursty-workload
// row and the -race stressor for daemon-vs-churn interleaving: reclaim
// passes on idling CPUs race allocation misses on busy ones.
func ChurnIdle(k *kernel.Kernel, pages []*vm.Page, ops, batch, gapEvery int, gap cycles.Cycles) (int, error) {
	ncpu := k.M.NumCPUs()
	rounds := ops / ncpu / batch
	var wg sync.WaitGroup
	errs := make([]error, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			scratch := make([]*vm.Page, batch)
			for i := 0; i < rounds; i++ {
				for j := 0; j < batch; j++ {
					scratch[j] = pages[(i*batch*(2*cpu+1)+j*7+cpu*11)%len(pages)]
				}
				bufs, err := k.Map.AllocBatch(ctx, scratch, 0)
				if err != nil {
					errs[cpu] = err
					return
				}
				for _, b := range bufs {
					if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
						errs[cpu] = err
						return
					}
				}
				k.Map.FreeBatch(ctx, bufs)
				if gapEvery > 0 && (i+1)%gapEvery == 0 {
					k.Idle(cpu, gap)
				}
			}
		}(cpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return rounds * ncpu * batch, nil
}

// ChurnRun is the contiguous-run counterpart of ChurnBatch: every CPU
// maps runLen pages per AllocRun, sweeps the whole window through the
// honest MMU with ONE ranged translation (kcopy-style: one page-table
// walk per contiguous PTE run, versus one per page on the scattered
// paths), and releases it with one FreeRun.  Fallback engines return
// scattered runs, which are swept page by page — exactly what their
// mappings cost.  The returned count is in pages, comparable with Churn
// and ChurnBatch.  BenchmarkAllocRun drives this loop, keeping the
// benchmark and the experiment in lockstep.
func ChurnRun(k *kernel.Kernel, pages []*vm.Page, ops, runLen int) (int, error) {
	ncpu := k.M.NumCPUs()
	rounds := ops / ncpu / runLen
	var wg sync.WaitGroup
	errs := make([]error, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			scratch := make([]*vm.Page, runLen)
			var got []*vm.Page
			for i := 0; i < rounds; i++ {
				for j := 0; j < runLen; j++ {
					scratch[j] = pages[(i*runLen*(2*cpu+1)+j*7+cpu*11)%len(pages)]
				}
				r, err := k.Map.AllocRun(ctx, scratch, 0)
				if err != nil {
					errs[cpu] = err
					return
				}
				if r.Contiguous() {
					got, err = k.Pmap.TranslateRun(ctx, r.Base(), r.Len(), false, got[:0])
					if err != nil {
						errs[cpu] = err
						return
					}
				} else {
					for j := 0; j < r.Len(); j++ {
						if _, err := k.Pmap.Translate(ctx, r.KVA(j), false); err != nil {
							errs[cpu] = err
							return
						}
					}
				}
				k.Map.FreeRun(ctx, r)
			}
		}(cpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return rounds * ncpu * runLen, nil
}
