package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/memdisk"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/workloads"
)

func init() {
	register("fig4", func(o Options) (*Result, error) { return runDDBandwidth(o, 128<<20, "fig4") })
	register("fig5", func(o Options) (*Result, error) { return runDDInvalidations(o, 128<<20, "fig5") })
	register("fig6", func(o Options) (*Result, error) { return runDDBandwidth(o, 512<<20, "fig6") })
	register("fig7", func(o Options) (*Result, error) { return runDDInvalidations(o, 512<<20, "fig7") })
}

// ddConfig names one of the three disk-dump configurations of Figures 4-7.
type ddConfig struct {
	label   string
	mapper  kernel.MapperKind
	private bool
}

var ddConfigs = []ddConfig{
	{"sf_buf: private", kernel.SFBuf, true},
	{"sf_buf: shared", kernel.SFBuf, false},
	{"original", kernel.OriginalKernel, false},
}

// ddRun performs one dd measurement: populate the disk (which doubles as
// cache warmup), reset counters, then read the disk sequentially in 64 KB
// blocks.
func ddRun(o Options, plat arch.Platform, cfg ddConfig, diskBytes int64) (measurement, error) {
	key := fmt.Sprintf("dd/%s/%s/%d/%g", plat.Name, cfg.label, diskBytes, o.Scale)
	return memoizedRun(key, func() (measurement, error) { return ddRun1(o, plat, cfg, diskBytes) })
}

func ddRun1(o Options, plat arch.Platform, cfg ddConfig, diskBytes int64) (measurement, error) {
	// Scale the mapping cache, then derive the disk from it so the
	// paper's exact ratios hold at every scale: the 128 MB disk is half
	// the 64K-entry cache's 256 MB reach (fits entirely); the 512 MB
	// disk is twice it (~100% misses).
	entries := o.scaleInt(sfbuf.DefaultI386Entries, 2048)
	var disk int64
	if diskBytes <= 128<<20 {
		disk = int64(entries) / 2 * 4096
	} else {
		disk = int64(entries) * 2 * 4096
	}

	k, err := kernel.Boot(kernel.Config{
		// Figure reproduction pins the paper's cache engine.
		Cache:        kernel.CacheGlobal,
		Platform:     plat,
		Mapper:       cfg.mapper,
		PhysPages:    int(disk>>12) + 128,
		Backed:       false,
		CacheEntries: entries,
	})
	if err != nil {
		return measurement{}, err
	}
	d, err := memdisk.New(k, disk)
	if err != nil {
		return measurement{}, err
	}
	d.SetPrivateMappings(cfg.private)

	ctx := k.Ctx(0)
	if err := workloads.PopulateDisk(ctx, d, 64<<10); err != nil {
		return measurement{}, err
	}
	k.Reset()

	moved, err := workloads.DD(k, d, workloads.DDConfig{BlockSize: 64 << 10})
	if err != nil {
		return measurement{}, err
	}
	m := measurement{
		plat:    plat,
		kernel:  cfg.label,
		elapsed: serializedCycles(k.M),
		bytes:   moved,
	}
	m.snapshotInto(k)
	return m, nil
}

func ddTitle(diskBytes int64) string {
	return fmt.Sprintf("Disk dump of a %d MB memory disk (64 KB blocks)", diskBytes>>20)
}

func runDDBandwidth(o Options, diskBytes int64, id string) (*Result, error) {
	res := &Result{
		ID:      id,
		Title:   ddTitle(diskBytes) + ": bandwidth in MB/s",
		Columns: []string{"Platform", "sf_buf private", "sf_buf shared", "original", "best improvement"},
	}
	if diskBytes == 128<<20 {
		res.Notes = append(res.Notes,
			"paper: disk fits the 64K-entry cache; private vs shared indistinguishable; up to +51% over original (Opteron +37%)")
	} else {
		res.Notes = append(res.Notes,
			"paper: disk exceeds the cache (~100% misses); the private option eliminates remote invalidations and wins on MP Xeons")
	}
	for _, plat := range o.platforms() {
		o.logf("  %s: %s", id, plat.Name)
		var ms []measurement
		for _, cfg := range ddConfigs {
			m, err := ddRun(o, plat, cfg, diskBytes)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		best := ms[0].mbps()
		if ms[1].mbps() > best {
			best = ms[1].mbps()
		}
		res.Rows = append(res.Rows, []string{
			plat.Name, fmtF(ms[0].mbps()), fmtF(ms[1].mbps()), fmtF(ms[2].mbps()), pct(best, ms[2].mbps()),
		})
		res.SetMetric("private_mbps/"+plat.Name, ms[0].mbps())
		res.SetMetric("shared_mbps/"+plat.Name, ms[1].mbps())
		res.SetMetric("original_mbps/"+plat.Name, ms[2].mbps())
		res.SetMetric("improvement_pct/"+plat.Name, pctVal(best, ms[2].mbps()))
	}
	return res, nil
}

func runDDInvalidations(o Options, diskBytes int64, id string) (*Result, error) {
	res := &Result{
		ID:      id,
		Title:   ddTitle(diskBytes) + ": local and remote TLB invalidations issued",
		Columns: []string{"Platform", "Config", "Local", "Remote"},
	}
	for _, plat := range o.platforms() {
		o.logf("  %s: %s", id, plat.Name)
		for _, cfg := range ddConfigs {
			m, err := ddRun(o, plat, cfg, diskBytes)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				plat.Name, cfg.label, fmtU(m.localInv), fmtU(m.remoteInv),
			})
			res.SetMetric(fmt.Sprintf("local/%s/%s", plat.Name, cfg.label), float64(m.localInv))
			res.SetMetric(fmt.Sprintf("remote/%s/%s", plat.Name, cfg.label), float64(m.remoteInv))
		}
	}
	return res, nil
}
