package experiments

import (
	"testing"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
)

// Canonical acceptance counts: enough accesses that the EWMAs, the
// keeper's rate estimates and the placement all reach steady state
// inside the warmup, and the measured window dwarfs any residual
// migration transient.
const (
	tierTestWarmup   = 800
	tierTestAccesses = 4000
)

// tierTestArms runs both arms of one workload.
func tierTestArms(t *testing.T, workload string) (hinted, oblivious *TierArm) {
	t.Helper()
	h, err := RunTierArm(kernel.TierHintOn, workload, tierTestWarmup, tierTestAccesses)
	if err != nil {
		t.Fatalf("hinted/%s: %v", workload, err)
	}
	o, err := RunTierArm(kernel.TierHintOff, workload, tierTestWarmup, tierTestAccesses)
	if err != nil {
		t.Fatalf("oblivious/%s: %v", workload, err)
	}
	return h, o
}

// TestTierEconomy is the tiered-memory acceptance criterion.  On the
// zipfian extent-popularity workload — fast tier a quarter of the
// working set — consumer-hinted placement must serve a page in at most
// two thirds of the tier-oblivious cycles.  On the uniform adversarial
// workload, where no placement can win, the hinted arm must cost within
// 10% of the oblivious one: the hot-threshold and admission gates must
// keep the keeper from thrashing copies it cannot amortize.
func TestTierEconomy(t *testing.T) {
	h, o := tierTestArms(t, "zipf")
	t.Logf("zipf: hinted %.1f cyc/page (fast %.2f, %d promoted) vs oblivious %.1f (fast %.2f)",
		h.CycPerPage, tierFastFrac(h.Stats), h.Stats.PromotedPages,
		o.CycPerPage, tierFastFrac(o.Stats))
	if h.CycPerPage > o.CycPerPage*2/3 {
		t.Errorf("zipf: hinted %.1f cyc/page > 2/3 of oblivious %.1f", h.CycPerPage, o.CycPerPage)
	}
	if h.Stats.PromotedPages == 0 {
		t.Error("zipf: hinted arm promoted nothing")
	}
	if hf, of := tierFastFrac(h.Stats), tierFastFrac(o.Stats); hf <= of {
		t.Errorf("zipf: hinted fast-tier hit rate %.2f not above oblivious %.2f", hf, of)
	}

	h, o = tierTestArms(t, "uniform")
	t.Logf("uniform: hinted %.1f cyc/page (%d promoted) vs oblivious %.1f",
		h.CycPerPage, h.Stats.PromotedPages, o.CycPerPage)
	if h.CycPerPage > o.CycPerPage*1.10 {
		t.Errorf("uniform: hinted %.1f cyc/page > 110%% of oblivious %.1f — the keeper is thrashing",
			h.CycPerPage, o.CycPerPage)
	}
}

// TestTierDeterminism runs the hinted zipfian arm twice and demands
// identical cycle counts and migration totals: the keeper's victim
// choices (map iteration!) and the driver's access sequence must be
// fully deterministic, because the tier experiment publishes its numbers
// in the byte-compared figure output.
func TestTierDeterminism(t *testing.T) {
	a, err := RunTierArm(kernel.TierHintOn, "zipf", 400, 1500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTierArm(kernel.TierHintOn, "zipf", 400, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if a.CycPerPage != b.CycPerPage {
		t.Errorf("cyc/page not deterministic: %v vs %v", a.CycPerPage, b.CycPerPage)
	}
	if a.Stats.PromotedPages != b.Stats.PromotedPages || a.Stats.DemotedPages != b.Stats.DemotedPages {
		t.Errorf("migration totals not deterministic: %d/%d vs %d/%d",
			a.Stats.PromotedPages, a.Stats.DemotedPages, b.Stats.PromotedPages, b.Stats.DemotedPages)
	}
	if a.Stats.SlowMemCycles != b.Stats.SlowMemCycles {
		t.Errorf("slow-tier surcharge not deterministic: %d vs %d",
			a.Stats.SlowMemCycles, b.Stats.SlowMemCycles)
	}
}

// TestTierSingleTierIdentical proves the default configuration really is
// untiered: a Tiers-less boot of the tier experiment's kernel reports
// Tiered=false, zero fast frames, and charges no slow-tier surcharge.
func TestTierSingleTierIdentical(t *testing.T) {
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMPHTT(),
		Mapper:       kernel.SFBuf,
		Cache:        kernel.CacheSharded,
		PhysPages:    TierPhysPages,
		Backed:       true,
		CacheEntries: 512,
		PhysBuddy:    kernel.PhysBuddyOn,
		Reserv:       kernel.ReservOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.TierStats(); st.Tiered {
		t.Fatalf("untiered boot reports Tiered: %+v", st)
	}
	if k.TierHintsEnabled() {
		t.Fatal("untiered boot has a tier keeper")
	}
	extents, _, err := AllocTierExtents(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChurnTier(k, "zipf", extents, 500); err != nil {
		t.Fatal(err)
	}
	if sc := k.M.SnapshotCounters().SlowMemCycles; sc != 0 {
		t.Fatalf("untiered run charged %d slow-tier cycles", sc)
	}
}
