package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/netstack"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/workloads"
)

func init() {
	register("fig11", func(o Options) (*Result, error) { return runNetperfBandwidth(o, netstack.MTULarge, "fig11") })
	register("fig12", func(o Options) (*Result, error) { return runNetperfBandwidth(o, netstack.MTUSmall, "fig12") })
	register("fig13", func(o Options) (*Result, error) { return runNetperfInvalidations(o, netstack.MTULarge, "fig13") })
	register("fig14", func(o Options) (*Result, error) { return runNetperfInvalidations(o, netstack.MTUSmall, "fig14") })
}

// netperfRun moves 64 MB through a loopback connection with zero-copy
// 64 KB sends at the given MTU.
func netperfRun(o Options, plat arch.Platform, mk kernel.MapperKind, mtu int) (measurement, error) {
	key := fmt.Sprintf("netperf/%s/%v/%d/%g", plat.Name, mk, mtu, o.Scale)
	return memoizedRun(key, func() (measurement, error) { return netperfRun1(o, plat, mk, mtu) })
}

func netperfRun1(o Options, plat arch.Platform, mk kernel.MapperKind, mtu int) (measurement, error) {
	k, err := kernel.Boot(kernel.Config{
		// Figure reproduction pins the paper's cache engine.
		Cache:        kernel.CacheGlobal,
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    1024,
		Backed:       false,
		CacheEntries: sfbuf.DefaultI386Entries,
	})
	if err != nil {
		return measurement{}, err
	}
	cfg := workloads.DefaultNetperf(k, mtu)
	cfg.TotalBytes = o.scaleInt64(cfg.TotalBytes, 2<<20)
	cfg.ChecksumOffload = true // the testbed NICs offload; Figures 19-20 vary this

	// Warmup round, then measure.
	warm := cfg
	warm.TotalBytes = int64(cfg.SendSize) * 4
	if _, err := workloads.Netperf(k, warm); err != nil {
		return measurement{}, err
	}
	k.Reset()

	moved, err := workloads.Netperf(k, cfg)
	if err != nil {
		return measurement{}, err
	}
	m := measurement{
		plat:    plat,
		kernel:  mk.String(),
		elapsed: serializedCycles(k.M),
		bytes:   moved,
	}
	m.snapshotInto(k)
	return m, nil
}

func netperfTitle(mtu int) string {
	if mtu >= netstack.MTULarge {
		return "Netperf throughput, large MTU (16 KB)"
	}
	return "Netperf throughput, small MTU (1500 B)"
}

func runNetperfBandwidth(o Options, mtu int, id string) (*Result, error) {
	res := &Result{
		ID:      id,
		Title:   netperfTitle(mtu) + " in Mbits/s",
		Columns: []string{"Platform", "sf_buf Mbits/s", "original Mbits/s", "improvement"},
		Notes: []string{
			"paper: improvements range ~4%..34%, larger with the large MTU",
			"(with a larger MTU, less time goes to segmentation, so mapping costs weigh more)",
		},
	}
	for _, plat := range o.platforms() {
		o.logf("  %s: %s", id, plat.Name)
		sf, err := netperfRun(o, plat, kernel.SFBuf, mtu)
		if err != nil {
			return nil, err
		}
		orig, err := netperfRun(o, plat, kernel.OriginalKernel, mtu)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			plat.Name, fmtF(sf.mbitps()), fmtF(orig.mbitps()), pct(sf.mbitps(), orig.mbitps()),
		})
		res.SetMetric("sfbuf_mbitps/"+plat.Name, sf.mbitps())
		res.SetMetric("original_mbitps/"+plat.Name, orig.mbitps())
		res.SetMetric("improvement_pct/"+plat.Name, pctVal(sf.mbitps(), orig.mbitps()))
	}
	return res, nil
}

func runNetperfInvalidations(o Options, mtu int, id string) (*Result, error) {
	res := &Result{
		ID:      id,
		Title:   netperfTitle(mtu) + ": local and remote TLB invalidations issued",
		Columns: []string{"Platform", "Kernel", "Local", "Remote"},
	}
	for _, plat := range o.platforms() {
		o.logf("  %s: %s", id, plat.Name)
		for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
			m, err := netperfRun(o, plat, mk, mtu)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				plat.Name, m.kernel, fmtU(m.localInv), fmtU(m.remoteInv),
			})
			res.SetMetric(fmt.Sprintf("local/%s/%s", plat.Name, m.kernel), float64(m.localInv))
			res.SetMetric(fmt.Sprintf("remote/%s/%s", plat.Name, m.kernel), float64(m.remoteInv))
		}
	}
	return res, nil
}
