package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/workloads"
)

func init() {
	register("fig2", RunFig2)
	register("fig3", RunFig3)
}

// pipeRun executes bw_pipe on one platform under one kernel and returns
// the measurement.  Runs are memoized: Figures 2 and 3 report the same
// measurement.
func pipeRun(o Options, plat arch.Platform, mk kernel.MapperKind) (measurement, error) {
	key := fmt.Sprintf("pipe/%s/%v/%g", plat.Name, mk, o.Scale)
	return memoizedRun(key, func() (measurement, error) { return pipeRun1(o, plat, mk) })
}

func pipeRun1(o Options, plat arch.Platform, mk kernel.MapperKind) (measurement, error) {
	k, err := kernel.Boot(kernel.Config{
		// Figure reproduction pins the paper's cache engine.
		Cache:        kernel.CacheGlobal,
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    512,
		Backed:       false,
		CacheEntries: sfbuf.DefaultI386Entries,
	})
	if err != nil {
		return measurement{}, err
	}
	cfg := workloads.DefaultBWPipe(k)
	cfg.TotalBytes = o.scaleInt64(50<<20, 1<<20)

	// Warmup pass primes the mapping cache's cold buffers, then measure.
	warm := cfg
	warm.TotalBytes = int64(cfg.ChunkSize) * 4
	if _, err := workloads.BWPipe(k, warm); err != nil {
		return measurement{}, err
	}
	k.Reset()

	moved, err := workloads.BWPipe(k, cfg)
	if err != nil {
		return measurement{}, err
	}
	m := measurement{
		plat:    plat,
		kernel:  mk.String(),
		elapsed: serializedCycles(k.M),
		bytes:   moved,
	}
	m.snapshotInto(k)
	return m, nil
}

// RunFig2 reproduces Figure 2: pipe bandwidth in MB/s for the lmbench
// bw_pipe benchmark (50 MB in 64 KB chunks) under the sf_buf and original
// kernels on all five platforms.
func RunFig2(o Options) (*Result, error) {
	res := &Result{
		ID:      "fig2",
		Title:   "Pipe bandwidth in MB/s (lmbench bw_pipe, 50 MB in 64 KB chunks)",
		Columns: []string{"Platform", "sf_buf MB/s", "original MB/s", "improvement"},
		Notes: []string{
			"paper improvements: Xeon-UP +67%, Xeon-HTT +129%, Xeon-MP +168%, Xeon-MP-HTT +113%, Opteron-MP +22%",
		},
	}
	for _, plat := range o.platforms() {
		o.logf("  fig2: %s", plat.Name)
		sf, err := pipeRun(o, plat, kernel.SFBuf)
		if err != nil {
			return nil, err
		}
		orig, err := pipeRun(o, plat, kernel.OriginalKernel)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			plat.Name, fmtF(sf.mbps()), fmtF(orig.mbps()), pct(sf.mbps(), orig.mbps()),
		})
		res.SetMetric("sfbuf_mbps/"+plat.Name, sf.mbps())
		res.SetMetric("original_mbps/"+plat.Name, orig.mbps())
		res.SetMetric("improvement_pct/"+plat.Name, pctVal(sf.mbps(), orig.mbps()))
	}
	return res, nil
}

// RunFig3 reproduces Figure 3: local and remote TLB invalidations issued
// during the pipe experiment.
func RunFig3(o Options) (*Result, error) {
	res := &Result{
		ID:      "fig3",
		Title:   "Local and remote TLB invalidations issued for the pipe experiment",
		Columns: []string{"Platform", "Kernel", "Local", "Remote"},
		Notes: []string{
			"paper: sf_buf kernel eliminates invalidations (near-100% mapping cache hits);",
			"original kernel issues one global invalidation per page transferred",
		},
	}
	for _, plat := range o.platforms() {
		o.logf("  fig3: %s", plat.Name)
		for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
			m, err := pipeRun(o, plat, mk)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				plat.Name, m.kernel, fmtU(m.localInv), fmtU(m.remoteInv),
			})
			res.SetMetric(fmt.Sprintf("local/%s/%s", plat.Name, m.kernel), float64(m.localInv))
			res.SetMetric(fmt.Sprintf("remote/%s/%s", plat.Name, m.kernel), float64(m.remoteInv))
		}
	}
	return res, nil
}
