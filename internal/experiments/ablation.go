package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/sfbuf"
)

func init() { register("ablation", RunAblation) }

// ablationConfig names one variant of the i386 mapping cache.
type ablationConfig struct {
	label string
	mode  sfbuf.Ablation
}

var ablationConfigs = []ablationConfig{
	{"full design", 0},
	{"no accessed-bit optimization", sfbuf.AblateAccessedBit},
	{"no shared sf_bufs", sfbuf.AblateSharing},
	{"no lazy teardown (eager unmap)", sfbuf.AblateLazyTeardown},
	{"all three ablated", sfbuf.AblateAccessedBit | sfbuf.AblateSharing | sfbuf.AblateLazyTeardown},
}

// RunAblation quantifies the contribution of each i386 design choice
// (DESIGN.md section 5) on a Xeon-MP running a pipe-like reuse workload:
// a working set that fits the cache, mapped, touched and unmapped in
// rotation from two CPUs.
func RunAblation(o Options) (*Result, error) {
	res := &Result{
		ID:      "ablation",
		Title:   "i386 mapping-cache design choices, ablated (Xeon-MP, reuse workload)",
		Columns: []string{"Variant", "cycles/op", "local inv/op", "remote inv/op", "hit rate"},
		Notes: []string{
			"each operation = sf_buf_alloc + one mapped access + sf_buf_free over a cache-resident working set",
			"not a paper figure: this quantifies why Section 4.2's design is shaped the way it is",
		},
	}
	iters := o.scaleInt(200000, 2000)
	const entries = 64
	const npages = 48 // fits the cache: the reuse regime the design targets

	for _, cfg := range ablationConfigs {
		o.logf("  ablation: %s", cfg.label)
		k, err := kernel.Boot(kernel.Config{
			// Figure reproduction pins the paper's cache engine.
			Cache:        kernel.CacheGlobal,
			Platform:     arch.XeonMP(),
			Mapper:       kernel.SFBuf,
			PhysPages:    npages + 64,
			CacheEntries: entries,
		})
		if err != nil {
			return nil, err
		}
		i386 := k.Map.(*sfbuf.I386)
		i386.Ablate(cfg.mode)
		pages, err := k.M.Phys.AllocN(npages)
		if err != nil {
			return nil, err
		}
		// Warm, then measure.
		runOps := func(ctxID, n, stride int) error {
			ctx := k.Ctx(ctxID)
			for i := 0; i < n; i++ {
				pg := pages[(i*stride)%len(pages)]
				var flags sfbuf.Flags
				if i%4 == 0 {
					flags = sfbuf.Private
				}
				b, err := i386.Alloc(ctx, pg, flags)
				if err != nil {
					return err
				}
				if _, err := k.Pmap.Translate(ctx, b.KVA(), i%2 == 0); err != nil {
					return err
				}
				i386.Free(ctx, b)
			}
			return nil
		}
		if err := runOps(0, npages*2, 1); err != nil {
			return nil, err
		}
		k.Reset()
		half := iters / 2
		if err := runOps(0, half, 7); err != nil {
			return nil, err
		}
		if err := runOps(1, iters-half, 5); err != nil {
			return nil, err
		}

		total := float64(iters)
		c := k.M.SnapshotCounters()
		cyc := float64(k.M.TotalCycles()) / total
		res.Rows = append(res.Rows, []string{
			"reuse: " + cfg.label,
			fmt.Sprintf("%.0f", cyc),
			fmt.Sprintf("%.3f", float64(c.LocalInv)/total),
			fmt.Sprintf("%.3f", float64(c.RemoteInvIssued)/total),
			fmt.Sprintf("%.1f%%", i386.Stats().HitRate()*100),
		})
		res.SetMetric("cycles_per_op/"+cfg.label, cyc)
		res.SetMetric("local_per_op/"+cfg.label, float64(c.LocalInv)/total)
		res.SetMetric("remote_per_op/"+cfg.label, float64(c.RemoteInvIssued)/total)
	}

	// Regime B: miss-heavy with untouched mappings — the checksum-offload
	// send pattern where the accessed-bit optimization is the whole
	// ballgame (DMA reads the pages; the CPU never does).
	for _, cfg := range []ablationConfig{ablationConfigs[0], ablationConfigs[1]} {
		o.logf("  ablation (miss regime): %s", cfg.label)
		k, err := kernel.Boot(kernel.Config{
			// Figure reproduction pins the paper's cache engine.
			Cache:        kernel.CacheGlobal,
			Platform:     arch.XeonMP(),
			Mapper:       kernel.SFBuf,
			PhysPages:    2*entries + 64,
			CacheEntries: entries,
		})
		if err != nil {
			return nil, err
		}
		i386 := k.Map.(*sfbuf.I386)
		i386.Ablate(cfg.mode)
		pages, err := k.M.Phys.AllocN(2 * entries) // twice the cache: ~100% misses
		if err != nil {
			return nil, err
		}
		ctx := k.Ctx(0)
		warm := func(n int) error {
			for i := 0; i < n; i++ {
				b, err := i386.Alloc(ctx, pages[i%len(pages)], 0)
				if err != nil {
					return err
				}
				i386.Free(ctx, b)
			}
			return nil
		}
		if err := warm(2 * entries); err != nil {
			return nil, err
		}
		k.Reset()
		if err := warm(iters); err != nil {
			return nil, err
		}
		total := float64(iters)
		c := k.M.SnapshotCounters()
		cyc := float64(k.M.TotalCycles()) / total
		res.Rows = append(res.Rows, []string{
			"untouched misses: " + cfg.label,
			fmt.Sprintf("%.0f", cyc),
			fmt.Sprintf("%.3f", float64(c.LocalInv)/total),
			fmt.Sprintf("%.3f", float64(c.RemoteInvIssued)/total),
			fmt.Sprintf("%.1f%%", i386.Stats().HitRate()*100),
		})
		res.SetMetric("miss_cycles_per_op/"+cfg.label, cyc)
		res.SetMetric("miss_local_per_op/"+cfg.label, float64(c.LocalInv)/total)
	}
	return res, nil
}
