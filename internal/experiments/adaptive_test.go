package experiments

import (
	"sync"
	"testing"

	"sfbuf/internal/vm"
)

// adaptiveRounds is the per-CPU extent count the economy test drives —
// long enough that the adaptive policy's warmup epoch (it starts in run
// mode) amortizes below the 10% tolerance.
const adaptiveRounds = 400

// TestAdaptivePolicyEconomy enforces the PR's acceptance criterion on
// the canonical workloads: the adaptive per-consumer policy must land
// within 10% of the BEST static Contig choice on both the streaming and
// the reuse-heavy churn workload, and beat the WORST static choice by at
// least 2x on each — measured in simulated cycles per page, the repo's
// performance currency.
func TestAdaptivePolicyEconomy(t *testing.T) {
	drive := func(workload, policy string) float64 {
		k, err := BootAdaptive()
		if err != nil {
			t.Fatal(err)
		}
		done, err := ChurnAdaptiveWorkload(k, workload, policy, adaptiveRounds)
		if err != nil {
			t.Fatalf("%s/%s: %v", workload, policy, err)
		}
		return float64(k.M.TotalCycles()) / float64(done)
	}
	for _, workload := range []string{"stream", "churn"} {
		run := drive(workload, "run")
		batch := drive(workload, "batch")
		adaptive := drive(workload, "adaptive")
		best, worst := run, batch
		if batch < best {
			best, worst = batch, run
		}
		t.Logf("%s: run %.0f, batch %.0f, adaptive %.0f simcycles/page", workload, run, batch, adaptive)
		if adaptive > best*1.10 {
			t.Errorf("%s: adaptive %.0f simcycles/page, want within 10%% of best static %.0f",
				workload, adaptive, best)
		}
		if worst < 2*adaptive {
			t.Errorf("%s: worst static %.0f simcycles/page is not >= 2x adaptive %.0f",
				workload, worst, adaptive)
		}
	}
}

// TestAdaptivePolicyDecisions pins WHY the economy holds: on the
// streaming workload the consumer must stay on the run path and feed on
// window revives; on the churn workload it must flip to the batch path
// within its first epochs and stay there (hysteresis: a handful of
// flips at most, not one per epoch).  It drives the sequential replay of
// the workload: the flip count is a property of the extent order the
// EWMAs see, and asserting an exact range over a scheduler-dependent
// order made this test flake under -race.
func TestAdaptivePolicyDecisions(t *testing.T) {
	k, err := BootAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChurnAdaptiveSequential(k, "stream", "adaptive", adaptiveRounds); err != nil {
		t.Fatal(err)
	}
	stats := k.PolicyStats()
	if len(stats) != 1 || stats[0].Name != "adaptive-stream" {
		t.Fatalf("policy stats = %+v, want the one stream consumer", stats)
	}
	ps := stats[0]
	if !ps.Adaptive {
		t.Fatal("ContigAuto on the sharded engine must resolve to the adaptive policy")
	}
	if ps.BatchDecisions > ps.RunDecisions/10 {
		t.Errorf("stream consumer chose batch %d of %d times; must stay on the run path",
			ps.BatchDecisions, ps.RunDecisions+ps.BatchDecisions)
	}
	if st := k.Map.Stats(); st.RunRevives == 0 {
		t.Error("streaming extents never revived a parked window")
	}

	k2, err := BootAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChurnAdaptiveSequential(k2, "churn", "adaptive", adaptiveRounds); err != nil {
		t.Fatal(err)
	}
	ps = k2.PolicyStats()[0]
	if ps.RunDecisions > ps.BatchDecisions/10 {
		t.Errorf("churn consumer chose runs %d of %d times; must flip to the batch path early",
			ps.RunDecisions, ps.RunDecisions+ps.BatchDecisions)
	}
	if ps.Flips == 0 {
		t.Error("churn consumer never flipped")
	}
	if ps.Flips > 4 {
		t.Errorf("churn consumer flipped %d times on a stable workload; hysteresis is broken", ps.Flips)
	}
}

// TestAdaptiveFlippingConcurrentStress is the -race stress for the
// adaptive policy: goroutines drive streaming and churning extents
// through ONE shared consumer handle concurrently — a mixed workload
// that keeps the flip score mid-range — while another goroutine
// snapshots policy state, and the mapper ledger must still balance.
// Hysteresis must keep flips rare even under the mix.
func TestAdaptiveFlippingConcurrentStress(t *testing.T) {
	k, err := BootAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	streamPages, err := k.M.Phys.AllocN(AdaptiveStreamExtents * AdaptiveChurnLen)
	if err != nil {
		t.Fatal(err)
	}
	churnPages, err := k.M.Phys.AllocN(AdaptiveChurnPages)
	if err != nil {
		t.Fatal(err)
	}
	cons := k.Consumer("mixed")
	ncpu := k.M.NumCPUs()
	const rounds = 250
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = k.PolicyStats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < ncpu; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := k.Ctx(w)
			runLen := AdaptiveChurnLen
			for r := 0; r < rounds; r++ {
				var extent []*vm.Page
				if w%2 == 0 {
					e := (r + w) % AdaptiveStreamExtents
					extent = streamPages[e*runLen : (e+1)*runLen]
				} else {
					span := len(churnPages) - runLen + 1
					extent = churnPages[((r*ncpu+w)*7)%span : ((r*ncpu+w)*7)%span+runLen]
				}
				if cons.UseRuns(ctx, extent) {
					rn, err := k.Map.AllocRun(ctx, extent, 0)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := k.Pmap.TranslateRun(ctx, rn.Base(), rn.Len(), false, nil); err != nil {
						t.Error(err)
						return
					}
					k.Map.FreeRun(ctx, rn)
				} else {
					bufs, err := k.Map.AllocBatch(ctx, extent, 0)
					if err != nil {
						t.Error(err)
						return
					}
					k.Map.FreeBatch(ctx, bufs)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after the mixed stress", st.Allocs, st.Frees)
	}
	ps := cons.PolicyStats()
	if ps.Observations == 0 {
		t.Fatal("consumer observed nothing")
	}
	if ps.Flips > ps.Observations/32 {
		t.Errorf("flips = %d over %d observations; hysteresis must bound flipping",
			ps.Flips, ps.Observations)
	}
}
