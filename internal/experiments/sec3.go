package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/smp"
)

func init() { register("sec3", RunSec3) }

// RunSec3 reproduces the Section 3 microbenchmark: the cost of local and
// remote TLB invalidations, with the page-table entry resident in the data
// cache and not.  The paper modifies the kernel to add a custom system
// call that invalidates a mapping 100,000 times; we do exactly that
// against the simulated machine, so this experiment primarily validates
// that the cost model reproduces the numbers it was seeded with — and
// documents them next to the paper's.
func RunSec3(o Options) (*Result, error) {
	iters := o.scaleInt(100000, 1000)
	res := &Result{
		ID:    "sec3",
		Title: "Cost of TLB invalidations (cycles per operation)",
		Columns: []string{
			"Machine", "Operation", "Measured", "Paper",
		},
		Notes: []string{
			fmt.Sprintf("%d iterations per measurement, as in the paper's custom syscall", iters),
			"remote costs are the initiating CPU's wait time, per Section 3",
		},
	}

	type expectation struct {
		plat        arch.Platform
		localCached cycles.Cycles
		localUncach cycles.Cycles
		remote      cycles.Cycles
		remoteName  string
	}
	cases := []expectation{
		{arch.XeonHTT(), 500, 1000, 4000, "remote (1 phys, 2 virt CPUs)"},
		{arch.XeonMPHTT(), 500, 1000, 13500, "remote (2 phys, 4 virt CPUs)"},
		{arch.OpteronMP(), 95, 320, 2030, "remote (2 phys CPUs)"},
	}

	for _, c := range cases {
		m := smp.NewMachine(c.plat, 64, false)
		ctx := m.Ctx(0)

		// Local, PTE cached: hammer one virtual page so its PTE line
		// stays hot.
		vpn := uint64(0xC0000)
		ctx.InvalidateLocal(vpn) // prime the PTE line
		m.ResetCounters()
		for i := 0; i < iters; i++ {
			ctx.InvalidateLocal(vpn)
		}
		cached := float64(m.CPU(0).Cycles()) / float64(iters)
		res.Rows = append(res.Rows, []string{
			c.plat.Name, "local invlpg, PTE cached", fmtF(cached), fmt.Sprintf("~%d", c.localCached),
		})
		res.SetMetric("local_cached/"+c.plat.Name, cached)

		// Local, PTE uncached: sweep far more PTE lines than the
		// modeled cache holds.
		m.ResetCounters()
		// One VPN per 8-PTE cache line, cycling through 4x more lines
		// than the modeled PTE cache holds.
		span := uint64(c.plat.PTECacheLines) * 4
		for i := 0; i < iters; i++ {
			ctx.InvalidateLocal(vpn + (uint64(i)%span)*8)
		}
		uncached := float64(m.CPU(0).Cycles()) / float64(iters)
		res.Rows = append(res.Rows, []string{
			c.plat.Name, "local invlpg, PTE uncached", fmtF(uncached), fmt.Sprintf("~%d", c.localUncach),
		})
		res.SetMetric("local_uncached/"+c.plat.Name, uncached)

		// Remote: the initiating CPU's wait for the shootdown.
		m.ResetCounters()
		for i := 0; i < iters; i++ {
			ctx.Shootdown(m.AllCPUs(), vpn)
		}
		remote := float64(m.CPU(0).Cycles()) / float64(iters)
		res.Rows = append(res.Rows, []string{
			c.plat.Name, c.remoteName, fmtF(remote), fmt.Sprintf("~%d", c.remote),
		})
		res.SetMetric("remote/"+c.plat.Name, remote)
	}
	return res, nil
}
