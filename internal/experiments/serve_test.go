package experiments

import (
	"testing"

	"sfbuf/internal/workloads"
)

// TestServeEconomy is the serve benchmark's acceptance criterion, stated
// at the canonical scale: a thousand concurrent connections over the
// canonical lossy network, deterministic seed.  The adaptive send-window
// policy must land within 10% of the best fixed window on p99 mapping
// latency and beat the worst fixed window by at least 2x; the sharded
// engine must beat the global-lock cache on both walks and shootdown
// rounds per byte served.
func TestServeEconomy(t *testing.T) {
	if testing.Short() {
		t.Skip("canonical-scale serving sweep; skipped with -short")
	}
	results := make(map[string]*workloads.ServeResult)
	for _, v := range ServeVariants() {
		r, err := RunServeVariant(v, ServeClients)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		results[v.Name] = r
		t.Logf("%-9s p50=%-8d p99=%-9d p999=%-9d walks/MB=%-8.0f rounds/MB=%-7.1f stalls=%-7d rexmit=%-6d done=%d/%d bytes=%dMB",
			v.Name, r.P50, r.P99, r.P999, r.WalksPerMB, r.RoundsPerMB,
			r.Serve.Stalls, r.Serve.Retransmits, r.Completed, r.Requests, r.BytesReceived>>20)
		if r.Completed == 0 {
			t.Fatalf("%s: no requests completed", v.Name)
		}
	}

	adaptive := results["adaptive"]
	best, worst := int64(0), int64(0)
	var bestName, worstName string
	for _, name := range []string{"fixed-2", "fixed-16", "fixed-64"} {
		p99 := results[name].P99
		if best == 0 || p99 < best {
			best, bestName = p99, name
		}
		if p99 > worst {
			worst, worstName = p99, name
		}
	}
	t.Logf("fixed sweep: best %s p99=%d, worst %s p99=%d, adaptive p99=%d",
		bestName, best, worstName, worst, adaptive.P99)

	// Within 10% of the best fixed window...
	if float64(adaptive.P99) > 1.10*float64(best) {
		t.Errorf("adaptive p99 %d is more than 10%% above best fixed (%s) %d",
			adaptive.P99, bestName, best)
	}
	// ...and at least 2x better than the worst.
	if 2*adaptive.P99 > worst {
		t.Errorf("adaptive p99 %d is not 2x better than worst fixed (%s) %d",
			adaptive.P99, worstName, worst)
	}

	// Engine comparison: sharded (adaptive arm) vs the global-lock cache
	// on per-byte mapping economy.
	global := results["global"]
	if adaptive.WalksPerMB >= global.WalksPerMB {
		t.Errorf("sharded walks/MB %.1f not below global %.1f",
			adaptive.WalksPerMB, global.WalksPerMB)
	}
	if adaptive.RoundsPerMB >= global.RoundsPerMB {
		t.Errorf("sharded rounds/MB %.2f not below global %.2f",
			adaptive.RoundsPerMB, global.RoundsPerMB)
	}
}

// TestServeDeterminism replays the adaptive arm twice at a reduced scale
// and requires byte-identical outcomes: same packet-schedule hash, same
// serve counters, same per-request latency sample, same walk totals.
func TestServeDeterminism(t *testing.T) {
	run := func() *workloads.ServeResult {
		r, err := RunServeVariant(ServeVariants()[0], 250)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hash diverged: %#x != %#x", a.TraceHash, b.TraceHash)
	}
	if a.Serve != b.Serve {
		t.Fatalf("serve stats diverged:\n%+v\n%+v", a.Serve, b.Serve)
	}
	if a.Net != b.Net {
		t.Fatalf("net stats diverged:\n%+v\n%+v", a.Net, b.Net)
	}
	if a.BytesReceived != b.BytesReceived || a.Completed != b.Completed {
		t.Fatalf("outcome diverged: %d/%d bytes vs %d/%d",
			a.BytesReceived, a.Completed, b.BytesReceived, b.Completed)
	}
	if len(a.Latencies) != len(b.Latencies) {
		t.Fatalf("latency sample sizes diverged: %d != %d", len(a.Latencies), len(b.Latencies))
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("latency sample %d diverged: %d != %d", i, a.Latencies[i], b.Latencies[i])
		}
	}
	if a.Walks != b.Walks || a.Rounds != b.Rounds || a.Locks != b.Locks {
		t.Fatalf("counters diverged: walks %d/%d rounds %d/%d locks %d/%d",
			a.Walks, b.Walks, a.Rounds, b.Rounds, a.Locks, b.Locks)
	}
}
