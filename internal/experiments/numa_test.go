package experiments

import (
	"fmt"
	"testing"
)

// TestNUMAEconomy is the socket-homing acceptance criterion, run in CI
// (make bench-numa): on 2- and 4-socket contended churn over socket-local
// frames, the homed configuration must pay at most 1/4 the remote lock
// acquisitions per op and at most 1/2 the remote IPIs per op of the
// hash-striped baseline, at simulated cycles per op no worse.  Remote
// costs are what the asymmetric machine model charges for crossing the
// package interconnect; the striped layout scatters them round-robin,
// the homed layout is supposed to make them vanish.
func TestNUMAEconomy(t *testing.T) {
	res, err := RunNUMA(Options{Scale: 0.25, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, sockets := range []int{2, 4} {
		homed := fmt.Sprintf("homed %d-socket", sockets)
		striped := fmt.Sprintf("striped %d-socket", sockets)
		hLocks := res.Metrics["remote_locks_per_op/"+homed]
		sLocks := res.Metrics["remote_locks_per_op/"+striped]
		hIPIs := res.Metrics["remote_ipis_per_op/"+homed]
		sIPIs := res.Metrics["remote_ipis_per_op/"+striped]
		hCyc := res.Metrics["cyc_per_op/"+homed]
		sCyc := res.Metrics["cyc_per_op/"+striped]
		if sLocks == 0 || sCyc == 0 {
			t.Fatalf("%d sockets: missing striped metrics", sockets)
		}
		t.Logf("%d sockets: rlocks/op %.4f vs %.4f, rIPIs/op %.4f vs %.4f, cyc/op %.1f vs %.1f",
			sockets, hLocks, sLocks, hIPIs, sIPIs, hCyc, sCyc)
		if hLocks > sLocks/4 {
			t.Errorf("%d sockets: homed remote locks/op = %.4f, want <= 1/4 of striped %.4f",
				sockets, hLocks, sLocks)
		}
		if hIPIs > sIPIs/2 {
			t.Errorf("%d sockets: homed remote IPIs/op = %.4f, want <= 1/2 of striped %.4f",
				sockets, hIPIs, sIPIs)
		}
		if hCyc > sCyc {
			t.Errorf("%d sockets: homed cyc/op = %.1f, want no worse than striped %.1f",
				sockets, hCyc, sCyc)
		}
	}
}

// TestNUMADeterminism: the churn's hot phase is hit-dominated and every
// CPU touches only its own working set, so two runs of the experiment
// must produce identical economies — the criterion above cannot flake.
func TestNUMADeterminism(t *testing.T) {
	run := func() map[string]float64 {
		res, err := RunNUMA(Options{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	for _, key := range []string{
		"remote_locks_per_op/homed 2-socket", "remote_locks_per_op/striped 4-socket",
		"remote_ipis_per_op/striped 2-socket", "cyc_per_op/homed 4-socket",
	} {
		if a[key] != b[key] {
			t.Errorf("%s not deterministic: %v vs %v", key, a[key], b[key])
		}
	}
}
