package experiments

import (
	"fmt"
	"sort"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/kernel"
)

func init() {
	register("reclaim", RunReclaim)
}

// reclaimIdleTick is the idle stretch between bursts in the idle-spike
// trials: long enough for the daemon to refill every freelist and the
// overflow pool from a fully-inactive cache (a few reclaim rounds), short
// against any real traffic lull.
const reclaimIdleTick cycles.Cycles = 1 << 18

// RunReclaim measures what the background reclaim daemon buys the first
// allocation after a traffic lull — the tail, not the mean.  Each trial
// references the entire cache (every buffer ends inactive with teardown
// debt), frees it, idles, then times a burst of allocations for pages the
// cache has never seen, which must be served from clean stock or pay a
// synchronous reclaim round.  With the daemon, the idle tick refills the
// clean freelists ahead of demand; without it (the paper's on-demand
// reclaim, Config.ReclaimWatermark < 0) the first alloc of every burst
// eats an LRU harvest plus a forced shootdown flush.  Reported per arm and
// probe size: p50/p99/p999/mean first-alloc-after-idle latency in
// simulated cycles.  A steady-state row pair then runs the scale
// experiment's vectored churn (no idle) on both arms: the daemon must
// cost nothing when the machine is busy.
func RunReclaim(o Options) (*Result, error) {
	res := &Result{
		ID:    "reclaim",
		Title: "Background reclaim: first-alloc-after-idle latency, daemon vs. on-demand (Xeon 4-way)",
		Columns: []string{"arm", "probe pages", "trials", "p50 cyc", "p99 cyc",
			"p999 cyc", "mean cyc", "steady cyc/op"},
		Notes: []string{
			"each trial fills and frees the whole cache, idles one tick, then times a burst of never-mapped pages",
			"on-demand = Config.ReclaimWatermark < 0: reclaim only on allocation-miss shortage (the paper's behaviour)",
			"steady rows run the scale experiment's vectored churn with no idle: daemon wiring must cost nothing while busy",
			"daemon-2s runs the daemon arm on a 2-package NUMA Xeon with socket-homed state (Config.Sockets=2)",
		},
	}

	entries := o.scaleInt(256, 64)
	trials := o.scaleInt(240, 48)

	for _, arm := range []struct {
		name    string
		wm      int
		plat    arch.Platform
		sockets int
	}{
		{"daemon", 0, arch.XeonMPHTT(), 1},
		{"on-demand", -1, arch.XeonMPHTT(), 1},
		// The same daemon arm on a 2-package machine with socket-homed
		// state: the refill must ride idle time there too, each package's
		// daemon restocking from its own socket's frames.
		{"daemon-2s", 0, arch.XeonNUMA(2, 2), 2},
	} {
		for _, probe := range []int{1, ScaleBatch} {
			lats, err := idleSpikeTrials(arm.plat, arm.sockets, entries, trials, probe, arm.wm)
			if err != nil {
				return nil, fmt.Errorf("reclaim %s/%d: %w", arm.name, probe, err)
			}
			p50 := percentileCycles(lats, 0.50)
			p99 := percentileCycles(lats, 0.99)
			p999 := percentileCycles(lats, 0.999)
			var sum cycles.Cycles
			for _, l := range lats {
				sum += l
			}
			mean := float64(sum) / float64(len(lats))
			res.Rows = append(res.Rows, []string{
				arm.name, fmt.Sprintf("%d", probe), fmt.Sprintf("%d", len(lats)),
				fmt.Sprintf("%d", p50), fmt.Sprintf("%d", p99),
				fmt.Sprintf("%d", p999), fmt.Sprintf("%.0f", mean), "-",
			})
			key := fmt.Sprintf("%s/%d", arm.name, probe)
			res.SetMetric("p50/"+key, float64(p50))
			res.SetMetric("p99/"+key, float64(p99))
			res.SetMetric("p999/"+key, float64(p999))
			res.SetMetric("mean/"+key, mean)
		}

		// Steady state: the same engine under continuous vectored churn,
		// no idle ticks — the daemon never runs, and must cost nothing.
		cycOp, err := steadyChurn(o, arm.plat, arm.sockets, entries, arm.wm)
		if err != nil {
			return nil, fmt.Errorf("reclaim steady %s: %w", arm.name, err)
		}
		res.Rows = append(res.Rows, []string{
			arm.name + " steady", "-", "-", "-", "-", "-", "-",
			fmt.Sprintf("%.1f", cycOp),
		})
		res.SetMetric("steady_cyc_op/"+arm.name, cycOp)
	}
	return res, nil
}

// idleSpikeTrials runs the fill/free/idle/probe loop on one arm and
// returns the per-trial probe latencies.  The machine's socket topology
// is a parameter, not an assumption: sockets > 1 boots the partitioned
// pool and socket-homed state.  The workload is single-CPU and
// deterministic: every trial leaves the cache in the same state (all
// buffers referenced by the fill, then all inactive), so the latency
// distribution is a property of the arm, not of scheduling.
func idleSpikeTrials(plat arch.Platform, sockets, entries, trials, probe, watermark int) ([]cycles.Cycles, error) {
	k, err := kernel.Boot(kernel.Config{
		Platform:         plat,
		Mapper:           kernel.SFBuf,
		Cache:            kernel.CacheSharded,
		PhysPages:        entries + trials*probe + 256,
		CacheEntries:     entries,
		ReclaimWatermark: watermark,
		Sockets:          sockets,
	})
	if err != nil {
		return nil, err
	}
	ctx := k.Ctx(0)
	working, err := k.M.Phys.AllocN(entries)
	if err != nil {
		return nil, err
	}
	fresh, err := k.M.Phys.AllocN(trials * probe)
	if err != nil {
		return nil, err
	}

	lats := make([]cycles.Cycles, 0, trials)
	for t := 0; t < trials; t++ {
		// Fill: reference the whole cache, touching every mapping so the
		// eventual teardown owes real invalidations, then free it all —
		// zero clean stock, everything on the LRU inactive lists.
		bufs, err := k.Map.AllocBatch(ctx, working, 0)
		if err != nil {
			return nil, err
		}
		for _, b := range bufs {
			if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
				return nil, err
			}
		}
		k.Map.FreeBatch(ctx, bufs)

		// The lull.  With the daemon this refills clean stock against
		// idle time; without it the tick just advances the clock.
		k.Idle(0, reclaimIdleTick)

		// The spike: map pages the cache has never seen — guaranteed
		// misses that need clean buffers right now.
		pp := fresh[t*probe : (t+1)*probe]
		start := ctx.CPU().Cycles()
		if probe == 1 {
			b, err := k.Map.Alloc(ctx, pp[0], 0)
			if err != nil {
				return nil, err
			}
			lats = append(lats, ctx.CPU().Cycles()-start)
			k.Map.Free(ctx, b)
		} else {
			pb, err := k.Map.AllocBatch(ctx, pp, 0)
			if err != nil {
				return nil, err
			}
			lats = append(lats, ctx.CPU().Cycles()-start)
			k.Map.FreeBatch(ctx, pb)
		}
	}
	return lats, nil
}

// steadyChurn measures simulated cycles per page-op of the scale
// experiment's vectored churn on one arm, with no idle ticks.  Like the
// spike trials it takes the socket topology as a parameter.
func steadyChurn(o Options, plat arch.Platform, sockets, entries, watermark int) (float64, error) {
	k, err := kernel.Boot(kernel.Config{
		Platform:         plat,
		Mapper:           kernel.SFBuf,
		Cache:            kernel.CacheSharded,
		PhysPages:        8*entries + 128,
		CacheEntries:     entries,
		ReclaimWatermark: watermark,
		Sockets:          sockets,
	})
	if err != nil {
		return 0, err
	}
	pages, err := k.M.Phys.AllocN(4 * entries)
	if err != nil {
		return 0, err
	}
	ops := o.scaleInt(120000, 4000)
	done, err := ChurnBatch(k, pages, ops, ScaleBatch)
	if err != nil {
		return 0, err
	}
	return float64(k.M.TotalCycles()) / float64(done), nil
}

// percentileCycles returns the q-th percentile (0 < q <= 1) of the
// latency sample by the nearest-rank method.
func percentileCycles(lats []cycles.Cycles, q float64) cycles.Cycles {
	if len(lats) == 0 {
		return 0
	}
	s := make([]cycles.Cycles, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
