package experiments

import (
	"fmt"
	"testing"
)

// TestReclaimEconomy is the background-daemon acceptance criterion, run in
// CI (make bench-reclaim): the p99 AND p999 of first-alloc-after-idle
// latency with the daemon must be at most a quarter of the on-demand
// baseline's — the tail, not the mean, is what a serving workload pays on
// every traffic lull — while steady-state cycles per op stay within 5%,
// so the daemon's refills genuinely ride idle time.
func TestReclaimEconomy(t *testing.T) {
	res, err := RunReclaim(Options{Scale: 0.25, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []int{1, ScaleBatch} {
		for _, pct := range []string{"p99", "p999"} {
			d := res.Metrics[fmt.Sprintf("%s/daemon/%d", pct, probe)]
			o := res.Metrics[fmt.Sprintf("%s/on-demand/%d", pct, probe)]
			if o == 0 {
				t.Fatalf("probe %d: missing on-demand %s metric", probe, pct)
			}
			t.Logf("probe %d %s: daemon %.0f vs on-demand %.0f cycles (%.1fx)",
				probe, pct, d, o, o/d)
			if d > o/4 {
				t.Errorf("probe %d: %s with daemon = %.0f cycles, want <= 1/4 of on-demand %.0f",
					probe, pct, d, o)
			}
		}
	}
	dSteady := res.Metrics["steady_cyc_op/daemon"]
	oSteady := res.Metrics["steady_cyc_op/on-demand"]
	if dSteady == 0 || oSteady == 0 {
		t.Fatal("missing steady-state metrics")
	}
	ratio := dSteady / oSteady
	t.Logf("steady state: daemon %.1f vs on-demand %.1f cyc/op (ratio %.3f)", dSteady, oSteady, ratio)
	if ratio > 1.05 || ratio < 0.95 {
		t.Errorf("steady-state cycles/op changed by more than 5%%: daemon %.1f vs on-demand %.1f",
			dSteady, oSteady)
	}
}

// TestReclaimDeterminism: the idle-spike trials are single-CPU and
// deterministic — two runs of the same arm must produce identical latency
// distributions, so the criterion above cannot flake.
func TestReclaimDeterminism(t *testing.T) {
	run := func() map[string]float64 {
		res, err := RunReclaim(Options{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	for _, key := range []string{
		"p50/daemon/1", "p99/daemon/16", "p999/on-demand/16", "mean/on-demand/1",
	} {
		if a[key] != b[key] {
			t.Errorf("%s not deterministic: %.1f vs %.1f", key, a[key], b[key])
		}
	}
}
