// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6).  Each experiment boots fresh simulated kernels,
// runs the paper's workload with the paper's parameters, and reports the
// same rows the paper plots: bandwidths, transaction rates, throughputs,
// and local/remote TLB invalidation counts.
//
// Experiments accept an Options.Scale factor so the same code serves three
// masters: unit tests (tiny scales, seconds), `go test -bench` (moderate
// scales), and cmd/sfbench (full paper scale).  Scaling preserves the
// ratios that drive the results — most importantly the mapping-cache size
// relative to each workload's footprint.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sfbuf/internal/arch"
	"sfbuf/internal/cycles"
	"sfbuf/internal/kernel"
	"sfbuf/internal/smp"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies workload sizes; 1.0 is the paper's configuration.
	Scale float64
	// Platforms lists the machines to run on; nil means the paper's five.
	Platforms []arch.Platform
	// Verbose enables progress output through Logf.
	Logf func(format string, args ...any)
}

// DefaultOptions returns the paper-scale configuration.
func DefaultOptions() Options {
	return Options{Scale: 1.0}
}

func (o Options) platforms() []arch.Platform {
	if len(o.Platforms) > 0 {
		return o.Platforms
	}
	return arch.Evaluation()
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// scaleInt scales n by the option's factor with a floor.
func (o Options) scaleInt(n int, floor int) int {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < floor {
		return floor
	}
	return v
}

// scaleInt64 scales n with a floor.
func (o Options) scaleInt64(n int64, floor int64) int64 {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	v := int64(float64(n) * s)
	if v < floor {
		return floor
	}
	return v
}

// Result is one reproduced table or figure.
type Result struct {
	// ID is the experiment identifier, e.g. "fig2".
	ID string
	// Title describes the experiment as the paper captions it.
	Title string
	// Columns are the table headers.
	Columns []string
	// Rows are formatted cells.
	Rows [][]string
	// Notes carry methodology remarks and the paper's expectations.
	Notes []string
	// Metrics exposes headline values for benchmarks and EXPERIMENTS.md
	// generation (key -> value).
	Metrics map[string]float64
}

// SetMetric records a headline value.
func (r *Result) SetMetric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[key] = v
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// registry maps experiment ids to runners, populated by init() in each
// experiment file.
var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// IDs returns the registered experiment ids in registration order.
func IDs() []string {
	out := append([]string(nil), registryOrder...)
	return out
}

// Get returns the runner for id.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// RunAll executes every experiment in order, returning results keyed by
// id in registration order.
func RunAll(o Options) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		o.logf("running %s...", id)
		res, err := registry[id](o)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// --- shared measurement helpers ---

// runMemo caches measurement runs within a process.  The paper's figure
// pairs (8/9/10, 15/17, 16/18, 19/20) report different views of the SAME
// measured runs, so the corresponding experiments share runs here too —
// both faithful and far cheaper.  Keys embed every run parameter.
var runMemo sync.Map

// memoizedRun returns the cached value for key or computes and caches it.
// Errors are not cached.
func memoizedRun[T any](key string, compute func() (T, error)) (T, error) {
	if v, ok := runMemo.Load(key); ok {
		return v.(T), nil
	}
	v, err := compute()
	if err != nil {
		return v, err
	}
	runMemo.Store(key, v)
	return v, nil
}

// ClearRunCache drops memoized measurements (tests that need fresh runs).
func ClearRunCache() {
	runMemo.Range(func(k, _ any) bool {
		runMemo.Delete(k)
		return true
	})
}

// measurement captures one configuration's run.
type measurement struct {
	plat      arch.Platform
	kernel    string
	elapsed   cycles.Cycles
	bytes     int64
	events    int64
	localInv  uint64
	remoteInv uint64
	hitRate   float64
}

func (m measurement) mbps() float64 {
	return cycles.MBps(m.bytes, m.elapsed, m.plat.FreqGHz)
}

func (m measurement) mbitps() float64 {
	return cycles.Mbps(m.bytes, m.elapsed, m.plat.FreqGHz)
}

func (m measurement) perSec() float64 {
	return cycles.PerSecond(m.events, m.elapsed, m.plat.FreqGHz)
}

// snapshotInto fills the invalidation counters from the machine.
func (m *measurement) snapshotInto(k *kernel.Kernel) {
	s := k.M.SnapshotCounters()
	m.localInv = s.LocalInv
	m.remoteInv = s.RemoteInvIssued
	m.hitRate = k.Map.Stats().HitRate()
}

// pct formats an improvement of a over b in percent.
func pct(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", (a/b-1)*100)
}

// pctVal returns the improvement of a over b in percent.
func pctVal(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a/b - 1) * 100
}

func fmtF(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func fmtU(v uint64) string { return fmt.Sprintf("%d", v) }

// sortedKeys is a small helper for deterministic metric listings.
func sortedKeys[M ~map[string]float64](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// serializedCycles returns elapsed cycles for ping-pong workloads (pipe,
// dd, PostMark, netperf): total CPU work, since their logical threads
// hand off rather than overlap.
func serializedCycles(m *smp.Machine) cycles.Cycles { return m.TotalCycles() }

// parallelCycles returns elapsed cycles for the web server, the one
// workload that exploits multiple CPUs (Section 6.2).
func parallelCycles(m *smp.Machine) cycles.Cycles { return m.ParallelCycles() }
