package experiments

// The virtual-internet serving macro-benchmark ("serve"): a thousand
// concurrent connections stream a heavy-tailed corpus through a lossy,
// reordering network, and the mapping-window policy is the variable.
// Five variants run the identical workload (same seed, same packet
// schedule shape, same client behaviour):
//
//   adaptive  — sharded engine, per-connection kernel.SendWindow sizing
//   fixed-2   — sharded engine, every window pinned at 2 pages
//   fixed-16  — sharded engine, pinned at the historical VectoredRun
//   fixed-64  — sharded engine, pinned at the adaptive ceiling
//   global    — the paper's Section 4.2 global-lock cache (per-page
//               mappings: no native batched send path)
//
// The canonical parameters are sized so the fixed arms fail in opposite
// directions, the same construction as the adaptive-contiguity
// acceptance workloads: a thousand 16-page windows overcommit the
// mapping cache several times over, so fixed-16 and fixed-64 spend their
// tails in NoWait stall backoffs, while fixed-2 never stalls but pays an
// install per two pages on documents that average dozens of pages.  The
// adaptive policy must track each connection's observed appetite — slow
// readers shrink toward the floor, fast readers grow to their ACK burst
// — and land within 10% of the best fixed arm on p99 mapping latency
// while beating the worst by at least 2x (TestServeEconomy).  The
// sharded engine must also beat the global-lock cache on walks and
// shootdown rounds per byte served.

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/workloads"
)

// Canonical serve-benchmark parameters, shared by the experiment, the
// economy test and the benchmark so they cannot drift apart.
const (
	// ServeClients is the concurrent-connection count the acceptance
	// criterion is stated at; ServeRequestsPerConn the requests each
	// connection serves.
	ServeClients         = 1000
	ServeRequestsPerConn = 2
	// ServeFiles and ServeFootprint shape the corpus: few enough files
	// that documents average dozens of pages, so the 64-page ceiling and
	// the 2-page floor both get exercised on real transfers.
	ServeFiles     = 60
	ServeFootprint = 16 << 20
	// ServeEntries sizes the mapping cache: comfortably above the
	// adaptive policy's steady demand (slow connections near the 2-page
	// floor, fast ones near their 8-page ACK burst), several times below
	// a thousand fixed 16- or 64-page windows.
	ServeEntries = 2304
	// ServePhysPages covers the corpus disk (~20 MB) plus slack.
	ServePhysPages = 8192
	// ServeSeed drives the packet schedule, the corpus, and the
	// behaviour draws; the determinism suite replays it.
	ServeSeed = 20260807
	// Network and client-mix shape: WAN-ish loss and reordering, a
	// majority of slow readers, a churn tail that aborts mid-transfer,
	// and a slice of zero-copy (user-memory) sends.
	ServeLossPct      = 5
	ServeReorderPct   = 10
	ServeSlowFrac     = 0.7
	ServeChurnFrac    = 0.05
	ServeZeroCopyFrac = 0.15
	// ServeStagger ramps connections up over ~2M cycles, well inside one
	// slow transfer, so the thousand connections overlap.
	ServeStagger = 2000
)

// ServeVariant is one arm of the sweep.
type ServeVariant struct {
	// Name labels the arm ("adaptive", "fixed-N", "global").
	Name string
	// Cache selects the engine; FixedWindow pins the mapping window
	// (zero lets the kernel's per-connection policy size it).
	Cache       kernel.CachePolicy
	FixedWindow int
}

// ServeVariants returns the sweep in report order.
func ServeVariants() []ServeVariant {
	return []ServeVariant{
		{Name: "adaptive", Cache: kernel.CacheSharded},
		{Name: "fixed-2", Cache: kernel.CacheSharded, FixedWindow: 2},
		{Name: "fixed-16", Cache: kernel.CacheSharded, FixedWindow: 16},
		{Name: "fixed-64", Cache: kernel.CacheSharded, FixedWindow: 64},
		{Name: "global", Cache: kernel.CacheGlobal},
	}
}

// BootServe boots the serve-benchmark kernel under one cache policy.
func BootServe(cache kernel.CachePolicy) (*kernel.Kernel, error) {
	return kernel.Boot(kernel.Config{
		Platform:     arch.XeonMPHTT(),
		Mapper:       kernel.SFBuf,
		Cache:        cache,
		PhysPages:    ServePhysPages,
		Backed:       true,
		CacheEntries: ServeEntries,
	})
}

// ServeCanonicalConfig returns the canonical workload scaled by clients
// (the full criterion runs ServeClients; benchmarks run smaller).
func ServeCanonicalConfig(clients int, fixedWindow int) workloads.ServeConfig {
	return workloads.ServeConfig{
		Clients:          clients,
		RequestsPerConn:  ServeRequestsPerConn,
		Files:            ServeFiles,
		Footprint:        ServeFootprint,
		LossPct:          ServeLossPct,
		ReorderPct:       ServeReorderPct,
		SlowFrac:         ServeSlowFrac,
		ChurnFrac:        ServeChurnFrac,
		ZeroCopyFrac:     ServeZeroCopyFrac,
		StaggerCycles:    ServeStagger,
		FixedWindowPages: fixedWindow,
		Seed:             ServeSeed,
	}
}

// RunServeVariant executes one arm at the given client count.
func RunServeVariant(v ServeVariant, clients int) (*workloads.ServeResult, error) {
	k, err := BootServe(v.Cache)
	if err != nil {
		return nil, err
	}
	res, err := workloads.RunServe(k, ServeCanonicalConfig(clients, v.FixedWindow))
	if err != nil {
		return nil, fmt.Errorf("serve %s: %w", v.Name, err)
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return nil, fmt.Errorf("serve %s: leaked mappings: allocs %d != frees %d",
			v.Name, st.Allocs, st.Frees)
	}
	return res, nil
}

func init() {
	register("serve", runServeExperiment)
}

// runServeExperiment sweeps every variant at the canonical (scaled)
// client count and tabulates the mapping economy.
func runServeExperiment(opt Options) (*Result, error) {
	clients := opt.scaleInt(ServeClients, 32)
	res := &Result{
		ID: "serve",
		Title: fmt.Sprintf("virtual-internet serving: %d connections, %d%% loss, %d%% reorder, seed %d",
			clients, ServeLossPct, ServeReorderPct, ServeSeed),
		Columns: []string{"variant", "p50 map lat", "p99 map lat", "p99.9 map lat",
			"walks/MB", "rounds/MB", "stalls", "rexmit", "completed"},
		Notes: []string{
			"mapping latency = map+release cycles + NoWait stall backoff, per request (network time excluded)",
			"walks and shootdown rounds divided by client-received megabytes",
		},
	}
	for _, v := range ServeVariants() {
		opt.logf("serve: running %s (%d clients)...", v.Name, clients)
		r, err := RunServeVariant(v, clients)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			v.Name,
			fmt.Sprintf("%d", r.P50),
			fmt.Sprintf("%d", r.P99),
			fmt.Sprintf("%d", r.P999),
			fmt.Sprintf("%.0f", r.WalksPerMB),
			fmt.Sprintf("%.1f", r.RoundsPerMB),
			fmt.Sprintf("%d", r.Serve.Stalls),
			fmt.Sprintf("%d", r.Serve.Retransmits),
			fmt.Sprintf("%d/%d", r.Completed, r.Requests),
		})
		res.SetMetric("p99_"+v.Name, float64(r.P99))
		res.SetMetric("walks_per_mb_"+v.Name, r.WalksPerMB)
		res.SetMetric("rounds_per_mb_"+v.Name, r.RoundsPerMB)
		res.SetMetric("stalls_"+v.Name, float64(r.Serve.Stalls))
		res.SetMetric("bytes_"+v.Name, float64(r.BytesReceived))
	}
	return res, nil
}
