package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/pmap"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// This file drives the physical-contiguity experiments: a deterministic
// fragmentation-churn warmup that destroys a LIFO allocator's frame
// ordering forever (while the buddy allocator coalesces back), and a
// churn loop that allocates fresh physical extents per round — contiguous
// when the allocator can provide them — maps them as runs, and sweeps
// them through the honest MMU.  It is the proof harness for the buddy
// refactor's acceptance criterion: after churn, aligned AllocRun windows
// over AllocContig extents regain superpage promotion on the sharded
// engine, while a LIFO-backed kernel is stuck with scattered frames.

// FragmentPhys is the fragmentation-churn warmup: it allocates the
// machine's entire free physical memory in pseudorandom group sizes, then
// frees every group in shuffled order.  After the warmup a LIFO free
// stack is a random permutation — AllocN returns scattered frames until
// reboot — while the buddy allocator has coalesced back to maximal
// blocks; the two allocators' contrasting futures from an identical
// churn history are exactly what the recovery harness measures.  The
// churn is deterministic for a given pool, and respects the booted
// machine's socket topology (FragmentPhysOn).
func FragmentPhys(k *kernel.Kernel) error {
	return FragmentPhysOn(k.M.Phys, k.M.Topology())
}

// FragmentPhysOn is the topology-aware fragmentation churn.  On a flat
// machine it drains the pool with plain AllocN, byte-for-byte the
// historical behavior.  On a multi-package machine it drains each
// socket's frames in turn with AllocNOn — group sizes clamped to the
// socket's own free count so no group spills across packages — because a
// homed pool fragments per socket: churning only through the global
// allocator would let spill-over launder one package's fragmentation
// through another's free lists.  The freeing shuffle stays global; Free
// is address-routed, so every frame still coalesces back into its home
// socket's buddy lists.
func FragmentPhysOn(phys *vm.PhysMem, topo smp.Topology) error {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	sockets := topo.Sockets
	if sockets < 1 {
		sockets = 1
	}
	var groups [][]*vm.Page
	for s := 0; s < sockets; s++ {
		freeOn := func() int {
			if sockets == 1 {
				return phys.FreeFrames()
			}
			return phys.PhysStats().FreeBySocket[s]
		}
		for {
			n := 1 + next(13)
			if free := freeOn(); n > free {
				if free == 0 {
					break
				}
				n = free
			}
			var pages []*vm.Page
			var err error
			if sockets == 1 {
				pages, err = phys.AllocN(n)
			} else {
				pages, err = phys.AllocNOn(s, n)
			}
			if err != nil {
				if errors.Is(err, vm.ErrNoMemory) {
					break
				}
				return err
			}
			groups = append(groups, pages)
		}
	}
	for i := len(groups) - 1; i > 0; i-- {
		j := next(i + 1)
		groups[i], groups[j] = groups[j], groups[i]
	}
	for _, g := range groups {
		for _, pg := range g {
			phys.Free(pg)
		}
	}
	return nil
}

// ChurnFrag is the post-fragmentation extent churn: every CPU repeatedly
// allocates a FRESH runLen-page physical extent — AllocContig with the
// kernel's alignment hint where the allocator can, scattered AllocN
// where it cannot — maps it (AllocRun + ranged sweep when useRuns,
// AllocBatch + per-page translation otherwise, the CopyOutVec cost
// shape), and releases both the mapping and the frames.  It returns the
// pages churned and the fraction of extents served physically
// contiguous; on a buddy machine the fraction stays ~1.0 because freed
// extents coalesce, on a LIFO machine it is 0 forever.  With runLen =
// pmap.SuperpagePages every contiguous extent's aligned window promotes,
// which is the recovery BenchmarkAllocContig and the promotion-recovery
// test measure.
func ChurnFrag(k *kernel.Kernel, ops, runLen int, useRuns bool) (done int, contigFrac float64, err error) {
	ncpu := k.M.NumCPUs()
	rounds := ops / ncpu / runLen
	if rounds < 1 {
		rounds = 1
	}
	var contig, total atomic.Uint64
	var wg sync.WaitGroup
	errs := make([]error, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ctx := k.Ctx(cpu)
			var got []*vm.Page
			for i := 0; i < rounds; i++ {
				pages, aerr := k.AllocPhysContig(runLen)
				if errors.Is(aerr, vm.ErrNoContig) {
					pages, aerr = k.M.Phys.AllocN(runLen)
				} else if aerr == nil {
					contig.Add(1)
				}
				if aerr != nil {
					errs[cpu] = aerr
					return
				}
				total.Add(1)
				if uerr := func() error {
					if useRuns {
						r, err := k.Map.AllocRun(ctx, pages, 0)
						if err != nil {
							return err
						}
						defer k.Map.FreeRun(ctx, r)
						if r.Contiguous() {
							got, err = k.Pmap.TranslateRun(ctx, r.Base(), r.Len(), false, got[:0])
							return err
						}
						for j := 0; j < r.Len(); j++ {
							if _, err := k.Pmap.Translate(ctx, r.KVA(j), false); err != nil {
								return err
							}
						}
						return nil
					}
					bufs, err := k.Map.AllocBatch(ctx, pages, 0)
					if err != nil {
						return err
					}
					defer k.Map.FreeBatch(ctx, bufs)
					for _, b := range bufs {
						if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
							return err
						}
					}
					return nil
				}(); uerr != nil {
					errs[cpu] = uerr
					return
				}
				for _, pg := range pages {
					k.M.Phys.Free(pg)
				}
			}
		}(cpu)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	if t := total.Load(); t > 0 {
		contigFrac = float64(contig.Load()) / float64(t)
	}
	return rounds * ncpu * runLen, contigFrac, nil
}

// ContigRecoveryPages is the extent width the promotion-recovery harness
// churns: exactly one superpage span, so every contiguous extent's
// aligned run window can promote.
const ContigRecoveryPages = pmap.SuperpagePages

// BootContigRecovery boots the promotion-recovery rig: a 4-way Xeon
// running the sharded sf_buf engine with a mapping cache wide enough to
// hold two superpage-spanning runs, over enough physical memory that the
// fragmentation warmup leaves intact buddy blocks.  physBuddy selects the
// frame allocator under test.
func BootContigRecovery(physBuddy kernel.PhysPolicy) (*kernel.Kernel, error) {
	return kernel.Boot(kernel.Config{
		Platform:     arch.XeonMPHTT(),
		Mapper:       kernel.SFBuf,
		Cache:        kernel.CacheSharded,
		PhysPages:    32 * ContigRecoveryPages,
		CacheEntries: 2*ContigRecoveryPages + 64,
		PhysBuddy:    physBuddy,
	})
}
