package experiments

import (
	"fmt"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

func init() {
	register("numa", RunNUMA)
}

// RunNUMA measures what socket homing buys on a multi-package machine.
// The machine model charges asymmetric costs — a lock whose home socket
// differs from the acquiring CPU pays the cross-package multiplier, an
// IPI crossing packages pays the interconnect, memory traffic to a
// remote socket's frames pays per byte — so state placement becomes
// measurable: the same contended churn runs once with the mapping state
// homed per socket (shards striped within the frame's home package,
// freelists and pool sub-stocks per socket, socket-scoped reclaim) and
// once with the flat hash-striped layout, whose shard homes fall
// round-robin across packages.
//
// The workload is the NUMA-honest variant of the scale churn: every CPU
// churns private mappings over its OWN socket's frames (AllocNOn), the
// placement any page-local kernel subsystem — per-CPU buffer pools,
// socket-local network queues — actually produces.  It runs in two
// phases.  The hot phase sizes the combined working set to the cache
// capacity, so after warm-up every operation is a hash hit paying
// exactly one shard lock: under the homed layout that shard lives on
// the frame's (= the caller's) package, under the striped layout its
// home falls round-robin across packages and (S-1)/S of acquisitions
// cross the interconnect.  The cold phase then touches fresh
// socket-local frames to force reclaim, and the teardown shootdowns'
// targets — the CPUs that mapped the victims — expose where each
// layout's reclaim harvests: inside the package (homed, socket-scoped)
// or wherever the global hand happens to point (striped).
//
// Reported per socket count and arm: remote lock acquisitions per op,
// remote IPIs per op, total locks per op, IPIs per 1000 ops, and
// simulated cycles per op.  The acceptance criterion (TestNUMAEconomy)
// requires the homed arm to pay at most 1/4 the remote locks/op and 1/2
// the remote IPIs/op of the striped arm at no cycles/op regression.
func RunNUMA(o Options) (*Result, error) {
	res := &Result{
		ID:    "numa",
		Title: "Socket-homed vs. hash-striped mapping state on multi-package Xeons",
		Columns: []string{"config", "sockets", "ops", "rlocks/op", "rIPIs/op",
			"locks/op", "IPIs/1k ops", "cyc/op"},
		Notes: []string{
			"every CPU churns private mappings over frames homed on its own socket (AllocNOn)",
			"homed = shards grouped by the frame's home socket, per-socket pool sub-stocks, socket-scoped reclaim",
			"striped = flat global frame hash: shard homes fall round-robin across packages (Config.Homing=off)",
			"rlocks/op and rIPIs/op are the cross-package subsets of lock acquisitions and IPI deliveries",
		},
	}

	entries := o.scaleInt(256, 64)
	ops := o.scaleInt(160000, 4000)
	for _, sockets := range []int{2, 4} {
		plat := arch.XeonNUMA(sockets, 2)
		for _, armSpec := range []struct {
			name   string
			homing kernel.HomingPolicy
		}{
			{"homed", kernel.HomingAuto},
			{"striped", kernel.HomingOff},
		} {
			cfg := kernel.Config{
				Platform:     plat,
				Mapper:       kernel.SFBuf,
				Cache:        kernel.CacheSharded,
				PhysPages:    8*entries + 128,
				CacheEntries: entries,
				Sockets:      sockets,
				Homing:       armSpec.homing,
			}
			k, err := kernel.Boot(cfg)
			if err != nil {
				return nil, err
			}
			done, err := ChurnNUMA(k, entries, ops)
			if err != nil {
				return nil, fmt.Errorf("numa %s/%d: %w", armSpec.name, sockets, err)
			}
			name := fmt.Sprintf("%s %d-socket", armSpec.name, sockets)
			numaRow(res, k, name, sockets, done)
		}
	}
	return res, nil
}

// numaRow appends one arm's churn economy to the numa result.
func numaRow(res *Result, k *kernel.Kernel, name string, sockets, done int) {
	s := k.M.SnapshotCounters()
	rlocks := float64(s.RemoteLockAcq) / float64(done)
	ripis := float64(s.RemoteIPIs) / float64(done)
	locks := float64(s.LockAcq) / float64(done)
	ipisK := float64(s.IPIsDelivered) * 1000 / float64(done)
	cycOp := float64(k.M.TotalCycles()) / float64(done)
	res.Rows = append(res.Rows, []string{
		name, fmt.Sprintf("%d", sockets), fmt.Sprintf("%d", done),
		fmt.Sprintf("%.4f", rlocks), fmt.Sprintf("%.4f", ripis),
		fmt.Sprintf("%.2f", locks), fmtF(ipisK), fmt.Sprintf("%.1f", cycOp),
	})
	res.SetMetric("remote_locks_per_op/"+name, rlocks)
	res.SetMetric("remote_ipis_per_op/"+name, ripis)
	res.SetMetric("locks_per_op/"+name, locks)
	res.SetMetric("ipis_per_kop/"+name, ipisK)
	res.SetMetric("cyc_per_op/"+name, cycOp)
}

// ChurnNUMA is the socket-local churn: every CPU allocates its own
// disjoint working set from its OWN socket's frames (AllocNOn) and churns
// private Alloc/touch/Free cycles over it.  The CPUs run sequentially —
// the cost model charges each virtual CPU the same cycles either way, and
// a fixed interleaving keeps the reclaim phase's harvest order (and so
// every counter) exactly reproducible, which TestNUMADeterminism pins.
// The parallel cross-socket interleaving stressor is
// kernel.TestCrossSocketChurnStress, under -race.
//
// Two phases.  Hot phase (7/8 of ops): the per-CPU sets together total
// `entries` pages — the cache capacity — so after one warm-up sweep
// every operation hits the hash, and the only lock each Alloc and Free
// pays is its shard's.  Cold phase (1/8 of ops): each CPU churns a
// second, equally sized socket-local set; the first touches miss,
// overflow the cache, and drive reclaim rounds whose batched teardown
// flushes IPI the CPUs that mapped the victims.  Private mappings keep
// the alloc/free path itself IPI-free; every remote cost in this churn
// is therefore placement, not workload.  The returned count is the
// operations actually executed.
func ChurnNUMA(k *kernel.Kernel, entries, ops int) (int, error) {
	ncpu := k.M.NumCPUs()
	topo := k.M.Topology()
	perCPU := entries / ncpu
	if perCPU < 1 {
		perCPU = 1
	}
	hot := make([][]*vm.Page, ncpu)
	cold := make([][]*vm.Page, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		h, err := k.M.Phys.AllocNOn(topo.SocketOf(cpu), perCPU)
		if err != nil {
			return 0, err
		}
		c, err := k.M.Phys.AllocNOn(topo.SocketOf(cpu), perCPU)
		if err != nil {
			return 0, err
		}
		hot[cpu], cold[cpu] = h, c
	}
	nHot := ops * 7 / 8 / ncpu
	nCold := ops / 8 / ncpu
	if nCold < perCPU {
		nCold = perCPU // at least one full cold sweep so reclaim runs
	}
	churn := func(ctx *smp.Context, cpu, n int, pages []*vm.Page) error {
		for i := 0; i < n; i++ {
			pg := pages[(i*(2*cpu+1)+cpu*7)%len(pages)]
			b, err := k.Map.Alloc(ctx, pg, sfbuf.Private)
			if err != nil {
				return err
			}
			if _, err := k.Pmap.Translate(ctx, b.KVA(), false); err != nil {
				return err
			}
			k.Map.Free(ctx, b)
		}
		return nil
	}
	for cpu := 0; cpu < ncpu; cpu++ {
		if err := churn(k.Ctx(cpu), cpu, nHot, hot[cpu]); err != nil {
			return 0, err
		}
	}
	for cpu := 0; cpu < ncpu; cpu++ {
		if err := churn(k.Ctx(cpu), cpu, nCold, cold[cpu]); err != nil {
			return 0, err
		}
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		return 0, fmt.Errorf("leaked references: allocs %d != frees %d", st.Allocs, st.Frees)
	}
	return (nHot + nCold) * ncpu, nil
}
