// Package kva implements the kernel virtual-address arena: the
// general-purpose allocator of temporary kernel virtual addresses that the
// original kernel invokes for every ephemeral mapping, and from which the
// i386 sf_buf implementation reserves its mapping-cache region once at
// boot.
//
// The arena is a first-fit free list with address-ordered coalescing —
// the classic resource-map allocator (cf. the paper's discussion of Vmem).
// It deals in whole pages.
package kva

import (
	"errors"
	"fmt"
	"sync"

	"sfbuf/internal/vm"
)

// ErrExhausted is returned when no free range can satisfy an allocation.
var ErrExhausted = errors.New("kva: virtual address space exhausted")

// span is one free range [start, start+pages*PageSize).
type span struct {
	start uint64
	pages int
}

// Arena allocates page-granular ranges from [base, base+size).
type Arena struct {
	base uint64
	size uint64

	mu        sync.Mutex
	free      []span         // sorted by start address
	allocated map[uint64]int // start -> pages, for double-free detection
	inUse     int            // pages currently allocated
	peak      int            // high-water mark
	allocs    uint64         // cumulative allocations
	splits    uint64         // allocations that split a free span in two
	coalesces uint64         // frees merged with a neighboring span

	// regions partitions the arena's VA space into equal page-count
	// chunks, one per socket on a NUMA machine (SetRegions).  Region-
	// preferring allocation (AllocWindowOn) confines the first-fit scan to
	// the preferred region's addresses before spilling; with one region
	// (the default) every allocation sees the whole arena, exactly the
	// flat allocator.
	regions int
}

// NewArena creates an arena over [base, base+size).  Both must be
// page-aligned.
func NewArena(base, size uint64) *Arena {
	if base%vm.PageSize != 0 || size%vm.PageSize != 0 || size == 0 {
		panic(fmt.Sprintf("kva: misaligned arena base=%#x size=%#x", base, size))
	}
	return &Arena{
		base:      base,
		size:      size,
		free:      []span{{start: base, pages: int(size / vm.PageSize)}},
		allocated: make(map[uint64]int),
		regions:   1,
	}
}

// Base returns the arena's lowest address.
func (a *Arena) Base() uint64 { return a.base }

// Size returns the arena's extent in bytes.
func (a *Arena) Size() uint64 { return a.size }

// SetRegions partitions the arena into n equal page-count regions, one
// per socket, so AllocWindowOn can home window reservations.  The free
// list itself stays one address-ordered resource map — only the
// preference boundaries change, so a partitioned arena with region-
// agnostic callers behaves exactly like a flat one.  Call it at boot; n
// is clamped to [1, total pages].
func (a *Arena) SetRegions(n int) {
	total := int(a.size / vm.PageSize)
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	a.mu.Lock()
	a.regions = n
	a.mu.Unlock()
}

// Regions returns the partition width (1 on a flat arena).
func (a *Arena) Regions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.regions
}

// RegionOf returns the region whose address range contains va — how an
// address-routed free (or a per-socket stats pass) attributes a window
// back to its home socket.  Out-of-arena addresses clamp to the nearest
// region.
func (a *Arena) RegionOf(va uint64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.regionOfLocked(va)
}

func (a *Arena) regionOfLocked(va uint64) int {
	if a.regions <= 1 || va <= a.base {
		return 0
	}
	per := a.regionPagesLocked()
	r := int((va - a.base) / vm.PageSize / uint64(per))
	if r >= a.regions {
		r = a.regions - 1
	}
	return r
}

// regionPagesLocked returns pages per region (the last region absorbs the
// remainder).  Caller holds a.mu.
func (a *Arena) regionPagesLocked() int {
	return int(a.size/vm.PageSize) / a.regions
}

// regionBoundsLocked returns region r's address range [lo, hi).  Caller
// holds a.mu.
func (a *Arena) regionBoundsLocked(r int) (lo, hi uint64) {
	per := uint64(a.regionPagesLocked()) * vm.PageSize
	lo = a.base + uint64(r)*per
	hi = lo + per
	if r == a.regions-1 {
		hi = a.base + a.size
	}
	return lo, hi
}

// Alloc carves out pages contiguous virtual pages, returning the base
// address of the range.
func (a *Arena) Alloc(pages int) (uint64, error) {
	return a.AllocAligned(pages, 1)
}

// AllocAligned carves out pages contiguous virtual pages whose base
// address is aligned to alignPages pages (first fit).  Alignment is what
// lets a run window line up with a simulated superpage boundary so the
// promotion path can collapse it to one TLB entry.  alignPages must be a
// power of two; 1 means no constraint.
func (a *Arena) AllocAligned(pages, alignPages int) (uint64, error) {
	if pages <= 0 {
		return 0, fmt.Errorf("kva: invalid allocation of %d pages", pages)
	}
	if alignPages <= 0 || alignPages&(alignPages-1) != 0 {
		return 0, fmt.Errorf("kva: alignment %d pages is not a power of two", alignPages)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if va, ok := a.allocAlignedLocked(pages, alignPages, a.base, a.base+a.size); ok {
		return va, nil
	}
	return 0, ErrExhausted
}

// allocAlignedLocked is the first-fit carve restricted to [lo, hi): only
// placements whose whole range lies inside the bounds are accepted.  A
// free span straddling a bound can still serve the portion inside it.
// With the full arena as bounds this is exactly the flat first fit.
// Caller holds a.mu.
func (a *Arena) allocAlignedLocked(pages, alignPages int, lo, hi uint64) (uint64, bool) {
	alignBytes := uint64(alignPages) * vm.PageSize
	for i := range a.free {
		s := &a.free[i]
		from := s.start
		if from < lo {
			from = lo
		}
		va := (from + alignBytes - 1) &^ (alignBytes - 1)
		if va < s.start || va+uint64(pages)*vm.PageSize > hi {
			continue
		}
		lead := int((va - s.start) / vm.PageSize)
		if s.pages < lead+pages {
			continue
		}
		switch trail := s.pages - lead - pages; {
		case lead == 0 && trail == 0:
			a.free = append(a.free[:i], a.free[i+1:]...)
		case lead == 0:
			s.start = va + uint64(pages)*vm.PageSize
			s.pages = trail
		case trail == 0:
			s.pages = lead
		default:
			// The allocation lands mid-span: the span splits in two.
			s.pages = lead
			a.free = append(a.free, span{})
			copy(a.free[i+2:], a.free[i+1:])
			a.free[i+1] = span{start: va + uint64(pages)*vm.PageSize, pages: trail}
			a.splits++
		}
		a.allocated[va] = pages
		a.inUse += pages
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		a.allocs++
		return va, true
	}
	return 0, false
}

// AllocWindow reserves a VA window of pages usable pages followed by
// guardPages of reserved-but-never-mapped address space, with the usable
// base aligned to alignPages pages.  Nothing is ever mapped at the guard
// pages, so a copy or translation running off the end of the window
// faults (pmap.ErrFault) instead of silently landing in a neighboring
// mapping.  The returned address frees the whole reservation, guard
// included, through Free.
func (a *Arena) AllocWindow(pages, guardPages, alignPages int) (uint64, error) {
	if guardPages < 0 {
		return 0, fmt.Errorf("kva: invalid guard of %d pages", guardPages)
	}
	return a.AllocAligned(pages+guardPages, alignPages)
}

// AllocWindowOn is AllocWindow homed on a region: the first-fit scan is
// confined to the region's address range first, spilling to the other
// regions in ascending order only when it cannot fit there.  A freed
// window routes back to its home region automatically, because Free is
// address-ordered.  region < 0 (or a one-region arena) is exactly
// AllocWindow.
func (a *Arena) AllocWindowOn(region, pages, guardPages, alignPages int) (uint64, error) {
	if guardPages < 0 {
		return 0, fmt.Errorf("kva: invalid guard of %d pages", guardPages)
	}
	if pages <= 0 {
		return 0, fmt.Errorf("kva: invalid allocation of %d pages", pages)
	}
	if alignPages <= 0 || alignPages&(alignPages-1) != 0 {
		return 0, fmt.Errorf("kva: alignment %d pages is not a power of two", alignPages)
	}
	total := pages + guardPages
	a.mu.Lock()
	defer a.mu.Unlock()
	if region < 0 || a.regions <= 1 {
		if va, ok := a.allocAlignedLocked(total, alignPages, a.base, a.base+a.size); ok {
			return va, nil
		}
		return 0, ErrExhausted
	}
	if region >= a.regions {
		region = a.regions - 1
	}
	lo, hi := a.regionBoundsLocked(region)
	if va, ok := a.allocAlignedLocked(total, alignPages, lo, hi); ok {
		return va, nil
	}
	for r := 0; r < a.regions; r++ {
		if r == region {
			continue
		}
		lo, hi := a.regionBoundsLocked(r)
		if va, ok := a.allocAlignedLocked(total, alignPages, lo, hi); ok {
			return va, nil
		}
	}
	// Last resort: a request wider than a region (or one only satisfiable
	// straddling a boundary) gets the flat whole-arena scan — homing is a
	// preference, never a capacity limit.
	if va, ok := a.allocAlignedLocked(total, alignPages, a.base, a.base+a.size); ok {
		return va, nil
	}
	return 0, ErrExhausted
}

// Free returns the range starting at va to the arena.  The range must be
// exactly one previously allocated with Alloc; partial frees and double
// frees panic, since in a kernel either is memory corruption.
func (a *Arena) Free(va uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pages, ok := a.allocated[va]
	if !ok {
		panic(fmt.Sprintf("kva: free of unallocated va %#x", va))
	}
	delete(a.allocated, va)
	a.inUse -= pages

	// Insert in address order, then coalesce with neighbors.
	i := 0
	for i < len(a.free) && a.free[i].start < va {
		i++
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{start: va, pages: pages}

	// Coalesce with successor first so the index stays valid.
	if i+1 < len(a.free) && a.free[i].end() == a.free[i+1].start {
		a.free[i].pages += a.free[i+1].pages
		a.free = append(a.free[:i+1], a.free[i+2:]...)
		a.coalesces++
	}
	if i > 0 && a.free[i-1].end() == a.free[i].start {
		a.free[i-1].pages += a.free[i].pages
		a.free = append(a.free[:i], a.free[i+1:]...)
		a.coalesces++
	}
}

func (s span) end() uint64 { return s.start + uint64(s.pages)*vm.PageSize }

// InUsePages returns the number of pages currently allocated.
func (a *Arena) InUsePages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// PeakPages returns the allocation high-water mark in pages.
func (a *Arena) PeakPages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Allocs returns the cumulative allocation count.
func (a *Arena) Allocs() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs
}

// FreeRanges returns the number of discrete free spans — a fragmentation
// measure used by tests to verify coalescing.
func (a *Arena) FreeRanges() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}

// FreePages returns the total free page count.
func (a *Arena) FreePages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.free {
		n += s.pages
	}
	return n
}

// Splits returns how many allocations landed mid-span, splitting one free
// range into two — the fragmentation-producing event.
func (a *Arena) Splits() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.splits
}

// Coalesces returns how many frees merged with a neighboring free range —
// the fragmentation-repairing event.
func (a *Arena) Coalesces() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.coalesces
}

// LargestFreeRun returns the longest free span in pages: the biggest
// contiguous window reservation the arena could currently satisfy.
func (a *Arena) LargestFreeRun() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	max := 0
	for _, s := range a.free {
		if s.pages > max {
			max = s.pages
		}
	}
	return max
}
