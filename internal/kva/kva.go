// Package kva implements the kernel virtual-address arena: the
// general-purpose allocator of temporary kernel virtual addresses that the
// original kernel invokes for every ephemeral mapping, and from which the
// i386 sf_buf implementation reserves its mapping-cache region once at
// boot.
//
// The arena is a first-fit free list with address-ordered coalescing —
// the classic resource-map allocator (cf. the paper's discussion of Vmem).
// It deals in whole pages.
package kva

import (
	"errors"
	"fmt"
	"sync"

	"sfbuf/internal/vm"
)

// ErrExhausted is returned when no free range can satisfy an allocation.
var ErrExhausted = errors.New("kva: virtual address space exhausted")

// span is one free range [start, start+pages*PageSize).
type span struct {
	start uint64
	pages int
}

// Arena allocates page-granular ranges from [base, base+size).
type Arena struct {
	base uint64
	size uint64

	mu        sync.Mutex
	free      []span         // sorted by start address
	allocated map[uint64]int // start -> pages, for double-free detection
	inUse     int            // pages currently allocated
	peak      int            // high-water mark
	allocs    uint64         // cumulative allocations
}

// NewArena creates an arena over [base, base+size).  Both must be
// page-aligned.
func NewArena(base, size uint64) *Arena {
	if base%vm.PageSize != 0 || size%vm.PageSize != 0 || size == 0 {
		panic(fmt.Sprintf("kva: misaligned arena base=%#x size=%#x", base, size))
	}
	return &Arena{
		base:      base,
		size:      size,
		free:      []span{{start: base, pages: int(size / vm.PageSize)}},
		allocated: make(map[uint64]int),
	}
}

// Base returns the arena's lowest address.
func (a *Arena) Base() uint64 { return a.base }

// Size returns the arena's extent in bytes.
func (a *Arena) Size() uint64 { return a.size }

// Alloc carves out pages contiguous virtual pages, returning the base
// address of the range.
func (a *Arena) Alloc(pages int) (uint64, error) {
	if pages <= 0 {
		return 0, fmt.Errorf("kva: invalid allocation of %d pages", pages)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.free {
		s := &a.free[i]
		if s.pages < pages {
			continue
		}
		va := s.start
		s.start += uint64(pages) * vm.PageSize
		s.pages -= pages
		if s.pages == 0 {
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		a.allocated[va] = pages
		a.inUse += pages
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		a.allocs++
		return va, nil
	}
	return 0, ErrExhausted
}

// Free returns the range starting at va to the arena.  The range must be
// exactly one previously allocated with Alloc; partial frees and double
// frees panic, since in a kernel either is memory corruption.
func (a *Arena) Free(va uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pages, ok := a.allocated[va]
	if !ok {
		panic(fmt.Sprintf("kva: free of unallocated va %#x", va))
	}
	delete(a.allocated, va)
	a.inUse -= pages

	// Insert in address order, then coalesce with neighbors.
	i := 0
	for i < len(a.free) && a.free[i].start < va {
		i++
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{start: va, pages: pages}

	// Coalesce with successor first so the index stays valid.
	if i+1 < len(a.free) && a.free[i].end() == a.free[i+1].start {
		a.free[i].pages += a.free[i+1].pages
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].end() == a.free[i].start {
		a.free[i-1].pages += a.free[i].pages
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

func (s span) end() uint64 { return s.start + uint64(s.pages)*vm.PageSize }

// InUsePages returns the number of pages currently allocated.
func (a *Arena) InUsePages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// PeakPages returns the allocation high-water mark in pages.
func (a *Arena) PeakPages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Allocs returns the cumulative allocation count.
func (a *Arena) Allocs() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs
}

// FreeRanges returns the number of discrete free spans — a fragmentation
// measure used by tests to verify coalescing.
func (a *Arena) FreeRanges() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}

// FreePages returns the total free page count.
func (a *Arena) FreePages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.free {
		n += s.pages
	}
	return n
}
