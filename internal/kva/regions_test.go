package kva

// Region-partition unit tests: SetRegions/RegionOf bookkeeping, the
// region-first AllocWindowOn scan with ascending spill-over, and the
// address-routed Free that returns a window to its owning region without
// any explicit home tag.

import (
	"testing"

	"sfbuf/internal/vm"
)

func TestSetRegionsAndRegionOf(t *testing.T) {
	a := NewArena(testBase, 16*vm.PageSize)
	if a.Regions() != 1 {
		t.Fatalf("fresh arena regions = %d, want 1", a.Regions())
	}
	a.SetRegions(4)
	if a.Regions() != 4 {
		t.Fatalf("regions = %d, want 4", a.Regions())
	}
	for page, want := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 15: 3} {
		va := uint64(testBase) + uint64(page)*vm.PageSize
		if got := a.RegionOf(va); got != want {
			t.Errorf("RegionOf(page %d) = %d, want %d", page, got, want)
		}
	}
	// Clamping: more regions than pages, and out-of-arena addresses.
	a.SetRegions(1000)
	if a.Regions() != 16 {
		t.Fatalf("oversized SetRegions clamped to %d, want 16", a.Regions())
	}
	a.SetRegions(2)
	if got := a.RegionOf(testBase + 999*16*vm.PageSize); got != 1 {
		t.Fatalf("RegionOf past the arena = %d, want clamp to last region", got)
	}
}

// TestAllocWindowOnHomesAndSpills: each region serves its own windows
// first; once a region is full the allocation spills to the others in
// ascending order instead of failing.
func TestAllocWindowOnHomesAndSpills(t *testing.T) {
	a := NewArena(testBase, 16*vm.PageSize)
	a.SetRegions(2) // pages [0,8) region 0, [8,16) region 1

	v1, err := a.AllocWindowOn(1, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.RegionOf(v1); got != 1 {
		t.Fatalf("window homed on region %d, want 1", got)
	}
	v2, err := a.AllocWindowOn(1, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.RegionOf(v2); got != 1 {
		t.Fatalf("second window homed on region %d, want 1", got)
	}
	// Region 1 is now full: the next request must spill into region 0.
	v3, err := a.AllocWindowOn(1, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.RegionOf(v3); got != 0 {
		t.Fatalf("spilled window landed in region %d, want 0", got)
	}

	// Address-routed Free: releasing v1 re-opens region 1, and the next
	// homed request lands back there — no home tag needed anywhere.
	a.Free(v1)
	v4, err := a.AllocWindowOn(1, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.RegionOf(v4); got != 1 {
		t.Fatalf("post-free window landed in region %d, want 1 (address-routed return)", got)
	}
	a.Free(v2)
	a.Free(v3)
	a.Free(v4)
	if a.FreeRanges() != 1 || a.FreePages() != 16 {
		t.Fatalf("after full drain: %d ranges / %d pages, want 1/16 (coalescing crossed regions)",
			a.FreeRanges(), a.FreePages())
	}
}

// TestAllocWindowOnFlatIdentity: region < 0 and a one-region arena both
// degenerate to AllocWindow's bounded first-fit over the whole arena, so
// a partitioned arena with agnostic callers behaves exactly like a flat
// one.
func TestAllocWindowOnFlatIdentity(t *testing.T) {
	flat := NewArena(testBase, 16*vm.PageSize)
	agnostic := NewArena(testBase, 16*vm.PageSize)
	agnostic.SetRegions(4)
	for i := 0; i < 3; i++ {
		vf, err := flat.AllocWindow(3, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		va, err := agnostic.AllocWindowOn(-1, 3, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if vf != va {
			t.Fatalf("alloc %d: region-agnostic window %#x diverges from flat %#x", i, va, vf)
		}
	}
}

// TestAllocWindowOnExhaustion: when every region is full the homed path
// reports ErrExhausted like the flat one, and rejects the same invalid
// arguments.
func TestAllocWindowOnExhaustion(t *testing.T) {
	a := NewArena(testBase, 8*vm.PageSize)
	a.SetRegions(2)
	// Wider than any region: the homed path must fall back to the flat
	// whole-arena scan rather than fail with free space on hand.
	if _, err := a.AllocWindowOn(0, 8, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocWindowOn(0, 1, 0, 1); err == nil {
		t.Fatal("full arena should exhaust the homed path")
	}
	if _, err := a.AllocWindowOn(0, 0, 0, 1); err == nil {
		t.Fatal("zero-page window should be rejected")
	}
	if _, err := a.AllocWindowOn(0, 1, -1, 1); err == nil {
		t.Fatal("negative guard should be rejected")
	}
	if _, err := a.AllocWindowOn(0, 1, 0, 3); err == nil {
		t.Fatal("non-power-of-two alignment should be rejected")
	}
	// An out-of-range region id clamps instead of crashing the caller.
	b := NewArena(testBase, 8*vm.PageSize)
	b.SetRegions(2)
	if _, err := b.AllocWindowOn(9, 2, 0, 1); err != nil {
		t.Fatalf("oversized region id should clamp, got %v", err)
	}
}
