package kva

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfbuf/internal/vm"
)

const testBase = 0xC000_0000

func TestAllocFreeCoalesce(t *testing.T) {
	a := NewArena(testBase, 16*vm.PageSize)
	v1, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := a.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 0 {
		t.Fatalf("free pages = %d, want 0", a.FreePages())
	}
	// Free out of order; the arena must coalesce back to a single span.
	a.Free(v2)
	a.Free(v1)
	a.Free(v3)
	if a.FreeRanges() != 1 {
		t.Fatalf("free ranges = %d, want 1 (coalescing failed)", a.FreeRanges())
	}
	if a.FreePages() != 16 {
		t.Fatalf("free pages = %d, want 16", a.FreePages())
	}
}

func TestExhaustion(t *testing.T) {
	a := NewArena(testBase, 4*vm.PageSize)
	if _, err := a.Alloc(5); err != ErrExhausted {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	v, _ := a.Alloc(4)
	if _, err := a.Alloc(1); err != ErrExhausted {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	a.Free(v)
	if _, err := a.Alloc(4); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewArena(testBase, 4*vm.PageSize)
	v, _ := a.Alloc(1)
	a.Free(v)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	a.Free(v)
}

func TestFreeOfUnallocatedPanics(t *testing.T) {
	a := NewArena(testBase, 4*vm.PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("free of never-allocated address must panic")
		}
	}()
	a.Free(testBase + vm.PageSize)
}

func TestMisalignedArenaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned arena must panic")
		}
	}()
	NewArena(testBase+1, vm.PageSize)
}

func TestPeakTracking(t *testing.T) {
	a := NewArena(testBase, 8*vm.PageSize)
	v1, _ := a.Alloc(3)
	v2, _ := a.Alloc(4)
	a.Free(v1)
	a.Free(v2)
	if a.PeakPages() != 7 {
		t.Fatalf("peak = %d, want 7", a.PeakPages())
	}
	if a.InUsePages() != 0 {
		t.Fatalf("in use = %d, want 0", a.InUsePages())
	}
	if a.Allocs() != 2 {
		t.Fatalf("allocs = %d, want 2", a.Allocs())
	}
}

// TestNoOverlap allocates and frees randomly and checks that live ranges
// never overlap and accounting always balances.
func TestNoOverlap(t *testing.T) {
	const pages = 64
	a := NewArena(testBase, pages*vm.PageSize)
	rng := rand.New(rand.NewSource(7))
	type alloc struct {
		va uint64
		n  int
	}
	var live []alloc
	inUse := 0
	for step := 0; step < 2000; step++ {
		if rng.Intn(2) == 0 && inUse < pages {
			n := rng.Intn(pages-inUse) + 1
			va, err := a.Alloc(n)
			if err != nil {
				continue // fragmentation can legitimately fail first-fit
			}
			for _, other := range live {
				aEnd := va + uint64(n)*vm.PageSize
				oEnd := other.va + uint64(other.n)*vm.PageSize
				if va < oEnd && other.va < aEnd {
					t.Fatalf("overlap: [%#x,%d) with [%#x,%d)", va, n, other.va, other.n)
				}
			}
			live = append(live, alloc{va, n})
			inUse += n
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			a.Free(live[i].va)
			inUse -= live[i].n
			live = append(live[:i], live[i+1:]...)
		}
		if a.InUsePages() != inUse {
			t.Fatalf("in-use accounting drifted: %d vs %d", a.InUsePages(), inUse)
		}
	}
	for _, l := range live {
		a.Free(l.va)
	}
	if a.FreeRanges() != 1 || a.FreePages() != pages {
		t.Fatalf("final state ranges=%d pages=%d", a.FreeRanges(), a.FreePages())
	}
}

// Property: allocations are always page-aligned and inside the arena.
func TestQuickAlignmentAndBounds(t *testing.T) {
	a := NewArena(testBase, 128*vm.PageSize)
	f := func(n uint8) bool {
		pages := int(n)%16 + 1
		va, err := a.Alloc(pages)
		if err != nil {
			return true // exhaustion is legal
		}
		defer a.Free(va)
		if va%vm.PageSize != 0 {
			return false
		}
		return va >= testBase && va+uint64(pages)*vm.PageSize <= testBase+128*vm.PageSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAligned(t *testing.T) {
	a := NewArena(testBase, 128*vm.PageSize)
	// Disturb the arena so the aligned request lands mid-span.
	pad, err := a.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	va, err := a.AllocAligned(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if va%(8*vm.PageSize) != 0 {
		t.Fatalf("va %#x not aligned to 8 pages", va)
	}
	if a.Splits() == 0 {
		t.Error("mid-span aligned allocation should have split a free range")
	}
	coalesces := a.Coalesces()
	a.Free(va)
	a.Free(pad)
	if a.Coalesces() <= coalesces {
		t.Error("frees should have coalesced neighbors")
	}
	if a.FreeRanges() != 1 || a.FreePages() != 128 {
		t.Fatalf("final state ranges=%d pages=%d", a.FreeRanges(), a.FreePages())
	}
	if a.LargestFreeRun() != 128 {
		t.Fatalf("largest free run = %d, want 128", a.LargestFreeRun())
	}
	if _, err := a.AllocAligned(4, 3); err == nil {
		t.Fatal("non-power-of-two alignment must be rejected")
	}
}

func TestAllocWindowGuard(t *testing.T) {
	a := NewArena(testBase, 64*vm.PageSize)
	w1, err := a.AllocWindow(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := a.AllocWindow(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The guard page is part of the reservation: the second window must
	// start beyond usable+guard of the first.
	if w2 < w1+5*vm.PageSize {
		t.Fatalf("guard not reserved: w1=%#x w2=%#x", w1, w2)
	}
	a.Free(w1)
	a.Free(w2)
	if a.FreeRanges() != 1 || a.FreePages() != 64 {
		t.Fatalf("windows did not free whole: ranges=%d pages=%d", a.FreeRanges(), a.FreePages())
	}
}
