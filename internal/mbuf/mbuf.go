// Package mbuf implements the network stack's buffer chains.  An mbuf
// either carries a small amount of inline data (protocol headers, small
// payloads) or references external storage: a page mapped by an sf_buf,
// which is how zero-copy send and sendfile attach user and file pages to
// packets without copying (Section 2.3).
//
// External storage is reference counted.  The sf_buf is released — and the
// page unwired — only when the last mbuf referencing it is freed, which in
// TCP terms happens when the acknowledgment covering those bytes arrives.
// That deferred release is what makes network ephemeral mappings shared
// rather than CPU-private: "any CPU may use the mappings to retransmit the
// pages".
package mbuf

import (
	"fmt"
	"sync/atomic"

	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// MLEN is the inline data capacity of one mbuf.
const MLEN = 224

// Ext is reference-counted external storage: a page held under an
// ephemeral mapping for as long as any mbuf references it.
type Ext struct {
	// Buf is the ephemeral mapping; nil for externals not backed by an
	// sf_buf (e.g. driver-owned receive pages before mapping).
	Buf *sfbuf.Buf
	// Page is the underlying physical page.
	Page *vm.Page
	refs atomic.Int32
	// free is invoked exactly once when the last reference drops; it
	// releases the sf_buf and unwires the page.
	free func(ctx *smp.Context)
}

// NewExt creates external storage with one reference.
func NewExt(buf *sfbuf.Buf, page *vm.Page, free func(ctx *smp.Context)) *Ext {
	e := &Ext{Buf: buf, Page: page, free: free}
	e.refs.Store(1)
	return e
}

// Ref adds a reference (packet segmentation sharing one page across
// several packets, retransmission queues).
func (e *Ext) Ref() { e.refs.Add(1) }

// Refs returns the current reference count (diagnostics and tests).
func (e *Ext) Refs() int32 { return e.refs.Load() }

// Unref drops one reference, running the release hook at zero.
func (e *Ext) Unref(ctx *smp.Context) {
	n := e.refs.Add(-1)
	if n < 0 {
		panic("mbuf: external storage reference underflow")
	}
	if n == 0 && e.free != nil {
		e.free(ctx)
	}
}

// RunRelease coalesces the release of a vectored mapping run.  Sendfile
// and the zero-copy socket send map a run of pages with one AllocBatch;
// each page's ext free hook calls Unref, and when the last page of the
// run is released — by the acknowledgments covering its bytes — the whole
// run is unmapped with one FreeBatch and its pages unwired.  Batches thus
// stay paired alloc-to-free, which the original kernel's run-at-once
// address recycling requires, while individual mbufs keep their
// independent ACK-driven lifetimes.
type RunRelease struct {
	m     sfbuf.Mapper
	bufs  []*sfbuf.Buf
	run   *sfbuf.Run
	pages []*vm.Page
	left  atomic.Int32
}

// NewRunRelease builds the release state for one mapped run, holding one
// reference per buffer.
func NewRunRelease(m sfbuf.Mapper, bufs []*sfbuf.Buf, pages []*vm.Page) *RunRelease {
	r := &RunRelease{m: m, bufs: bufs, pages: pages}
	r.left.Store(int32(len(bufs)))
	return r
}

// NewRunReleaseMapped builds the release state for a contiguous-run
// mapping (sfbuf.AllocRun): one reference per page, and the last drop
// releases the whole window with one FreeRun — one bulk page-table pass
// and at most one shootdown flush, instead of a FreeBatch over scattered
// buffers.
func NewRunReleaseMapped(m sfbuf.Mapper, run *sfbuf.Run, pages []*vm.Page) *RunRelease {
	r := &RunRelease{m: m, run: run, pages: pages}
	r.left.Store(int32(run.Len()))
	return r
}

// Unref drops one of the run's references; the last one releases the
// whole run.  It has the ext free hook's signature, so it is attached
// directly as each mbuf's release function.
func (r *RunRelease) Unref(ctx *smp.Context) {
	n := r.left.Add(-1)
	if n < 0 {
		panic("mbuf: vectored run reference underflow")
	}
	if n > 0 {
		return
	}
	if r.run != nil {
		r.m.FreeRun(ctx, r.run)
	} else {
		r.m.FreeBatch(ctx, r.bufs)
	}
	for _, pg := range r.pages {
		pg.Unwire()
	}
}

// Drop releases n references without an mbuf free — the unwind path when
// a run was mapped but some of its pages never made it onto a chain.
func (r *RunRelease) Drop(ctx *smp.Context, n int) {
	for ; n > 0; n-- {
		r.Unref(ctx)
	}
}

// Mbuf is one buffer in a chain.
type Mbuf struct {
	// Inline holds header/small data when Ext is nil.
	Inline [MLEN]byte
	// Ext points at external page storage when non-nil.
	Ext *Ext
	// Off and Len delimit this mbuf's bytes: within Inline, or within
	// the external page (so Off+Len <= PageSize).
	Off, Len int
	// Next chains mbufs within one packet.
	Next *Mbuf
}

// NewInline builds an inline mbuf holding a copy of data.
func NewInline(data []byte) *Mbuf {
	if len(data) > MLEN {
		panic(fmt.Sprintf("mbuf: inline data %d exceeds MLEN", len(data)))
	}
	m := &Mbuf{Len: len(data)}
	copy(m.Inline[:], data)
	return m
}

// NewExtMbuf builds an mbuf referencing ext's bytes [off, off+n).  The
// caller is responsible for the reference accounting (this constructor
// does not Ref).
func NewExtMbuf(ext *Ext, off, n int) *Mbuf {
	if off < 0 || n < 0 || off+n > vm.PageSize {
		panic(fmt.Sprintf("mbuf: external range [%d,%d) out of page", off, off+n))
	}
	return &Mbuf{Ext: ext, Off: off, Len: n}
}

// KVA returns the kernel virtual address of this mbuf's first byte, which
// for external mbufs dereferences the ephemeral mapping.  Inline mbufs
// have no simulated address; KVA returns 0 for them and callers use
// InlineBytes.
func (m *Mbuf) KVA() uint64 {
	if m.Ext == nil || m.Ext.Buf == nil {
		return 0
	}
	return m.Ext.Buf.KVA() + uint64(m.Off)
}

// InlineBytes returns the inline payload slice.
func (m *Mbuf) InlineBytes() []byte { return m.Inline[m.Off : m.Off+m.Len] }

// Chain is a packet: a list of mbufs with a total length.
type Chain struct {
	Head *Mbuf
	tail *Mbuf
	// PktLen is the total payload length.
	PktLen int
}

// Append adds an mbuf to the chain.
func (c *Chain) Append(m *Mbuf) {
	if c.Head == nil {
		c.Head = m
	} else {
		c.tail.Next = m
	}
	c.tail = m
	c.PktLen += m.Len
}

// Mbufs returns the number of mbufs in the chain.
func (c *Chain) Mbufs() int {
	n := 0
	for m := c.Head; m != nil; m = m.Next {
		n++
	}
	return n
}

// Free releases every mbuf in the chain, dropping external references.
func (c *Chain) Free(ctx *smp.Context) {
	for m := c.Head; m != nil; m = m.Next {
		if m.Ext != nil {
			m.Ext.Unref(ctx)
		}
	}
	c.Head, c.tail, c.PktLen = nil, nil, 0
}

// Split carves the first n bytes off the chain into a new chain, sharing
// external storage (references are added, never copied) — the MTU
// segmentation primitive.  It returns nil when the chain is empty.
func (c *Chain) Split(n int) *Chain {
	if c.Head == nil || n <= 0 {
		return nil
	}
	out := &Chain{}
	for n > 0 && c.Head != nil {
		m := c.Head
		if m.Len <= n {
			// Whole mbuf moves: reference ownership transfers.
			c.Head = m.Next
			m.Next = nil
			if c.Head == nil {
				c.tail = nil
			}
			c.PktLen -= m.Len
			n -= m.Len
			out.Append(m)
			continue
		}
		// Partial: the new chain takes a prefix view; external storage
		// gains a reference.  Inline partials copy bytes.
		var pre *Mbuf
		if m.Ext != nil {
			m.Ext.Ref()
			pre = NewExtMbuf(m.Ext, m.Off, n)
		} else {
			pre = NewInline(m.Inline[m.Off : m.Off+n])
		}
		m.Off += n
		m.Len -= n
		c.PktLen -= n
		out.Append(pre)
		n = 0
	}
	return out
}
