package mbuf

import (
	"testing"
	"testing/quick"

	"sfbuf/internal/arch"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

func testCtx() *smp.Context {
	m := smp.NewMachine(arch.XeonMP(), 32, true)
	return m.Ctx(0)
}

func TestInlineMbuf(t *testing.T) {
	m := NewInline([]byte("hello"))
	if m.Len != 5 || string(m.InlineBytes()) != "hello" {
		t.Fatalf("inline mbuf wrong: len=%d", m.Len)
	}
	if m.KVA() != 0 {
		t.Fatal("inline mbuf must have no KVA")
	}
}

func TestInlineOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized inline must panic")
		}
	}()
	NewInline(make([]byte, MLEN+1))
}

func TestExtRefCounting(t *testing.T) {
	ctx := testCtx()
	freed := 0
	e := NewExt(nil, nil, func(*smp.Context) { freed++ })
	e.Ref()
	e.Ref()
	if e.Refs() != 3 {
		t.Fatalf("refs = %d", e.Refs())
	}
	e.Unref(ctx)
	e.Unref(ctx)
	if freed != 0 {
		t.Fatal("freed too early")
	}
	e.Unref(ctx)
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
}

func TestExtUnderflowPanics(t *testing.T) {
	ctx := testCtx()
	e := NewExt(nil, nil, nil)
	e.Unref(ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow must panic")
		}
	}()
	e.Unref(ctx)
}

func TestExtRangeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-page range must panic")
		}
	}()
	NewExtMbuf(NewExt(nil, nil, nil), vm.PageSize-10, 20)
}

func TestChainAppendAndLen(t *testing.T) {
	c := &Chain{}
	c.Append(NewInline(make([]byte, 100)))
	c.Append(NewInline(make([]byte, 50)))
	if c.PktLen != 150 || c.Mbufs() != 2 {
		t.Fatalf("chain len=%d mbufs=%d", c.PktLen, c.Mbufs())
	}
}

func TestChainFreeReleasesExts(t *testing.T) {
	ctx := testCtx()
	freed := 0
	c := &Chain{}
	for i := 0; i < 3; i++ {
		e := NewExt(nil, nil, func(*smp.Context) { freed++ })
		c.Append(NewExtMbuf(e, 0, 100))
	}
	c.Free(ctx)
	if freed != 3 {
		t.Fatalf("freed = %d, want 3", freed)
	}
	if c.PktLen != 0 || c.Head != nil {
		t.Fatal("chain not emptied")
	}
}

func TestSplitWholeMbufsTransferOwnership(t *testing.T) {
	ctx := testCtx()
	freed := 0
	c := &Chain{}
	e1 := NewExt(nil, nil, func(*smp.Context) { freed++ })
	e2 := NewExt(nil, nil, func(*smp.Context) { freed++ })
	c.Append(NewExtMbuf(e1, 0, 100))
	c.Append(NewExtMbuf(e2, 0, 200))

	head := c.Split(100)
	if head.PktLen != 100 || c.PktLen != 200 {
		t.Fatalf("split lens = %d/%d", head.PktLen, c.PktLen)
	}
	head.Free(ctx)
	if freed != 1 {
		t.Fatalf("freed = %d, want 1 (ownership transferred, not shared)", freed)
	}
	c.Free(ctx)
	if freed != 2 {
		t.Fatalf("freed = %d, want 2", freed)
	}
}

func TestSplitPartialSharesExternal(t *testing.T) {
	ctx := testCtx()
	freed := 0
	e := NewExt(nil, nil, func(*smp.Context) { freed++ })
	c := &Chain{}
	c.Append(NewExtMbuf(e, 0, 1000))

	head := c.Split(300)
	if head.PktLen != 300 || c.PktLen != 700 {
		t.Fatalf("split lens = %d/%d", head.PktLen, c.PktLen)
	}
	if e.Refs() != 2 {
		t.Fatalf("refs = %d, want 2 (shared across split)", e.Refs())
	}
	// The remainder must start where the prefix ended.
	if c.Head.Off != 300 || c.Head.Len != 700 {
		t.Fatalf("remainder off=%d len=%d", c.Head.Off, c.Head.Len)
	}
	head.Free(ctx)
	if freed != 0 {
		t.Fatal("external freed while still referenced")
	}
	c.Free(ctx)
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
}

func TestSplitPartialInlineCopies(t *testing.T) {
	c := &Chain{}
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	c.Append(NewInline(data))
	head := c.Split(40)
	if head.PktLen != 40 || c.PktLen != 60 {
		t.Fatalf("split lens = %d/%d", head.PktLen, c.PktLen)
	}
	if head.Head.InlineBytes()[39] != 39 {
		t.Fatal("prefix bytes wrong")
	}
	if c.Head.InlineBytes()[0] != 40 {
		t.Fatal("remainder bytes wrong")
	}
}

func TestSplitEntireChain(t *testing.T) {
	c := &Chain{}
	c.Append(NewInline(make([]byte, 10)))
	head := c.Split(10)
	if head.PktLen != 10 || c.PktLen != 0 || c.Head != nil {
		t.Fatal("full split left residue")
	}
	if c.Split(5) != nil {
		t.Fatal("split of empty chain must return nil")
	}
}

// Property: any sequence of random splits preserves total length, keeps
// every chain's bytes in order, and balances external references exactly.
func TestQuickSplitConservation(t *testing.T) {
	ctx := testCtx()
	f := func(sizes []uint16, cuts []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 8 {
			return true
		}
		c := &Chain{}
		var exts []*Ext
		total := 0
		for _, s := range sizes {
			n := int(s)%vm.PageSize + 1
			e := NewExt(nil, nil, nil)
			exts = append(exts, e)
			c.Append(NewExtMbuf(e, 0, n))
			total += n
		}
		var pieces []*Chain
		for _, cut := range cuts {
			if c.PktLen == 0 {
				break
			}
			n := int(cut)%c.PktLen + 1
			p := c.Split(n)
			if p == nil {
				return false
			}
			pieces = append(pieces, p)
		}
		sum := c.PktLen
		for _, p := range pieces {
			sum += p.PktLen
		}
		if sum != total {
			return false
		}
		c.Free(ctx)
		for _, p := range pieces {
			p.Free(ctx)
		}
		for _, e := range exts {
			if e.Refs() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentationLikeSendPath(t *testing.T) {
	// Segmenting a multi-page chain at an MSS that straddles page
	// boundaries must preserve total length and reference every external
	// exactly as many times as packets touch it.
	ctx := testCtx()
	c := &Chain{}
	var exts []*Ext
	for i := 0; i < 4; i++ {
		e := NewExt(nil, nil, nil)
		exts = append(exts, e)
		c.Append(NewExtMbuf(e, 0, vm.PageSize))
	}
	total := c.PktLen
	var pkts []*Chain
	for c.PktLen > 0 {
		p := c.Split(min(1460, c.PktLen))
		pkts = append(pkts, p)
	}
	sum := 0
	for _, p := range pkts {
		sum += p.PktLen
	}
	if sum != total {
		t.Fatalf("segmentation lost bytes: %d != %d", sum, total)
	}
	// Free all packets; every ext must reach exactly zero refs (no
	// leaks, no double frees — Unref panics on underflow).
	for _, p := range pkts {
		p.Free(ctx)
	}
	for i, e := range exts {
		if e.Refs() != 0 {
			t.Fatalf("ext %d refs = %d, want 0", i, e.Refs())
		}
	}
}
