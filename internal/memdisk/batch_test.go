package memdisk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/vm"
)

// TestBatchAndPerPagePathsAgree writes through the original kernel's
// batched path (amd64, multi-page requests take AllocBatch) and the
// sf_buf kernel's per-page path, and checks byte-for-byte agreement with
// a reference model for identical operation sequences.
func TestBatchAndPerPagePathsAgree(t *testing.T) {
	type op struct {
		off   int64
		data  []byte
		write bool
	}
	rng := rand.New(rand.NewSource(55))
	var ops []op
	for i := 0; i < 120; i++ {
		n := rng.Intn(3*vm.PageSize) + 1
		o := op{
			off:   int64(rng.Intn(48*vm.PageSize - n)),
			write: rng.Intn(2) == 0,
		}
		o.data = make([]byte, n)
		rng.Read(o.data)
		ops = append(ops, o)
	}

	run := func(mk kernel.MapperKind, plat arch.Platform) []byte {
		k := kernel.MustBoot(kernel.Config{
			Platform:     plat,
			Mapper:       mk,
			PhysPages:    64,
			Backed:       true,
			CacheEntries: 64,
		})
		d, err := New(k, 48*vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		ctx := k.Ctx(0)
		for _, o := range ops {
			if o.write {
				if err := d.WriteAt(ctx, o.data, o.off); err != nil {
					t.Fatal(err)
				}
			} else {
				buf := make([]byte, len(o.data))
				if err := d.ReadAt(ctx, buf, o.off); err != nil {
					t.Fatal(err)
				}
			}
		}
		img := make([]byte, 48*vm.PageSize)
		if err := d.ReadAt(ctx, img, 0); err != nil {
			t.Fatal(err)
		}
		return img
	}

	// Reference model.
	model := make([]byte, 48*vm.PageSize)
	for _, o := range ops {
		if o.write {
			copy(model[o.off:], o.data)
		}
	}

	perPage := run(kernel.SFBuf, arch.XeonMP())             // sf_buf: per page
	batched := run(kernel.OriginalKernel, arch.OpteronMP()) // original amd64: batched
	if !bytes.Equal(perPage, model) {
		t.Fatal("per-page path disagrees with the model")
	}
	if !bytes.Equal(batched, model) {
		t.Fatal("batched path disagrees with the model")
	}
}

// Property: for any (offset, length) pair, a batched multi-page write
// followed by single-byte reads returns the written bytes, under the
// original kernel where AllocBatch/FreeBatch run.
func TestQuickBatchedWriteReadback(t *testing.T) {
	k := kernel.MustBoot(kernel.Config{
		Platform:  arch.OpteronMP(),
		Mapper:    kernel.OriginalKernel,
		PhysPages: 40,
		Backed:    true,
	})
	d, err := New(k, 32*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	f := func(off uint32, n uint16, seed int64) bool {
		c := int(n)%(3*vm.PageSize) + 2
		o := int64(off) % (32*vm.PageSize - int64(c))
		src := make([]byte, c)
		rand.New(rand.NewSource(seed)).Read(src)
		if err := d.WriteAt(ctx, src, o); err != nil {
			return false
		}
		one := make([]byte, 1)
		for _, probe := range []int64{0, int64(c) / 2, int64(c) - 1} {
			if err := d.ReadAt(ctx, one, o+probe); err != nil {
				return false
			}
			if one[0] != src[probe] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRequestLargerThanMappingCache pins the vectored fallback: a
// transfer spanning more pages than the sharded cache holds buffers must
// fall back to the per-page loop rather than fail with ErrBatchTooLarge.
func TestRequestLargerThanMappingCache(t *testing.T) {
	k := kernel.MustBoot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		Backed:       true,
		PhysPages:    256,
		CacheEntries: 8, // far smaller than the 32-page request below
	})
	d, err := New(k, 64*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := k.Ctx(0)
	src := make([]byte, 32*vm.PageSize)
	for i := range src {
		src[i] = byte(i * 13)
	}
	if err := d.WriteAt(ctx, src, vm.PageSize/2); err != nil {
		t.Fatalf("oversized write: %v", err)
	}
	got := make([]byte, len(src))
	if err := d.ReadAt(ctx, got, vm.PageSize/2); err != nil {
		t.Fatalf("oversized read: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("oversized transfer corrupted data")
	}
	if st := k.Map.Stats(); st.Allocs != st.Frees {
		t.Fatalf("leaked mappings: allocs %d != frees %d", st.Allocs, st.Frees)
	}
}
