// Package memdisk implements a memory disk (FreeBSD's md), Section 2.2:
// "Memory disks have a pool of physical pages.  To read from or write to a
// memory disk a CPU-private ephemeral mapping for the desired pages of the
// memory disk is created.  Then the data is copied between the ephemerally
// mapped pages and the read/write buffer provided by the user.  After the
// read or write operation completes, the ephemeral mapping is freed."
//
// The private-mapping option can be disabled (the dd experiment's
// "default (shared) mapping" configuration of Figures 4-7) to measure the
// cost of remote TLB invalidations on cache misses.
package memdisk

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sfbuf/internal/kcopy"
	"sfbuf/internal/kernel"
	"sfbuf/internal/pmap"
	"sfbuf/internal/sfbuf"
	"sfbuf/internal/smp"
	"sfbuf/internal/vm"
)

// SectorSize is the disk's addressable unit.
const SectorSize = 512

// ErrOutOfRange is returned for accesses beyond the end of the disk.
var ErrOutOfRange = errors.New("memdisk: access out of range")

// Disk is one memory disk.
type Disk struct {
	k     *kernel.Kernel
	pages []*vm.Page
	size  int64
	// contig is the memdisk subsystem's contiguity-policy handle: under
	// the adaptive policy it learns from the transfer extents' observed
	// reuse whether to map them as runs or batches.
	contig *kernel.MapConsumer

	// usePrivate selects the CPU-private mapping option; the evaluation
	// turns it off to quantify its benefit (Section 6.4.1).
	usePrivate atomic.Bool

	reads  atomic.Uint64
	writes atomic.Uint64
}

// New allocates a memory disk of the given size (rounded up to whole
// pages) from the machine's physical memory.  On a buddy-managed machine
// the pool is built from aligned physically contiguous extents — one
// AllocContig when a single block covers the disk, else one per maximal
// block — so transfers stay superpage-promotion-eligible even when the
// disk is created after churn; fragments degrade gracefully to scattered
// AllocN pages.  LIFO machines keep the seed's AllocN pool (contiguous on
// a fresh machine, which is what the figure experiments boot).
func New(k *kernel.Kernel, size int64) (*Disk, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memdisk: invalid size %d", size)
	}
	npages := int((size + vm.PageSize - 1) / vm.PageSize)
	pages, err := allocPool(k, npages)
	if err != nil {
		return nil, fmt.Errorf("memdisk: allocating %d pages: %w", npages, err)
	}
	d := &Disk{k: k, pages: pages, size: size, contig: k.Consumer("memdisk")}
	d.usePrivate.Store(true)
	return d, nil
}

// allocPool assembles the disk's page pool, preferring aligned contiguous
// extents chunked at the buddy allocator's maximal block size.  When a
// maximal chunk is unavailable the request halves down to the superpage
// span before degrading — a pool whose biggest intact blocks are exactly
// superpage-sized still gets promotion-eligible chunks — and only a
// remainder no covering block can serve is filled with scattered AllocN
// pages.
func allocPool(k *kernel.Kernel, npages int) ([]*vm.Page, error) {
	if !k.M.Phys.Buddy() {
		return k.M.Phys.AllocN(npages)
	}
	var pool []*vm.Page
	release := func() {
		for _, pg := range pool {
			k.M.Phys.Free(pg)
		}
	}
	for len(pool) < npages {
		rem := npages - len(pool)
		chunk := min(rem, vm.MaxContigPages)
		pages, err := k.AllocPhysContig(chunk)
		for errors.Is(err, vm.ErrNoContig) && chunk > pmap.SuperpagePages {
			chunk = max(chunk/2, pmap.SuperpagePages)
			pages, err = k.AllocPhysContig(chunk)
		}
		if errors.Is(err, vm.ErrNoContig) {
			pages, err = k.M.Phys.AllocN(rem)
		}
		if err != nil {
			release()
			return nil, err
		}
		pool = append(pool, pages...)
	}
	return pool, nil
}

// Size returns the disk capacity in bytes.
func (d *Disk) Size() int64 { return d.size }

// Pages returns the disk's page pool; sendfile-style consumers map these
// directly.  Callers must not modify the slice.
func (d *Disk) Pages() []*vm.Page { return d.pages }

// PageAt returns the page backing byte offset off.
func (d *Disk) PageAt(off int64) (*vm.Page, error) {
	if off < 0 || off >= d.size {
		return nil, ErrOutOfRange
	}
	return d.pages[off/vm.PageSize], nil
}

// SetPrivateMappings toggles the CPU-private mapping option.
func (d *Disk) SetPrivateMappings(on bool) { d.usePrivate.Store(on) }

// PrivateMappings reports whether the private option is in use.
func (d *Disk) PrivateMappings() bool { return d.usePrivate.Load() }

func (d *Disk) flags() sfbuf.Flags {
	if d.usePrivate.Load() {
		return sfbuf.Private
	}
	return 0
}

// ReadAt copies len(dst) bytes at offset off into dst through ephemeral
// mappings of the disk's pages.
func (d *Disk) ReadAt(ctx *smp.Context, dst []byte, off int64) error {
	return d.transfer(ctx, dst, off, false)
}

// WriteAt copies src onto the disk at offset off through ephemeral
// mappings.
func (d *Disk) WriteAt(ctx *smp.Context, src []byte, off int64) error {
	return d.transfer(ctx, src, off, true)
}

// transfer moves one request's bytes between buf and the disk.  A request
// spanning multiple pages maps them as one vectored batch when the
// kernel's mapper makes batching a fast path (the original kernel's
// pmap_qenter run, the sharded cache's per-shard batching); the paper's
// global-lock kernel maps page by page through the ephemeral mapping
// interface, exactly as Section 2.2 describes.
func (d *Disk) transfer(ctx *smp.Context, buf []byte, off int64, write bool) error {
	if off < 0 || off+int64(len(buf)) > d.size {
		return ErrOutOfRange
	}
	if write {
		d.writes.Add(1)
	} else {
		d.reads.Add(1)
	}
	if len(buf) == 0 {
		return nil
	}
	// Every request pays the block-device path's fixed cost regardless
	// of kernel: bio setup, GEOM, and the md worker-thread handoff.
	ctx.Charge(ctx.Cost().BioFixed)

	first := int(off / vm.PageSize)
	last := int((off + int64(len(buf)) - 1) / vm.PageSize)
	if last > first && d.contig.UseRuns(ctx, d.pages[first:last+1]) {
		// Contiguous-run path: one VA window over the request's pages,
		// one ranged translation per transfer — and, for requests
		// covering an aligned 2 MB-equivalent span of this disk's
		// physically contiguous pool, simulated superpage promotion
		// collapses the window to one TLB entry.
		run, err := d.k.Map.AllocRun(ctx, d.pages[first:last+1], d.flags())
		switch {
		case errors.Is(err, sfbuf.ErrBatchTooLarge):
			// Wider than the mapping cache; the paths below still serve.
		case err != nil:
			return fmt.Errorf("memdisk: run mapping: %w", err)
		default:
			defer d.k.Map.FreeRun(ctx, run)
			runOff := int(off - int64(first)*vm.PageSize)
			if write {
				err = kcopy.CopyInRun(ctx, d.k.Pmap, run, runOff, buf)
			} else {
				err = kcopy.CopyOutRun(ctx, d.k.Pmap, buf, run, runOff)
			}
			return err
		}
	}
	if last > first && d.k.UseVectored() {
		bufs, err := d.k.Map.AllocBatch(ctx, d.pages[first:last+1], d.flags())
		switch {
		case errors.Is(err, sfbuf.ErrBatchTooLarge):
			// The request spans more pages than the mapping cache holds
			// buffers; the per-page loop below still serves it.
		case err != nil:
			return fmt.Errorf("memdisk: batch mapping: %w", err)
		default:
			defer d.k.Map.FreeBatch(ctx, bufs)
			runOff := int(off - int64(first)*vm.PageSize)
			if write {
				err = kcopy.CopyInVec(ctx, d.k.Pmap, bufs, runOff, buf)
			} else {
				err = kcopy.CopyOutVec(ctx, d.k.Pmap, buf, bufs, runOff)
			}
			return err
		}
	}

	for len(buf) > 0 {
		pg := d.pages[off/vm.PageSize]
		po := int(off % vm.PageSize)
		n := min(vm.PageSize-po, len(buf))
		b, err := d.k.Map.Alloc(ctx, pg, d.flags())
		if err != nil {
			return fmt.Errorf("memdisk: mapping for transfer: %w", err)
		}
		if write {
			err = kcopy.CopyIn(ctx, d.k.Pmap, b.KVA()+uint64(po), buf[:n])
		} else {
			err = kcopy.CopyOut(ctx, d.k.Pmap, buf[:n], b.KVA()+uint64(po))
		}
		d.k.Map.Free(ctx, b)
		if err != nil {
			return err
		}
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// Ops returns the cumulative read and write operation counts.
func (d *Disk) Ops() (reads, writes uint64) {
	return d.reads.Load(), d.writes.Load()
}

// Release returns the disk's pages to physical memory.
func (d *Disk) Release() {
	for _, pg := range d.pages {
		d.k.M.Phys.Free(pg)
	}
	d.pages = nil
	d.size = 0
}
