package memdisk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/vm"
)

func bootDiskKernel(t *testing.T, mk kernel.MapperKind, plat arch.Platform, cacheEntries int) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    1024,
		Backed:       true,
		CacheEntries: cacheEntries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootDiskKernel(t, mk, arch.XeonMP(), 128)
		d, err := New(k, 256*1024)
		if err != nil {
			t.Fatal(err)
		}
		ctx := k.Ctx(0)
		want := make([]byte, 64*1024)
		rand.New(rand.NewSource(1)).Read(want)
		if err := d.WriteAt(ctx, want, 12345); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if err := d.ReadAt(ctx, got, 12345); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: disk round trip corrupted data", mk)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonUP(), 32)
	d, _ := New(k, 8192)
	ctx := k.Ctx(0)
	if err := d.ReadAt(ctx, make([]byte, 16), 8190); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteAt(ctx, make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.PageAt(8192); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestPrivateMappingsAvoidShootdowns(t *testing.T) {
	// A disk larger than the mapping cache: sequential sweeps miss ~100%
	// (the Figure 6/7 configuration).  Private mappings must eliminate
	// all remote invalidations; shared mappings must issue them.
	const diskSize = 64 * vm.PageSize
	run := func(private bool) (remote uint64) {
		k := bootDiskKernel(t, kernel.SFBuf, arch.XeonMP(), 16)
		d, err := New(k, diskSize)
		if err != nil {
			t.Fatal(err)
		}
		d.SetPrivateMappings(private)
		ctx := k.Ctx(0)
		buf := make([]byte, vm.PageSize)
		// Two sweeps: the first warms (and touches) everything, the
		// second is the measured miss-heavy pass.
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				k.Reset()
			}
			for off := int64(0); off < diskSize; off += vm.PageSize {
				if err := d.ReadAt(ctx, buf, off); err != nil {
					t.Fatal(err)
				}
			}
		}
		return k.M.Counters().RemoteInvIssued.Load()
	}
	if got := run(true); got != 0 {
		t.Fatalf("private mappings issued %d remote invalidations, want 0", got)
	}
	if got := run(false); got == 0 {
		t.Fatal("shared mappings under misses must issue remote invalidations")
	}
}

func TestDiskFitsInCacheNoInvalidations(t *testing.T) {
	// The Figure 4/5 configuration: disk fully mapped by the cache.
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonMPHTT(), 64)
	// This test pins the mapping CACHE's reuse property — repeat reads
	// are pure hash hits with zero invalidations.  Contiguous runs trade
	// exactly that reuse for ranged translation (every run installs and
	// tears down fresh PTEs), so hold the subsystem on the cached path.
	k.Cfg.Contig = kernel.ContigOff
	d, err := New(k, 32*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	d.SetPrivateMappings(false) // even shared mappings stay quiet on hits
	ctx := k.Ctx(0)
	buf := make([]byte, 16*1024)
	warm := func() {
		for off := int64(0); off+int64(len(buf)) <= d.Size(); off += int64(len(buf)) {
			if err := d.ReadAt(ctx, buf, off); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm()
	k.Reset()
	for i := 0; i < 5; i++ {
		warm()
	}
	if l, r := k.M.Counters().LocalInv.Load(), k.M.Counters().RemoteInvIssued.Load(); l != 0 || r != 0 {
		t.Fatalf("invalidations = local %d remote %d, want 0/0", l, r)
	}
	if hr := k.Map.Stats().HitRate(); hr != 1.0 {
		t.Fatalf("hit rate = %v, want 1.0", hr)
	}
}

func TestOpsCounting(t *testing.T) {
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonUP(), 32)
	d, _ := New(k, 64*1024)
	ctx := k.Ctx(0)
	d.ReadAt(ctx, make([]byte, 10), 0)
	d.WriteAt(ctx, make([]byte, 10), 0)
	d.WriteAt(ctx, make([]byte, 10), 100)
	r, w := d.Ops()
	if r != 1 || w != 2 {
		t.Fatalf("ops = (%d,%d), want (1,2)", r, w)
	}
}

func TestRelease(t *testing.T) {
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonUP(), 32)
	free := k.M.Phys.FreeFrames()
	d, _ := New(k, 16*vm.PageSize)
	if k.M.Phys.FreeFrames() != free-16 {
		t.Fatal("disk did not take pages")
	}
	d.Release()
	if k.M.Phys.FreeFrames() != free {
		t.Fatal("release leaked pages")
	}
}

// Property: the disk behaves as a flat byte array under random writes and
// reads, for both kernels.
func TestQuickFlatModel(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootDiskKernel(t, mk, arch.XeonMPHTT(), 32)
		d, err := New(k, 64*1024)
		if err != nil {
			t.Fatal(err)
		}
		model := make([]byte, 64*1024)
		rng := rand.New(rand.NewSource(99))
		f := func(off uint16, n uint8, cpu uint8) bool {
			ctx := k.Ctx(int(cpu) % k.M.NumCPUs())
			o := int64(off) % (64*1024 - 300)
			c := int(n) + 1
			src := make([]byte, c)
			rng.Read(src)
			if err := d.WriteAt(ctx, src, o); err != nil {
				return false
			}
			copy(model[o:], src)
			got := make([]byte, c)
			if err := d.ReadAt(ctx, got, o); err != nil {
				return false
			}
			return bytes.Equal(got, model[o:int(o)+c])
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%v: %v", mk, err)
		}
	}
}
