package memdisk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sfbuf/internal/arch"
	"sfbuf/internal/kernel"
	"sfbuf/internal/vm"
)

func bootDiskKernel(t *testing.T, mk kernel.MapperKind, plat arch.Platform, cacheEntries int) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(kernel.Config{
		Platform:     plat,
		Mapper:       mk,
		PhysPages:    1024,
		Backed:       true,
		CacheEntries: cacheEntries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootDiskKernel(t, mk, arch.XeonMP(), 128)
		d, err := New(k, 256*1024)
		if err != nil {
			t.Fatal(err)
		}
		ctx := k.Ctx(0)
		want := make([]byte, 64*1024)
		rand.New(rand.NewSource(1)).Read(want)
		if err := d.WriteAt(ctx, want, 12345); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if err := d.ReadAt(ctx, got, 12345); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: disk round trip corrupted data", mk)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonUP(), 32)
	d, _ := New(k, 8192)
	ctx := k.Ctx(0)
	if err := d.ReadAt(ctx, make([]byte, 16), 8190); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteAt(ctx, make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.PageAt(8192); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestPrivateMappingsAvoidShootdowns(t *testing.T) {
	// A disk larger than the mapping cache: sequential sweeps miss ~100%
	// (the Figure 6/7 configuration).  Private mappings must eliminate
	// all remote invalidations; shared mappings must issue them.
	const diskSize = 64 * vm.PageSize
	run := func(private bool) (remote uint64) {
		k := bootDiskKernel(t, kernel.SFBuf, arch.XeonMP(), 16)
		d, err := New(k, diskSize)
		if err != nil {
			t.Fatal(err)
		}
		d.SetPrivateMappings(private)
		ctx := k.Ctx(0)
		buf := make([]byte, vm.PageSize)
		// Two sweeps: the first warms (and touches) everything, the
		// second is the measured miss-heavy pass.
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				k.Reset()
			}
			for off := int64(0); off < diskSize; off += vm.PageSize {
				if err := d.ReadAt(ctx, buf, off); err != nil {
					t.Fatal(err)
				}
			}
		}
		return k.M.Counters().RemoteInvIssued.Load()
	}
	if got := run(true); got != 0 {
		t.Fatalf("private mappings issued %d remote invalidations, want 0", got)
	}
	if got := run(false); got == 0 {
		t.Fatal("shared mappings under misses must issue remote invalidations")
	}
}

func TestDiskFitsInCacheNoInvalidations(t *testing.T) {
	// The Figure 4/5 configuration: disk fully mapped by the cache.
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonMPHTT(), 64)
	// This test pins the mapping CACHE's reuse property — repeat reads
	// are pure hash hits with zero invalidations.  Contiguous runs trade
	// exactly that reuse for ranged translation (every run installs and
	// tears down fresh PTEs), so hold the subsystem on the cached path.
	k.Cfg.Contig = kernel.ContigOff
	d, err := New(k, 32*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	d.SetPrivateMappings(false) // even shared mappings stay quiet on hits
	ctx := k.Ctx(0)
	buf := make([]byte, 16*1024)
	warm := func() {
		for off := int64(0); off+int64(len(buf)) <= d.Size(); off += int64(len(buf)) {
			if err := d.ReadAt(ctx, buf, off); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm()
	k.Reset()
	for i := 0; i < 5; i++ {
		warm()
	}
	if l, r := k.M.Counters().LocalInv.Load(), k.M.Counters().RemoteInvIssued.Load(); l != 0 || r != 0 {
		t.Fatalf("invalidations = local %d remote %d, want 0/0", l, r)
	}
	if hr := k.Map.Stats().HitRate(); hr != 1.0 {
		t.Fatalf("hit rate = %v, want 1.0", hr)
	}
}

func TestOpsCounting(t *testing.T) {
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonUP(), 32)
	d, _ := New(k, 64*1024)
	ctx := k.Ctx(0)
	d.ReadAt(ctx, make([]byte, 10), 0)
	d.WriteAt(ctx, make([]byte, 10), 0)
	d.WriteAt(ctx, make([]byte, 10), 100)
	r, w := d.Ops()
	if r != 1 || w != 2 {
		t.Fatalf("ops = (%d,%d), want (1,2)", r, w)
	}
}

func TestRelease(t *testing.T) {
	k := bootDiskKernel(t, kernel.SFBuf, arch.XeonUP(), 32)
	free := k.M.Phys.FreeFrames()
	d, _ := New(k, 16*vm.PageSize)
	if k.M.Phys.FreeFrames() != free-16 {
		t.Fatal("disk did not take pages")
	}
	d.Release()
	if k.M.Phys.FreeFrames() != free {
		t.Fatal("release leaked pages")
	}
}

// Property: the disk behaves as a flat byte array under random writes and
// reads, for both kernels.
func TestQuickFlatModel(t *testing.T) {
	for _, mk := range []kernel.MapperKind{kernel.SFBuf, kernel.OriginalKernel} {
		k := bootDiskKernel(t, mk, arch.XeonMPHTT(), 32)
		d, err := New(k, 64*1024)
		if err != nil {
			t.Fatal(err)
		}
		model := make([]byte, 64*1024)
		rng := rand.New(rand.NewSource(99))
		f := func(off uint16, n uint8, cpu uint8) bool {
			ctx := k.Ctx(int(cpu) % k.M.NumCPUs())
			o := int64(off) % (64*1024 - 300)
			c := int(n) + 1
			src := make([]byte, c)
			rng.Read(src)
			if err := d.WriteAt(ctx, src, o); err != nil {
				return false
			}
			copy(model[o:], src)
			got := make([]byte, c)
			if err := d.ReadAt(ctx, got, o); err != nil {
				return false
			}
			return bytes.Equal(got, model[o:int(o)+c])
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%v: %v", mk, err)
		}
	}
}

// TestBuddyPoolStaysPromotionEligible pins the buddy-backed pool builder:
// on a buddy kernel a disk created AFTER allocator churn still gets
// aligned, physically contiguous superpage-span chunks, which is what
// keeps its transfers promotion-eligible.
func TestBuddyPoolStaysPromotionEligible(t *testing.T) {
	const span = 512 // pmap.SuperpagePages
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		PhysPages:    4 * span,
		CacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !k.M.Phys.Buddy() {
		t.Fatal("sharded sf_buf kernel should boot the buddy allocator")
	}
	// Churn the allocator so a LIFO stack would be scrambled.
	churn, err := k.M.Phys.AllocN(3 * span)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(churn), func(i, j int) { churn[i], churn[j] = churn[j], churn[i] })
	for _, pg := range churn {
		k.M.Phys.Free(pg)
	}
	d, err := New(k, int64(2*span)*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pool := d.Pages()
	for c := 0; c+span <= len(pool); c += span {
		if pool[c].Frame()%span != 0 {
			t.Errorf("chunk %d starts at frame %d, want superpage alignment", c/span, pool[c].Frame())
		}
		for i := 1; i < span; i++ {
			if pool[c+i].Frame() != pool[c].Frame()+uint64(i) {
				t.Fatalf("chunk %d page %d breaks contiguity", c/span, i)
			}
		}
	}
	d.Release()
}

// TestPoolFallsBackScatteredUnderFragmentation: when fragmentation has
// consumed every covering block the pool builder degrades to scattered
// AllocN pages instead of failing.
func TestPoolFallsBackScatteredUnderFragmentation(t *testing.T) {
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		PhysPages:    256,
		CacheEntries: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	all, err := k.M.Phys.AllocN(256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(all); i += 2 {
		k.M.Phys.Free(all[i]) // every other frame: no two adjacent free
	}
	d, err := New(k, int64(64)*vm.PageSize)
	if err != nil {
		t.Fatalf("fragmented pool build: %v", err)
	}
	if got := len(d.Pages()); got != 64 {
		t.Fatalf("pool has %d pages, want 64", got)
	}
	d.Release()
}

// TestPoolHalvesChunksToSuperpageSpan: a pool whose largest intact
// blocks are exactly one superpage span (a 1536-page machine has no
// order-10 block at all) must still build a >512-page disk from
// promotion-eligible 512-page chunks instead of degrading the whole
// remainder to scattered pages.
func TestPoolHalvesChunksToSuperpageSpan(t *testing.T) {
	const span = 512
	k, err := kernel.Boot(kernel.Config{
		Platform:     arch.XeonMP(),
		Mapper:       kernel.SFBuf,
		PhysPages:    3 * span, // boot cover tops out at order-9 blocks
		CacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(k, int64(span+64)*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pool := d.Pages()
	if pool[0].Frame()%span != 0 {
		t.Errorf("first chunk starts at frame %d, want superpage alignment", pool[0].Frame())
	}
	for i := 1; i < span; i++ {
		if pool[i].Frame() != pool[0].Frame()+uint64(i) {
			t.Fatalf("page %d breaks the halved chunk's contiguity", i)
		}
	}
	d.Release()
}
