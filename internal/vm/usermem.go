package vm

import (
	"errors"
	"fmt"
)

// UserMem models a user-space buffer: a page-aligned run of physical pages
// standing in for the pages underlying a process's source or destination
// buffer.  Subsystems that implement zero-copy paths (pipe direct writes,
// zero-copy socket sends) wire these pages and hand them to the kernel.
//
// User-space accesses (ReadAt/WriteAt) go straight to the backing store:
// the user TLB is not what the paper measures, so user-side accesses carry
// no kernel-model cost and never consult the kernel page tables.
type UserMem struct {
	pm    *PhysMem
	pages []*Page
	size  int
}

// ErrBounds is returned for out-of-range user buffer accesses.
var ErrBounds = errors.New("vm: user buffer access out of bounds")

// AllocUserMem allocates a user buffer of the given size, rounded up to
// whole pages.
func AllocUserMem(pm *PhysMem, size int) (*UserMem, error) {
	if size <= 0 {
		return nil, fmt.Errorf("vm: invalid user buffer size %d", size)
	}
	n := (size + PageSize - 1) / PageSize
	pages, err := pm.AllocN(n)
	if err != nil {
		return nil, err
	}
	return &UserMem{pm: pm, pages: pages, size: size}, nil
}

// Len returns the buffer size in bytes.
func (u *UserMem) Len() int { return u.size }

// Pages returns the backing pages in address order.  Callers must not
// modify the slice.
func (u *UserMem) Pages() []*Page { return u.pages }

// PageAt returns the page containing byte offset off and the offset of that
// byte within the page.
func (u *UserMem) PageAt(off int) (*Page, int, error) {
	if off < 0 || off >= u.size {
		return nil, 0, ErrBounds
	}
	return u.pages[off/PageSize], off % PageSize, nil
}

// PageRange returns the pages spanning [off, off+n), in order.
func (u *UserMem) PageRange(off, n int) ([]*Page, error) {
	if off < 0 || n < 0 || off+n > u.size {
		return nil, ErrBounds
	}
	if n == 0 {
		return nil, nil
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	return u.pages[first : last+1], nil
}

// WriteAt stores src into the buffer at off, as a user-space access.
// On unbacked memory it validates bounds but moves no bytes.
func (u *UserMem) WriteAt(off int, src []byte) error {
	if off < 0 || off+len(src) > u.size {
		return ErrBounds
	}
	for len(src) > 0 {
		p := u.pages[off/PageSize]
		po := off % PageSize
		n := min(PageSize-po, len(src))
		if d := p.Data(); d != nil {
			copy(d[po:po+n], src[:n])
		}
		src = src[n:]
		off += n
	}
	return nil
}

// ReadAt loads dst from the buffer at off, as a user-space access.
func (u *UserMem) ReadAt(off int, dst []byte) error {
	if off < 0 || off+len(dst) > u.size {
		return ErrBounds
	}
	for len(dst) > 0 {
		p := u.pages[off/PageSize]
		po := off % PageSize
		n := min(PageSize-po, len(dst))
		if d := p.Data(); d != nil {
			copy(dst[:n], d[po:po+n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// Wire wires every page in [off, off+n), the first half of the pipe and
// zero-copy send protocols.
func (u *UserMem) Wire(off, n int) error {
	pages, err := u.PageRange(off, n)
	if err != nil {
		return err
	}
	for _, p := range pages {
		p.Wire()
	}
	return nil
}

// Unwire reverses Wire for the same range.
func (u *UserMem) Unwire(off, n int) error {
	pages, err := u.PageRange(off, n)
	if err != nil {
		return err
	}
	for _, p := range pages {
		p.Unwire()
	}
	return nil
}

// ReplacePage swaps the page backing page index idx for np, returning the
// previous page.  It implements the zero-copy receive page flip
// (Section 2.3): "the application's current physical page is freed, the
// kernel's physical page replaces it in the application's address space".
// The caller owns the returned page (typically freeing it).
func (u *UserMem) ReplacePage(idx int, np *Page) (*Page, error) {
	if idx < 0 || idx >= len(u.pages) {
		return nil, ErrBounds
	}
	old := u.pages[idx]
	u.pages[idx] = np
	return old, nil
}

// Release returns the buffer's pages to physical memory.  The buffer must
// not be used afterwards.
func (u *UserMem) Release() {
	for _, p := range u.pages {
		u.pm.Free(p)
	}
	u.pages = nil
	u.size = 0
}
