// Package vm models the machine-independent physical memory layer: physical
// pages (the paper's vm_page), a frame allocator, and page wiring.
//
// A Page may be "backed" by real storage, in which case copies through the
// simulated MMU move actual bytes and data-integrity tests can detect
// TLB-coherence bugs as corruption, or "unbacked", in which case only costs
// are charged — useful for benchmark configurations whose footprints
// (a 512 MB memory disk, a 1.1 GB web corpus) would be wasteful to allocate
// for real.
package vm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Page geometry.  Both evaluation architectures use 4 KB base pages.
const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the size of a physical page in bytes.
	PageSize = 1 << PageShift
)

// PAddr is a physical byte address.
type PAddr uint64

// Frame returns the physical frame number containing the address.
func (pa PAddr) Frame() uint64 { return uint64(pa) >> PageShift }

// Offset returns the byte offset within the page.
func (pa PAddr) Offset() int { return int(uint64(pa) & (PageSize - 1)) }

// Page is a physical page — the simulator's vm_page.  Fields mutated after
// allocation (wire count, and the frame number under migration) use atomics
// because subsystems run on multiple goroutines.
type Page struct {
	// frame is the physical frame number currently backing this logical
	// page.  It is mutable: defragmentation by migration (SwapFrames) moves
	// a resident page to a different frame while every holder of the *Page
	// keeps its handle, so readers racing a migration need the atomic.
	frame atomic.Uint64
	data  []byte // nil when the owning PhysMem is unbacked
	wire  atomic.Int32

	// UserColor is the virtual cache color of this page's user-level
	// mapping, or -1 when it has none.  Only the sparc64 implementation
	// consults it (Section 4.4).
	UserColor int

	// id is the page's stable identity: the frame number it was created
	// on.  Unlike frame it never changes — migration moves a page between
	// frames but not between identities — so it is the key for any state
	// that must follow the logical page across migrations (extent-reuse
	// tracking, the tier keeper's tables).  On a pool that never migrates
	// it equals Frame().
	id uint64
}

// ID returns the page's stable identity (its creation frame number),
// invariant across migration.
func (p *Page) ID() uint64 { return p.id }

// ExtentID hashes a page sequence by stable page identity (FNV-1a over
// Page.ID).  Where sfbuf.ExtentHash keys on the frames an extent
// currently occupies — the right key for caches of installed
// translations — ExtentID follows the logical extent across migration:
// the same pages hash the same before and after their frames move.  On a
// pool that never migrates the two agree exactly.
func ExtentID(pages []*Page) uint64 {
	h := uint64(1469598103934665603)
	for _, pg := range pages {
		h ^= pg.id
		h *= 1099511628211
	}
	return h
}

// Frame returns the physical frame number.
func (p *Page) Frame() uint64 { return p.frame.Load() }

// PA returns the physical address of the first byte of the page.
func (p *Page) PA() PAddr { return PAddr(p.frame.Load() << PageShift) }

// Data returns the page's backing storage, or nil for unbacked memory.
// Callers must bounds-check their own offsets; the slice is always exactly
// PageSize long when non-nil.
func (p *Page) Data() []byte { return p.data }

// Wire increments the page's wire count, preventing replacement or
// page-out while a subsystem holds a loan on it (pipe direct writes,
// zero-copy sends).
func (p *Page) Wire() { p.wire.Add(1) }

// Unwire decrements the wire count.  It panics on underflow, which always
// indicates a subsystem bug.
func (p *Page) Unwire() {
	if n := p.wire.Add(-1); n < 0 {
		panic(fmt.Sprintf("vm: unwire of unwired page frame %d", p.Frame()))
	}
}

// Wired reports whether the page is currently wired.
func (p *Page) Wired() bool { return p.wire.Load() > 0 }

// WireCount returns the current wire count.
func (p *Page) WireCount() int { return int(p.wire.Load()) }

// String implements fmt.Stringer for diagnostics.
func (p *Page) String() string {
	return fmt.Sprintf("page{frame=%d wire=%d}", p.Frame(), p.wire.Load())
}

// ErrNoMemory is returned when the physical memory pool is exhausted.
var ErrNoMemory = errors.New("vm: out of physical memory")

// PhysMem is the physical memory of one simulated machine: a fixed number
// of frames managed either by the seed's LIFO free stack (NewPhysMem) or
// by the buddy allocator (NewBuddyPhysMem; see buddy.go).  The two modes
// share the Alloc/AllocN/Free surface; only the buddy mode can satisfy
// AllocContig and recover contiguity after churn.  The LIFO mode is kept
// because the figure-reproduction kernels depend on its exact allocation
// order for bit-identical experiment replay.
type PhysMem struct {
	mu sync.Mutex
	// pages is the frame registry: pages[f-1] is the Page currently backing
	// frame f.  Slots are atomic pointers because PageByFrame is the MMU
	// model's lock-free hot path and migration (SwapFrames) rebinds two
	// slots while the machine runs.
	pages  []atomic.Pointer[Page]
	free   []*Page // LIFO mode free stack
	backed bool

	// Buddy-mode state: per-socket order-indexed free lists and
	// fragmentation counters, all guarded by mu (see buddy.go).  On the
	// default one-socket partition orders[0] is exactly the flat buddy
	// free list.
	buddy      bool
	orders     [][]orderHeap // [socket][order]
	freePages  int
	freeBySock []int
	splits     uint64
	coalesces  uint64

	// Superpage reservation watermarks (buddy mode; see buddy.go).  While a
	// socket's stock of intact order>=reservOrder blocks is at or below
	// reservLow, single-page allocation steers to sub-reservation blocks
	// (reservSteers) and splits a protected block only when no smaller
	// block exists anywhere (reservSpills).  reservOrder==0 disables.
	reservOrder  int
	reservLow    int
	reservSteers uint64
	reservSpills uint64

	// NUMA frame homing: frames are homed on sockets by address range
	// (framesPer frames per socket, the last socket taking the
	// remainder).  Buddy pools fix the partition at construction
	// (NewBuddyPhysMemNUMA); LIFO pools may carry a homing-only
	// partition for SocketOfFrame (HomeSockets).
	sockets   int
	framesPer int
	numaLocal uint64
	numaSpill uint64

	// Tiered physical memory (tier.go): each socket's frame range is
	// split into a fast prefix of fastPer frames and a slow remainder.
	// fastPer == 0 means a single uniform tier.  freeFast tracks the free
	// fast-tier frames per socket on buddy pools; LIFO pools compute tier
	// residency by scanning their free stack.
	fastPer  int
	freeFast []int

	contigAllocs uint64
	contigFails  uint64

	allocs atomic.Uint64
	frees  atomic.Uint64
}

// NewPhysMem creates a machine with frames physical pages on the LIFO
// free stack.  When backed is true every page gets PageSize bytes of real
// storage (allocated lazily on first allocation of the page, so large
// mostly-unused pools stay cheap).
func NewPhysMem(frames int, backed bool) *PhysMem {
	if frames <= 0 {
		panic("vm: NewPhysMem with no frames")
	}
	pm := &PhysMem{
		pages:     make([]atomic.Pointer[Page], frames),
		free:      make([]*Page, 0, frames),
		backed:    backed,
		sockets:   1,
		framesPer: frames,
	}
	// Frame numbers start at 1 so that frame 0 / physical address 0 can
	// serve as a sentinel ("no frame") throughout the MMU model.
	for i := frames - 1; i >= 0; i-- {
		p := &Page{UserColor: -1, id: uint64(i + 1)}
		p.frame.Store(uint64(i + 1))
		pm.pages[i].Store(p)
		pm.free = append(pm.free, p)
	}
	return pm
}

// Backed reports whether pages carry real storage.
func (pm *PhysMem) Backed() bool { return pm.backed }

// Frames returns the total number of frames in the pool.
func (pm *PhysMem) Frames() int { return len(pm.pages) }

// FreeFrames returns the number of frames currently free.
func (pm *PhysMem) FreeFrames() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.buddy {
		return pm.freePages
	}
	return len(pm.free)
}

// Alloc allocates one physical page.
func (pm *PhysMem) Alloc() (*Page, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.buddy {
		return pm.buddyAllocOneLocked(-1)
	}
	return pm.allocLocked()
}

// AllocOn allocates one physical page, preferring frames homed on the
// given socket and spilling to the other sockets' free lists only when
// the preferred one is drained (counted in NUMASpillPages).  On a LIFO or
// one-socket pool it is exactly Alloc.
func (pm *PhysMem) AllocOn(socket int) (*Page, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.buddy {
		return pm.buddyAllocOneLocked(socket)
	}
	return pm.allocLocked()
}

func (pm *PhysMem) allocLocked() (*Page, error) {
	if len(pm.free) == 0 {
		return nil, ErrNoMemory
	}
	p := pm.free[len(pm.free)-1]
	pm.free = pm.free[:len(pm.free)-1]
	if pm.backed && p.data == nil {
		p.data = make([]byte, PageSize)
	}
	p.UserColor = -1
	pm.allocs.Add(1)
	return p, nil
}

// AllocN allocates n pages, returning them in allocation order.  On a
// buddy pool the allocation is promotion-aware: when the sub-covering
// stock cannot serve the request, the pages come from one covering block
// as a physically contiguous ascending extent (so a consumer that maps
// them as an aligned run can superpage-promote); otherwise frames are
// gathered smallest-block-first, consuming fragments while the pool's
// superpage-capable blocks survive for AllocContig — from a fresh boot
// cover the gather is still one ascending contiguous extent.  On failure
// no pages are retained.
func (pm *PhysMem) AllocN(n int) ([]*Page, error) {
	return pm.AllocNOn(-1, n)
}

// AllocNOn is AllocN preferring frames homed on the given socket: the
// preferred socket's free lists are gathered first (address-ordered, the
// same promotion-aware gather), and only a shortfall spills to the other
// sockets ascending.  Pages served from the preferred socket count in
// NUMALocalPages, spilled pages in NUMASpillPages.  socket < 0 (or a LIFO
// or one-socket pool) is exactly AllocN.
func (pm *PhysMem) AllocNOn(socket, n int) ([]*Page, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.buddy {
		return pm.buddyAllocNLocked(socket, n)
	}
	if len(pm.free) < n {
		return nil, ErrNoMemory
	}
	out := make([]*Page, n)
	for i := range out {
		p, err := pm.allocLocked()
		if err != nil {
			// Unreachable given the length check, but roll back anyway.
			for j := 0; j < i; j++ {
				pm.freeUnzeroedLocked(out[j])
			}
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Free returns a page to the free pool.  Freeing a wired page panics: a
// wired page is on loan to some subsystem and releasing its frame would be
// a use-after-free.
//
// Backed page data is zeroed BEFORE the pool mutex is taken: until the
// page reaches a free list the freeing thread owns it exclusively, so the
// PageSize memset needs no serialization — bulk frees (a released memory
// disk, a drained user buffer) no longer serialize the whole machine
// behind one lock holder clearing pages.  Unbacked pools skip the loop
// entirely (there is nothing to clear).
func (pm *PhysMem) Free(p *Page) {
	if p.Wired() {
		panic(fmt.Sprintf("vm: freeing wired %v", p))
	}
	if p.data != nil {
		clear(p.data)
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.freeUnzeroedLocked(p)
}

// freeUnzeroedLocked links an already-cleared (or never-touched) page
// back into the free structures.  Caller holds pm.mu.
func (pm *PhysMem) freeUnzeroedLocked(p *Page) {
	pm.frees.Add(1)
	if pm.buddy {
		pm.insertBlockLocked(p.Frame(), 0)
		return
	}
	pm.free = append(pm.free, p)
}

// PageByFrame returns the page with the given frame number, or nil when the
// frame is out of range (including the 0 sentinel).  It is how the MMU model
// turns a (possibly stale) TLB translation back into storage.
func (pm *PhysMem) PageByFrame(frame uint64) *Page {
	if frame == 0 || frame > uint64(len(pm.pages)) {
		return nil
	}
	return pm.pages[frame-1].Load()
}

// Stats returns cumulative allocation and free counts.
func (pm *PhysMem) Stats() (allocs, frees uint64) {
	return pm.allocs.Load(), pm.frees.Load()
}
